// Package starmagic is an embeddable relational query engine that
// implements the extended magic-sets transformation (EMST) of Mumick and
// Pirahesh, "Implementation of Magic-sets in a Relational Database System"
// (SIGMOD 1994) — the first implementation of magic sets inside a
// relational (SQL) system, originally built in IBM's Starburst.
//
// The engine parses a practical SQL subset (views, subqueries, aggregation,
// set operations, NULLs with full three-valued logic), represents queries
// in the Query Graph Model (QGM), optimizes them with a rule-based rewrite
// system into which EMST is integrated as one rule, chooses join orders
// with a cost-based plan optimizer run twice around the transformation, and
// executes the cheaper of the pre-/post-EMST plans — reproducing the
// paper's architecture end to end, including its guarantee that applying
// magic can never degrade the chosen plan.
//
// Quick start:
//
//	db := starmagic.Open()
//	db.MustExec(`CREATE TABLE employee (empno INT, workdept INT, salary FLOAT, PRIMARY KEY (empno))`)
//	db.MustExec(`INSERT INTO employee VALUES (1, 10, 50000.0)`)
//	res, err := db.QueryContext(ctx, `SELECT workdept, AVG(salary) FROM employee GROUP BY workdept`)
//
// The three execution strategies of the paper's Table 1 are selectable per
// query: StrategyOriginal (views materialized in full), StrategyCorrelated
// (tuple-at-a-time re-evaluation, the technique EMST is benchmarked
// against), and StrategyEMST (the default).
//
// QueryContext honors cancellation and deadlines (polled in the executor's
// hot loops), and per-call options select strategy, tracing, parallelism
// and row budgets:
//
//	res, err := db.QueryContext(ctx, query,
//	    starmagic.WithStrategy(starmagic.StrategyEMST),
//	    starmagic.WithTracer(rec),       // *obs.Recorder or any Tracer
//	    starmagic.WithRowLimit(1e6))
//
// Queries may use `?` placeholders bound per call with WithArgs (or per
// execution via Prepared.Execute args); prepared plans are cached by
// normalized SQL text and strategy, so re-preparing a parameterized query
// skips the optimizer entirely until a data or schema change invalidates
// the entry:
//
//	res, err := db.QueryContext(ctx,
//	    `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
//	     WHERE d.deptno = s.workdept AND d.deptname = ?`,
//	    starmagic.WithArgs("Planning"))
package starmagic

import (
	"context"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/engine"
	"starmagic/internal/exec"
	"starmagic/internal/obs"
	"starmagic/internal/resource"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/wal"
)

// DB is a starmagic database instance. It is safe for concurrent
// use: storage is a versioned (MVCC) row store, every query executes against
// a consistent snapshot taken when it starts, and writers never block
// readers — an open streaming cursor holds no lock, so INSERT, UPDATE and
// DELETE commit freely underneath it. Explicit transactions (Begin) get
// snapshot isolation with first-updater-wins conflict detection; statements
// outside a transaction autocommit through the same machinery. Only DDL
// serializes against queries, and only for its own duration.
// A DB from Open lives purely in memory; OpenDir adds a write-ahead log and
// checkpointing underneath the same MVCC machinery, with identical
// concurrency semantics.
type DB struct {
	eng *engine.Database
}

// Open creates an empty in-memory database. Nothing survives the process;
// use OpenDir for a durable database backed by a data directory.
func Open() *DB { return &DB{eng: engine.New()} }

// OpenDir opens (or creates) a durable database rooted at dir. All committed
// writes go through a write-ahead log with group commit; periodic
// checkpoints bound recovery time; and opening an existing directory
// recovers exactly the committed state — the last checkpoint image plus a
// replay of every logged commit after it, with any torn final record from a
// crash discarded. See SetDurability for the fsync policy (default: fsync
// before every commit acknowledgment, batched across concurrent committers).
func OpenDir(dir string) (*DB, error) {
	eng, err := engine.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Durability selects when commits are fsynced (see SetDurability).
type Durability = wal.SyncPolicy

// Durability policies, strongest first. All three write the log record to
// the OS before the commit returns, so acknowledged commits survive a crash
// of the database process under every policy; they differ in what survives
// an operating-system crash or power loss.
const (
	// SyncCommit (the default) fsyncs before acknowledging each commit,
	// batched across concurrent committers (group commit).
	SyncCommit = wal.SyncCommit
	// SyncInterval fsyncs on a short background interval; an OS crash can
	// lose up to one interval of acknowledged commits.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves fsync to checkpoints and Close; an OS crash can lose
	// anything since the last of those.
	SyncNever = wal.SyncNever
)

// SetDurability selects the commit fsync policy of a durable database
// (no-op for in-memory databases).
func (db *DB) SetDurability(p Durability) { db.eng.SetDurability(p) }

// Checkpoint writes a full image of the committed state and retires the log
// it supersedes, bounding recovery time. Checkpoints also run automatically
// when the log outgrows a size threshold (SetCheckpointThreshold); explicit
// calls are for tests and shutdown-sensitive callers. No-op for in-memory
// databases.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// SetCheckpointThreshold sets the write-ahead-log segment size, in bytes,
// that triggers an automatic background checkpoint (default 16 MiB; zero or
// negative disables automatic checkpoints).
func (db *DB) SetCheckpointThreshold(bytes int64) { db.eng.SetCheckpointThreshold(bytes) }

// RecoveryStats reports what OpenDir replayed: recovery wall time and the
// number of log records applied (both zero for in-memory databases).
func (db *DB) RecoveryStats() (time.Duration, int64) { return db.eng.RecoveryStats() }

// Strategy selects how queries are optimized and executed — the three
// columns of the paper's Table 1.
type Strategy = engine.Strategy

// Execution strategies.
const (
	// StrategyEMST runs the full three-phase magic-sets pipeline and
	// executes the cheaper of the pre-/post-transformation plans. Default.
	StrategyEMST = engine.EMST
	// StrategyOriginal materializes views in full (phase-1 rewrite only).
	StrategyOriginal = engine.Original
	// StrategyCorrelated re-evaluates views per outer row without caching.
	StrategyCorrelated = engine.Correlated
)

// ParseStrategy resolves "emst", "original", or "correlated".
func ParseStrategy(name string) (Strategy, error) { return engine.ParseStrategy(name) }

// Result is a query result: column names, rows, and plan information.
type Result = engine.Result

// PlanInfo describes how a query was optimized and executed.
type PlanInfo = engine.PlanInfo

// Counters aggregate executor work (rows scanned, probes, …).
type Counters = exec.Counters

// Value is one SQL value.
type Value = datum.D

// Row is one result or input row.
type Row = datum.Row

// Value constructors.
var (
	Int    = datum.Int
	Float  = datum.Float
	String = datum.String
	Bool   = datum.Bool
	Null   = datum.Null
)

// Exec runs a semicolon-separated script of DDL and INSERT statements,
// returning the number of rows inserted.
func (db *DB) Exec(script string) (int64, error) { return db.eng.Exec(script) }

// MustExec is Exec that panics on error; convenient in setup code.
func (db *DB) MustExec(script string) int64 {
	n, err := db.eng.Exec(script)
	if err != nil {
		panic(err)
	}
	return n
}

// InsertRows bulk-loads rows into a table through the Go API.
func (db *DB) InsertRows(table string, rows []Row) error {
	return db.eng.InsertRows(table, rows)
}

// Analyze refreshes optimizer statistics. Queries trigger it automatically
// after data changes; call it explicitly after InsertRows-heavy loads if
// you want to control when the work happens.
func (db *DB) Analyze() { db.eng.Analyze() }

// QueryOption configures one QueryContext/PrepareContext/ExplainContext
// call.
type QueryOption = engine.QueryOption

// Tracer receives one span per pipeline phase (parse, bind, the rewrite
// phases, both plan-optimization passes, execute); Span is one timed phase.
// A nil tracer (the default) is a no-op with no allocation on any path.
type Tracer = obs.Tracer

// Span is one timed pipeline phase reported to a Tracer.
type Span = obs.Span

// Recorder is an in-memory Tracer capturing completed spans; pass it via
// WithTracer and read Spans() after the query.
type Recorder = obs.Recorder

// NewRecorder returns an empty span recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// WithStrategy selects the optimization/execution strategy for one call.
func WithStrategy(s Strategy) QueryOption { return engine.WithStrategy(s) }

// WithArgs binds values to the query's `?` placeholders in left-to-right
// order (nil, bool, int/int32/int64, float32/float64, string, or Value).
// Parameterized plans are binding-invariant, so the plan cache serves every
// binding from one optimization.
func WithArgs(args ...any) QueryOption { return engine.WithArgs(args...) }

// WithTracer installs a span tracer for one call.
func WithTracer(t Tracer) QueryOption { return engine.WithTracer(t) }

// WithParallelism overrides the database-wide parallelism for one call.
func WithParallelism(n int) QueryOption { return engine.WithParallelism(n) }

// WithRowLimit bounds the executor's total produced rows for one call;
// exceeding it aborts the query with an error.
func WithRowLimit(n int64) QueryOption { return engine.WithRowLimit(n) }

// WithMemoryLimit caps this call's resident operator state at n bytes,
// overriding the database-wide SetMemoryLimit per-query default (0 removes
// the cap for this call). Under a cap, memory-hungry operators — hash-join
// builds, sorts, DISTINCT and group-by state — spill to temporary files
// instead of failing; a query whose working set cannot spill below the cap
// fails with ErrMemoryExceeded.
func WithMemoryLimit(n int64) QueryOption { return engine.WithMemoryLimit(n) }

// WithAdmission controls whether this execution passes through the
// database's admission queue (default true); WithAdmission(false) exempts
// the call, which is useful for administrative or monitoring queries that
// must not wait behind a saturated queue. It has no effect unless
// SetAdmission has configured a cap.
func WithAdmission(enabled bool) QueryOption { return engine.WithAdmission(enabled) }

// Rows is a streaming result cursor: Columns, then Next/Row (or Scan) until
// Next returns false, then Err and Close. Rows pull from the streaming
// executor batch by batch, so the full result set never materializes and a
// consumer that stops early never pays for the rows it skipped. The deferred
// PlanInfo (counters, timings, memory footprint) is available from Plan()
// after the cursor finalizes — drained, failed, or Closed.
//
// An open cursor holds no lock — it reads a registered MVCC snapshot, so
// concurrent DML commits freely while the cursor streams. It does hold its
// admission slot, memory budget, and snapshot registration (pinning old row
// versions against vacuum) until Close; always Close it (a drained cursor
// finalizes itself, making Close a no-op).
type Rows = engine.Rows

// QueryRows optimizes and executes a SELECT, returning a streaming cursor
// instead of a materialized Result. It accepts the same options as
// QueryContext. This is the preferred query API for large results; Query and
// QueryContext are thin materializing wrappers over the same execution path.
func (db *DB) QueryRows(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	return db.eng.QueryRows(ctx, query, opts...)
}

// Typed query-pipeline errors, re-exported so callers can errors.As against
// them without importing internal packages. The resource-governor sentinels
// (ErrMemoryExceeded, ErrAdmissionRejected, ErrClosed) are further down.
type (
	// ParseError is a positioned lex/parse failure (line and column are
	// 1-based over the query text).
	ParseError = sql.Error
	// NotFoundError is a name-resolution failure: an unknown table, view, or
	// column (Kind says which).
	NotFoundError = semant.NotFoundError
	// ParamCountError reports a mismatch between a query's `?` placeholders
	// and the values bound for an execution.
	ParamCountError = engine.ParamCountError
)

// Txn is an explicit transaction running under MVCC snapshot isolation: it
// sees a consistent snapshot taken at Begin plus its own staged writes, and
// its INSERT/UPDATE/DELETE become visible to others atomically at Commit.
// Write-write conflicts use first-updater-wins: the second transaction to
// touch a row fails immediately with ErrWriteConflict and is rolled back
// (no waiting, so no deadlocks — retry the transaction). A Txn is not safe
// for concurrent use by multiple goroutines.
type Txn = engine.Txn

// Begin starts an explicit transaction. Always resolve it with Commit or
// Rollback; an abandoned transaction pins old row versions against vacuum.
func (db *DB) Begin() *Txn { return db.eng.Begin() }

// Transaction errors, re-exported for errors.Is.
var (
	// ErrWriteConflict marks a transaction that lost a first-updater-wins
	// race and was rolled back; the caller should retry it.
	ErrWriteConflict = engine.ErrWriteConflict
	// ErrTxnDone marks use of a transaction after Commit or Rollback.
	ErrTxnDone = engine.ErrTxnDone
)

// Vacuum synchronously reclaims row versions no longer visible to any live
// snapshot and compacts the string intern table if enough died. The engine
// runs this automatically in the background once enough garbage accumulates;
// call it explicitly to make reclamation deterministic (e.g. in tests or
// after a bulk DELETE). It returns the number of versions reclaimed.
func (db *DB) Vacuum() int { return db.eng.Vacuum() }

// Query optimizes and executes a SELECT with the default EMST strategy.
func (db *DB) Query(query string) (*Result, error) { return db.eng.Query(query) }

// QueryWith optimizes and executes a SELECT with an explicit strategy.
func (db *DB) QueryWith(query string, s Strategy) (*Result, error) {
	return db.eng.QueryWith(query, s)
}

// QueryContext optimizes and executes a SELECT under ctx: cancellation and
// deadlines abort the pipeline between phases and the executor inside its
// scan/join/recursion loops (amortized, so the overhead stays within
// benchmark noise), returning ctx.Err() promptly.
func (db *DB) QueryContext(ctx context.Context, query string, opts ...QueryOption) (*Result, error) {
	return db.eng.QueryContext(ctx, query, opts...)
}

// Prepared is an optimized query plan that can be executed repeatedly, from
// any number of goroutines; each execution uses fresh evaluator state and
// reports its own counters.
type Prepared = engine.Prepared

// Prepare parses, binds and optimizes a query for repeated execution.
func (db *DB) Prepare(query string, s Strategy) (*Prepared, error) {
	return db.eng.Prepare(query, s)
}

// PrepareContext is Prepare with a context and per-call options.
func (db *DB) PrepareContext(ctx context.Context, query string, opts ...QueryOption) (*Prepared, error) {
	return db.eng.PrepareContext(ctx, query, opts...)
}

// ExplainInfo is the structured optimization account: per-phase timings and
// QGM snapshots, rewrite-rule fire counts, the plan-cost comparison and its
// winner, and the executed plan's join orders. String() renders it as text.
type ExplainInfo = engine.ExplainInfo

// Explain returns a textual account of the optimization: the QGM graph
// after each rewrite phase (the paper's Figure 4 panels), plan costs, and
// which plan won the cost comparison.
func (db *DB) Explain(query string, s Strategy) (string, error) {
	return db.eng.Explain(query, s)
}

// ExplainContext returns the structured ExplainInfo for a query without
// executing it.
func (db *DB) ExplainContext(ctx context.Context, query string, opts ...QueryOption) (*ExplainInfo, error) {
	return db.eng.ExplainContext(ctx, query, opts...)
}

// SetPlanCache enables or disables the prepared-plan cache (it starts
// enabled). The cache serves repeated prepares of the same normalized SQL +
// strategy without re-running the optimizer; DDL and Analyze advance a
// catalog epoch that invalidates stale entries automatically. DML does not:
// plans read through MVCC snapshots, so data changes never make a cached
// plan incorrect.
func (db *DB) SetPlanCache(enabled bool) { db.eng.SetPlanCache(enabled) }

// PlanCacheStats is a point-in-time view of the plan cache.
type PlanCacheStats = engine.PlanCacheStats

// PlanCacheStats reports cache size and hit/miss/eviction counters.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.eng.PlanCacheStats() }

// Resource-governor errors, re-exported so callers can errors.Is against
// them without importing internal packages.
var (
	// ErrMemoryExceeded marks a query whose working set could not fit (or
	// spill below) its memory budget.
	ErrMemoryExceeded = resource.ErrMemoryExceeded
	// ErrAdmissionRejected marks an execution bounced because the admission
	// wait queue was full.
	ErrAdmissionRejected = resource.ErrAdmissionRejected
	// ErrClosed marks an execution attempted after Close.
	ErrClosed = resource.ErrClosed
)

// MemInfo is the per-query memory account reported in PlanInfo.Mem: the
// effective budget, the peak bytes the governor reserved for the query
// (never above the budget), and how much operator state spilled to disk.
type MemInfo = engine.MemInfo

// GovernorStats is a point-in-time snapshot of the memory governor and the
// admission queue.
type GovernorStats = resource.GovernorStats

// SetParallelism configures intra-query parallelism for subsequent
// executions: 0 or 1 executes serially (the default); negative means
// GOMAXPROCS workers. Results are identical to serial execution.
func (db *DB) SetParallelism(n int) { db.eng.SetParallelism(n) }

// SetMemoryLimit configures memory governance for every subsequent query:
// perQuery caps each query's resident operator state and total caps the sum
// across concurrent queries (0 disables either cap). Capped queries spill
// oversized operator state to temporary files; WithMemoryLimit overrides
// the per-query default for one call.
func (db *DB) SetMemoryLimit(perQuery, total int64) { db.eng.SetMemoryLimit(perQuery, total) }

// SetAdmission configures admission control: at most maxConcurrent query
// executions run at once and at most maxQueue more wait in FIFO order;
// beyond that executions fail fast with ErrAdmissionRejected. Waiting
// honors context cancellation. maxConcurrent <= 0 disables admission
// control.
func (db *DB) SetAdmission(maxConcurrent, maxQueue int) { db.eng.SetAdmission(maxConcurrent, maxQueue) }

// ResourceStats returns a snapshot of the memory governor and admission
// queue: bytes in use, spill totals, and admitted/waiting/rejected counts.
func (db *DB) ResourceStats() GovernorStats { return db.eng.ResourceStats() }

// Close shuts the database down for new work: queued executions are
// rejected with ErrClosed and Close blocks until running executions and any
// background vacuum or checkpoint pass drain. On a durable database
// (OpenDir) Close then flushes, fsyncs, and closes the write-ahead log, so
// a clean shutdown loses nothing under any durability policy; the returned
// error reports a failure of that final flush (always nil for in-memory
// databases).
func (db *DB) Close() error { return db.eng.Close() }

// Metrics is a snapshot of database-wide activity: plan/query volume, EMST
// cost-comparison outcomes, cumulative executor counters, and rule fires.
type Metrics = obs.Metrics

// Metrics returns the current metrics snapshot.
func (db *DB) Metrics() Metrics { return db.eng.Metrics() }

// ResetMetrics zeroes the accumulated metrics.
func (db *DB) ResetMetrics() { db.eng.ResetMetrics() }

// Engine exposes the underlying engine for advanced integrations
// (extension box kinds, direct catalog access).
func (db *DB) Engine() *engine.Database { return db.eng }
