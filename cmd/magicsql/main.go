// Command magicsql is an interactive SQL shell (and script runner) for the
// starmagic engine. SELECT statements run under the EMST pipeline by
// default; dot-commands switch strategies and show optimizer output:
//
//	.strategy emst|original|correlated    pick the execution strategy
//	.explain SELECT ...                   show the rewrite phases and costs
//	.plan on|off                          print the executed physical
//	                                      operator tree with row/batch/time
//	                                      counters after each SELECT
//	.timing on|off                        print elapsed times
//	.metrics [reset]                      show (or zero) session metrics
//	.cache on|off|stats                   toggle or inspect the plan cache
//	.mem [limit [total]|off]              cap per-query (and total) memory;
//	                                      capped operators spill to disk
//	.admission [N [queue]|off]            cap concurrent query executions
//	.stats <table>                        per-column statistics and
//	                                      equi-depth histograms
//	.feedback on|off|stats                toggle or inspect execution-
//	                                      feedback re-optimization
//	.checkpoint                           checkpoint a durable database now
//	.tables                               list tables and views
//	.help                                 this text
//
// Sizes accept optional kb/mb/gb suffixes: .mem 64kb, .mem 4mb 64mb.
//
// Usage:
//
//	magicsql [script.sql ...]        run scripts, then read from stdin
//	magicsql -data ./mydb            open (or create) a durable database
//	echo "SELECT 1" | magicsql       pipe statements
//
// With -data, the database lives in the named directory: committed writes
// are write-ahead logged and the shell recovers the full state on the next
// start. Without it, everything is in memory and gone at exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"starmagic/internal/engine"
	"starmagic/internal/obs"
)

func main() {
	dataDir := flag.String("data", "", "data directory for a durable database (empty = in-memory)")
	flag.Parse()
	var db *engine.Database
	if *dataDir != "" {
		var err error
		db, err = engine.OpenDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "magicsql:", err)
			os.Exit(1)
		}
		if d, n := db.RecoveryStats(); n > 0 {
			fmt.Fprintf(os.Stderr, "magicsql: recovered %s (%d log records in %v)\n", *dataDir, n, d)
		}
	} else {
		db = engine.New()
	}
	defer func() {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "magicsql: close:", err)
		}
	}()
	sh := &shell{db: db, strategy: engine.EMST, out: os.Stdout}
	for _, path := range flag.Args() {
		script, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "magicsql:", err)
			os.Exit(1)
		}
		if err := sh.runScript(string(script)); err != nil {
			fmt.Fprintln(os.Stderr, "magicsql:", err)
			os.Exit(1)
		}
	}
	stat, _ := os.Stdin.Stat()
	interactive := (stat.Mode() & os.ModeCharDevice) != 0
	if interactive {
		fmt.Println("starmagic SQL shell — .help for commands, statements end with ;")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("magic> ")
			} else {
				fmt.Print("   ... ")
			}
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			sh.dotCommand(trimmed)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			if err := sh.runScript(buf.String()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		if err := sh.runScript(buf.String()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

type shell struct {
	db       *engine.Database
	strategy engine.Strategy
	// txn is the open explicit transaction (BEGIN .. COMMIT/ROLLBACK);
	// nil in autocommit mode.
	txn      *engine.Txn
	timing   bool
	showPlan bool
	// .mem / .admission settings, kept so the commands can echo them back.
	memLimit   int64
	memTotal   int64
	admitMax   int
	admitQueue int
	out        io.Writer
}

// parseSize parses a byte count with an optional kb/mb/gb suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	lower := strings.ToLower(s)
	for suffix, m := range map[string]int64{"kb": 1 << 10, "mb": 1 << 20, "gb": 1 << 30} {
		if strings.HasSuffix(lower, suffix) {
			mult = m
			lower = strings.TrimSuffix(lower, suffix)
			break
		}
	}
	n, err := strconv.ParseInt(lower, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// runScript executes statements; SELECTs print result tables.
func (sh *shell) runScript(script string) error {
	// Split crude statement boundaries while respecting strings is already
	// handled by the parser; feed whole chunks and dispatch on first token.
	for _, stmt := range splitStatements(script) {
		trimmed := strings.TrimSpace(stmt)
		if trimmed == "" {
			continue
		}
		first := strings.ToUpper(firstWord(trimmed))
		switch first {
		case "BEGIN", "START":
			if sh.txn != nil {
				t := sh.txn
				sh.txn = nil
				if err := t.Commit(); err != nil {
					return err
				}
			}
			sh.txn = sh.db.Begin()
			continue
		case "COMMIT", "ROLLBACK":
			t := sh.txn
			sh.txn = nil
			if t == nil {
				continue // no-op in autocommit mode, like MySQL
			}
			if first == "COMMIT" {
				if err := t.Commit(); err != nil {
					return err
				}
			} else if err := t.Rollback(); err != nil {
				return err
			}
			continue
		}
		if first == "SELECT" || strings.HasPrefix(trimmed, "(") {
			var res *engine.Result
			var err error
			if sh.txn != nil {
				res, err = sh.txn.QueryContext(context.Background(), trimmed,
					engine.WithStrategy(sh.strategy))
			} else {
				res, err = sh.db.QueryContext(context.Background(), trimmed,
					engine.WithStrategy(sh.strategy))
			}
			if err != nil {
				return err
			}
			sh.printResult(res)
			continue
		}
		if sh.txn != nil {
			_, err := sh.txn.ExecContext(context.Background(), trimmed)
			if sh.txn.Done() {
				sh.txn = nil // write conflict rolled the transaction back
			}
			if err != nil {
				return err
			}
			continue
		}
		if _, err := sh.db.Exec(trimmed); err != nil {
			return err
		}
	}
	return nil
}

func (sh *shell) dotCommand(line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".help":
		fmt.Fprintln(sh.out, ".strategy emst|original|correlated — pick execution strategy")
		fmt.Fprintln(sh.out, ".explain SELECT ...                — show rewrite phases and costs")
		fmt.Fprintln(sh.out, ".plan on|off                       — print executed operator tree")
		fmt.Fprintln(sh.out, ".timing on|off                     — print elapsed times")
		fmt.Fprintln(sh.out, ".metrics [reset]                   — show (or zero) session metrics")
		fmt.Fprintln(sh.out, ".cache on|off|stats                — toggle or inspect the plan cache")
		fmt.Fprintln(sh.out, ".mem [limit [total]|off]           — cap per-query (and total) memory; spill beyond it")
		fmt.Fprintln(sh.out, ".admission [N [queue]|off]         — cap concurrent query executions")
		fmt.Fprintln(sh.out, ".stats <table> [column]            — per-column statistics and histograms")
		fmt.Fprintln(sh.out, ".feedback on|off|stats             — toggle or inspect execution feedback")
		fmt.Fprintln(sh.out, ".checkpoint                        — checkpoint a durable database now")
		fmt.Fprintln(sh.out, ".tables                            — list tables and views")
	case ".strategy":
		if len(fields) < 2 {
			fmt.Fprintf(sh.out, "strategy: %s\n", sh.strategy)
			return
		}
		s, err := engine.ParseStrategy(fields[1])
		if err != nil {
			fmt.Fprintln(sh.out, err)
			return
		}
		sh.strategy = s
		fmt.Fprintf(sh.out, "strategy: %s\n", s)
	case ".timing":
		sh.timing = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(sh.out, "timing: %v\n", sh.timing)
	case ".plan":
		sh.showPlan = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(sh.out, "plan: %v\n", sh.showPlan)
	case ".checkpoint":
		if !sh.db.Durable() {
			fmt.Fprintln(sh.out, "in-memory database (start with -data <dir> for durability)")
			return
		}
		start := time.Now()
		if err := sh.db.Checkpoint(); err != nil {
			fmt.Fprintln(sh.out, "checkpoint failed:", err)
			return
		}
		m := sh.db.Metrics()
		fmt.Fprintf(sh.out, "checkpoint: %d bytes in %v\n", m.WAL.CheckpointBytes, time.Since(start))
	case ".tables":
		for _, t := range sh.db.Catalog().Tables() {
			fmt.Fprintf(sh.out, "table %s (%d rows)\n", t.Name, t.RowCount)
		}
		for _, v := range sh.db.Catalog().Views() {
			fmt.Fprintf(sh.out, "view  %s\n", v.Name)
		}
	case ".metrics":
		if len(fields) > 1 && fields[1] == "reset" {
			sh.db.ResetMetrics()
			fmt.Fprintln(sh.out, "metrics reset")
			return
		}
		sh.printMetrics(sh.db.Metrics())
	case ".cache":
		if len(fields) > 1 {
			switch fields[1] {
			case "on":
				sh.db.SetPlanCache(true)
			case "off":
				sh.db.SetPlanCache(false)
			case "stats":
				// fall through to the printout below
			default:
				fmt.Fprintln(sh.out, "usage: .cache on|off|stats")
				return
			}
		}
		st := sh.db.PlanCacheStats()
		state := "off"
		if st.Enabled {
			state = "on"
		}
		fmt.Fprintf(sh.out, "plan cache: %s  entries: %d  hits: %d  misses: %d  shared: %d  evictions: %d\n",
			state, st.Entries, st.Hits, st.Misses, st.Shared, st.Evictions)
	case ".mem":
		if len(fields) > 1 {
			if fields[1] == "off" {
				sh.memLimit, sh.memTotal = 0, 0
			} else {
				limit, err := parseSize(fields[1])
				if err != nil {
					fmt.Fprintln(sh.out, "usage: .mem [limit [total]|off] — sizes like 65536, 64kb, 4mb")
					return
				}
				var total int64
				if len(fields) > 2 {
					if total, err = parseSize(fields[2]); err != nil {
						fmt.Fprintln(sh.out, "usage: .mem [limit [total]|off] — sizes like 65536, 64kb, 4mb")
						return
					}
				}
				sh.memLimit, sh.memTotal = limit, total
			}
			sh.db.SetMemoryLimit(sh.memLimit, sh.memTotal)
		}
		st := sh.db.ResourceStats()
		if sh.memLimit == 0 && sh.memTotal == 0 {
			fmt.Fprint(sh.out, "memory: unlimited")
		} else {
			fmt.Fprintf(sh.out, "memory: per-query=%d total=%d", sh.memLimit, sh.memTotal)
		}
		fmt.Fprintf(sh.out, "  in-use=%d  spills=%d  spilled-bytes=%d\n",
			st.UsedBytes, st.Spills, st.SpilledBytes)
	case ".admission":
		if len(fields) > 1 {
			if fields[1] == "off" {
				sh.admitMax, sh.admitQueue = 0, 0
			} else {
				n, err := parseSize(fields[1])
				if err != nil || n < 0 {
					fmt.Fprintln(sh.out, "usage: .admission [N [queue]|off]")
					return
				}
				var q int64
				if len(fields) > 2 {
					if q, err = parseSize(fields[2]); err != nil || q < 0 {
						fmt.Fprintln(sh.out, "usage: .admission [N [queue]|off]")
						return
					}
				}
				sh.admitMax, sh.admitQueue = int(n), int(q)
			}
			sh.db.SetAdmission(sh.admitMax, sh.admitQueue)
		}
		st := sh.db.ResourceStats()
		if sh.admitMax <= 0 {
			fmt.Fprint(sh.out, "admission: off")
		} else {
			fmt.Fprintf(sh.out, "admission: max-concurrent=%d max-queue=%d", sh.admitMax, sh.admitQueue)
		}
		fmt.Fprintf(sh.out, "  running=%d waiting=%d admitted=%d waited=%d rejected=%d\n",
			st.Running, st.Waiting, st.Admitted, st.Waited, st.Rejected)
	case ".stats":
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, "usage: .stats <table>")
			return
		}
		t, ok := sh.db.Catalog().Table(fields[1])
		if !ok {
			fmt.Fprintf(sh.out, "no such table %s\n", fields[1])
			return
		}
		if len(fields) > 2 {
			// .stats <table> <column>: dump the full histogram.
			ord := t.ColumnIndex(fields[2])
			if ord < 0 {
				fmt.Fprintf(sh.out, "no such column %s.%s\n", t.Name, fields[2])
				return
			}
			if ord >= len(t.Stats) || t.Stats[ord].Hist == nil {
				fmt.Fprintln(sh.out, "(no histogram)")
				return
			}
			fmt.Fprint(sh.out, t.Stats[ord].Hist.Dump())
			return
		}
		fmt.Fprintf(sh.out, "table %s: %d rows\n", t.Name, t.RowCount)
		for i, c := range t.Columns {
			if i >= len(t.Stats) {
				fmt.Fprintf(sh.out, "  %s %s: not analyzed\n", c.Name, c.Type)
				continue
			}
			st := t.Stats[i]
			fmt.Fprintf(sh.out, "  %s %s: ndv=%d nulls=%d", c.Name, c.Type, st.DistinctCount, st.NullCount)
			if st.DistinctCount > 0 {
				fmt.Fprintf(sh.out, " min=%s max=%s", st.Min.Format(), st.Max.Format())
			}
			fmt.Fprintln(sh.out)
			if st.Hist != nil {
				fmt.Fprintf(sh.out, "    histogram: %s\n", st.Hist)
			}
		}
	case ".feedback":
		if len(fields) > 1 {
			switch fields[1] {
			case "on":
				sh.db.SetFeedback(true)
			case "off":
				sh.db.SetFeedback(false)
			case "stats":
				// fall through to the printout below
			default:
				fmt.Fprintln(sh.out, "usage: .feedback on|off|stats")
				return
			}
		}
		state := "off"
		if sh.db.FeedbackEnabled() {
			state = "on"
		}
		m := sh.db.Metrics()
		fmt.Fprintf(sh.out, "feedback: %s  updates: %d  marked: %d  reopts: %d  max-q: %.1f\n",
			state, m.FeedbackUpdates, m.FeedbackMarked, m.FeedbackReopts, m.FeedbackMaxQ)
	case ".explain":
		query := strings.TrimSpace(strings.TrimPrefix(line, ".explain"))
		info, err := sh.db.ExplainContext(context.Background(), query,
			engine.WithStrategy(sh.strategy))
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, info.String())
	default:
		fmt.Fprintf(sh.out, "unknown command %s (.help for help)\n", fields[0])
	}
}

// printMetrics renders the session-wide metrics snapshot.
func (sh *shell) printMetrics(m obs.Metrics) {
	fmt.Fprintf(sh.out, "plans: %d  queries: %d  errors: %d\n", m.Plans, m.Queries, m.Errors)
	if len(m.ByStrategy) > 0 {
		keys := make([]string, 0, len(m.ByStrategy))
		for k := range m.ByStrategy {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(sh.out, "by strategy:")
		for _, k := range keys {
			fmt.Fprintf(sh.out, " %s=%d", k, m.ByStrategy[k])
		}
		fmt.Fprintln(sh.out)
	}
	fmt.Fprintf(sh.out, "emst chosen: %d  pre-emst chosen: %d  cost saved: %.1f\n",
		m.EMSTChosen, m.PreEMSTChosen, m.CostDelta)
	fmt.Fprintf(sh.out, "optimize: %v  execute: %v\n",
		time.Duration(m.OptimizeNanos), time.Duration(m.ExecNanos))
	fmt.Fprintf(sh.out, "exec: base-rows=%d box-evals=%d hash-builds=%d hash-probes=%d index-lookups=%d output-rows=%d\n",
		m.Exec.BaseRows, m.Exec.BoxEvals, m.Exec.HashBuilds, m.Exec.HashProbes,
		m.Exec.IndexLookups, m.Exec.OutputRows)
	fmt.Fprintf(sh.out, "intern: strings=%d bytes=%d hits=%d misses=%d\n",
		m.Intern.Strings, m.Intern.Bytes, m.Intern.Hits, m.Intern.Misses)
	if len(m.OpRows) > 0 {
		keys := make([]string, 0, len(m.OpRows))
		for k := range m.OpRows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(sh.out, "operators:")
		for _, k := range keys {
			fmt.Fprintf(sh.out, " %s=%d", k, m.OpRows[k])
		}
		fmt.Fprintln(sh.out)
	}
	if len(m.RuleFires) > 0 {
		keys := make([]string, 0, len(m.RuleFires))
		for k := range m.RuleFires {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(sh.out, "rule fires:")
		for _, k := range keys {
			fmt.Fprintf(sh.out, " %s=%d", k, m.RuleFires[k])
		}
		fmt.Fprintln(sh.out)
	}
}

func (sh *shell) printResult(res *engine.Result) {
	widths := make([]int, len(res.Columns))
	cells := make([][]string, 0, len(res.Rows)+1)
	header := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		header[i] = c
		widths[i] = len(c)
	}
	cells = append(cells, header)
	for _, row := range res.Rows {
		line := make([]string, len(row))
		for i, d := range row {
			line[i] = d.Format()
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	for ri, line := range cells {
		var sb strings.Builder
		for i, cell := range line {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(sh.out, sb.String())
		if ri == 0 {
			fmt.Fprintln(sh.out, strings.Repeat("-", len(sb.String())))
		}
	}
	fmt.Fprintf(sh.out, "(%d rows)\n", len(res.Rows))
	if sh.showPlan && res.Plan.Physical != "" {
		fmt.Fprint(sh.out, res.Plan.Physical)
	}
	if sh.timing {
		fmt.Fprintf(sh.out, "optimize %v, execute %v (strategy %s, emst-plan=%v)\n",
			res.Plan.OptimizeTime, res.Plan.ExecTime, res.Plan.Strategy, res.Plan.UsedEMST)
		if res.Plan.Mem.LimitBytes > 0 || res.Plan.Mem.Spills > 0 {
			fmt.Fprintf(sh.out, "memory: peak=%d limit=%d spills=%d spilled-bytes=%d\n",
				res.Plan.Mem.PeakBytes, res.Plan.Mem.LimitBytes,
				res.Plan.Mem.Spills, res.Plan.Mem.SpilledBytes)
		}
	}
}

// splitStatements splits on top-level semicolons, respecting string
// literals.
func splitStatements(script string) []string {
	var out []string
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inStr = !inStr
			sb.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, sb.String())
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	out = append(out, sb.String())
	return out
}

func firstWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
