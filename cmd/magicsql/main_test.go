package main

import (
	"bytes"
	"strings"
	"testing"

	"starmagic/internal/engine"
)

func newShell() (*shell, *bytes.Buffer) {
	var buf bytes.Buffer
	return &shell{db: engine.New(), strategy: engine.EMST, out: &buf}, &buf
}

func TestSplitStatements(t *testing.T) {
	got := splitStatements("SELECT 1; SELECT 'a;b'; INSERT INTO t VALUES ('x')")
	if len(got) != 3 {
		t.Fatalf("split into %d: %q", len(got), got)
	}
	if !strings.Contains(got[1], "a;b") {
		t.Errorf("semicolon inside string split: %q", got[1])
	}
}

func TestShellRunScriptAndPrint(t *testing.T) {
	sh, buf := newShell()
	script := `
	CREATE TABLE t (a INT, b VARCHAR(5), PRIMARY KEY (a));
	INSERT INTO t VALUES (1, 'x'), (2, 'y');
	SELECT a, b FROM t WHERE a = 2;`
	if err := sh.runScript(script); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a | b", "2 | y", "(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellDotCommands(t *testing.T) {
	sh, buf := newShell()
	if err := sh.runScript("CREATE TABLE t (a INT, PRIMARY KEY (a)); CREATE VIEW v AS SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	sh.dotCommand(".tables")
	sh.dotCommand(".strategy correlated")
	sh.dotCommand(".strategy")
	sh.dotCommand(".timing on")
	sh.dotCommand(".help")
	sh.dotCommand(".explain SELECT a FROM v WHERE a = 1")
	sh.dotCommand(".bogus")
	out := buf.String()
	for _, want := range []string{"table t", "view  v", "strategy: correlated", "timing: true", "-- initial --", "unknown command"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if sh.strategy != engine.Correlated {
		t.Error("strategy not switched")
	}
}

func TestShellTimingOutput(t *testing.T) {
	sh, buf := newShell()
	sh.timing = true
	if err := sh.runScript("CREATE TABLE t (a INT, PRIMARY KEY (a)); INSERT INTO t VALUES (1); SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "optimize") {
		t.Errorf("timing line missing:\n%s", buf.String())
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{"65536": 65536, "64kb": 64 << 10, "4MB": 4 << 20, "1gb": 1 << 30}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "kb", "4x", "1.5mb"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) succeeded", bad)
		}
	}
}

func TestShellMemAndAdmissionCommands(t *testing.T) {
	sh, buf := newShell()
	sh.timing = true
	sh.dotCommand(".mem 2kb")
	sh.dotCommand(".admission 2 4")
	script := `
	CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a));
	INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'z');
	SELECT DISTINCT b FROM t ORDER BY b;`
	if err := sh.runScript(script); err != nil {
		t.Fatal(err)
	}
	sh.dotCommand(".mem")
	sh.dotCommand(".admission")
	sh.dotCommand(".mem off")
	sh.dotCommand(".admission off")
	sh.dotCommand(".mem bogus")
	out := buf.String()
	for _, want := range []string{
		"memory: per-query=2048 total=0",
		"admission: max-concurrent=2 max-queue=4",
		"admitted=",
		"memory: peak=", // the timing line reports the budgeted run
		"memory: unlimited",
		"admission: off",
		"usage: .mem",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellStatsCommand(t *testing.T) {
	sh, buf := newShell()
	script := `
	CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a));
	INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, NULL);`
	if err := sh.runScript(script); err != nil {
		t.Fatal(err)
	}
	sh.db.Analyze()
	sh.dotCommand(".stats t")
	sh.dotCommand(".stats t a")
	sh.dotCommand(".stats t nope")
	sh.dotCommand(".stats missing")
	sh.dotCommand(".stats")
	out := buf.String()
	for _, want := range []string{
		"table t: 4 rows",
		"a INT: ndv=4 nulls=0 min=1 max=4",
		"b VARCHAR: ndv=2 nulls=1",
		"histogram:", // per-column histogram summary line
		"bucket  0",  // full dump for .stats t a
		"no such column t.nope",
		"no such table missing",
		"usage: .stats <table>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellFeedbackCommand(t *testing.T) {
	sh, buf := newShell()
	sh.dotCommand(".feedback")
	sh.dotCommand(".feedback off")
	sh.dotCommand(".feedback on")
	sh.dotCommand(".feedback stats")
	sh.dotCommand(".feedback bogus")
	out := buf.String()
	for _, want := range []string{
		"feedback: on  updates: 0",
		"feedback: off",
		"max-q:",
		"usage: .feedback on|off|stats",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !sh.db.FeedbackEnabled() {
		t.Error("feedback left disabled")
	}
}

func TestShellErrorPropagates(t *testing.T) {
	sh, _ := newShell()
	if err := sh.runScript("SELECT * FROM missing"); err == nil {
		t.Error("missing table did not error")
	}
}
