// Command magicserver serves a starmagic database over the MySQL
// client/server protocol, so any stock MySQL client can connect:
//
//	magicserver -addr :3306 -init schema.sql -user root -password secret
//	mysql -h 127.0.0.1 -P 3306 -u root -psecret
//
// The server is a thin shell over internal/wire: one in-memory database,
// optionally seeded from an -init SQL script, with the engine's resource
// controls (memory governor, admission queue, parallelism) exposed as
// flags. SIGINT/SIGTERM shut it down gracefully: the listener closes,
// in-flight query contexts are cancelled, and connection goroutines drain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"starmagic"
	"starmagic/internal/wire"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:3306", "listen address")
		initFile      = flag.String("init", "", "SQL script to run at startup (DDL/INSERT)")
		user          = flag.String("user", "", "required username (empty accepts any)")
		password      = flag.String("password", "", "required password (empty accepts none)")
		memPerQuery   = flag.Int64("mem-per-query", 0, "per-query memory budget in bytes (0 = unlimited)")
		memTotal      = flag.Int64("mem-total", 0, "total memory budget across queries in bytes (0 = unlimited)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = unlimited)")
		maxQueue      = flag.Int("max-queue", 64, "max queries waiting for an execution slot")
		parallelism   = flag.Int("parallelism", 0, "intra-query parallelism (0/1 serial, -1 = GOMAXPROCS)")
		maxConns      = flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
		metricsDump   = flag.Bool("metrics", false, "dump engine and wire metrics as JSON on shutdown")
	)
	flag.Parse()

	db := starmagic.Open()
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("magicserver: %v", err)
		}
		n, err := db.Exec(string(script))
		if err != nil {
			log.Fatalf("magicserver: init script: %v", err)
		}
		db.Analyze()
		log.Printf("magicserver: init script loaded %d rows", n)
	}
	db.SetMemoryLimit(*memPerQuery, *memTotal)
	db.SetAdmission(*maxConcurrent, *maxQueue)
	db.SetParallelism(*parallelism)

	srv := wire.NewServer(db, wire.Config{
		User:     *user,
		Password: *password,
		MaxConns: *maxConns,
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("magicserver: %s, shutting down", s)
		srv.Close()
	}()

	log.Printf("magicserver: serving MySQL protocol on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("magicserver: %v", err)
	}
	db.Close()
	if *metricsDump {
		out, _ := json.MarshalIndent(map[string]any{
			"wire":   srv.Metrics(),
			"engine": db.Metrics(),
			"cache":  db.PlanCacheStats(),
		}, "", "  ")
		fmt.Println(string(out))
	}
	log.Printf("magicserver: stopped")
}
