// Command magicserver serves a starmagic database over the MySQL
// client/server protocol, so any stock MySQL client can connect:
//
//	magicserver -addr :3306 -init schema.sql -user root -password secret
//	mysql -h 127.0.0.1 -P 3306 -u root -psecret
//
// The server is a thin shell over internal/wire: one database — in-memory
// by default, durable when -data names a directory (write-ahead logged,
// checkpointed, recovered on start; -durability picks the fsync policy) —
// optionally seeded from an -init SQL script, with the engine's resource
// controls (memory governor, admission queue, parallelism) exposed as
// flags. SIGINT/SIGTERM shut it down gracefully: the listener closes,
// in-flight query contexts are cancelled, connection goroutines drain, and
// the write-ahead log is flushed and closed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"starmagic"
	"starmagic/internal/wire"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:3306", "listen address")
		dataDir       = flag.String("data", "", "data directory for a durable database (empty = in-memory)")
		durability    = flag.String("durability", "commit", "commit fsync policy: commit, interval, or never (-data only)")
		initFile      = flag.String("init", "", "SQL script to run at startup (DDL/INSERT)")
		user          = flag.String("user", "", "required username (empty accepts any)")
		password      = flag.String("password", "", "required password (empty accepts none)")
		memPerQuery   = flag.Int64("mem-per-query", 0, "per-query memory budget in bytes (0 = unlimited)")
		memTotal      = flag.Int64("mem-total", 0, "total memory budget across queries in bytes (0 = unlimited)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = unlimited)")
		maxQueue      = flag.Int("max-queue", 64, "max queries waiting for an execution slot")
		parallelism   = flag.Int("parallelism", 0, "intra-query parallelism (0/1 serial, -1 = GOMAXPROCS)")
		maxConns      = flag.Int("max-conns", 0, "max concurrent client connections (0 = unlimited)")
		metricsDump   = flag.Bool("metrics", false, "dump engine and wire metrics as JSON on shutdown")
	)
	flag.Parse()

	var db *starmagic.DB
	if *dataDir != "" {
		var err error
		db, err = starmagic.OpenDir(*dataDir)
		if err != nil {
			log.Fatalf("magicserver: %v", err)
		}
		switch *durability {
		case "commit":
			db.SetDurability(starmagic.SyncCommit)
		case "interval":
			db.SetDurability(starmagic.SyncInterval)
		case "never":
			db.SetDurability(starmagic.SyncNever)
		default:
			log.Fatalf("magicserver: unknown -durability %q (want commit, interval, or never)", *durability)
		}
		d, n := db.RecoveryStats()
		log.Printf("magicserver: data dir %s recovered (%d log records in %s)", *dataDir, n, d)
	} else {
		db = starmagic.Open()
	}
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("magicserver: %v", err)
		}
		n, err := db.Exec(string(script))
		if err != nil {
			log.Fatalf("magicserver: init script: %v", err)
		}
		db.Analyze()
		log.Printf("magicserver: init script loaded %d rows", n)
	}
	db.SetMemoryLimit(*memPerQuery, *memTotal)
	db.SetAdmission(*maxConcurrent, *maxQueue)
	db.SetParallelism(*parallelism)

	srv := wire.NewServer(db, wire.Config{
		User:     *user,
		Password: *password,
		MaxConns: *maxConns,
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("magicserver: %s, shutting down", s)
		srv.Close()
	}()

	log.Printf("magicserver: serving MySQL protocol on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("magicserver: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Printf("magicserver: close: %v", err)
	}
	if *metricsDump {
		out, _ := json.MarshalIndent(map[string]any{
			"wire":   srv.Metrics(),
			"engine": db.Metrics(),
			"cache":  db.PlanCacheStats(),
		}, "", "  ")
		fmt.Println(string(out))
	}
	log.Printf("magicserver: stopped")
}
