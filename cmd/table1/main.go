// Command table1 regenerates the paper's Table 1: elapsed times of eight
// decision-support experiments under the Original, Correlated and EMST
// strategies, normalized to Original = 100.
//
// Usage:
//
//	table1 [-scale N] [-reps N] [-mem BYTES] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"starmagic/internal/bench"
	"starmagic/internal/engine"
)

func main() {
	scale := flag.Int("scale", 1, "data size multiplier")
	reps := flag.Int("reps", 3, "executions per measurement (fastest wins)")
	parallel := flag.Int("parallel", 0, "intra-query parallelism (0/1 serial, -1 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print raw timings, counters, and regimes")
	metrics := flag.Bool("metrics", false, "print the database-wide metrics snapshot after the runs")
	ablation := flag.Bool("ablation", false, "also run the design-choice ablation study on experiments G and H")
	sweep := flag.Bool("sweep", false, "also sweep outer width on the experiment-C query (crossover curve)")
	mem := flag.Int64("mem", 0, "per-query memory budget in bytes (0 = unlimited); capped operators spill to disk")
	flag.Parse()

	cfg := bench.DefaultConfig().WithScale(*scale)
	fmt.Printf("loading benchmark data (scale %d: %d departments, %d employees, %d sales, %d orders)...\n",
		*scale, cfg.Departments, cfg.Departments*cfg.EmpsPerDept,
		cfg.Departments*cfg.SalesPerDept, cfg.Departments*cfg.OrdersPerDept)
	db, err := bench.NewDB(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	db.SetParallelism(*parallel)
	if *mem > 0 {
		db.SetMemoryLimit(*mem, 0)
		fmt.Printf("per-query memory budget: %d bytes (operators spill beyond it)\n", *mem)
	}

	rows, err := bench.Table1(db, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("Table 1: Elapsed Time (Original = 100)")
	fmt.Print(bench.FormatTable(rows))
	if *mem > 0 {
		m := db.Metrics()
		fmt.Printf("\nmemory governance: peak=%d bytes  spills=%d  spilled-bytes=%d (budget %d)\n",
			m.MemPeakBytes, m.Spills, m.BytesSpilled, *mem)
	}

	if *ablation {
		fmt.Println()
		fmt.Println("Ablation study (full EMST = 100 per experiment; plan always executed)")
		arows, err := bench.RunAblations(db, []string{"B", "G", "H", "S"}, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatAblations(arows))
	}

	if *sweep {
		fmt.Println()
		fmt.Println("Outer-width sweep over the unindexed fact view (Original = 100 per row)")
		pts, err := bench.Sweep(db, []int{1, 2, 5, 10, 20, 40, 80, 120, 150}, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatSweep(pts))
	}

	if *verbose {
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("Exp %s — %s\n  regime: %s\n", r.Experiment.ID, r.Experiment.Name, r.Experiment.Regime)
			for _, s := range []engine.Strategy{engine.Original, engine.Correlated, engine.EMST} {
				m := r.Raw[s]
				fmt.Printf("  %-10s %12v rows=%-6d base-rows=%-8d probes=%-8d emst-plan=%v\n",
					s, m.Elapsed, m.Rows, m.Counters.BaseRows, m.Counters.HashProbes, m.UsedEMST)
			}
		}
	}

	if *metrics {
		m := db.Metrics()
		fmt.Println()
		fmt.Println("Database metrics across all runs:")
		fmt.Printf("  plans: %d  queries: %d  errors: %d\n", m.Plans, m.Queries, m.Errors)
		keys := make([]string, 0, len(m.ByStrategy))
		for k := range m.ByStrategy {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  queries[%s] = %d\n", k, m.ByStrategy[k])
		}
		fmt.Printf("  emst chosen: %d  pre-emst chosen: %d  estimated cost saved: %.1f\n",
			m.EMSTChosen, m.PreEMSTChosen, m.CostDelta)
		fmt.Printf("  optimize: %v  execute: %v\n",
			time.Duration(m.OptimizeNanos), time.Duration(m.ExecNanos))
		fmt.Printf("  exec: base-rows=%d hash-builds=%d hash-probes=%d index-lookups=%d output-rows=%d\n",
			m.Exec.BaseRows, m.Exec.HashBuilds, m.Exec.HashProbes,
			m.Exec.IndexLookups, m.Exec.OutputRows)
		rules := make([]string, 0, len(m.RuleFires))
		for k := range m.RuleFires {
			rules = append(rules, k)
		}
		sort.Strings(rules)
		for _, k := range rules {
			fmt.Printf("  fires[%s] = %d\n", k, m.RuleFires[k])
		}
	}
}
