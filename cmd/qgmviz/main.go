// Command qgmviz dumps the QGM query graph of a query at every rewrite
// phase, reproducing the paper's Figures 1 and 4 in textual form: the
// initial graph, the graph after phase-1 rewrite, after the magic-sets
// transformation (phase 2), and after phase-3 simplification, together with
// box/join counts and the plan-cost comparison.
//
// With no flags it runs the paper's query D from Example 1.1 over a small
// built-in instance of the employee/department schema.
//
// Usage:
//
//	qgmviz [-schema file.sql] [-query "SELECT ..."] [-strategy emst|original|correlated]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"starmagic/internal/bench"
	"starmagic/internal/engine"
)

const paperSchema = `
CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
CREATE INDEX emp_dept ON employee (workdept);
CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
  SELECT e.empno, e.empname, e.workdept, e.salary
  FROM employee e, department d WHERE e.empno = d.mgrno;
CREATE VIEW avgMgrSal (workdept, avgsalary) AS
  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
INSERT INTO department VALUES (1, 'Planning', 101), (2, 'Dev', 201), (3, 'Sales', 301);
INSERT INTO employee VALUES
  (101, 'alice', 1, 1000), (102, 'bob', 1, 500),
  (201, 'carol', 2, 800), (202, 'dan', 2, 600),
  (301, 'eve', 3, 700), (302, 'frank', 3, 400);
`

const queryD = `SELECT d.deptname, s.workdept, s.avgsalary
FROM department d, avgMgrSal s
WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`

func main() {
	schemaFile := flag.String("schema", "", "SQL script with DDL and data (default: the paper's Example 1.1 schema)")
	query := flag.String("query", queryD, "query to visualize (default: the paper's query D)")
	strategy := flag.String("strategy", "emst", "emst, original, or correlated")
	bench1 := flag.Bool("bench-schema", false, "use the Table 1 benchmark schema instead")
	dot := flag.Bool("dot", false, "emit Graphviz DOT (one digraph per phase) instead of text")
	flag.Parse()

	db := engine.New()
	switch {
	case *schemaFile != "":
		script, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		if _, err := db.Exec(string(script)); err != nil {
			fatal(err)
		}
	case *bench1:
		var err error
		db, err = bench.NewDB(bench.DefaultConfig())
		if err != nil {
			fatal(err)
		}
	default:
		if _, err := db.Exec(paperSchema); err != nil {
			fatal(err)
		}
	}

	strat, err := engine.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	info, err := db.ExplainContext(context.Background(), *query, engine.WithStrategy(strat))
	if err != nil {
		fatal(err)
	}
	if *dot {
		// One digraph per captured phase snapshot plus the executed plan.
		for _, p := range info.Phases {
			if p.HasSnapshot {
				fmt.Print(p.DOT)
			}
		}
		fmt.Print(info.PlanDOT)
		return
	}
	fmt.Print(info.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qgmviz:", err)
	os.Exit(1)
}
