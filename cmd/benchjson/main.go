// Command benchjson runs the performance-trajectory benchmark suite in
// process (via testing.Benchmark) and writes machine-readable results to a
// JSON file: ns/op, bytes/op and allocs/op for the row-key encoders, the
// hash-join build, cold-vs-cached prepares, and every Table-1 experiment
// under each strategy.
//
// `make bench-json` writes BENCH_$(N).json at the repository root (see the
// Makefile's BENCH_OUT variable) so successive PRs can track executor
// performance against recorded baselines.
//
// With -baseline it additionally compares the fresh run against a recorded
// report and exits non-zero if any gated benchmark (row-key encoders,
// hash-join build, prepare path) regressed in ns/op by more than -threshold
// percent — `make bench-check` uses this as the perf-regression gate.
//
// Usage:
//
//	benchjson [-out BENCH.json] [-experiments A,B,...] [-scale N]
//	          [-baseline BENCH_1.json] [-threshold 15]
//	          [-gate rowkey/,hashjoin_build/,prepare/,spill/,vec/,wire/,mvcc/,stats/,wal/]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"starmagic"
	"starmagic/internal/bench"
	"starmagic/internal/datum"
	"starmagic/internal/engine"
	"starmagic/internal/wal"
	"starmagic/internal/wire"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Scale      int      `json:"scale"`
	Results    []result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output file")
	expFilter := flag.String("experiments", "A,B,C,D,E,F,G,H", "comma-separated Table-1 experiment IDs (empty = skip)")
	scale := flag.Int("scale", 1, "benchmark data size multiplier")
	baseline := flag.String("baseline", "", "baseline report to compare against (empty = no comparison)")
	threshold := flag.Float64("threshold", 15, "max allowed ns/op regression over the baseline, in percent")
	gate := flag.String("gate", "rowkey/,hashjoin_build/,prepare/,spill/,vec/,wire/,mvcc/,stats/,wal/", "comma-separated name prefixes the regression gate applies to")
	flag.Parse()

	rep := report{
		Schema:     "starmagic-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
	}
	record := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		})
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// Row-key encoders: the binary AppendKey path vs the seed's string path.
	keyRows := bench.KeyRows(1024)
	record("rowkey/binary", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 64)
		for i := 0; i < b.N; i++ {
			buf = datum.AppendKey(buf[:0], keyRows[i%len(keyRows)])
		}
	})
	record("rowkey/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bench.LegacyRowKey(keyRows[i%len(keyRows)])
		}
	})

	// Hash-join build: fresh evaluator per execution over unindexed tables.
	if err := hashJoinBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "hash-join bench:", err)
		os.Exit(1)
	}

	// Streaming early exit: EXISTS and LIMIT over a 100k-row table,
	// streaming versus the materializing baseline.
	if err := earlyExitBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "early-exit bench:", err)
		os.Exit(1)
	}

	// Prepare path: a cold optimization versus a plan-cache hit for a
	// parameterized query over the Table-1 schema.
	if err := prepareBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "prepare bench:", err)
		os.Exit(1)
	}

	// Spill overhead: the same join and sort with unlimited memory versus a
	// budget tight enough to force disk spilling.
	if err := spillBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "spill bench:", err)
		os.Exit(1)
	}

	// Vectorized-vs-row executor pairs, normalized to ns per input row.
	recordPerRow := func(name string, rows int, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N) / float64(rows),
			BytesPerOp:  r.AllocedBytesPerOp() / int64(rows),
			AllocsPerOp: r.AllocsPerOp() / int64(rows),
			Iterations:  r.N,
		})
		fmt.Printf("%-28s %12.2f ns/row %10d B/row %8d allocs/row\n",
			name, float64(r.T.Nanoseconds())/float64(r.N)/float64(rows),
			r.AllocedBytesPerOp()/int64(rows), r.AllocsPerOp()/int64(rows))
	}
	if err := vecBench(recordPerRow); err != nil {
		fmt.Fprintln(os.Stderr, "vec bench:", err)
		os.Exit(1)
	}

	// Wire protocol: a full-table COM_QUERY round-trip (handshake excluded,
	// ns per streamed row) and a plan-cache-served COM_STMT_EXECUTE.
	if err := wireBench(record, recordPerRow); err != nil {
		fmt.Fprintln(os.Stderr, "wire bench:", err)
		os.Exit(1)
	}

	// MVCC: transaction commit latency and DML throughput while a long
	// streaming scan is open (the lock-free-read guarantee, measured).
	if err := mvccBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "mvcc bench:", err)
		os.Exit(1)
	}

	// Statistics: full-ANALYZE cost per row (histograms included) and one
	// equality + one range histogram probe.
	if err := statsBench(record, recordPerRow); err != nil {
		fmt.Fprintln(os.Stderr, "stats bench:", err)
		os.Exit(1)
	}

	// Skewed plan pick A/B: on a Zipf-skewed Table-1 instance, the plan the
	// histogram-backed cost comparison chose versus the magic plan the flat
	// uniformity assumption would have picked.
	if err := skewedPlanBench(record); err != nil {
		fmt.Fprintln(os.Stderr, "skewed-plan bench:", err)
		os.Exit(1)
	}

	// WAL: per-commit fsync latency, the same workload under concurrent
	// committers sharing group-commit fsyncs, and log-replay recovery speed
	// normalized per MB of log.
	recordValue := func(name string, val float64, unit string, iters int) {
		rep.Results = append(rep.Results, result{Name: name, NsPerOp: val, Iterations: iters})
		fmt.Printf("%-28s %12.2f %s\n", name, val, unit)
	}
	if err := walBench(record, recordValue); err != nil {
		fmt.Fprintln(os.Stderr, "wal bench:", err)
		os.Exit(1)
	}

	// Table-1 experiments under each strategy.
	ids := map[string]bool{}
	for _, id := range strings.Split(*expFilter, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids[strings.ToUpper(id)] = true
		}
	}
	if len(ids) > 0 {
		cfg := bench.Config{Departments: 100, EmpsPerDept: 20, SalesPerDept: 80, OrdersPerDept: 80, Seed: 1994}
		if *scale > 1 {
			cfg = bench.DefaultConfig().WithScale(*scale)
		}
		db, err := bench.NewDB(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "setup:", err)
			os.Exit(1)
		}
		for _, e := range bench.Experiments() {
			if !ids[e.ID] {
				continue
			}
			for _, s := range []engine.Strategy{engine.Original, engine.Correlated, engine.EMST} {
				p, err := db.Prepare(e.Query, s)
				if err != nil {
					fmt.Fprintf(os.Stderr, "prepare %s/%s: %v\n", e.ID, s, err)
					os.Exit(1)
				}
				record(fmt.Sprintf("exp%s/%s", e.ID, s), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := p.Execute(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))

	if *baseline != "" {
		if !compareBaseline(rep, *baseline, *threshold, strings.Split(*gate, ",")) {
			os.Exit(1)
		}
	}
}

// compareBaseline checks the fresh results against a recorded report and
// reports per-benchmark deltas. It returns false if any benchmark whose name
// matches a gated prefix regressed in ns/op by more than threshold percent.
// Benchmarks absent from the baseline (newly added) pass trivially.
func compareBaseline(rep report, path string, threshold float64, gates []string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		return false
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "baseline %s: %v\n", path, err)
		return false
	}
	old := map[string]result{}
	for _, r := range base.Results {
		old[r.Name] = r
	}
	gated := func(name string) bool {
		for _, g := range gates {
			if g = strings.TrimSpace(g); g != "" && strings.HasPrefix(name, g) {
				return true
			}
		}
		return false
	}
	ok := true
	fmt.Printf("\nagainst %s (threshold %+.0f%% on gated benchmarks):\n", path, threshold)
	for _, r := range rep.Results {
		b, found := old[r.Name]
		if !found || b.NsPerOp <= 0 {
			fmt.Printf("  %-28s (no baseline)\n", r.Name)
			continue
		}
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		verdict := "ok"
		if gated(r.Name) && delta > threshold {
			verdict = "REGRESSION"
			ok = false
		} else if !gated(r.Name) {
			verdict = "info"
		}
		fmt.Printf("  %-28s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, delta, verdict)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: performance regression beyond %.0f%% detected\n", threshold)
	}
	return ok
}

// prepareBench measures what the plan cache amortizes: a cold prepare runs
// the full parse→bind→rewrite→cost pipeline (two plan-optimization passes
// around the magic transformation); a cache hit is a sharded map lookup plus
// a shallow per-call copy. The query is parameterized, so one cached plan —
// magic seed included — serves every binding.
func prepareBench(record func(string, func(b *testing.B))) error {
	db, err := bench.NewDB(bench.Config{Departments: 100, EmpsPerDept: 20, SalesPerDept: 80, OrdersPerDept: 80, Seed: 1994})
	if err != nil {
		return err
	}
	const query = `SELECT d.deptname, v.avgsal FROM department d, avgSalary v
	               WHERE d.deptno = v.workdept AND d.deptname = ?`
	ctx := context.Background()
	db.SetPlanCache(false)
	record("prepare/cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.PrepareContext(ctx, query); err != nil {
				b.Fatal(err)
			}
		}
	})
	db.SetPlanCache(true)
	if _, err := db.PrepareContext(ctx, query); err != nil {
		return err
	}
	record("prepare/cache_hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.PrepareContext(ctx, query); err != nil {
				b.Fatal(err)
			}
		}
	})
	return nil
}

// spillBench measures what the memory governor costs: the same hash join
// and sort entirely in memory (`*_mem`) and under a budget small enough
// that the join build pages partitions out and the sort runs externally
// (`*_disk`). The gap between the pairs is the price of graceful
// degradation instead of unbounded growth.
func spillBench(record func(string, func(b *testing.B))) error {
	const rows = 8192
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE fact (id INT, k INT, pad VARCHAR);
	CREATE TABLE dim (k INT, name VARCHAR);`); err != nil {
		return err
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i % 709)),
			datum.String(fmt.Sprintf("pad-%06d-xxxxxxxxxxxxxxxx", i)),
		}
	}
	if err := db.InsertRows("fact", batch); err != nil {
		return err
	}
	dim := make([]datum.Row, 709)
	for i := range dim {
		dim[i] = datum.Row{datum.Int(int64(i)), datum.String(fmt.Sprintf("name-%03d", i))}
	}
	if err := db.InsertRows("dim", dim); err != nil {
		return err
	}
	// ~1.3 MB of fact rows resident; 128 KB forces both operators to spill.
	const budget = 128 << 10
	cases := []struct {
		name  string
		query string
	}{
		{"join", `SELECT f.id FROM fact f, dim d WHERE f.k = d.k AND f.id < 4000`},
		{"sort", `SELECT f.id, f.pad FROM fact f ORDER BY f.pad`},
	}
	ctx := context.Background()
	for _, c := range cases {
		for _, mode := range []struct {
			suffix string
			opts   []engine.QueryOption
		}{
			{"mem", nil},
			{"disk", []engine.QueryOption{engine.WithMemoryLimit(budget)}},
		} {
			p, err := db.PrepareContext(ctx, c.query, mode.opts...)
			if err != nil {
				return err
			}
			// Sanity: the budgeted variant must actually spill, or the pair
			// is not measuring what its name claims.
			res, err := p.ExecuteContext(ctx)
			if err != nil {
				return err
			}
			if mode.suffix == "disk" && res.Plan.Mem.Spills == 0 {
				return fmt.Errorf("spill/%s_disk: no spills under %d-byte budget", c.name, budget)
			}
			record(fmt.Sprintf("spill/%s_%s", c.name, mode.suffix), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.ExecuteContext(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	return nil
}

// vecBench measures the vectorized select operator against the row pipeline
// on the same prepared plans, toggled with SetVectorized: a zero-match scan
// filter (pure predicate cost), a selective mixed int/string filter, and a
// hash join driven by a 64k-row stream probing a grouped-view build. Results
// are normalized to ns per input row so they compare across PRs even if the
// table size changes. Each vec run asserts the ROOT select actually executed
// vectorized — a silent fallback would benchmark the row path twice.
//
// The hash-join shape is picked so the probe loop dominates and the big
// table drives: the view's string-range filter keeps the actual build tiny
// (1024 groups) while its default selectivity estimate keeps the view's
// cardinality estimate high, and the parameterized range filters on t (all
// rows pass) shrink t's estimated stream. The join is pinned to the
// Original strategy — magic rewriting would restructure the view around
// the fooled estimates and benchmark a different plan entirely — and to
// flat statistics: histograms would estimate the string-range filter
// accurately, flip the join order, and benchmark a different plan.
func vecBench(record func(string, int, func(b *testing.B))) error {
	const rows = 65536
	db := engine.New()
	db.SetHistograms(false)
	if _, err := db.Exec(`
	CREATE TABLE vt (a INT, k INT, name VARCHAR);
	CREATE VIEW vtot (ka, total) AS
	  SELECT a, SUM(k) FROM vt WHERE name < 'v-0008' GROUPBY a;`); err != nil {
		return err
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i % 4096)),
			datum.String(fmt.Sprintf("v-%04d", i%512)),
		}
	}
	if err := db.InsertRows("vt", batch); err != nil {
		return err
	}
	cases := []struct {
		name  string
		query string
		args  []any
	}{
		{"scan", `SELECT t.a FROM vt t WHERE t.a < 0`, nil},
		{"filter", `SELECT t.a FROM vt t
		            WHERE t.k >= 100 AND t.k < 200 AND t.name <> 'v-0000'`, nil},
		{"hashjoin", `SELECT t.a, v.total FROM vt t, vtot v
		              WHERE t.a = v.ka AND t.a >= ? AND t.k >= ?`, []any{0, 0}},
	}
	ctx := context.Background()
	defer db.SetVectorized(true)
	for _, c := range cases {
		for _, mode := range []struct {
			prefix string
			vec    bool
		}{
			{"vec", true},
			{"row", false},
		} {
			db.SetVectorized(mode.vec)
			p, err := db.PrepareContext(ctx, c.query, engine.WithStrategy(engine.Original))
			if err != nil {
				return err
			}
			res, err := p.ExecuteContext(ctx, c.args...)
			if err != nil {
				return err
			}
			root := res.Plan.Operators[0]
			if root.Vectorized != mode.vec {
				return fmt.Errorf("%s/%s: root %s vectorized=%v, want %v — plan shape regressed:\n%s",
					mode.prefix, c.name, root.Kind, root.Vectorized, mode.vec, res.Plan.Physical)
			}
			record(fmt.Sprintf("%s/%s_ns_row", mode.prefix, c.name), rows, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.ExecuteContext(ctx, c.args...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	return nil
}

// wireBench measures the MySQL wire path over an in-memory transport
// (net.Pipe, so no kernel TCP noise): `query_ns_row` is a full-table
// COM_QUERY — text rows streamed off the cursor, normalized to ns per row —
// and `stmt_execute_cached` is one binary COM_STMT_EXECUTE round-trip of a
// point query whose plan the sharded cache serves.
func wireBench(record func(string, func(b *testing.B)), recordPerRow func(string, int, func(b *testing.B))) error {
	const rows = 8192
	db := starmagic.Open()
	if _, err := db.Exec(`CREATE TABLE wt (id INT, grp INT, name VARCHAR, PRIMARY KEY (id))`); err != nil {
		return err
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i % 97)),
			datum.String(fmt.Sprintf("name-%05d", i%1000)),
		}
	}
	if err := db.InsertRows("wt", batch); err != nil {
		return err
	}
	srv := wire.NewServer(db, wire.Config{})
	clientSide, serverSide := net.Pipe()
	go srv.ServeConn(serverSide)
	defer func() { _ = clientSide.Close() }()
	c, err := wire.NewClient(clientSide, "bench", "")
	if err != nil {
		return err
	}
	recordPerRow("wire/query_ns_row", rows, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rs, err := c.Query(`SELECT t.id, t.name FROM wt t`)
			if err != nil {
				b.Fatal(err)
			}
			if len(rs.Rows) != rows {
				b.Fatalf("streamed %d rows, want %d", len(rs.Rows), rows)
			}
		}
	})
	st, err := c.Prepare(`SELECT t.name FROM wt t WHERE t.id = ?`)
	if err != nil {
		return err
	}
	record("wire/stmt_execute_cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rs, err := c.Execute(st, int64(i%rows))
			if err != nil {
				b.Fatal(err)
			}
			if len(rs.Rows) != 1 {
				b.Fatalf("point query returned %d rows", len(rs.Rows))
			}
		}
	})
	return nil
}

// mvccBench measures the transaction machinery: `commit_ns` is one
// Begin/INSERT/Commit cycle, and `read_under_write_ns_row` is one
// autocommit INSERT (one row) while a streaming cursor over a 20k-row table
// sits half-drained and open — on the pre-MVCC engine this write would
// block until the cursor closed; under MVCC it must run at normal DML
// latency.
func mvccBench(record func(string, func(b *testing.B))) error {
	db := starmagic.Open()
	if _, err := db.Exec(`CREATE TABLE mt (id INT, v VARCHAR)`); err != nil {
		return err
	}
	const rows = 20000
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{datum.Int(int64(i)), datum.String(fmt.Sprintf("v-%05d", i%1000))}
	}
	if err := db.InsertRows("mt", batch); err != nil {
		return err
	}
	db.Analyze()
	ctx := context.Background()

	record("mvcc/commit_ns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tx := db.Begin()
			if _, err := tx.Exec(fmt.Sprintf(`INSERT INTO mt VALUES (%d, 'c')`, rows+i)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Open a cursor and drain half of it, so the writes below commit under
	// a live snapshot holding old versions.
	cur, err := db.QueryRows(ctx, `SELECT t.id FROM mt t`)
	if err != nil {
		return err
	}
	defer cur.Close()
	for i := 0; i < rows/2; i++ {
		if !cur.Next() {
			return fmt.Errorf("mvcc bench: cursor ended early: %v", cur.Err())
		}
	}
	record("mvcc/read_under_write_ns_row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO mt VALUES (%d, 'w')`, 10_000_000+i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	return nil
}

// statsBench measures the statistics layer: `analyze_ns_row` is one full
// ANALYZE of a 100k-row, three-column table — null/min/max counting, distinct
// estimation, and equi-depth histogram builds — normalized to ns per row, and
// `histogram_probe_ns` is one equality plus one range selectivity probe
// against a built histogram (the estimator's hot path during join-order
// enumeration).
func statsBench(record func(string, func(b *testing.B)), recordPerRow func(string, int, func(b *testing.B))) error {
	const rows = 100_000
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE st (id INT, grp INT, name VARCHAR, PRIMARY KEY (id))`); err != nil {
		return err
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i * i % 9973)),
			datum.String(fmt.Sprintf("n-%05d", i%2500)),
		}
	}
	if err := db.InsertRows("st", batch); err != nil {
		return err
	}
	recordPerRow("stats/analyze_ns_row", rows, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.Analyze()
		}
	})
	tbl, ok := db.Catalog().Table("st")
	if !ok || len(tbl.Stats) < 2 || tbl.Stats[1].Hist == nil {
		return fmt.Errorf("stats bench: no histogram on st.grp after ANALYZE")
	}
	hist := tbl.Stats[1].Hist
	record("stats/histogram_probe_ns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := datum.Int(int64(i % 9973))
			if _, ok := hist.EqSel(v); !ok {
				b.Fatal("equality probe missed")
			}
			if _, ok := hist.LessSel(v, true); !ok {
				b.Fatal("range probe missed")
			}
		}
	})
	return nil
}

// skewedPlanBench is the adaptive-statistics A/B: on a Table-1 instance whose
// deptname column is Zipf-skewed (95% of departments named 'HQ'), the
// histogram-backed cost comparison rejects the magic transformation for the
// heavy value while the flat 1/NDV assumption picks it. `chosen` executes the
// histogram's pick; `flat_pick_magic` forces the plan the flat baseline
// selects. The gap is what adaptive statistics save at runtime.
func skewedPlanBench(record func(string, func(b *testing.B))) error {
	const (
		depts   = 400
		heavy   = 380
		perDept = 8
		queryHQ = `SELECT d.deptno, s.avgsalary FROM department d, avgMgrSal s
		            WHERE d.deptno = s.workdept AND d.deptname = 'HQ'`
		skewDDLB = `
		CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
		CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
		CREATE INDEX emp_workdept ON employee (workdept);
		CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
		  SELECT e.empno, e.empname, e.workdept, e.salary
		  FROM employee e, department d WHERE e.empno = d.mgrno;
		CREATE VIEW avgMgrSal (workdept, avgsalary) AS
		  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;`
	)
	db := engine.New()
	if _, err := db.Exec(skewDDLB); err != nil {
		return err
	}
	dept := make([]datum.Row, 0, depts)
	emp := make([]datum.Row, 0, depts*perDept)
	empno := 0
	for d := 1; d <= depts; d++ {
		name := "HQ"
		if d > heavy {
			name = fmt.Sprintf("D%03d", d)
		}
		dept = append(dept, datum.Row{datum.Int(int64(d)), datum.String(name), datum.Int(int64(empno + 1))})
		for e := 0; e < perDept; e++ {
			empno++
			emp = append(emp, datum.Row{
				datum.Int(int64(empno)), datum.String(fmt.Sprintf("e%d", empno)),
				datum.Int(int64(d)), datum.Float(float64(100 * (1 + empno%9))),
			})
		}
	}
	if err := db.InsertRows("department", dept); err != nil {
		return err
	}
	if err := db.InsertRows("employee", emp); err != nil {
		return err
	}
	ctx := context.Background()
	chosen, err := db.PrepareContext(ctx, queryHQ, engine.WithStrategy(engine.EMST))
	if err != nil {
		return err
	}
	if chosen.Explain().UsedEMST {
		return fmt.Errorf("skewed-plan bench: histogram estimates picked magic for the heavy value")
	}
	forced, err := db.PrepareContext(ctx, queryHQ, engine.WithStrategy(engine.EMST), engine.WithForceEMST())
	if err != nil {
		return err
	}
	for _, c := range []struct {
		name string
		p    *engine.Prepared
	}{
		{"opt/skewed_plan_pick/chosen", chosen},
		{"opt/skewed_plan_pick/flat_pick_magic", forced},
	} {
		p := c.p
		record(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecuteContext(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	return nil
}

// hashJoinBench measures the unindexed equi-join from BenchmarkHashJoinBuild
// serially and with a pinned 4-worker partitioned build.
func hashJoinBench(record func(string, func(b *testing.B))) error {
	const rows = 8192
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE build_side (a INT, b INT);
	CREATE TABLE probe_side (a INT, b INT);`); err != nil {
		return err
	}
	load := func(table string, mod int64) error {
		batch := make([]datum.Row, rows)
		for i := range batch {
			batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i) % mod)}
		}
		return db.InsertRows(table, batch)
	}
	if err := load("build_side", 977); err != nil {
		return err
	}
	if err := load("probe_side", 953); err != nil {
		return err
	}
	const query = `SELECT p.a FROM probe_side p, build_side s
	               WHERE p.b = s.b AND s.a < 50 AND p.a < 50`
	for _, par := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 4}} {
		db.SetParallelism(par.n)
		p, err := db.Prepare(query, engine.EMST)
		if err != nil {
			return err
		}
		record("hashjoin_build/"+par.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.SetParallelism(0)
	return nil
}

// earlyExitBench measures the streaming executor's short-circuits — an
// uncorrelated EXISTS satisfied by its first batch and a LIMIT stopping the
// scan spine — against the materializing evaluator reading all 100k rows.
func earlyExitBench(record func(string, func(b *testing.B))) error {
	const rows = 100_000
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE big (id INT, grp INT);
	CREATE TABLE small (id INT);
	INSERT INTO small VALUES (1), (2), (3);`); err != nil {
		return err
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 97))}
	}
	if err := db.InsertRows("big", batch); err != nil {
		return err
	}
	queries := []struct {
		name  string
		query string
	}{
		{"exists_early_exit", `SELECT s.id FROM small s WHERE EXISTS (SELECT 1 FROM big t)`},
		{"limit_pushdown", `SELECT t.id FROM big t WHERE t.id >= 10 LIMIT 5`},
	}
	for _, q := range queries {
		for _, mode := range []struct {
			name string
			opts []engine.QueryOption
		}{
			{"streaming", nil},
			{"materialized", []engine.QueryOption{engine.WithMaterialized()}},
		} {
			p, err := db.PrepareContext(context.Background(), q.query, mode.opts...)
			if err != nil {
				return err
			}
			record(q.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Execute(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	return nil
}

// walBench measures the durability layer. `wal/commit_fsync_ns` is the
// serial floor: one single-row transaction per iteration, each paying a
// full fsync before it returns. `wal/commit_group_ns` drives the same workload
// from 64 concurrent committers so the flush leader's single fsync covers
// every transaction that buffered while the previous flush was in flight —
// the group-commit win is the ratio between the two. `wal/recovery_ms_per_mb`
// builds a multi-megabyte log, then times OpenDir (checkpoint load + record
// replay + index and intern-table rebuild) normalized per MB of log.
func walBench(record func(string, func(b *testing.B)), recordValue func(string, float64, string, int)) error {
	commitDir, err := os.MkdirTemp("", "starmagic-walbench-commit")
	if err != nil {
		return err
	}
	defer os.RemoveAll(commitDir)
	db, err := engine.OpenDir(commitDir)
	if err != nil {
		return err
	}
	db.SetCheckpointThreshold(0) // no background checkpoints mid-measurement
	if _, err := db.Exec(`CREATE TABLE wt (id INT, v VARCHAR)`); err != nil {
		return err
	}

	// One transaction per op, committed through the parse-free InsertRows
	// path so the pair isolates the durability cost: the serial bench pays
	// a full fsync per commit, the parallel one shares each fsync across
	// every committer the flush leader covers.
	one := []datum.Row{{datum.Int(1), datum.String("durable")}}
	record("wal/commit_fsync_ns", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := db.InsertRows("wt", one); err != nil {
				b.Fatal(err)
			}
		}
	})

	record("wal/commit_group_ns", func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism((64 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := db.InsertRows("wt", one); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	if err := db.Close(); err != nil {
		return err
	}

	// Recovery: build a ~4 MB single-segment log (checkpoints disabled, fsync
	// deferred while loading), then time cold OpenDir+Close over it.
	recDir, err := os.MkdirTemp("", "starmagic-walbench-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(recDir)
	rdb, err := engine.OpenDir(recDir)
	if err != nil {
		return err
	}
	rdb.SetCheckpointThreshold(0)
	rdb.SetDurability(wal.SyncNever)
	if _, err := rdb.Exec(`CREATE TABLE rt (id INT, grp INT, name VARCHAR)`); err != nil {
		return err
	}
	const batchRows = 5000
	logBytes := int64(0)
	for n := 0; logBytes < 4<<20; n += batchRows {
		batch := make([]datum.Row, batchRows)
		for i := range batch {
			batch[i] = datum.Row{
				datum.Int(int64(n + i)),
				datum.Int(int64((n + i) % 997)),
				datum.String(fmt.Sprintf("r-%07d", n+i)),
			}
		}
		if err := rdb.InsertRows("rt", batch); err != nil {
			return err
		}
		logBytes = rdb.Metrics().WAL.SegmentBytes
	}
	if err := rdb.Close(); err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := engine.OpenDir(recDir)
			if err != nil {
				b.Fatal(err)
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	mb := float64(logBytes) / float64(1<<20)
	msPerMB := float64(r.T.Nanoseconds()) / float64(r.N) / 1e6 / mb
	recordValue("wal/recovery_ms_per_mb", msPerMB, fmt.Sprintf("ms/MB (%.1f MB log)", mb), r.N)
	return nil
}
