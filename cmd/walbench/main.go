// Command walbench regenerates the durability tables in EXPERIMENTS.md:
// group-commit throughput (concurrent single-row transactions, fsync per
// flush group) and cold-start recovery time (checkpoint-free log replay),
// each at a set of row counts.
//
// Usage:
//
//	walbench [-rows 10000,100000,1000000] [-writers 64] [-dir ""]
//
// Every run uses fresh temporary directories (removed afterwards) unless
// -dir names a parent to create them under.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/engine"
	"starmagic/internal/wal"
)

func main() {
	rowsFlag := flag.String("rows", "10000,100000,1000000", "comma-separated row counts")
	writers := flag.Int("writers", 64, "concurrent committers in the group-commit run")
	parent := flag.String("dir", "", "parent directory for data dirs (empty = system temp)")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*rowsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "walbench: bad -rows entry %q\n", s)
			os.Exit(1)
		}
		sizes = append(sizes, n)
	}

	fmt.Printf("group commit: %d writers, single-row transactions, SyncCommit\n", *writers)
	fmt.Printf("%10s %12s %12s %10s %12s\n", "rows", "wall", "commits/s", "fsyncs", "mean batch")
	for _, n := range sizes {
		if err := groupCommitRun(n, *writers, *parent); err != nil {
			fmt.Fprintln(os.Stderr, "walbench:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("\nrecovery: batch-loaded log (no checkpoint), cold OpenDir\n")
	fmt.Printf("%10s %10s %12s %12s %12s\n", "rows", "log MB", "recovery", "ms/MB", "records")
	for _, n := range sizes {
		if err := recoveryRun(n, *parent); err != nil {
			fmt.Fprintln(os.Stderr, "walbench:", err)
			os.Exit(1)
		}
	}
}

func groupCommitRun(n, writers int, parent string) error {
	dir, err := os.MkdirTemp(parent, "walbench-commit")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenDir(dir)
	if err != nil {
		return err
	}
	db.SetCheckpointThreshold(0)
	if _, err := db.Exec(`CREATE TABLE wt (id INT, v VARCHAR)`); err != nil {
		return err
	}
	row := []datum.Row{{datum.Int(1), datum.String("durable")}}

	var left atomic.Int64
	left.Store(int64(n))
	errc := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for left.Add(-1) >= 0 {
				if err := db.InsertRows("wt", row); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errc:
		return err
	default:
	}
	w := db.Metrics().WAL
	batch := float64(0)
	if w.Fsyncs > 0 {
		batch = float64(w.Synced) / float64(w.Fsyncs)
	}
	fmt.Printf("%10d %12s %12.0f %10d %12.1f\n",
		n, wall.Round(time.Millisecond), float64(n)/wall.Seconds(), w.Fsyncs, batch)
	return db.Close()
}

func recoveryRun(n int, parent string) error {
	dir, err := os.MkdirTemp(parent, "walbench-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := engine.OpenDir(dir)
	if err != nil {
		return err
	}
	db.SetCheckpointThreshold(0)
	db.SetDurability(wal.SyncNever)
	if _, err := db.Exec(`CREATE TABLE rt (id INT, grp INT, name VARCHAR)`); err != nil {
		return err
	}
	const batchRows = 5000
	for done := 0; done < n; {
		c := batchRows
		if n-done < c {
			c = n - done
		}
		batch := make([]datum.Row, c)
		for i := range batch {
			batch[i] = datum.Row{
				datum.Int(int64(done + i)),
				datum.Int(int64((done + i) % 997)),
				datum.String(fmt.Sprintf("r-%07d", done+i)),
			}
		}
		if err := db.InsertRows("rt", batch); err != nil {
			return err
		}
		done += c
	}
	logBytes := db.Metrics().WAL.SegmentBytes
	if err := db.Close(); err != nil {
		return err
	}

	db, err = engine.OpenDir(dir)
	if err != nil {
		return err
	}
	d, records := db.RecoveryStats()
	mb := float64(logBytes) / float64(1<<20)
	fmt.Printf("%10d %10.1f %12s %12.1f %12d\n",
		n, mb, d.Round(time.Millisecond), float64(d.Milliseconds())/mb, records)
	return db.Close()
}
