// Command optcost reproduces the paper's §3.2 join-order enumeration
// argument. Applying EMST for every possible join order would require
// running the plan optimizer once per subset of quantifiers (2^n options in
// a box with n quantifiers); the Starburst heuristic instead runs plan
// optimization exactly twice — once before and once after EMST — for a
// total join-order determination cost of O(2^{n+1}).
//
// For join chains of increasing width the tool reports the join orders the
// heuristic actually examined (two dynamic-programming passes) against the
// orders the naive scheme would examine (2^n plan-optimizer invocations).
//
// Usage:
//
//	optcost [-max N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"starmagic/internal/datum"
	"starmagic/internal/engine"
)

func main() {
	maxN := flag.Int("max", 9, "maximum join width")
	flag.Parse()

	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE edge (src INT, dst INT, w FLOAT, PRIMARY KEY (src, dst));
		CREATE INDEX edge_src ON edge (src); CREATE INDEX edge_dst ON edge (dst)`); err != nil {
		fatal(err)
	}
	var rows []datum.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, datum.Row{
			datum.Int(int64(i)), datum.Int(int64((i*7 + 3) % 500)), datum.Float(float64(i % 97)),
		})
	}
	if err := db.InsertRows("edge", rows); err != nil {
		fatal(err)
	}
	db.Analyze()

	fmt.Printf("%-4s %18s %22s %14s\n", "n", "heuristic orders", "naive (2^n x 1 pass)", "ratio")
	ctx := context.Background()
	for n := 2; n <= *maxN; n++ {
		info, err := db.ExplainContext(ctx, chainQuery(n))
		if err != nil {
			fatal(err)
		}
		// The heuristic ran the plan optimizer twice; a naive scheme runs it
		// once per bound-attribute subset of the widest box: 2^n times the
		// single-pass effort.
		onePass := info.PlansConsidered / 2
		naive := (1 << uint(n)) * onePass
		fmt.Printf("%-4d %18d %22d %13.1fx\n", n, info.PlansConsidered, naive,
			float64(naive)/float64(info.PlansConsidered))
	}
}

// chainQuery builds an n-way self-join chain over edge.
func chainQuery(n int) string {
	var from, where []string
	for i := 0; i < n; i++ {
		from = append(from, fmt.Sprintf("edge e%d", i))
		if i > 0 {
			where = append(where, fmt.Sprintf("e%d.dst = e%d.src", i-1, i))
		}
	}
	where = append(where, "e0.src < 10")
	return "SELECT e0.src FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(where, " AND ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optcost:", err)
	os.Exit(1)
}
