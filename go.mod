module starmagic

go 1.22
