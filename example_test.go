package starmagic_test

import (
	"context"
	"fmt"
	"os"

	"starmagic"
)

// ExampleWithArgs prepares one parameterized query and executes it with two
// different bindings; the plan is optimized once and the cached plan serves
// both executions.
func ExampleWithArgs() {
	db := starmagic.Open()
	db.MustExec(`
		CREATE TABLE department (deptno INT, deptname VARCHAR, PRIMARY KEY (deptno));
		CREATE TABLE employee (empno INT, workdept INT, salary FLOAT, PRIMARY KEY (empno));
		INSERT INTO department VALUES (1, 'Planning'), (2, 'Support');
		INSERT INTO employee VALUES (10, 1, 52000.0), (11, 1, 48000.0), (12, 2, 61000.0);
	`)

	ctx := context.Background()
	p, err := db.PrepareContext(ctx,
		`SELECT e.empno, e.salary FROM employee e, department d
		 WHERE e.workdept = d.deptno AND d.deptname = ? ORDER BY e.empno`)
	if err != nil {
		panic(err)
	}
	for _, dept := range []string{"Planning", "Support"} {
		res, err := p.ExecuteContext(ctx, dept)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d row(s)\n", dept, len(res.Rows))
		for _, row := range res.Rows {
			fmt.Printf("  empno=%s salary=%s\n", row[0].Format(), row[1].Format())
		}
	}
	// Output:
	// Planning: 2 row(s)
	//   empno=10 salary=52000
	//   empno=11 salary=48000
	// Support: 1 row(s)
	//   empno=12 salary=61000
}

// ExampleDB_ExplainContext inspects a query's optimization without running
// it: whether EMST was applied, and how the plan cache served the repeated
// prepare.
func ExampleDB_ExplainContext() {
	db := starmagic.Open()
	db.MustExec(`
		CREATE TABLE department (deptno INT, mgrno INT, PRIMARY KEY (deptno));
		CREATE TABLE employee (empno INT, workdept INT, salary FLOAT, PRIMARY KEY (empno));
		CREATE INDEX emp_dept ON employee (workdept);
		CREATE VIEW deptsal AS SELECT workdept, SUM(salary) AS total FROM employee GROUP BY workdept;
		INSERT INTO department VALUES (1, 10), (2, 12);
	`)
	rows := make([]starmagic.Row, 0, 400)
	for i := 0; i < 400; i++ {
		rows = append(rows, starmagic.Row{
			starmagic.Int(int64(100 + i)),
			starmagic.Int(int64(i%40 + 1)),
			starmagic.Float(40000 + float64(i)),
		})
	}
	if err := db.InsertRows("employee", rows); err != nil {
		panic(err)
	}

	ctx := context.Background()
	query := `SELECT d.deptno, s.total FROM department d, deptsal s WHERE d.deptno = s.workdept AND d.deptno = 1`
	first, err := db.ExplainContext(ctx, query)
	if err != nil {
		panic(err)
	}
	second, err := db.ExplainContext(ctx, query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("used EMST: %v\n", first.UsedEMST)
	fmt.Printf("first prepare: cache %s\n", first.CacheStatus)
	fmt.Printf("second prepare: cache %s\n", second.CacheStatus)
	// Output:
	// used EMST: true
	// first prepare: cache miss
	// second prepare: cache hit
}

// ExampleOpen_persistent opens a durable database in a data directory:
// committed writes go through a write-ahead log with group commit, and
// reopening the same directory recovers exactly the committed state — the
// crash-safe counterpart of the in-memory Open.
func ExampleOpen_persistent() {
	dir, err := os.MkdirTemp("", "starmagic-data")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	db, err := starmagic.OpenDir(dir)
	if err != nil {
		panic(err)
	}
	db.MustExec(`
		CREATE TABLE parts (id INT, name VARCHAR, PRIMARY KEY (id));
		INSERT INTO parts VALUES (1, 'bolt'), (2, 'nut'), (3, 'washer');
		DELETE FROM parts WHERE name = 'washer';`)
	if err := db.Close(); err != nil {
		panic(err)
	}

	// A later process opening the same directory sees the committed state:
	// the write-ahead log replays on open, rebuilding rows and indexes.
	db, err = starmagic.OpenDir(dir)
	if err != nil {
		panic(err)
	}
	defer db.Close()
	res, err := db.QueryContext(context.Background(), `SELECT id, name FROM parts ORDER BY id`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s %s\n", row[0].Format(), row[1].Format())
	}
	// Output:
	// 1 bolt
	// 2 nut
}
