package opt

import (
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
)

// optCatalog builds the paper schema with explicit statistics so estimates
// are deterministic: department has 100 rows (100 distinct deptno, 100
// distinct deptname), employee 10000 rows across 100 departments.
func optCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	dept := &catalog.Table{
		Name: "department",
		Columns: []catalog.Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys:     [][]int{{0}},
		RowCount: 100,
		Stats: []catalog.ColumnStats{
			{DistinctCount: 100},
			{DistinctCount: 100},
			{DistinctCount: 100},
		},
	}
	emp := &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "empname", Type: datum.TString},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:     [][]int{{0}},
		RowCount: 10000,
		Stats: []catalog.ColumnStats{
			{DistinctCount: 10000},
			{DistinctCount: 9000},
			{DistinctCount: 100},
			{DistinctCount: 500},
		},
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "avgSal",
		Columns: []string{"workdept", "avgsalary"},
		SQL:     "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept",
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildGraph(t *testing.T, cat *catalog.Catalog, query string) *qgm.Graph {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestCardinalityBaseAndFilter(t *testing.T) {
	cat := optCatalog(t)
	e := NewEstimator()
	g := buildGraph(t, cat, "SELECT deptno FROM department WHERE deptname = 'Planning'")
	// 100 rows / 100 distinct names = 1 row.
	if c := e.Card(g.Top); c < 0.5 || c > 2 {
		t.Errorf("card = %v; want ~1", c)
	}
}

func TestCardinalityJoin(t *testing.T) {
	cat := optCatalog(t)
	e := NewEstimator()
	g := buildGraph(t, cat, "SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno")
	// 10000 × 100 / max(100,100) = 10000.
	if c := e.Card(g.Top); c < 5000 || c > 20000 {
		t.Errorf("join card = %v; want ~10000", c)
	}
}

func TestCardinalityGroupBy(t *testing.T) {
	cat := optCatalog(t)
	e := NewEstimator()
	g := buildGraph(t, cat, "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept")
	gb := g.Top.Quantifiers[0].Ranges
	if c := e.Card(gb); c < 50 || c > 200 {
		t.Errorf("group card = %v; want ~100", c)
	}
}

func TestNDVFromStats(t *testing.T) {
	cat := optCatalog(t)
	e := NewEstimator()
	g := buildGraph(t, cat, "SELECT workdept FROM employee")
	base := g.Top.Quantifiers[0].Ranges
	if n := e.NDV(base, 2); n != 100 {
		t.Errorf("NDV(workdept) = %v; want 100", n)
	}
}

func TestSelectivityShapes(t *testing.T) {
	cat := optCatalog(t)
	e := NewEstimator()
	g := buildGraph(t, cat,
		"SELECT empno FROM employee WHERE workdept = 5 AND salary > 100 AND empname LIKE 'a%'")
	top := g.Top
	var eq, rng, like float64
	for _, p := range top.Preds {
		switch x := p.(type) {
		case *qgm.Cmp:
			if x.Op == datum.EQ {
				eq = e.Selectivity(top, p)
			} else {
				rng = e.Selectivity(top, p)
			}
		case *qgm.Like:
			like = e.Selectivity(top, p)
		}
	}
	if eq != 1.0/100 {
		t.Errorf("eq selectivity = %v; want 0.01", eq)
	}
	if rng != rangeSelectivity {
		t.Errorf("range selectivity = %v", rng)
	}
	if like != likeSelectivity {
		t.Errorf("like selectivity = %v", like)
	}
}

func TestOptimizePicksSelectiveTableFirst(t *testing.T) {
	cat := optCatalog(t)
	// department filtered to ~1 row: it must come first, employee probed.
	g := buildGraph(t, cat,
		"SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno AND d.deptname = 'Planning'")
	Optimize(g)
	order := g.Top.OrderedQuantifiers()
	if order[0].Name != "d" {
		t.Errorf("join order starts with %s; want d\n%s", order[0].Name, g.Dump())
	}
}

func TestOptimizeCostReflectsFilters(t *testing.T) {
	cat := optCatalog(t)
	gAll := buildGraph(t, cat, "SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno")
	gOne := buildGraph(t, cat, "SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno AND d.deptname = 'x'")
	rAll := Optimize(gAll)
	rOne := Optimize(gOne)
	if rOne.Cost >= rAll.Cost {
		t.Errorf("filtered query should cost less: %v vs %v", rOne.Cost, rAll.Cost)
	}
}

func TestOptimizeOrdersEveryBox(t *testing.T) {
	cat := optCatalog(t)
	g := buildGraph(t, cat,
		"SELECT d.deptname, s.avgsalary FROM department d, avgSal s WHERE d.deptno = s.workdept")
	Optimize(g)
	for _, b := range g.Reachable() {
		if b.Kind == qgm.KindSelect && len(b.Quantifiers) > 0 && b.JoinOrder == nil {
			t.Errorf("box %s has no join order", b.Name)
		}
	}
}

func TestDPAgreesWithExhaustiveOnSmallJoins(t *testing.T) {
	cat := optCatalog(t)
	g := buildGraph(t, cat,
		`SELECT e.empno FROM employee e, department d, employee m
		 WHERE e.workdept = d.deptno AND d.mgrno = m.empno AND e.salary > 100`)
	e := NewEstimator()
	considered := orderSelectBox(e, g.Top)
	if considered == 0 {
		t.Fatal("no plans considered")
	}
	chosen, _ := e.pipelineCost(g.Top, fQuantsOf(g.Top))

	// Exhaustive check over all 3! permutations.
	quants := g.Top.Quantifiers
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		ordered := []*qgm.Quantifier{quants[perm[0]], quants[perm[1]], quants[perm[2]]}
		cost, _ := NewEstimator().pipelineCost(g.Top, ordered)
		if cost < chosen-1e-6 {
			t.Errorf("DP missed cheaper order %v: %v < %v", perm, cost, chosen)
		}
	}
}

func TestGreedyHandlesWideJoins(t *testing.T) {
	cat := optCatalog(t)
	// 14 ForEach quantifiers exceeds dpLimit: greedy must still order.
	query := "SELECT t0.empno FROM employee t0"
	for i := 1; i < 14; i++ {
		query += ", employee t" + string(rune('0'+i%10)) + string(rune('a'+i))
	}
	g := buildGraph(t, cat, query)
	r := Optimize(g)
	if g.Top.JoinOrder == nil {
		t.Fatal("no join order")
	}
	if r.PlansConsidered >= 1<<14 {
		t.Errorf("greedy should prune: considered %d", r.PlansConsidered)
	}
}

func TestCorrelatedChildOrderedAfterSource(t *testing.T) {
	cat := optCatalog(t)
	g := buildGraph(t, cat,
		"SELECT d.deptname, s.avgsalary FROM department d, avgSal s WHERE d.deptno = s.workdept")
	// Manually correlate: push the join predicate into a private copy of
	// the view (simulating the correlate transform), then ensure the
	// optimizer keeps d before s.
	top := g.Top
	dq, sq := top.Quantifiers[0], top.Quantifiers[1]
	cp, _ := g.CopyTree(sq.Ranges)
	sq.Ranges = cp
	// sink predicate: cp output 0 (workdept) = d.deptno
	var kept []qgm.Expr
	for _, p := range top.Preds {
		if len(qgm.RefsQuantifiers(p)) == 2 {
			cp.Preds = append(cp.Preds, &qgm.Cmp{
				Op: datum.EQ,
				L:  qgm.CopyExpr(cp.Output[0].Expr, nil),
				R:  dq.Col(0),
			})
			continue
		}
		kept = append(kept, p)
	}
	top.Preds = kept
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatalf("setup: %v\n%s", err, g.Dump())
	}
	Optimize(g)
	order := g.Top.OrderedQuantifiers()
	if order[0] != dq {
		t.Errorf("correlated child must follow its source: got %s first", order[0].Name)
	}
}

func TestEligibleBefore(t *testing.T) {
	cat := optCatalog(t)
	g := buildGraph(t, cat,
		"SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno AND d.deptname = 'x'")
	Optimize(g)
	order := g.Top.OrderedQuantifiers()
	first, second := order[0], order[1]
	if got := EligibleBefore(g.Top, first); len(got) != 0 {
		t.Errorf("nothing should precede the first quantifier, got %v", got)
	}
	if got := EligibleBefore(g.Top, second); len(got) != 1 || got[0] != first {
		t.Errorf("EligibleBefore(second) = %v", got)
	}
}

func TestGraphCostDeterministic(t *testing.T) {
	cat := optCatalog(t)
	g := buildGraph(t, cat, "SELECT e.empno FROM employee e, department d WHERE e.workdept = d.deptno")
	Optimize(g)
	c1 := GraphCost(g)
	c2 := GraphCost(g)
	if c1 != c2 {
		t.Errorf("cost not deterministic: %v vs %v", c1, c2)
	}
}
