// Package opt is the plan optimizer: statistics-based cardinality and
// selectivity estimation, Selinger-style dynamic-programming join-order
// enumeration (with a greedy fallback for wide joins), and whole-graph
// costing.
//
// In the paper's architecture (§3.2, Figure 2) the plan optimizer runs
// twice: once after phase-1 rewrite to pick the join orders EMST will use,
// and once after EMST to cost the transformed graph. The final execution
// uses whichever of the pre-/post-EMST plans is cheaper, giving the
// guarantee that EMST cannot degrade the plan.
package opt

import (
	"math"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// Default estimates when statistics are missing.
const (
	defaultTableRows = 1000.0
	defaultNDVFrac   = 0.1 // NDV guess: 10% of rows
	rangeSelectivity = 1.0 / 3
	likeSelectivity  = 1.0 / 4
	defaultSel       = 1.0 / 3
	existsSel        = 0.5
)

// Estimator computes cardinalities, per-column distinct counts, and
// predicate selectivities over a QGM graph, memoized per box.
type Estimator struct {
	card map[*qgm.Box]float64
	// Hints maps box names (qgm.Box.Name, deterministic across re-plans of
	// the same SQL) to observed output cardinalities from execution
	// feedback. A hinted box's Card is the observed value, overriding the
	// statistical estimate — this is how re-optimization injects actuals.
	Hints map[string]float64
	// NoHist disables histogram probes, reverting to the flat defaults
	// (defaultNDVFrac and the fixed comparison selectivities). Used for
	// flat-baseline comparisons in tests and benchmarks.
	NoHist bool
}

// NewEstimator returns a fresh estimator (statistics are read from the
// catalog tables referenced by base boxes; run ANALYZE first for real
// numbers).
func NewEstimator() *Estimator {
	return &Estimator{card: map[*qgm.Box]float64{}}
}

// NewEstimatorWith returns an estimator with execution-feedback cardinality
// hints and an optional flat-statistics mode.
func NewEstimatorWith(hints map[string]float64, noHist bool) *Estimator {
	return &Estimator{card: map[*qgm.Box]float64{}, Hints: hints, NoHist: noHist}
}

// Card estimates the output cardinality of a box.
func (e *Estimator) Card(b *qgm.Box) float64 {
	if c, ok := e.card[b]; ok {
		return c
	}
	e.card[b] = 1 // cycle guard; QGM graphs are acyclic but be safe
	c, hinted := 0.0, false
	if e.Hints != nil && b.Name != "" {
		c, hinted = e.Hints[b.Name]
	}
	if !hinted {
		c = e.cardNow(b)
	}
	if c < 1 {
		c = 1
	}
	e.card[b] = c
	return c
}

func (e *Estimator) cardNow(b *qgm.Box) float64 {
	switch b.Kind {
	case qgm.KindBaseTable:
		if b.Table != nil && b.Table.RowCount > 0 {
			return float64(b.Table.RowCount)
		}
		return defaultTableRows
	case qgm.KindSelect:
		card := 1.0
		for _, q := range b.Quantifiers {
			switch q.Type {
			case qgm.ForEach:
				card *= e.Card(q.Ranges)
			case qgm.Exists, qgm.ForAll:
				card *= existsSel
			}
		}
		for _, p := range b.Preds {
			card *= e.Selectivity(b, p)
		}
		// Duplicate-eliminating (or provably duplicate-free) boxes cannot
		// exceed the product of their output columns' distinct counts.
		// Magic tables are DISTINCT projections of join prefixes, so this
		// cap is what makes their smallness visible to the cost model.
		if b.Distinct != qgm.DistinctPreserve {
			ndv := 1.0
			for _, oc := range b.Output {
				if oc.Expr == nil {
					ndv = card
					break
				}
				ndv *= e.exprNDV(oc.Expr, card)
				if ndv >= card {
					break
				}
			}
			if ndv < card {
				card = ndv
			}
		}
		return card
	case qgm.KindGroupBy:
		child := e.Card(b.Quantifiers[0].Ranges)
		if len(b.GroupBy) == 0 {
			return 1
		}
		groups := 1.0
		for _, ge := range b.GroupBy {
			groups *= e.exprNDV(ge, child)
		}
		if groups > child {
			groups = child
		}
		return groups
	case qgm.KindUnion:
		sum := 0.0
		for _, q := range b.Quantifiers {
			sum += e.Card(q.Ranges)
		}
		if b.Distinct == qgm.DistinctEnforce {
			sum *= 0.8
		}
		return sum
	case qgm.KindIntersect:
		l := e.Card(b.Quantifiers[0].Ranges)
		r := e.Card(b.Quantifiers[1].Ranges)
		if r < l {
			return r / 2
		}
		return l / 2
	case qgm.KindExcept:
		return e.Card(b.Quantifiers[0].Ranges) / 2
	default:
		// Extension kinds: assume pass-through of the first child.
		if len(b.Quantifiers) > 0 {
			return e.Card(b.Quantifiers[0].Ranges)
		}
		return 1
	}
}

// NDV estimates the number of distinct values of output column ord of b.
func (e *Estimator) NDV(b *qgm.Box, ord int) float64 {
	card := e.Card(b)
	switch b.Kind {
	case qgm.KindBaseTable:
		if b.Table != nil && ord < len(b.Table.Stats) {
			if d := b.Table.Stats[ord].DistinctCount; d > 0 {
				return float64(d)
			}
		}
		return clamp(card*defaultNDVFrac, 1, card)
	case qgm.KindSelect:
		if ord < len(b.Output) && b.Output[ord].Expr != nil {
			ndv := e.exprNDV(b.Output[ord].Expr, card)
			// Local filters thin out distinct values too. The true effect
			// depends on correlations the statistics cannot see; damp with a
			// square root as a middle ground. This is what lets the cost
			// model see that a magic table over a filtered prefix is small.
			if f := e.localFilterFrac(b); f < 1 {
				ndv *= math.Sqrt(f)
			}
			return clamp(ndv, 1, card)
		}
	case qgm.KindGroupBy:
		if ord < len(b.GroupBy) {
			return clamp(e.exprNDV(b.GroupBy[ord], card), 1, card)
		}
		return card // aggregate outputs: roughly one per group
	case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
		return clamp(e.NDV(b.Quantifiers[0].Ranges, ord), 1, card)
	}
	return clamp(card*defaultNDVFrac, 1, card)
}

// localFilterFrac multiplies the selectivities of b's single-quantifier
// (local) predicates — the fraction of rows surviving filters, excluding
// join predicates.
func (e *Estimator) localFilterFrac(b *qgm.Box) float64 {
	f := 1.0
	for _, p := range b.Preds {
		refs := qgm.RefsQuantifiers(p)
		if len(refs) > 1 {
			continue
		}
		f *= e.Selectivity(b, p)
	}
	if f < 1e-6 {
		f = 1e-6
	}
	return f
}

// exprNDV estimates distinct values of an expression in a context with the
// given row count.
func (e *Estimator) exprNDV(expr qgm.Expr, contextCard float64) float64 {
	switch x := expr.(type) {
	case *qgm.ColRef:
		return clamp(e.NDV(x.Q.Ranges, x.Ord), 1, contextCard)
	case *qgm.Const:
		return 1
	case *qgm.Param:
		// A parameter is one (unknown) value per execution.
		return 1
	case *qgm.Arith:
		return clamp(e.exprNDV(x.L, contextCard)*e.exprNDV(x.R, contextCard), 1, contextCard)
	case *qgm.Neg:
		return e.exprNDV(x.X, contextCard)
	default:
		return clamp(contextCard*defaultNDVFrac, 1, contextCard)
	}
}

// Selectivity estimates the fraction of rows of box b satisfying pred.
func (e *Estimator) Selectivity(b *qgm.Box, pred qgm.Expr) float64 {
	switch x := pred.(type) {
	case *qgm.Cmp:
		switch x.Op {
		case datum.EQ:
			// Column = constant with a histogram: exact per-value frequency,
			// which is where skewed (Zipf) columns diverge from the flat
			// 1/NDV guess by orders of magnitude.
			if s, ok := e.histEqSel(x); ok {
				return s
			}
			ln := e.sideNDV(x.L)
			rn := e.sideNDV(x.R)
			n := ln
			if rn > n {
				n = rn
			}
			if n < 1 {
				n = 1
			}
			return 1 / n
		case datum.NE:
			return 1 - e.Selectivity(b, &qgm.Cmp{Op: datum.EQ, L: x.L, R: x.R})
		default:
			if s, ok := e.rangeSel(x); ok {
				return s
			}
			return rangeSelectivity
		}
	case *qgm.Logic:
		if x.Op == qgm.And {
			s := 1.0
			for _, a := range x.Args {
				s *= e.Selectivity(b, a)
			}
			return s
		}
		s := 0.0
		for _, a := range x.Args {
			sa := e.Selectivity(b, a)
			s = s + sa - s*sa
		}
		return s
	case *qgm.Not:
		return 1 - e.Selectivity(b, x.X)
	case *qgm.IsNull:
		if !x.Negate {
			return 0.1
		}
		return 0.9
	case *qgm.Like:
		if x.Negate {
			return 1 - likeSelectivity
		}
		return likeSelectivity
	case *qgm.Const:
		if !x.Val.IsNull() && x.Val.T == datum.TBool && x.Val.B {
			return 1
		}
		return 0.0001
	case *qgm.Match:
		return 1
	}
	return defaultSel
}

// colConst decomposes cmp into a column reference and a constant, flipping
// the operator so the column is on the left. ok is false when cmp is not a
// column-vs-constant comparison.
func colConst(cmp *qgm.Cmp) (cr *qgm.ColRef, c *qgm.Const, op datum.CmpOp, ok bool) {
	col, konst := cmp.L, cmp.R
	op = cmp.Op
	if _, isCol := col.(*qgm.ColRef); !isCol {
		col, konst = cmp.R, cmp.L
		op = op.Flip()
	}
	cr, crOK := col.(*qgm.ColRef)
	c, cOK := konst.(*qgm.Const)
	if !crOK || !cOK || c.Val.IsNull() {
		return nil, nil, op, false
	}
	return cr, c, op, true
}

// histEqSel answers column = constant from the column's equi-depth
// histogram. Interned-string columns work the same as numerics here: the
// histogram buckets hold the string datums themselves (interned ids are an
// executor-side representation), so the literal probes by value.
func (e *Estimator) histEqSel(cmp *qgm.Cmp) (float64, bool) {
	if e.NoHist {
		return 0, false
	}
	cr, c, op, ok := colConst(cmp)
	if !ok || op != datum.EQ {
		return 0, false
	}
	st, ok := e.baseColStats(cr.Q.Ranges, cr.Ord)
	if !ok || st.Hist == nil {
		return 0, false
	}
	if !datum.Comparable(c.Val.T, st.Hist.Low.T) {
		return 0, false
	}
	return st.Hist.EqSel(c.Val)
}

// rangeSel estimates the selectivity of a range comparison between a column
// and a constant: from the column's histogram when one exists (bucket walk
// with linear interpolation inside the containing bucket), else from min/max
// interpolation.
func (e *Estimator) rangeSel(cmp *qgm.Cmp) (float64, bool) {
	cr, c, op, ok := colConst(cmp)
	if !ok {
		return 0, false
	}
	if !e.NoHist {
		if st, ok := e.baseColStats(cr.Q.Ranges, cr.Ord); ok && st.Hist != nil &&
			datum.Comparable(c.Val.T, st.Hist.Low.T) {
			switch op {
			case datum.LT:
				if s, ok := st.Hist.LessSel(c.Val, false); ok {
					return clamp(s, 0.0005, 1), true
				}
			case datum.LE:
				if s, ok := st.Hist.LessSel(c.Val, true); ok {
					return clamp(s, 0.0005, 1), true
				}
			case datum.GT:
				if s, ok := st.Hist.LessSel(c.Val, true); ok {
					return clamp(1-s, 0.0005, 1), true
				}
			case datum.GE:
				if s, ok := st.Hist.LessSel(c.Val, false); ok {
					return clamp(1-s, 0.0005, 1), true
				}
			}
		}
	}
	if c.Val.T != datum.TInt && c.Val.T != datum.TFloat {
		return 0, false
	}
	lo, hi, ok := e.minMax(cr.Q.Ranges, cr.Ord)
	if !ok || hi <= lo {
		return 0, false
	}
	v := c.Val.AsFloat()
	frac := (v - lo) / (hi - lo) // fraction of values below v
	switch op {
	case datum.LT, datum.LE:
		return clamp(frac, 0.0005, 1), true
	case datum.GT, datum.GE:
		return clamp(1-frac, 0.0005, 1), true
	}
	return 0, false
}

// baseColStats traces output column ord of box b through select/group-by
// projections back to a base-table column's statistics.
func (e *Estimator) baseColStats(b *qgm.Box, ord int) (*catalog.ColumnStats, bool) {
	for depth := 0; depth < 16; depth++ {
		switch b.Kind {
		case qgm.KindBaseTable:
			if b.Table == nil || ord >= len(b.Table.Stats) {
				return nil, false
			}
			return &b.Table.Stats[ord], true
		case qgm.KindSelect:
			if ord >= len(b.Output) {
				return nil, false
			}
			cr, ok := b.Output[ord].Expr.(*qgm.ColRef)
			if !ok {
				return nil, false
			}
			b, ord = cr.Q.Ranges, cr.Ord
		case qgm.KindGroupBy:
			if ord >= len(b.GroupBy) {
				return nil, false
			}
			cr, ok := b.GroupBy[ord].(*qgm.ColRef)
			if !ok {
				return nil, false
			}
			b, ord = cr.Q.Ranges, cr.Ord
		default:
			return nil, false
		}
	}
	return nil, false
}

// minMax traces a column back to base-table min/max statistics.
func (e *Estimator) minMax(b *qgm.Box, ord int) (float64, float64, bool) {
	st, ok := e.baseColStats(b, ord)
	if !ok {
		return 0, 0, false
	}
	if st.DistinctCount == 0 || st.Min.IsNull() || st.Max.IsNull() {
		return 0, 0, false
	}
	if st.Min.T != datum.TInt && st.Min.T != datum.TFloat {
		return 0, 0, false
	}
	return st.Min.AsFloat(), st.Max.AsFloat(), true
}

// sideNDV estimates the NDV of a comparison side.
func (e *Estimator) sideNDV(expr qgm.Expr) float64 {
	switch x := expr.(type) {
	case *qgm.ColRef:
		return e.NDV(x.Q.Ranges, x.Ord)
	case *qgm.Const:
		return 1
	case *qgm.Param:
		// Equality against a parameter selects like equality against one
		// value; range comparisons fall back to default selectivities in
		// rangeSel (the binding is unknown at plan time).
		return 1
	default:
		return 10
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
