package opt

import (
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// statCatalog builds a catalog with min/max statistics for range tests.
func statTable() *catalog.Table {
	return &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "k", Type: datum.TInt},
			{Name: "v", Type: datum.TFloat},
			{Name: "s", Type: datum.TString},
		},
		Keys:     [][]int{{0}},
		RowCount: 1000,
		Stats: []catalog.ColumnStats{
			{DistinctCount: 1000, Min: datum.Int(0), Max: datum.Int(999)},
			{DistinctCount: 100, Min: datum.Float(0), Max: datum.Float(10)},
			{DistinctCount: 50, Min: datum.String("a"), Max: datum.String("z")},
		},
	}
}

func statGraph() (*qgm.Graph, *qgm.Box, *qgm.Quantifier) {
	g := qgm.NewGraph()
	base := g.NewBox(qgm.KindBaseTable, "T")
	base.Table = statTable()
	for _, c := range base.Table.Columns {
		base.Output = append(base.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
	}
	sel := g.NewBox(qgm.KindSelect, "S")
	q := g.AddQuantifier(sel, qgm.ForEach, "t", base)
	for i, c := range base.Output {
		sel.Output = append(sel.Output, qgm.OutputCol{Name: c.Name, Expr: q.Col(i), Type: c.Type})
	}
	g.Top = sel
	return g, sel, q
}

func TestRangeSelectivityInterpolation(t *testing.T) {
	_, sel, q := statGraph()
	e := NewEstimator()
	// k < 100 over [0, 999] → ~10%.
	s := e.Selectivity(sel, &qgm.Cmp{Op: datum.LT, L: q.Col(0), R: &qgm.Const{Val: datum.Int(100)}})
	if s < 0.05 || s > 0.15 {
		t.Errorf("k < 100 selectivity = %v; want ~0.1", s)
	}
	// k > 900 → ~10%.
	s = e.Selectivity(sel, &qgm.Cmp{Op: datum.GT, L: q.Col(0), R: &qgm.Const{Val: datum.Int(900)}})
	if s < 0.05 || s > 0.15 {
		t.Errorf("k > 900 selectivity = %v", s)
	}
	// Constant on the left flips the operator.
	s = e.Selectivity(sel, &qgm.Cmp{Op: datum.GT, L: &qgm.Const{Val: datum.Int(100)}, R: q.Col(0)})
	if s < 0.05 || s > 0.15 {
		t.Errorf("100 > k selectivity = %v", s)
	}
	// String columns fall back to the default range guess.
	s = e.Selectivity(sel, &qgm.Cmp{Op: datum.LT, L: q.Col(2), R: &qgm.Const{Val: datum.String("m")}})
	if s != rangeSelectivity {
		t.Errorf("string range selectivity = %v; want default %v", s, rangeSelectivity)
	}
}

func TestDistinctCapsSelectCard(t *testing.T) {
	g, sel, q := statGraph()
	_ = g
	// Project only the FLOAT column (100 distinct) with DISTINCT.
	sel.Output = []qgm.OutputCol{{Name: "v", Expr: q.Col(1), Type: datum.TFloat}}
	sel.Distinct = qgm.DistinctEnforce
	e := NewEstimator()
	if c := e.Card(sel); c > 110 {
		t.Errorf("distinct card = %v; want ≤ ~100", c)
	}
}

func TestNDVDampedByLocalFilters(t *testing.T) {
	_, sel, q := statGraph()
	// A 1% local filter should shrink the projected NDV of v noticeably.
	sel.Preds = []qgm.Expr{&qgm.Cmp{Op: datum.LT, L: q.Col(0), R: &qgm.Const{Val: datum.Int(10)}}}
	e := NewEstimator()
	ndv := e.NDV(sel, 1)
	if ndv > 50 {
		t.Errorf("filtered NDV = %v; want < 50 (sqrt damping of ~1%% filter)", ndv)
	}
	if ndv < 1 {
		t.Errorf("NDV below 1: %v", ndv)
	}
}

func TestUnionIntersectExceptCards(t *testing.T) {
	g, selA, _ := statGraph()
	selB, _ := g.CopyBox(selA)
	mk := func(kind qgm.BoxKind) *qgm.Box {
		b := g.NewBox(kind, "setop")
		g.AddQuantifier(b, qgm.ForEach, "l", selA)
		g.AddQuantifier(b, qgm.ForEach, "r", selB)
		for _, c := range selA.Output {
			b.Output = append(b.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
		}
		return b
	}
	e := NewEstimator()
	u := e.Card(mk(qgm.KindUnion))
	if u < 1500 || u > 2500 {
		t.Errorf("union card = %v; want ~2000", u)
	}
	i := e.Card(mk(qgm.KindIntersect))
	if i >= u {
		t.Errorf("intersect card %v should be below union %v", i, u)
	}
	x := e.Card(mk(qgm.KindExcept))
	if x >= 1000 {
		t.Errorf("except card = %v; want < left card", x)
	}
}

func TestBoxCosts(t *testing.T) {
	g, selA, q := statGraph()
	_ = q
	e := NewEstimator()
	if c := e.boxCost(selA.Quantifiers[0].Ranges); c != 0 {
		t.Errorf("base cost = %v; want 0", c)
	}
	gb := g.NewBox(qgm.KindGroupBy, "GB")
	inQ := g.AddQuantifier(gb, qgm.ForEach, "i", selA)
	gb.GroupBy = []qgm.Expr{inQ.Col(0)}
	gb.Output = []qgm.OutputCol{{Name: "k", Type: datum.TInt}}
	if c := e.boxCost(gb); c <= 0 {
		t.Errorf("group cost = %v", c)
	}
}

func TestGreedyOrderFallback(t *testing.T) {
	// 13 quantifiers exceed dpLimit; greedy must produce a full order fast.
	g := qgm.NewGraph()
	base := g.NewBox(qgm.KindBaseTable, "T")
	base.Table = statTable()
	for _, c := range base.Table.Columns {
		base.Output = append(base.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
	}
	sel := g.NewBox(qgm.KindSelect, "S")
	var quants []*qgm.Quantifier
	for i := 0; i < 13; i++ {
		quants = append(quants, g.AddQuantifier(sel, qgm.ForEach, "q", base))
	}
	for i := 1; i < 13; i++ {
		sel.Preds = append(sel.Preds, &qgm.Cmp{Op: datum.EQ, L: quants[i-1].Col(0), R: quants[i].Col(0)})
	}
	sel.Output = []qgm.OutputCol{{Name: "k", Expr: quants[0].Col(0), Type: datum.TInt}}
	g.Top = sel
	e := NewEstimator()
	considered := orderSelectBox(e, sel)
	if sel.JoinOrder == nil || len(sel.JoinOrder) != 13 {
		t.Fatalf("greedy produced no full order: %v", sel.JoinOrder)
	}
	if considered > 13*13 {
		t.Errorf("greedy considered too many orders: %d", considered)
	}
}

func TestMinMaxTracing(t *testing.T) {
	_, sel, _ := statGraph()
	e := NewEstimator()
	// Through the select box's plain projection back to base stats.
	lo, hi, ok := e.minMax(sel, 0)
	if !ok || lo != 0 || hi != 999 {
		t.Errorf("minMax = %v %v %v", lo, hi, ok)
	}
	// String column has stats but non-numeric type.
	if _, _, ok := e.minMax(sel, 2); ok {
		t.Error("string minMax should fail")
	}
}

func TestEstimatorDefaultsWithoutStats(t *testing.T) {
	g := qgm.NewGraph()
	base := g.NewBox(qgm.KindBaseTable, "NoStats")
	base.Table = &catalog.Table{Name: "nostats", Columns: []catalog.Column{{Name: "a", Type: datum.TInt}}}
	base.Output = []qgm.OutputCol{{Name: "a", Type: datum.TInt}}
	e := NewEstimator()
	if c := e.Card(base); c != defaultTableRows {
		t.Errorf("card = %v; want default %v", c, defaultTableRows)
	}
	if n := e.NDV(base, 0); n <= 0 || n > defaultTableRows {
		t.Errorf("ndv = %v", n)
	}
}
