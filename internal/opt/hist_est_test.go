package opt

import (
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// skewGraph builds a select over a table whose k column is Zipf-like: value
// 7 covers 90% of rows, the rest spread over 500 rare values. Statistics are
// computed by the real ANALYZE path so the histogram is genuine.
func skewGraph(t *testing.T) (*qgm.Box, *qgm.Quantifier) {
	t.Helper()
	tab := &catalog.Table{
		Name:    "sk",
		Columns: []catalog.Column{{Name: "k", Type: datum.TInt}, {Name: "s", Type: datum.TString}},
	}
	const n = 10000
	rows := make([]datum.Row, n)
	for i := range rows {
		k := int64(7)
		if i%10 == 0 {
			k = 100 + int64(i)%500
		}
		s := "HQ"
		if i%20 == 0 {
			s = "R" + string(rune('A'+i%26))
		}
		rows[i] = datum.Row{datum.Int(k), datum.String(s)}
	}
	catalog.AnalyzeTable(tab, rows)

	g := qgm.NewGraph()
	base := g.NewBox(qgm.KindBaseTable, "SK")
	base.Table = tab
	for _, c := range tab.Columns {
		base.Output = append(base.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
	}
	sel := g.NewBox(qgm.KindSelect, "S")
	q := g.AddQuantifier(sel, qgm.ForEach, "t", base)
	for i, c := range base.Output {
		sel.Output = append(sel.Output, qgm.OutputCol{Name: c.Name, Expr: q.Col(i), Type: c.Type})
	}
	g.Top = sel
	return sel, q
}

func TestHistogramEqSelectivity(t *testing.T) {
	sel, q := skewGraph(t)
	eq := func(col int, v datum.D) *qgm.Cmp {
		return &qgm.Cmp{Op: datum.EQ, L: q.Col(col), R: &qgm.Const{Val: v}}
	}

	e := NewEstimator()
	heavy := e.Selectivity(sel, eq(0, datum.Int(7)))
	if heavy < 0.8 || heavy > 1 {
		t.Errorf("heavy value selectivity = %v; want ~0.9", heavy)
	}
	rare := e.Selectivity(sel, eq(0, datum.Int(250)))
	if rare > 0.01 {
		t.Errorf("rare value selectivity = %v; want tiny", rare)
	}
	// Interned-string columns probe the same way, by literal value.
	hq := e.Selectivity(sel, eq(1, datum.String("HQ")))
	if hq < 0.8 {
		t.Errorf("heavy string selectivity = %v; want ~0.95", hq)
	}

	// Flat mode must fall back to 1/NDV — blind to the skew.
	flat := NewEstimatorWith(nil, true)
	fh := flat.Selectivity(sel, eq(0, datum.Int(7)))
	if fh > 0.1 {
		t.Errorf("flat heavy selectivity = %v; want ~1/NDV", fh)
	}
	if heavy < 10*fh {
		t.Errorf("histogram (%v) should dwarf flat estimate (%v) on the heavy value", heavy, fh)
	}
}

func TestHistogramRangeSelectivity(t *testing.T) {
	sel, q := skewGraph(t)
	// k < 100 excludes every rare value (rare values are 100..599) but
	// includes the heavy 7 → ~90%.
	s := NewEstimator().Selectivity(sel, &qgm.Cmp{
		Op: datum.LT, L: q.Col(0), R: &qgm.Const{Val: datum.Int(100)}})
	if s < 0.8 || s > 1 {
		t.Errorf("k < 100 selectivity = %v; want ~0.9", s)
	}
	// Flat min/max interpolation over [7, 599] would guess ~16% — the
	// histogram must beat that decisively on skewed data.
	flat := NewEstimatorWith(nil, true).Selectivity(sel, &qgm.Cmp{
		Op: datum.LT, L: q.Col(0), R: &qgm.Const{Val: datum.Int(100)}})
	if flat > 0.5 {
		t.Errorf("flat range selectivity = %v; want interpolated ~0.16", flat)
	}
}

func TestCardHintsOverrideEstimates(t *testing.T) {
	sel, _ := skewGraph(t)
	base := NewEstimator().Card(sel)
	hinted := NewEstimatorWith(map[string]float64{"S": 42}, false)
	if c := hinted.Card(sel); c != 42 {
		t.Errorf("hinted card = %v; want 42 (unhinted was %v)", c, base)
	}
	// A hint for an unrelated box name changes nothing.
	other := NewEstimatorWith(map[string]float64{"NOPE": 42}, false)
	if c := other.Card(sel); c != base {
		t.Errorf("unrelated hint changed card: %v vs %v", c, base)
	}
}
