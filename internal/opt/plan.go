package opt

import (
	"math"
	"sort"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// Cost-model constants: relative work units per row.
const (
	costProbe   = 2.0 // hash/index probe per outer row
	costScanRow = 1.0 // nested-loop scan per row pair
	costOutRow  = 0.5 // producing an output row
	costGroup   = 1.5 // grouping per input row
	// dpLimit is the maximum ForEach quantifier count for exhaustive
	// dynamic programming; wider boxes fall back to greedy ordering, the
	// pruning the paper expects optimizers to employ (§3.2).
	dpLimit = 12
)

// Result carries the outcome of plan optimization.
type Result struct {
	// Cost is the estimated total plan cost of the graph.
	Cost float64
	// PlansConsidered counts join orders examined (the §3.2 enumeration-
	// cost study reads it).
	PlansConsidered int
}

// Optimize chooses a join order for every select box reachable in the graph
// (storing it in Box.JoinOrder) and returns the estimated plan cost. It is
// deterministic.
func Optimize(g *qgm.Graph) Result {
	return OptimizeEst(g, NewEstimator())
}

// OptimizeEst is Optimize with a caller-supplied estimator, so feedback
// cardinality hints and the flat-statistics mode reach join ordering and
// costing.
func OptimizeEst(g *qgm.Graph, e *Estimator) Result {
	res := Result{}
	for _, b := range g.Reachable() {
		if b.Kind != qgm.KindSelect {
			continue
		}
		considered := orderSelectBox(e, b)
		res.PlansConsidered += considered
	}
	res.Cost = GraphCostEst(g, e)
	return res
}

// GraphCost estimates the total execution cost of the graph under the
// current join orders.
func GraphCost(g *qgm.Graph) float64 {
	return GraphCostEst(g, NewEstimator())
}

// GraphCostEst is GraphCost with a caller-supplied estimator.
func GraphCostEst(g *qgm.Graph, e *Estimator) float64 {
	total := 0.0
	for _, b := range g.Reachable() {
		total += e.boxCost(b)
	}
	return total
}

func (e *Estimator) boxCost(b *qgm.Box) float64 {
	switch b.Kind {
	case qgm.KindBaseTable:
		return 0 // read cost is charged to consumers
	case qgm.KindSelect:
		cost, _ := e.pipelineCost(b, fQuantsOf(b))
		return cost
	case qgm.KindGroupBy:
		return e.Card(b.Quantifiers[0].Ranges) * costGroup
	case qgm.KindUnion:
		sum := 0.0
		for _, q := range b.Quantifiers {
			sum += e.Card(q.Ranges)
		}
		return sum
	case qgm.KindIntersect, qgm.KindExcept:
		return e.Card(b.Quantifiers[0].Ranges) + e.Card(b.Quantifiers[1].Ranges)
	default:
		if len(b.Quantifiers) > 0 {
			return e.Card(b.Quantifiers[0].Ranges)
		}
		return 1
	}
}

// fQuantsOf returns the box's ForEach quantifiers in current join order.
func fQuantsOf(b *qgm.Box) []*qgm.Quantifier {
	var out []*qgm.Quantifier
	for _, q := range b.OrderedQuantifiers() {
		if q.Type == qgm.ForEach {
			out = append(out, q)
		}
	}
	return out
}

// pipelineCost estimates the cost of evaluating the box's join pipeline in
// the given ForEach order, mirroring the executor's access paths (hash
// probe when an equality key binds, nested loop otherwise). It returns the
// cost and the final ForEach cardinality.
func (e *Estimator) pipelineCost(b *qgm.Box, order []*qgm.Quantifier) (float64, float64) {
	bound := map[*qgm.Quantifier]bool{}
	applied := map[int]bool{}
	cost := 0.0
	card := 1.0
	for i, q := range order {
		childCard := e.Card(q.Ranges)
		hashable := false
		sel := 1.0
		for pi, p := range b.Preds {
			if applied[pi] {
				continue
			}
			if !predReady(p, q, bound, b) {
				continue
			}
			applied[pi] = true
			sel *= e.Selectivity(b, p)
			if isEquiKey(p, q, bound) {
				hashable = true
			}
		}
		switch {
		case i == 0:
			cost += childCard
		case hashable:
			cost += card*costProbe + childCard // probe + build
		default:
			cost += card * childCard * costScanRow
		}
		card *= childCard * sel
		if card < 1 {
			card = 1
		}
		bound[q] = true
	}
	// Residual predicates (subquery-related) and E/A/S quantifier checks.
	for _, q := range b.Quantifiers {
		if q.Type == qgm.ForEach {
			continue
		}
		subCard := e.Card(q.Ranges)
		if boxReferencesLocal(q.Ranges, b) {
			// Correlated subquery: evaluated per row (memoized by distinct
			// binding at run time; charge a discounted per-row cost).
			cost += card * math.Sqrt(subCard+1)
		} else {
			cost += card * costProbe
		}
		if q.Type != qgm.Scalar {
			card *= existsSel
		}
	}
	cost += card * costOutRow
	return cost, card
}

// predReady reports whether predicate p becomes applicable when q joins the
// bound set: p references q, and all other references are bound or outer.
func predReady(p qgm.Expr, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool, b *qgm.Box) bool {
	local := map[*qgm.Quantifier]bool{}
	for _, bq := range b.Quantifiers {
		local[bq] = true
	}
	refsQ := false
	ok := true
	qgm.VisitRefs(p, func(c *qgm.ColRef) {
		switch {
		case c.Q == q:
			refsQ = true
		case bound[c.Q]:
		case !local[c.Q]:
			// outer correlation: bound at runtime
		default:
			ok = false
		}
	})
	return refsQ && ok
}

// isEquiKey reports whether p is an equality usable as a hash/index key for
// q against the bound set.
func isEquiKey(p qgm.Expr, q *qgm.Quantifier, bound map[*qgm.Quantifier]bool) bool {
	cmp, ok := p.(*qgm.Cmp)
	if !ok || cmp.Op != datum.EQ {
		return false
	}
	side := func(e qgm.Expr) (mine, others, any bool) {
		mine, others, any = true, true, false
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			any = true
			if c.Q == q {
				others = false
			} else {
				mine = false
			}
		})
		return
	}
	lm, lo, la := side(cmp.L)
	rm, ro, ra := side(cmp.R)
	// one side references only q, the other only bound/outer quantifiers
	return (la && ra) && ((lm && ro) || (rm && lo))
}

// boxReferencesLocal reports whether sub's subtree references quantifiers
// of box b (correlation into b).
func boxReferencesLocal(sub *qgm.Box, b *qgm.Box) bool {
	local := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		local[q] = true
	}
	found := false
	seen := map[*qgm.Box]bool{}
	var walk func(box *qgm.Box)
	walk = func(box *qgm.Box) {
		if box == nil || seen[box] || found {
			return
		}
		seen[box] = true
		check := func(e qgm.Expr) {
			if e == nil {
				return
			}
			qgm.VisitRefs(e, func(c *qgm.ColRef) {
				if local[c.Q] {
					found = true
				}
			})
		}
		for _, e := range box.Preds {
			check(e)
		}
		for _, oc := range box.Output {
			check(oc.Expr)
		}
		for _, e := range box.GroupBy {
			check(e)
		}
		for _, a := range box.Aggs {
			check(a.Arg)
		}
		for _, q := range box.Quantifiers {
			walk(q.Ranges)
		}
		walk(box.MagicBox)
	}
	walk(sub)
	return found
}

// orderSelectBox picks the cheapest ForEach order for box b and stores it
// in b.JoinOrder (ForEach order followed by the remaining quantifiers in
// declaration order). It returns the number of orders considered.
func orderSelectBox(e *Estimator, b *qgm.Box) int {
	var fIdx []int
	for i, q := range b.Quantifiers {
		if q.Type == qgm.ForEach {
			fIdx = append(fIdx, i)
		}
	}
	n := len(fIdx)
	if n == 0 {
		b.JoinOrder = nil
		return 1
	}

	// Dependency constraint: a quantifier whose child box references a
	// sibling quantifier must follow it (correlated ForEach children).
	deps := make([]uint64, n)
	for i, qi := range fIdx {
		for j, qj := range fIdx {
			if i == j {
				continue
			}
			if boxRefsQuantifier(b.Quantifiers[qi].Ranges, b.Quantifiers[qj]) {
				deps[i] |= 1 << uint(j)
			}
		}
	}

	var order []int
	var considered int
	if n <= dpLimit {
		order, considered = dpOrder(e, b, fIdx, deps)
	} else {
		order, considered = greedyOrder(e, b, fIdx, deps)
	}

	join := make([]int, 0, len(b.Quantifiers))
	join = append(join, order...)
	for i, q := range b.Quantifiers {
		if q.Type != qgm.ForEach {
			join = append(join, i)
		}
	}
	b.JoinOrder = join
	return considered
}

func boxRefsQuantifier(sub *qgm.Box, q *qgm.Quantifier) bool {
	found := false
	seen := map[*qgm.Box]bool{}
	var walk func(box *qgm.Box)
	walk = func(box *qgm.Box) {
		if box == nil || seen[box] || found {
			return
		}
		seen[box] = true
		check := func(e qgm.Expr) {
			if e == nil {
				return
			}
			qgm.VisitRefs(e, func(c *qgm.ColRef) {
				if c.Q == q {
					found = true
				}
			})
		}
		for _, e := range box.Preds {
			check(e)
		}
		for _, oc := range box.Output {
			check(oc.Expr)
		}
		for _, e := range box.GroupBy {
			check(e)
		}
		for _, a := range box.Aggs {
			check(a.Arg)
		}
		for _, qq := range box.Quantifiers {
			walk(qq.Ranges)
		}
		walk(box.MagicBox)
	}
	walk(sub)
	return found
}

// dpOrder runs Selinger-style dynamic programming over quantifier subsets.
func dpOrder(e *Estimator, b *qgm.Box, fIdx []int, deps []uint64) ([]int, int) {
	n := len(fIdx)
	type state struct {
		cost  float64
		order []int
	}
	best := make(map[uint64]*state, 1<<uint(n))
	best[0] = &state{cost: 0}
	considered := 0
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		cur, ok := best[mask]
		if !ok {
			continue
		}
		for j := 0; j < n; j++ {
			bit := uint64(1) << uint(j)
			if mask&bit != 0 {
				continue
			}
			if deps[j]&^mask != 0 {
				continue // dependencies not yet bound
			}
			nm := mask | bit
			order := append(append([]int(nil), cur.order...), fIdx[j])
			quants := make([]*qgm.Quantifier, len(order))
			for k, qi := range order {
				quants[k] = b.Quantifiers[qi]
			}
			cost, _ := e.pipelineCost(b, quants)
			considered++
			if s, ok := best[nm]; !ok || cost < s.cost {
				best[nm] = &state{cost: cost, order: order}
			}
		}
	}
	full := uint64(1)<<uint(n) - 1
	if s, ok := best[full]; ok {
		return s.order, considered
	}
	// Dependencies unsatisfiable (cyclic correlation): keep declaration
	// order.
	return append([]int(nil), fIdx...), considered
}

// greedyOrder picks, at each step, the quantifier minimizing the partial
// pipeline cost.
func greedyOrder(e *Estimator, b *qgm.Box, fIdx []int, deps []uint64) ([]int, int) {
	n := len(fIdx)
	var order []int
	used := uint64(0)
	considered := 0
	for len(order) < n {
		bestJ, bestCost := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			bit := uint64(1) << uint(j)
			if used&bit != 0 || deps[j]&^used != 0 {
				continue
			}
			trial := append(append([]int(nil), order...), fIdx[j])
			quants := make([]*qgm.Quantifier, len(trial))
			for k, qi := range trial {
				quants[k] = b.Quantifiers[qi]
			}
			cost, _ := e.pipelineCost(b, quants)
			considered++
			if cost < bestCost {
				bestCost, bestJ = cost, j
			}
		}
		if bestJ < 0 {
			// stuck on dependencies: append remaining in declaration order
			for j := 0; j < n; j++ {
				if used&(1<<uint(j)) == 0 {
					order = append(order, fIdx[j])
					used |= 1 << uint(j)
				}
			}
			break
		}
		order = append(order, fIdx[bestJ])
		used |= 1 << uint(bestJ)
	}
	return order, considered
}

// EligibleBefore returns the quantifiers that precede q in the box's join
// order — the quantifiers "eligible to pass information into q" (§4.3,
// Algorithm 4.1 step 2). EMST consumes this.
func EligibleBefore(b *qgm.Box, q *qgm.Quantifier) []*qgm.Quantifier {
	var out []*qgm.Quantifier
	for _, oq := range b.OrderedQuantifiers() {
		if oq == q {
			break
		}
		if oq.Type == qgm.ForEach {
			out = append(out, oq)
		}
	}
	return out
}

// QuantifierOrder returns the ForEach quantifiers of b in join order; used
// by EMST and by EXPLAIN output.
func QuantifierOrder(b *qgm.Box) []*qgm.Quantifier { return fQuantsOf(b) }

// SortBoxesByID orders boxes deterministically for display.
func SortBoxesByID(boxes []*qgm.Box) {
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].ID < boxes[j].ID })
}

// BoxCostForDebug exposes per-box cost estimation for debugging tools.
func BoxCostForDebug(b *qgm.Box) float64 { return NewEstimator().boxCost(b) }
