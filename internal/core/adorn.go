package core

import (
	"sort"
	"strings"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// Binding records one adorned column of a quantifier's ranged box: output
// ordinal Ord of the child is restricted by the expression Other (over
// quantifiers eligible to pass information into q), with comparison
// ChildCol Op Other. Eq distinguishes 'b' (equality) from 'c' (condition)
// adornments.
type Binding struct {
	Ord   int
	Op    datum.CmpOp
	Other qgm.Expr
	Eq    bool
	// pred is the predicate of the parent box the binding came from; it
	// stays in the parent (magic only adds implied filters below).
	pred qgm.Expr
}

// adornQuantifier implements the heart of adorn-box (Algorithm 4.1) for one
// quantifier q of box b: find the predicates of b that can pass information
// into q from the eligible quantifiers, and derive the bcf adornment.
//
// A predicate binds q when it is a comparison with one side a plain column
// of q and the other side referencing only eligible quantifiers. Equality
// gives a 'b'; other comparison operators give a 'c'. (Local predicates —
// references to q only — are handled by the independent predicate-pushdown
// rule, which EMST runs alongside; see §4: "The EMST rule uses the
// predicate pushdown rule to push predicates into each referenced table".)
func adornQuantifier(b *qgm.Box, q *qgm.Quantifier, eligible []*qgm.Quantifier) []Binding {
	elig := map[*qgm.Quantifier]bool{}
	for _, e := range eligible {
		elig[e] = true
	}
	// Quantifiers of b itself that are NOT eligible (they follow q in the
	// join order, or are subquery quantifiers) cannot pass information.
	// Quantifiers of ANCESTOR boxes can: their bindings are fixed before b
	// evaluates — Algorithm 4.1 step 2's correlation eligibility. The magic
	// boxes built from such predicates carry correlated references and are
	// evaluated (memoized) per outer binding.
	local := map[*qgm.Quantifier]bool{}
	for _, lq := range b.Quantifiers {
		local[lq] = true
	}
	var bindings []Binding
	for _, p := range b.Preds {
		cmp, ok := p.(*qgm.Cmp)
		if !ok {
			continue
		}
		tryBind := func(mine, other qgm.Expr, op datum.CmpOp) bool {
			cr, ok := mine.(*qgm.ColRef)
			if !ok || cr.Q != q {
				return false
			}
			// The other side may reference eligible quantifiers, ancestor
			// (correlated) quantifiers, or nothing at all — a constant also
			// binds ("we push all equality ... predicates using magic,
			// replacing traditional predicate pushdown"); constants matter
			// for shared and recursive views that the local pushdown rule
			// must not touch.
			onlyEligible := true
			qgm.VisitRefs(other, func(c *qgm.ColRef) {
				if !elig[c.Q] && local[c.Q] {
					onlyEligible = false
				}
			})
			if !onlyEligible {
				return false
			}
			bindings = append(bindings, Binding{
				Ord:   cr.Ord,
				Op:    op,
				Other: other,
				Eq:    op == datum.EQ,
				pred:  p,
			})
			return true
		}
		if tryBind(cmp.L, cmp.R, cmp.Op) {
			continue
		}
		tryBind(cmp.R, cmp.L, cmp.Op.Flip())
	}

	// Equality wins over conditions on the same ordinal; deduplicate so the
	// adornment and the magic table stay minimal (one magic column per
	// bound ordinal).
	sort.SliceStable(bindings, func(i, j int) bool {
		if bindings[i].Ord != bindings[j].Ord {
			return bindings[i].Ord < bindings[j].Ord
		}
		return bindings[i].Eq && !bindings[j].Eq
	})
	var out []Binding
	seenEq := map[int]bool{}
	for _, bd := range bindings {
		if bd.Eq {
			if seenEq[bd.Ord] {
				continue // one equality binding per ordinal suffices
			}
			seenEq[bd.Ord] = true
			out = append(out, bd)
			continue
		}
		if seenEq[bd.Ord] {
			continue // 'b' subsumes 'c' on the same ordinal
		}
		out = append(out, bd)
	}
	return out
}

// adornmentString renders the bcf adornment of a box with n outputs under
// the given bindings (§2: "b for bound by an equality predicate, c for
// conditioned, f for free").
func adornmentString(n int, bindings []Binding) string {
	letters := make([]byte, n)
	for i := range letters {
		letters[i] = 'f'
	}
	for _, bd := range bindings {
		if bd.Ord >= n {
			continue
		}
		if bd.Eq {
			letters[bd.Ord] = 'b'
		} else if letters[bd.Ord] == 'f' {
			letters[bd.Ord] = 'c'
		}
	}
	return string(letters)
}

// allFree reports an all-f adornment.
func allFree(adornment string) bool {
	return !strings.ContainsAny(adornment, "bc")
}
