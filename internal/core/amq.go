// Package core implements the paper's primary contribution: the Extended
// Magic-Sets Transformation (EMST) as a rewrite rule over QGM, combining
// adornment (Algorithm 4.1, adorn-box) and magic transformation (Algorithm
// 4.2, magic-process) in one pass, with bcf adornments, supplementary-magic
// and condition-magic boxes, the AMQ/NMQ extensibility property (§4.2/§5),
// and the three-phase pipeline with cost-based join orders and the
// no-degradation guarantee (§3.2–3.3, Figures 2 and 3).
package core

import (
	"starmagic/internal/qgm"
)

// boxProperty describes how a box kind participates in EMST (§4.2).
type boxProperty struct {
	// amq: the kind accepts a magic quantifier — a new table reference can
	// be inserted with join semantics to restrict the computation inside
	// the box. Select boxes are AMQ; union-, groupby-, and difference-
	// boxes are NMQ.
	amq bool
	// nmqMap, for NMQ kinds, maps a restriction on output ordinal boxOrd
	// through the box onto (quantifier, child output ordinal) pairs, so
	// the restriction can be passed down into the box's inputs (§4.2:
	// "an NMQ box may be able to pass the restriction represented by the
	// magic table down into its quantifiers").
	nmqMap func(b *qgm.Box, boxOrd int) []QuantBinding
}

// QuantBinding says: the restriction on the parent output applies to
// output ChildOrd of the box Quant ranges over.
type QuantBinding struct {
	Quant    *qgm.Quantifier
	ChildOrd int
}

var properties = map[qgm.BoxKind]boxProperty{
	qgm.KindSelect: {amq: true},
	qgm.KindGroupBy: {amq: false, nmqMap: func(b *qgm.Box, boxOrd int) []QuantBinding {
		if boxOrd >= len(b.GroupBy) {
			return nil // aggregated column: not passable
		}
		cr, ok := b.GroupBy[boxOrd].(*qgm.ColRef)
		if !ok {
			return nil
		}
		return []QuantBinding{{Quant: cr.Q, ChildOrd: cr.Ord}}
	}},
	qgm.KindUnion:     {amq: false, nmqMap: positionalNMQMap},
	qgm.KindIntersect: {amq: false, nmqMap: positionalNMQMap},
	qgm.KindExcept:    {amq: false, nmqMap: positionalNMQMap},
}

// positionalNMQMap passes a restriction positionally into every branch of a
// set operation. For EXCEPT this is sound on both sides: rows of the right
// input outside the restriction can only match left rows that the
// restriction already excluded.
func positionalNMQMap(b *qgm.Box, boxOrd int) []QuantBinding {
	var out []QuantBinding
	for _, q := range b.Quantifiers {
		out = append(out, QuantBinding{Quant: q, ChildOrd: boxOrd})
	}
	return out
}

// RegisterBoxKind declares the EMST property of an extension box kind (§5:
// "the customizer is required to state whether a quantifier can be inserted
// into the box with a join semantics (AMQ or NMQ) — a simple property to
// state"). nmqMap may be nil for NMQ kinds that cannot pass restrictions
// down; such boxes simply stop the descent (still correct: magic only adds
// filters).
func RegisterBoxKind(kind qgm.BoxKind, amq bool, nmqMap func(b *qgm.Box, boxOrd int) []QuantBinding) {
	properties[kind] = boxProperty{amq: amq, nmqMap: nmqMap}
}

// IsAMQ reports whether the box kind accepts magic quantifiers. Unknown
// kinds default to NMQ, the safe choice.
func IsAMQ(kind qgm.BoxKind) bool {
	return properties[kind].amq
}

// nmqBindings maps a restriction on boxOrd through an NMQ box.
func nmqBindings(b *qgm.Box, boxOrd int) []QuantBinding {
	p, ok := properties[b.Kind]
	if !ok || p.nmqMap == nil {
		return nil
	}
	return p.nmqMap(b, boxOrd)
}
