package core

import (
	"strings"
	"testing"

	"starmagic/internal/qgm"
)

// TestCorrelatedEligibility exercises Algorithm 4.1 step 2's correlation
// clause: a quantifier of an ENCLOSING box passes information into a view
// inside a correlated subquery. The avgSal view referenced inside the
// EXISTS is restricted by a magic box carrying a correlated reference to
// the outer employee quantifier.
func TestCorrelatedEligibility(t *testing.T) {
	db := paperDB(t, 20, 8)
	query := `SELECT e.empname FROM employee e
		WHERE e.salary > 1500 AND EXISTS (
		  SELECT 1 FROM avgSal v
		  WHERE v.workdept = e.workdept AND v.avgsalary < e.salary)`

	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("results differ:\ngot  %v\nwant %v\n%s", got, want, res.Graph.Dump())
	}

	// The phase-2 graph must contain a magic box whose output is a
	// correlated reference to the outer employee quantifier.
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if !strings.Contains(p2.Dump, "magic") {
		t.Fatalf("no magic box for the correlated subquery:\n%s", p2.Dump)
	}
	// Find a magic box referencing the outer quantifier "e".
	found := false
	g, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := runPhase(g, Options{Validate: true}, nil, Phase1Rules()...); err != nil {
		t.Fatal(err)
	}
	planOptimizeForTest(g)
	if err := runPhase(g, Options{Validate: true}, nil, Phase2Rules()...); err != nil {
		t.Fatal(err)
	}
	outer := g.Top.Quantifiers[0]
	for _, b := range g.Reachable() {
		if b.Role != qgm.RoleMagic {
			continue
		}
		qgm.VisitBoxExprs(b, func(e qgm.Expr) {
			qgm.VisitRefs(e, func(c *qgm.ColRef) {
				if c.Q == outer {
					found = true
				}
			})
		})
	}
	if !found {
		t.Errorf("no magic box carries a correlated reference to the outer quantifier:\n%s", g.Dump())
	}
}

// TestCorrelatedMagicRestrictsSubqueryWork: with the correlated magic in
// place, the per-binding evaluation of the subquery's view only aggregates
// the bound department instead of all of them.
func TestCorrelatedMagicRestrictsSubqueryWork(t *testing.T) {
	db := paperDB(t, 40, 20)
	query := `SELECT e.empname FROM employee e
		WHERE e.empno = 10001 AND EXISTS (
		  SELECT 1 FROM avgSal v
		  WHERE v.workdept = e.workdept AND v.avgsalary > 0)`

	orig := optimizeQuery(t, db, query, Options{SkipEMST: true})
	_, evOrig, err := db.Eval(orig.Graph)
	if err != nil {
		t.Fatal(err)
	}
	magic := optimizeQuery(t, db, query, Options{})
	rows, evMagic, err := db.Eval(magic.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, magic.Graph.Dump())
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if !magic.UsedEMST {
		t.Skipf("cost model declined magic here (before %.0f after %.0f)", magic.CostBefore, magic.CostAfter)
	}
	if evMagic.Counters.OutputRows*2 > evOrig.Counters.OutputRows {
		t.Errorf("correlated magic did not restrict: %d vs %d output rows\n%s",
			evMagic.Counters.OutputRows, evOrig.Counters.OutputRows, magic.Graph.Dump())
	}
}
