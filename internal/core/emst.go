package core

import (
	"fmt"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
)

// EMSTRule is the Extended Magic-Sets Transformation, implemented as a
// query-rewrite rule applied once per QGM box as the graph is traversed
// (Algorithm 4.2, magic-process). It assumes join orders were chosen by a
// preceding plan-optimization pass (§3.2) and consumes them through
// Box.JoinOrder.
//
// Differences from the GMST algorithm the paper lists (§4) are visible in
// the structure here: adornment and magic transformation happen in one
// pass (adornQuantifier is invoked from within the transformation), the
// rule is modular (one box at a time, restartable in any traversal order),
// and it composes with the other rewrite rules through the shared
// predicate-pushdown machinery.
type EMSTRule struct {
	// NoSupplementary disables supplementary-magic-box construction
	// (ablation): magic boxes then re-join copies of the eligible prefix,
	// duplicating work exactly as the paper's supplementary variant avoids.
	NoSupplementary bool

	processed map[*qgm.Box]bool
	// copies caches adorned copies by (original box, adornment) so several
	// consumers with the same adornment share one copy, with their magic
	// contributions combined by a union magic-box (§4.1: "The magic-box is
	// either a select-box, or a union-box").
	copies map[copyKey]*qgm.Box
	// feed maps an adorned copy to the box feeding its magic table (the
	// box referenced by the magic quantifier, or linked via MagicBox).
	feed map[*qgm.Box]*qgm.Box
	seq  int
}

type copyKey struct {
	origin    *qgm.Box
	adornment string
}

// NewEMSTRule returns a fresh rule instance (one per phase-2 run).
func NewEMSTRule() *EMSTRule {
	return &EMSTRule{
		processed: map[*qgm.Box]bool{},
		copies:    map[copyKey]*qgm.Box{},
		feed:      map[*qgm.Box]*qgm.Box{},
	}
}

// Name implements rewrite.Rule.
func (e *EMSTRule) Name() string { return "emst" }

// Apply implements rewrite.Rule: EMST processing of one box. Magic- and
// supplementary-magic-boxes are never processed; condition-magic-boxes are
// (§4.1).
func (e *EMSTRule) Apply(ctx *rewrite.Context, b *qgm.Box) (bool, error) {
	if e.processed[b] {
		return false, nil
	}
	if b.Role == qgm.RoleMagic || b.Role == qgm.RoleSuppMagic {
		return false, nil
	}
	// Recursive components evaluate as fixpoint units; the magic-on-
	// recursion transformation (the classic deductive-database setting) is
	// out of scope for this engine — see DESIGN.md.
	if b.Recursive || qgm.InCycle(b) {
		e.processed[b] = true
		return false, nil
	}
	e.processed[b] = true
	if IsAMQ(b.Kind) {
		return e.processAMQ(ctx, b)
	}
	return e.processNMQ(ctx, b)
}

// orderedF returns the ForEach quantifiers of b in join order.
func orderedF(b *qgm.Box) []*qgm.Quantifier {
	var out []*qgm.Quantifier
	for _, q := range b.OrderedQuantifiers() {
		if q.Type == qgm.ForEach {
			out = append(out, q)
		}
	}
	return out
}

// processAMQ runs magic-process on an AMQ box: for each quantifier in join
// order, adorn it (Algorithm 4.1), optionally factor the preceding
// quantifiers into a supplementary-magic-box (step 4a), build the magic-box
// or condition-magic-box (4b), and attach it to an adorned copy of the
// referenced box (4c).
func (e *EMSTRule) processAMQ(ctx *rewrite.Context, b *qgm.Box) (bool, error) {
	changed := false
	for pos := 0; ; pos++ {
		fq := orderedF(b)
		if pos >= len(fq) {
			break
		}
		q := fq[pos]
		child := q.Ranges
		// "No action is taken since all referenced tables are either magic
		// tables or stored tables." Cycle members other than a fixpoint
		// root are also skipped (they are transformed with their root).
		if child.Kind == qgm.KindBaseTable || child.IsMagic() {
			continue
		}
		if !child.Recursive && qgm.InCycle(child) {
			continue
		}
		eligible := fq[:pos]
		bindings := receivable(child, adornQuantifier(b, q, eligible))
		if child.Recursive {
			// Magic on recursion: sound only when every bound column is
			// invariant through the recursive derivations (the classic
			// transitive-closure shape, where the bound argument is passed
			// down unchanged). Then filtering the fixpoint each round
			// equals seeding the fixpoint with the filter. Conditions are
			// not pushed into recursions.
			var inv []Binding
			for _, bd := range bindings {
				if bd.Eq && recursionBoundInvariant(child, bd.Ord) {
					inv = append(inv, bd)
				}
			}
			bindings = inv
		}
		if len(bindings) == 0 {
			continue
		}

		// Step 4a: supplementary-magic-box, when desirable.
		if !e.NoSupplementary && e.suppDesirable(b, eligible) {
			e.buildSupplementary(ctx, b, eligible)
			// The box's expressions were rewritten over the supplementary
			// quantifier: recompute position, eligibility, and bindings.
			fq = orderedF(b)
			pos = indexOfQuant(fq, q)
			eligible = fq[:pos]
			bindings = receivable(child, adornQuantifier(b, q, eligible))
			if len(bindings) == 0 {
				continue
			}
		}

		adornment := adornmentString(len(child.Output), bindings)
		if allFree(adornment) {
			continue
		}
		var eq, cond []Binding
		for _, bd := range bindings {
			if bd.Eq {
				eq = append(eq, bd)
			} else {
				cond = append(cond, bd)
			}
		}

		// Step 4b: magic-box for the equality bindings (built before the
		// adorned copy is chosen so cycle detection below can inspect it).
		var m *qgm.Box
		if len(eq) > 0 {
			m = e.buildMagicBox(ctx, b, eligible, eq, qgm.RoleMagic, "M_"+child.Name)
		}

		// Step 3: make q range over an adorned copy (possibly shared with
		// other consumers carrying the same pure-equality adornment).
		// Sharing is abandoned when feeding this consumer's magic into the
		// shared copy would make the graph recursive — the phenomenon the
		// paper notes in §1 ("the magic-sets transformation can rewrite a
		// nonrecursive query into a recursive query"); this engine does not
		// evaluate recursion, so such consumers get a private copy.
		cacheable := len(cond) == 0
		cp, fresh := e.adornedCopy(ctx, child, adornment, cacheable)
		if !fresh && m != nil && reachesBox(m, cp) {
			cp, fresh = e.adornedCopy(ctx, child, adornment, false)
		}
		q.Ranges = cp
		changed = true

		// Step 4c: attach the magic-box.
		if m != nil {
			e.attachMagic(ctx, cp, m, eq, fresh)
		}
		// Condition-magic-box for 'c' bindings (ground magic-sets: tuples
		// stay ground; the condition is checked as a semi-join against the
		// set of bound values, which is implied by the original predicate
		// that remains in b).
		if len(cond) > 0 && IsAMQ(cp.Kind) {
			cm := e.buildMagicBox(ctx, b, eligible, cond, qgm.RoleCondMagic, "CM_"+cp.Name)
			e.attachCondition(ctx, cp, cm, cond)
		}
	}
	return changed, nil
}

// processNMQ passes the restriction of an NMQ box's linked magic table down
// into the box's quantifiers (§4.2: an NMQ box "may be able to pass the
// restriction represented by the magic table down into its quantifiers").
func (e *EMSTRule) processNMQ(ctx *rewrite.Context, b *qgm.Box) (bool, error) {
	if b.MagicBox == nil || len(b.MagicCols) == 0 {
		return false, nil
	}
	type bind struct{ childOrd, magicOrd int }
	perQuant := map[*qgm.Quantifier][]bind{}
	for _, mc := range b.MagicCols {
		for _, qb := range nmqBindings(b, mc.BoxOrd) {
			perQuant[qb.Quant] = append(perQuant[qb.Quant], bind{qb.ChildOrd, mc.MagicOrd})
		}
	}
	changed := false
	for _, q := range b.Quantifiers {
		binds := perQuant[q]
		if len(binds) == 0 {
			continue
		}
		child := q.Ranges
		if child.Kind == qgm.KindBaseTable || child.IsMagic() ||
			child.Recursive || qgm.InCycle(child) {
			continue
		}
		// The derived bindings are all equalities against magic columns.
		bindings := make([]Binding, 0, len(binds))
		for _, bd := range binds {
			bindings = append(bindings, Binding{Ord: bd.childOrd, Op: datum.EQ, Eq: true})
		}
		bindings = receivable(child, bindings)
		if len(bindings) == 0 {
			continue
		}
		adornment := adornmentString(len(child.Output), bindings)

		// Magic-box: a projection of b's own magic table onto the mapped
		// columns (the paper's MD4: m_mgrSal selects workdept from
		// m_avgMgrSal).
		m := ctx.G.NewBox(qgm.KindSelect, e.genName("M_"+child.Name))
		m.Role = qgm.RoleMagic
		m.Distinct = qgm.DistinctEnforce
		mq := ctx.G.AddQuantifier(m, qgm.ForEach, "m", b.MagicBox)
		// Align magic outputs with the binding order used below.
		kept := map[int]bool{}
		var aligned []Binding
		for _, bd := range binds {
			if kept[bd.childOrd] {
				continue
			}
			kept[bd.childOrd] = true
			m.Output = append(m.Output, qgm.OutputCol{
				Name: fmt.Sprintf("mc%d", len(m.Output)),
				Expr: mq.Col(bd.magicOrd),
				Type: b.MagicBox.Output[bd.magicOrd].Type,
			})
			aligned = append(aligned, Binding{Ord: bd.childOrd, Op: datum.EQ, Eq: true})
		}
		cp, fresh := e.adornedCopy(ctx, child, adornment, true)
		if !fresh && reachesBox(m, cp) {
			cp, fresh = e.adornedCopy(ctx, child, adornment, false)
		}
		q.Ranges = cp
		changed = true
		e.attachMagic(ctx, cp, m, aligned, fresh)
	}
	return changed, nil
}

// reachesBox reports whether target is reachable from b through quantifiers
// or magic links.
func reachesBox(b, target *qgm.Box) bool {
	seen := map[*qgm.Box]bool{}
	var walk func(box *qgm.Box) bool
	walk = func(box *qgm.Box) bool {
		if box == nil || seen[box] {
			return false
		}
		if box == target {
			return true
		}
		seen[box] = true
		for _, q := range box.Quantifiers {
			if walk(q.Ranges) {
				return true
			}
		}
		return walk(box.MagicBox)
	}
	return walk(b)
}

// recursionBoundInvariant reports whether output column ord of the
// fixpoint root flows unchanged through every recursive derivation: in
// every select box of the component, any ForEach quantifier over a
// component member must project that quantifier's own column ord at output
// position ord. Union members are positional by construction. When this
// holds, σ_ord(fixpoint) = fixpoint(σ_ord(...)), so a magic quantifier may
// be attached to the root.
func recursionBoundInvariant(root *qgm.Box, ord int) bool {
	members := qgm.SCCBoxes(root)
	inSCC := map[*qgm.Box]bool{}
	for _, m := range members {
		inSCC[m] = true
	}
	for _, x := range members {
		switch x.Kind {
		case qgm.KindUnion:
			// positional pass-through
		case qgm.KindSelect:
			for _, q := range x.Quantifiers {
				if q.Type != qgm.ForEach || !inSCC[q.Ranges] {
					continue
				}
				if ord >= len(x.Output) {
					return false
				}
				cr, ok := x.Output[ord].Expr.(*qgm.ColRef)
				if !ok || cr.Q != q || cr.Ord != ord {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// receivable filters bindings to those the child box can accept: AMQ
// children take both 'b' and 'c' bindings on any output with a defining
// expression; NMQ children take only 'b' bindings on ordinals their kind
// can pass down.
func receivable(child *qgm.Box, bindings []Binding) []Binding {
	var out []Binding
	for _, bd := range bindings {
		if bd.Ord >= len(child.Output) {
			continue
		}
		if IsAMQ(child.Kind) {
			if child.Output[bd.Ord].Expr != nil {
				out = append(out, bd)
			}
			continue
		}
		if bd.Eq && len(nmqBindings(child, bd.Ord)) > 0 {
			out = append(out, bd)
		}
	}
	return out
}

// suppDesirable applies the paper's desirability conditions (step 4a): not
// just before the magic quantifier, not before the first non-magic
// quantifier, and not for a single quantifier with no predicates.
func (e *EMSTRule) suppDesirable(b *qgm.Box, eligible []*qgm.Quantifier) bool {
	nonMagic := 0
	for _, q := range eligible {
		if !q.Ranges.IsMagic() {
			nonMagic++
		}
	}
	if nonMagic == 0 {
		return false
	}
	if len(eligible) >= 2 {
		return true
	}
	// Single eligible quantifier: require at least one predicate to move.
	return len(movablePreds(b, eligible)) > 0
}

// movablePreds returns the predicates of b referencing only the eligible
// quantifiers (references to quantifiers of ancestor boxes — correlation —
// are permitted: they are bound before b evaluates).
func movablePreds(b *qgm.Box, eligible []*qgm.Quantifier) []qgm.Expr {
	set := map[*qgm.Quantifier]bool{}
	for _, q := range eligible {
		set[q] = true
	}
	local := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		local[q] = true
	}
	var out []qgm.Expr
	for _, p := range b.Preds {
		refs := qgm.RefsQuantifiers(p)
		if len(refs) == 0 {
			continue
		}
		hasEligible, hasIneligibleLocal := false, false
		for q := range refs {
			switch {
			case set[q]:
				hasEligible = true
			case local[q]:
				hasIneligibleLocal = true
			}
		}
		if hasEligible && !hasIneligibleLocal {
			out = append(out, p)
		}
	}
	return out
}

// buildSupplementary factors the eligible join-order prefix of b into a
// supplementary-magic-box (a common subexpression shared by b and the
// magic-boxes built from it), replacing the prefix in b with a single
// quantifier (step 4a; the paper's sm_QUERY, statement SD5).
func (e *EMSTRule) buildSupplementary(ctx *rewrite.Context, b *qgm.Box, eligible []*qgm.Quantifier) *qgm.Quantifier {
	g := ctx.G
	sm := g.NewBox(qgm.KindSelect, e.genName("SM_"+b.Name))
	sm.Role = qgm.RoleSuppMagic
	sm.Distinct = qgm.DistinctPreserve // multiplicities must flow into b

	moved := map[*qgm.Quantifier]bool{}
	for _, q := range eligible {
		moved[q] = true
	}
	// Move the eligible quantifiers, keeping their join order.
	for _, q := range eligible {
		q.Parent = sm
		sm.Quantifiers = append(sm.Quantifiers, q)
	}
	// Move the predicates referencing only the moved quantifiers.
	movedPreds := map[qgm.Expr]bool{}
	for _, p := range movablePreds(b, eligible) {
		movedPreds[p] = true
	}
	var keptPreds []qgm.Expr
	for _, p := range b.Preds {
		if movedPreds[p] {
			sm.Preds = append(sm.Preds, p)
		} else {
			keptPreds = append(keptPreds, p)
		}
	}
	b.Preds = keptPreds

	// Rebuild b's quantifier list: supplementary quantifier first, then the
	// remaining quantifiers in their previous join order.
	prevOrder := b.OrderedQuantifiers()
	var remaining []*qgm.Quantifier
	for _, q := range prevOrder {
		if !moved[q] {
			remaining = append(remaining, q)
		}
	}
	b.Quantifiers = nil
	b.JoinOrder = nil
	smQ := g.AddQuantifier(b, qgm.ForEach, "sm", sm)
	b.Quantifiers = append(b.Quantifiers, remaining...)
	for _, q := range remaining {
		q.Parent = b
	}

	// Expose every column of the moved quantifiers still referenced from
	// b's subtree, and rewrite those references onto the supplementary
	// quantifier.
	type src struct {
		q   *qgm.Quantifier
		ord int
	}
	outOrd := map[src]int{}
	addOutput := func(s src) int {
		if ord, ok := outOrd[s]; ok {
			return ord
		}
		ord := len(sm.Output)
		outOrd[s] = ord
		name := fmt.Sprintf("c%d", ord)
		if s.ord < len(s.q.Ranges.Output) && s.q.Ranges.Output[s.ord].Name != "" {
			name = s.q.Ranges.Output[s.ord].Name
		}
		sm.Output = append(sm.Output, qgm.OutputCol{
			Name: name,
			Expr: &qgm.ColRef{Q: s.q, Ord: s.ord},
			Type: s.q.Ranges.Output[s.ord].Type,
		})
		return ord
	}
	// Rewrite b's subtree, but never descend into the supplementary box
	// itself: its predicates and outputs legitimately reference the moved
	// quantifiers.
	rewriteFn := func(expr qgm.Expr) qgm.Expr {
		return qgm.RewriteRefs(expr, func(c *qgm.ColRef) qgm.Expr {
			if moved[c.Q] {
				return &qgm.ColRef{Q: smQ, Ord: addOutput(src{c.Q, c.Ord})}
			}
			return nil
		})
	}
	seen := map[*qgm.Box]bool{sm: true}
	var walk func(box *qgm.Box)
	walk = func(box *qgm.Box) {
		if box == nil || seen[box] {
			return
		}
		seen[box] = true
		qgm.RewriteBoxExprs(box, rewriteFn)
		for _, q := range box.Quantifiers {
			walk(q.Ranges)
		}
		walk(box.MagicBox)
	}
	walk(b)
	// Guarantee at least one output (a supplementary box none of whose
	// columns are referenced can still feed a magic box via predicates).
	if len(sm.Output) == 0 && len(eligible) > 0 {
		q0 := eligible[0]
		if len(q0.Ranges.Output) > 0 {
			addOutput(src{q0, 0})
		}
	}
	return smQ
}

// buildMagicBox constructs a magic-box (or condition-magic-box) for the
// given bindings: a select box joining copies of the eligible quantifiers
// (after supplementary factoring this is typically the single
// supplementary quantifier) restricted by the predicates over them, and
// projecting the binding expressions. DISTINCT is enforced; the distinct
// pull-up rule later infers when it can be dropped.
func (e *EMSTRule) buildMagicBox(ctx *rewrite.Context, b *qgm.Box, eligible []*qgm.Quantifier, bindings []Binding, role qgm.MagicRole, name string) *qgm.Box {
	g := ctx.G
	m := g.NewBox(qgm.KindSelect, e.genName(name))
	m.Role = role
	m.Distinct = qgm.DistinctEnforce

	remap := map[*qgm.Quantifier]*qgm.Quantifier{}
	for _, q := range eligible {
		nq := g.AddQuantifier(m, q.Type, q.Name, q.Ranges)
		remap[q] = nq
	}
	// Copy the predicates of b over eligible quantifiers (when a
	// supplementary box was built they were moved there, so this is
	// usually empty).
	for _, p := range movablePreds(b, eligible) {
		m.Preds = append(m.Preds, qgm.CopyExpr(p, remap))
	}
	for k, bd := range bindings {
		m.Output = append(m.Output, qgm.OutputCol{
			Name: fmt.Sprintf("mc%d", k),
			Expr: qgm.CopyExpr(bd.Other, remap),
			Type: qgm.TypeOf(bd.Other),
		})
	}
	return m
}

// attachMagic wires magic box m into adorned copy cp (step 4c): AMQ copies
// get a magic quantifier first in the join order plus the equality
// predicates tying magic columns to the copy's output-defining expressions;
// NMQ copies get the box linked (and its restriction is passed down when
// EMST processes them). When cp was reused from the copy cache, the new
// contribution is unioned into the existing magic feed in place.
func (e *EMSTRule) attachMagic(ctx *rewrite.Context, cp *qgm.Box, m *qgm.Box, bindings []Binding, fresh bool) {
	g := ctx.G
	if !fresh {
		if old := e.feed[cp]; old != nil {
			e.extendUnion(ctx, old, m)
			return
		}
	}
	e.feed[cp] = m
	if IsAMQ(cp.Kind) {
		mq := g.AddQuantifier(cp, qgm.ForEach, "mg", m)
		// Magic quantifier goes first in the join order.
		reordered := append([]*qgm.Quantifier{mq}, cp.Quantifiers[:len(cp.Quantifiers)-1]...)
		cp.Quantifiers = reordered
		cp.JoinOrder = nil
		for k, bd := range bindings {
			cp.Preds = append(cp.Preds, &qgm.Cmp{
				Op: datum.EQ,
				L:  mq.Col(k),
				R:  qgm.CopyExpr(cp.Output[bd.Ord].Expr, nil),
			})
		}
		return
	}
	cp.MagicBox = m
	cp.MagicCols = nil
	for k, bd := range bindings {
		cp.MagicCols = append(cp.MagicCols, qgm.MagicCol{BoxOrd: bd.Ord, MagicOrd: k})
	}
}

// attachCondition wires a condition-magic-box into an AMQ copy as a
// semi-join: the copy keeps a row iff some bound tuple satisfies all the
// conditions. This keeps every tuple ground (the paper's GMST requirement)
// while pushing non-equality predicates.
func (e *EMSTRule) attachCondition(ctx *rewrite.Context, cp *qgm.Box, cm *qgm.Box, bindings []Binding) {
	g := ctx.G
	eq := g.AddQuantifier(cp, qgm.Exists, "cm", cm)
	for k, bd := range bindings {
		cp.Preds = append(cp.Preds, &qgm.Cmp{
			Op: bd.Op,
			L:  qgm.CopyExpr(cp.Output[bd.Ord].Expr, nil),
			R:  eq.Col(k),
		})
	}
}

// extendUnion folds the new contribution into the existing magic feed IN
// PLACE, so descendants already referencing the feed box see the union: if
// the feed is a select box it is converted into a union box whose first
// branch is a clone of its old self.
func (e *EMSTRule) extendUnion(ctx *rewrite.Context, feedBox *qgm.Box, m *qgm.Box) {
	g := ctx.G
	if feedBox.Kind != qgm.KindUnion {
		branch := g.NewBox(feedBox.Kind, feedBox.Name+"_b0")
		branch.Role = feedBox.Role
		branch.Distinct = qgm.DistinctPreserve
		branch.Quantifiers = feedBox.Quantifiers
		for _, q := range branch.Quantifiers {
			q.Parent = branch
		}
		branch.Preds = feedBox.Preds
		branch.Output = feedBox.Output

		feedBox.Kind = qgm.KindUnion
		feedBox.Quantifiers = nil
		feedBox.Preds = nil
		feedBox.JoinOrder = nil
		feedBox.Output = nil
		for _, oc := range branch.Output {
			feedBox.Output = append(feedBox.Output, qgm.OutputCol{Name: oc.Name, Type: oc.Type})
		}
		g.AddQuantifier(feedBox, qgm.ForEach, "u0", branch)
	}
	// A new consumer's values may introduce duplicates across branches:
	// re-enforce distinctness (pull-up may relax it again if provable).
	feedBox.Distinct = qgm.DistinctEnforce
	g.AddQuantifier(feedBox, qgm.ForEach, fmt.Sprintf("u%d", len(feedBox.Quantifiers)), m)
}

// adornedCopy returns the adorned copy of box child for the adornment,
// reusing a cached copy for pure-equality adornments (condition adornments
// are consumer-specific). fresh reports whether the copy is new (the
// caller then attaches a new magic feed rather than extending).
func (e *EMSTRule) adornedCopy(ctx *rewrite.Context, child *qgm.Box, adornment string, cacheable bool) (cp *qgm.Box, fresh bool) {
	key := copyKey{origin: child, adornment: adornment}
	if cacheable {
		if cached, ok := e.copies[key]; ok {
			return cached, false
		}
	}
	if child.Recursive {
		cp, _ = ctx.G.CopySCC(child)
	} else {
		cp, _ = ctx.G.CopyBox(child)
	}
	cp.Adornment = adornment
	cp.Origin = child
	if cacheable {
		e.copies[key] = cp
	}
	return cp, true
}

func (e *EMSTRule) genName(prefix string) string {
	e.seq++
	return fmt.Sprintf("%s#%d", prefix, e.seq)
}

func indexOfQuant(qs []*qgm.Quantifier, q *qgm.Quantifier) int {
	for i, qq := range qs {
		if qq == q {
			return i
		}
	}
	return len(qs)
}
