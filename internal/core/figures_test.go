package core

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/opt"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
	"starmagic/internal/testutil"
)

// TestFigure3Phases pins Figure 3's phase gating: the EMST rule fires
// during phase 2 and ONLY phase 2.
func TestFigure3Phases(t *testing.T) {
	db := paperDB(t, 12, 6)
	g, err := db.Build(testutil.QueryD)
	if err != nil {
		t.Fatal(err)
	}
	firedByPhase := map[string]map[string]bool{}
	run := func(phase string, rules []rewrite.Rule) {
		firedByPhase[phase] = map[string]bool{}
		o := Options{Trace: func(rule string, _ *qgm.Box) { firedByPhase[phase][rule] = true }}
		if err := runPhase(g, o, nil, rules...); err != nil {
			t.Fatal(err)
		}
	}
	run("phase1", Phase1Rules())
	opt.Optimize(g)
	run("phase2", Phase2Rules())
	clearMagicLinks(g)
	run("phase3", Phase3Rules())

	if firedByPhase["phase1"]["emst"] {
		t.Error("EMST fired in phase 1")
	}
	if !firedByPhase["phase2"]["emst"] {
		t.Error("EMST did not fire in phase 2")
	}
	if firedByPhase["phase3"]["emst"] {
		t.Error("EMST fired in phase 3")
	}
	// Traditional rules do fire around it.
	if !firedByPhase["phase1"]["merge"] {
		t.Error("merge did not fire in phase 1")
	}
	if !firedByPhase["phase3"]["merge"] {
		t.Error("merge did not fire in phase 3 (magic simplification)")
	}
}

// TestExceptViewMagicDescent: a view defined as EXCEPT passes the magic
// restriction into BOTH branches (positional NMQ mapping), and results
// remain correct.
func TestExceptViewMagicDescent(t *testing.T) {
	db := paperDB(t, 20, 8)
	if err := db.Cat.AddView(&catalog.View{
		Name: "nonmanagers",
		SQL: "SELECT empno, workdept FROM employee WHERE workdept IS NOT NULL " +
			"EXCEPT SELECT mgrno, deptno FROM department WHERE mgrno IS NOT NULL",
	}); err != nil {
		t.Fatal(err)
	}
	query := "SELECT n.empno FROM department d, nonmanagers n WHERE d.deptno = n.workdept AND d.deptname = 'Planning'"
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("results differ:\ngot  %v\nwant %v\n%s", got, want, res.Graph.Dump())
	}
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if n := strings.Count(p2.Dump, "quant mg:F"); n < 2 {
		t.Errorf("expected magic quantifiers in both EXCEPT branches, found %d:\n%s", n, p2.Dump)
	}
}

// TestIntersectViewMagicDescent mirrors the EXCEPT test for INTERSECT.
func TestIntersectViewMagicDescent(t *testing.T) {
	db := paperDB(t, 20, 8)
	if err := db.Cat.AddView(&catalog.View{
		Name: "mgrdepts",
		SQL: "SELECT workdept FROM employee WHERE workdept IS NOT NULL " +
			"INTERSECT SELECT deptno FROM department WHERE mgrno IS NOT NULL",
	}); err != nil {
		t.Fatal(err)
	}
	query := "SELECT m.workdept FROM department d, mgrdepts m WHERE d.deptno = m.workdept AND d.deptname LIKE 'Planning%'"
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("results differ:\ngot  %v\nwant %v", got, want)
	}
}

// TestEMSTTraversalOrderIndependence verifies §5's claim: "The EMST rule
// can be applied to the QGM boxes in any order of traversal, achieving the
// same final transformation." We run phase 2 under depth-first, reversed,
// and ID-shuffled traversals and compare both the results and the final
// structural statistics.
func TestEMSTTraversalOrderIndependence(t *testing.T) {
	db := paperDB(t, 12, 6)
	queries := []string{
		testutil.QueryD,
		"SELECT d.deptname, s.avgsalary FROM department d, avgSal s WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
		"SELECT a.workdept, a.avgsalary FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept AND a.avgsalary > 400",
	}
	traversals := map[string]func([]*qgm.Box) []*qgm.Box{
		"depth-first": nil,
		"reversed": func(bs []*qgm.Box) []*qgm.Box {
			out := make([]*qgm.Box, len(bs))
			for i, b := range bs {
				out[len(bs)-1-i] = b
			}
			return out
		},
		"rotated": func(bs []*qgm.Box) []*qgm.Box {
			if len(bs) < 2 {
				return bs
			}
			return append(append([]*qgm.Box{}, bs[len(bs)/2:]...), bs[:len(bs)/2]...)
		},
	}
	for _, query := range queries {
		var wantRows string
		var wantStats qgm.Stats
		first := true
		for name, trav := range traversals {
			g, err := db.Build(query)
			if err != nil {
				t.Fatal(err)
			}
			if err := runPhaseWithTraversal(g, Phase1Rules(), nil); err != nil {
				t.Fatal(err)
			}
			opt.Optimize(g)
			if err := runPhaseWithTraversal(g, Phase2Rules(), trav); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			clearMagicLinks(g)
			if err := runPhaseWithTraversal(g, Phase3Rules(), nil); err != nil {
				t.Fatal(err)
			}
			opt.Optimize(g)
			rows, _, err := db.Eval(g)
			if err != nil {
				t.Fatalf("%s eval: %v\n%s", name, err, g.Dump())
			}
			rowsS := strings.Join(rows, ";")
			stats := g.Stats()
			if first {
				wantRows, wantStats = rowsS, stats
				first = false
				continue
			}
			if rowsS != wantRows {
				t.Errorf("%q traversal %s: results differ", query, name)
			}
			if stats != wantStats {
				t.Errorf("%q traversal %s: final structure differs: %s vs %s", query, name, stats, wantStats)
			}
		}
	}
}

func runPhaseWithTraversal(g *qgm.Graph, rules []rewrite.Rule, trav func([]*qgm.Box) []*qgm.Box) error {
	engine := rewrite.NewEngine(rules...)
	return engine.Run(&rewrite.Context{G: g, Validate: true, Traversal: trav})
}

// TestRecursionBoundInvariantAnalysis exercises the safety check behind
// magic-on-recursion directly: left-linear TC is invariant in the bound
// column, right-linear TC is invariant only in the other column.
func TestRecursionBoundInvariantAnalysis(t *testing.T) {
	db := paperDB(t, 6, 3)
	if err := db.Cat.AddView(&catalog.View{
		Name:    "ll",
		Columns: []string{"src", "dst"},
		SQL: "SELECT mgrno, deptno FROM department WHERE mgrno IS NOT NULL UNION " +
			"SELECT t.src, d.deptno FROM ll t, department d WHERE t.dst = d.mgrno",
	}); err != nil {
		t.Fatal(err)
	}
	g, err := db.Build("SELECT dst FROM ll WHERE src = 1")
	if err != nil {
		t.Fatal(err)
	}
	var root *qgm.Box
	for _, b := range g.Reachable() {
		if b.Recursive {
			root = b
		}
	}
	if root == nil {
		t.Fatal("no fixpoint root")
	}
	if !recursionBoundInvariant(root, 0) {
		t.Error("left-linear src should be invariant")
	}
	if recursionBoundInvariant(root, 1) {
		t.Error("left-linear dst should NOT be invariant (it advances)")
	}
}

// TestRegisterBoxKindRoundTrip covers the extension registry.
func TestRegisterBoxKindRoundTrip(t *testing.T) {
	kind := qgm.KindExtensionStart + 33
	if IsAMQ(kind) {
		t.Error("unregistered kind must default to NMQ")
	}
	RegisterBoxKind(kind, true, nil)
	if !IsAMQ(kind) {
		t.Error("registered AMQ kind not recognized")
	}
	RegisterBoxKind(kind, false, func(b *qgm.Box, ord int) []QuantBinding { return nil })
	if IsAMQ(kind) {
		t.Error("re-registration did not apply")
	}
}
