package core

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/opt"
	"starmagic/internal/qgm"
	"starmagic/internal/testutil"
)

// planOptimizeForTest runs the plan optimizer as the pipeline would between
// phases 1 and 2.
func planOptimizeForTest(g *qgm.Graph) opt.Result { return opt.Optimize(g) }

func paperDB(t *testing.T, nDepts, empsPerDept int) *testutil.DB {
	t.Helper()
	db, err := testutil.PaperSchema()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadPaperData(nDepts, empsPerDept); err != nil {
		t.Fatal(err)
	}
	return db
}

func optimizeQuery(t *testing.T, db *testutil.DB, query string, o Options) *Result {
	t.Helper()
	g, err := db.Build(query)
	if err != nil {
		t.Fatalf("build %q: %v", query, err)
	}
	o.Validate = true
	res, err := Optimize(g, o)
	if err != nil {
		t.Fatalf("optimize %q: %v", query, err)
	}
	if err := res.Graph.Check(); err != nil {
		t.Fatalf("optimized graph invalid: %v\n%s", err, res.Graph.Dump())
	}
	return res
}

// The correctness corpus: every query is run unoptimized and through the
// full pipeline; results must agree exactly (as multisets).
var corpus = []string{
	testutil.QueryD,
	"SELECT empname, salary FROM mgrSal WHERE workdept = 2",
	"SELECT workdept, avgsalary FROM avgMgrSal WHERE workdept < 4",
	"SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept AND d.deptname = 'Dept003'",
	"SELECT d.deptname, m.empname FROM department d, mgrSal m WHERE d.deptno = m.workdept AND d.deptname = 'Planning'",
	"SELECT e.empname FROM employee e, department d WHERE e.workdept = d.deptno AND d.deptname = 'Planning' AND e.salary > 500",
	"SELECT d.deptname FROM department d WHERE EXISTS (SELECT 1 FROM employee e WHERE e.workdept = d.deptno AND e.salary > 1900)",
	"SELECT e.empname FROM employee e WHERE e.workdept NOT IN (SELECT deptno FROM department WHERE deptname = 'Planning') AND e.salary > 1950",
	"SELECT a.workdept, a.avgsalary FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept AND a.avgsalary > 400",
	"SELECT d.deptname, s.workdept FROM department d, avgMgrSal s WHERE d.deptno = s.workdept AND d.deptname LIKE 'Planning%'",
	"SELECT m.empname FROM mgrSal m, department d WHERE m.workdept = d.deptno AND d.mgrno > m.empno",
	"SELECT workdept, COUNT(*) FROM employee GROUP BY workdept HAVING COUNT(*) > 2",
	"SELECT deptno FROM department WHERE deptno < 3 UNION SELECT workdept FROM employee WHERE salary > 1990",
	"SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept) AND e.workdept = 1",
	"SELECT s.avgsalary FROM avgMgrSal s WHERE s.workdept IN (1, 2, 3)",
}

func TestPipelinePreservesSemantics(t *testing.T) {
	db := paperDB(t, 12, 6)
	for _, query := range corpus {
		ref, err := db.Build(query)
		if err != nil {
			t.Fatalf("build %q: %v", query, err)
		}
		want, _, err := db.Eval(ref)
		if err != nil {
			t.Fatalf("eval reference %q: %v", query, err)
		}
		res := optimizeQuery(t, db, query, Options{})
		got, _, err := db.Eval(res.Graph)
		if err != nil {
			t.Fatalf("eval optimized %q: %v\n%s", query, err, res.Graph.Dump())
		}
		if len(got) != len(want) {
			t.Errorf("%q: %d rows vs %d\ngot  %v\nwant %v\n%s", query, len(got), len(want), got, want, res.Graph.Dump())
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q row %d: got %q want %q", query, i, got[i], want[i])
				break
			}
		}
	}
}

func TestEMSTNeverDegrades(t *testing.T) {
	db := paperDB(t, 12, 6)
	for _, query := range corpus {
		res := optimizeQuery(t, db, query, Options{})
		if res.UsedEMST && res.CostAfter > res.CostBefore {
			t.Errorf("%q: EMST used but cost degraded %v -> %v", query, res.CostBefore, res.CostAfter)
		}
		if !res.UsedEMST && res.CostAfter <= res.CostBefore && res.CostAfter != res.CostBefore {
			t.Errorf("%q: cheaper EMST plan rejected: %v vs %v", query, res.CostAfter, res.CostBefore)
		}
	}
}

func TestQueryDUsesEMST(t *testing.T) {
	db := paperDB(t, 40, 25)
	res := optimizeQuery(t, db, testutil.QueryD, Options{Snapshots: true})
	if !res.UsedEMST {
		t.Fatalf("query D should choose the EMST plan (%v vs %v)", res.CostBefore, res.CostAfter)
	}
	if res.CostAfter >= res.CostBefore {
		t.Errorf("EMST cost %v should beat original %v", res.CostAfter, res.CostBefore)
	}
}

// TestFigure4Shape pins the structural facts of the paper's Figure 4 for
// query D: phase 1 leaves QUERY -> GROUPBY -> T1 (plus two base tables);
// phase 2 introduces magic, supplementary-magic and adorned boxes; phase 3
// collapses them so that the final graph has exactly one extra box and one
// extra join compared with phase 1 ("the additional join is very
// inexpensive", §1).
func TestFigure4Shape(t *testing.T) {
	db := paperDB(t, 40, 25)
	res := optimizeQuery(t, db, testutil.QueryD, Options{Snapshots: true})
	byName := map[string]Snapshot{}
	for _, s := range res.Snapshots {
		byName[s.Name] = s
	}
	p1, ok1 := byName["phase1"]
	p2, ok2 := byName["phase2"]
	p3, ok3 := byName["phase3"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing snapshots: %v", res.Snapshots)
	}
	// Phase 1 (upper right of Figure 4): select box QUERY, group-by box,
	// T1 select box, two base tables.
	if p1.Stats.SelectBoxes != 2 || p1.Stats.GroupBys != 1 {
		t.Errorf("phase1 shape: %s\n%s", p1.Stats, p1.Dump)
	}
	// Phase 2 (lower left): magic machinery present.
	if p2.Stats.MagicBoxes == 0 {
		t.Errorf("phase2 has no magic boxes:\n%s", p2.Dump)
	}
	if !strings.Contains(p2.Dump, "supp-magic") {
		t.Errorf("phase2 missing supplementary-magic box:\n%s", p2.Dump)
	}
	if !strings.Contains(p2.Dump, "^bf") {
		t.Errorf("phase2 missing bf adornment:\n%s", p2.Dump)
	}
	// Phase 3 (lower right): exactly one extra box and one extra join
	// compared to phase 1.
	if got, want := p3.Stats.Boxes-p1.Stats.Boxes, 1; got != want {
		t.Errorf("phase3 extra boxes = %d; want %d\nphase1:\n%s\nphase3:\n%s",
			got, want, p1.Dump, p3.Dump)
	}
	if got, want := p3.Stats.Joins-p1.Stats.Joins, 1; got != want {
		t.Errorf("phase3 extra joins = %d; want %d\nphase3:\n%s", got, want, p3.Dump)
	}
}

// TestQueryDAdornments pins Example 2.3/4.1: the group-by view is adorned
// bf (workdept bound) and the restriction descends into its input box.
func TestQueryDAdornments(t *testing.T) {
	db := paperDB(t, 40, 25)
	res := optimizeQuery(t, db, testutil.QueryD, Options{Snapshots: true})
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if !strings.Contains(p2.Dump, "GB") || !strings.Contains(p2.Dump, "^bf") {
		t.Errorf("phase2 dump missing adorned group-by:\n%s", p2.Dump)
	}
	// The T1 box under the adorned group-by must carry a magic quantifier.
	if !strings.Contains(p2.Dump, "quant mg:F") {
		t.Errorf("no magic quantifier inserted:\n%s", p2.Dump)
	}
}

// TestDistinctDroppedFromMagic pins the phase-2 inference of Example 4.1:
// duplicate magic tuples provably cannot occur, so the magic tables lose
// their enforced DISTINCT (which is what lets phase 3 merge them away).
func TestDistinctDroppedFromMagic(t *testing.T) {
	db := paperDB(t, 40, 25)
	g, err := db.Build(testutil.QueryD)
	if err != nil {
		t.Fatal(err)
	}
	// Run phases manually to inspect the phase-2 graph.
	if err := runPhase(g, Options{Validate: true}, nil, Phase1Rules()...); err != nil {
		t.Fatal(err)
	}
	optimizePlans(t, g)
	if err := runPhase(g, Options{Validate: true}, nil, Phase2Rules()...); err != nil {
		t.Fatal(err)
	}
	sawMagic := false
	for _, b := range g.Reachable() {
		if b.Role == qgm.RoleMagic {
			sawMagic = true
			if b.Distinct == qgm.DistinctEnforce {
				t.Errorf("magic box %s still enforces DISTINCT\n%s", b.Name, g.Dump())
			}
		}
	}
	if !sawMagic {
		t.Fatalf("no magic boxes in phase-2 graph:\n%s", g.Dump())
	}
}

func optimizePlans(t *testing.T, g *qgm.Graph) {
	t.Helper()
	// plan optimization pass (join orders) without the pipeline wrapper
	_ = planOptimizeForTest(g)
}

// TestMagicRestrictsComputation verifies the headline effect: with EMST the
// executor touches far fewer rows than the original plan on a selective
// query over a large view.
func TestMagicRestrictsComputation(t *testing.T) {
	db := paperDB(t, 60, 40)
	// avgSal aggregates every employee; the query needs only one
	// department, which is exactly what magic exploits.
	query := "SELECT d.deptname, s.avgsalary FROM department d, avgSal s " +
		"WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
	orig := optimizeQuery(t, db, query, Options{SkipEMST: true})
	wantRows, evOrig, err := db.Eval(orig.Graph)
	if err != nil {
		t.Fatal(err)
	}
	magic := optimizeQuery(t, db, query, Options{})
	gotRows, evMagic, err := db.Eval(magic.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRows) != len(gotRows) {
		t.Fatalf("result mismatch: %v vs %v", wantRows, gotRows)
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("row %d: %q vs %q", i, wantRows[i], gotRows[i])
		}
	}
	// The original plan aggregates every department; the magic plan only
	// the Planning department. OutputRows is the tell.
	if evMagic.Counters.OutputRows*4 > evOrig.Counters.OutputRows {
		t.Errorf("magic did not restrict computation: %d vs %d output rows\n%s",
			evMagic.Counters.OutputRows, evOrig.Counters.OutputRows, magic.Graph.Dump())
	}
}

// TestSharedViewSameAdornmentUnionsMagic: two consumers binding the same
// view column share one adorned copy whose magic table becomes a union of
// both contributions (§4.1: "The magic-box is either a select-box, or a
// union-box").
func TestSharedViewSameAdornmentUnionsMagic(t *testing.T) {
	db := paperDB(t, 12, 6)
	query := `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'
		UNION ALL
		SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Dept005'`
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("results differ:\ngot  %v\nwant %v\n%s", got, want, res.Graph.Dump())
	}
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if !strings.Contains(p2.Dump, "union") {
		t.Errorf("expected a union magic feed in phase 2:\n%s", p2.Dump)
	}
}

// TestConditionAdornment: a non-equality join predicate produces a 'c'
// adornment and a condition-magic box, and results stay correct.
func TestConditionAdornment(t *testing.T) {
	db := paperDB(t, 12, 6)
	// mgrSal is referenced twice so it stays a shared (unmerged) select box
	// into phase 2; the non-equality join predicate on m then yields a 'c'
	// adornment with a condition-magic box.
	query := "SELECT m.empname FROM department d, mgrSal m, mgrSal m2 " +
		"WHERE d.deptname = 'Planning' AND m.workdept > d.deptno AND m2.workdept = d.deptno"
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("results differ:\ngot  %v\nwant %v", got, want)
	}
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if !strings.Contains(p2.Dump, "^c") && !strings.Contains(p2.Dump, "cf") {
		// adornment like "cfff..." — look for cond-magic role instead
		if !strings.Contains(p2.Dump, "cond-magic") {
			t.Errorf("no condition adornment or cond-magic box in phase 2:\n%s", p2.Dump)
		}
	}
}

// TestAMQRegistry checks the §4.2 classification.
func TestAMQRegistry(t *testing.T) {
	if !IsAMQ(qgm.KindSelect) {
		t.Error("select must be AMQ")
	}
	for _, k := range []qgm.BoxKind{qgm.KindGroupBy, qgm.KindUnion, qgm.KindExcept, qgm.KindIntersect, qgm.KindBaseTable} {
		if IsAMQ(k) {
			t.Errorf("%v must be NMQ", k)
		}
	}
}

// TestAdornmentString checks §2's bcf notation.
func TestAdornmentString(t *testing.T) {
	bindings := []Binding{{Ord: 2, Eq: true}, {Ord: 0, Eq: false}}
	if got := adornmentString(4, bindings); got != "cfbf" {
		t.Errorf("adornment = %q; want cfbf", got)
	}
	if got := adornmentString(2, nil); got != "ff" {
		t.Errorf("adornment = %q; want ff", got)
	}
	if !allFree("ffff") || allFree("bf") || allFree("cf") {
		t.Error("allFree wrong")
	}
}

// TestNMQDescentThroughUnion: a view defined as a UNION receives the magic
// restriction in both branches.
func TestNMQDescentThroughUnion(t *testing.T) {
	db := paperDB(t, 12, 6)
	if err := db.Cat.AddView(&catalog.View{
		Name: "allpeople",
		SQL: "SELECT empno, workdept FROM employee WHERE salary > 400 " +
			"UNION ALL SELECT mgrno, deptno FROM department WHERE mgrno IS NOT NULL",
	}); err != nil {
		t.Fatal(err)
	}
	query := "SELECT p.empno FROM department d, allpeople p WHERE d.deptno = p.workdept AND d.deptname = 'Planning'"
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("results differ:\ngot  %v\nwant %v\n%s", got, want, res.Graph.Dump())
	}
	// Phase-2 graph: both union branches restricted by magic quantifiers.
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if n := strings.Count(p2.Dump, "quant mg:F"); n < 2 {
		t.Errorf("expected magic quantifiers in both union branches, found %d:\n%s", n, p2.Dump)
	}
}

func TestOriginalModeSkipsEMST(t *testing.T) {
	db := paperDB(t, 12, 6)
	res := optimizeQuery(t, db, testutil.QueryD, Options{SkipEMST: true})
	if res.UsedEMST {
		t.Error("SkipEMST must not use EMST")
	}
	for _, b := range res.Graph.Reachable() {
		if b.IsMagic() {
			t.Errorf("magic box in original plan: %s", b.Name)
		}
	}
}

// TestSoakLargerScale reruns the correctness corpus at a larger data scale;
// skipped with -short.
func TestSoakLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	db := paperDB(t, 80, 30)
	for _, query := range corpus {
		ref, err := db.Build(query)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.Eval(ref)
		if err != nil {
			t.Fatal(err)
		}
		res := optimizeQuery(t, db, query, Options{})
		got, _, err := db.Eval(res.Graph)
		if err != nil {
			t.Fatalf("%q: %v", query, err)
		}
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("%q: results differ at scale", query)
		}
	}
}

// TestNestedSupplementaryChain: with a three-table prefix before two views,
// EMST builds supplementary boxes that chain (the second supplementary
// contains the first), sharing the join prefix between the query and every
// magic box — step 4a applied repeatedly.
func TestNestedSupplementaryChain(t *testing.T) {
	db := paperDB(t, 20, 8)
	query := `SELECT e.empname, s.avgsalary, m.avgsalary
		FROM department d, employee e, avgSal s, avgMgrSal m
		WHERE d.deptname = 'Planning' AND e.workdept = d.deptno
		  AND s.workdept = e.workdept AND m.workdept = d.deptno
		  AND e.salary > 400`
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("results differ:\ngot  %v\nwant %v", got, want)
	}
	var p2 Snapshot
	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			p2 = s
		}
	}
	if n := strings.Count(p2.Dump, "supp-magic"); n < 2 {
		t.Errorf("expected chained supplementary boxes, found %d:\n%s", n, p2.Dump)
	}
	// The chain: a later supplementary must reference an earlier one.
	found := false
	for _, b := range res.Graph.Reachable() {
		if b.Role != qgm.RoleSuppMagic {
			continue
		}
		for _, q := range b.Quantifiers {
			if q.Ranges.Role == qgm.RoleSuppMagic {
				found = true
			}
		}
	}
	if !found {
		// The chain may have been merged away in phase 3; check phase 2.
		found = strings.Count(p2.Dump, "<supp-magic>") >= 2
	}
	if !found {
		t.Errorf("no supplementary chain:\n%s", p2.Dump)
	}
}

// TestConditionWithSupplementaryPrefix: a 'c' binding whose other side
// comes from a multi-quantifier prefix that was factored into a
// supplementary box — the condition-magic box must read the prefix through
// the supplementary quantifier.
func TestConditionWithSupplementaryPrefix(t *testing.T) {
	db := paperDB(t, 15, 6)
	query := `SELECT m.empname FROM department d, employee x, mgrSal m, mgrSal m2
		WHERE d.deptname = 'Planning' AND x.workdept = d.deptno
		  AND m.workdept > x.workdept AND m2.workdept = d.deptno`
	ref, err := db.Build(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Eval(ref)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeQuery(t, db, query, Options{Snapshots: true})
	got, _, err := db.Eval(res.Graph)
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, res.Graph.Dump())
	}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("results differ:\ngot  %v\nwant %v\n%s", got, want, res.Graph.Dump())
	}
}
