package core

import (
	"fmt"

	"starmagic/internal/opt"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
)

// Options configures the optimization pipeline.
type Options struct {
	// SkipEMST runs only phase-1 rewrite plus plan optimization (the
	// "Original" strategy of Table 1).
	SkipEMST bool
	// Snapshots records a dump of the graph after each phase (qgmviz and
	// the Figure 1/4 tests read them).
	Snapshots bool
	// Validate runs Graph.Check after every rule application.
	Validate bool
	// Trace receives one line per rule application when non-nil.
	Trace func(rule string, box *qgm.Box)

	// Ablations disable individual design choices for the ablation study
	// (cmd/table1 -ablation); all false in normal operation.
	Ablations Ablations
}

// Ablations switches off individual EMST design decisions so their
// contribution can be measured.
type Ablations struct {
	// NoSupplementary: magic boxes re-join the eligible prefix instead of
	// sharing it through a supplementary-magic-box.
	NoSupplementary bool
	// NoDistinctPullup: magic tables keep their enforced DISTINCT, which
	// also blocks the phase-3 merges that depend on the inference.
	NoDistinctPullup bool
	// NoPhase3: deliver the raw phase-2 magic graph without simplification
	// (how deductive-database implementations left it, §1).
	NoPhase3 bool
	// DeclarationOrderSIPS: ignore the plan optimizer's join orders and
	// adorn in declaration order (what systems without cost-based sips do,
	// §2: "deductive database systems don't do any cost-based optimization
	// to determine the join orders needed for magic").
	DeclarationOrderSIPS bool
}

// Snapshot is the state of the graph after one pipeline stage.
type Snapshot struct {
	Name  string
	Stats qgm.Stats
	Dump  string
	// DOT is the Graphviz rendering of the same graph (cmd/qgmviz -dot).
	DOT string
}

// Result reports what the pipeline did.
type Result struct {
	// Graph is the graph to execute (the transformed graph, or the
	// pre-EMST graph when the cost comparison favored it).
	Graph *qgm.Graph
	// UsedEMST reports whether the executed plan is the EMST-transformed
	// one.
	UsedEMST bool
	// CostBefore/CostAfter are the optimizer's estimates for the pre- and
	// post-EMST plans (§3.2 step 5).
	CostBefore, CostAfter float64
	// PlansConsidered sums join orders examined across both plan-
	// optimization invocations.
	PlansConsidered int
	// Snapshots, when requested, holds the graph after each phase.
	Snapshots []Snapshot
}

// Optimize runs the paper's optimization architecture (Figures 2 and 3):
//
//	phase-1 query rewrite (no EMST; rules that need no join orders)
//	plan optimization            → join orders + cost of the no-EMST plan
//	phase-2 query rewrite        → the EMST rule, using those join orders
//	phase-3 query rewrite        → simplify the magic graph (EMST disabled)
//	plan optimization            → cost of the EMST plan
//	cost comparison              → execute the cheaper plan
//
// The back edge from plan optimization to query rewrite in Figure 2 is the
// call sequence here. The guarantee (§3.2): usage of the EMST rule cannot
// degrade the query plan produced without it.
func Optimize(g *qgm.Graph, o Options) (*Result, error) {
	res := &Result{}
	snap := func(name string) {
		if o.Snapshots {
			res.Snapshots = append(res.Snapshots, Snapshot{
				Name:  name,
				Stats: g.Stats(),
				Dump:  g.Dump(),
				DOT:   g.DumpDOT(name),
			})
		}
	}
	snap("initial")

	// Phase 1: rewrite rules that do not depend on join orders.
	if err := runPhase(g, o, Phase1Rules()...); err != nil {
		return nil, fmt.Errorf("phase 1: %w", err)
	}
	snap("phase1")

	// Plan optimization #1: join orders for EMST, and the no-EMST cost.
	r1 := opt.Optimize(g)
	res.CostBefore = r1.Cost
	res.PlansConsidered += r1.PlansConsidered

	if o.SkipEMST {
		res.Graph = g
		res.CostAfter = r1.Cost
		return res, nil
	}

	// Keep the pre-EMST plan for the cost comparison.
	fallback := g.CloneGraph()

	if o.Ablations.DeclarationOrderSIPS {
		for _, b := range g.Reachable() {
			b.JoinOrder = nil
		}
	}

	// Phase 2: EMST plus the join-order-independent rules (the paper keeps
	// graph-simplifying merges for phase 3).
	emst := NewEMSTRule()
	emst.NoSupplementary = o.Ablations.NoSupplementary
	phase2 := []rewrite.Rule{emst, rewrite.LocalPushdownRule{}}
	if !o.Ablations.NoDistinctPullup {
		phase2 = append(phase2, rewrite.DistinctPullupRule{})
	}
	if err := runPhase(g, o, phase2...); err != nil {
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	clearMagicLinks(g)
	snap("phase2")

	// Phase 3: simplify the magic graph; EMST disabled.
	if !o.Ablations.NoPhase3 {
		phase3 := Phase3Rules()
		if o.Ablations.NoDistinctPullup {
			phase3 = withoutRule(phase3, rewrite.DistinctPullupRule{}.Name())
		}
		if err := runPhase(g, o, phase3...); err != nil {
			return nil, fmt.Errorf("phase 3: %w", err)
		}
	}
	snap("phase3")

	// Plan optimization #2 and the cost comparison.
	r2 := opt.Optimize(g)
	res.CostAfter = r2.Cost
	res.PlansConsidered += r2.PlansConsidered
	if r2.Cost <= r1.Cost {
		res.Graph = g
		res.UsedEMST = true
	} else {
		res.Graph = fallback
	}
	return res, nil
}

// Phase1Rules are the join-order-independent rewrite rules (§3.3): local
// predicate pushdown (the paper's "local magic" rule), duplicate-
// elimination pull-up, redundant join elimination, the merge rule, plus
// projection pruning and trivial-select cleanup.
func Phase1Rules() []rewrite.Rule {
	return []rewrite.Rule{
		rewrite.MergeRule{},
		rewrite.LocalPushdownRule{},
		rewrite.ProjectionPruneRule{},
		rewrite.DistinctPullupRule{},
		rewrite.RedundantJoinRule{},
		rewrite.TrivialSelectRule{},
	}
}

// Phase2Rules activate EMST alongside the rules it cooperates with; the
// merge rule stays disabled so the magic structure remains visible until
// phase 3 (Figure 3).
func Phase2Rules() []rewrite.Rule {
	return []rewrite.Rule{
		NewEMSTRule(),
		rewrite.LocalPushdownRule{},
		rewrite.DistinctPullupRule{},
	}
}

// Phase3Rules simplify the transformed graph with EMST disabled.
func Phase3Rules() []rewrite.Rule {
	return Phase1Rules()
}

func withoutRule(rules []rewrite.Rule, name string) []rewrite.Rule {
	var out []rewrite.Rule
	for _, r := range rules {
		if r.Name() != name {
			out = append(out, r)
		}
	}
	return out
}

func runPhase(g *qgm.Graph, o Options, rules ...rewrite.Rule) error {
	engine := rewrite.NewEngine(rules...)
	ctx := &rewrite.Context{G: g, Validate: o.Validate, Trace: o.Trace}
	return engine.Run(ctx)
}

// clearMagicLinks drops the MagicBox/MagicCols bookkeeping once phase 2 is
// complete: the restrictions have been materialized as magic quantifiers
// and predicates; the links would otherwise pin boxes and block phase-3
// merges.
func clearMagicLinks(g *qgm.Graph) {
	for _, b := range g.Reachable() {
		b.MagicBox = nil
		b.MagicCols = nil
	}
	g.GC()
}
