package core

import (
	"context"
	"fmt"
	"time"

	"starmagic/internal/obs"
	"starmagic/internal/opt"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
)

// Options configures the optimization pipeline.
type Options struct {
	// SkipEMST runs only phase-1 rewrite plus plan optimization (the
	// "Original" strategy of Table 1).
	SkipEMST bool
	// Snapshots records a dump of the graph after each phase (qgmviz and
	// the Figure 1/4 tests read them).
	Snapshots bool
	// Validate runs Graph.Check after every rule application.
	Validate bool
	// Trace receives one line per rule application when non-nil.
	Trace func(rule string, box *qgm.Box)
	// Ctx, when non-nil, is polled at stage boundaries so a cancelled or
	// timed-out query stops optimizing early.
	Ctx context.Context
	// Tracer, when non-nil, receives one span per pipeline stage (the
	// boxes of Figures 2 and 3): phase1, plan-opt1, phase2, phase3,
	// plan-opt2.
	Tracer obs.Tracer

	// Est configures the estimators used by both plan-optimization passes
	// and by lowering: execution-feedback cardinality hints (box name →
	// observed rows) and the flat-statistics mode that ignores histograms.
	Est EstimatorConfig
	// ForceEMST executes the post-EMST plan even when the cost comparison
	// favors the pre-EMST one. A/B benchmarks and the skewed-plan oracle use
	// it to measure the runtime of the strategy the optimizer rejected.
	ForceEMST bool

	// Ablations disable individual design choices for the ablation study
	// (cmd/table1 -ablation); all false in normal operation.
	Ablations Ablations
}

// EstimatorConfig selects how the pipeline's estimators are constructed.
// Each optimization pass gets a fresh estimator (memoized cardinalities must
// not survive graph rewrites) built from this shared configuration.
type EstimatorConfig struct {
	// Hints maps qgm box names to observed output cardinalities; see
	// opt.Estimator.Hints.
	Hints map[string]float64
	// NoHist disables histogram probes (flat-default selectivities).
	NoHist bool
}

func (c EstimatorConfig) new() *opt.Estimator {
	return opt.NewEstimatorWith(c.Hints, c.NoHist)
}

// Ablations switches off individual EMST design decisions so their
// contribution can be measured.
type Ablations struct {
	// NoSupplementary: magic boxes re-join the eligible prefix instead of
	// sharing it through a supplementary-magic-box.
	NoSupplementary bool
	// NoDistinctPullup: magic tables keep their enforced DISTINCT, which
	// also blocks the phase-3 merges that depend on the inference.
	NoDistinctPullup bool
	// NoPhase3: deliver the raw phase-2 magic graph without simplification
	// (how deductive-database implementations left it, §1).
	NoPhase3 bool
	// DeclarationOrderSIPS: ignore the plan optimizer's join orders and
	// adorn in declaration order (what systems without cost-based sips do,
	// §2: "deductive database systems don't do any cost-based optimization
	// to determine the join orders needed for magic").
	DeclarationOrderSIPS bool
}

// Snapshot is the state of the graph after one pipeline stage.
type Snapshot struct {
	Name  string
	Stats qgm.Stats
	Dump  string
	// DOT is the Graphviz rendering of the same graph (cmd/qgmviz -dot).
	DOT string
}

// Result reports what the pipeline did.
type Result struct {
	// Graph is the graph to execute (the transformed graph, or the
	// pre-EMST graph when the cost comparison favored it).
	Graph *qgm.Graph
	// Physical is Graph lowered into the physical operator tree the
	// streaming executor runs (the "lower" stage).
	Physical *plan.Plan
	// UsedEMST reports whether the executed plan is the EMST-transformed
	// one.
	UsedEMST bool
	// CostBefore/CostAfter are the optimizer's estimates for the pre- and
	// post-EMST plans (§3.2 step 5).
	CostBefore, CostAfter float64
	// PlansConsidered sums join orders examined across both plan-
	// optimization invocations.
	PlansConsidered int
	// Snapshots, when requested, holds the graph after each phase.
	Snapshots []Snapshot
	// Phases records wall-clock per pipeline stage in execution order
	// (phase1, plan-opt1, phase2, phase3, plan-opt2, lower).
	Phases []PhaseTiming
	// RuleStats tallies rewrite-rule attempts and fires across all rewrite
	// phases of this optimization.
	RuleStats []rewrite.RuleStat
}

// PhaseTiming is the wall-clock of one pipeline stage.
type PhaseTiming struct {
	Name     string
	Duration time.Duration
}

// Optimize runs the paper's optimization architecture (Figures 2 and 3):
//
//	phase-1 query rewrite (no EMST; rules that need no join orders)
//	plan optimization            → join orders + cost of the no-EMST plan
//	phase-2 query rewrite        → the EMST rule, using those join orders
//	phase-3 query rewrite        → simplify the magic graph (EMST disabled)
//	plan optimization            → cost of the EMST plan
//	cost comparison              → execute the cheaper plan
//
// The back edge from plan optimization to query rewrite in Figure 2 is the
// call sequence here. The guarantee (§3.2): usage of the EMST rule cannot
// degrade the query plan produced without it.
func Optimize(g *qgm.Graph, o Options) (*Result, error) {
	res := &Result{}
	stats := &rewrite.Stats{}
	defer func() { res.RuleStats = stats.Snapshot() }()
	snap := func(name string) {
		if o.Snapshots {
			res.Snapshots = append(res.Snapshots, Snapshot{
				Name:  name,
				Stats: g.Stats(),
				Dump:  g.Dump(),
				DOT:   g.DumpDOT(name),
			})
		}
	}
	// stage wraps one pipeline box of Figure 2/3 in a span and a timing
	// entry, checking for cancellation before starting the work.
	stage := func(name string, f func() error) error {
		if o.Ctx != nil {
			if err := o.Ctx.Err(); err != nil {
				return err
			}
		}
		sp := obs.Start(o.Tracer, name)
		start := time.Now()
		err := f()
		sp.End()
		res.Phases = append(res.Phases, PhaseTiming{Name: name, Duration: time.Since(start)})
		return err
	}
	snap("initial")

	// Phase 1: rewrite rules that do not depend on join orders.
	if err := stage("phase1", func() error {
		return runPhase(g, o, stats, Phase1Rules()...)
	}); err != nil {
		return res, fmt.Errorf("phase 1: %w", err)
	}
	snap("phase1")

	// Plan optimization #1: join orders for EMST, and the no-EMST cost.
	var r1 opt.Result
	if err := stage("plan-opt1", func() error {
		r1 = opt.OptimizeEst(g, o.Est.new())
		return nil
	}); err != nil {
		return res, err
	}
	res.CostBefore = r1.Cost
	res.PlansConsidered += r1.PlansConsidered

	if o.SkipEMST {
		res.Graph = g
		res.CostAfter = r1.Cost
		err := stage("lower", func() error {
			res.Physical = plan.LowerWith(res.Graph, o.Est.new())
			return nil
		})
		return res, err
	}

	// Keep the pre-EMST plan for the cost comparison.
	fallback := g.CloneGraph()

	if o.Ablations.DeclarationOrderSIPS {
		for _, b := range g.Reachable() {
			b.JoinOrder = nil
		}
	}

	// Phase 2: EMST plus the join-order-independent rules (the paper keeps
	// graph-simplifying merges for phase 3).
	if err := stage("phase2", func() error {
		emst := NewEMSTRule()
		emst.NoSupplementary = o.Ablations.NoSupplementary
		phase2 := []rewrite.Rule{emst, rewrite.LocalPushdownRule{}}
		if !o.Ablations.NoDistinctPullup {
			phase2 = append(phase2, rewrite.DistinctPullupRule{})
		}
		return runPhase(g, o, stats, phase2...)
	}); err != nil {
		return res, fmt.Errorf("phase 2: %w", err)
	}
	clearMagicLinks(g)
	snap("phase2")

	// Phase 3: simplify the magic graph; EMST disabled.
	if err := stage("phase3", func() error {
		if o.Ablations.NoPhase3 {
			return nil
		}
		phase3 := Phase3Rules()
		if o.Ablations.NoDistinctPullup {
			phase3 = withoutRule(phase3, rewrite.DistinctPullupRule{}.Name())
		}
		return runPhase(g, o, stats, phase3...)
	}); err != nil {
		return res, fmt.Errorf("phase 3: %w", err)
	}
	snap("phase3")

	// Plan optimization #2 and the cost comparison.
	var r2 opt.Result
	if err := stage("plan-opt2", func() error {
		r2 = opt.OptimizeEst(g, o.Est.new())
		return nil
	}); err != nil {
		return res, err
	}
	res.CostAfter = r2.Cost
	res.PlansConsidered += r2.PlansConsidered
	if o.ForceEMST || r2.Cost <= r1.Cost {
		res.Graph = g
		res.UsedEMST = true
	} else {
		res.Graph = fallback
	}

	// Lowering: the winning graph plus its chosen join orders become the
	// physical operator tree the streaming executor runs.
	if err := stage("lower", func() error {
		res.Physical = plan.LowerWith(res.Graph, o.Est.new())
		return nil
	}); err != nil {
		return res, err
	}
	return res, nil
}

// Phase1Rules are the join-order-independent rewrite rules (§3.3): local
// predicate pushdown (the paper's "local magic" rule), duplicate-
// elimination pull-up, redundant join elimination, the merge rule, plus
// projection pruning and trivial-select cleanup.
func Phase1Rules() []rewrite.Rule {
	return []rewrite.Rule{
		rewrite.MergeRule{},
		rewrite.LocalPushdownRule{},
		rewrite.ProjectionPruneRule{},
		rewrite.DistinctPullupRule{},
		rewrite.RedundantJoinRule{},
		rewrite.TrivialSelectRule{},
	}
}

// Phase2Rules activate EMST alongside the rules it cooperates with; the
// merge rule stays disabled so the magic structure remains visible until
// phase 3 (Figure 3).
func Phase2Rules() []rewrite.Rule {
	return []rewrite.Rule{
		NewEMSTRule(),
		rewrite.LocalPushdownRule{},
		rewrite.DistinctPullupRule{},
	}
}

// Phase3Rules simplify the transformed graph with EMST disabled.
func Phase3Rules() []rewrite.Rule {
	return Phase1Rules()
}

func withoutRule(rules []rewrite.Rule, name string) []rewrite.Rule {
	var out []rewrite.Rule
	for _, r := range rules {
		if r.Name() != name {
			out = append(out, r)
		}
	}
	return out
}

func runPhase(g *qgm.Graph, o Options, stats *rewrite.Stats, rules ...rewrite.Rule) error {
	engine := rewrite.NewEngine(rules...)
	ctx := &rewrite.Context{G: g, Validate: o.Validate, Trace: o.Trace, Stats: stats}
	return engine.Run(ctx)
}

// clearMagicLinks drops the MagicBox/MagicCols bookkeeping once phase 2 is
// complete: the restrictions have been materialized as magic quantifiers
// and predicates; the links would otherwise pin boxes and block phase-3
// merges.
func clearMagicLinks(g *qgm.Graph) {
	for _, b := range g.Reachable() {
		b.MagicBox = nil
		b.MagicCols = nil
	}
	g.GC()
}
