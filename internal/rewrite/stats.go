package rewrite

// RuleStat is one rule's activity during engine runs that share a Stats:
// how often the rule was attempted (Apply called at a box) and how often it
// fired (mutated the graph). The paper's tuning argument — you compare rule
// firings you can measure — needs exactly this split: a rule with many
// attempts and no fires is a dead candidate; one that fires every attempt is
// load-bearing.
type RuleStat struct {
	Rule     string
	Attempts int64
	Fires    int64
}

// Stats tallies per-rule attempt/fire counts. A single Stats may be shared
// across several engine runs (the pipeline threads one through all three
// rewrite phases). It is not safe for concurrent use; each optimization owns
// its own.
type Stats struct {
	order  []string
	byName map[string]*RuleStat
}

// Observe records one Apply outcome.
func (s *Stats) Observe(rule string, fired bool) {
	if s.byName == nil {
		s.byName = map[string]*RuleStat{}
	}
	st, ok := s.byName[rule]
	if !ok {
		st = &RuleStat{Rule: rule}
		s.byName[rule] = st
		s.order = append(s.order, rule)
	}
	st.Attempts++
	if fired {
		st.Fires++
	}
}

// Snapshot returns the per-rule counts in first-observed order.
func (s *Stats) Snapshot() []RuleStat {
	out := make([]RuleStat, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.byName[name])
	}
	return out
}

// Fires returns the fire count of one rule (0 if never observed).
func (s *Stats) Fires(rule string) int64 {
	if st, ok := s.byName[rule]; ok {
		return st.Fires
	}
	return 0
}

// FireMap returns rule → fire count for every rule that fired at least once
// (the engine's metrics sink accumulates these across queries).
func (s *Stats) FireMap() map[string]int64 {
	var out map[string]int64
	for _, name := range s.order {
		if st := s.byName[name]; st.Fires > 0 {
			if out == nil {
				out = map[string]int64{}
			}
			out[name] = st.Fires
		}
	}
	return out
}
