// Package rewrite implements Starburst's rule-based query-rewrite
// optimization (§3.1, [PHH92]): a forward-chaining engine that walks the
// query graph depth-first and applies rewrite rules at each box until a
// fixpoint, plus the traditional rules the paper integrates EMST with —
// view merging, predicate pushdown, projection pruning, duplicate-
// elimination (distinct) pull-up, and redundant-join elimination.
//
// The EMST rule itself lives in internal/core; it plugs into this engine
// like any other rule and reuses this package's predicate-pushdown
// machinery, exactly as the paper prescribes (§4: "The EMST rule uses other
// rewrite rules while transforming a box").
package rewrite

import (
	"fmt"

	"starmagic/internal/qgm"
)

// Context carries per-run state to rules.
type Context struct {
	G *qgm.Graph
	// Trace, when non-nil, receives one line per rule application.
	Trace func(rule string, box *qgm.Box)
	// Stats, when non-nil, tallies per-rule attempt and fire counts. The
	// pipeline shares one Stats across its rewrite phases so Explain and the
	// metrics sink see whole-query rule activity.
	Stats *Stats
	// Validate runs Graph.Check after every change (tests set it).
	Validate bool
	// Traversal, when non-nil, reorders the boxes visited in each pass.
	// The default is the depth-first cursor of [PHH92]; §5 of the paper
	// states EMST reaches the same final transformation under any
	// traversal order, which tests verify through this hook.
	Traversal func([]*qgm.Box) []*qgm.Box
}

// Rule is one rewrite rule. Apply attempts the rule at box b and reports
// whether the graph changed.
type Rule interface {
	Name() string
	Apply(ctx *Context, b *qgm.Box) (bool, error)
}

// Engine applies a rule set to fixpoint.
type Engine struct {
	rules []Rule
	// MaxPasses bounds fixpoint iteration (default 32).
	MaxPasses int
}

// NewEngine returns an engine over the rules, applied in order at each box.
func NewEngine(rules ...Rule) *Engine {
	return &Engine{rules: rules, MaxPasses: 32}
}

// Run walks the graph depth-first, forward-chaining the rules until no rule
// fires for a full pass.
func (e *Engine) Run(ctx *Context) error {
	for pass := 0; ; pass++ {
		if pass >= e.MaxPasses {
			return fmt.Errorf("rewrite: no fixpoint after %d passes", e.MaxPasses)
		}
		changed := false
		// Depth-first cursor over the current graph; rules may restructure
		// it, so collect the box list up front each pass.
		boxes := ctx.G.Reachable()
		if ctx.Traversal != nil {
			boxes = ctx.Traversal(boxes)
		}
		for _, b := range boxes {
			if !boxAlive(ctx.G, b) {
				continue
			}
			for _, r := range e.rules {
				fired, err := r.Apply(ctx, b)
				if ctx.Stats != nil {
					ctx.Stats.Observe(r.Name(), fired && err == nil)
				}
				if err != nil {
					return fmt.Errorf("rewrite: rule %s: %w", r.Name(), err)
				}
				if fired {
					changed = true
					if ctx.Trace != nil {
						ctx.Trace(r.Name(), b)
					}
					if ctx.Validate {
						if err := ctx.G.Check(); err != nil {
							return fmt.Errorf("rewrite: rule %s broke the graph: %w", r.Name(), err)
						}
					}
				}
			}
		}
		ctx.G.GC()
		if !changed {
			return nil
		}
	}
}

// boxAlive reports whether b is still reachable (rules may have detached it
// mid-pass).
func boxAlive(g *qgm.Graph, b *qgm.Box) bool {
	for _, rb := range g.Reachable() {
		if rb == b {
			return true
		}
	}
	return false
}
