package rewrite

import (
	"starmagic/internal/qgm"
)

// MergeRule merges a child select box into its parent select box (view
// merging — "the analog of unfolding in logic", §3.1). This is the rule
// that collapses the extra boxes EMST introduces (phase 3 of Example 4.1:
// the magic boxes SD3/SD4 merge into their consumers).
type MergeRule struct{}

// Name implements Rule.
func (MergeRule) Name() string { return "merge" }

// Apply implements Rule.
func (MergeRule) Apply(ctx *Context, b *qgm.Box) (bool, error) {
	if b.Kind != qgm.KindSelect {
		return false, nil
	}
	for _, q := range b.Quantifiers {
		if q.Type != qgm.ForEach {
			continue
		}
		c := q.Ranges
		if !mergeable(ctx.G, b, q, c) {
			continue
		}
		mergeChild(ctx.G, b, q, c)
		return true, nil
	}
	return false, nil
}

// mergeable decides whether child c (ranged by q from parent b) can merge
// into b.
func mergeable(g *qgm.Graph, b *qgm.Box, q *qgm.Quantifier, c *qgm.Box) bool {
	if c.Kind != qgm.KindSelect {
		return false
	}
	if g.UseCount(c) > 1 {
		return false // common subexpression: stays shared
	}
	if c.MagicBox != nil {
		return false // pending EMST linkage must stay visible
	}
	if c.Recursive {
		return false // the fixpoint root must stay intact
	}
	// Duplicate semantics: merging drops c's duplicate elimination.
	switch c.Distinct {
	case qgm.DistinctPreserve:
		// Bag semantics flow through: always safe.
	case qgm.DistinctPermit:
		// Consumers tolerate duplicates: safe (this is what the distinct
		// pull-up rule enables for magic tables).
	case qgm.DistinctEnforce:
		// Safe only if the child cannot produce duplicates anyway, or the
		// parent eliminates duplicates itself.
		if !DuplicateFree(c) && b.Distinct != qgm.DistinctEnforce {
			return false
		}
	}
	return true
}

// mergeChild performs the merge: c's quantifiers and predicates move into
// b, references to q are replaced by c's output expressions, and q is
// removed.
func mergeChild(g *qgm.Graph, b *qgm.Box, q *qgm.Quantifier, c *qgm.Box) {
	// Move quantifiers.
	for _, cq := range c.Quantifiers {
		cq.Parent = b
		b.Quantifiers = append(b.Quantifiers, cq)
	}
	// Move predicates.
	b.Preds = append(b.Preds, c.Preds...)
	c.Quantifiers = nil
	c.Preds = nil

	// Replace references to q throughout b's subtree (b's own expressions
	// plus correlated references from subquery boxes under b).
	replace := func(e qgm.Expr) qgm.Expr {
		return qgm.RewriteRefs(e, func(cr *qgm.ColRef) qgm.Expr {
			if cr.Q == q {
				return qgm.CopyExpr(c.Output[cr.Ord].Expr, nil)
			}
			return nil
		})
	}
	qgm.RewriteTree(b, replace)

	qgm.RemoveQuantifier(q)
	b.JoinOrder = nil
}

// TrivialSelectRule removes a select box that is a pure identity projection
// over a single quantifier: every consumer is redirected to the child box.
// EMST's phase-3 cleanup uses it to drop pass-through boxes that merging
// cannot reach (e.g. an identity select over a group-by box).
type TrivialSelectRule struct{}

// Name implements Rule.
func (TrivialSelectRule) Name() string { return "trivial-select" }

// Apply implements Rule.
func (TrivialSelectRule) Apply(ctx *Context, b *qgm.Box) (bool, error) {
	if b.Kind != qgm.KindSelect || b == ctx.G.Top || b.Recursive {
		return false, nil
	}
	if len(b.Quantifiers) != 1 || len(b.Preds) != 0 {
		return false, nil
	}
	q := b.Quantifiers[0]
	if q.Type != qgm.ForEach {
		return false, nil
	}
	child := q.Ranges
	if len(b.Output) != len(child.Output) {
		return false, nil
	}
	for i, oc := range b.Output {
		cr, ok := oc.Expr.(*qgm.ColRef)
		if !ok || cr.Q != q || cr.Ord != i {
			return false, nil
		}
	}
	// Duplicate semantics must be compatible.
	if b.Distinct == qgm.DistinctEnforce && !DuplicateFree(child) {
		return false, nil
	}
	// Redirect every user of b to child.
	for _, box := range ctx.G.Reachable() {
		for _, uq := range box.Quantifiers {
			if uq.Ranges == b {
				uq.Ranges = child
			}
		}
		if box.MagicBox == b {
			box.MagicBox = child
		}
	}
	return true, nil
}
