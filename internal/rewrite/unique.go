package rewrite

import (
	"starmagic/internal/qgm"
)

// UniqueSets returns sets of output ordinals of b that are provably unique
// (no two output rows agree on all columns of a set). It is the key-
// inference engine behind the distinct pull-up rule: the paper (Example
// 4.1, phase 2) relies on inferring that "duplicate magic tuples will not
// be generated" to drop DISTINCT from magic tables, which in turn enables
// phase 3's merges.
//
// The analysis is conservative:
//   - a base table contributes its declared unique keys;
//   - a duplicate-eliminating box is unique on all outputs;
//   - a group-by box is unique on its grouping columns;
//   - a select box is unique on the union of projected child keys when a
//     key of EVERY ForEach child is projected as plain column references
//     (the combination identifies the join row);
//   - intersect/except inherit the left input's sets (their outputs are a
//     subset of left rows... for ALL variants only when the left is
//     duplicate-free on the set, which the inherited set guarantees).
func UniqueSets(b *qgm.Box) [][]int {
	return uniqueSetsRec(b, map[*qgm.Box]bool{})
}

func uniqueSetsRec(b *qgm.Box, visiting map[*qgm.Box]bool) [][]int {
	if visiting[b] {
		return nil
	}
	visiting[b] = true
	defer delete(visiting, b)

	var sets [][]int
	allOrds := func() []int {
		s := make([]int, len(b.Output))
		for i := range s {
			s[i] = i
		}
		return s
	}
	if b.Distinct == qgm.DistinctEnforce {
		sets = append(sets, allOrds())
	}

	switch b.Kind {
	case qgm.KindBaseTable:
		if b.Table != nil {
			for _, key := range b.Table.Keys {
				if len(key) > 0 {
					sets = append(sets, append([]int(nil), key...))
				}
			}
		}
	case qgm.KindGroupBy:
		if len(b.GroupBy) > 0 {
			s := make([]int, len(b.GroupBy))
			for i := range s {
				s[i] = i
			}
			sets = append(sets, s)
		} else if len(b.Output) > 0 {
			// Scalar aggregation yields exactly one row.
			sets = append(sets, allOrds())
		}
	case qgm.KindSelect:
		if s := selectUniqueSet(b, visiting); s != nil {
			sets = append(sets, s)
		}
	case qgm.KindIntersect, qgm.KindExcept:
		left := b.Quantifiers[0].Ranges
		sets = append(sets, uniqueSetsRec(left, visiting)...)
	}
	return sets
}

// selectUniqueSet builds a unique set for a select box: for every ForEach
// quantifier a child unique set must be fully projected as plain column
// references. Exists/ForAll quantifiers only filter and Scalar quantifiers
// are functional, so neither breaks uniqueness.
func selectUniqueSet(b *qgm.Box, visiting map[*qgm.Box]bool) []int {
	// Map (quantifier, child ord) -> output ord for plain projections.
	proj := map[*qgm.Quantifier]map[int]int{}
	for outOrd, oc := range b.Output {
		if cr, ok := oc.Expr.(*qgm.ColRef); ok {
			m := proj[cr.Q]
			if m == nil {
				m = map[int]int{}
				proj[cr.Q] = m
			}
			if _, dup := m[cr.Ord]; !dup {
				m[cr.Ord] = outOrd
			}
		}
	}
	var result []int
	for _, q := range b.Quantifiers {
		if q.Type != qgm.ForEach {
			continue
		}
		m := proj[q]
		childSets := uniqueSetsRec(q.Ranges, visiting)
		found := false
		for _, cs := range childSets {
			mapped := make([]int, 0, len(cs))
			ok := true
			for _, childOrd := range cs {
				outOrd, have := m[childOrd]
				if !have {
					ok = false
					break
				}
				mapped = append(mapped, outOrd)
			}
			if ok {
				result = append(result, mapped...)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	if len(b.Output) == 0 {
		return nil
	}
	if result == nil {
		// No ForEach quantifiers: at most one row (constants), unique on
		// every column.
		result = []int{}
		for i := range b.Output {
			result = append(result, i)
		}
	}
	return dedupInts(result)
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	out := in[:0:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DuplicateFree reports whether b provably never emits duplicate rows,
// ignoring its own Distinct enforcement (so the distinct pull-up rule can
// ask "would this box be duplicate-free anyway?").
func DuplicateFree(b *qgm.Box) bool {
	saved := b.Distinct
	if saved == qgm.DistinctEnforce {
		b.Distinct = qgm.DistinctPreserve
	}
	sets := UniqueSets(b)
	b.Distinct = saved
	return len(sets) > 0
}
