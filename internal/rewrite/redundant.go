package rewrite

import (
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// RedundantJoinRule eliminates a self-join that is provably a no-op: two
// ForEach quantifiers over the same box equated on a unique set of that
// box. One quantifier is removed and its references redirected to the
// other. The paper lists redundant join elimination among the phase-1 rules
// (§3.3); after EMST it also collapses duplicate magic quantifiers.
type RedundantJoinRule struct{}

// Name implements Rule.
func (RedundantJoinRule) Name() string { return "redundant-join" }

// Apply implements Rule.
func (RedundantJoinRule) Apply(ctx *Context, b *qgm.Box) (bool, error) {
	if b.Kind != qgm.KindSelect {
		return false, nil
	}
	for i, q1 := range b.Quantifiers {
		if q1.Type != qgm.ForEach {
			continue
		}
		for _, q2 := range b.Quantifiers[i+1:] {
			if q2.Type != qgm.ForEach || q1.Ranges != q2.Ranges {
				continue
			}
			if !equatedOnUniqueSet(b, q1, q2) {
				continue
			}
			eliminate(ctx.G, b, q1, q2)
			return true, nil
		}
	}
	return false, nil
}

// equatedOnUniqueSet reports whether the box's predicates contain
// q1.c = q2.c for every column c of some unique set of the shared child,
// AND the join columns are non-nullable in effect... Conservatively, the
// rows must also be guaranteed equal on ALL columns for the two
// quantifiers to be interchangeable; a unique set equality implies the
// full rows match (same box, same key → same row), except that SQL
// equality never matches NULL keys. Dropping NULL-keyed rows is exactly
// what the self-join does too (a NULL key row joins nothing), so removing
// the join must keep an IS NOT NULL guard on the key columns.
func equatedOnUniqueSet(b *qgm.Box, q1, q2 *qgm.Quantifier) bool {
	equated := map[int]bool{}
	for _, p := range b.Preds {
		cmp, ok := p.(*qgm.Cmp)
		if !ok || cmp.Op != datum.EQ {
			continue
		}
		l, lok := cmp.L.(*qgm.ColRef)
		r, rok := cmp.R.(*qgm.ColRef)
		if !lok || !rok {
			continue
		}
		if l.Ord != r.Ord {
			continue
		}
		if (l.Q == q1 && r.Q == q2) || (l.Q == q2 && r.Q == q1) {
			equated[l.Ord] = true
		}
	}
	if len(equated) == 0 {
		return false
	}
	for _, set := range UniqueSets(q1.Ranges) {
		all := true
		for _, ord := range set {
			if !equated[ord] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// eliminate removes q2, redirecting its references to q1 and replacing the
// key-equality predicates with IS NOT NULL guards (a NULL key never joins,
// so the self-join had filtered those rows out).
func eliminate(g *qgm.Graph, b *qgm.Box, q1, q2 *qgm.Quantifier) {
	var kept []qgm.Expr
	for _, p := range b.Preds {
		if cmp, ok := p.(*qgm.Cmp); ok && cmp.Op == datum.EQ {
			l, lok := cmp.L.(*qgm.ColRef)
			r, rok := cmp.R.(*qgm.ColRef)
			if lok && rok && l.Ord == r.Ord &&
				((l.Q == q1 && r.Q == q2) || (l.Q == q2 && r.Q == q1)) {
				kept = append(kept, &qgm.IsNull{
					X:      &qgm.ColRef{Q: q1, Ord: l.Ord},
					Negate: true,
				})
				continue
			}
		}
		kept = append(kept, p)
	}
	b.Preds = kept

	replace := func(e qgm.Expr) qgm.Expr {
		return qgm.RewriteRefs(e, func(c *qgm.ColRef) qgm.Expr {
			if c.Q == q2 {
				return &qgm.ColRef{Q: q1, Ord: c.Ord}
			}
			return nil
		})
	}
	qgm.RewriteTree(b, replace)
	qgm.RemoveQuantifier(q2)
	b.JoinOrder = nil
}
