package rewrite

import (
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// CorrelateViews transforms the graph into the "Correlated" execution shape
// of Table 1: equality join predicates between a view (or derived table)
// and earlier tables are pushed INTO a private copy of the view as
// correlated predicates, so the view is re-evaluated once per outer row —
// DB2's classic correlated evaluation of nested tables, "a leading
// optimization technique for complex SQL queries" that the paper benchmarks
// EMST against. Combined with the executor's NoSubqueryCache mode this
// reproduces both correlation's wins (very selective outers) and its
// disasters (wide outers re-triggering expensive views).
func CorrelateViews(g *qgm.Graph) {
	for changed := true; changed; {
		changed = false
		for _, b := range g.Reachable() {
			if b.Kind != qgm.KindSelect {
				continue
			}
			if correlateBox(g, b) {
				changed = true
			}
		}
	}
	g.GC()
}

func correlateBox(g *qgm.Graph, b *qgm.Box) bool {
	// depends[q] holds the quantifiers whose values q's (correlated) child
	// needs; sinking a predicate adds edges and must keep the relation
	// acyclic so the plan optimizer can order sources before their
	// dependents.
	depends := map[*qgm.Quantifier]map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		for _, other := range b.Quantifiers {
			if q != other && boxRefsQuant(q.Ranges, other) {
				addDep(depends, q, other)
			}
		}
	}
	any := false
	for {
		moved := false
		for pi, pred := range b.Preds {
			target, sources, ok := correlateTarget(g, b, pred)
			if !ok || dependencyCycle(depends, target, sources) {
				continue
			}
			// Privatize the whole view blob before mutating it: the blob is
			// re-computed per outer row, so sharing is gone anyway.
			if g.UseCount(target.Ranges) > 1 {
				cp, _ := g.CopyTree(target.Ranges)
				target.Ranges = cp
			} else if !treePrivate(g, target.Ranges) {
				cp, _ := g.CopyTree(target.Ranges)
				target.Ranges = cp
			}
			if !CanAbsorbPredicate(g, target, pred) {
				continue
			}
			b.Preds = append(b.Preds[:pi], b.Preds[pi+1:]...)
			PushPredicate(g, target, pred)
			for _, src := range sources {
				addDep(depends, target, src)
			}
			// The view is now correlated: clear any stale join order so the
			// plan optimizer re-derives one respecting the dependency.
			b.JoinOrder = nil
			moved = true
			any = true
			break
		}
		if !moved {
			if any {
				setTopologicalOrder(b, depends)
			}
			return any
		}
	}
}

// setTopologicalOrder stores a join order with every correlated view after
// the quantifiers it depends on, so the graph is executable even before the
// plan optimizer re-runs (which will keep the constraint).
func setTopologicalOrder(b *qgm.Box, depends map[*qgm.Quantifier]map[*qgm.Quantifier]bool) {
	idx := map[*qgm.Quantifier]int{}
	for i, q := range b.Quantifiers {
		idx[q] = i
	}
	placed := map[*qgm.Quantifier]bool{}
	var order []int
	for len(order) < len(b.Quantifiers) {
		progressed := false
		for _, q := range b.Quantifiers {
			if placed[q] {
				continue
			}
			ready := true
			for dep := range depends[q] {
				if dep.Parent == b && !placed[dep] {
					ready = false
					break
				}
			}
			if ready {
				placed[q] = true
				order = append(order, idx[q])
				progressed = true
			}
		}
		if !progressed {
			// Cycle (should be prevented by dependencyCycle): fall back to
			// declaration order.
			b.JoinOrder = nil
			return
		}
	}
	b.JoinOrder = order
}

// treePrivate reports whether every non-base box reachable from b is used
// only within that tree (safe to mutate).
func treePrivate(g *qgm.Graph, b *qgm.Box) bool {
	seen := map[*qgm.Box]bool{}
	var walk func(box *qgm.Box) bool
	walk = func(box *qgm.Box) bool {
		if box.Kind == qgm.KindBaseTable || seen[box] {
			return true
		}
		seen[box] = true
		if box != b && g.UseCount(box) > 1 {
			return false
		}
		for _, q := range box.Quantifiers {
			if !walk(q.Ranges) {
				return false
			}
		}
		return true
	}
	return walk(b)
}

// correlateTarget picks the quantifier into which pred should sink for
// correlated execution: an equality comparison with one side referencing
// exactly one ForEach quantifier over a non-base box, the other side
// referencing only sibling ForEach quantifiers (the sources the correlated
// view will depend on).
func correlateTarget(g *qgm.Graph, b *qgm.Box, pred qgm.Expr) (*qgm.Quantifier, []*qgm.Quantifier, bool) {
	cmp, ok := pred.(*qgm.Cmp)
	if !ok || cmp.Op != datum.EQ {
		return nil, nil, false
	}
	local := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		if q.Type == qgm.ForEach {
			local[q] = true
		}
	}
	try := func(mine, other qgm.Expr) (*qgm.Quantifier, []*qgm.Quantifier, bool) {
		var target *qgm.Quantifier
		single := true
		qgm.VisitRefs(mine, func(c *qgm.ColRef) {
			if target == nil {
				target = c.Q
			} else if target != c.Q {
				single = false
			}
		})
		if target == nil || !single {
			return nil, nil, false
		}
		if target.Type != qgm.ForEach || target.Parent != b {
			return nil, nil, false
		}
		if target.Ranges.Kind == qgm.KindBaseTable || target.Ranges.IsMagic() {
			return nil, nil, false
		}
		if target.Ranges.Recursive || qgm.InCycle(target.Ranges) {
			return nil, nil, false // recursive components evaluate as units
		}
		var sources []*qgm.Quantifier
		ok := true
		qgm.VisitRefs(other, func(c *qgm.ColRef) {
			if c.Q == target || !local[c.Q] {
				ok = false
				return
			}
			sources = append(sources, c.Q)
		})
		if !ok || len(sources) == 0 {
			return nil, nil, false
		}
		return target, sources, true
	}
	if t, srcs, ok := try(cmp.L, cmp.R); ok {
		return t, srcs, true
	}
	if t, srcs, ok := try(cmp.R, cmp.L); ok {
		return t, srcs, true
	}
	return nil, nil, false
}

func addDep(depends map[*qgm.Quantifier]map[*qgm.Quantifier]bool, from, to *qgm.Quantifier) {
	m := depends[from]
	if m == nil {
		m = map[*qgm.Quantifier]bool{}
		depends[from] = m
	}
	m[to] = true
}

// dependencyCycle reports whether making target depend on sources would
// close a cycle (some source transitively depends on target already).
func dependencyCycle(depends map[*qgm.Quantifier]map[*qgm.Quantifier]bool, target *qgm.Quantifier, sources []*qgm.Quantifier) bool {
	var reach func(from, to *qgm.Quantifier, seen map[*qgm.Quantifier]bool) bool
	reach = func(from, to *qgm.Quantifier, seen map[*qgm.Quantifier]bool) bool {
		if from == to {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for next := range depends[from] {
			if reach(next, to, seen) {
				return true
			}
		}
		return false
	}
	for _, src := range sources {
		if reach(src, target, map[*qgm.Quantifier]bool{}) {
			return true
		}
	}
	return false
}

// boxRefsQuant reports whether sub's subtree references quantifier q.
func boxRefsQuant(sub *qgm.Box, q *qgm.Quantifier) bool {
	found := false
	seen := map[*qgm.Box]bool{}
	var walk func(box *qgm.Box)
	walk = func(box *qgm.Box) {
		if box == nil || seen[box] || found {
			return
		}
		seen[box] = true
		qgm.VisitBoxExprs(box, func(e qgm.Expr) {
			qgm.VisitRefs(e, func(c *qgm.ColRef) {
				if c.Q == q {
					found = true
				}
			})
		})
		for _, qq := range box.Quantifiers {
			walk(qq.Ranges)
		}
		walk(box.MagicBox)
	}
	walk(sub)
	return found
}
