package rewrite

import (
	"starmagic/internal/qgm"
)

// Predicate pushdown machinery ([PHH92] §4.3 of the paper). A separate
// pushdown behavior exists per box kind, deliberately specified
// independently of EMST so extensions can add kinds (paper §5): the EMST
// rule, the local-pushdown rule, and the correlate transform all route
// through CanAbsorbPredicate/PushPredicate.

// absorber describes how a box kind absorbs a predicate expressed over its
// output columns. Extensions register their own.
type absorber struct {
	// mapOutput returns the internal expression computing output ord, and
	// whether the predicate may move past the box through that column.
	// For a select box this is the output expr; for a group-by box only
	// grouping columns are mappable (predicates on aggregated columns stay
	// above; cf. the paper's pushdown through group-by).
	mapOutput func(b *qgm.Box, ord int) (qgm.Expr, bool)
	// terminal is true when the box itself stores the predicate (select);
	// false when the predicate must continue into the box's children
	// (group-by, set operations).
	terminal bool
}

var absorbers = map[qgm.BoxKind]*absorber{
	qgm.KindSelect: {
		terminal: true,
		mapOutput: func(b *qgm.Box, ord int) (qgm.Expr, bool) {
			return b.Output[ord].Expr, true
		},
	},
	qgm.KindGroupBy: {
		terminal: false,
		mapOutput: func(b *qgm.Box, ord int) (qgm.Expr, bool) {
			if ord < len(b.GroupBy) {
				return b.GroupBy[ord], true
			}
			return nil, false // aggregated column: not pushable
		},
	},
}

// RegisterAbsorber installs pushdown behavior for an extension box kind
// that maps outputs like a select box (terminal) does.
func RegisterAbsorber(kind qgm.BoxKind, terminal bool, mapOutput func(b *qgm.Box, ord int) (qgm.Expr, bool)) {
	absorbers[kind] = &absorber{terminal: terminal, mapOutput: mapOutput}
}

// CanAbsorbPredicate reports whether the box q ranges over can absorb a
// predicate whose references to q use the given output ordinals. Interior
// boxes on the path must be single-use (pushing into a shared box would
// change other consumers).
func CanAbsorbPredicate(g *qgm.Graph, q *qgm.Quantifier, pred qgm.Expr) bool {
	ords := refOrds(pred, q)
	return canAbsorb(g, q.Ranges, ords, true)
}

func refOrds(pred qgm.Expr, q *qgm.Quantifier) []int {
	seen := map[int]bool{}
	var ords []int
	qgm.VisitRefs(pred, func(c *qgm.ColRef) {
		if c.Q == q && !seen[c.Ord] {
			seen[c.Ord] = true
			ords = append(ords, c.Ord)
		}
	})
	return ords
}

// canAbsorb checks absorbability of a predicate over the given output
// ordinals of box b. first marks the top-level call: the caller vouches for
// b's use count there (EMST pushes into private adorned copies).
func canAbsorb(g *qgm.Graph, b *qgm.Box, ords []int, first bool) bool {
	if !first && g.UseCount(b) > 1 {
		return false
	}
	switch b.Kind {
	case qgm.KindUnion:
		for _, bq := range b.Quantifiers {
			if !canAbsorb(g, bq.Ranges, ords, false) {
				return false
			}
		}
		return true
	case qgm.KindIntersect, qgm.KindExcept:
		for _, bq := range b.Quantifiers {
			if !canAbsorb(g, bq.Ranges, ords, false) {
				return false
			}
		}
		return true
	}
	ab, ok := absorbers[b.Kind]
	if !ok {
		return false
	}
	if ab.terminal {
		for _, ord := range ords {
			if _, mappable := ab.mapOutput(b, ord); !mappable {
				return false
			}
		}
		return true
	}
	// Non-terminal (group-by): map ordinals and continue into the single
	// input.
	if len(b.Quantifiers) != 1 {
		return false
	}
	inner := make([]int, 0, len(ords))
	innerSeen := map[int]bool{}
	for _, ord := range ords {
		e, mappable := ab.mapOutput(b, ord)
		if !mappable {
			return false
		}
		ok := true
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			if c.Q != b.Quantifiers[0] {
				ok = false
				return
			}
			if !innerSeen[c.Ord] {
				innerSeen[c.Ord] = true
				inner = append(inner, c.Ord)
			}
		})
		if !ok {
			return false
		}
	}
	return canAbsorb(g, b.Quantifiers[0].Ranges, inner, false)
}

// PushPredicate moves pred — a predicate in q's parent box referencing q
// (references to other quantifiers become correlated references) — into
// the box q ranges over. The caller must have removed pred from the parent
// and verified CanAbsorbPredicate. Group-by boxes are traversed (the
// predicate lands in their input); set operations replicate the predicate
// into every branch.
func PushPredicate(g *qgm.Graph, q *qgm.Quantifier, pred qgm.Expr) {
	pushInto(g, q.Ranges, q, pred)
}

// pushInto rewrites pred's references to viaQ through box b's output
// mapping and stores or forwards it.
func pushInto(g *qgm.Graph, b *qgm.Box, viaQ *qgm.Quantifier, pred qgm.Expr) {
	switch b.Kind {
	case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
		for _, bq := range b.Quantifiers {
			// Positional remap onto the branch quantifier, then recurse.
			branchPred := qgm.RewriteRefs(pred, func(c *qgm.ColRef) qgm.Expr {
				if c.Q == viaQ {
					return &qgm.ColRef{Q: bq, Ord: c.Ord}
				}
				return nil
			})
			pushInto(g, bq.Ranges, bq, branchPred)
		}
		return
	}
	ab := absorbers[b.Kind]
	if ab.terminal {
		mapped := qgm.RewriteRefs(pred, func(c *qgm.ColRef) qgm.Expr {
			if c.Q == viaQ {
				e, _ := ab.mapOutput(b, c.Ord)
				return qgm.CopyExpr(e, nil)
			}
			return nil
		})
		b.Preds = append(b.Preds, mapped)
		return
	}
	// Group-by: map through grouping expressions onto the input quantifier
	// and continue.
	inQ := b.Quantifiers[0]
	mapped := qgm.RewriteRefs(pred, func(c *qgm.ColRef) qgm.Expr {
		if c.Q == viaQ {
			e, _ := ab.mapOutput(b, c.Ord)
			return qgm.CopyExpr(e, nil)
		}
		return nil
	})
	pushInto(g, inQ.Ranges, inQ, mapped)
}

// LocalPushdownRule pushes predicates that reference a single ForEach
// quantifier (plus constants) down into the referenced box. This is the
// paper's "local predicate pushdown ... implemented through a local magic
// rule" applied during phase 1 (§3.3): it does not need join orders.
type LocalPushdownRule struct{}

// Name implements Rule.
func (LocalPushdownRule) Name() string { return "local-pushdown" }

// Apply implements Rule.
func (LocalPushdownRule) Apply(ctx *Context, b *qgm.Box) (bool, error) {
	if b.Kind != qgm.KindSelect {
		return false, nil
	}
	changed := false
	var kept []qgm.Expr
	for _, pred := range b.Preds {
		q := solePredQuantifier(b, pred)
		if q == nil || q.Type != qgm.ForEach ||
			ctx.G.UseCount(q.Ranges) > 1 ||
			q.Ranges.Kind == qgm.KindBaseTable ||
			q.Ranges.IsMagic() ||
			!CanAbsorbPredicate(ctx.G, q, pred) {
			kept = append(kept, pred)
			continue
		}
		PushPredicate(ctx.G, q, pred)
		changed = true
	}
	if changed {
		b.Preds = kept
		// Join orders may no longer be valid.
		b.JoinOrder = nil
	}
	return changed, nil
}

// solePredQuantifier returns the single local quantifier referenced by
// pred, or nil when pred references zero or several, or references
// quantifiers outside box b (correlation).
func solePredQuantifier(b *qgm.Box, pred qgm.Expr) *qgm.Quantifier {
	local := map[*qgm.Quantifier]bool{}
	for _, q := range b.Quantifiers {
		local[q] = true
	}
	var only *qgm.Quantifier
	multiple := false
	foreign := false
	qgm.VisitRefs(pred, func(c *qgm.ColRef) {
		if !local[c.Q] {
			foreign = true
			return
		}
		if only == nil {
			only = c.Q
		} else if only != c.Q {
			multiple = true
		}
	})
	if multiple || foreign {
		return nil
	}
	return only
}
