package rewrite

import (
	"sort"
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/qgm"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

// testDB builds the paper's schema plus data (shared shape with the exec
// package tests).
func testDB(t *testing.T) (*catalog.Catalog, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	dept := &catalog.Table{
		Name: "department",
		Columns: []catalog.Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}},
	}
	emp := &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "empname", Type: datum.TString},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {2}},
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	for _, v := range []*catalog.View{
		{
			Name:    "mgrSal",
			Columns: []string{"empno", "empname", "workdept", "salary"},
			SQL: "SELECT e.empno, e.empname, e.workdept, e.salary " +
				"FROM employee e, department d WHERE e.empno = d.mgrno",
		},
		{
			Name:    "avgMgrSal",
			Columns: []string{"workdept", "avgsalary"},
			SQL:     "SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept",
		},
		{
			Name: "deptnos",
			SQL:  "SELECT DISTINCT deptno FROM department",
		},
	} {
		if err := cat.AddView(v); err != nil {
			t.Fatal(err)
		}
	}

	store := storage.NewStore()
	dr := store.Create(dept)
	for _, row := range []datum.Row{
		{datum.Int(1), datum.String("Planning"), datum.Int(101)},
		{datum.Int(2), datum.String("Dev"), datum.Int(201)},
		{datum.Int(3), datum.String("Sales"), datum.Null()},
	} {
		if err := dr.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	er := store.Create(emp)
	for _, row := range []datum.Row{
		{datum.Int(101), datum.String("alice"), datum.Int(1), datum.Float(1000)},
		{datum.Int(102), datum.String("bob"), datum.Int(1), datum.Float(500)},
		{datum.Int(201), datum.String("carol"), datum.Int(2), datum.Float(800)},
		{datum.Int(202), datum.String("dan"), datum.Int(2), datum.Float(600)},
		{datum.Int(203), datum.String("eve"), datum.Int(2), datum.Float(700)},
		{datum.Int(301), datum.String("frank"), datum.Int(3), datum.Float(400)},
		{datum.Int(302), datum.String("grace"), datum.Null(), datum.Float(300)},
	} {
		if err := er.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return cat, store
}

func buildGraph(t *testing.T, cat *catalog.Catalog, query string) *qgm.Graph {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func evalRows(t *testing.T, store *storage.Store, g *qgm.Graph) []string {
	t.Helper()
	rows, err := exec.New(store).EvalGraph(g)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.Format()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func phase1Engine() *Engine {
	return NewEngine(
		MergeRule{},
		LocalPushdownRule{},
		ProjectionPruneRule{},
		DistinctPullupRule{},
		RedundantJoinRule{},
		TrivialSelectRule{},
	)
}

func runEngine(t *testing.T, g *qgm.Graph, e *Engine) {
	t.Helper()
	ctx := &Context{G: g, Validate: true}
	if err := e.Run(ctx); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("post-rewrite check: %v", err)
	}
}

// assertEquivalent verifies a transform preserves query results.
func assertEquivalent(t *testing.T, cat *catalog.Catalog, store *storage.Store, query string, transform func(*qgm.Graph)) {
	t.Helper()
	ref := buildGraph(t, cat, query)
	want := evalRows(t, store, ref)
	g := buildGraph(t, cat, query)
	transform(g)
	if err := g.Check(); err != nil {
		t.Fatalf("%q: transformed graph invalid: %v\n%s", query, err, g.Dump())
	}
	got := evalRows(t, store, g)
	if len(got) != len(want) {
		t.Fatalf("%q: got %v want %v\ngraph:\n%s", query, got, want, g.Dump())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%q row %d: got %q want %q", query, i, got[i], want[i])
		}
	}
}

var equivalenceCorpus = []string{
	"SELECT d.deptname, s.workdept, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept AND d.deptname = 'Planning'",
	"SELECT empname, salary FROM mgrSal WHERE salary > 500",
	"SELECT workdept, avgsalary FROM avgMgrSal WHERE workdept = 2",
	"SELECT e.empname FROM employee e, deptnos dn WHERE e.workdept = dn.deptno",
	"SELECT x.workdept FROM (SELECT workdept FROM employee WHERE salary > 400) AS x WHERE x.workdept < 3",
	"SELECT DISTINCT m.workdept FROM mgrSal m, employee e WHERE m.workdept = e.workdept",
	"SELECT d.deptname FROM department d WHERE EXISTS (SELECT 1 FROM employee e WHERE e.workdept = d.deptno AND e.salary > 600)",
	"SELECT e.empname FROM employee e WHERE e.workdept NOT IN (SELECT deptno FROM department WHERE deptname = 'Dev')",
	"SELECT a.workdept, a.avgsalary FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept AND a.avgsalary > 500",
	"SELECT workdept, COUNT(*) FROM employee GROUP BY workdept HAVING COUNT(*) > 1",
	"SELECT deptno FROM department UNION SELECT workdept FROM employee WHERE workdept IS NOT NULL",
	"SELECT e1.empname FROM employee e1, employee e2 WHERE e1.empno = e2.empno",
	"SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)",
}

func TestPhase1RulesPreserveSemantics(t *testing.T) {
	cat, store := testDB(t)
	for _, query := range equivalenceCorpus {
		assertEquivalent(t, cat, store, query, func(g *qgm.Graph) {
			runEngine(t, g, phase1Engine())
		})
	}
}

func TestCorrelatePreservesSemantics(t *testing.T) {
	cat, store := testDB(t)
	for _, query := range equivalenceCorpus {
		assertEquivalent(t, cat, store, query, CorrelateViews)
	}
}

func TestMergeCollapsesView(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT empname FROM mgrSal WHERE salary > 500")
	before := g.Stats().Boxes
	runEngine(t, g, NewEngine(MergeRule{}))
	after := g.Stats().Boxes
	if after >= before {
		t.Errorf("merge did not reduce boxes: %d -> %d\n%s", before, after, g.Dump())
	}
	// mgrSal's select should be merged into the top: one select box over
	// two base tables.
	if got := g.Stats().SelectBoxes; got != 1 {
		t.Errorf("select boxes = %d; want 1\n%s", got, g.Dump())
	}
}

func TestMergeQueryDPhase1Shape(t *testing.T) {
	// The paper's Example 3.1: phase 1 merges AVGMGRSAL's having-select into
	// QUERY and MGRSAL into T1, leaving QUERY -> GROUPBY -> T1.
	cat, _ := testDB(t)
	g := buildGraph(t, cat, `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`)
	runEngine(t, g, phase1Engine())
	s := g.Stats()
	// Expect: QUERY select, group-by box, T1 select, employee, department.
	if s.GroupBys != 1 || s.SelectBoxes != 2 {
		t.Errorf("phase1 shape: %s\n%s", s, g.Dump())
	}
}

func TestMergeRespectsSharedViews(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT a.workdept FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept")
	runEngine(t, g, NewEngine(MergeRule{}))
	// The shared mgrSal blob under both avgMgrSal triplets must stay one
	// box: merging never duplicates a common subexpression.
	var gbBoxes int
	for _, b := range g.Reachable() {
		if b.Kind == qgm.KindGroupBy {
			gbBoxes++
		}
	}
	if gbBoxes != 1 {
		t.Errorf("shared view blob duplicated: %d group-by boxes\n%s", gbBoxes, g.Dump())
	}
}

func TestMergeKeepsEnforcedDistinct(t *testing.T) {
	cat, _ := testDB(t)
	// deptnos is SELECT DISTINCT deptno: duplicate-free (deptno is a key),
	// so distinct pull-up will allow the merge. Force merge-only first.
	g := buildGraph(t, cat, "SELECT e.empname FROM employee e, deptnos dn WHERE e.workdept = dn.deptno")
	dn := g.BoxesByName("DEPTNOS")
	if len(dn) != 1 || dn[0].Distinct != qgm.DistinctEnforce {
		t.Fatalf("setup: %v", dn)
	}
	// deptno is the department key, so DuplicateFree holds and the merge is
	// allowed even with enforcement.
	runEngine(t, g, NewEngine(MergeRule{}))
	if got := g.Stats().SelectBoxes; got != 1 {
		t.Errorf("expected merge of duplicate-free DISTINCT view, got %d select boxes\n%s", got, g.Dump())
	}
}

func TestMergeBlockedWhenDuplicatesMatter(t *testing.T) {
	cat, _ := testDB(t)
	if err := cat.AddView(&catalog.View{
		Name: "depts_used",
		SQL:  "SELECT DISTINCT workdept FROM employee",
	}); err != nil {
		t.Fatal(err)
	}
	// workdept is not a key: the DISTINCT is load-bearing; merging into a
	// duplicate-preserving parent would change multiplicities.
	g := buildGraph(t, cat, "SELECT du.workdept FROM depts_used du, employee e WHERE du.workdept = e.workdept")
	runEngine(t, g, NewEngine(MergeRule{}))
	if got := g.Stats().SelectBoxes; got != 2 {
		t.Errorf("DISTINCT view must not merge: %d select boxes\n%s", got, g.Dump())
	}
}

func TestLocalPushdown(t *testing.T) {
	cat, _ := testDB(t)
	// Predicate on the view output must sink into the view's select box
	// (through the derived table).
	g := buildGraph(t, cat, "SELECT x.empname FROM (SELECT empname, salary FROM employee) AS x WHERE x.salary > 500")
	runEngine(t, g, NewEngine(LocalPushdownRule{}))
	if len(g.Top.Preds) != 0 {
		t.Errorf("predicate not pushed out of top box:\n%s", g.Dump())
	}
	inner := g.Top.Quantifiers[0].Ranges
	if len(inner.Preds) != 1 {
		t.Errorf("predicate not in inner box:\n%s", g.Dump())
	}
}

func TestLocalPushdownThroughGroupBy(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT s.workdept FROM avgMgrSal s WHERE s.workdept = 2")
	runEngine(t, g, NewEngine(LocalPushdownRule{}))
	// The predicate must traverse HV -> GB -> T1 and land on T1.
	if len(g.Top.Preds) != 0 {
		t.Errorf("predicate stayed in top:\n%s", g.Dump())
	}
	found := false
	for _, b := range g.Reachable() {
		if b.Kind == qgm.KindSelect {
			for _, p := range b.Preds {
				if strings.Contains(p.String(), "= 2") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("pushed predicate lost:\n%s", g.Dump())
	}
}

func TestPushdownBlockedOnAggregateColumn(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT s.workdept FROM avgMgrSal s WHERE s.avgsalary > 600")
	runEngine(t, g, NewEngine(LocalPushdownRule{}))
	// avgsalary is an aggregate output: the predicate cannot cross the
	// group-by box. The top box here is the HV select of the view
	// expansion... the predicate must remain above the group-by.
	gb := g.BoxesByName("")
	_ = gb
	var groupBox *qgm.Box
	for _, b := range g.Reachable() {
		if b.Kind == qgm.KindGroupBy {
			groupBox = b
		}
	}
	if groupBox == nil {
		t.Fatal("no group-by box")
	}
	t1 := groupBox.Quantifiers[0].Ranges
	for _, p := range t1.Preds {
		if strings.Contains(p.String(), "600") {
			t.Errorf("aggregate predicate illegally pushed below group-by:\n%s", g.Dump())
		}
	}
}

func TestDistinctPullup(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT dn.deptno FROM deptnos dn")
	dn := g.BoxesByName("DEPTNOS")[0]
	if dn.Distinct != qgm.DistinctEnforce {
		t.Fatal("setup: expected enforced distinct")
	}
	runEngine(t, g, NewEngine(DistinctPullupRule{}))
	// deptno is department's key: provably duplicate-free.
	if dn.Distinct != qgm.DistinctPermit {
		t.Errorf("distinct not pulled up: %v", dn.Distinct)
	}
}

func TestDistinctPullupBlockedOnNonKey(t *testing.T) {
	cat, _ := testDB(t)
	if err := cat.AddView(&catalog.View{
		Name: "wd",
		SQL:  "SELECT DISTINCT workdept FROM employee",
	}); err != nil {
		t.Fatal(err)
	}
	g := buildGraph(t, cat, "SELECT workdept FROM wd")
	wd := g.BoxesByName("WD")[0]
	runEngine(t, g, NewEngine(DistinctPullupRule{}))
	if wd.Distinct != qgm.DistinctEnforce {
		t.Errorf("distinct wrongly pulled up on non-key column")
	}
}

func TestUniqueSets(t *testing.T) {
	cat, _ := testDB(t)
	// Join projecting both keys: unique on the pair.
	g := buildGraph(t, cat, "SELECT e.empno, d.deptno, e.empname FROM employee e, department d WHERE e.workdept = d.deptno")
	sets := UniqueSets(g.Top)
	if len(sets) == 0 {
		t.Fatalf("no unique sets for key-projecting join:\n%s", g.Dump())
	}
	// Not projecting employee's key: no uniqueness.
	g = buildGraph(t, cat, "SELECT e.empname, d.deptno FROM employee e, department d WHERE e.workdept = d.deptno")
	if sets := UniqueSets(g.Top); len(sets) != 0 {
		t.Errorf("unexpected unique sets %v", sets)
	}
	// Group-by: unique on grouping columns.
	g = buildGraph(t, cat, "SELECT workdept, COUNT(*) FROM employee GROUP BY workdept")
	gb := g.Top.Quantifiers[0].Ranges
	sets = UniqueSets(gb)
	if len(sets) != 1 || len(sets[0]) != 1 || sets[0][0] != 0 {
		t.Errorf("group-by unique sets = %v", sets)
	}
}

func TestProjectionPrune(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT x.empno FROM (SELECT empno, empname, workdept, salary FROM employee) AS x")
	inner := g.Top.Quantifiers[0].Ranges
	if len(inner.Output) != 4 {
		t.Fatal("setup")
	}
	runEngine(t, g, NewEngine(ProjectionPruneRule{}))
	if len(inner.Output) != 1 {
		t.Errorf("outputs = %d; want 1\n%s", len(inner.Output), g.Dump())
	}
}

func TestProjectionPrunePreservesGroupingColumns(t *testing.T) {
	cat, store := testDB(t)
	assertEquivalent(t, cat, store,
		"SELECT x.c FROM (SELECT workdept, COUNT(*) AS c, SUM(salary) AS s FROM employee GROUP BY workdept) AS x",
		func(g *qgm.Graph) { runEngine(t, g, phase1Engine()) })
}

func TestRedundantJoinElimination(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT e1.empname FROM employee e1, employee e2 WHERE e1.empno = e2.empno")
	runEngine(t, g, NewEngine(RedundantJoinRule{}))
	if len(g.Top.Quantifiers) != 1 {
		t.Errorf("self-join not eliminated:\n%s", g.Dump())
	}
	// An IS NOT NULL guard must replace the equality.
	found := false
	for _, p := range g.Top.Preds {
		if isn, ok := p.(*qgm.IsNull); ok && isn.Negate {
			found = true
		}
	}
	if !found {
		t.Errorf("missing IS NOT NULL guard:\n%s", g.Dump())
	}
}

func TestRedundantJoinNotEliminatedOnNonKey(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT e1.empname FROM employee e1, employee e2 WHERE e1.workdept = e2.workdept")
	runEngine(t, g, NewEngine(RedundantJoinRule{}))
	if len(g.Top.Quantifiers) != 2 {
		t.Errorf("non-key self-join wrongly eliminated:\n%s", g.Dump())
	}
}

func TestCorrelateViewsMakesViewCorrelated(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`)
	CorrelateViews(g)
	if err := g.Check(); err != nil {
		t.Fatalf("check: %v\n%s", err, g.Dump())
	}
	// The join predicate must be gone from the top box.
	for _, p := range g.Top.Preds {
		refs := qgm.RefsQuantifiers(p)
		if len(refs) > 1 {
			t.Errorf("join predicate still in top box: %s", p)
		}
	}
}

func TestTrivialSelectElimination(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, "SELECT x.deptno, x.deptname, x.mgrno FROM (SELECT deptno, deptname, mgrno FROM department) AS x WHERE x.deptno = 1")
	// First merge handles this case; use TrivialSelect alone on a crafted
	// graph instead: build identity select over group-by.
	g2 := buildGraph(t, cat, "SELECT s.workdept, s.avgsalary FROM avgMgrSal s")
	before := g2.Stats().Boxes
	runEngine(t, g2, NewEngine(TrivialSelectRule{}, MergeRule{}))
	if g2.Stats().Boxes >= before {
		t.Errorf("trivial selects not removed: %d -> %d\n%s", before, g2.Stats().Boxes, g2.Dump())
	}
	_ = g
}

func TestEngineReachesFixpoint(t *testing.T) {
	cat, _ := testDB(t)
	g := buildGraph(t, cat, equivalenceCorpus[0])
	e := phase1Engine()
	ctx := &Context{G: g, Validate: true}
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Running again must be a no-op (fixpoint).
	fired := false
	ctx.Trace = func(string, *qgm.Box) { fired = true }
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("engine not at fixpoint after Run")
	}
}

func TestCorrelatedExecutionCounters(t *testing.T) {
	cat, store := testDB(t)
	query := "SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept"
	// Materialized: employee scanned once for the view.
	g1 := buildGraph(t, cat, query)
	ev1 := exec.New(store)
	if _, err := ev1.EvalGraph(g1); err != nil {
		t.Fatal(err)
	}
	// Correlated: view re-evaluated per department row.
	g2 := buildGraph(t, cat, query)
	CorrelateViews(g2)
	ev2 := exec.New(store)
	ev2.NoSubqueryCache = true
	if _, err := ev2.EvalGraph(g2); err != nil {
		t.Fatal(err)
	}
	if ev2.Counters.BaseRows <= ev1.Counters.BaseRows {
		t.Errorf("correlated execution should scan more: %d vs %d",
			ev2.Counters.BaseRows, ev1.Counters.BaseRows)
	}
}
