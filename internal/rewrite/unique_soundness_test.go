package rewrite

import (
	"testing"

	"starmagic/internal/exec"
	"starmagic/internal/qgm"
)

// TestDuplicateFreeSoundness checks the key-inference engine against
// reality: for every box of every corpus query that UniqueSets claims a
// unique set for, materialize the box and verify no two rows agree on that
// set. The distinct pull-up rule (and therefore the phase-3 merges of magic
// tables) is only sound if this inference never lies.
func TestDuplicateFreeSoundness(t *testing.T) {
	cat, store := testDB(t)
	queries := append([]string{}, equivalenceCorpus...)
	queries = append(queries,
		"SELECT DISTINCT e.workdept, e.salary FROM employee e",
		"SELECT e.empno, e.empname FROM employee e, department d WHERE e.workdept = d.deptno",
		"SELECT workdept, COUNT(*) FROM employee GROUP BY workdept",
		"SELECT AVG(salary) FROM employee",
		"SELECT d.deptno, e.empno FROM department d, employee e",
	)
	for _, query := range queries {
		g := buildGraph(t, cat, query)
		// Also exercise the rewritten forms.
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				runEngine(t, g, phase1Engine())
			}
			for _, b := range g.Reachable() {
				sets := UniqueSets(b)
				if len(sets) == 0 {
					continue
				}
				// Skip correlated boxes: they cannot be materialized
				// standalone.
				ev := exec.New(store)
				rows, err := ev.EvalBox(b, exec.Env{})
				if err != nil {
					continue
				}
				for _, set := range sets {
					seen := map[string]bool{}
					for _, row := range rows {
						key := row.KeyOf(set)
						if seen[key] {
							t.Fatalf("query %q pass %d: box %s claimed unique on %v but produced duplicates\n%s",
								query, pass, b.Name, set, g.Dump())
						}
						seen[key] = true
					}
				}
			}
		}
	}
}

// TestDuplicateFreeSoundnessWithMagic runs the same soundness check on
// graphs after the full EMST pipeline (magic boxes included), via the core
// package's pipeline exercised from the engine-level corpus in other tests;
// here we at least verify the phase-1 + pushdown + distinct-pullup
// combination leaves no false Permit.
func TestDistinctPermitImpliesDuplicateFree(t *testing.T) {
	cat, store := testDB(t)
	for _, query := range equivalenceCorpus {
		g := buildGraph(t, cat, query)
		runEngine(t, g, phase1Engine())
		for _, b := range g.Reachable() {
			if b.Distinct != qgm.DistinctPermit {
				continue
			}
			ev := exec.New(store)
			rows, err := ev.EvalBox(b, exec.Env{})
			if err != nil {
				continue
			}
			seen := map[string]bool{}
			for _, row := range rows {
				key := row.Key()
				if seen[key] {
					t.Fatalf("query %q: Permit box %s produced duplicate rows\n%s", query, b.Name, g.Dump())
				}
				seen[key] = true
			}
		}
	}
}
