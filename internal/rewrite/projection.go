package rewrite

import (
	"starmagic/internal/qgm"
)

// ProjectionPruneRule removes output columns of single-use select and
// group-by boxes that no consumer references ("pushing ... projections down
// into lower boxes", §3.1). Narrower intermediate results make the magic
// boxes EMST builds as cheap as the paper assumes.
type ProjectionPruneRule struct{}

// Name implements Rule.
func (ProjectionPruneRule) Name() string { return "projection-prune" }

// Apply implements Rule.
func (ProjectionPruneRule) Apply(ctx *Context, b *qgm.Box) (bool, error) {
	if b == ctx.G.Top {
		return false, nil // the query's output columns are fixed
	}
	if b.Kind != qgm.KindSelect && b.Kind != qgm.KindGroupBy {
		return false, nil
	}
	if b.Recursive {
		return false, nil // the fixpoint root's shape is fixed
	}
	// Boxes woven into magic bookkeeping keep their shape: MagicCols index
	// into their outputs.
	if len(b.MagicCols) > 0 || b.MagicBox != nil {
		return false, nil
	}
	g := ctx.G
	if g.UseCount(b) != 1 {
		return false, nil
	}
	var user *qgm.Quantifier
	for _, box := range g.Reachable() {
		for _, q := range box.Quantifiers {
			if q.Ranges == b {
				user = q
			}
		}
		if box.MagicBox == b {
			return false, nil // magic link is a structural use
		}
	}
	if user == nil {
		return false, nil
	}
	// Set-operation inputs are positional: pruning a branch would break the
	// operation's column alignment.
	switch user.Parent.Kind {
	case qgm.KindUnion, qgm.KindIntersect, qgm.KindExcept:
		return false, nil
	}

	used := make([]bool, len(b.Output))
	for _, box := range g.Reachable() {
		qgm.VisitBoxExprs(box, func(e qgm.Expr) {
			qgm.VisitRefs(e, func(c *qgm.ColRef) {
				if c.Q == user && c.Ord < len(used) {
					used[c.Ord] = true
				}
			})
		})
	}

	// Group-by boxes must keep their grouping columns (they define the
	// grouping semantics); only aggregate outputs are prunable.
	if b.Kind == qgm.KindGroupBy {
		for i := range b.GroupBy {
			used[i] = true
		}
	}
	if len(used) == 0 {
		return false, nil
	}
	// Keep at least one column.
	any := false
	for _, u := range used {
		any = any || u
	}
	if !any {
		used[0] = true
	}

	prunable := false
	for _, u := range used {
		if !u {
			prunable = true
		}
	}
	if !prunable {
		return false, nil
	}

	// Build the renumbering.
	newOrd := make([]int, len(b.Output))
	var kept []qgm.OutputCol
	for i, u := range used {
		if u {
			newOrd[i] = len(kept)
			kept = append(kept, b.Output[i])
		} else {
			newOrd[i] = -1
		}
	}
	if b.Kind == qgm.KindGroupBy {
		var aggs []qgm.AggSpec
		for i, a := range b.Aggs {
			if used[len(b.GroupBy)+i] {
				aggs = append(aggs, a)
			}
		}
		b.Aggs = aggs
	}
	b.Output = kept

	// Renumber consumer references.
	for _, box := range g.Reachable() {
		qgm.RewriteBoxExprs(box, func(e qgm.Expr) qgm.Expr {
			return qgm.RewriteRefs(e, func(c *qgm.ColRef) qgm.Expr {
				if c.Q == user {
					return &qgm.ColRef{Q: user, Ord: newOrd[c.Ord]}
				}
				return nil
			})
		})
	}
	return true, nil
}
