package rewrite

import (
	"starmagic/internal/qgm"
)

// DistinctPullupRule downgrades an enforced DISTINCT to "permitted" when
// the box provably cannot emit duplicates. The paper uses this twice in
// Example 4.1 phase 2 ("a distinct pullup rule is used twice in this phase
// to infer that there is no need to eliminate duplicates from the magic
// tables"), which is what later allows phase 3 to merge the magic boxes
// SD3/SD4 away.
type DistinctPullupRule struct{}

// Name implements Rule.
func (DistinctPullupRule) Name() string { return "distinct-pullup" }

// Apply implements Rule.
func (DistinctPullupRule) Apply(_ *Context, b *qgm.Box) (bool, error) {
	if b.Distinct != qgm.DistinctEnforce {
		return false, nil
	}
	if !DuplicateFree(b) {
		return false, nil
	}
	b.Distinct = qgm.DistinctPermit
	return true, nil
}
