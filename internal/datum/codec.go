package datum

// Lossless value/row encoding for spill files. The key encoding (AppendKey)
// is collision-safe only up to DistinctEqual — it normalizes INT 3 and FLOAT
// 3.0 to the same bytes and collapses every NULL to one tag — so spilled
// rows, which must round-trip exactly (type, typed-NULL, int-vs-float),
// use this separate self-delimiting encoding instead.
//
// Per value: one tag byte (bits 0-2 type, bit 3 NULL, bit 4 bool payload),
// then the payload: INT and FLOAT as 8 bytes little-endian, VARCHAR as
// uvarint length + bytes, NULL and BOOLEAN with no payload. A row is a
// uvarint column count followed by its values.

import (
	"fmt"
	"math"
)

const (
	encNullBit = 0x08
	encBoolBit = 0x10
	encTypeMax = 0x07
)

// AppendEncoded appends d's lossless encoding to buf.
func (d D) AppendEncoded(buf []byte) []byte {
	tag := byte(d.T) & encTypeMax
	if d.Null {
		return append(buf, tag|encNullBit)
	}
	switch d.T {
	case TNull:
		return append(buf, tag|encNullBit)
	case TInt:
		u := uint64(d.I)
		return append(buf, tag,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case TFloat:
		u := math.Float64bits(d.F)
		return append(buf, tag,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	case TString:
		buf = append(buf, tag)
		buf = appendUvarint(buf, uint64(len(d.S)))
		return append(buf, d.S...)
	case TBool:
		if d.B {
			return append(buf, tag|encBoolBit)
		}
		return append(buf, tag)
	}
	return append(buf, byte(TNull)|encNullBit)
}

// DecodeValue decodes one value from buf, returning it and the remaining
// bytes.
func DecodeValue(buf []byte) (D, []byte, error) {
	if len(buf) == 0 {
		return D{}, nil, fmt.Errorf("datum: decode value: empty buffer")
	}
	tag := buf[0]
	buf = buf[1:]
	t := Type(tag & encTypeMax)
	if t > TBool {
		return D{}, nil, fmt.Errorf("datum: decode value: bad type tag %d", t)
	}
	if tag&encNullBit != 0 {
		return D{T: t, Null: true}, buf, nil
	}
	switch t {
	case TNull:
		return D{T: TNull, Null: true}, buf, nil
	case TInt, TFloat:
		if len(buf) < 8 {
			return D{}, nil, fmt.Errorf("datum: decode value: truncated numeric")
		}
		u := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
			uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
		buf = buf[8:]
		if t == TInt {
			return Int(int64(u)), buf, nil
		}
		return Float(math.Float64frombits(u)), buf, nil
	case TString:
		n, rest, err := decodeUvarint(buf)
		if err != nil {
			return D{}, nil, fmt.Errorf("datum: decode value: %w", err)
		}
		if uint64(len(rest)) < n {
			return D{}, nil, fmt.Errorf("datum: decode value: truncated string")
		}
		return String(string(rest[:n])), rest[n:], nil
	case TBool:
		return Bool(tag&encBoolBit != 0), buf, nil
	}
	return D{}, nil, fmt.Errorf("datum: decode value: unreachable tag %#x", tag)
}

// AppendEncodedRow appends r's lossless encoding (uvarint column count, then
// each value) to buf.
func AppendEncodedRow(buf []byte, r Row) []byte {
	buf = appendUvarint(buf, uint64(len(r)))
	for _, d := range r {
		buf = d.AppendEncoded(buf)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning it and the remaining bytes.
func DecodeRow(buf []byte) (Row, []byte, error) {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("datum: decode row: %w", err)
	}
	row := make(Row, n)
	for i := range row {
		row[i], rest, err = DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, rest, nil
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(buf); i++ {
		b := buf[i]
		if i >= 9 {
			return 0, nil, fmt.Errorf("uvarint overflow")
		}
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b < 0x80 {
			return v, buf[i+1:], nil
		}
	}
	return 0, nil, fmt.Errorf("truncated uvarint")
}

// AppendEncoded appends the aggregate accumulator's state so a spilled
// group-by partition can be paged back in without losing precision (the
// int/float sum split and the typed extreme value are preserved exactly).
func (s *AggState) AppendEncoded(buf []byte) []byte {
	buf = append(buf, byte(s.Kind))
	buf = appendUvarint(buf, uint64(s.count))
	u := uint64(s.sumI)
	buf = append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	f := math.Float64bits(s.sumF)
	buf = append(buf,
		byte(f), byte(f>>8), byte(f>>16), byte(f>>24),
		byte(f>>32), byte(f>>40), byte(f>>48), byte(f>>56))
	if s.isFloat {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return s.extreme.AppendEncoded(buf)
}

// DecodeAggState decodes an accumulator encoded by AppendEncoded, returning
// it and the remaining bytes.
func DecodeAggState(buf []byte) (*AggState, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("datum: decode agg state: empty buffer")
	}
	s := &AggState{Kind: AggKind(buf[0])}
	count, rest, err := decodeUvarint(buf[1:])
	if err != nil {
		return nil, nil, fmt.Errorf("datum: decode agg state: %w", err)
	}
	s.count = int64(count)
	if len(rest) < 17 {
		return nil, nil, fmt.Errorf("datum: decode agg state: truncated sums")
	}
	s.sumI = int64(uint64(rest[0]) | uint64(rest[1])<<8 | uint64(rest[2])<<16 | uint64(rest[3])<<24 |
		uint64(rest[4])<<32 | uint64(rest[5])<<40 | uint64(rest[6])<<48 | uint64(rest[7])<<56)
	s.sumF = math.Float64frombits(uint64(rest[8]) | uint64(rest[9])<<8 | uint64(rest[10])<<16 | uint64(rest[11])<<24 |
		uint64(rest[12])<<32 | uint64(rest[13])<<40 | uint64(rest[14])<<48 | uint64(rest[15])<<56)
	s.isFloat = rest[16] != 0
	s.extreme, rest, err = DecodeValue(rest[17:])
	if err != nil {
		return nil, nil, err
	}
	return s, rest, nil
}

// MemBytes is a coarse resident-size estimate of the datum for memory
// accounting: struct size plus string payload.
func (d D) MemBytes() int64 {
	return 48 + int64(len(d.S))
}

// RowMemBytes estimates the resident size of a row (slice header, backing
// array, string payloads) for memory accounting.
func RowMemBytes(r Row) int64 {
	n := int64(24)
	for _, d := range r {
		n += d.MemBytes()
	}
	return n
}
