package datum

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomDatum generates an arbitrary datum for property tests.
func randomDatum(r *rand.Rand) D {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return NullOf(TInt)
	case 2:
		return Int(int64(r.Intn(21) - 10))
	case 3:
		return Float(float64(r.Intn(21)-10) / 2)
	case 4:
		return String(string(rune('a' + r.Intn(5))))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// Generate implements quick.Generator so D can appear in quick.Check
// signatures directly.
func (D) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDatum(r))
}

func TestTypeFromName(t *testing.T) {
	cases := []struct {
		in   string
		want Type
		ok   bool
	}{
		{"INT", TInt, true},
		{"integer", TInt, true},
		{"BIGINT", TInt, true},
		{"FLOAT", TFloat, true},
		{"decimal", TFloat, true},
		{"VARCHAR", TString, true},
		{"text", TString, true},
		{"BOOLEAN", TBool, true},
		{"bogus", TNull, false},
	}
	for _, c := range cases {
		got, err := TypeFromName(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("TypeFromName(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("TypeFromName(%q) succeeded; want error", c.in)
		}
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b D
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{String("abc"), String("abd"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%#v, %#v) = %d; want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestComparePanicsOnNull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare(NULL, 1) did not panic")
		}
	}()
	Compare(Null(), Int(1))
}

func TestSortCompareNulls(t *testing.T) {
	if SortCompare(Null(), Int(-999)) != -1 {
		t.Error("NULL should sort before all values")
	}
	if SortCompare(Null(), NullOf(TInt)) != 0 {
		t.Error("NULLs should compare equal under SortCompare")
	}
	if SortCompare(Int(0), Null()) != 1 {
		t.Error("values should sort after NULL")
	}
}

func TestThreeValuedLogicTables(t *testing.T) {
	// Truth tables straight from the SQL standard.
	and := [3][3]TV{
		//         F        T        U
		False: {False, False, False},
		True:  {False, True, Unknown},
		Unknown: {False, Unknown,
			Unknown},
	}
	or := [3][3]TV{
		False:   {False, True, Unknown},
		True:    {True, True, True},
		Unknown: {Unknown, True, Unknown},
	}
	vals := []TV{False, True, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			if got := a.And(b); got != and[a][b] {
				t.Errorf("%v AND %v = %v; want %v", a, b, got, and[a][b])
			}
			if got := a.Or(b); got != or[a][b] {
				t.Errorf("%v OR %v = %v; want %v", a, b, got, or[a][b])
			}
		}
	}
	if False.Not() != True || True.Not() != False || Unknown.Not() != Unknown {
		t.Error("NOT truth table wrong")
	}
}

func TestCompareTVNullGivesUnknown(t *testing.T) {
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		if got := CompareTV(op, Null(), Int(1)); got != Unknown {
			t.Errorf("NULL %v 1 = %v; want UNKNOWN", op, got)
		}
		if got := CompareTV(op, Int(1), NullOf(TInt)); got != Unknown {
			t.Errorf("1 %v NULL = %v; want UNKNOWN", op, got)
		}
	}
	if CompareTV(EQ, Int(3), Float(3)) != True {
		t.Error("3 = 3.0 should be TRUE")
	}
	if CompareTV(NE, Int(3), Float(3)) != False {
		t.Error("3 <> 3.0 should be FALSE")
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %v changed it", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("double flip of %v changed it", op)
		}
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Error("flip table wrong")
	}
	if LT.Negate() != GE || EQ.Negate() != NE {
		t.Error("negate table wrong")
	}
}

// Property: Negate is semantically NOT for non-NULL operands.
func TestNegateSemantics(t *testing.T) {
	f := func(a, b D) bool {
		if a.IsNull() || b.IsNull() || !Comparable(a.T, b.T) {
			return true
		}
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			if CompareTV(op, a, b).Not() != CompareTV(op.Negate(), a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Flip is semantically side-exchange.
func TestFlipSemantics(t *testing.T) {
	f := func(a, b D) bool {
		if !Comparable(a.T, b.T) {
			return true
		}
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			if CompareTV(op, a, b) != CompareTV(op.Flip(), b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortCompare is a total order — antisymmetric and transitive.
func TestSortCompareTotalOrder(t *testing.T) {
	comparableAll := func(ds ...D) bool {
		for _, a := range ds {
			for _, b := range ds {
				if !a.IsNull() && !b.IsNull() && !Comparable(a.T, b.T) {
					return false
				}
				// string vs int etc. are not comparable; skip such triples
				if !a.IsNull() && !b.IsNull() && a.T != b.T && !(numeric(a.T) && numeric(b.T)) {
					return false
				}
			}
		}
		return true
	}
	f := func(a, b, c D) bool {
		if !comparableAll(a, b, c) {
			return true
		}
		if SortCompare(a, b) != -SortCompare(b, a) {
			return false
		}
		if SortCompare(a, b) <= 0 && SortCompare(b, c) <= 0 && SortCompare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hashing is consistent with DistinctEqual.
func TestHashConsistentWithDistinctEqual(t *testing.T) {
	f := func(a, b D) bool {
		if !a.IsNull() && !b.IsNull() && a.T != b.T && !(numeric(a.T) && numeric(b.T)) {
			return true
		}
		if DistinctEqual(a, b) && a.Hash() != b.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Int(3).Hash() != Float(3).Hash() {
		t.Error("INT 3 and FLOAT 3.0 must hash alike")
	}
	if Null().Hash() != NullOf(TString).Hash() {
		t.Error("all NULLs must hash alike")
	}
}

// Property: Row.Key is injective w.r.t. DistinctEqual row equality.
func TestRowKeyMatchesEquality(t *testing.T) {
	pairComparable := func(a, b D) bool {
		return a.IsNull() || b.IsNull() || a.T == b.T || (numeric(a.T) && numeric(b.T))
	}
	f := func(a, b D, c, d D) bool {
		if !pairComparable(a, b) || !pairComparable(c, d) {
			return true
		}
		r1, r2 := Row{a, c}, Row{b, d}
		eq := DistinctEqual(a, b) && DistinctEqual(c, d)
		return eq == (r1.Key() == r2.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRowKeyStringEscaping(t *testing.T) {
	// Adjacent strings with embedded NULs and shifted boundaries must not
	// collide.
	r1 := Row{String("a\x00"), String("b")}
	r2 := Row{String("a"), String("\x00b")}
	if r1.Key() == r2.Key() {
		t.Error("row keys collide across string boundaries")
	}
}

// Regression: the seed's terminator-based encoder collided when a string's
// escaped NUL was followed by bytes that mimicked a numeric record. The row
// ["a\x00bcdefghi"] encoded to exactly the same bytes as ["a", f] where f is
// the float64 whose little-endian bit pattern is "bcdefghi". The
// length-prefixed binary encoder cannot collide: every record is
// self-delimiting.
func TestRowKeyCollisionRegression(t *testing.T) {
	var bits uint64
	for i, c := range []byte("bcdefghi") {
		bits |= uint64(c) << (8 * i)
	}
	r1 := Row{String("a\x00bcdefghi")}
	r2 := Row{String("a"), Float(math.Float64frombits(bits))}
	if r1.Key() == r2.Key() {
		t.Fatalf("row keys collide: %q", r1.Key())
	}
	// The same pair must stay distinct through the allocation-free path.
	var buf []byte
	k1 := string(AppendKey(buf[:0], r1))
	k2 := string(AppendKey(buf[:0], r2))
	if k1 == k2 {
		t.Fatalf("AppendKey keys collide: %q", k1)
	}
}

// AppendKey with a reused buffer must agree with Key and with AppendKeyOf.
func TestAppendKeyMatchesKey(t *testing.T) {
	rows := []Row{
		{},
		{Null(), NullOf(TString)},
		{Int(7), Float(7), String(""), Bool(true), Bool(false)},
		{String("a\x00b"), String(strings.Repeat("x", 200))},
		{Int(-1), Float(math.Inf(1)), Float(-0.0)},
	}
	buf := make([]byte, 0, 8)
	for _, r := range rows {
		buf = AppendKey(buf[:0], r)
		if got, want := string(buf), r.Key(); got != want {
			t.Errorf("AppendKey(%v) = %q; Key = %q", r, got, want)
		}
		cols := make([]int, len(r))
		for i := range cols {
			cols[i] = len(r) - 1 - i
		}
		buf = AppendKeyOf(buf[:0], r, cols)
		if got, want := string(buf), r.KeyOf(cols); got != want {
			t.Errorf("AppendKeyOf(%v) = %q; KeyOf = %q", r, got, want)
		}
	}
	// -0.0 and 0.0 must key identically (DistinctEqual holds).
	if Row.Key(Row{Float(math.Copysign(0, -1))}) != Row.Key(Row{Float(0)}) {
		t.Error("-0.0 and 0.0 must share a key")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b D
		want D
	}{
		{Add, Int(2), Int(3), Int(5)},
		{Sub, Int(2), Int(3), Int(-1)},
		{Mul, Int(4), Int(3), Int(12)},
		{Div, Int(7), Int(2), Int(3)},
		{Mod, Int(7), Int(2), Int(1)},
		{Add, Float(1.5), Int(1), Float(2.5)},
		{Div, Float(7), Float(2), Float(3.5)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("%v %v %v: %v", c.a, c.op, c.b, err)
		}
		if !DistinctEqual(got, c.want) || got.T != c.want.T {
			t.Errorf("%#v %v %#v = %#v; want %#v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithNullPropagation(t *testing.T) {
	got, err := Arith(Add, Null(), Int(1))
	if err != nil || !got.IsNull() {
		t.Errorf("NULL + 1 = %#v, %v; want NULL", got, err)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith(Div, Int(1), Int(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Arith(Mod, Int(1), Int(0)); err == nil {
		t.Error("modulo by zero should error")
	}
	if _, err := Arith(Add, String("x"), Int(1)); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestNeg(t *testing.T) {
	if got, _ := Neg(Int(5)); got.I != -5 {
		t.Errorf("Neg(5) = %#v", got)
	}
	if got, _ := Neg(Float(2.5)); got.F != -2.5 {
		t.Errorf("Neg(2.5) = %#v", got)
	}
	if got, _ := Neg(Null()); !got.IsNull() {
		t.Errorf("Neg(NULL) = %#v", got)
	}
	if _, err := Neg(String("a")); err == nil {
		t.Error("Neg on string should error")
	}
}

func TestAggStates(t *testing.T) {
	add := func(s *AggState, vs ...D) {
		t.Helper()
		for _, v := range vs {
			if err := s.Add(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	sum := NewAggState(AggSum)
	add(sum, Int(1), Int(2), NullOf(TInt), Int(3))
	if got := sum.Result(); got.I != 6 || got.T != TInt {
		t.Errorf("SUM = %#v; want 6", got)
	}
	avg := NewAggState(AggAvg)
	add(avg, Int(1), Int(2), Null(), Int(3))
	if got := avg.Result(); got.F != 2.0 {
		t.Errorf("AVG = %#v; want 2.0", got)
	}
	cnt := NewAggState(AggCount)
	add(cnt, Int(1), Null(), Int(3))
	if got := cnt.Result(); got.I != 2 {
		t.Errorf("COUNT = %#v; want 2", got)
	}
	cntStar := NewAggState(AggCountStar)
	add(cntStar, Int(1), Null(), Int(3))
	if got := cntStar.Result(); got.I != 3 {
		t.Errorf("COUNT(*) = %#v; want 3", got)
	}
	mn, mx := NewAggState(AggMin), NewAggState(AggMax)
	add(mn, Int(5), Int(2), Null(), Int(9))
	add(mx, Int(5), Int(2), Null(), Int(9))
	if mn.Result().I != 2 || mx.Result().I != 9 {
		t.Errorf("MIN/MAX = %#v/%#v", mn.Result(), mx.Result())
	}
}

func TestAggEmptyGroups(t *testing.T) {
	for _, k := range []AggKind{AggSum, AggAvg, AggMin, AggMax} {
		if got := NewAggState(k).Result(); !got.IsNull() {
			t.Errorf("%v over empty group = %#v; want NULL", k, got)
		}
	}
	for _, k := range []AggKind{AggCount, AggCountStar} {
		if got := NewAggState(k).Result(); got.I != 0 || got.IsNull() {
			t.Errorf("%v over empty group = %#v; want 0", k, got)
		}
	}
}

func TestAggSumFloatPromotion(t *testing.T) {
	s := NewAggState(AggSum)
	s.Add(Int(1))
	s.Add(Float(0.5))
	if got := s.Result(); got.T != TFloat || got.F != 1.5 {
		t.Errorf("SUM(1, 0.5) = %#v; want FLOAT 1.5", got)
	}
}

func TestAggErrorsOnNonNumeric(t *testing.T) {
	s := NewAggState(AggSum)
	if err := s.Add(String("x")); err == nil {
		t.Error("SUM over string should error")
	}
}

func TestAggResultType(t *testing.T) {
	if AggCount.ResultType(TString) != TInt {
		t.Error("COUNT result type should be INT")
	}
	if AggAvg.ResultType(TInt) != TFloat {
		t.Error("AVG result type should be FLOAT")
	}
	if AggSum.ResultType(TInt) != TInt || AggSum.ResultType(TFloat) != TFloat {
		t.Error("SUM result type wrong")
	}
	if AggMin.ResultType(TString) != TString {
		t.Error("MIN result type should follow input")
	}
}

func TestAggKindFromName(t *testing.T) {
	for name, want := range map[string]AggKind{
		"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
	} {
		got, ok := AggKindFromName(name)
		if !ok || got != want {
			t.Errorf("AggKindFromName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindFromName("MEDIAN"); ok {
		t.Error("MEDIAN should not resolve")
	}
}

func TestFormat(t *testing.T) {
	cases := map[string]D{
		"NULL":  Null(),
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hi":    String("hi"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
	}
	for want, d := range cases {
		if got := d.Format(); got != want {
			t.Errorf("Format(%#v) = %q; want %q", d, got, want)
		}
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{Int(1), String("b")}
	b := Row{Int(1), String("c")}
	if CompareRows(a, b) != -1 || CompareRows(b, a) != 1 || CompareRows(a, a) != 0 {
		t.Error("CompareRows basic ordering wrong")
	}
	if CompareRows(Row{Int(1)}, Row{Int(1), Int(2)}) != -1 {
		t.Error("shorter row should sort first")
	}
	if CompareRows(Row{Null()}, Row{Int(0)}) != -1 {
		t.Error("NULL-first ordering in rows")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Int(2)}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].I != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestStringers(t *testing.T) {
	for _, tt := range []Type{TNull, TInt, TFloat, TString, TBool} {
		if tt.String() == "" {
			t.Error("type string empty")
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type string")
	}
	for _, v := range []TV{False, True, Unknown} {
		if v.String() == "" {
			t.Error("tv string")
		}
	}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.String() == "?" {
			t.Error("cmp op string")
		}
	}
	for _, op := range []ArithOp{Add, Sub, Mul, Div, Mod} {
		if op.String() == "?" {
			t.Error("arith op string")
		}
	}
	for _, k := range []AggKind{AggCount, AggCountStar, AggSum, AggAvg, AggMin, AggMax} {
		if k.String() == "AGG?" {
			t.Error("agg kind string")
		}
	}
}

func TestGoStringAndHashStability(t *testing.T) {
	if Int(3).GoString() != "3:INT" {
		t.Errorf("GoString = %s", Int(3).GoString())
	}
	if NullOf(TFloat).GoString() != "NULL:FLOAT" {
		t.Errorf("GoString = %s", NullOf(TFloat).GoString())
	}
	// Hash must be deterministic across calls.
	if String("x").Hash() != String("x").Hash() {
		t.Error("hash unstable")
	}
	if Float(0).Hash() != Float(-0.0).Hash() {
		t.Error("-0.0 and 0.0 must hash alike")
	}
}

func TestComparableMatrix(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{TInt, TFloat, true},
		{TInt, TInt, true},
		{TString, TString, true},
		{TString, TInt, false},
		{TBool, TInt, false},
		{TNull, TString, true},
	}
	for _, c := range cases {
		if got := Comparable(c.a, c.b); got != c.want {
			t.Errorf("Comparable(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
