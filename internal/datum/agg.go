package datum

import "fmt"

// AggKind enumerates the SQL aggregate functions.
type AggKind uint8

// Aggregate functions supported by the engine. CountStar is COUNT(*).
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT"
	case AggCountStar:
		return "COUNT(*)"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "AGG?"
}

// AggKindFromName resolves a SQL function name to an aggregate kind.
func AggKindFromName(name string) (AggKind, bool) {
	switch name {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return 0, false
}

// ResultType returns the type an aggregate produces when applied to input of
// type in.
func (k AggKind) ResultType(in Type) Type {
	switch k {
	case AggCount, AggCountStar:
		return TInt
	case AggAvg:
		return TFloat
	case AggSum:
		if in == TFloat {
			return TFloat
		}
		return TInt
	default:
		return in
	}
}

// AggState accumulates one aggregate over one group. SQL semantics: NULL
// inputs are ignored by every aggregate except COUNT(*); an empty group
// yields NULL for all aggregates except COUNT/COUNT(*), which yield 0.
// DISTINCT aggregation is handled by the caller (it deduplicates inputs
// before calling Add).
type AggState struct {
	Kind    AggKind
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	extreme D
}

// NewAggState returns a fresh accumulator for kind k.
func NewAggState(k AggKind) *AggState { return &AggState{Kind: k} }

// Add folds one input value into the aggregate. For COUNT(*) the value is
// ignored (callers may pass any datum).
func (s *AggState) Add(v D) error {
	if s.Kind == AggCountStar {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	switch s.Kind {
	case AggCount:
		s.count++
	case AggSum, AggAvg:
		if !numeric(v.T) {
			return fmt.Errorf("%s over non-numeric type %s", s.Kind, v.T)
		}
		s.count++
		if v.T == TFloat {
			s.isFloat = true
		}
		s.sumI += v.I
		s.sumF += v.AsFloat()
	case AggMin:
		if s.count == 0 || Compare(v, s.extreme) < 0 {
			s.extreme = v
		}
		s.count++
	case AggMax:
		if s.count == 0 || Compare(v, s.extreme) > 0 {
			s.extreme = v
		}
		s.count++
	}
	return nil
}

// Result returns the aggregate's final value.
func (s *AggState) Result() D {
	switch s.Kind {
	case AggCount, AggCountStar:
		return Int(s.count)
	case AggSum:
		if s.count == 0 {
			return NullOf(TInt)
		}
		if s.isFloat {
			return Float(s.sumF)
		}
		return Int(s.sumI)
	case AggAvg:
		if s.count == 0 {
			return NullOf(TFloat)
		}
		return Float(s.sumF / float64(s.count))
	case AggMin, AggMax:
		if s.count == 0 {
			return Null()
		}
		return s.extreme
	}
	return Null()
}
