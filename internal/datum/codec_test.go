package datum

import (
	"math"
	"strings"
	"testing"
)

// The spill codec must round-trip every value exactly: AppendKey normalizes
// INT 3 / FLOAT 3.0 and collapses typed NULLs, so these tests pin down the
// distinctions the lossless encoding is required to preserve.
func TestCodecValueRoundTrip(t *testing.T) {
	vals := []D{
		Null(),
		NullOf(TInt),
		NullOf(TFloat),
		NullOf(TString),
		NullOf(TBool),
		Int(0),
		Int(1),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(0),
		Float(math.Copysign(0, -1)),
		Float(3),
		Float(-2.5),
		Float(math.MaxFloat64),
		Float(math.SmallestNonzeroFloat64),
		Float(math.Inf(1)),
		Float(math.Inf(-1)),
		String(""),
		String("a"),
		String("worker-0042"),
		String(strings.Repeat("x", 300)), // multi-byte uvarint length
		String("nul\x00byte and unïcode"),
		Bool(true),
		Bool(false),
	}
	for _, v := range vals {
		buf := v.AppendEncoded(nil)
		got, rest, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("%#v: decode: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%#v: %d trailing bytes", v, len(rest))
		}
		if got.T != v.T || got.IsNull() != v.IsNull() {
			t.Fatalf("%#v: type/null not preserved, got %#v", v, got)
		}
		if !v.IsNull() && !DistinctEqual(got, v) {
			t.Fatalf("%#v: value not preserved, got %#v", v, got)
		}
	}
	// -0.0 must keep its sign bit (DistinctCompare treats it equal to +0.0).
	neg := Float(math.Copysign(0, -1))
	got, _, err := DecodeValue(neg.AppendEncoded(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !math.Signbit(got.F) {
		t.Fatal("-0.0 lost its sign bit")
	}
}

func TestCodecIntFloatStayDistinct(t *testing.T) {
	// The whole point of the lossless codec over AppendKey.
	i := Int(3).AppendEncoded(nil)
	f := Float(3).AppendEncoded(nil)
	if string(i) == string(f) {
		t.Fatal("INT 3 and FLOAT 3.0 encode identically")
	}
	gi, _, _ := DecodeValue(i)
	gf, _, _ := DecodeValue(f)
	if gi.T != TInt || gf.T != TFloat {
		t.Fatalf("types collapsed: %v, %v", gi.T, gf.T)
	}
}

func TestCodecRowRoundTrip(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{Int(1)},
		{Int(7), String("dept"), Float(1.5), Bool(true), NullOf(TString)},
	}
	var buf []byte
	for _, r := range rows {
		buf = AppendEncodedRow(buf, r)
	}
	// Rows are self-delimiting: decode them back-to-back from one buffer.
	for _, want := range rows {
		var got Row
		var err error
		got, buf, err = DecodeRow(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("row length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].T != want[i].T || got[i].IsNull() != want[i].IsNull() {
				t.Fatalf("col %d: got %#v, want %#v", i, got[i], want[i])
			}
			if !want[i].IsNull() && !DistinctEqual(got[i], want[i]) {
				t.Fatalf("col %d: got %#v, want %#v", i, got[i], want[i])
			}
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"bad type tag":     {0x07},
		"truncated int":    Int(1).AppendEncoded(nil)[:5],
		"truncated string": String("hello").AppendEncoded(nil)[:3],
		"truncated strlen": {byte(TString)},
	}
	for name, buf := range cases {
		if _, _, err := DecodeValue(buf); err == nil {
			t.Errorf("%s: DecodeValue succeeded on %v", name, buf)
		}
	}
	if _, _, err := DecodeRow([]byte{0x02, byte(TBool)}); err == nil {
		t.Error("DecodeRow succeeded on short row")
	}
	if _, _, err := DecodeRow(nil); err == nil {
		t.Error("DecodeRow succeeded on empty buffer")
	}
}

func TestCodecAggStateRoundTrip(t *testing.T) {
	feed := func(k AggKind, vals ...D) *AggState {
		s := NewAggState(k)
		for _, v := range vals {
			if err := s.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	states := []*AggState{
		NewAggState(AggCount), // empty accumulator
		feed(AggCount, Int(1), String("x"), Null()),
		feed(AggSum, Int(5), Int(-3)),
		feed(AggSum, Float(1.25), Float(2.5)), // float path: isFloat flag
		feed(AggAvg, Int(1), Int(2), Int(4)),
		feed(AggMin, String("b"), String("a")),
		feed(AggMax, Int(9), Int(12)),
	}
	for _, want := range states {
		buf := want.AppendEncoded(nil)
		got, rest, err := DecodeAggState(buf)
		if err != nil {
			t.Fatalf("kind %v: %v", want.Kind, err)
		}
		if len(rest) != 0 {
			t.Fatalf("kind %v: %d trailing bytes", want.Kind, len(rest))
		}
		wr, gr := want.Result(), got.Result()
		if wr.T != gr.T || wr.IsNull() != gr.IsNull() {
			t.Fatalf("kind %v: result %#v, want %#v", want.Kind, gr, wr)
		}
		if !wr.IsNull() && !DistinctEqual(wr, gr) {
			t.Fatalf("kind %v: result %#v, want %#v", want.Kind, gr, wr)
		}
		// The decoded accumulator must keep accumulating correctly.
		if want.Kind == AggSum {
			if err := got.Add(Int(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
}
