// Package datum implements the SQL value model used throughout starmagic:
// typed scalar values, NULL, three-valued logic for predicate evaluation,
// SQL comparison semantics, and hashing for join/aggregation operators.
//
// The paper (§1, §6) stresses strict adherence to SQL semantics — duplicates,
// NULLs, and aggregation behave as in SQL, not as in Datalog. This package is
// the single source of truth for those semantics.
package datum

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the SQL types supported by the engine.
type Type uint8

// Supported SQL types. TNull is the type of an untyped NULL literal; a NULL
// value of a known column type keeps that column's type with Null set.
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// TypeFromName parses a SQL type name (as accepted by CREATE TABLE) into a
// Type. Common synonyms are accepted.
func TypeFromName(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return TFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return TString, nil
	case "BOOLEAN", "BOOL":
		return TBool, nil
	}
	return TNull, fmt.Errorf("unknown type name %q", name)
}

// D is a single SQL value. The zero value of D is the untyped NULL.
//
// D is a small value type; pass it by value. Only the field matching T is
// meaningful. Null may be true for any T, representing a typed NULL.
type D struct {
	T    Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Null returns the untyped NULL datum.
func Null() D { return D{T: TNull, Null: true} }

// NullOf returns a NULL datum carrying type t.
func NullOf(t Type) D { return D{T: t, Null: true} }

// Int returns an INT datum.
func Int(v int64) D { return D{T: TInt, I: v} }

// Float returns a FLOAT datum.
func Float(v float64) D { return D{T: TFloat, F: v} }

// String returns a VARCHAR datum.
func String(v string) D { return D{T: TString, S: v} }

// Bool returns a BOOLEAN datum.
func Bool(v bool) D { return D{T: TBool, B: v} }

// IsNull reports whether the datum is NULL (typed or untyped).
func (d D) IsNull() bool { return d.Null || d.T == TNull }

// AsFloat converts a numeric datum to float64. It panics on non-numeric
// types; callers must have type-checked first.
func (d D) AsFloat() float64 {
	switch d.T {
	case TInt:
		return float64(d.I)
	case TFloat:
		return d.F
	}
	panic(fmt.Sprintf("datum: AsFloat on %s", d.T))
}

// Format renders the datum the way the result printer and tests expect:
// SQL-style literals with NULL spelled out.
func (d D) Format() string {
	if d.IsNull() {
		return "NULL"
	}
	switch d.T {
	case TInt:
		return strconv.FormatInt(d.I, 10)
	case TFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case TString:
		return d.S
	case TBool:
		if d.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// GoString implements fmt.GoStringer for readable test failures.
func (d D) GoString() string {
	if d.IsNull() {
		return "NULL:" + d.T.String()
	}
	return fmt.Sprintf("%s:%s", d.Format(), d.T)
}

// numeric reports whether the type participates in arithmetic.
func numeric(t Type) bool { return t == TInt || t == TFloat }

// Comparable reports whether values of types a and b may be compared with
// the SQL comparison operators.
func Comparable(a, b Type) bool {
	if a == TNull || b == TNull {
		return true // NULL literal compares (to UNKNOWN) with anything
	}
	if a == b {
		return true
	}
	return numeric(a) && numeric(b)
}

// Compare totally orders two non-NULL datums of comparable types, returning
// -1, 0, or +1. INT and FLOAT compare numerically. Compare panics if either
// operand is NULL or the types are incomparable; predicate evaluation must
// route NULLs through CompareTV instead. Sorting and grouping, which need a
// total order including NULLs, use SortCompare.
func Compare(a, b D) int {
	if a.IsNull() || b.IsNull() {
		panic("datum: Compare on NULL; use CompareTV or SortCompare")
	}
	switch {
	case a.T == TInt && b.T == TInt:
		return cmpOrdered(a.I, b.I)
	case numeric(a.T) && numeric(b.T):
		return cmpOrdered(a.AsFloat(), b.AsFloat())
	case a.T == TString && b.T == TString:
		return strings.Compare(a.S, b.S)
	case a.T == TBool && b.T == TBool:
		return cmpOrdered(b2i(a.B), b2i(b.B))
	}
	panic(fmt.Sprintf("datum: incomparable types %s and %s", a.T, b.T))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// SortCompare totally orders datums for ORDER BY and duplicate grouping.
// NULL sorts before every non-NULL value and equals other NULLs (SQL's
// "NULLs are not distinct" grouping rule).
func SortCompare(a, b D) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	return Compare(a, b)
}

// TV is a three-valued logic truth value.
type TV uint8

// Truth values of SQL three-valued logic.
const (
	False TV = iota
	True
	Unknown
)

// String returns the spelling used in EXPLAIN output and tests.
func (v TV) String() string {
	switch v {
	case False:
		return "FALSE"
	case True:
		return "TRUE"
	}
	return "UNKNOWN"
}

// FromBool lifts a Go bool into a TV.
func FromBool(b bool) TV {
	if b {
		return True
	}
	return False
}

// And is SQL AND over three-valued logic.
func (v TV) And(o TV) TV {
	if v == False || o == False {
		return False
	}
	if v == True && o == True {
		return True
	}
	return Unknown
}

// Or is SQL OR over three-valued logic.
func (v TV) Or(o TV) TV {
	if v == True || o == True {
		return True
	}
	if v == False && o == False {
		return False
	}
	return Unknown
}

// Not is SQL NOT over three-valued logic.
func (v TV) Not() TV {
	switch v {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// CmpOp is a SQL comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator (op such that a N b == NOT(a op b)
// for non-NULL operands).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

// Flip returns the operator with sides exchanged (a op b == b Flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}

// CompareTV evaluates "a op b" under SQL semantics: any NULL operand yields
// UNKNOWN.
func CompareTV(op CmpOp, a, b D) TV {
	if a.IsNull() || b.IsNull() {
		return Unknown
	}
	c := Compare(a, b)
	switch op {
	case EQ:
		return FromBool(c == 0)
	case NE:
		return FromBool(c != 0)
	case LT:
		return FromBool(c < 0)
	case LE:
		return FromBool(c <= 0)
	case GT:
		return FromBool(c > 0)
	case GE:
		return FromBool(c >= 0)
	}
	return Unknown
}

// DistinctEqual reports whether a and b are equal under SQL's IS NOT
// DISTINCT FROM semantics: NULLs equal each other. This is the equality used
// by GROUP BY, DISTINCT, and set operations.
func DistinctEqual(a, b D) bool { return SortCompare(a, b) == 0 }

// ArithOp is a SQL arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	}
	return "?"
}

// Arith evaluates "a op b". NULL operands yield NULL. Integer division by
// zero and modulo by zero return an error, as does arithmetic on non-numeric
// operands.
func Arith(op ArithOp, a, b D) (D, error) {
	if a.IsNull() || b.IsNull() {
		t := TFloat
		if a.T == TInt && b.T == TInt {
			t = TInt
		}
		return NullOf(t), nil
	}
	if !numeric(a.T) || !numeric(b.T) {
		return Null(), fmt.Errorf("arithmetic on non-numeric types %s and %s", a.T, b.T)
	}
	if a.T == TInt && b.T == TInt {
		switch op {
		case Add:
			return Int(a.I + b.I), nil
		case Sub:
			return Int(a.I - b.I), nil
		case Mul:
			return Int(a.I * b.I), nil
		case Div:
			if b.I == 0 {
				return Null(), fmt.Errorf("division by zero")
			}
			return Int(a.I / b.I), nil
		case Mod:
			if b.I == 0 {
				return Null(), fmt.Errorf("modulo by zero")
			}
			return Int(a.I % b.I), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case Add:
		return Float(x + y), nil
	case Sub:
		return Float(x - y), nil
	case Mul:
		return Float(x * y), nil
	case Div:
		if y == 0 {
			return Null(), fmt.Errorf("division by zero")
		}
		return Float(x / y), nil
	case Mod:
		if y == 0 {
			return Null(), fmt.Errorf("modulo by zero")
		}
		return Float(math.Mod(x, y)), nil
	}
	return Null(), fmt.Errorf("unknown arithmetic operator")
}

// Neg returns -a. NULL yields NULL.
func Neg(a D) (D, error) {
	if a.IsNull() {
		return a, nil
	}
	switch a.T {
	case TInt:
		return Int(-a.I), nil
	case TFloat:
		return Float(-a.F), nil
	}
	return Null(), fmt.Errorf("unary minus on %s", a.T)
}

// Hash returns a hash of the datum consistent with DistinctEqual: datums for
// which DistinctEqual returns true hash identically (in particular all NULLs
// share one hash, and INT 3 hashes like FLOAT 3.0).
func (d D) Hash() uint64 {
	h := fnv.New64a()
	d.HashInto(h)
	return h.Sum64()
}

// hashWriter is the subset of hash.Hash64 that HashInto needs.
type hashWriter interface {
	Write(p []byte) (int, error)
}

// HashInto writes the datum's DistinctEqual-compatible hash bytes into h.
func (d D) HashInto(h hashWriter) {
	if d.IsNull() {
		h.Write([]byte{0xff})
		return
	}
	switch d.T {
	case TInt, TFloat:
		// Hash all numerics through float64 so cross-type equality holds.
		f := d.AsFloat()
		if f == 0 {
			f = 0 // normalize -0.0
		}
		var buf [9]byte
		buf[0] = 1
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case TString:
		h.Write([]byte{2})
		h.Write([]byte(d.S))
	case TBool:
		if d.B {
			h.Write([]byte{3, 1})
		} else {
			h.Write([]byte{3, 0})
		}
	}
}

// Row is a tuple of datums.
type Row []D

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Key encoding: each datum is rendered as a self-delimiting binary record,
// so the concatenation over a row is injective up to DistinctEqual — two rows
// share a key iff they are column-wise DistinctEqual. Tags:
//
//	0x00                     NULL (all NULLs, typed or not, encode alike)
//	0x01 <8 bytes LE>        numeric, as normalized float64 bits (INT 3 == FLOAT 3.0)
//	0x02 <uvarint n> <n b>   string, length-prefixed (no escaping, no terminator)
//	0x03 / 0x04              FALSE / TRUE
//
// The length prefix (rather than a terminator + escaping) is what makes the
// encoding collision-safe: the fixed-width numeric payload may contain any
// byte, so a terminator-based scheme cannot delimit it unambiguously.
const (
	keyTagNull   = 0x00
	keyTagNum    = 0x01
	keyTagString = 0x02
	keyTagFalse  = 0x03
	keyTagTrue   = 0x04
)

// AppendKey appends d's key encoding to buf and returns the extended buffer.
// Hot paths reuse one buffer per evaluator (`buf = d.AppendKey(buf[:0])`) and
// index maps with string(buf), which Go compiles to an allocation-free lookup.
func (d D) AppendKey(buf []byte) []byte {
	if d.IsNull() {
		return append(buf, keyTagNull)
	}
	switch d.T {
	case TInt, TFloat:
		f := d.AsFloat()
		bits := math.Float64bits(f + 0) // normalize -0.0
		return append(buf, keyTagNum,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	case TString:
		buf = append(buf, keyTagString)
		buf = appendUvarint(buf, uint64(len(d.S)))
		return append(buf, d.S...)
	case TBool:
		if d.B {
			return append(buf, keyTagTrue)
		}
		return append(buf, keyTagFalse)
	}
	return append(buf, keyTagNull)
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// AppendKey appends the row's key encoding to buf and returns the extended
// buffer. The encoding is collision-safe under DistinctEqual semantics; see
// the tag table above.
func AppendKey(buf []byte, r Row) []byte {
	for _, d := range r {
		buf = d.AppendKey(buf)
	}
	return buf
}

// AppendKeyOf appends the key encoding of the selected columns of the row.
func AppendKeyOf(buf []byte, r Row, cols []int) []byte {
	for _, c := range cols {
		buf = r[c].AppendKey(buf)
	}
	return buf
}

// Key returns a string key for the row under DistinctEqual semantics,
// suitable for map-based grouping, distinct, and hash joins. Hot paths
// should prefer AppendKey with a reused buffer.
func (r Row) Key() string {
	return string(AppendKey(make([]byte, 0, 16*len(r)), r))
}

// KeyOf returns the grouping key of the selected columns of the row.
func (r Row) KeyOf(cols []int) string {
	return string(AppendKeyOf(make([]byte, 0, 16*len(cols)), r, cols))
}

// CompareRows orders rows lexicographically with SortCompare per column.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := SortCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpOrdered(int64(len(a)), int64(len(b)))
}
