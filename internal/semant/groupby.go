package semant

import (
	"fmt"
	"strings"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/sql"
)

// buildGroupedTriplet decomposes a grouped block into the paper's group-by
// triplet (§2, Example 2.2): a select box T1 implementing SELECT-FROM-WHERE,
// a group-by box implementing GROUP BY, and another select box implementing
// the HAVING selection (and the final projection). sb is the already-built
// T1 box holding the FROM quantifiers and WHERE predicates.
func (bc *buildCtx) buildGroupedTriplet(s *sql.Select, sb *qgm.Box, sc *scope, top bool) (*qgm.Box, error) {
	t1 := sb
	t1.Name = bc.genName("T")

	// Translate grouping expressions over the FROM scope and expose each as
	// an output of T1.
	var groups []qgm.Expr
	for _, ge := range s.GroupBy {
		e, err := bc.buildScalar(ge, t1, sc)
		if err != nil {
			return nil, err
		}
		groups = append(groups, e)
		name := fmt.Sprintf("g%d", len(groups))
		if cr, ok := ge.(*sql.ColRef); ok {
			name = cr.Name
		}
		t1.Output = append(t1.Output, qgm.OutputCol{Name: name, Expr: e, Type: qgm.TypeOf(e)})
	}

	// A block like SELECT COUNT(*) FROM t produces no grouping columns and
	// no aggregate arguments; give T1 a constant output so every box has at
	// least one column.
	defer func() {
		if len(t1.Output) == 0 {
			t1.Output = append(t1.Output, qgm.OutputCol{
				Name: "one",
				Expr: &qgm.Const{Val: datum.Int(1)},
				Type: datum.TInt,
			})
		}
	}()

	// Group-by box over T1.
	gb := bc.g.NewBox(qgm.KindGroupBy, bc.genName("GB"))
	inQ := bc.g.AddQuantifier(gb, qgm.ForEach, bc.genName("q"), t1)
	for i := range groups {
		gb.GroupBy = append(gb.GroupBy, inQ.Col(i))
		gb.Output = append(gb.Output, qgm.OutputCol{
			Name: t1.Output[i].Name,
			Type: t1.Output[i].Type,
		})
	}

	// HAVING select box over the group-by box.
	hv := bc.g.NewBox(qgm.KindSelect, bc.genName("HV"))
	hq := bc.g.AddQuantifier(hv, qgm.ForEach, bc.genName("q"), gb)

	gctx := &groupedCtx{
		inScope: sc,
		gbQuant: hq,
		groups:  groups,
		t1:      t1,
		gb:      gb,
	}
	gsc := &scope{outer: sc.outer, grouped: gctx}

	// Select list.
	for _, item := range s.Items {
		if item.Star {
			return nil, fmt.Errorf("SELECT * is not allowed with GROUP BY")
		}
		e, err := bc.buildScalar(item.Expr, hv, gsc)
		if err != nil {
			return nil, err
		}
		hv.Output = append(hv.Output, qgm.OutputCol{
			Name: outputName(item, len(hv.Output)),
			Expr: e,
			Type: qgm.TypeOf(e),
		})
	}
	if len(hv.Output) == 0 {
		return nil, fmt.Errorf("empty select list")
	}

	// HAVING predicate.
	if s.Having != nil {
		preds, err := bc.buildGroupedPredicate(normalize(s.Having, false), hv, gsc)
		if err != nil {
			return nil, err
		}
		hv.Preds = append(hv.Preds, preds...)
	}

	if s.Distinct {
		hv.Distinct = qgm.DistinctEnforce
	}
	if top {
		if err := bc.attachOrderLimit(s, hv, gsc); err != nil {
			return nil, err
		}
	}
	return hv, nil
}

// buildGroupedPredicate splits conjuncts of a HAVING predicate. Subquery
// predicates (EXISTS/IN/quantified) are not supported in HAVING.
func (bc *buildCtx) buildGroupedPredicate(e sql.Expr, hv *qgm.Box, gsc *scope) ([]qgm.Expr, error) {
	if b, ok := e.(*sql.Bin); ok && b.Op == sql.OpAnd {
		left, err := bc.buildGroupedPredicate(b.L, hv, gsc)
		if err != nil {
			return nil, err
		}
		right, err := bc.buildGroupedPredicate(b.R, hv, gsc)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	switch e.(type) {
	case *sql.Exists, *sql.QuantCmp:
		return nil, fmt.Errorf("subquery predicates are not supported in HAVING")
	case *sql.In:
		if e.(*sql.In).Sub != nil {
			return nil, fmt.Errorf("subquery predicates are not supported in HAVING")
		}
	}
	pe, err := bc.buildScalar(e, hv, gsc)
	if err != nil {
		return nil, err
	}
	return []qgm.Expr{pe}, nil
}

// buildGroupedScalar translates an expression in a grouped context (select
// list or HAVING of a grouped block): aggregates map onto group-by box
// outputs, other subexpressions must match grouping expressions.
func (bc *buildCtx) buildGroupedScalar(e sql.Expr, box *qgm.Box, gsc *scope) (qgm.Expr, error) {
	gctx := gsc.grouped
	switch x := e.(type) {
	case *sql.FuncCall:
		kind, isAgg := datum.AggKindFromName(x.Name)
		if x.Star {
			if !strings.EqualFold(x.Name, "COUNT") {
				return nil, fmt.Errorf("%s(*) is not a valid aggregate", x.Name)
			}
			return bc.addAggregate(gctx, datum.AggCountStar, nil, false)
		}
		if !isAgg {
			// Scalar functions over grouped expressions.
			out := &qgm.Func{Name: x.Name}
			if _, known := scalarFuncs[x.Name]; !known {
				return nil, fmt.Errorf("unknown function %q", x.Name)
			}
			for _, a := range x.Args {
				e, err := bc.buildGroupedScalar(a, box, gsc)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, e)
			}
			return out, nil
		}
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("%s takes exactly one argument", x.Name)
		}
		if exprHasAggregate(x.Args[0]) {
			return nil, fmt.Errorf("nested aggregates are not allowed")
		}
		// The aggregate argument is evaluated over T1's scope.
		arg, err := bc.buildScalar(x.Args[0], gctx.t1, gctx.inScope)
		if err != nil {
			return nil, err
		}
		if kind == datum.AggSum || kind == datum.AggAvg {
			if err := checkNumeric(arg, kind.String()); err != nil {
				return nil, err
			}
		}
		return bc.addAggregate(gctx, kind, arg, x.Distinct)
	case *sql.Lit:
		return &qgm.Const{Val: x.Value}, nil
	case *sql.Param:
		return bc.noteParam(x)
	case *sql.ScalarSub:
		// Uncorrelated scalar subqueries are allowed; the quantifier
		// attaches to the HAVING box.
		sub, err := bc.buildQuery(x.Sub, gsc.outer, false)
		if err != nil {
			return nil, err
		}
		if len(sub.Output) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column, got %d", len(sub.Output))
		}
		q := bc.g.AddQuantifier(box, qgm.Scalar, bc.genName("sq"), sub)
		return q.Col(0), nil
	}

	// Whole-expression match against a grouping expression.
	if matched, err := bc.matchGroupingExpr(e, gctx); err == nil && matched != nil {
		return matched, nil
	}

	// Otherwise recurse structurally.
	switch x := e.(type) {
	case *sql.ColRef:
		return nil, fmt.Errorf("column %q must appear in GROUP BY or inside an aggregate",
			displayCol(x.Qualifier, x.Name))
	case *sql.Bin:
		l, err := bc.buildGroupedScalar(x.L, box, gsc)
		if err != nil {
			return nil, err
		}
		r, err := bc.buildGroupedScalar(x.R, box, gsc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case sql.OpAnd:
			return &qgm.Logic{Op: qgm.And, Args: []qgm.Expr{l, r}}, nil
		case sql.OpOr:
			return &qgm.Logic{Op: qgm.Or, Args: []qgm.Expr{l, r}}, nil
		case sql.OpEQ, sql.OpNE, sql.OpLT, sql.OpLE, sql.OpGT, sql.OpGE:
			if !datum.Comparable(qgm.TypeOf(l), qgm.TypeOf(r)) {
				return nil, fmt.Errorf("cannot compare %s with %s", qgm.TypeOf(l), qgm.TypeOf(r))
			}
			return &qgm.Cmp{Op: x.Op.CmpOp(), L: l, R: r}, nil
		case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
			return &qgm.Arith{Op: arithOp(x.Op), L: l, R: r}, nil
		case sql.OpConcat:
			return &qgm.Concat{L: l, R: r}, nil
		}
		return nil, fmt.Errorf("unsupported operator %v in grouped context", x.Op)
	case *sql.Unary:
		inner, err := bc.buildGroupedScalar(x.X, box, gsc)
		if err != nil {
			return nil, err
		}
		if x.Op == sql.OpNeg {
			return &qgm.Neg{X: inner}, nil
		}
		return &qgm.Not{X: inner}, nil
	case *sql.IsNull:
		inner, err := bc.buildGroupedScalar(x.X, box, gsc)
		if err != nil {
			return nil, err
		}
		return &qgm.IsNull{X: inner, Negate: x.Not}, nil
	case *sql.Between:
		v, err := bc.buildGroupedScalar(x.X, box, gsc)
		if err != nil {
			return nil, err
		}
		lo, err := bc.buildGroupedScalar(x.Lo, box, gsc)
		if err != nil {
			return nil, err
		}
		hi, err := bc.buildGroupedScalar(x.Hi, box, gsc)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return &qgm.Logic{Op: qgm.Or, Args: []qgm.Expr{
				&qgm.Cmp{Op: datum.LT, L: v, R: lo},
				&qgm.Cmp{Op: datum.GT, L: qgm.CopyExpr(v, nil), R: hi},
			}}, nil
		}
		return &qgm.Logic{Op: qgm.And, Args: []qgm.Expr{
			&qgm.Cmp{Op: datum.GE, L: v, R: lo},
			&qgm.Cmp{Op: datum.LE, L: qgm.CopyExpr(v, nil), R: hi},
		}}, nil
	case *sql.Like:
		inner, err := bc.buildGroupedScalar(x.X, box, gsc)
		if err != nil {
			return nil, err
		}
		return &qgm.Like{X: inner, Pattern: x.Pattern, Negate: x.Not}, nil
	case *sql.Case:
		outc := &qgm.Case{}
		operandDone := x.Operand == nil
		var operand qgm.Expr
		if !operandDone {
			var err error
			operand, err = bc.buildGroupedScalar(x.Operand, box, gsc)
			if err != nil {
				return nil, err
			}
		}
		for _, w := range x.Whens {
			var when qgm.Expr
			var err error
			if operand != nil {
				rhs, err2 := bc.buildGroupedScalar(w.When, box, gsc)
				if err2 != nil {
					return nil, err2
				}
				when = &qgm.Cmp{Op: datum.EQ, L: qgm.CopyExpr(operand, nil), R: rhs}
			} else {
				when, err = bc.buildGroupedScalar(w.When, box, gsc)
				if err != nil {
					return nil, err
				}
			}
			then, err := bc.buildGroupedScalar(w.Then, box, gsc)
			if err != nil {
				return nil, err
			}
			outc.Whens = append(outc.Whens, qgm.CaseWhen{When: when, Then: then})
		}
		if x.Else != nil {
			els, err := bc.buildGroupedScalar(x.Else, box, gsc)
			if err != nil {
				return nil, err
			}
			outc.Else = els
		}
		return outc, nil
	case *sql.In:
		if x.Sub != nil {
			return nil, fmt.Errorf("IN subquery is not supported in grouped expressions")
		}
		lhs, err := bc.buildGroupedScalar(x.X, box, gsc)
		if err != nil {
			return nil, err
		}
		var args []qgm.Expr
		for _, le := range x.List {
			rhs, err := bc.buildGroupedScalar(le, box, gsc)
			if err != nil {
				return nil, err
			}
			op := datum.EQ
			if x.Not {
				op = datum.NE
			}
			args = append(args, &qgm.Cmp{Op: op, L: lhs, R: rhs})
		}
		if len(args) == 1 {
			return args[0], nil
		}
		if x.Not {
			return &qgm.Logic{Op: qgm.And, Args: args}, nil
		}
		return &qgm.Logic{Op: qgm.Or, Args: args}, nil
	}
	return nil, fmt.Errorf("unsupported expression %T in grouped context", e)
}

// matchGroupingExpr translates e over the input scope and compares it
// structurally with each grouping expression; a match maps to the
// corresponding group-by output column. Translation failures (e.g.
// aggregates inside e) report no match rather than an error.
func (bc *buildCtx) matchGroupingExpr(e sql.Expr, gctx *groupedCtx) (qgm.Expr, error) {
	if exprHasAggregate(e) {
		return nil, nil
	}
	if containsSubqueryPred(e) {
		return nil, nil
	}
	if _, isScalar := e.(*sql.ScalarSub); isScalar {
		return nil, nil
	}
	// Speculative translation must not leave stray quantifiers behind; the
	// expressions we match (column refs, arithmetic) never add quantifiers.
	te, err := bc.buildScalar(e, gctx.t1, gctx.inScope)
	if err != nil {
		return nil, nil //nolint:nilerr // no match; caller recurses
	}
	for i, ge := range gctx.groups {
		if qgm.EqualExpr(te, ge) {
			return gctx.gbQuant.Col(i), nil
		}
	}
	return nil, nil
}

// addAggregate appends (or reuses) an aggregate in the group-by box,
// returning a reference to its output column on the HAVING quantifier.
func (bc *buildCtx) addAggregate(gctx *groupedCtx, kind datum.AggKind, arg qgm.Expr, distinct bool) (qgm.Expr, error) {
	t1, gb := gctx.t1, gctx.gb
	inQ := gb.Quantifiers[0]

	var argRef qgm.Expr
	if arg != nil {
		// Reuse an existing T1 output carrying the same expression.
		ord := -1
		for i, oc := range t1.Output {
			if oc.Expr != nil && qgm.EqualExpr(oc.Expr, arg) {
				ord = i
				break
			}
		}
		if ord < 0 {
			ord = len(t1.Output)
			t1.Output = append(t1.Output, qgm.OutputCol{
				Name: fmt.Sprintf("a%d", ord),
				Expr: arg,
				Type: qgm.TypeOf(arg),
			})
		}
		argRef = inQ.Col(ord)
	}

	// Reuse an identical aggregate spec.
	for i, a := range gb.Aggs {
		if a.Kind == kind && a.Distinct == distinct &&
			((a.Arg == nil && argRef == nil) || (a.Arg != nil && argRef != nil && qgm.EqualExpr(a.Arg, argRef))) {
			return gctx.gbQuant.Col(len(gb.GroupBy) + i), nil
		}
	}
	gb.Aggs = append(gb.Aggs, qgm.AggSpec{Kind: kind, Arg: argRef, Distinct: distinct})
	inType := datum.TInt
	if argRef != nil {
		inType = qgm.TypeOf(argRef)
	}
	gb.Output = append(gb.Output, qgm.OutputCol{
		Name: strings.ToLower(kind.String()),
		Type: kind.ResultType(inType),
	})
	return gctx.gbQuant.Col(len(gb.GroupBy) + len(gb.Aggs) - 1), nil
}
