package semant

import (
	"fmt"
	"strings"

	"starmagic/internal/catalog"
	"starmagic/internal/sql"
)

// Strata assigns stratum numbers to the catalog's view blobs per the
// paper's §2: build the dependency graph of blobs (an edge from blob U to
// blob V when table U appears in V's FROM clause or subqueries), reduce
// strongly connected components, and topologically sort. Base tables are
// stratum 0. Because recursive views are rejected at definition time, every
// strongly connected component is a single node here; a cycle reports an
// error.
func Strata(cat *catalog.Catalog) (map[string]int, error) {
	strata := map[string]int{}
	for _, t := range cat.Tables() {
		strata[strings.ToLower(t.Name)] = 0
	}

	deps := map[string][]string{}
	for _, v := range cat.Views() {
		q, err := sql.ParseQuery(v.SQL)
		if err != nil {
			return nil, fmt.Errorf("view %q: %w", v.Name, err)
		}
		deps[strings.ToLower(v.Name)] = referencedTables(q)
	}

	// Collapse strongly connected components (recursive view groups) so the
	// reduced dependency graph is acyclic, exactly as §2 prescribes; every
	// blob in an SCC receives the component's stratum number.
	sccOf := sccIndex(deps)
	memo := map[int]int{}
	const inProgress = -1
	var visitSCC func(comp int, members []string) (int, error)
	compMembers := map[int][]string{}
	for name := range deps {
		compMembers[sccOf[name]] = append(compMembers[sccOf[name]], name)
	}
	var visitName func(name string) (int, error)
	visitSCC = func(comp int, members []string) (int, error) {
		if s, ok := memo[comp]; ok {
			if s == inProgress {
				return 0, fmt.Errorf("internal: SCC cycle")
			}
			return s, nil
		}
		memo[comp] = inProgress
		max := 0
		inComp := map[string]bool{}
		for _, m := range members {
			inComp[m] = true
		}
		for _, m := range members {
			for _, r := range deps[m] {
				ref := strings.ToLower(r)
				if inComp[ref] {
					continue
				}
				s, err := visitName(ref)
				if err != nil {
					return 0, err
				}
				if s > max {
					max = s
				}
			}
		}
		memo[comp] = max + 1
		return max + 1, nil
	}
	visitName = func(name string) (int, error) {
		if s, ok := strata[name]; ok {
			return s, nil
		}
		if _, ok := deps[name]; !ok {
			return 0, fmt.Errorf("unknown table or view %q", name)
		}
		comp := sccOf[name]
		s, err := visitSCC(comp, compMembers[comp])
		if err != nil {
			return 0, err
		}
		strata[name] = s
		return s, nil
	}
	for name := range deps {
		if _, err := visitName(name); err != nil {
			return nil, err
		}
	}
	return strata, nil
}

// sccIndex assigns a component id to every view using Tarjan's algorithm
// over the view dependency graph (base tables are leaves and excluded).
func sccIndex(deps map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter, compCount := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range deps[v] {
			w = strings.ToLower(w)
			if _, isView := deps[w]; !isView {
				continue // base table
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			compCount++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compCount
				if w == v {
					break
				}
			}
		}
	}
	for v := range deps {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

// referencedTables collects the table/view names referenced in the FROM
// clauses and subqueries of a query expression.
func referencedTables(q sql.QueryExpr) []string {
	var out []string
	var visitQuery func(sql.QueryExpr)
	var visitExpr func(sql.Expr)
	visitExpr = func(e sql.Expr) {
		walkSQLExpr(e, func(x sql.Expr) bool {
			switch s := x.(type) {
			case *sql.Exists:
				visitQuery(s.Sub)
			case *sql.In:
				if s.Sub != nil {
					visitQuery(s.Sub)
				}
			case *sql.QuantCmp:
				visitQuery(s.Sub)
			case *sql.ScalarSub:
				visitQuery(s.Sub)
			}
			return true
		})
	}
	visitQuery = func(qe sql.QueryExpr) {
		switch s := qe.(type) {
		case *sql.Select:
			for _, f := range s.From {
				if f.Subquery != nil {
					visitQuery(f.Subquery)
				} else {
					out = append(out, f.Table)
				}
			}
			for _, it := range s.Items {
				if !it.Star {
					visitExpr(it.Expr)
				}
			}
			visitExpr(s.Where)
			visitExpr(s.Having)
		case *sql.SetOp:
			visitQuery(s.Left)
			visitQuery(s.Right)
		}
	}
	visitQuery(q)
	return out
}
