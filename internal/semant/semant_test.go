package semant

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/sql"
)

// paperCatalog builds the schema of the paper's Example 1.1.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{
		Name: "department",
		Columns: []catalog.Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys: [][]int{{0}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(&catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "empname", Type: datum.TString},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys: [][]int{{0}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "mgrSal",
		Columns: []string{"empno", "empname", "workdept", "salary"},
		SQL: "SELECT e.empno, e.empname, e.workdept, e.salary " +
			"FROM employee e, department d WHERE e.empno = d.mgrno",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "avgMgrSal",
		Columns: []string{"workdept", "avgsalary"},
		SQL:     "SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept",
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func build(t *testing.T, cat *catalog.Catalog, query string) *qgm.Graph {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build %q: %v", query, err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return g
}

func buildErr(t *testing.T, cat *catalog.Catalog, query string) error {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = NewBuilder(cat).Build(q)
	if err == nil {
		t.Fatalf("build %q succeeded; want error", query)
	}
	return err
}

func TestBuildSimpleSelect(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT d.deptname, d.deptno FROM department d WHERE d.deptname = 'Planning'")
	top := g.Top
	if top.Kind != qgm.KindSelect || len(top.Quantifiers) != 1 || len(top.Preds) != 1 {
		t.Fatalf("top: %s", g.Dump())
	}
	if top.Output[0].Name != "deptname" || top.Output[0].Type != datum.TString {
		t.Errorf("output[0] = %+v", top.Output[0])
	}
	if top.Output[1].Type != datum.TInt {
		t.Errorf("output[1] = %+v", top.Output[1])
	}
}

func TestBuildUnqualifiedColumns(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT deptname FROM department WHERE deptno = 1")
	if len(g.Top.Output) != 1 {
		t.Fatal("bad output")
	}
}

func TestBuildStar(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT * FROM department d, employee e")
	if got := len(g.Top.Output); got != 7 {
		t.Fatalf("star expanded to %d columns; want 7", got)
	}
	g = build(t, cat, "SELECT e.* FROM department d, employee e")
	if got := len(g.Top.Output); got != 4 {
		t.Fatalf("e.* expanded to %d columns; want 4", got)
	}
}

func TestBuildPaperQueryD(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`)
	// Expected structure: top select over department + avgMgrSal blob;
	// the avgMgrSal blob is the group-by triplet HV -> GB -> T1; T1 is the
	// merged-from mgrSal view... no, before rewrite mgrSal is its own blob:
	// HV -> GB -> T1 -> MGRSAL -> {EMPLOYEE, DEPARTMENT}.
	s := g.Stats()
	if s.GroupBys != 1 {
		t.Errorf("group-by boxes = %d; want 1", s.GroupBys)
	}
	// Boxes: QUERY, DEPARTMENT, HV, GB, T1, MGRSAL, EMPLOYEE = 7.
	if s.Boxes != 7 {
		t.Errorf("boxes = %d; want 7\n%s", s.Boxes, g.Dump())
	}
	// department must be shared between the query box and the mgrSal view.
	depts := g.BoxesByName("DEPARTMENT")
	if len(depts) != 1 {
		t.Errorf("DEPARTMENT boxes = %d; want 1 (shared)", len(depts))
	}
	if g.UseCount(depts[0]) != 2 {
		t.Errorf("DEPARTMENT uses = %d; want 2", g.UseCount(depts[0]))
	}
	// The avgsalary output must be FLOAT (AVG).
	if ord := g.Top.OutputIndex("avgsalary"); ord < 0 || g.Top.Output[ord].Type != datum.TFloat {
		t.Errorf("avgsalary output wrong: %+v", g.Top.Output)
	}
}

func TestViewSharedAcrossUses(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, `SELECT a.workdept FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept`)
	hv := g.Top.Quantifiers[0].Ranges
	if g.Top.Quantifiers[1].Ranges != hv {
		t.Error("two uses of a view must share one blob")
	}
}

func TestGroupByTriplet(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, `SELECT workdept, AVG(salary), COUNT(*) FROM employee
		GROUP BY workdept HAVING AVG(salary) > 100 AND workdept > 1`)
	hv := g.Top
	if hv.Kind != qgm.KindSelect || len(hv.Preds) != 2 {
		t.Fatalf("having box: %s", g.Dump())
	}
	gb := hv.Quantifiers[0].Ranges
	if gb.Kind != qgm.KindGroupBy {
		t.Fatalf("expected group-by under having: %s", g.Dump())
	}
	if len(gb.GroupBy) != 1 || len(gb.Aggs) != 2 {
		t.Fatalf("gb: groups=%d aggs=%d", len(gb.GroupBy), len(gb.Aggs))
	}
	if gb.Aggs[0].Kind != datum.AggAvg || gb.Aggs[1].Kind != datum.AggCountStar {
		t.Errorf("aggs = %+v", gb.Aggs)
	}
	t1 := gb.Quantifiers[0].Ranges
	if t1.Kind != qgm.KindSelect {
		t.Fatalf("expected T1 select under group-by")
	}
	// AVG(salary) reused between select list and HAVING: only 2 aggs total.
	if len(gb.Output) != 3 {
		t.Errorf("gb outputs = %d; want 3", len(gb.Output))
	}
}

func TestScalarAggregateWithoutGroupBy(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT AVG(salary) FROM employee")
	gb := g.Top.Quantifiers[0].Ranges
	if gb.Kind != qgm.KindGroupBy || len(gb.GroupBy) != 0 || len(gb.Aggs) != 1 {
		t.Fatalf("scalar agg: %s", g.Dump())
	}
}

func TestGroupByExpressionMatching(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT workdept + 1, SUM(salary) FROM employee GROUP BY workdept + 1")
	gb := g.Top.Quantifiers[0].Ranges
	if len(gb.GroupBy) != 1 {
		t.Fatalf("groups = %d", len(gb.GroupBy))
	}
	// Select item "workdept + 1" must map to the grouping output, i.e. the
	// top box output expr is a plain ColRef.
	if _, ok := g.Top.Output[0].Expr.(*qgm.ColRef); !ok {
		t.Errorf("grouping expr not matched: %s", g.Top.Output[0].Expr)
	}
}

func TestGroupByArithmeticOverGroupCol(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT workdept * 2 FROM employee GROUP BY workdept")
	if _, ok := g.Top.Output[0].Expr.(*qgm.Arith); !ok {
		t.Errorf("expected arithmetic over grouping column: %s", g.Top.Output[0].Expr)
	}
}

func TestSubqueryQuantifiers(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		query string
		qtype qgm.QType
	}{
		{"SELECT empno FROM employee e WHERE EXISTS (SELECT 1 FROM department d WHERE d.mgrno = e.empno)", qgm.Exists},
		{"SELECT empno FROM employee e WHERE NOT EXISTS (SELECT 1 FROM department d WHERE d.mgrno = e.empno)", qgm.ForAll},
		{"SELECT empno FROM employee WHERE workdept IN (SELECT deptno FROM department)", qgm.Exists},
		{"SELECT empno FROM employee WHERE workdept NOT IN (SELECT deptno FROM department)", qgm.ForAll},
		{"SELECT empno FROM employee WHERE salary > ALL (SELECT salary FROM employee WHERE workdept = 1)", qgm.ForAll},
		{"SELECT empno FROM employee WHERE salary = ANY (SELECT salary FROM employee WHERE workdept = 1)", qgm.Exists},
	}
	for _, c := range cases {
		g := build(t, cat, c.query)
		var found *qgm.Quantifier
		for _, q := range g.Top.Quantifiers {
			if q.Type != qgm.ForEach {
				found = q
			}
		}
		if found == nil || found.Type != c.qtype {
			t.Errorf("%s: quantifier = %v; want %v", c.query, found, c.qtype)
		}
	}
}

func TestNotExistsMatchPredicate(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT empno FROM employee e WHERE NOT EXISTS (SELECT 1 FROM department d WHERE d.mgrno = e.empno)")
	var match *qgm.Match
	for _, p := range g.Top.Preds {
		if m, ok := p.(*qgm.Match); ok {
			match = m
		}
	}
	if match == nil || match.Truth {
		t.Fatalf("NOT EXISTS should yield Match{Truth: false}: %s", g.Dump())
	}
}

func TestNotInUsesNE(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT empno FROM employee WHERE workdept NOT IN (SELECT deptno FROM department)")
	var cmp *qgm.Cmp
	for _, p := range g.Top.Preds {
		if c, ok := p.(*qgm.Cmp); ok {
			cmp = c
		}
	}
	if cmp == nil || cmp.Op != datum.NE {
		t.Fatalf("NOT IN should produce <> match predicate: %s", g.Dump())
	}
}

func TestNormalizedNegation(t *testing.T) {
	cat := paperCatalog(t)
	// NOT (a = 1 AND b NOT IN ...) pushes through De Morgan; NOT IN list.
	g := build(t, cat, "SELECT empno FROM employee WHERE NOT (workdept = 1 AND empno NOT IN (1, 2))")
	if len(g.Top.Preds) != 1 {
		t.Fatalf("preds = %d", len(g.Top.Preds))
	}
	or, ok := g.Top.Preds[0].(*qgm.Logic)
	if !ok || or.Op != qgm.Or {
		t.Fatalf("expected OR after De Morgan: %s", g.Top.Preds[0])
	}
}

func TestScalarSubquery(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT empno FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)")
	var sq *qgm.Quantifier
	for _, q := range g.Top.Quantifiers {
		if q.Type == qgm.Scalar {
			sq = q
		}
	}
	if sq == nil {
		t.Fatalf("no scalar quantifier: %s", g.Dump())
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, `SELECT empno FROM employee e
		WHERE salary > (SELECT AVG(salary) FROM employee e2 WHERE e2.workdept = e.workdept)`)
	// The correlation: inner T1 box predicate references outer quantifier e.
	var scalarQ *qgm.Quantifier
	for _, q := range g.Top.Quantifiers {
		if q.Type == qgm.Scalar {
			scalarQ = q
		}
	}
	if scalarQ == nil {
		t.Fatal("no scalar quantifier")
	}
	// Walk down to T1 of the inner triplet.
	gb := scalarQ.Ranges.Quantifiers[0].Ranges
	t1 := gb.Quantifiers[0].Ranges
	outerRef := false
	for _, p := range t1.Preds {
		for q := range qgm.RefsQuantifiers(p) {
			if q == g.Top.Quantifiers[0] {
				outerRef = true
			}
		}
	}
	if !outerRef {
		t.Errorf("correlation predicate not found:\n%s", g.Dump())
	}
}

func TestDerivedTable(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT x.workdept FROM (SELECT workdept FROM employee) AS x WHERE x.workdept > 1")
	if g.Top.Quantifiers[0].Ranges.Kind != qgm.KindSelect {
		t.Fatal("derived table should be a select box")
	}
}

func TestSetOps(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT deptno FROM department UNION SELECT workdept FROM employee")
	if g.Top.Kind != qgm.KindUnion || g.Top.Distinct != qgm.DistinctEnforce {
		t.Fatalf("union: %s", g.Dump())
	}
	g = build(t, cat, "SELECT deptno FROM department UNION ALL SELECT workdept FROM employee")
	if g.Top.Distinct != qgm.DistinctPreserve {
		t.Error("UNION ALL should preserve duplicates")
	}
	g = build(t, cat, "SELECT deptno FROM department EXCEPT SELECT workdept FROM employee")
	if g.Top.Kind != qgm.KindExcept {
		t.Error("except kind")
	}
	g = build(t, cat, "SELECT deptno FROM department INTERSECT SELECT workdept FROM employee")
	if g.Top.Kind != qgm.KindIntersect {
		t.Error("intersect kind")
	}
}

func TestSetOpTypeUnification(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT deptno FROM department UNION SELECT salary FROM employee")
	if g.Top.Output[0].Type != datum.TFloat {
		t.Errorf("INT∪FLOAT should be FLOAT, got %s", g.Top.Output[0].Type)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT empno, salary FROM employee ORDER BY salary DESC, 1 LIMIT 3")
	if len(g.OrderBy) != 2 || g.OrderBy[0].Ord != 1 || !g.OrderBy[0].Desc || g.OrderBy[1].Ord != 0 {
		t.Errorf("order by = %+v", g.OrderBy)
	}
	if g.Limit != 3 {
		t.Errorf("limit = %d", g.Limit)
	}
}

func TestDistinct(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT DISTINCT workdept FROM employee")
	if g.Top.Distinct != qgm.DistinctEnforce {
		t.Error("DISTINCT not enforced")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT 1 + 2 AS three")
	if len(g.Top.Quantifiers) != 0 || g.Top.Output[0].Name != "three" {
		t.Fatalf("bad: %s", g.Dump())
	}
}

func TestBuildErrors(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct {
		query   string
		wantSub string
	}{
		{"SELECT x FROM nosuch", "not found"},
		{"SELECT nosuch FROM employee", "not found"},
		{"SELECT deptno FROM department, department", "duplicate table name"},
		{"SELECT workdept FROM employee GROUP BY salary", "GROUP BY"},
		{"SELECT AVG(salary) FROM employee WHERE AVG(salary) > 1", "aggregate"},
		{"SELECT deptno FROM department UNION SELECT deptno, deptname FROM department", "arity"},
		{"SELECT deptno FROM department UNION SELECT deptname FROM department", "type mismatch"},
		{"SELECT empno FROM employee WHERE workdept IN (SELECT deptno, deptname FROM department)", "one column"},
		{"SELECT empno FROM employee WHERE salary > (SELECT deptno, deptname FROM department)", "one column"},
		{"SELECT empno FROM employee WHERE workdept = 1 OR EXISTS (SELECT 1 FROM department)", "OR"},
		{"SELECT empno FROM (SELECT empno FROM employee ORDER BY empno) AS x", "top level"},
		{"SELECT * FROM employee GROUP BY workdept", "GROUP BY"},
		{"SELECT deptname = 1 FROM department", "compare"},
		{"SELECT salary + deptname FROM employee, department", "numeric"},
		{"SELECT MEDIAN(salary) FROM employee GROUP BY workdept", "unknown function"},
		{"SELECT empno LIKE 'x%' FROM employee", "string"},
	}
	for _, c := range cases {
		err := buildErr(t, cat, c.query)
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q error = %q; want substring %q", c.query, err, c.wantSub)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := paperCatalog(t)
	err := buildErr(t, cat, "SELECT empno FROM employee e, employee e2")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error = %q; want ambiguous", err)
	}
}

func TestRecursiveViewBuilds(t *testing.T) {
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{Name: "edge", Columns: []catalog.Column{
		{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "tc",
		Columns: []string{"src", "dst"},
		SQL: "SELECT src, dst FROM edge UNION " +
			"SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src",
	}); err != nil {
		t.Fatal(err)
	}
	g := build(t, cat, "SELECT src, dst FROM tc WHERE src = 1")
	var root *qgm.Box
	for _, b := range g.Reachable() {
		if b.Recursive {
			root = b
		}
	}
	if root == nil {
		t.Fatalf("no fixpoint root:\n%s", g.Dump())
	}
	if !qgm.InCycle(root) {
		t.Error("fixpoint root not in a cycle")
	}
}

func TestRecursiveViewRequiresColumnList(t *testing.T) {
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{Name: "edge", Columns: []catalog.Column{
		{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name: "tc",
		SQL: "SELECT src, dst FROM edge UNION " +
			"SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src",
	}); err != nil {
		t.Fatal(err)
	}
	err := buildErr(t, cat, "SELECT src FROM tc")
	if !strings.Contains(err.Error(), "column list") {
		t.Errorf("error = %v", err)
	}
}

func TestNonStratifiedRecursionRejected(t *testing.T) {
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{Name: "edge", Columns: []catalog.Column{
		{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}}); err != nil {
		t.Fatal(err)
	}
	// Aggregation over the recursive reference: not stratified.
	if err := cat.AddView(&catalog.View{
		Name:    "badagg",
		Columns: []string{"src", "n"},
		SQL: "SELECT src, dst FROM edge UNION " +
			"SELECT src, COUNT(*) FROM badagg GROUPBY src",
	}); err != nil {
		t.Fatal(err)
	}
	err := buildErr(t, cat, "SELECT src FROM badagg")
	if !strings.Contains(err.Error(), "stratified") {
		t.Errorf("error = %v", err)
	}
	// Negation over the recursive reference: not stratified.
	if err := cat.AddView(&catalog.View{
		Name:    "badneg",
		Columns: []string{"src", "dst"},
		SQL: "SELECT src, dst FROM edge UNION " +
			"SELECT e.src, e.dst FROM edge e WHERE NOT EXISTS (SELECT 1 FROM badneg b WHERE b.src = e.src)",
	}); err != nil {
		t.Fatal(err)
	}
	err = buildErr(t, cat, "SELECT src FROM badneg")
	if !strings.Contains(err.Error(), "stratified") {
		t.Errorf("error = %v", err)
	}
}

func TestViewColumnRenaming(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT avgsalary FROM avgMgrSal")
	if len(g.Top.Output) != 1 {
		t.Fatal("bad output")
	}
}

func TestStrata(t *testing.T) {
	cat := paperCatalog(t)
	strata, err := Strata(cat)
	if err != nil {
		t.Fatal(err)
	}
	if strata["employee"] != 0 || strata["department"] != 0 {
		t.Error("base tables must be stratum 0")
	}
	if strata["mgrsal"] != 1 {
		t.Errorf("mgrSal stratum = %d; want 1", strata["mgrsal"])
	}
	if strata["avgmgrsal"] != 2 {
		t.Errorf("avgMgrSal stratum = %d; want 2", strata["avgmgrsal"])
	}
}

func TestStrataCollapsesSCC(t *testing.T) {
	// Mutually recursive views form one strongly connected component: both
	// receive the same stratum number (§2's reduced dependency graph).
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{Name: "base", Columns: []catalog.Column{{Name: "a", Type: datum.TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{Name: "v", SQL: "SELECT a FROM base UNION SELECT a FROM w"}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{Name: "w", SQL: "SELECT a FROM v"}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{Name: "above", SQL: "SELECT a FROM w WHERE a > 0"}); err != nil {
		t.Fatal(err)
	}
	strata, err := Strata(cat)
	if err != nil {
		t.Fatal(err)
	}
	if strata["v"] != strata["w"] {
		t.Errorf("SCC members differ: v=%d w=%d", strata["v"], strata["w"])
	}
	if strata["v"] != 1 {
		t.Errorf("SCC stratum = %d; want 1", strata["v"])
	}
	if strata["above"] != strata["v"]+1 {
		t.Errorf("above stratum = %d; want %d", strata["above"], strata["v"]+1)
	}
}

func TestStrataSubqueryDependencies(t *testing.T) {
	cat := paperCatalog(t)
	if err := cat.AddView(&catalog.View{
		Name: "v",
		SQL:  "SELECT deptno FROM department WHERE deptno IN (SELECT workdept FROM avgMgrSal)",
	}); err != nil {
		t.Fatal(err)
	}
	strata, err := Strata(cat)
	if err != nil {
		t.Fatal(err)
	}
	if strata["v"] != 3 {
		t.Errorf("v stratum = %d; want 3", strata["v"])
	}
}

func TestHiddenSortColumns(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT empname FROM employee ORDER BY salary DESC")
	if g.HiddenCols != 1 {
		t.Fatalf("hidden cols = %d; want 1", g.HiddenCols)
	}
	if len(g.Top.Output) != 2 {
		t.Fatalf("outputs = %d; want 2 (1 visible + 1 hidden)", len(g.Top.Output))
	}
	if len(g.OrderBy) != 1 || g.OrderBy[0].Ord != 1 || !g.OrderBy[0].Desc {
		t.Errorf("order spec = %+v", g.OrderBy)
	}
	// Grouped query ordering by an aggregate not in the select list.
	g = build(t, cat, "SELECT workdept FROM employee GROUP BY workdept ORDER BY COUNT(*) DESC")
	if g.HiddenCols != 1 {
		t.Errorf("grouped hidden cols = %d", g.HiddenCols)
	}
}

func TestCaseTranslation(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT CASE WHEN salary > 500 THEN 'hi' ELSE 'lo' END FROM employee")
	if _, ok := g.Top.Output[0].Expr.(*qgm.Case); !ok {
		t.Fatalf("expr = %T", g.Top.Output[0].Expr)
	}
	if g.Top.Output[0].Type != datum.TString {
		t.Errorf("case type = %v", g.Top.Output[0].Type)
	}
	// Simple CASE normalizes to equality predicates.
	g = build(t, cat, "SELECT CASE workdept WHEN 1 THEN 'a' END FROM employee")
	c := g.Top.Output[0].Expr.(*qgm.Case)
	if _, ok := c.Whens[0].When.(*qgm.Cmp); !ok {
		t.Errorf("simple case when = %T", c.Whens[0].When)
	}
}

func TestCaseErrors(t *testing.T) {
	cat := paperCatalog(t)
	err := buildErr(t, cat, "SELECT CASE deptname WHEN 1 THEN 'x' END FROM department")
	if !strings.Contains(err.Error(), "compare") {
		t.Errorf("error = %v", err)
	}
}

func TestScalarFuncErrors(t *testing.T) {
	cat := paperCatalog(t)
	cases := []struct{ q, sub string }{
		{"SELECT ABS(deptname) FROM department", "numeric"},
		{"SELECT UPPER(deptno) FROM department", "string"},
		{"SELECT NULLIF(deptno) FROM department", "arguments"},
		{"SELECT BOGUSFN(deptno) FROM department", "unknown function"},
	}
	for _, c := range cases {
		err := buildErr(t, cat, c.q)
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%q error = %v; want %q", c.q, err, c.sub)
		}
	}
}

func TestViewColumnCountMismatch(t *testing.T) {
	cat := paperCatalog(t)
	if err := cat.AddView(&catalog.View{
		Name:    "badcols",
		Columns: []string{"a", "b", "c"},
		SQL:     "SELECT deptno FROM department",
	}); err != nil {
		t.Fatal(err)
	}
	err := buildErr(t, cat, "SELECT a FROM badcols")
	if !strings.Contains(err.Error(), "columns") {
		t.Errorf("error = %v", err)
	}
}

func TestGroupedScalarFunc(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, "SELECT COALESCE(workdept, -1), ABS(SUM(salary)) FROM employee GROUP BY workdept")
	if len(g.Top.Output) != 2 {
		t.Fatal("outputs")
	}
	if _, ok := g.Top.Output[1].Expr.(*qgm.Func); !ok {
		t.Errorf("ABS over aggregate = %T", g.Top.Output[1].Expr)
	}
}

func TestGroupedBetweenAndInList(t *testing.T) {
	cat := paperCatalog(t)
	g := build(t, cat, `SELECT workdept FROM employee GROUP BY workdept
		HAVING COUNT(*) BETWEEN 1 AND 10 AND workdept IN (1, 2, 3)`)
	if len(g.Top.Preds) != 3 { // BETWEEN expands to two conjuncts... no: one AND-arg each
		// BETWEEN becomes Logic(And) single pred + IN single pred = 2
		if len(g.Top.Preds) != 2 {
			t.Errorf("having preds = %d", len(g.Top.Preds))
		}
	}
}

func TestSetOpViewExpansion(t *testing.T) {
	cat := paperCatalog(t)
	if err := cat.AddView(&catalog.View{
		Name: "unionview",
		SQL:  "SELECT deptno FROM department UNION SELECT workdept FROM employee",
	}); err != nil {
		t.Fatal(err)
	}
	g := build(t, cat, "SELECT deptno FROM unionview WHERE deptno = 1")
	found := false
	for _, b := range g.Reachable() {
		if b.Kind == qgm.KindUnion {
			found = true
		}
	}
	if !found {
		t.Error("union view not expanded to a union box")
	}
}

func TestInsertSelectParses(t *testing.T) {
	st, err := sql.Parse("INSERT INTO t SELECT a, b FROM u WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*sql.Insert)
	if ins.Query == nil || ins.Rows != nil {
		t.Errorf("insert = %+v", ins)
	}
}
