package semant

import "fmt"

// NotFoundError is a name-resolution failure: the query references a table,
// view, or column the catalog does not know. It is exported (and re-exported
// from the root package) so API consumers and the wire server can map it onto
// a precise error class — MySQL's ER_NO_SUCH_TABLE/ER_BAD_FIELD_ERROR —
// instead of string-matching the message.
type NotFoundError struct {
	// Kind is "table" (covers views too) or "column".
	Kind string
	// Name is the unresolved identifier; Qualifier is the table qualifier of
	// a column reference, when one was written.
	Name      string
	Qualifier string
}

func (e *NotFoundError) Error() string {
	switch {
	case e.Kind == "column" && e.Qualifier != "":
		return fmt.Sprintf("column %q not found in %q", e.Name, e.Qualifier)
	case e.Kind == "column":
		return fmt.Sprintf("column %q not found", e.Name)
	}
	return fmt.Sprintf("table or view %q not found", e.Name)
}
