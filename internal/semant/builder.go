// Package semant translates parsed SQL (internal/sql) into the Query Graph
// Model (internal/qgm): it resolves names, expands views into shared blobs,
// decomposes GROUP BY blocks into the paper's group-by triplets (§2),
// converts subqueries into E/A/S quantifiers with correlation edges, and
// assigns stratum numbers to view blobs.
package semant

import (
	"fmt"
	"strings"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/sql"
)

// Builder translates queries against a catalog.
type Builder struct {
	cat *catalog.Catalog
}

// NewBuilder returns a Builder over the catalog.
func NewBuilder(cat *catalog.Catalog) *Builder {
	return &Builder{cat: cat}
}

// Build translates a query expression into a fresh QGM graph.
func (b *Builder) Build(q sql.QueryExpr) (*qgm.Graph, error) {
	bc := &buildCtx{
		cat:          b.cat,
		g:            qgm.NewGraph(),
		views:        map[string]*qgm.Box{},
		bases:        map[string]*qgm.Box{},
		expanding:    map[string]bool{},
		placeholders: map[string]*qgm.Box{},
	}
	top, err := bc.buildQuery(q, nil, true)
	if err != nil {
		return nil, err
	}
	bc.g.Top = top
	bc.g.NumParams = bc.numParams
	bc.g.GC()
	if err := bc.g.Check(); err != nil {
		return nil, fmt.Errorf("semant: internal error: %w", err)
	}
	return bc.g, nil
}

// buildCtx carries per-build state.
type buildCtx struct {
	cat *catalog.Catalog
	g   *qgm.Graph

	// views caches the root box of each expanded view: multiple uses share
	// one blob (common subexpression, §2).
	views map[string]*qgm.Box
	// bases caches base-table boxes.
	bases map[string]*qgm.Box
	// expanding detects recursive view definitions.
	expanding map[string]bool
	// placeholders holds the fixpoint root created for a view that turned
	// out to reference itself during expansion.
	placeholders map[string]*qgm.Box

	nameSeq int
	// numParams tracks the highest parameter ordinal bound so far, plus one.
	numParams int
	// inView is true while expanding a view body; views are closed
	// definitions stored as text, so placeholders are rejected there.
	inView bool
}

func (bc *buildCtx) genName(prefix string) string {
	bc.nameSeq++
	return fmt.Sprintf("%s%d", prefix, bc.nameSeq)
}

// noteParam records a bound placeholder and returns its QGM node.
func (bc *buildCtx) noteParam(x *sql.Param) (qgm.Expr, error) {
	if bc.inView {
		return nil, fmt.Errorf("parameters (?) are not allowed in view definitions")
	}
	if x.Ord+1 > bc.numParams {
		bc.numParams = x.Ord + 1
	}
	return &qgm.Param{Ord: x.Ord, Type: datum.TNull}, nil
}

// scope is a name-resolution scope: the F quantifiers of one box under
// construction, linked to enclosing scopes for correlation.
type scope struct {
	outer  *scope
	quants []*qgm.Quantifier
	// grouped, when non-nil, redirects resolution through a group-by box
	// (select list and HAVING of a grouped block).
	grouped *groupedCtx
}

// groupedCtx maps expressions over the input (T1) scope onto the outputs of
// a group-by box.
type groupedCtx struct {
	inScope *scope          // scope over T1's quantifiers
	gbQuant *qgm.Quantifier // quantifier over the group-by box
	groups  []qgm.Expr      // translated grouping expressions (over T1)
	t1      *qgm.Box        // the T1 select box (receives agg-arg outputs)
	gb      *qgm.Box        // the group-by box (receives agg specs)
}

// resolveColumn finds the quantifier and output ordinal for a column
// reference, searching the current scope then outer scopes.
func (s *scope) resolveColumn(qual, name string) (*qgm.Quantifier, int, error) {
	for sc := s; sc != nil; sc = sc.outer {
		if sc.grouped != nil {
			// Grouped scopes resolve differently; handled by the caller.
			// Fall through to inScope for correlation from subqueries is
			// not supported through grouping.
			continue
		}
		var found *qgm.Quantifier
		ord := -1
		for _, q := range sc.quants {
			if qual != "" && !strings.EqualFold(q.Name, qual) {
				continue
			}
			if i := q.Ranges.OutputIndex(name); i >= 0 {
				if found != nil {
					return nil, 0, fmt.Errorf("ambiguous column %q", displayCol(qual, name))
				}
				found, ord = q, i
			} else if qual != "" && strings.EqualFold(q.Name, qual) {
				return nil, 0, &NotFoundError{Kind: "column", Name: name, Qualifier: qual}
			}
		}
		if found != nil {
			return found, ord, nil
		}
	}
	return nil, 0, &NotFoundError{Kind: "column", Name: displayCol(qual, name)}
}

func displayCol(qual, name string) string {
	if qual != "" {
		return qual + "." + name
	}
	return name
}

// buildQuery builds a query expression and returns its root box. When top
// is true, ORDER BY/LIMIT are attached to the graph; otherwise they are
// rejected (subqueries and views cannot order).
func (bc *buildCtx) buildQuery(q sql.QueryExpr, outer *scope, top bool) (*qgm.Box, error) {
	switch qq := q.(type) {
	case *sql.Select:
		return bc.buildSelect(qq, outer, top)
	case *sql.SetOp:
		return bc.buildSetOp(qq, outer, top)
	}
	return nil, fmt.Errorf("unsupported query expression %T", q)
}

func (bc *buildCtx) buildSetOp(s *sql.SetOp, outer *scope, top bool) (*qgm.Box, error) {
	// "a UNION b ORDER BY x LIMIT n": the grammar attaches ORDER BY/LIMIT
	// to the rightmost SELECT; at the top level they belong to the whole
	// set operation. Hoist them before building.
	var hoistOrder []sql.OrderItem
	hoistLimit := int64(-1)
	if top {
		if rsel, ok := s.Right.(*sql.Select); ok && (len(rsel.OrderBy) > 0 || rsel.Limit >= 0) {
			hoistOrder, rsel.OrderBy = rsel.OrderBy, nil
			hoistLimit, rsel.Limit = rsel.Limit, -1
		}
	}
	left, err := bc.buildQuery(s.Left, outer, false)
	if err != nil {
		return nil, err
	}
	right, err := bc.buildQuery(s.Right, outer, false)
	if err != nil {
		return nil, err
	}
	if len(left.Output) != len(right.Output) {
		return nil, fmt.Errorf("%s operands have different arity: %d vs %d",
			s.Op, len(left.Output), len(right.Output))
	}
	var kind qgm.BoxKind
	switch s.Op {
	case sql.Union:
		kind = qgm.KindUnion
	case sql.Intersect:
		kind = qgm.KindIntersect
	case sql.Except:
		kind = qgm.KindExcept
	}
	box := bc.g.NewBox(kind, strings.ToUpper(s.Op.String()))
	bc.g.AddQuantifier(box, qgm.ForEach, bc.genName("q"), left)
	bc.g.AddQuantifier(box, qgm.ForEach, bc.genName("q"), right)
	if s.All {
		box.Distinct = qgm.DistinctPreserve
	} else {
		box.Distinct = qgm.DistinctEnforce
	}
	for i, oc := range left.Output {
		t := oc.Type
		rt := right.Output[i].Type
		if t != rt {
			switch {
			case t == datum.TNull:
				t = rt
			case rt == datum.TNull:
				// keep t
			case (t == datum.TInt || t == datum.TFloat) && (rt == datum.TInt || rt == datum.TFloat):
				t = datum.TFloat
			default:
				return nil, fmt.Errorf("%s column %d type mismatch: %s vs %s", s.Op, i+1, t, rt)
			}
		}
		box.Output = append(box.Output, qgm.OutputCol{Name: oc.Name, Type: t})
	}
	if top {
		for _, oi := range hoistOrder {
			ord := -1
			switch e := oi.Expr.(type) {
			case *sql.Lit:
				if e.Value.T == datum.TInt {
					ord = int(e.Value.I) - 1
				}
			case *sql.ColRef:
				if e.Qualifier == "" {
					ord = box.OutputIndex(e.Name)
				}
			}
			if ord < 0 || ord >= len(box.Output) {
				return nil, fmt.Errorf("ORDER BY over a set operation must name an output column or ordinal")
			}
			bc.g.OrderBy = append(bc.g.OrderBy, qgm.OrderSpec{Ord: ord, Desc: oi.Desc})
		}
		bc.g.Limit = hoistLimit
	}
	return box, nil
}

func (bc *buildCtx) buildSelect(s *sql.Select, outer *scope, top bool) (*qgm.Box, error) {
	if !top && (len(s.OrderBy) > 0 || s.Limit >= 0) {
		return nil, fmt.Errorf("ORDER BY/LIMIT are only allowed at the top level")
	}

	// 1. FROM clause → select box with F quantifiers.
	sb := bc.g.NewBox(qgm.KindSelect, bc.genName("SEL"))
	sc := &scope{outer: outer}
	seenNames := map[string]bool{}
	for _, ref := range s.From {
		var child *qgm.Box
		var err error
		if ref.Subquery != nil {
			child, err = bc.buildQuery(ref.Subquery, outer, false)
		} else {
			child, err = bc.resolveTable(ref.Table)
		}
		if err != nil {
			return nil, err
		}
		name := ref.Name()
		if name == "" {
			name = bc.genName("q")
		}
		key := strings.ToLower(name)
		if seenNames[key] {
			return nil, fmt.Errorf("duplicate table name/alias %q in FROM", name)
		}
		seenNames[key] = true
		q := bc.g.AddQuantifier(sb, qgm.ForEach, name, child)
		sc.quants = append(sc.quants, q)
	}

	// 2. WHERE clause.
	if s.Where != nil {
		preds, err := bc.buildPredicate(normalize(s.Where, false), sb, sc)
		if err != nil {
			return nil, err
		}
		sb.Preds = append(sb.Preds, preds...)
	}

	hasAggs := selectHasAggregates(s)
	if len(s.GroupBy) == 0 && !hasAggs {
		// Plain block: one select box.
		if err := bc.buildSelectList(s, sb, sc); err != nil {
			return nil, err
		}
		if s.Distinct {
			sb.Distinct = qgm.DistinctEnforce
		}
		if top {
			if err := bc.attachOrderLimit(s, sb, sc); err != nil {
				return nil, err
			}
		}
		return sb, nil
	}

	// 3. Grouped block → group-by triplet (§2): sb is T1; build the
	// group-by box and the HAVING select box.
	return bc.buildGroupedTriplet(s, sb, sc, top)
}

// resolveTable resolves a FROM-clause name to a base-table box or an
// expanded view blob, sharing previously created boxes.
func (bc *buildCtx) resolveTable(name string) (*qgm.Box, error) {
	key := strings.ToLower(name)
	if t, ok := bc.cat.Table(name); ok {
		if b, ok := bc.bases[key]; ok {
			return b, nil
		}
		b := bc.g.NewBox(qgm.KindBaseTable, strings.ToUpper(t.Name))
		b.Table = t
		for _, c := range t.Columns {
			b.Output = append(b.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
		}
		bc.bases[key] = b
		return b, nil
	}
	if v, ok := bc.cat.View(name); ok {
		if b, ok := bc.views[key]; ok {
			return b, nil
		}
		if bc.expanding[key] {
			// Self-reference: the view is recursive. Hand back (creating on
			// first use) the fixpoint placeholder; the executor iterates it
			// to a fixpoint with set semantics. The view must declare its
			// column list so the placeholder's arity is known here.
			if p, ok := bc.placeholders[key]; ok {
				return p, nil
			}
			if len(v.Columns) == 0 {
				return nil, fmt.Errorf("recursive view %q must declare its column list", name)
			}
			p := bc.g.NewBox(qgm.KindSelect, strings.ToUpper(v.Name))
			p.Recursive = true
			p.Distinct = qgm.DistinctEnforce // fixpoint runs with set semantics
			for _, cn := range v.Columns {
				p.Output = append(p.Output, qgm.OutputCol{Name: cn})
			}
			bc.placeholders[key] = p
			return p, nil
		}
		bc.expanding[key] = true
		defer delete(bc.expanding, key)
		q, err := sql.ParseQuery(v.SQL)
		if err != nil {
			return nil, fmt.Errorf("view %q: %w", name, err)
		}
		// Views are closed: no outer scope, no query parameters.
		savedInView := bc.inView
		bc.inView = true
		b, err := bc.buildQuery(q, nil, false)
		bc.inView = savedInView
		if err != nil {
			return nil, fmt.Errorf("view %q: %w", name, err)
		}
		if len(v.Columns) > 0 {
			if len(v.Columns) != len(b.Output) {
				return nil, fmt.Errorf("view %q declares %d columns but query yields %d",
					name, len(v.Columns), len(b.Output))
			}
			for i, cn := range v.Columns {
				b.Output[i].Name = cn
			}
		}
		b.Name = strings.ToUpper(v.Name)
		if p, ok := bc.placeholders[key]; ok {
			// Tie the fixpoint knot: the placeholder becomes an identity
			// select over the body, completing the cycle.
			if len(p.Output) != len(b.Output) {
				return nil, fmt.Errorf("recursive view %q declares %d columns but query yields %d",
					name, len(p.Output), len(b.Output))
			}
			pq := bc.g.AddQuantifier(p, qgm.ForEach, "rec", b)
			for i := range p.Output {
				p.Output[i].Expr = pq.Col(i)
				p.Output[i].Type = b.Output[i].Type
			}
			// Patch the TNull placeholder types now that the body is known.
			if err := bc.checkStratified(p, b, v.Name); err != nil {
				return nil, err
			}
			bc.views[key] = p
			return p, nil
		}
		bc.views[key] = b
		return b, nil
	}
	return nil, &NotFoundError{Kind: "table", Name: name}
}

// checkStratified rejects non-stratified recursion: on any cycle path from
// the body back to the fixpoint root, aggregation (group-by) and
// non-monotone operations (EXCEPT, INTERSECT, universal quantification)
// are not allowed — the paper's EMST covers recursion "with stratified
// negation and aggregation", meaning such operations may only consume a
// completed lower stratum.
func (bc *buildCtx) checkStratified(root, body *qgm.Box, viewName string) error {
	seen := map[*qgm.Box]bool{}
	var reaches func(b *qgm.Box) bool
	reaches = func(b *qgm.Box) bool {
		if b == root {
			return true
		}
		if b == nil || seen[b] {
			return false
		}
		seen[b] = true
		for _, q := range b.Quantifiers {
			if reaches(q.Ranges) {
				return true
			}
		}
		return false
	}
	// Walk every box reachable from the body; boxes on a cycle (they reach
	// root) must be select boxes referenced through ForEach/Exists
	// quantifiers only.
	visited := map[*qgm.Box]bool{}
	var walk func(b *qgm.Box) error
	walk = func(b *qgm.Box) error {
		if b == nil || visited[b] {
			return nil
		}
		visited[b] = true
		for _, q := range b.Quantifiers {
			child := q.Ranges
			seen = map[*qgm.Box]bool{}
			if child == root || reaches(child) {
				switch b.Kind {
				case qgm.KindGroupBy, qgm.KindExcept, qgm.KindIntersect:
					return fmt.Errorf("recursive view %q is not stratified: %s over the recursion",
						viewName, b.Kind)
				}
				if q.Type == qgm.ForAll {
					return fmt.Errorf("recursive view %q is not stratified: negation over the recursion", viewName)
				}
			}
			if child != root {
				if err := walk(child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(body)
}

// buildSelectList resolves the select list of an ungrouped block into box
// outputs.
func (bc *buildCtx) buildSelectList(s *sql.Select, sb *qgm.Box, sc *scope) error {
	for _, item := range s.Items {
		if item.Star {
			if err := bc.expandStar(item.Qualifier, sb, sc); err != nil {
				return err
			}
			continue
		}
		if exprHasAggregate(item.Expr) {
			return fmt.Errorf("aggregate in select list requires GROUP BY handling (internal error)")
		}
		e, err := bc.buildScalar(item.Expr, sb, sc)
		if err != nil {
			return err
		}
		sb.Output = append(sb.Output, qgm.OutputCol{
			Name: outputName(item, len(sb.Output)),
			Expr: e,
			Type: qgm.TypeOf(e),
		})
	}
	if len(sb.Output) == 0 {
		return fmt.Errorf("empty select list")
	}
	return nil
}

func (bc *buildCtx) expandStar(qual string, sb *qgm.Box, sc *scope) error {
	matched := false
	for _, q := range sc.quants {
		if qual != "" && !strings.EqualFold(q.Name, qual) {
			continue
		}
		matched = true
		for i, oc := range q.Ranges.Output {
			sb.Output = append(sb.Output, qgm.OutputCol{
				Name: oc.Name,
				Expr: q.Col(i),
				Type: oc.Type,
			})
		}
	}
	if !matched {
		if qual != "" {
			return fmt.Errorf("%s.* does not match any table", qual)
		}
		return fmt.Errorf("SELECT * with empty FROM")
	}
	return nil
}

// outputName picks the output column name for a select item: alias, else
// the column's own name, else a positional name.
func outputName(item sql.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sql.ColRef); ok {
		return cr.Name
	}
	if fc, ok := item.Expr.(*sql.FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col%d", pos+1)
}

// attachOrderLimit resolves top-level ORDER BY and LIMIT onto the graph.
// Ordering expressions that are not output columns become hidden trailing
// outputs, trimmed by the executor after sorting.
func (bc *buildCtx) attachOrderLimit(s *sql.Select, topBox *qgm.Box, sc *scope) error {
	visible := len(topBox.Output)
	for _, oi := range s.OrderBy {
		ord := -1
		switch e := oi.Expr.(type) {
		case *sql.Lit:
			if e.Value.T != datum.TInt {
				return fmt.Errorf("ORDER BY literal must be an integer ordinal")
			}
			ord = int(e.Value.I) - 1
			if ord < 0 || ord >= visible {
				return fmt.Errorf("ORDER BY ordinal %d out of range", e.Value.I)
			}
		case *sql.ColRef:
			if e.Qualifier == "" {
				ord = topBox.OutputIndex(e.Name)
			}
		}
		if ord < 0 {
			// Not an output column: evaluate over the block's scope as a
			// hidden sort column. Under DISTINCT that would change which
			// rows are duplicates, so SQL forbids it.
			if topBox.Distinct == qgm.DistinctEnforce {
				return fmt.Errorf("for SELECT DISTINCT, ORDER BY expressions must appear in the select list")
			}
			he, err := bc.buildScalar(oi.Expr, topBox, sc)
			if err != nil {
				return fmt.Errorf("ORDER BY: %w", err)
			}
			ord = len(topBox.Output)
			topBox.Output = append(topBox.Output, qgm.OutputCol{
				Name: fmt.Sprintf("_order%d", ord),
				Expr: he,
				Type: qgm.TypeOf(he),
			})
			bc.g.HiddenCols++
		}
		bc.g.OrderBy = append(bc.g.OrderBy, qgm.OrderSpec{Ord: ord, Desc: oi.Desc})
	}
	bc.g.Limit = s.Limit
	return nil
}

// selectHasAggregates reports whether the select list or HAVING uses an
// aggregate function.
func selectHasAggregates(s *sql.Select) bool {
	for _, it := range s.Items {
		if !it.Star && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return s.Having != nil // HAVING implies grouping semantics
}

func exprHasAggregate(e sql.Expr) bool {
	found := false
	walkSQLExpr(e, func(x sql.Expr) bool {
		if fc, ok := x.(*sql.FuncCall); ok {
			if _, isAgg := datum.AggKindFromName(fc.Name); isAgg || fc.Star {
				found = true
				return false
			}
		}
		// Do not descend into subqueries: their aggregates are their own.
		switch x.(type) {
		case *sql.ScalarSub, *sql.Exists, *sql.In, *sql.QuantCmp:
			return false
		}
		return true
	})
	return found
}

// walkSQLExpr visits e and, when fn returns true, its children.
func walkSQLExpr(e sql.Expr, fn func(sql.Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *sql.Bin:
		walkSQLExpr(x.L, fn)
		walkSQLExpr(x.R, fn)
	case *sql.Unary:
		walkSQLExpr(x.X, fn)
	case *sql.IsNull:
		walkSQLExpr(x.X, fn)
	case *sql.Between:
		walkSQLExpr(x.X, fn)
		walkSQLExpr(x.Lo, fn)
		walkSQLExpr(x.Hi, fn)
	case *sql.Like:
		walkSQLExpr(x.X, fn)
	case *sql.In:
		walkSQLExpr(x.X, fn)
		for _, le := range x.List {
			walkSQLExpr(le, fn)
		}
	case *sql.QuantCmp:
		walkSQLExpr(x.X, fn)
	case *sql.FuncCall:
		for _, a := range x.Args {
			walkSQLExpr(a, fn)
		}
	case *sql.Case:
		walkSQLExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkSQLExpr(w.When, fn)
			walkSQLExpr(w.Then, fn)
		}
		walkSQLExpr(x.Else, fn)
	}
}
