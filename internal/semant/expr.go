package semant

import (
	"fmt"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/sql"
)

// normalize pushes NOT down to the leaves (negation normal form). Three-
// valued logic validates De Morgan and comparison-negation, so this is
// semantics-preserving; it lets predicate translation and pushdown work on
// positive forms with Not flags at the leaves.
func normalize(e sql.Expr, neg bool) sql.Expr {
	switch x := e.(type) {
	case *sql.Unary:
		if x.Op == sql.OpNot {
			return normalize(x.X, !neg)
		}
		return e
	case *sql.Bin:
		switch x.Op {
		case sql.OpAnd, sql.OpOr:
			op := x.Op
			if neg {
				if op == sql.OpAnd {
					op = sql.OpOr
				} else {
					op = sql.OpAnd
				}
			}
			return &sql.Bin{Op: op, L: normalize(x.L, neg), R: normalize(x.R, neg)}
		case sql.OpEQ, sql.OpNE, sql.OpLT, sql.OpLE, sql.OpGT, sql.OpGE:
			if neg {
				return &sql.Bin{Op: negateCmp(x.Op), L: x.L, R: x.R}
			}
			return x
		default:
			if neg {
				return &sql.Unary{Op: sql.OpNot, X: x}
			}
			return x
		}
	case *sql.IsNull:
		if neg {
			return &sql.IsNull{X: x.X, Not: !x.Not}
		}
		return x
	case *sql.In:
		if neg {
			return &sql.In{X: x.X, List: x.List, Sub: x.Sub, Not: !x.Not}
		}
		return x
	case *sql.Exists:
		if neg {
			return &sql.Exists{Sub: x.Sub, Not: !x.Not}
		}
		return x
	case *sql.Between:
		if neg {
			return &sql.Between{X: x.X, Lo: x.Lo, Hi: x.Hi, Not: !x.Not}
		}
		return x
	case *sql.Like:
		if neg {
			return &sql.Like{X: x.X, Pattern: x.Pattern, Not: !x.Not}
		}
		return x
	case *sql.QuantCmp:
		if neg {
			// NOT (x op ANY S) ≡ x negop ALL S, and dually.
			q := sql.All
			if x.Quant == sql.All {
				q = sql.Any
			}
			return &sql.QuantCmp{X: x.X, Op: negateCmp(x.Op), Quant: q, Sub: x.Sub}
		}
		return x
	case *sql.Lit:
		if neg && x.Value.T == datum.TBool && !x.Value.IsNull() {
			return &sql.Lit{Value: datum.Bool(!x.Value.B)}
		}
		if neg {
			return &sql.Unary{Op: sql.OpNot, X: x}
		}
		return x
	default:
		if neg {
			return &sql.Unary{Op: sql.OpNot, X: e}
		}
		return e
	}
}

func negateCmp(op sql.BinKind) sql.BinKind {
	switch op {
	case sql.OpEQ:
		return sql.OpNE
	case sql.OpNE:
		return sql.OpEQ
	case sql.OpLT:
		return sql.OpGE
	case sql.OpLE:
		return sql.OpGT
	case sql.OpGT:
		return sql.OpLE
	case sql.OpGE:
		return sql.OpLT
	}
	return op
}

// buildPredicate translates a (normalized) WHERE predicate into conjuncts
// for box. Subquery predicates become E/A quantifiers on box with match
// predicates; they are only allowed at the top conjunction level.
func (bc *buildCtx) buildPredicate(e sql.Expr, box *qgm.Box, sc *scope) ([]qgm.Expr, error) {
	if b, ok := e.(*sql.Bin); ok && b.Op == sql.OpAnd {
		left, err := bc.buildPredicate(b.L, box, sc)
		if err != nil {
			return nil, err
		}
		right, err := bc.buildPredicate(b.R, box, sc)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	}
	switch x := e.(type) {
	case *sql.Exists:
		sub, err := bc.buildQuery(x.Sub, sc, false)
		if err != nil {
			return nil, err
		}
		if x.Not {
			q := bc.g.AddQuantifier(box, qgm.ForAll, bc.genName("nex"), sub)
			// ForAll semantics: pass iff every subquery row satisfies the
			// match predicates. FALSE ⇒ pass iff the subquery is empty,
			// which is exactly NOT EXISTS.
			return []qgm.Expr{matchPred(q, &qgm.Const{Val: datum.Bool(false)})}, nil
		}
		q := bc.g.AddQuantifier(box, qgm.Exists, bc.genName("ex"), sub)
		// Exists semantics with an always-true match predicate: pass iff
		// the subquery is non-empty.
		return []qgm.Expr{matchPred(q, &qgm.Const{Val: datum.Bool(true)})}, nil
	case *sql.In:
		if x.Sub == nil {
			return bc.buildInList(x, box, sc)
		}
		lhs, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		sub, err := bc.buildQuery(x.Sub, sc, false)
		if err != nil {
			return nil, err
		}
		if len(sub.Output) != 1 {
			return nil, fmt.Errorf("IN subquery must return exactly one column, got %d", len(sub.Output))
		}
		if err := checkComparable(lhs, subColType(sub, 0), "IN"); err != nil {
			return nil, err
		}
		if x.Not {
			// x NOT IN S ≡ x <> ALL S: pass iff x <> s is TRUE for every s;
			// NULLs on either side yield UNKNOWN and correctly fail the row.
			q := bc.g.AddQuantifier(box, qgm.ForAll, bc.genName("nin"), sub)
			return []qgm.Expr{&qgm.Cmp{Op: datum.NE, L: lhs, R: q.Col(0)}}, nil
		}
		q := bc.g.AddQuantifier(box, qgm.Exists, bc.genName("in"), sub)
		return []qgm.Expr{&qgm.Cmp{Op: datum.EQ, L: lhs, R: q.Col(0)}}, nil
	case *sql.QuantCmp:
		lhs, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		sub, err := bc.buildQuery(x.Sub, sc, false)
		if err != nil {
			return nil, err
		}
		if len(sub.Output) != 1 {
			return nil, fmt.Errorf("quantified subquery must return exactly one column, got %d", len(sub.Output))
		}
		if err := checkComparable(lhs, subColType(sub, 0), "quantified comparison"); err != nil {
			return nil, err
		}
		op := x.Op.CmpOp()
		if x.Quant == sql.Any {
			q := bc.g.AddQuantifier(box, qgm.Exists, bc.genName("any"), sub)
			return []qgm.Expr{&qgm.Cmp{Op: op, L: lhs, R: q.Col(0)}}, nil
		}
		q := bc.g.AddQuantifier(box, qgm.ForAll, bc.genName("all"), sub)
		return []qgm.Expr{&qgm.Cmp{Op: op, L: lhs, R: q.Col(0)}}, nil
	case *sql.Bin:
		if x.Op == sql.OpOr {
			if containsSubqueryPred(x) {
				return nil, fmt.Errorf("subquery predicates under OR are not supported")
			}
		}
		e2, err := bc.buildScalar(e, box, sc)
		if err != nil {
			return nil, err
		}
		return []qgm.Expr{e2}, nil
	default:
		e2, err := bc.buildScalar(e, box, sc)
		if err != nil {
			return nil, err
		}
		return []qgm.Expr{e2}, nil
	}
}

// matchPred builds a predicate that references quantifier q so the executor
// and rewrite rules associate it with q, while having a constant truth
// value. It is rendered as "const OR q.c0 IS NULL AND FALSE"... — no: we
// need a principled marker. We use a comparison that never influences the
// constant: the Logic wrapper below keeps the quantifier reference visible.
func matchPred(q *qgm.Quantifier, c *qgm.Const) qgm.Expr {
	// The executor treats a predicate referencing an E/A quantifier as that
	// quantifier's match predicate. To express EXISTS (no real comparison)
	// we still must reference the quantifier; we use "TRUE OR q.0 = q.0"
	// style constructs nowhere — instead we use the dedicated Match node.
	return &qgm.Match{Q: q, Truth: !c.Val.IsNull() && c.Val.B}
}

func containsSubqueryPred(e sql.Expr) bool {
	found := false
	walkSQLExpr(e, func(x sql.Expr) bool {
		switch x.(type) {
		case *sql.Exists, *sql.QuantCmp:
			found = true
			return false
		case *sql.In:
			if x.(*sql.In).Sub != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (bc *buildCtx) buildInList(x *sql.In, box *qgm.Box, sc *scope) ([]qgm.Expr, error) {
	lhs, err := bc.buildScalar(x.X, box, sc)
	if err != nil {
		return nil, err
	}
	var args []qgm.Expr
	for _, le := range x.List {
		rhs, err := bc.buildScalar(le, box, sc)
		if err != nil {
			return nil, err
		}
		op := datum.EQ
		if x.Not {
			op = datum.NE
		}
		args = append(args, &qgm.Cmp{Op: op, L: lhs, R: rhs})
	}
	if len(args) == 1 {
		return args, nil
	}
	if x.Not {
		// x NOT IN (a, b) ≡ x <> a AND x <> b.
		return args, nil
	}
	return []qgm.Expr{&qgm.Logic{Op: qgm.Or, Args: args}}, nil
}

// buildScalar translates a scalar-valued expression. Scalar subqueries add
// S quantifiers to box.
func (bc *buildCtx) buildScalar(e sql.Expr, box *qgm.Box, sc *scope) (qgm.Expr, error) {
	if sc != nil && sc.grouped != nil {
		return bc.buildGroupedScalar(e, box, sc)
	}
	switch x := e.(type) {
	case *sql.ColRef:
		q, ord, err := sc.resolveColumn(x.Qualifier, x.Name)
		if err != nil {
			return nil, err
		}
		return q.Col(ord), nil
	case *sql.Lit:
		return &qgm.Const{Val: x.Value}, nil
	case *sql.Param:
		return bc.noteParam(x)
	case *sql.Bin:
		l, err := bc.buildScalar(x.L, box, sc)
		if err != nil {
			return nil, err
		}
		r, err := bc.buildScalar(x.R, box, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case sql.OpAnd:
			return &qgm.Logic{Op: qgm.And, Args: []qgm.Expr{l, r}}, nil
		case sql.OpOr:
			return &qgm.Logic{Op: qgm.Or, Args: []qgm.Expr{l, r}}, nil
		case sql.OpEQ, sql.OpNE, sql.OpLT, sql.OpLE, sql.OpGT, sql.OpGE:
			if !datum.Comparable(qgm.TypeOf(l), qgm.TypeOf(r)) {
				return nil, fmt.Errorf("cannot compare %s with %s", qgm.TypeOf(l), qgm.TypeOf(r))
			}
			return &qgm.Cmp{Op: x.Op.CmpOp(), L: l, R: r}, nil
		case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
			if err := checkNumeric(l, x.Op.String()); err != nil {
				return nil, err
			}
			if err := checkNumeric(r, x.Op.String()); err != nil {
				return nil, err
			}
			return &qgm.Arith{Op: arithOp(x.Op), L: l, R: r}, nil
		case sql.OpConcat:
			return &qgm.Concat{L: l, R: r}, nil
		}
		return nil, fmt.Errorf("unsupported binary operator %v", x.Op)
	case *sql.Unary:
		inner, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == sql.OpNeg {
			return &qgm.Neg{X: inner}, nil
		}
		return &qgm.Not{X: inner}, nil
	case *sql.IsNull:
		inner, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		return &qgm.IsNull{X: inner, Negate: x.Not}, nil
	case *sql.Between:
		v, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		lo, err := bc.buildScalar(x.Lo, box, sc)
		if err != nil {
			return nil, err
		}
		hi, err := bc.buildScalar(x.Hi, box, sc)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return &qgm.Logic{Op: qgm.Or, Args: []qgm.Expr{
				&qgm.Cmp{Op: datum.LT, L: v, R: lo},
				&qgm.Cmp{Op: datum.GT, L: qgm.CopyExpr(v, nil), R: hi},
			}}, nil
		}
		return &qgm.Logic{Op: qgm.And, Args: []qgm.Expr{
			&qgm.Cmp{Op: datum.GE, L: v, R: lo},
			&qgm.Cmp{Op: datum.LE, L: qgm.CopyExpr(v, nil), R: hi},
		}}, nil
	case *sql.Like:
		inner, err := bc.buildScalar(x.X, box, sc)
		if err != nil {
			return nil, err
		}
		if t := qgm.TypeOf(inner); t != datum.TString && t != datum.TNull {
			return nil, fmt.Errorf("LIKE requires a string operand, got %s", t)
		}
		return &qgm.Like{X: inner, Pattern: x.Pattern, Negate: x.Not}, nil
	case *sql.ScalarSub:
		sub, err := bc.buildQuery(x.Sub, sc, false)
		if err != nil {
			return nil, err
		}
		if len(sub.Output) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column, got %d", len(sub.Output))
		}
		q := bc.g.AddQuantifier(box, qgm.Scalar, bc.genName("sq"), sub)
		return q.Col(0), nil
	case *sql.Case:
		return bc.buildCase(x, box, sc)
	case *sql.FuncCall:
		if _, isAgg := datum.AggKindFromName(x.Name); isAgg || x.Star {
			return nil, fmt.Errorf("aggregate %s is not allowed here", x.Name)
		}
		return bc.buildScalarFunc(x, box, sc)
	case *sql.In:
		if x.Sub != nil {
			return nil, fmt.Errorf("IN subquery is not allowed in this context")
		}
		// IN-lists can appear anywhere a boolean can (e.g. under OR after
		// negation normalization).
		preds, err := bc.buildInList(x, box, sc)
		if err != nil {
			return nil, err
		}
		if len(preds) == 1 {
			return preds[0], nil
		}
		return &qgm.Logic{Op: qgm.And, Args: preds}, nil
	case *sql.Exists, *sql.QuantCmp:
		return nil, fmt.Errorf("subquery predicate is not allowed in this context")
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// buildCase translates a CASE expression; simple CASE (with an operand)
// normalizes to equality predicates.
func (bc *buildCtx) buildCase(x *sql.Case, box *qgm.Box, sc *scope) (qgm.Expr, error) {
	var operand qgm.Expr
	if x.Operand != nil {
		var err error
		operand, err = bc.buildScalar(x.Operand, box, sc)
		if err != nil {
			return nil, err
		}
	}
	out := &qgm.Case{}
	for _, w := range x.Whens {
		var when qgm.Expr
		var err error
		if operand != nil {
			rhs, err2 := bc.buildScalar(w.When, box, sc)
			if err2 != nil {
				return nil, err2
			}
			if !datum.Comparable(qgm.TypeOf(operand), qgm.TypeOf(rhs)) {
				return nil, fmt.Errorf("CASE: cannot compare %s with %s", qgm.TypeOf(operand), qgm.TypeOf(rhs))
			}
			when = &qgm.Cmp{Op: datum.EQ, L: qgm.CopyExpr(operand, nil), R: rhs}
		} else {
			when, err = bc.buildScalar(normalize(w.When, false), box, sc)
			if err != nil {
				return nil, err
			}
		}
		then, err := bc.buildScalar(w.Then, box, sc)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, qgm.CaseWhen{When: when, Then: then})
	}
	if x.Else != nil {
		els, err := bc.buildScalar(x.Else, box, sc)
		if err != nil {
			return nil, err
		}
		out.Else = els
	}
	return out, nil
}

// scalarFuncs maps supported scalar function names to their arity range.
var scalarFuncs = map[string][2]int{
	"ABS":      {1, 1},
	"UPPER":    {1, 1},
	"LOWER":    {1, 1},
	"LENGTH":   {1, 1},
	"COALESCE": {1, 16},
	"NULLIF":   {2, 2},
}

func (bc *buildCtx) buildScalarFunc(x *sql.FuncCall, box *qgm.Box, sc *scope) (qgm.Expr, error) {
	arity, ok := scalarFuncs[x.Name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", x.Name)
	}
	if len(x.Args) < arity[0] || len(x.Args) > arity[1] {
		return nil, fmt.Errorf("%s: wrong number of arguments (%d)", x.Name, len(x.Args))
	}
	out := &qgm.Func{Name: x.Name}
	for _, a := range x.Args {
		e, err := bc.buildScalar(a, box, sc)
		if err != nil {
			return nil, err
		}
		out.Args = append(out.Args, e)
	}
	switch x.Name {
	case "ABS":
		if err := checkNumeric(out.Args[0], "ABS"); err != nil {
			return nil, err
		}
	case "UPPER", "LOWER", "LENGTH":
		if t := qgm.TypeOf(out.Args[0]); t != datum.TString && t != datum.TNull {
			return nil, fmt.Errorf("%s requires a string argument, got %s", x.Name, t)
		}
	}
	return out, nil
}

func arithOp(op sql.BinKind) datum.ArithOp {
	switch op {
	case sql.OpAdd:
		return datum.Add
	case sql.OpSub:
		return datum.Sub
	case sql.OpMul:
		return datum.Mul
	case sql.OpDiv:
		return datum.Div
	}
	return datum.Mod
}

func checkNumeric(e qgm.Expr, op string) error {
	t := qgm.TypeOf(e)
	if t == datum.TInt || t == datum.TFloat || t == datum.TNull {
		return nil
	}
	return fmt.Errorf("operator %s requires numeric operands, got %s", op, t)
}

func checkComparable(l qgm.Expr, rt datum.Type, what string) error {
	if !datum.Comparable(qgm.TypeOf(l), rt) {
		return fmt.Errorf("%s: cannot compare %s with %s", what, qgm.TypeOf(l), rt)
	}
	return nil
}

func subColType(b *qgm.Box, ord int) datum.Type {
	return b.Output[ord].Type
}
