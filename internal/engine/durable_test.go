package engine

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/wal"
)

// tableImage reads a table's committed rows as a sorted multiset of encoded
// rows — the canonical form the crash tests compare.
func tableImage(t *testing.T, db *Database, table string) []string {
	t.Helper()
	res, err := db.Query("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("read %s: %v", table, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = string(datum.AppendEncodedRow(nil, r))
	}
	sort.Strings(out)
	return out
}

func openDir(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	return db
}

func closeDB(t *testing.T, db *Database) {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// copyDir copies every regular file of src into a fresh temp dir, MANIFEST
// first (the order a crash image is reconstructed in: the manifest names the
// checkpoint the segments extend).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyOne := func(name string) {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Name() == "MANIFEST" {
			copyOne("MANIFEST")
			continue
		}
		names = append(names, e.Name())
	}
	for _, n := range names {
		copyOne(n)
	}
	return dst
}

func TestOpenDirPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, `
		CREATE TABLE emp (id INT, name VARCHAR, salary FLOAT, PRIMARY KEY (id));
		CREATE INDEX emp_name ON emp (name);
		CREATE VIEW cheap (id) AS SELECT id FROM emp WHERE salary < 50;
		INSERT INTO emp VALUES (1, 'alice', 100.5), (2, 'bob', 20), (3, 'carol', 30);
		DELETE FROM emp WHERE id = 2;
		UPDATE emp SET salary = 10 WHERE id = 3;`)
	want := tableImage(t, db, "emp")
	closeDB(t, db)

	db2 := openDir(t, dir)
	defer closeDB(t, db2)
	if got := tableImage(t, db2, "emp"); !equalStrings(got, want) {
		t.Fatalf("recovered image differs:\n got %q\nwant %q", got, want)
	}
	// The view came back and the recovered UPDATE is visible through it.
	res, err := db2.Query("SELECT id FROM cheap")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("view over recovered data: %v", res.Rows)
	}
	// Writes keep flowing after recovery and survive another cycle.
	mustExecT(t, db2, "INSERT INTO emp VALUES (4, 'dave', 5)")
	want2 := tableImage(t, db2, "emp")
	closeDB(t, db2)
	db3 := openDir(t, dir)
	defer closeDB(t, db3)
	if got := tableImage(t, db3, "emp"); !equalStrings(got, want2) {
		t.Fatalf("second recovery differs:\n got %q\nwant %q", got, want2)
	}
	d, n := db3.RecoveryStats()
	if d <= 0 || n == 0 {
		t.Fatalf("recovery stats not reported: %v, %d", d, n)
	}
}

func TestCheckpointThenRecover(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, "CREATE TABLE kv (k INT, v VARCHAR, PRIMARY KEY (k))")
	for i := 0; i < 100; i++ {
		mustExecT(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d')", i, i))
	}
	mustExecT(t, db, "DELETE FROM kv WHERE k < 20")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint traffic, including deletes of checkpointed rows.
	mustExecT(t, db, "DELETE FROM kv WHERE k >= 90")
	mustExecT(t, db, "INSERT INTO kv VALUES (200, 'late')")
	want := tableImage(t, db, "kv")
	m := db.Metrics()
	if m.WAL.Checkpoints != 1 || m.WAL.CheckpointBytes == 0 {
		t.Fatalf("checkpoint metrics: %+v", m.WAL)
	}
	closeDB(t, db)

	db2 := openDir(t, dir)
	defer closeDB(t, db2)
	if got := tableImage(t, db2, "kv"); !equalStrings(got, want) {
		t.Fatalf("post-checkpoint recovery differs:\n got %d rows\nwant %d rows", len(got), len(want))
	}
	// A second checkpoint over recovered state also works.
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
}

// logOracle replays decoded WAL records into an in-memory multiset image —
// the independent model the crash-injection tests compare recovery against.
type logOracle struct {
	tables map[string]map[string]int // table -> encoded row -> live count
}

func newLogOracle() *logOracle { return &logOracle{tables: map[string]map[string]int{}} }

func (o *logOracle) apply(t *testing.T, rec wal.Record) {
	switch rec.Kind {
	case wal.RecDDL:
		up := strings.ToUpper(rec.SQL)
		fields := strings.Fields(rec.SQL)
		switch {
		case strings.HasPrefix(up, "CREATE TABLE "):
			o.tables[strings.ToLower(fields[2])] = map[string]int{}
		case strings.HasPrefix(up, "DROP TABLE "):
			delete(o.tables, strings.ToLower(fields[2]))
		}
	case wal.RecCommit:
		for _, op := range rec.Ops {
			m := o.tables[strings.ToLower(op.Table)]
			if m == nil {
				t.Fatalf("oracle: op on unknown table %q", op.Table)
			}
			k := string(datum.AppendEncodedRow(nil, op.Row))
			if op.Delete {
				if m[k] == 0 {
					t.Fatalf("oracle: delete of absent row in %s", op.Table)
				}
				m[k]--
				if m[k] == 0 {
					delete(m, k)
				}
			} else {
				m[k]++
			}
		}
	}
}

func (o *logOracle) image(table string) []string {
	var out []string
	for k, n := range o.tables[strings.ToLower(table)] {
		for i := 0; i < n; i++ {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TestKillAtRandomOffsetReplayOracle is the replay oracle: a workload's WAL
// is truncated at random byte offsets — simulating a kill -9 mid-write — and
// each truncated image must recover to exactly the committed prefix the
// oracle computes from the surviving records. Record boundaries are included
// so whole-record cuts are always exercised too.
func TestKillAtRandomOffsetReplayOracle(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, "CREATE TABLE t (a INT, b VARCHAR)")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			mustExecT(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'r%d')", i%10, i))
		case 2:
			mustExecT(t, db, fmt.Sprintf("DELETE FROM t WHERE a = %d", rng.Intn(10)))
		case 3:
			mustExecT(t, db, fmt.Sprintf("UPDATE t SET b = 'u%d' WHERE a = %d", i, rng.Intn(10)))
		}
	}
	closeDB(t, db)

	seg := filepath.Join(dir, "wal-1.log")
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	cuts := map[int]bool{0: true, len(full): true}
	// Every record boundary plus random cuts.
	for i := 0; i < 40; i++ {
		cuts[rng.Intn(len(full)+1)] = true
	}
	for _, b := range walBoundaries(full) {
		cuts[b] = true
	}

	for cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			crash := copyDir(t, dir)
			cseg := filepath.Join(crash, "wal-1.log")
			if err := os.WriteFile(cseg, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// Oracle: the committed prefix of the truncated segment.
			oracle := newLogOracle()
			hasTable := false
			if _, err := wal.ScanSegment(cseg, func(rec wal.Record) error {
				oracle.apply(t, rec)
				if rec.Kind == wal.RecDDL {
					hasTable = true
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			rdb := openDir(t, crash)
			defer closeDB(t, rdb)
			if !hasTable {
				// The cut fell before even CREATE TABLE became durable: the
				// database must come back empty.
				if _, err := rdb.Query("SELECT * FROM t"); err == nil {
					t.Fatal("table exists before its DDL was durable")
				}
				return
			}
			got := tableImage(t, rdb, "t")
			if !equalStrings(got, oracle.image("t")) {
				t.Fatalf("cut %d: recovered %d rows, oracle %d rows", cut, len(got), len(oracle.image("t")))
			}
			// The recovered database accepts new writes.
			mustExecT(t, rdb, "INSERT INTO t VALUES (99, 'post')")
		})
	}
}

// walBoundaries walks the documented record framing — 4-byte little-endian
// payload length, 4-byte CRC, payload — and returns the end offset of every
// whole record.
func walBoundaries(data []byte) []int {
	var out []int
	off := 0
	for len(data)-off >= 8 {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n == 0 || len(data)-off-8 < n {
			break
		}
		off += 8 + n
		out = append(out, off)
	}
	return out
}

// TestCrashImageDuringConcurrentWrites snapshots the data directory while
// concurrent committers are running — a live kill -9 image, torn tail and
// all — and checks two invariants of the recovered state: it contains every
// transaction acknowledged before the snapshot started, and it equals
// exactly the committed prefix the oracle reads from the snapshotted log.
func TestCrashImageDuringConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, "CREATE TABLE w (writer INT, seq INT)")

	const writers = 4
	var (
		ackMu sync.Mutex
		acked = map[int64]bool{}
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(w*1_000_000 + seq)
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO w VALUES (%d, %d)", w, seq)); err != nil {
					t.Error(err)
					return
				}
				ackMu.Lock()
				acked[id] = true
				ackMu.Unlock()
			}
		}(w)
	}

	// Let the workload run, then freeze the acked set and snapshot the dir
	// while commits are still in flight.
	for {
		ackMu.Lock()
		n := len(acked)
		ackMu.Unlock()
		if n >= 200 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ackMu.Lock()
	ackedBefore := make(map[int64]bool, len(acked))
	for id := range acked {
		ackedBefore[id] = true
	}
	ackMu.Unlock()
	crash := copyDir(t, dir)
	close(stop)
	wg.Wait()
	closeDB(t, db)

	oracle := newLogOracle()
	if _, err := wal.ScanSegment(filepath.Join(crash, "wal-1.log"), func(rec wal.Record) error {
		oracle.apply(t, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	rdb := openDir(t, crash)
	defer closeDB(t, rdb)
	got := tableImage(t, rdb, "w")
	if !equalStrings(got, oracle.image("w")) {
		t.Fatalf("recovered %d rows, oracle says %d", len(got), len(oracle.image("w")))
	}
	// Every commit acknowledged before the snapshot is in the image: under
	// SyncCommit an ack means the record was fsynced, so the snapshot's log
	// must contain it.
	have := map[int64]bool{}
	res, err := rdb.Query("SELECT writer, seq FROM w")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		have[r[0].I*1_000_000+r[1].I] = true
	}
	for id := range ackedBefore {
		if !have[id] {
			t.Fatalf("acknowledged commit %d lost by the crash image", id)
		}
	}
}

// TestCheckpointConcurrentWithWriters races explicit checkpoints against
// committing writers and verifies no committed row is lost or duplicated
// across the resulting recovery.
func TestCheckpointConcurrentWithWriters(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, "CREATE TABLE c (writer INT, seq INT)")
	// Keep fsync latency out of the loop so the race window stays hot.
	db.SetDurability(wal.SyncNever)

	const writers, perWriter = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO c VALUES (%d, %d)", w, seq)); err != nil {
					t.Error(err)
					return
				}
				if seq%3 == 0 {
					if _, err := db.Exec(fmt.Sprintf("DELETE FROM c WHERE writer = %d AND seq = %d", w, seq)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	ckpts := 0
	for {
		select {
		case <-done:
			goto drained
		default:
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				goto drained
			}
			ckpts++
		}
	}
drained:
	if ckpts == 0 {
		t.Fatal("no checkpoint ran during the workload")
	}
	want := tableImage(t, db, "c")
	closeDB(t, db)

	rdb := openDir(t, dir)
	defer closeDB(t, rdb)
	if got := tableImage(t, rdb, "c"); !equalStrings(got, want) {
		t.Fatalf("after %d concurrent checkpoints: recovered %d rows, want %d", ckpts, len(got), len(want))
	}
}

func TestDurabilityPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"SyncCommit", wal.SyncCommit},
		{"SyncInterval", wal.SyncInterval},
		{"SyncNever", wal.SyncNever},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := openDir(t, dir)
			db.SetDurability(tc.policy)
			mustExecT(t, db, "CREATE TABLE p (x INT); INSERT INTO p VALUES (1), (2), (3)")

			// A kill -9 image taken after the acks must already hold the
			// records under every policy: writes reach the OS before the
			// ack, only the fsync timing differs.
			crash := copyDir(t, dir)
			rdb := openDir(t, crash)
			if got := len(tableImage(t, rdb, "p")); got != 3 {
				t.Fatalf("%s: crash image recovered %d rows, want 3", tc.name, got)
			}
			closeDB(t, rdb)

			m := db.Metrics()
			if tc.policy == wal.SyncCommit && m.WAL.Fsyncs == 0 {
				t.Fatal("SyncCommit made no fsyncs")
			}
			closeDB(t, db)
			db2 := openDir(t, dir)
			defer closeDB(t, db2)
			if got := len(tableImage(t, db2, "p")); got != 3 {
				t.Fatalf("%s: clean close lost rows: %d", tc.name, got)
			}
		})
	}
}

func TestDDLReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, `
		CREATE TABLE a (x INT, PRIMARY KEY (x));
		CREATE TABLE b (y INT, label VARCHAR, UNIQUE (label));
		CREATE VIEW vb (label) AS SELECT label FROM b;
		INSERT INTO a VALUES (1);
		INSERT INTO b VALUES (10, 'ten');
		DROP VIEW vb;
		DROP TABLE a;
		CREATE TABLE a (x VARCHAR);
		INSERT INTO a VALUES ('new-shape');
		CREATE INDEX b_y ON b (y);`)
	want := tableImage(t, db, "a")
	closeDB(t, db)

	db2 := openDir(t, dir)
	defer closeDB(t, db2)
	if got := tableImage(t, db2, "a"); !equalStrings(got, want) {
		t.Fatalf("recreated table differs: %q vs %q", got, want)
	}
	if _, err := db2.Query("SELECT label FROM vb"); err == nil {
		t.Fatal("dropped view survived recovery")
	}
	// The recreated index works against recovered data.
	res, err := db2.Query("SELECT label FROM b WHERE y = 10")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "ten" {
		t.Fatalf("index query after recovery: %v, %v", res, err)
	}
}

func TestWALMetricsAndGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	mustExecT(t, db, "CREATE TABLE g (x INT)")
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO g VALUES (%d)", w*perWriter+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := db.Metrics()
	if m.WAL.Appends < writers*perWriter {
		t.Fatalf("appends = %d, want >= %d", m.WAL.Appends, writers*perWriter)
	}
	if m.WAL.Fsyncs == 0 || m.WAL.Synced < m.WAL.Appends {
		t.Fatalf("durability counters: %+v", m.WAL)
	}
	if m.WAL.GroupCommitMean <= 0 {
		t.Fatalf("group commit mean not computed: %+v", m.WAL)
	}
	closeDB(t, db)
	db2 := openDir(t, dir)
	defer closeDB(t, db2)
	m2 := db2.Metrics()
	if m2.WAL.RecoveryNanos <= 0 || m2.WAL.RecoveryRecords == 0 {
		t.Fatalf("recovery metrics: %+v", m2.WAL)
	}
}

// TestSizeTriggeredCheckpoint drives enough volume through a tiny threshold
// to arm the background checkpoint and waits for it via Close.
func TestSizeTriggeredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDir(t, dir)
	db.SetDurability(wal.SyncNever)
	db.SetCheckpointThreshold(4 << 10)
	mustExecT(t, db, "CREATE TABLE s (x INT, pad VARCHAR)")
	for i := 0; i < 300; i++ {
		mustExecT(t, db, fmt.Sprintf("INSERT INTO s VALUES (%d, 'padding-padding-padding-%d')", i, i))
	}
	want := tableImage(t, db, "s")
	closeDB(t, db)
	// Close drained ckptWG, so counters are settled; verify one fired.
	db2 := openDir(t, dir)
	defer closeDB(t, db2)
	if got := tableImage(t, db2, "s"); !equalStrings(got, want) {
		t.Fatalf("recovery after auto-checkpoint differs: %d vs %d rows", len(got), len(want))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-1.log")); !os.IsNotExist(err) {
		t.Fatal("background checkpoint never rotated the first segment")
	}
}

func mustExecT(t *testing.T, db *Database, script string) {
	t.Helper()
	if _, err := db.Exec(script); err != nil {
		t.Fatalf("exec %q: %v", script, err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
