package engine

// This file is the streaming result API: Rows is a pull cursor fed directly
// by the streaming executor's batch iterator, so result rows flow to the
// caller — or onto the wire, packet by packet — without the full result set
// ever materializing. ExecuteContext (and through it every materializing
// Query* entry point) is a thin drain-everything wrapper over RowsContext,
// so there is exactly one execution path.

import (
	"context"
	"fmt"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/obs"
	"starmagic/internal/plan"
	"starmagic/internal/resource"
	"starmagic/internal/storage"
)

// Rows is a streaming result cursor over one execution of a prepared plan:
// Columns, then Next/Row (or Scan) until Next returns false, then Err and
// Close. Next pulls 64-row batches from the streaming executor on demand, so
// a consumer that stops early (LIMIT satisfied client-side, a dropped
// connection) stops the operator spine with it and never pays for rows it
// does not read.
//
// Rows must be Closed (Close is idempotent; a fully drained cursor finalizes
// itself, making Close a no-op). Until finalized, the cursor holds its
// execution resources: the admission slot, the query's memory budget, and a
// registered MVCC snapshot. It holds no lock: the cursor reads a snapshot
// view of storage, so an open cursor never blocks writers — DML commits
// freely mid-stream and the cursor keeps returning the rows its snapshot
// saw. The registered snapshot only pins row versions against vacuum.
//
// Rows is not safe for concurrent use by multiple goroutines.
type Rows struct {
	p   *Prepared
	ctx context.Context

	// Exactly one of iter (streaming physical plan) or mat (materialized
	// box-at-a-time fallback) feeds the cursor.
	iter   *exec.PlanIter
	mat    []datum.Row
	matPos int

	batch []datum.Row
	bi    int
	cur   datum.Row
	err   error

	// Execution state released at finalize.
	ev            *exec.Evaluator
	bud           *resource.Budget
	release       func() // admission slot (nil when not admitted)
	releaseSnap   func() // snapshot-registry entry (nil for txn cursors)
	sp            obs.Span
	start         time.Time
	admissionWait time.Duration

	finalized bool
	closed    bool
	exhausted bool // cursor reached end of stream (not early-Closed)
	info      PlanInfo
}

// ExecuteRows runs the prepared plan and returns a streaming cursor over its
// result. Optional args bind the query's `?` placeholders for this run only,
// overriding WithArgs values captured at prepare time. The returned cursor
// must be Closed; see Rows. The execution reads a fresh snapshot of the
// committed state acquired here.
func (p *Prepared) ExecuteRows(ctx context.Context, args ...any) (*Rows, error) {
	return p.executeRowsIn(ctx, nil, args...)
}

// ExecuteRowsIn is ExecuteRows inside a transaction: the cursor reads the
// transaction's snapshot plus its own staged writes. Close the cursor before
// Commit/Rollback.
func (p *Prepared) ExecuteRowsIn(ctx context.Context, t *Txn, args ...any) (*Rows, error) {
	return p.executeRowsIn(ctx, t, args...)
}

func (p *Prepared) executeRowsIn(ctx context.Context, t *Txn, args ...any) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t != nil && t.done {
		return nil, ErrTxnDone
	}
	bound := p.cfg.args
	if len(args) > 0 {
		b, err := toDatumRow(args)
		if err != nil {
			return nil, err
		}
		bound = b
	}
	if len(bound) != p.numParams {
		return nil, &ParamCountError{Want: p.numParams, Got: len(bound)}
	}
	// Admission control gates execution only — the plan is already prepared
	// at this point, so a queued execution never holds plan-cache state (in
	// particular it cannot interact with a single-flight cold prepare).
	r := &Rows{p: p, ctx: ctx, info: p.info}
	if p.db.gov.AdmissionEnabled() && !p.cfg.noAdmission {
		release, waited, err := p.db.gov.Admit(ctx)
		if err != nil {
			p.db.metrics.RecordAdmissionRejected()
			return nil, err
		}
		r.release = release
		r.admissionWait = waited
	}
	// Acquire the snapshot the execution reads. No lock is held while the
	// cursor streams: the view captures the versioned backing arrays, and
	// registering the snapshot timestamp keeps vacuum from reclaiming the
	// versions it can see.
	var view *storage.View
	if t != nil {
		view = t.view
	} else {
		ts := p.db.retainSnapshot()
		view = p.db.store.NewView(storage.Snap{TS: ts})
		r.releaseSnap = func() { p.db.releaseSnapshot(ts) }
	}

	ev := exec.New(p.db.store)
	ev.SetView(view)
	ev.Params = bound
	ev.SetContext(ctx)
	if p.cfg.hasParallelism {
		ev.Parallelism = p.cfg.parallelism
	} else {
		ev.Parallelism = p.db.parallelism
	}
	if p.cfg.rowLimit > 0 {
		ev.MaxRows = p.cfg.rowLimit
	}
	if p.strategy == Correlated {
		ev.NoSubqueryCache = true
	}
	ev.NoVec = p.db.noVec.Load()
	// A budget is attached when a per-query cap applies (option or database
	// default) or when an engine-wide total cap is set — the total cap is
	// enforced through each query's Budget reservations.
	memLimit := p.db.memLimit.Load()
	if p.cfg.hasMemLimit {
		memLimit = p.cfg.memLimit
	}
	if memLimit > 0 || p.db.gov.TotalLimit() > 0 {
		r.bud = resource.NewBudget(p.db.gov, memLimit, "")
		ev.Mem = r.bud
	}
	r.ev = ev
	r.sp = obs.Start(p.cfg.tracer, "execute")
	r.start = time.Now()

	if p.phys != nil && !p.cfg.materialized {
		it, err := ev.OpenPlan(p.phys)
		if err != nil {
			r.iter = it // may carry partial stats
			r.fail(err)
			return nil, err
		}
		r.iter = it
	} else {
		rows, err := ev.EvalGraph(p.graph)
		if err != nil {
			r.fail(err)
			return nil, err
		}
		r.mat = rows
	}
	return r, nil
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.p.columns }

// Next advances the cursor to the next row, pulling the next executor batch
// when the current one is exhausted. It returns false at end of stream or on
// error (check Err). A fully drained cursor finalizes itself: its PlanInfo
// becomes available and its resources are released.
func (r *Rows) Next() bool {
	if r.err != nil || r.closed {
		return false
	}
	if r.bi < len(r.batch) {
		r.cur = r.batch[r.bi]
		r.bi++
		return true
	}
	if r.iter != nil {
		batch, err := r.iter.Next()
		if err != nil {
			r.fail(err)
			return false
		}
		if len(batch) == 0 {
			r.exhausted = true
			r.finish(nil)
			return false
		}
		r.batch, r.bi = batch, 1
		r.cur = batch[0]
		return true
	}
	if r.matPos < len(r.mat) {
		r.cur = r.mat[r.matPos]
		r.matPos++
		return true
	}
	r.exhausted = true
	r.finish(nil)
	return false
}

// Row returns the current row, valid after a true Next. The row must be
// treated as read-only; it stays valid across further Next calls.
func (r *Rows) Row() datum.Row { return r.cur }

// Scan copies the current row into dest, one target per column. Supported
// targets: *datum.D (any value, NULLs included), *any (NULL scans as nil),
// *int64, *float64 (widens INT), *string (the SQL text rendering), and
// *bool. Scanning SQL NULL into a non-nullable target is an error.
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("Scan: %d targets for %d columns", len(dest), len(r.cur))
	}
	for i, d := range r.cur {
		if err := scanDatum(d, dest[i]); err != nil {
			return fmt.Errorf("Scan column %d (%s): %w", i+1, r.p.columns[i], err)
		}
	}
	return nil
}

func scanDatum(d datum.D, dest any) error {
	switch t := dest.(type) {
	case *datum.D:
		*t = d
		return nil
	case *any:
		if d.IsNull() {
			*t = nil
			return nil
		}
		switch d.T {
		case datum.TInt:
			*t = d.I
		case datum.TFloat:
			*t = d.F
		case datum.TString:
			*t = d.S
		case datum.TBool:
			*t = d.B
		default:
			*t = nil
		}
		return nil
	}
	if d.IsNull() {
		return fmt.Errorf("cannot scan NULL into %T", dest)
	}
	switch t := dest.(type) {
	case *int64:
		if d.T != datum.TInt {
			return fmt.Errorf("cannot scan %s into *int64", d.T)
		}
		*t = d.I
	case *float64:
		if d.T != datum.TInt && d.T != datum.TFloat {
			return fmt.Errorf("cannot scan %s into *float64", d.T)
		}
		*t = d.AsFloat()
	case *string:
		*t = d.Format()
	case *bool:
		if d.T != datum.TBool {
			return fmt.Errorf("cannot scan %s into *bool", d.T)
		}
		*t = d.B
	default:
		return fmt.Errorf("unsupported Scan target %T", dest)
	}
	return nil
}

// Err returns the error that terminated iteration, if any. Exhausting the
// result normally is not an error.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor's execution resources: the executor's operator
// tree (hash tables, spill files), the memory budget, the admission slot,
// and the database read lock. It is idempotent and safe mid-stream — closing
// an undrained cursor abandons the remaining rows without computing them.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.finish(nil)
	return nil
}

// Plan returns the execution account — counters, timings, memory footprint,
// per-operator reports — once the cursor has finalized (drained, failed, or
// Closed); before that it returns nil. An early-Closed cursor reports the
// work actually done, which is how streaming early exit shows up in the
// counters.
func (r *Rows) Plan() *PlanInfo {
	if !r.finalized {
		return nil
	}
	return &r.info
}

// fail terminates the cursor with err and finalizes it.
func (r *Rows) fail(err error) {
	r.err = err
	r.finish(err)
}

// finish finalizes the cursor exactly once: it closes the executor iterator,
// snapshots counters and operator reports into PlanInfo, records the
// execution sample, and releases budget, snapshot registration, and
// admission slot — in that order, mirroring ExecuteContext's defer stack.
func (r *Rows) finish(execErr error) {
	if r.finalized {
		return
	}
	r.finalized = true
	r.closed = true
	if r.iter != nil {
		if cerr := r.iter.Close(); cerr != nil && execErr == nil && r.err == nil {
			execErr = cerr
			r.err = cerr
		}
	}
	elapsed := time.Since(r.start)
	r.sp.End()

	var reports []plan.OpReport
	var opStats []plan.OpStats
	if r.iter != nil {
		opStats = r.iter.Stats()
	}
	if opStats != nil && r.p.phys != nil {
		reports = r.p.phys.Report(opStats)
	}
	mem := MemInfo{
		LimitBytes:   r.bud.Limit(),
		PeakBytes:    r.bud.Peak(),
		SpilledBytes: r.bud.SpilledBytes(),
		Spills:       r.bud.Spills(),
	}
	ev := r.ev
	r.p.db.metrics.RecordExec(obs.ExecSample{
		Err:       execErr != nil,
		Strategy:  r.p.strategy.String(),
		ExecNanos: int64(elapsed),
		Exec:      execStats(ev.Counters),
		Operators: opSamples(reports),
		Mem: obs.MemSample{
			LimitBytes:   mem.LimitBytes,
			PeakBytes:    mem.PeakBytes,
			SpilledBytes: mem.SpilledBytes,
			Spills:       mem.Spills,
		},
		AdmissionWaitNanos: r.admissionWait.Nanoseconds(),
	})
	r.info.ExecTime = elapsed
	r.info.Counters = ev.Counters
	r.info.Mem = mem
	r.info.AdmissionWait = r.admissionWait
	if opStats != nil && r.p.phys != nil {
		r.info.Physical = r.p.phys.Format(opStats)
		r.info.Operators = reports
		r.info.MaxQError = r.p.phys.MaxQError(opStats)
		// Execution feedback only learns from fully-drained, error-free runs:
		// an early-Closed cursor or a LIMIT plan reports truncated actuals
		// that would poison the learned cardinalities.
		if execErr == nil && r.exhausted && r.p.fb != nil &&
			r.p.db.FeedbackEnabled() && !r.p.phys.HasLimit() {
			maxQ, marked := r.p.fb.observe(r.p.phys, opStats)
			r.p.db.metrics.RecordFeedback(maxQ, marked)
		}
	}
	if r.bud != nil {
		r.bud.Close()
		r.bud = nil
	}
	if r.releaseSnap != nil {
		r.releaseSnap()
		r.releaseSnap = nil
	}
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.batch = nil
	r.mat = nil
}

// QueryRows optimizes query and returns a streaming cursor over its result;
// it is to QueryContext what ExecuteRows is to ExecuteContext. The cursor
// must be Closed.
func (db *Database) QueryRows(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	p, err := db.PrepareContext(ctx, query, opts...)
	if err != nil {
		return nil, err
	}
	return p.ExecuteRows(ctx)
}
