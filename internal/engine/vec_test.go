package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestVectorizedSmoke proves the vectorized select operator actually
// executes — not merely that plans are marked vectorizable. A plan whose
// compile silently fell back to the row pipeline would still return correct
// rows, so the test asserts Vectorized shows up in the operator reports.
func TestVectorizedSmoke(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`
	CREATE VIEW nameSal (empname, total) AS
	  SELECT empname, SUM(salary) FROM employee GROUPBY empname;
	`); err != nil {
		t.Fatal(err)
	}
	// Constant-equality predicates on base tables lower to index access, so
	// the vectorizable shapes are stream scans with range/logic filters and
	// hash joins whose build side is a view.
	cases := []struct {
		query string
		want  []string
	}{
		{"SELECT empname FROM employee WHERE salary > 450", []string{"alice", "bob", "carol", "dan", "eve"}},
		{"SELECT empno FROM employee WHERE empname = 'carol' OR empname = 'dan'", []string{"201", "202"}},
		{"SELECT e.empname, n.total FROM employee e, nameSal n WHERE e.empname = n.empname AND e.salary > 350",
			[]string{"alice|1000", "bob|500", "carol|800", "dan|600", "eve|700", "frank|400"}},
	}
	for _, tc := range cases {
		res, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%q: %v", tc.query, err)
		}
		got := sortStrings(rowsAsStrings(res))
		if strings.Join(got, ";") != strings.Join(tc.want, ";") {
			t.Errorf("%q: rows = %v, want %v", tc.query, got, tc.want)
		}
		vectorized := false
		for _, op := range res.Plan.Operators {
			if op.Vectorized {
				vectorized = true
				if op.Rows > 0 && op.RowsPerBatch <= 0 {
					t.Errorf("%q: vectorized op %s has rows but RowsPerBatch = %v", tc.query, op.Kind, op.RowsPerBatch)
				}
			}
		}
		if !vectorized {
			t.Errorf("%q: no vectorized operator in plan:\n%s", tc.query, res.Plan.Physical)
		}
	}

	// The toggle must force the row pipeline with identical rows.
	db.SetVectorized(false)
	defer db.SetVectorized(true)
	for _, tc := range cases {
		res, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%q (vec off): %v", tc.query, err)
		}
		got := sortStrings(rowsAsStrings(res))
		if strings.Join(got, ";") != strings.Join(tc.want, ";") {
			t.Errorf("%q (vec off): rows = %v, want %v", tc.query, got, tc.want)
		}
		for _, op := range res.Plan.Operators {
			if op.Vectorized {
				t.Errorf("%q: operator %s vectorized despite SetVectorized(false)", tc.query, op.Kind)
			}
		}
	}
}

// TestVectorizedInternMetrics checks the engine-wide intern table surfaces
// through Metrics: loading string data interns it, and repeated values hit.
func TestVectorizedInternMetrics(t *testing.T) {
	db := newDB(t)
	m := db.Metrics()
	if m.Intern.Strings == 0 {
		t.Fatalf("intern table empty after loading string data: %+v", m.Intern)
	}
	if m.Intern.Bytes <= 0 {
		t.Errorf("intern bytes = %d, want > 0", m.Intern.Bytes)
	}
	if _, err := db.Exec(`INSERT INTO employee VALUES (401, 'alice', 1, 950)`); err != nil {
		t.Fatal(err)
	}
	m2 := db.Metrics()
	if m2.Intern.Hits <= m.Intern.Hits {
		t.Errorf("re-inserting duplicate string did not hit: before %+v after %+v", m.Intern, m2.Intern)
	}
	if m2.Intern.Strings != m.Intern.Strings {
		t.Errorf("duplicate string grew the table: before %d after %d", m.Intern.Strings, m2.Intern.Strings)
	}
}

// TestVectorizedOracle is the correctness net for the vectorized executor:
// a few hundred random queries run under all three strategies, three ways
// each — vectorized streaming (the default), row-at-a-time streaming
// (SetVectorized(false)), and the materialized box-at-a-time evaluator
// (WithMaterialized). All three must return the exact same rows in the
// exact same order: the vec operator mirrors the row pipeline's iteration
// order, and the streaming executor mirrors the materialized one.
func TestVectorizedOracle(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`
	CREATE VIEW bigEarners (empno, workdept, salary) AS
	  SELECT empno, workdept, salary FROM employee WHERE salary >= 500;
	CREATE VIEW deptCounts (workdept, cnt, total) AS
	  SELECT workdept, COUNT(*), SUM(salary) FROM employee GROUPBY workdept;
	CREATE TABLE link (src INT, dst INT, PRIMARY KEY (src, dst));
	INSERT INTO link VALUES (1, 2), (2, 3), (3, 1), (2, 101), (101, 201), (201, 202);
	CREATE VIEW reach (src, dst) AS
	  SELECT src, dst FROM link
	  UNION SELECT r.src, l.dst FROM reach r, link l WHERE r.dst = l.src;
	`); err != nil {
		t.Fatal(err)
	}

	n := 220
	if testing.Short() {
		n = 60
	}
	ctx := context.Background()
	strategies := []Strategy{Original, Correlated, EMST}
	gen := &queryGen{rng: rand.New(rand.NewSource(8861))}
	sawVectorized := false
	for i := 0; i < n; i++ {
		query := gen.query()
		for _, s := range strategies {
			vec, err := db.QueryContext(ctx, query, WithStrategy(s))
			if err != nil {
				t.Fatalf("query %d %q %v: %v", i, query, s, err)
			}
			for _, op := range vec.Plan.Operators {
				if op.Vectorized {
					sawVectorized = true
				}
			}
			want := strings.Join(rowsAsStrings(vec), ";")

			db.SetVectorized(false)
			row, err := db.QueryContext(ctx, query, WithStrategy(s))
			db.SetVectorized(true)
			if err != nil {
				t.Fatalf("query %d %q %v (vec off): %v", i, query, s, err)
			}
			if got := strings.Join(rowsAsStrings(row), ";"); got != want {
				t.Fatalf("query %d %q %v: row pipeline disagrees with vectorized\nvec %s\nrow %s",
					i, query, s, want, got)
			}

			mat, err := db.QueryContext(ctx, query, WithStrategy(s), WithMaterialized())
			if err != nil {
				t.Fatalf("query %d %q %v (materialized): %v", i, query, s, err)
			}
			if got := strings.Join(rowsAsStrings(mat), ";"); got != want {
				t.Fatalf("query %d %q %v: materialized disagrees with vectorized\nvec %s\nmat %s",
					i, query, s, want, got)
			}
		}
	}
	if !sawVectorized {
		t.Fatal("no oracle query executed a vectorized operator; the generator or the compiler regressed")
	}
}

// TestVectorizedStringPredicates locks down interned-string comparison
// semantics the random generator rarely reaches: equality against absent
// strings, ordered string comparison (which cannot use intern ids), and
// NULL propagation.
func TestVectorizedStringPredicates(t *testing.T) {
	db := newDB(t)
	cases := []struct {
		query string
		want  []string
	}{
		{"SELECT empno FROM employee WHERE empname = 'nobody'", nil},
		{"SELECT empno FROM employee WHERE empname <> 'alice'", []string{"102", "201", "202", "203", "301", "302"}},
		{"SELECT empname FROM employee WHERE empname < 'carol'", []string{"alice", "bob"}},
		{"SELECT empname FROM employee WHERE empname >= 'eve'", []string{"eve", "frank", "grace"}},
		{"SELECT empno FROM employee WHERE workdept IS NULL", []string{"302"}},
		{"SELECT empno FROM employee WHERE workdept IS NOT NULL AND salary * 2 > 1300",
			[]string{"101", "201", "203"}},
	}
	for _, tc := range cases {
		res, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%q: %v", tc.query, err)
		}
		got := sortStrings(rowsAsStrings(res))
		if fmt.Sprint(got) != fmt.Sprint(tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("%q: rows = %v, want %v", tc.query, got, tc.want)
		}
	}
}
