package engine

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"starmagic/internal/datum"
)

// TestStreamingMatchesMaterialized pits the streaming physical-plan executor
// against the box-at-a-time evaluator on random queries: rows must match in
// content AND order (streaming is designed to reproduce the materializing
// emission order exactly, so LIMIT without ORDER BY stays deterministic).
func TestStreamingMatchesMaterialized(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`
	CREATE VIEW bigEarners (empno, workdept, salary) AS
	  SELECT empno, workdept, salary FROM employee WHERE salary >= 500;
	CREATE VIEW deptCounts (workdept, cnt, total) AS
	  SELECT workdept, COUNT(*), SUM(salary) FROM employee GROUPBY workdept;
	CREATE TABLE link (src INT, dst INT, PRIMARY KEY (src, dst));
	INSERT INTO link VALUES (1, 2), (2, 3), (3, 1), (2, 101), (101, 201), (201, 202);
	CREATE VIEW reach (src, dst) AS
	  SELECT src, dst FROM link
	  UNION SELECT r.src, l.dst FROM reach r, link l WHERE r.dst = l.src;
	`); err != nil {
		t.Fatal(err)
	}
	n := 200
	if testing.Short() {
		n = 50
	}
	gen := &queryGen{rng: rand.New(rand.NewSource(271828))}
	ctx := context.Background()
	for _, strategy := range []Strategy{EMST, Original, Correlated} {
		for i := 0; i < n; i++ {
			query := gen.query()
			ref, err := db.QueryContext(ctx, query, WithStrategy(strategy), WithMaterialized())
			if err != nil {
				t.Fatalf("query %d %q: materialized: %v", i, query, err)
			}
			res, err := db.QueryContext(ctx, query, WithStrategy(strategy))
			if err != nil {
				t.Fatalf("query %d %q: streaming: %v", i, query, err)
			}
			if res.Plan.Physical == "" {
				t.Fatalf("query %d %q: streaming run reports no physical plan", i, query)
			}
			if ref.Plan.Physical != "" {
				t.Fatalf("query %d %q: materialized run reports a physical plan", i, query)
			}
			got := strings.Join(rowsAsStrings(res), ";")
			want := strings.Join(rowsAsStrings(ref), ";")
			if got != want {
				t.Fatalf("query %d %q (%v): streaming disagrees with materialized\ngot  %s\nwant %s",
					i, query, strategy, got, want)
			}
		}
	}
}

// streamBenchDB builds a 100k-row table alongside a small one for the
// early-exit assertions.
func streamBenchDB(t testing.TB, rows int) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE big (id INT, grp INT);
	CREATE TABLE small (id INT);
	INSERT INTO small VALUES (1), (2), (3);`); err != nil {
		t.Fatal(err)
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 97))}
	}
	if err := db.InsertRows("big", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSemiJoinShortCircuit is the issue's regression test: an EXISTS probe
// against a 100k-row build side must stop at the first witness. The
// streaming run's row counters stay orders of magnitude below the
// materializing baseline, which reads all 100k rows.
func TestSemiJoinShortCircuit(t *testing.T) {
	const rows = 100_000
	db := streamBenchDB(t, rows)
	const query = `SELECT s.id FROM small s WHERE EXISTS (SELECT 1 FROM big b)`

	stream, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.QueryContext(context.Background(), query, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Rows) != 3 || len(mat.Rows) != 3 {
		t.Fatalf("rows: stream=%d materialized=%d, want 3", len(stream.Rows), len(mat.Rows))
	}
	if got := mat.Plan.Counters.BaseRows; got < rows {
		t.Fatalf("materialized baseline read %d base rows, want >= %d", got, rows)
	}
	// The streaming probe needs one batch of the build side to find its
	// witness; anything near the table size means the early exit is broken.
	if got := stream.Plan.Counters.BaseRows; got > rows/100 {
		t.Fatalf("streaming EXISTS read %d base rows, want far below %d", got, rows)
	}
	if got, baseline := stream.Plan.Counters.OutputRows, mat.Plan.Counters.OutputRows; got >= baseline {
		t.Fatalf("streaming produced %d rows, want below materialized %d", got, baseline)
	}
}

// TestLimitPushdownShortCircuit checks the other early-exit path: a LIMIT
// above a scan-heavy query stops pulling once satisfied instead of
// materializing the full result.
func TestLimitPushdownShortCircuit(t *testing.T) {
	const rows = 100_000
	db := streamBenchDB(t, rows)
	const query = `SELECT b.id FROM big b WHERE b.id >= 10 LIMIT 5`

	stream, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := db.QueryContext(context.Background(), query, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(rowsAsStrings(stream), ";"), strings.Join(rowsAsStrings(mat), ";"); got != want {
		t.Fatalf("limit results disagree: got %s want %s", got, want)
	}
	if got := mat.Plan.Counters.BaseRows; got < rows {
		t.Fatalf("materialized baseline read %d base rows, want >= %d", got, rows)
	}
	if got := stream.Plan.Counters.BaseRows; got > rows/100 {
		t.Fatalf("streaming LIMIT read %d base rows, want far below %d", got, rows)
	}
}

// TestRowLimitAbortsFixpoint asserts WithRowLimit stops a recursive view
// between fixpoint rounds: the accumulated closure exceeding the budget
// aborts iteration rather than running the recursion to completion and
// truncating afterwards.
func TestRowLimitAbortsFixpoint(t *testing.T) {
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE edge (src INT, dst INT, PRIMARY KEY (src, dst));
	CREATE VIEW tc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;`); err != nil {
		t.Fatal(err)
	}
	// A 200-node chain: the full closure is ~20k rows, far over the budget.
	batch := make([]datum.Row, 200)
	for i := range batch {
		batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i + 1))}
	}
	if err := db.InsertRows("edge", batch); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []Strategy{Original, EMST} {
		_, err := db.QueryContext(context.Background(), "SELECT src, dst FROM tc",
			WithStrategy(strategy), WithRowLimit(500))
		if err == nil {
			t.Fatalf("%v: recursive query under WithRowLimit(500) succeeded, want budget error", strategy)
		}
		if !strings.Contains(err.Error(), "row budget") {
			t.Fatalf("%v: got error %q, want row budget error", strategy, err)
		}
	}
}

// TestEarlyCloseNoGoroutineLeak runs early-exiting queries (LIMIT above a
// parallel plan) repeatedly and checks the goroutine count returns to its
// baseline: closing a partially-consumed operator tree must not strand
// prefetch or hash-build workers.
func TestEarlyCloseNoGoroutineLeak(t *testing.T) {
	db := streamBenchDB(t, 20_000)
	if _, err := db.Exec(`
	CREATE VIEW bigGroups (grp, cnt) AS
	  SELECT grp, COUNT(*) FROM big GROUPBY grp;`); err != nil {
		t.Fatal(err)
	}
	const query = `SELECT b.id, g.cnt FROM big b, bigGroups g WHERE b.grp = g.grp LIMIT 3`
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		res, err := db.QueryContext(context.Background(), query, WithParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("got %d rows, want 3", len(res.Rows))
		}
	}
	// Allow the runtime a moment to retire finished goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after early-close runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationStopsStreaming checks a cancelled context aborts a
// streaming execution promptly with ctx.Err.
func TestCancellationStopsStreaming(t *testing.T) {
	db := streamBenchDB(t, 50_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT b1.id FROM big b1, big b2 WHERE b1.grp = b2.grp`)
	if err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestExplainPhysicalTree asserts the acceptance criterion: ExplainContext
// exposes the lowered operator tree, and an executed query's PlanInfo
// carries per-operator counters.
func TestExplainPhysicalTree(t *testing.T) {
	db := newDB(t)
	query := `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
	info, err := db.ExplainContext(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if info.Physical == "" || len(info.Operators) == 0 {
		t.Fatal("ExplainContext has no physical plan")
	}
	if !strings.Contains(info.Physical, "scan") {
		t.Fatalf("physical plan missing scan operator:\n%s", info.Physical)
	}
	if !strings.Contains(info.String(), "physical plan:") {
		t.Fatal("ExplainInfo.String() missing physical plan section")
	}

	res, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Physical == "" {
		t.Fatal("executed result has no physical plan")
	}
	if !strings.Contains(res.Plan.Physical, "rows=") {
		t.Fatalf("executed plan missing per-operator counters:\n%s", res.Plan.Physical)
	}
	var rooted bool
	for _, op := range res.Plan.Operators {
		if op.Depth == 0 && op.Rows > 0 {
			rooted = true
		}
	}
	if !rooted {
		t.Fatalf("operator reports missing root row counts: %+v", res.Plan.Operators)
	}
}
