// Durability: OpenDir ties a Database to a write-ahead log (internal/wal).
// The MVCC commit path is the natural hook — commit timestamps give log
// records their serialization order, so recovery is a replay of commits in
// timestamp order on top of the last checkpoint image. Aborts emit nothing:
// a transaction that never committed was never in the log.
//
// Checkpoints run alongside vacuum in the background (size-triggered, see
// maybeCheckpoint) and follow vacuum's snapshot protocol: the checkpoint
// timestamp is registered as a live snapshot for the duration of the image
// write, so the versions it streams are never reclaimed underneath it.
package engine

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/obs"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
	"starmagic/internal/wal"
)

// defaultCheckpointBytes is the segment size that triggers a background
// checkpoint (see SetCheckpointThreshold).
const defaultCheckpointBytes = 16 << 20

// OpenDir opens (or creates) a durable database rooted at dir. Existing
// state is recovered before the first query can run: the last checkpoint
// image is loaded (rebuilding hash indexes and the string-intern table as
// rows are re-appended), then every log record past it replays in commit
// order, with the final torn record — if a crash left one — truncated.
// The commit clock resumes from the highest recovered timestamp.
//
// All writes made through Exec, transactions, and InsertRows are logged;
// DDL is logged as SQL text. Durability of commits follows SetDurability
// (fsync-per-commit group commit by default). A database opened with New
// has no log and is unchanged by this file's machinery.
func OpenDir(dir string) (*Database, error) {
	db := New()
	start := time.Now()
	rc := &recoverer{db: db, live: make(map[string]map[string][]int)}
	l, err := wal.Open(dir, rc, wal.Options{})
	if err != nil {
		return nil, err
	}
	db.commitTS.Store(rc.maxTS)
	db.statsDirty.Store(true)
	db.garbage.Add(rc.deletes)
	db.wal = l
	db.ckptThreshold.Store(defaultCheckpointBytes)
	db.recoveryNanos = time.Since(start).Nanoseconds()
	db.recoveryRecords = rc.records
	return db, nil
}

// Durable reports whether the database is backed by a write-ahead log.
func (db *Database) Durable() bool { return db.wal != nil }

// SetDurability selects the fsync policy for subsequent commits of a
// durable database (no-op for in-memory databases). The default is
// wal.SyncCommit: group-committed fsync before Commit returns.
func (db *Database) SetDurability(p wal.SyncPolicy) {
	if db.wal != nil {
		db.wal.SetPolicy(p)
	}
}

// SetCheckpointThreshold sets the log-segment size, in bytes, that triggers
// a background checkpoint after a commit (default 16 MiB). Zero or negative
// disables automatic checkpoints; explicit Checkpoint calls still work.
func (db *Database) SetCheckpointThreshold(bytes int64) {
	db.ckptThreshold.Store(bytes)
}

// RecoveryStats reports the work OpenDir did: wall time and the number of
// log records replayed (both zero for in-memory databases).
func (db *Database) RecoveryStats() (time.Duration, int64) {
	return time.Duration(db.recoveryNanos), db.recoveryRecords
}

// logCommitLocked appends the transaction's write set as one commit record.
// Called under commitMu after every stamp is in place, so the record order
// in the log equals commit-timestamp order, and the logged begin stamps of
// deleted versions are final.
func (db *Database) logCommitLocked(ts uint64, writes []txnWrite) (uint64, error) {
	ops := make([]wal.Op, len(writes))
	for i, w := range writes {
		row, begin := w.rel.VersionData(w.pos)
		op := wal.Op{Table: w.rel.Meta.Name, Row: row}
		if !w.insert {
			op.Delete = true
			op.Begin = begin
		}
		ops[i] = op
	}
	return db.wal.AppendCommit(ts, ops)
}

// logDDL makes one schema statement durable before the DDL returns. Called
// under the database write lock after the statement succeeded, so replay
// order equals execution order.
func (db *Database) logDDL(st sql.Statement) error {
	if db.wal == nil {
		return nil
	}
	seq, err := db.wal.AppendDDL(ddlSQL(st))
	if err == nil {
		err = db.wal.WaitDurable(seq)
	}
	if err != nil {
		return fmt.Errorf("ddl applied but not durable: %w", err)
	}
	return nil
}

// ddlSQL renders a schema statement back to SQL text for the log. The
// parser accepts exactly this rendering, so recovery replays through the
// normal DDL path.
func ddlSQL(st sql.Statement) string {
	var b strings.Builder
	switch s := st.(type) {
	case *sql.CreateTable:
		b.WriteString("CREATE TABLE ")
		b.WriteString(s.Name)
		b.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteByte(' ')
			b.WriteString(c.Type.String())
		}
		if len(s.PrimaryKey) > 0 {
			b.WriteString(", PRIMARY KEY (")
			b.WriteString(strings.Join(s.PrimaryKey, ", "))
			b.WriteString(")")
		}
		for _, u := range s.Uniques {
			b.WriteString(", UNIQUE (")
			b.WriteString(strings.Join(u, ", "))
			b.WriteString(")")
		}
		b.WriteString(")")
	case *sql.CreateView:
		b.WriteString("CREATE VIEW ")
		b.WriteString(s.Name)
		if len(s.Cols) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(s.Cols, ", "))
			b.WriteString(")")
		}
		b.WriteString(" AS ")
		b.WriteString(s.SQL)
	case *sql.CreateIndex:
		if s.Unique {
			b.WriteString("CREATE UNIQUE INDEX ")
		} else {
			b.WriteString("CREATE INDEX ")
		}
		b.WriteString(s.Name)
		b.WriteString(" ON ")
		b.WriteString(s.Table)
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Cols, ", "))
		b.WriteString(")")
	case *sql.DropView:
		b.WriteString("DROP VIEW ")
		b.WriteString(s.Name)
	case *sql.DropTable:
		b.WriteString("DROP TABLE ")
		b.WriteString(s.Name)
	}
	return b.String()
}

// Checkpoint writes a full image of the committed state and retires the log
// segments it supersedes. The protocol, in lock order:
//
//  1. Under the database read lock (freezing DDL) and the commit mutex
//     (freezing the clock), read the checkpoint timestamp T and rotate the
//     log — every commit stamped after T lands in the new segment.
//  2. Still under the commit mutex, register T as a live snapshot so
//     vacuum's horizon cannot pass it: the versions visible at T survive
//     until the image is on disk.
//  3. Release the commit mutex (commits flow again), capture the catalog
//     and each relation's backing arrays, release the read lock.
//  4. Stream every version visible at T — with its original begin stamp —
//     to a temp file, commit it (fsync, rename, manifest update), and
//     release the snapshot.
//
// Deletes that commit after T stay visible at T and are stored live; their
// commit records sit in the new segment and re-delete them at replay.
// Checkpoints serialize among themselves and run concurrently with readers
// and writers. On an in-memory database Checkpoint is a no-op.
func (db *Database) Checkpoint() error {
	if db.wal == nil {
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	db.mu.RLock()
	db.commitMu.Lock()
	ts := db.commitTS.Load()
	gen, err := db.wal.Rotate()
	if err == nil {
		db.retainSnapshotAt(ts)
	}
	db.commitMu.Unlock()
	if err != nil {
		db.mu.RUnlock()
		return err
	}
	// Catalog capture under the same read lock that covered the rotation:
	// DDL needs the write lock, so every schema statement is either fully
	// before the rotation (its effect is in this image, its record in the
	// retired segments) or fully after this capture (its record replays
	// from the new segment).
	tables := db.cat.Tables()
	metas := make([]wal.TableMeta, 0, len(tables))
	rels := make([]*storage.Relation, 0, len(tables))
	for _, t := range tables {
		rel, ok := db.store.Relation(t.Name)
		if !ok {
			continue
		}
		m := wal.TableMeta{Name: t.Name, Keys: copyOrdSets(t.Keys), Indexes: copyOrdSets(t.Indexes)}
		for _, c := range t.Columns {
			m.Columns = append(m.Columns, wal.ColumnMeta{Name: c.Name, Type: c.Type})
		}
		metas = append(metas, m)
		rels = append(rels, rel)
	}
	var views []wal.ViewMeta
	for _, v := range db.cat.Views() {
		views = append(views, wal.ViewMeta{
			Name: v.Name, Columns: append([]string(nil), v.Columns...), SQL: v.SQL,
		})
	}
	db.mu.RUnlock()
	defer db.releaseSnapshot(ts)

	cw, err := db.wal.BeginCheckpoint(gen, ts)
	if err != nil {
		return err
	}
	snap := storage.Snap{TS: ts}
	for i, m := range metas {
		if err := cw.Table(m); err != nil {
			cw.Abort()
			return err
		}
		if err := rels[i].DumpVisible(snap, cw.Row); err != nil {
			cw.Abort()
			return err
		}
	}
	for _, v := range views {
		if err := cw.View(v); err != nil {
			cw.Abort()
			return err
		}
	}
	return cw.Commit()
}

// maybeCheckpoint starts one background checkpoint when the current log
// segment has outgrown the threshold — the WAL sibling of maybeVacuum, and
// scheduled the same way (busy flag, waitgroup drained by Close).
func (db *Database) maybeCheckpoint() {
	if db.wal == nil {
		return
	}
	thr := db.ckptThreshold.Load()
	if thr <= 0 || db.wal.SegmentBytes() < thr {
		return
	}
	if !db.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	db.ckptWG.Add(1)
	go func() {
		defer db.ckptWG.Done()
		defer db.ckptBusy.Store(false)
		_ = db.Checkpoint()
	}()
}

// retainSnapshotAt registers a reader at an explicit timestamp (the
// checkpoint protocol reads the clock under commitMu itself).
func (db *Database) retainSnapshotAt(ts uint64) {
	db.snapMu.Lock()
	if db.snaps == nil {
		db.snaps = make(map[uint64]int)
	}
	db.snaps[ts]++
	db.snapMu.Unlock()
}

func copyOrdSets(sets [][]int) [][]int {
	if sets == nil {
		return nil
	}
	out := make([][]int, len(sets))
	for i, s := range sets {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// walStats fills the Metrics WAL section for durable databases.
func (db *Database) walStats() obs.WALStats {
	if db.wal == nil {
		return obs.WALStats{}
	}
	s := db.wal.Stats()
	ws := obs.WALStats{
		Appends:         s.Appends,
		AppendedBytes:   s.AppendedBytes,
		Fsyncs:          s.Fsyncs,
		Synced:          s.Synced,
		Rotations:       s.Rotations,
		Checkpoints:     s.Checkpoints,
		CheckpointBytes: s.CheckpointBytes,
		CheckpointNanos: s.CheckpointNanos,
		SegmentBytes:    s.SegmentBytes,
		RecoveryNanos:   db.recoveryNanos,
		RecoveryRecords: db.recoveryRecords,
	}
	if s.Fsyncs > 0 {
		ws.GroupCommitMean = float64(s.Synced) / float64(s.Fsyncs)
	}
	return ws
}

// recoverer rebuilds engine state from the wal.Handler callbacks during
// OpenDir. It runs single-threaded before the database is published.
type recoverer struct {
	db *Database
	// cur is the relation the current checkpoint table section loads into.
	cur *storage.Relation
	// maxTS tracks the highest commit timestamp seen; the clock resumes
	// there.
	maxTS   uint64
	records int64
	deletes int64
	// live resolves logged deletes: per table, (begin stamp ‖ encoded row)
	// → positions of live versions with that identity. Built lazily per
	// table on its first delete, then maintained by replayed inserts.
	live   map[string]map[string][]int
	keyBuf []byte
}

func (rc *recoverer) CheckpointTable(m wal.TableMeta) error {
	t := &catalog.Table{Name: m.Name, Keys: m.Keys, Indexes: m.Indexes}
	for _, c := range m.Columns {
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: c.Type})
	}
	if err := rc.db.cat.AddTable(t); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rc.cur = rc.db.store.Create(t)
	return nil
}

func (rc *recoverer) CheckpointRow(row datum.Row, begin uint64) error {
	if rc.cur == nil {
		return fmt.Errorf("recovery: checkpoint row outside a table section")
	}
	// Append re-validates, re-interns strings, and re-indexes: the hash
	// indexes and intern table are rebuilt as a side effect of loading.
	_, err := rc.cur.Append(row, begin)
	return err
}

func (rc *recoverer) CheckpointView(v wal.ViewMeta) error {
	if err := rc.db.cat.AddView(&catalog.View{Name: v.Name, Columns: v.Columns, SQL: v.SQL}); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	return nil
}

func (rc *recoverer) CheckpointDone(ts uint64) error {
	if ts > rc.maxTS {
		rc.maxTS = ts
	}
	rc.cur = nil
	return nil
}

func (rc *recoverer) ReplayCommit(ts uint64, ops []wal.Op) error {
	rc.records++
	if ts > rc.maxTS {
		rc.maxTS = ts
	}
	for _, op := range ops {
		rel, ok := rc.db.store.Relation(op.Table)
		if !ok {
			return fmt.Errorf("recovery: commit %d references unknown table %q", ts, op.Table)
		}
		if op.Delete {
			pos, ok := rc.takeLive(op.Table, rel, op.Begin, op.Row)
			if !ok {
				return fmt.Errorf("recovery: table %s: logged delete matches no live version", op.Table)
			}
			rel.RecoverSetEnd(pos, ts)
			rc.deletes++
		} else {
			pos, err := rel.Append(op.Row, ts)
			if err != nil {
				return fmt.Errorf("recovery: %w", err)
			}
			rc.addLive(op.Table, ts, op.Row, pos)
		}
	}
	return nil
}

func (rc *recoverer) ReplayDDL(text string) error {
	rc.records++
	st, err := sql.Parse(text)
	if err != nil {
		return fmt.Errorf("recovery: ddl %q: %w", text, err)
	}
	db := rc.db
	// Replay is tolerant of statements whose effect is already present (or
	// already gone) — a defensive property; the checkpoint protocol's
	// locking means a record and the image normally never overlap.
	switch s := st.(type) {
	case *sql.CreateTable:
		if _, ok := db.cat.Table(s.Name); ok {
			return nil
		}
	case *sql.CreateView:
		if _, ok := db.cat.View(s.Name); ok {
			return nil
		}
	case *sql.CreateIndex:
		if _, ok := db.cat.Table(s.Table); !ok {
			return nil
		}
	case *sql.DropView:
		if _, ok := db.cat.View(s.Name); !ok {
			return nil
		}
	case *sql.DropTable:
		if _, ok := db.cat.Table(s.Name); !ok {
			return nil
		}
		delete(rc.live, strings.ToLower(s.Name))
	}
	if _, err := db.execDDL(st); err != nil {
		return fmt.Errorf("recovery: ddl %q: %w", text, err)
	}
	return nil
}

// verKey is the delete-resolution identity: begin stamp plus the lossless
// row encoding. The commit path logs stored (type-widened) rows, so replayed
// and checkpoint-loaded versions encode byte-identically.
func (rc *recoverer) verKey(begin uint64, row datum.Row) string {
	rc.keyBuf = binary.AppendUvarint(rc.keyBuf[:0], begin)
	rc.keyBuf = datum.AppendEncodedRow(rc.keyBuf, row)
	return string(rc.keyBuf)
}

func (rc *recoverer) tableLive(name string, rel *storage.Relation) map[string][]int {
	key := strings.ToLower(name)
	if m, ok := rc.live[key]; ok {
		return m
	}
	m := make(map[string][]int)
	rel.RecoverVersions(func(pos int, row datum.Row, begin, end uint64) {
		if end == storage.Live {
			k := rc.verKey(begin, row)
			m[k] = append(m[k], pos)
		}
	})
	rc.live[key] = m
	return m
}

func (rc *recoverer) addLive(name string, begin uint64, row datum.Row, pos int) {
	m, ok := rc.live[strings.ToLower(name)]
	if !ok {
		return // map not built yet; a later build scans the relation anyway
	}
	k := rc.verKey(begin, row)
	m[k] = append(m[k], pos)
}

func (rc *recoverer) takeLive(name string, rel *storage.Relation, begin uint64, row datum.Row) (int, bool) {
	m := rc.tableLive(name, rel)
	k := rc.verKey(begin, row)
	positions := m[k]
	if len(positions) == 0 {
		return 0, false
	}
	pos := positions[len(positions)-1]
	if len(positions) == 1 {
		delete(m, k)
	} else {
		m[k] = positions[:len(positions)-1]
	}
	return pos, true
}
