package engine

// Plan cache: prepared plans keyed by normalized SQL text + strategy, so
// parameterized queries amortize the two-pass EMST optimization (phase-1,
// magic transformation, phase-3, and both plan-optimization passes) across
// executions. Because `?` placeholders are opaque constants in the QGM —
// they add no quantifiers and no correlation — a plan's shape, including the
// magic seed box the EMST transformation installs, is identical for every
// binding, so one cached plan serves them all.
//
// The cache is sharded to keep hot prepares from contending on one mutex,
// each shard is a bounded LRU, and misses are single-flighted: concurrent
// callers of the same key wait for one leader's optimization instead of
// repeating it. Entries are validated against the database's catalog epoch
// (bumped by DDL, DML, bulk loads, and ANALYZE); a stale entry is evicted
// and re-prepared on first touch. Errors are never cached.

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"starmagic/internal/sql"
)

// cacheShardCount must be a power of two (shard pick masks the FNV hash).
const cacheShardCount = 16

// defaultCachePerShard bounds each shard's LRU: 16 shards × 64 = 1024 plans.
const defaultCachePerShard = 64

type planCache struct {
	// disabled is inverted so the zero value is an enabled cache.
	disabled atomic.Bool
	perShard int
	shards   [cacheShardCount]cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recently used; values are *cacheEntry
	m   map[string]*list.Element
}

// cacheEntry is published to the shard map before its plan exists: ready
// closes once p/err are set, and waiters block on it (single-flight).
type cacheEntry struct {
	key   string
	ready chan struct{}
	epoch uint64 // catalog epoch the plan was prepared under
	p     *Prepared
	err   error
}

func newPlanCache(perShard int) *planCache {
	if perShard <= 0 {
		perShard = defaultCachePerShard
	}
	c := &planCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *planCache) enabled() bool { return !c.disabled.Load() }

func (c *planCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

func (c *planCache) purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.lru.Init()
		sh.m = make(map[string]*list.Element)
		sh.mu.Unlock()
	}
}

// removeLocked unlinks el from the LRU and the map; sh.mu must be held.
func (sh *cacheShard) removeLocked(el *list.Element) {
	sh.lru.Remove(el)
	delete(sh.m, el.Value.(*cacheEntry).key)
}

// cacheShardIndex is inline FNV-1a over the key, masked to a shard.
func cacheShardIndex(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h & (cacheShardCount - 1)
}

// cacheKey identifies a plan: normalized SQL (whitespace, case, and comments
// do not fragment the cache) plus everything that changes the *stored* plan —
// strategy and snapshot capture. Per-call state (args, tracer, parallelism,
// row limit, materialized execution) stays out of the key: it is applied to
// a shallow per-call copy on every hit.
func cacheKey(query string, cfg queryConfig) string {
	k := sql.Normalize(query) + "\x00" + cfg.strategy.String()
	if cfg.snapshots {
		k += "\x00snap"
	}
	if cfg.forceEMST {
		k += "\x00force-emst"
	}
	return k
}

// withConfig returns a shallow copy of a cached plan bound to one call's
// per-call options and its own explain header. The graph, physical plan,
// and explain payload are shared read-only across all users of the entry.
func (p *Prepared) withConfig(cfg queryConfig, status string, epoch uint64) *Prepared {
	cp := *p
	cp.cfg = cfg
	ex := *p.explain
	ex.CacheStatus = status
	ex.CacheEpoch = epoch
	cp.explain = &ex
	return &cp
}

// prepareCached serves a prepare through the plan cache: hit, single-flight
// wait, or leader cold-prepare on miss. epoch is the catalog epoch the
// caller validated statistics against (see prepare); entries are stored and
// checked under it so a plan can never be cached under an epoch newer than
// the statistics it was optimized with.
func (db *Database) prepareCached(ctx context.Context, query string, cfg queryConfig, epoch uint64) (*Prepared, error) {
	key := cacheKey(query, cfg)
	sh := &db.plans.shards[cacheShardIndex(key)]
	for {
		sh.mu.Lock()
		if el, ok := sh.m[key]; ok {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
				if e.err == nil && e.epoch == epoch {
					// Execution feedback marked this entry's estimates as off
					// by more than the q-error threshold: drop it and
					// re-optimize in its place with the observed cardinalities
					// injected as estimates. Exactly one caller consumes the
					// mark (takeReopt); concurrent prepares wait on the
					// replacement entry like any single-flight miss.
					if fb := e.p.fb; fb != nil && db.FeedbackEnabled() && fb.takeReopt() {
						sh.removeLocked(el)
						recfg := cfg
						recfg.hints = fb.hints(e.p.phys)
						db.metrics.RecordReopt()
						return db.leadPrepare(ctx, query, recfg, epoch, key, sh, "reopt")
					}
					sh.lru.MoveToFront(el)
					sh.mu.Unlock()
					db.metrics.RecordCacheHit()
					return e.p.withConfig(cfg, "hit", epoch), nil
				}
				// Stale (the epoch advanced since it was prepared): drop it
				// and take over as the new leader below, still locked.
				sh.removeLocked(el)
			default:
				// Another caller is optimizing this key right now: wait for
				// its result instead of repeating the work.
				sh.mu.Unlock()
				select {
				case <-e.ready:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				if e.err == nil && e.epoch == epoch {
					db.metrics.RecordCacheShared()
					return e.p.withConfig(cfg, "hit", e.epoch), nil
				}
				continue // leader failed or entry went stale; retry
			}
		}
		// Miss: optimize cold as the leader for this key.
		db.metrics.RecordCacheMiss()
		return db.leadPrepare(ctx, query, cfg, epoch, key, sh, "miss")
	}
}

// leadPrepare makes the caller the single-flight leader for key: it publishes
// an in-flight entry (sh.mu must be held; leadPrepare unlocks it), runs the
// cold optimization outside the lock, and completes the entry so waiters
// unblock. cfg.hints carries injected feedback cardinalities on the "reopt"
// path.
func (db *Database) leadPrepare(ctx context.Context, query string, cfg queryConfig, epoch uint64, key string, sh *cacheShard, status string) (*Prepared, error) {
	e := &cacheEntry{key: key, ready: make(chan struct{}), epoch: epoch}
	el := sh.lru.PushFront(e)
	sh.m[key] = el
	evicted := 0
	for sh.lru.Len() > db.plans.perShard {
		sh.removeLocked(sh.lru.Back())
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		db.metrics.RecordCacheEvictions(evicted)
	}
	p, err := db.prepareCold(ctx, query, cfg)
	e.p, e.err = p, err
	close(e.ready)
	if err != nil {
		// Errors are not cached: remove the entry if it is still ours.
		sh.mu.Lock()
		if cur, ok := sh.m[key]; ok && cur.Value.(*cacheEntry) == e {
			sh.removeLocked(cur)
		}
		sh.mu.Unlock()
		return nil, err
	}
	return p.withConfig(cfg, status, epoch), nil
}

// SetPlanCache enables or disables the prepared-plan cache (it starts
// enabled). Disabling also clears it.
func (db *Database) SetPlanCache(enabled bool) {
	db.plans.disabled.Store(!enabled)
	if !enabled {
		db.plans.purge()
	}
}

// PlanCacheEnabled reports whether the plan cache is active.
func (db *Database) PlanCacheEnabled() bool { return db.plans.enabled() }

// PlanCacheStats is a point-in-time view of the plan cache for tooling
// (magicsql's `.cache stats`). Counters come from the metrics sink, so
// ResetMetrics zeroes them.
type PlanCacheStats struct {
	Enabled   bool
	Entries   int
	Hits      int64
	Misses    int64
	Shared    int64 // prepares served by waiting on another caller's miss
	Evictions int64
}

// PlanCacheStats snapshots the cache state and counters.
func (db *Database) PlanCacheStats() PlanCacheStats {
	m := db.metrics.Snapshot()
	return PlanCacheStats{
		Enabled:   db.plans.enabled(),
		Entries:   db.plans.len(),
		Hits:      m.CacheHits,
		Misses:    m.CacheMisses,
		Shared:    m.CacheShared,
		Evictions: m.CacheEvictions,
	}
}
