package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"starmagic/internal/datum"
	"starmagic/internal/obs"
)

// cacheTestDB builds a small Table-1-style database: a dimension table, a
// fact table, and a grouping view the magic transformation seeds.
func cacheTestDB(t testing.TB) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE department (deptno INT, deptname VARCHAR(30), region VARCHAR(10),
	  PRIMARY KEY (deptno));
	CREATE TABLE sales (saleid INT, deptno INT, amount FLOAT, PRIMARY KEY (saleid));
	CREATE INDEX sales_dept ON sales (deptno);
	CREATE VIEW deptSales (deptno, total, cnt) AS
	  SELECT deptno, SUM(amount), COUNT(*) FROM sales GROUPBY deptno;
	`); err != nil {
		t.Fatal(err)
	}
	depts := make([]datum.Row, 0, 30)
	for d := 1; d <= 30; d++ {
		depts = append(depts, datum.Row{
			datum.Int(int64(d)),
			datum.String(fmt.Sprintf("Dept-%02d", d)),
			datum.String(fmt.Sprintf("R%d", d%5)),
		})
	}
	if err := db.InsertRows("department", depts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sales := make([]datum.Row, 0, 600)
	for s := 1; s <= 600; s++ {
		sales = append(sales, datum.Row{
			datum.Int(int64(s)),
			datum.Int(int64(rng.Intn(30) + 1)),
			datum.Float(float64(rng.Intn(10000)) / 10),
		})
	}
	if err := db.InsertRows("sales", sales); err != nil {
		t.Fatal(err)
	}
	return db
}

// paramViewQuery joins the dimension table to the grouping view with two
// placeholders: one on the magic-relevant dimension predicate, one on the
// aggregated view output.
const paramViewQuery = `SELECT d.deptname, v.total FROM department d, deptSales v
	WHERE d.deptno = v.deptno AND d.region = ? AND v.total > ?`

func formatRows(rows []datum.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, c := range r {
			parts[j] = c.Format()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func rowsEqual(a, b []datum.Row) bool {
	fa, fb := formatRows(a), formatRows(b)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

// TestCachedPlanMatchesColdPrepare is the oracle check: for randomized
// bindings under all three strategies, executing the one cached plan must
// return row-for-row what a cold prepare of the same query returns, and —
// order-insensitively — what the literal-substituted query returns.
func TestCachedPlanMatchesColdPrepare(t *testing.T) {
	cached := cacheTestDB(t)
	cold := cacheTestDB(t)
	cold.SetPlanCache(false)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	for _, strategy := range []Strategy{EMST, Original, Correlated} {
		p, err := cached.PrepareContext(ctx, paramViewQuery, WithStrategy(strategy))
		if err != nil {
			t.Fatalf("%v: prepare: %v", strategy, err)
		}
		for trial := 0; trial < 8; trial++ {
			region := fmt.Sprintf("R%d", rng.Intn(5))
			threshold := float64(rng.Intn(20000)) / 2
			got, err := p.ExecuteContext(ctx, region, threshold)
			if err != nil {
				t.Fatalf("%v: cached execute: %v", strategy, err)
			}
			coldPrep, err := cold.PrepareContext(ctx, paramViewQuery,
				WithStrategy(strategy), WithArgs(region, threshold))
			if err != nil {
				t.Fatalf("%v: cold prepare: %v", strategy, err)
			}
			if coldPrep.Explain().CacheStatus != "bypass" {
				t.Fatalf("cold prepare cache status = %q, want bypass", coldPrep.Explain().CacheStatus)
			}
			want, err := coldPrep.ExecuteContext(ctx)
			if err != nil {
				t.Fatalf("%v: cold execute: %v", strategy, err)
			}
			if !rowsEqual(got.Rows, want.Rows) {
				t.Fatalf("%v %s/%v: cached rows != cold rows\ncached %v\ncold   %v",
					strategy, region, threshold, formatRows(got.Rows), formatRows(want.Rows))
			}
			literal := fmt.Sprintf(`SELECT d.deptname, v.total FROM department d, deptSales v
				WHERE d.deptno = v.deptno AND d.region = '%s' AND v.total > %v`, region, threshold)
			lit, err := cold.QueryContext(ctx, literal, WithStrategy(strategy))
			if err != nil {
				t.Fatalf("%v: literal: %v", strategy, err)
			}
			a, b := formatRows(got.Rows), formatRows(lit.Rows)
			sort.Strings(a)
			sort.Strings(b)
			if len(a) != len(b) || strings.Join(a, "\n") != strings.Join(b, "\n") {
				t.Fatalf("%v %s/%v: parameterized rows != literal rows\nparam   %v\nliteral %v",
					strategy, region, threshold, a, b)
			}
		}
	}
}

// TestPlanCacheHitMissLifecycle checks the epoch machinery: a second prepare
// hits; DDL and explicit ANALYZE each advance the epoch and force a
// re-prepare on next touch, while DML keeps cached plans valid (plans read
// through MVCC snapshots, so data changes never invalidate them).
func TestPlanCacheHitMissLifecycle(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	status := func() string {
		p, err := db.PrepareContext(ctx, paramViewQuery)
		if err != nil {
			t.Fatal(err)
		}
		return p.Explain().CacheStatus
	}
	if got := status(); got != "miss" {
		t.Fatalf("first prepare = %q, want miss", got)
	}
	if got := status(); got != "hit" {
		t.Fatalf("second prepare = %q, want hit", got)
	}
	if _, err := db.Exec(`INSERT INTO sales VALUES (9001, 3, 12.5)`); err != nil {
		t.Fatal(err)
	}
	if got := status(); got != "hit" {
		t.Fatalf("prepare after INSERT = %q, want hit (DML must not invalidate)", got)
	}
	if _, err := db.Exec(`CREATE INDEX dept_region ON department (region)`); err != nil {
		t.Fatal(err)
	}
	if got := status(); got != "miss" {
		t.Fatalf("prepare after DDL = %q, want miss", got)
	}
	db.Analyze()
	if got := status(); got != "miss" {
		t.Fatalf("prepare after ANALYZE = %q, want miss", got)
	}
	// Whitespace/case variants normalize to the same key.
	variant := strings.ToLower(strings.Join(strings.Fields(paramViewQuery), "  "))
	p, err := db.PrepareContext(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Explain().CacheStatus; got != "hit" {
		t.Fatalf("normalized variant = %q, want hit", got)
	}
	// Different strategies cache separately.
	p2, err := db.PrepareContext(ctx, paramViewQuery, WithStrategy(Original))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Explain().CacheStatus; got != "miss" {
		t.Fatalf("other strategy = %q, want miss", got)
	}
}

// TestPlanCacheDisabledAndTracerBypass checks the two bypass paths.
func TestPlanCacheDisabledAndTracerBypass(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	db.SetPlanCache(false)
	p, err := db.PrepareContext(ctx, paramViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Explain().CacheStatus; got != "bypass" {
		t.Fatalf("disabled cache = %q, want bypass", got)
	}
	if st := db.PlanCacheStats(); st.Enabled || st.Entries != 0 {
		t.Fatalf("disabled stats = %+v", st)
	}
	db.SetPlanCache(true)
	if _, err := db.PrepareContext(ctx, paramViewQuery); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRecorder()
	p, err = db.PrepareContext(ctx, paramViewQuery, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Explain().CacheStatus; got != "bypass" {
		t.Fatalf("traced prepare = %q, want bypass (spans need the live pipeline)", got)
	}
}

// TestPlanCacheSingleFlight launches concurrent prepares of one novel query
// and checks that exactly one cold optimization ran: everyone else either
// waited on the leader (shared) or hit the completed entry.
func TestPlanCacheSingleFlight(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = db.PrepareContext(ctx, paramViewQuery)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	m := db.Metrics()
	if m.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 (single-flight)", m.CacheMisses)
	}
	if m.CacheHits+m.CacheShared != workers-1 {
		t.Fatalf("hits %d + shared %d = %d, want %d", m.CacheHits, m.CacheShared,
			m.CacheHits+m.CacheShared, workers-1)
	}
}

// TestPlanCacheConcurrentWithMutations mixes cached parameterized queries
// with concurrent inserts; every query must still see a consistent result
// for its binding (run under -race via make check).
func TestPlanCacheConcurrentWithMutations(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	const lookups = 40
	var wg sync.WaitGroup
	errCh := make(chan error, lookups+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO sales VALUES (%d, 1, 5.0)`, 10_000+i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for i := 0; i < lookups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deptno := i%30 + 1
			res, err := db.QueryContext(ctx, `SELECT d.deptname FROM department d WHERE d.deptno = ?`,
				WithArgs(deptno))
			if err != nil {
				errCh <- err
				return
			}
			want := fmt.Sprintf("Dept-%02d", deptno)
			if len(res.Rows) != 1 || res.Rows[0][0].Format() != want {
				errCh <- fmt.Errorf("deptno %d: got %v, want [[%s]]", deptno, formatRows(res.Rows), want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestPlanCacheLRUEviction overfills one cache generously past its total
// capacity and checks entries stay bounded and evictions are counted.
func TestPlanCacheLRUEviction(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	total := cacheShardCount * db.plans.perShard
	for i := 0; i < total+64; i++ {
		q := fmt.Sprintf(`SELECT d.deptname FROM department d WHERE d.deptno = %d`, i)
		if _, err := db.PrepareContext(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.plans.len(); n > total {
		t.Fatalf("cache holds %d entries, cap %d", n, total)
	}
	if m := db.Metrics(); m.CacheEvictions == 0 {
		t.Fatal("expected evictions after overfilling the cache")
	}
}

// TestParamArgValidation covers binding-count and type errors, and the
// DDL/DML placeholder rejection.
func TestParamArgValidation(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	if _, err := db.QueryContext(ctx, `SELECT d.deptno FROM department d WHERE d.deptno = ?`); err == nil ||
		!strings.Contains(err.Error(), "expects 1 parameter") {
		t.Fatalf("missing binding: err = %v", err)
	}
	if _, err := db.QueryContext(ctx, `SELECT d.deptno FROM department d`, WithArgs(1)); err == nil ||
		!strings.Contains(err.Error(), "expects 0 parameter") {
		t.Fatalf("extra binding: err = %v", err)
	}
	if _, err := db.QueryContext(ctx, `SELECT d.deptno FROM department d WHERE d.deptno = ?`,
		WithArgs(struct{}{})); err == nil || !strings.Contains(err.Error(), "unsupported type") {
		t.Fatalf("bad type: err = %v", err)
	}
	if _, err := db.Exec(`INSERT INTO sales VALUES (?, 1, 1.0)`); err == nil ||
		!strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("DML placeholder: err = %v", err)
	}
	if _, err := db.Exec(`CREATE VIEW bad (a) AS SELECT deptno FROM sales WHERE amount > ?`); err == nil ||
		!strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("view placeholder: err = %v", err)
	}
	// Per-execute args override prepare-time args.
	p, err := db.PrepareContext(ctx, `SELECT d.deptname FROM department d WHERE d.deptno = ?`, WithArgs(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ExecuteContext(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Format() != "Dept-02" {
		t.Fatalf("override binding: got %v", formatRows(res.Rows))
	}
	// NULL binding: comparison yields UNKNOWN, so no rows.
	res, err = p.ExecuteContext(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL binding returned %v", formatRows(res.Rows))
	}
}

// TestParamExplainReporting checks the explain surface: placeholder count,
// default-selectivity note, and the cache line.
func TestParamExplainReporting(t *testing.T) {
	db := cacheTestDB(t)
	info, err := db.ExplainContext(context.Background(), paramViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if info.Params != 2 {
		t.Fatalf("Params = %d, want 2", info.Params)
	}
	text := info.String()
	if !strings.Contains(text, "parameters: 2") || !strings.Contains(text, "default selectivities") {
		t.Fatalf("explain missing parameter note:\n%s", text)
	}
	if !strings.Contains(text, "cache: miss") {
		t.Fatalf("explain missing cache line:\n%s", text)
	}
	info2, err := db.ExplainContext(context.Background(), paramViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if info2.CacheStatus != "hit" {
		t.Fatalf("second explain cache = %q, want hit", info2.CacheStatus)
	}
}

// TestCacheKeyQuoteCollision is the regression test for the normalization
// injectivity hole: a WHERE clause whose string literal contains escaped
// quotes must not share a cache key with the two-literal spelling — with the
// cache on, a collision would serve one query the other's plan.
func TestCacheKeyQuoteCollision(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	// One literal containing "Dept-02' AND d.region = 'R2" — matches nothing.
	oneLit := `SELECT d.deptno FROM department d
		WHERE d.deptname = 'Dept-02'' AND d.region = ''R2'`
	// Two literals — matches exactly department 2.
	twoLit := `SELECT d.deptno FROM department d
		WHERE d.deptname = 'Dept-02' AND d.region = 'R2'`
	r1, err := db.QueryContext(ctx, oneLit)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.QueryContext(ctx, twoLit)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 0 {
		t.Fatalf("one-literal query matched %v, want none", formatRows(r1.Rows))
	}
	if len(r2.Rows) != 1 || r2.Rows[0][0].Format() != "2" {
		t.Fatalf("two-literal query got %v, want dept 2", formatRows(r2.Rows))
	}
	// Both must have been prepared cold: distinct keys, no false hit.
	if m := db.Metrics(); m.CacheHits != 0 || m.CacheMisses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0 hits / 2 misses", m.CacheHits, m.CacheMisses)
	}
}

// TestPrepareArgCountFailsFast checks that a WithArgs binding-count mismatch
// is reported by PrepareContext itself, not deferred to the first execute.
func TestPrepareArgCountFailsFast(t *testing.T) {
	db := cacheTestDB(t)
	ctx := context.Background()
	if _, err := db.PrepareContext(ctx, paramViewQuery, WithArgs("R2", 100.0, 7)); err == nil ||
		!strings.Contains(err.Error(), "expects 2 parameter") {
		t.Fatalf("too many bindings at prepare: err = %v", err)
	}
	if _, err := db.PrepareContext(ctx, paramViewQuery, WithArgs("R2")); err == nil ||
		!strings.Contains(err.Error(), "expects 2 parameter") {
		t.Fatalf("too few bindings at prepare: err = %v", err)
	}
	// No WithArgs at prepare is fine: bindings may arrive per execute.
	p, err := db.PrepareContext(ctx, paramViewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecuteContext(ctx, "R2", 100.0); err != nil {
		t.Fatal(err)
	}
}
