package engine

import (
	"context"
	"strings"
	"testing"
)

// TestGraceJoinPartitionedProbe forces a hash-stage build to spill and
// checks that the pipeline switches to the partition-wise grace probe
// (Counters.GraceJoins), that rows match the unlimited run in content AND
// order (the sequence merge must reconstruct per-probe output order
// exactly), and that the budget and governor accounting hold.
func TestGraceJoinPartitionedProbe(t *testing.T) {
	db := spillDB(t)
	ctx := context.Background()
	if _, err := db.Exec(`
	CREATE VIEW empTot (empname, total) AS
	  SELECT empname, SUM(salary) FROM employee GROUPBY empname;
	INSERT INTO employee VALUES (9999, NULL, 1, 650);
	`); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// Stream-driven probe into a spilled grouped-view build; the NULL
		// empname probe row must be skipped, not matched.
		`SELECT e.empno, t.total FROM employee e, empTot t
		 WHERE e.empname = t.empname AND e.salary > 400`,
		// Self-join on a non-unique key: multi-row buckets plus a residual
		// filter that references both sides.
		`SELECT a.empname, b.empname FROM empTot a, empTot b
		 WHERE a.total = b.total AND a.empname < b.empname`,
	}
	const limit = 16 << 10
	graced := false
	for _, query := range queries {
		ref, err := db.QueryContext(ctx, query)
		if err != nil {
			t.Fatalf("%q unlimited: %v", query, err)
		}
		if ref.Plan.Counters.GraceJoins != 0 {
			t.Fatalf("%q: grace join engaged without a budget", query)
		}
		want := strings.Join(rowsAsStrings(ref), ";")

		res, err := db.QueryContext(ctx, query, WithMemoryLimit(limit))
		if err != nil {
			t.Fatalf("%q under %d: %v", query, limit, err)
		}
		if got := strings.Join(rowsAsStrings(res), ";"); got != want {
			t.Fatalf("%q: governed rows disagree with unlimited\ngot  %.200s\nwant %.200s",
				query, got, want)
		}
		if res.Plan.Counters.GraceJoins > 0 {
			graced = true
		}
		if peak := res.Plan.Mem.PeakBytes; peak > limit {
			t.Fatalf("%q: peak %d exceeds budget %d", query, peak, limit)
		}
	}
	if !graced {
		t.Fatal("no query switched to the partition-wise grace probe; the build did not spill or the shape gate regressed")
	}
	if used := db.ResourceStats().UsedBytes; used != 0 {
		t.Fatalf("governor leaks %d bytes after grace-join workload", used)
	}
}
