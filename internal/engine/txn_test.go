package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func txnTestDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE account (id INT, owner VARCHAR, balance INT, PRIMARY KEY (id));
	INSERT INTO account VALUES (1, 'alice', 100), (2, 'bob', 200), (3, 'carol', 300);`); err != nil {
		t.Fatal(err)
	}
	return db
}

func balances(t *testing.T, q interface {
	Query(string, ...QueryOption) (*Result, error)
}) map[int64]int64 {
	t.Helper()
	res, err := q.Query(`SELECT a.id, a.balance FROM account a`)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]int64{}
	for _, row := range res.Rows {
		out[row[0].I] = row[1].I
	}
	return out
}

// dbQuerier adapts Database.Query (no options parameter mismatch) for the
// balances helper.
type dbQuerier struct{ db *Database }

func (d dbQuerier) Query(q string, opts ...QueryOption) (*Result, error) {
	return d.db.QueryContext(context.Background(), q, opts...)
}

func TestTxnCommitVisibility(t *testing.T) {
	db := txnTestDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO account VALUES (4, 'dave', 400)`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE account SET balance = 150 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the transaction.
	in := balances(t, tx)
	if in[4] != 400 || in[1] != 150 {
		t.Fatalf("inside txn: %v", in)
	}
	// Invisible outside until commit.
	out := balances(t, dbQuerier{db})
	if _, ok := out[4]; ok || out[1] != 100 {
		t.Fatalf("uncommitted writes leaked: %v", out)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out = balances(t, dbQuerier{db})
	if out[4] != 400 || out[1] != 150 {
		t.Fatalf("after commit: %v", out)
	}
	// A finished transaction rejects further work.
	if _, err := tx.Exec(`INSERT INTO account VALUES (9, 'x', 0)`); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("exec after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTxnRollback(t *testing.T) {
	db := txnTestDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`DELETE FROM account WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO account VALUES (5, 'eve', 500)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	out := balances(t, dbQuerier{db})
	if len(out) != 3 || out[2] != 200 {
		t.Fatalf("rollback leaked writes: %v", out)
	}
	// The claimed row is free again for other transactions.
	if _, err := db.Exec(`DELETE FROM account WHERE id = 2`); err != nil {
		t.Fatalf("delete after rollback: %v", err)
	}
}

func TestTxnWriteConflict(t *testing.T) {
	db := txnTestDB(t)
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Exec(`UPDATE account SET balance = 110 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	// First updater wins: t2 fails immediately and is rolled back.
	_, err := t2.Exec(`UPDATE account SET balance = 120 WHERE id = 1`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second updater: %v, want ErrWriteConflict", err)
	}
	if !t2.Done() {
		t.Fatal("losing transaction not rolled back")
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	out := balances(t, dbQuerier{db})
	if out[1] != 110 {
		t.Fatalf("winner's write lost: %v", out)
	}
	m := db.Metrics()
	if m.TxnConflicts == 0 || m.TxnRollbacks == 0 {
		t.Fatalf("conflict metrics not recorded: %+v", m)
	}
}

func TestTxnSnapshotIgnoresLaterCommits(t *testing.T) {
	db := txnTestDB(t)
	tx := db.Begin()
	if _, err := db.Exec(`INSERT INTO account VALUES (4, 'dave', 400)`); err != nil {
		t.Fatal(err)
	}
	in := balances(t, tx)
	if _, ok := in[4]; ok {
		t.Fatalf("snapshot saw later commit: %v", in)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCursorOpenDuringDML is the lock-free streaming regression: with a
// cursor open and partially drained, committed DML must proceed without
// blocking, and the cursor must keep returning its snapshot.
func TestCursorOpenDuringDML(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE big (id INT, v VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	var stmts []byte
	for i := 0; i < 5000; i++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO big VALUES (%d, 'v-%d');", i, i)...)
	}
	if _, err := db.Exec(string(stmts)); err != nil {
		t.Fatal(err)
	}

	rows, err := db.QueryRows(context.Background(), `SELECT b.id FROM big b`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	// Drain a prefix so the cursor is mid-stream.
	for i := 0; i < 100; i++ {
		if !rows.Next() {
			t.Fatalf("cursor ended early: %v", rows.Err())
		}
	}

	// DML must commit while the cursor is open — bounded wait proves no
	// blocking (the old implementation held the read lock until Close).
	done := make(chan error, 1)
	go func() {
		if _, err := db.Exec(`INSERT INTO big VALUES (990001, 'late')`); err != nil {
			done <- err
			return
		}
		_, err := db.Exec(`DELETE FROM big WHERE id < 100`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DML blocked behind an open cursor")
	}

	// The cursor still streams its snapshot: all 5000 original rows, no
	// 'late' row, including the 100 just deleted.
	n := 100
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Fatalf("cursor streamed %d rows, want 5000", n)
	}

	// A fresh query sees the new state.
	res, err := db.Query(`SELECT COUNT(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != 5000-100+1 {
		t.Fatalf("post-DML count = %d, want %d", got, 5000-100+1)
	}
}

// TestVacuumPreservesOpenSnapshot: a transaction's snapshot pins deleted
// versions (and their interned strings) against vacuum + compaction.
func TestVacuumPreservesOpenSnapshot(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE words (id INT, w VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	var stmts []byte
	const n = 2000
	for i := 0; i < n; i++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO words VALUES (%d, 'word-%06d');", i, i)...)
	}
	if _, err := db.Exec(string(stmts)); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()

	if _, err := db.Exec(`DELETE FROM words WHERE id >= 0`); err != nil {
		t.Fatal(err)
	}
	// The open snapshot holds the horizon back: vacuum may compact the
	// intern table only of strings no live snapshot can reach — here, none.
	db.Vacuum()

	res, err := tx.Query(`SELECT w.id, w.w FROM words w WHERE w.id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].S != "word-000007" {
		t.Fatalf("snapshot read after vacuum: %v", res.Rows)
	}
	res, err = tx.Query(`SELECT COUNT(*) FROM words`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != n {
		t.Fatalf("snapshot count = %d, want %d", res.Rows[0][0].I, n)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Snapshot released: now vacuum reclaims and a fresh read sees nothing.
	if got := db.Vacuum(); got == 0 {
		t.Fatal("vacuum reclaimed nothing after snapshot release")
	}
	res, err = db.Query(`SELECT COUNT(*) FROM words`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Fatalf("post-vacuum count = %d, want 0", res.Rows[0][0].I)
	}
	m := db.Metrics()
	if m.VacuumRuns == 0 || m.VacuumReclaimed == 0 {
		t.Fatalf("vacuum metrics not recorded: %+v", m)
	}
}

// TestSnapshotReaderWriterOracle is the embedded-path consistency oracle:
// writers append (writer, seq) rows in per-writer sequence order while
// readers repeatedly scan; every scan must observe, for each writer, a
// clean prefix of its inserts (count == max seq + 1). Run under -race via
// make race.
func TestSnapshotReaderWriterOracle(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE log (w INT, s INT)`); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter, readers = 4, 150, 3
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < perWriter; s++ {
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO log VALUES (%d, %d)`, w, s)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.QueryContext(ctx, `SELECT l.w, COUNT(*), MAX(l.s) FROM log l GROUP BY l.w`)
				if err != nil {
					errCh <- err
					return
				}
				for _, row := range res.Rows {
					if row[1].I != row[2].I+1 {
						errCh <- fmt.Errorf("writer %d: count %d != max+1 %d (torn snapshot)",
							row[0].I, row[1].I, row[2].I+1)
						return
					}
				}
			}
		}()
	}

	writersDone := make(chan struct{})
	go func() {
		// Writers finish first; then release the readers.
		for {
			res, err := db.Query(`SELECT COUNT(*) FROM log`)
			if err == nil && res.Rows[0][0].I == writers*perWriter {
				close(writersDone)
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	select {
	case <-writersDone:
	case err := <-errCh:
		close(stop)
		wg.Wait()
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		close(stop)
		wg.Wait()
		t.Fatal("oracle timed out")
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestTxnMixedConcurrent stresses explicit transactions from many
// goroutines: transfers between two accounts with retries on conflict; the
// invariant (total balance) must hold in every snapshot and at the end.
func TestTxnMixedConcurrent(t *testing.T) {
	db := txnTestDB(t)
	const goroutines, transfers = 6, 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				for {
					tx := db.Begin()
					_, err := tx.Exec(`UPDATE account SET balance = balance - 1 WHERE id = 1`)
					if err == nil {
						_, err = tx.Exec(`UPDATE account SET balance = balance + 1 WHERE id = 2`)
					}
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					_ = tx.Rollback()
					if !errors.Is(err, ErrWriteConflict) {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	// Concurrent readers assert the conservation invariant on live snapshots.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := db.Query(`SELECT SUM(a.balance) FROM account a`)
			if err != nil {
				errCh <- err
				return
			}
			if res.Rows[0][0].I != 600 {
				errCh <- fmt.Errorf("balance sum %d, want 600", res.Rows[0][0].I)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	out := balances(t, dbQuerier{db})
	total := goroutines * transfers
	if out[1] != int64(100-total) || out[2] != int64(200+total) {
		t.Fatalf("final balances: %v", out)
	}
}
