package engine

import (
	"fmt"
	"testing"

	"starmagic/internal/datum"
)

// TestInternCompaction asserts the intern-table growth bound: on a
// long-lived server, DELETE and DROP TABLE must reclaim intern ids, not
// leave the store-wide table growing forever.
func TestInternCompaction(t *testing.T) {
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE words (id INT, w VARCHAR);
	CREATE TABLE keep (id INT, w VARCHAR);`); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	rows := make([]datum.Row, n)
	for i := range rows {
		rows[i] = datum.Row{datum.Int(int64(i)), datum.String(fmt.Sprintf("word-%06d", i))}
	}
	if err := db.InsertRows("words", rows); err != nil {
		t.Fatal(err)
	}
	// A handful of strings shared with the doomed table, plus table-private
	// ones: both must survive compaction with correct values.
	if _, err := db.Exec(`
	INSERT INTO keep VALUES (1, 'word-000007');
	INSERT INTO keep VALUES (2, 'word-000042');
	INSERT INTO keep VALUES (3, 'private');
	INSERT INTO keep VALUES (4, NULL);`); err != nil {
		t.Fatal(err)
	}
	before := db.Store().Intern().Stats().Strings
	if before < n {
		t.Fatalf("expected at least %d interned strings, have %d", n, before)
	}

	// DELETE most of the big table: under MVCC the old versions linger until
	// vacuum, so reclaim explicitly (the background vacuum is asynchronous);
	// then > half the intern table is dead and the rebuild threshold fires.
	if _, err := db.Exec(`DELETE FROM words WHERE id >= 100`); err != nil {
		t.Fatal(err)
	}
	db.Vacuum()
	afterDelete := db.Store().Intern().Stats().Strings
	if afterDelete >= before/2 {
		t.Fatalf("DELETE did not reclaim intern ids: %d strings before, %d after", before, afterDelete)
	}

	// Queries must still see correct string values through the remapped ids,
	// on scans and on a cross-table string join.
	res, err := db.Query(`SELECT t.w FROM words t WHERE t.id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "word-000007" {
		t.Fatalf("post-compaction scan: %v", res.Rows)
	}
	res, err = db.Query(`SELECT k.id FROM keep k, words t WHERE k.w = t.w ORDER BY k.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 2 {
		t.Fatalf("post-compaction join: %v", res.Rows)
	}

	// DROP TABLE kills the remaining references; only keep's strings stay.
	if _, err := db.Exec(`DROP TABLE words`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT t.w FROM words t`); err == nil {
		t.Fatal("query against dropped table succeeded")
	}
	// The table is small again, so compaction may or may not have fired
	// after DROP (the 1024-string floor); force the point with fresh bulk.
	bulk := make([]datum.Row, 3000)
	for i := range bulk {
		bulk[i] = datum.Row{datum.Int(int64(i)), datum.String(fmt.Sprintf("bulk-%06d", i))}
	}
	if _, err := db.Exec(`CREATE TABLE tmp (id INT, w VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("tmp", bulk); err != nil {
		t.Fatal(err)
	}
	grown := db.Store().Intern().Stats().Strings
	if _, err := db.Exec(`DROP TABLE tmp`); err != nil {
		t.Fatal(err)
	}
	afterDrop := db.Store().Intern().Stats().Strings
	if afterDrop >= grown/2 {
		t.Fatalf("DROP TABLE did not reclaim intern ids: %d strings before, %d after", grown, afterDrop)
	}
	res, err = db.Query(`SELECT k.w FROM keep k WHERE k.id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "private" {
		t.Fatalf("survivor string wrong after two compactions: %v", res.Rows)
	}
}
