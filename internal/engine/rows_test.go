package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"starmagic/internal/datum"
	"starmagic/internal/semant"
)

// rowsTestDB builds a database with one large table for streaming tests.
func rowsTestDB(t testing.TB, rows int) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`CREATE TABLE big (id INT, grp INT, name VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i % 97)),
			datum.String(fmt.Sprintf("name-%05d", i%1000)),
		}
	}
	if err := db.InsertRows("big", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRowsDrainMatchesQuery checks the cursor yields exactly the rows the
// materializing API returns, in order, and that PlanInfo is deferred until
// the drain completes.
func TestRowsDrainMatchesQuery(t *testing.T) {
	db := rowsTestDB(t, 1000)
	const q = `SELECT t.id, t.name FROM big t WHERE t.grp = 3 ORDER BY t.id`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.QueryRows(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Columns(); len(got) != 2 || got[0] != "id" || got[1] != "name" {
		t.Fatalf("columns = %v", got)
	}
	if r.Plan() != nil {
		t.Fatal("Plan() non-nil before drain")
	}
	var got []datum.Row
	for r.Next() {
		got = append(got, r.Row())
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Plan() == nil {
		t.Fatal("Plan() nil after drain")
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(want.Rows))
	}
	for i := range got {
		if datum.CompareRows(got[i], want.Rows[i]) != 0 {
			t.Fatalf("row %d: got %#v want %#v", i, got[i], want.Rows[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRowsEarlyCloseStopsScan reads a handful of rows from a 100k-row scan
// and closes: the executor must have pulled only a few batches, not the
// table — the streaming guarantee the wire server's packet-by-packet
// delivery relies on.
func TestRowsEarlyCloseStopsScan(t *testing.T) {
	const total = 100_000
	db := rowsTestDB(t, total)
	r, err := db.QueryRows(context.Background(), `SELECT t.id FROM big t WHERE t.id >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && r.Next(); i++ {
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	info := r.Plan()
	if info == nil {
		t.Fatal("Plan() nil after Close")
	}
	if info.Counters.BaseRows >= total/10 {
		t.Fatalf("early close scanned %d of %d base rows; streaming should have stopped after a few batches",
			info.Counters.BaseRows, total)
	}
	// The read lock must be released: DDL would deadlock otherwise.
	if _, err := db.Exec(`CREATE TABLE after_close (x INT)`); err != nil {
		t.Fatal(err)
	}
}

// TestRowsLargeScanUnderBudget streams a grouped scan of a large table under
// a 64 KiB budget: the run must finish, stay under the budget at peak, and
// match the unbudgeted materialized reference — the acceptance criterion
// that QueryRows streams instead of materializing.
func TestRowsLargeScanUnderBudget(t *testing.T) {
	const budget = 64 << 10
	db := rowsTestDB(t, 50_000)
	const q = `SELECT DISTINCT t.name FROM big t`
	want, err := db.QueryContext(context.Background(), q, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.QueryRows(context.Background(), q, WithMemoryLimit(budget))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	for r.Next() {
		n++
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(want.Rows) {
		t.Fatalf("streamed %d rows, want %d", n, len(want.Rows))
	}
	info := r.Plan()
	if info.Mem.PeakBytes > budget {
		t.Fatalf("peak %d bytes exceeds %d budget", info.Mem.PeakBytes, budget)
	}
}

// TestRowsScan exercises every Scan target type, NULL handling included.
func TestRowsScan(t *testing.T) {
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE v (i INT, f FLOAT, s VARCHAR, b BOOLEAN);
	INSERT INTO v VALUES (7, 2.5, 'x', TRUE);
	INSERT INTO v VALUES (NULL, NULL, NULL, NULL);`); err != nil {
		t.Fatal(err)
	}
	// No ORDER BY: a bare scan preserves insertion order (NULLs would sort
	// first), so the value row streams before the all-NULL row.
	r, err := db.QueryRows(context.Background(), `SELECT t.i, t.f, t.s, t.b FROM v t`)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Next() {
		t.Fatal("no first row")
	}
	var i int64
	var f float64
	var s string
	var b bool
	if err := r.Scan(&i, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || s != "x" || !b {
		t.Fatalf("scanned (%d, %g, %q, %v)", i, f, s, b)
	}
	if !r.Next() {
		t.Fatal("no second row")
	}
	if err := r.Scan(&i, &f, &s, &b); err == nil {
		t.Fatal("scanning NULL into non-nullable targets should fail")
	}
	var anyI, anyF, anyS, anyB any
	if err := r.Scan(&anyI, &anyF, &anyS, &anyB); err != nil {
		t.Fatal(err)
	}
	if anyI != nil || anyF != nil || anyS != nil || anyB != nil {
		t.Fatalf("NULLs scanned into any as (%v, %v, %v, %v)", anyI, anyF, anyS, anyB)
	}
	var ds [4]datum.D
	if err := r.Scan(&ds[0], &ds[1], &ds[2], &ds[3]); err != nil {
		t.Fatal(err)
	}
	for k, d := range ds {
		if !d.IsNull() {
			t.Fatalf("datum target %d not NULL: %#v", k, d)
		}
	}
}

// TestTypedErrors checks the typed error surface the wire server maps onto
// MySQL error codes.
func TestTypedErrors(t *testing.T) {
	db := rowsTestDB(t, 10)
	ctx := context.Background()

	var nf *semant.NotFoundError
	_, err := db.QueryRows(ctx, `SELECT t.id FROM missing t`)
	if !errors.As(err, &nf) || nf.Kind != "table" || nf.Name != "missing" {
		t.Fatalf("missing table: %v (%T)", err, err)
	}
	_, err = db.QueryRows(ctx, `SELECT t.nope FROM big t`)
	if !errors.As(err, &nf) || nf.Kind != "column" {
		t.Fatalf("missing column: %v (%T)", err, err)
	}

	var pc *ParamCountError
	_, err = db.QueryRows(ctx, `SELECT t.id FROM big t WHERE t.id = ?`)
	if !errors.As(err, &pc) || pc.Want != 1 || pc.Got != 0 {
		t.Fatalf("param count: %v (%T)", err, err)
	}
	p, err := db.PrepareContext(ctx, `SELECT t.id FROM big t WHERE t.id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.ExecuteRows(ctx, 1, 2)
	if !errors.As(err, &pc) || pc.Want != 1 || pc.Got != 2 {
		t.Fatalf("execute param count: %v (%T)", err, err)
	}
}
