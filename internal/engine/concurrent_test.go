package engine

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentMixedStrategyQueries runs mixed-strategy queries from many goroutines
// against one database — with intra-query parallelism enabled and concurrent
// inserts into an unrelated table — and asserts every result is identical to
// serial execution. This is the end-to-end race test for the parallel
// executor and the storage RWMutex.
func TestConcurrentMixedStrategyQueries(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`CREATE TABLE noise (id INT, payload VARCHAR(20))`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept AND s.avgsalary > 100`,
		`SELECT empname FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)`,
		`SELECT m.empno FROM mgrSal m, avgMgrSal a WHERE m.workdept = a.workdept`,
	}
	strategies := []Strategy{EMST, Original, Correlated}

	// Serial ground truth, per (query, strategy), compared as sorted bags so
	// strategy-specific row order differences don't matter.
	sortedRows := func(res *Result) []string {
		rows := rowsAsStrings(res)
		sort.Strings(rows)
		return rows
	}
	expected := map[string][]string{}
	for _, q := range queries {
		for _, s := range strategies {
			res, err := db.QueryWith(q, s)
			if err != nil {
				t.Fatalf("serial %s %q: %v", s, q, err)
			}
			expected[q+"|"+s.String()] = sortedRows(res)
		}
	}

	db.SetParallelism(-1) // GOMAXPROCS workers per query

	const goroutines = 12
	const iters = 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+1)

	// Writer: concurrent inserts into a table the queries never touch, so
	// query results stay comparable while DDL/DML locking is exercised.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			stmt := fmt.Sprintf("INSERT INTO noise VALUES (%d, 'p%d')", i, i)
			if _, err := db.Exec(stmt); err != nil {
				errCh <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			s := strategies[(g/len(queries))%len(strategies)]
			want := expected[q+"|"+s.String()]
			for i := 0; i < iters; i++ {
				res, err := db.QueryWith(q, s)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d (%s): %w", g, s, err)
					return
				}
				got := sortedRows(res)
				if len(got) != len(want) {
					errCh <- fmt.Errorf("goroutine %d (%s %q): %d rows, want %d", g, s, q, len(got), len(want))
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errCh <- fmt.Errorf("goroutine %d (%s %q) row %d: %q != %q", g, s, q, j, got[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The noise table must have every concurrent insert.
	res, err := db.Query(`SELECT COUNT(*) FROM noise`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsAsStrings(res); len(got) != 1 || got[0] != "40" {
		t.Errorf("noise count = %v; want [40]", got)
	}
}
