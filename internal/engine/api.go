package engine

// This file is the context-aware query API: QueryContext/PrepareContext/
// ExplainContext with functional options, span tracing across the Figure
// 2/3 pipeline, and the database-wide metrics snapshot. The legacy
// Query/QueryWith/Explain methods in engine.go are thin wrappers over
// these.

import (
	"context"
	"fmt"
	"time"

	"starmagic/internal/core"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/obs"
	"starmagic/internal/opt"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
)

// QueryOption configures one QueryContext/PrepareContext/ExplainContext
// call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	strategy       Strategy
	tracer         obs.Tracer
	parallelism    int
	hasParallelism bool
	rowLimit       int64
	snapshots      bool
	materialized   bool
	// args are the values bound to the query's `?` placeholders; hasArgs
	// records that WithArgs was used (so a binding-count mismatch fails at
	// prepare time rather than on first execute); argsErr carries a WithArgs
	// conversion failure to the first prepare call (the option signature
	// cannot return an error).
	args    datum.Row
	hasArgs bool
	argsErr error
	// memLimit overrides the database default per-query memory budget when
	// hasMemLimit is set; noAdmission bypasses admission control.
	memLimit    int64
	hasMemLimit bool
	noAdmission bool
	// hints injects execution-feedback cardinalities (box name → observed
	// rows) into the optimizer's estimators. Set internally by the plan
	// cache's re-optimization path; there is no public option.
	hints map[string]float64
	// forceEMST skips the cost comparison and executes the magic plan.
	forceEMST bool
}

// WithStrategy selects the optimization/execution strategy (default EMST).
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithArgs binds values to the query's `?` placeholders in left-to-right
// order. Supported Go types: nil, bool, int, int32, int64, float32, float64,
// string, and datum.D. Because a parameterized plan's shape — including the
// magic seed the EMST transformation installs — does not depend on the bound
// values, one cached plan serves every binding; only execution sees the
// values.
func WithArgs(args ...any) QueryOption {
	row, err := toDatumRow(args)
	return func(c *queryConfig) { c.args, c.hasArgs, c.argsErr = row, true, err }
}

// toDatumRow converts user-supplied bindings to datum values.
func toDatumRow(args []any) (datum.Row, error) {
	if len(args) == 0 {
		return nil, nil
	}
	row := make(datum.Row, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			row[i] = datum.Null()
		case datum.D:
			row[i] = v
		case bool:
			row[i] = datum.Bool(v)
		case int:
			row[i] = datum.Int(int64(v))
		case int32:
			row[i] = datum.Int(int64(v))
		case int64:
			row[i] = datum.Int(v)
		case float32:
			row[i] = datum.Float(float64(v))
		case float64:
			row[i] = datum.Float(v)
		case string:
			row[i] = datum.String(v)
		default:
			return nil, fmt.Errorf("argument %d: unsupported type %T (want int, float, string, bool, nil, or datum.D)", i+1, a)
		}
	}
	return row, nil
}

// WithTracer installs a span tracer for this call. Every pipeline phase —
// parse, bind, phase1, plan-opt1, phase2 (EMST), phase3 (simplify),
// plan-opt2, execute — emits one span. The default (nil) tracer is a no-op
// whose per-phase cost is one nil check.
func WithTracer(t obs.Tracer) QueryOption {
	return func(c *queryConfig) { c.tracer = t }
}

// WithParallelism overrides the database-wide SetParallelism setting for
// this call: 0 or 1 serial, negative = GOMAXPROCS workers.
func WithParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.parallelism = n; c.hasParallelism = true }
}

// WithRowLimit bounds the executor's total produced rows (a runaway-query
// guard for serving concurrent traffic, not a LIMIT clause): evaluation
// aborts with an error once the budget is exceeded. 0 means unlimited.
func WithRowLimit(n int64) QueryOption {
	return func(c *queryConfig) { c.rowLimit = n }
}

// WithSnapshots captures QGM graph dumps after each rewrite phase into the
// plan's ExplainInfo (ExplainContext always captures them).
func WithSnapshots() QueryOption {
	return func(c *queryConfig) { c.snapshots = true }
}

// WithMemoryLimit caps this call's resident operator state at n bytes,
// overriding the database-wide SetMemoryLimit per-query default (0 removes
// the cap for this call even if a default is set). Under the cap,
// spill-capable operators — hash-join builds, sorts, DISTINCT and group-by
// state, set-operation counts, recursive seen-sets — page state to
// temporary files instead of failing; a query whose working set cannot
// spill below the cap fails with resource.ErrMemoryExceeded.
func WithMemoryLimit(n int64) QueryOption {
	return func(c *queryConfig) { c.memLimit = n; c.hasMemLimit = true }
}

// WithAdmission controls whether this execution passes through the
// database's admission queue (default true). WithAdmission(false) exempts
// the call — useful for administrative or monitoring queries that must not
// wait behind a saturated queue. It has no effect when SetAdmission has not
// configured a cap.
func WithAdmission(enabled bool) QueryOption {
	return func(c *queryConfig) { c.noAdmission = !enabled }
}

// WithForceEMST executes the post-EMST (magic) plan even when the §3.2 cost
// comparison prefers the untransformed one. It is an A/B instrument: running
// the same query with and without it measures what the optimizer's choice
// actually saved. EMST strategy only; other strategies ignore it.
func WithForceEMST() QueryOption {
	return func(c *queryConfig) { c.forceEMST = true }
}

// WithMaterialized executes through the classic box-at-a-time evaluator
// instead of the streaming physical plan. Results are identical; the
// materialized path computes every intermediate relation in full, so it is
// the baseline the streaming executor's early-exit behavior is measured
// against (and an escape hatch should a physical plan misbehave).
func WithMaterialized() QueryOption {
	return func(c *queryConfig) { c.materialized = true }
}

func newQueryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{strategy: EMST}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// QueryContext optimizes and executes a SELECT under ctx: cancellation and
// deadlines are honored between pipeline stages and — amortized, every few
// hundred rows — inside the executor's scan/join/recursion loops, returning
// ctx.Err() promptly. Options select strategy, tracing, parallelism, and
// row budget.
func (db *Database) QueryContext(ctx context.Context, query string, opts ...QueryOption) (*Result, error) {
	p, err := db.PrepareContext(ctx, query, opts...)
	if err != nil {
		return nil, err
	}
	return p.ExecuteContext(ctx)
}

// ExplainContext runs the optimization pipeline without executing and
// returns the structured account: per-phase timings and QGM snapshots,
// rule-fire counts, the cost comparison, and the chosen plan's join orders.
func (db *Database) ExplainContext(ctx context.Context, query string, opts ...QueryOption) (*ExplainInfo, error) {
	opts = append(opts[:len(opts):len(opts)], WithSnapshots())
	p, err := db.PrepareContext(ctx, query, opts...)
	if err != nil {
		return nil, err
	}
	return p.Explain(), nil
}

// PrepareContext parses, binds and optimizes a query for repeated
// execution. The returned Prepared is safe for concurrent ExecuteContext
// calls: each run uses a fresh evaluator.
func (db *Database) PrepareContext(ctx context.Context, query string, opts ...QueryOption) (*Prepared, error) {
	cfg := newQueryConfig(opts)
	p, err := db.prepare(ctx, query, cfg)
	if err == nil && cfg.hasArgs && len(cfg.args) != p.numParams {
		// Fail fast: a WithArgs binding-count mismatch can never execute, so
		// surface it here instead of on the first ExecuteContext.
		err = fmt.Errorf("WithArgs: %w", &ParamCountError{Want: p.numParams, Got: len(cfg.args)})
	}
	if err != nil {
		db.metrics.RecordPlan(obs.PlanSample{Err: true, Strategy: cfg.strategy.String()})
		return nil, err
	}
	if p.explain.CacheStatus == "hit" {
		// The stored optimization already contributed its cost and rule
		// fires when it was prepared cold; count only the prepare call.
		db.metrics.RecordPlan(obs.PlanSample{
			Strategy: cfg.strategy.String(),
			CacheHit: true,
			UsedEMST: p.info.UsedEMST,
		})
		return p, nil
	}
	db.metrics.RecordPlan(obs.PlanSample{
		Strategy:       cfg.strategy.String(),
		EMSTConsidered: cfg.strategy == EMST,
		UsedEMST:       p.info.UsedEMST,
		CostBefore:     p.info.CostBefore,
		CostAfter:      p.info.CostAfter,
		OptimizeNanos:  int64(p.info.OptimizeTime),
		RuleFires:      p.ruleFires,
	})
	return p, nil
}

// prepare is the front door for every PrepareContext/QueryContext/
// ExplainContext call: it freshens statistics — double-checked on an atomic
// flag, so the hot path never takes the write lock when stats are clean —
// then serves the plan from the cache or optimizes it cold. Tracer-bearing
// calls bypass the cache: their value is the spans the live pipeline emits.
func (db *Database) prepare(ctx context.Context, query string, cfg queryConfig) (*Prepared, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.argsErr != nil {
		return nil, fmt.Errorf("WithArgs: %w", cfg.argsErr)
	}
	// Capture the epoch under which statistics are known fresh: load the
	// epoch, freshen stats if dirty, and retry if a DDL or ANALYZE slipped
	// into that window (only those bump the epoch — DML merely marks stats
	// dirty, since plans read rows through MVCC snapshots and stay valid).
	// Plans are cached under this validated epoch — never under an epoch
	// newer than the statistics they were optimized with, which would let a
	// stale-stats plan survive until the next schema change.
	var epoch uint64
	for {
		epoch = db.epoch.Load()
		if db.statsDirty.Load() {
			db.mu.Lock()
			if db.statsDirty.Load() {
				db.analyzeLocked()
			}
			db.mu.Unlock()
		}
		if db.epoch.Load() == epoch {
			break
		}
	}
	if !db.plans.enabled() || cfg.tracer != nil {
		p, err := db.prepareCold(ctx, query, cfg)
		if err != nil {
			return nil, err
		}
		p.explain.CacheStatus = "bypass"
		p.explain.CacheEpoch = epoch
		return p, nil
	}
	return db.prepareCached(ctx, query, cfg, epoch)
}

// prepareCold runs the full parse→bind→optimize→lower pipeline under the
// read lock. The plan cache calls it on a miss; bypassing calls reach it
// directly.
func (db *Database) prepareCold(ctx context.Context, query string, cfg queryConfig) (*Prepared, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	explain := &ExplainInfo{Query: query, Strategy: cfg.strategy}
	// timed wraps the pre-pipeline phases (parse, bind) in a span and a
	// phase entry.
	timed := func(name string, f func() error) error {
		sp := obs.Start(cfg.tracer, name)
		start := time.Now()
		err := f()
		sp.End()
		explain.Phases = append(explain.Phases, PhaseInfo{Name: name, Duration: time.Since(start)})
		return err
	}

	var q sql.QueryExpr
	if err := timed("parse", func() (err error) {
		q, err = sql.ParseQuery(query)
		return err
	}); err != nil {
		return nil, err
	}
	var g *qgm.Graph
	if err := timed("bind", func() (err error) {
		g, err = semant.NewBuilder(db.cat).Build(q)
		return err
	}); err != nil {
		return nil, err
	}

	visible := len(g.Top.Output) - g.HiddenCols
	cols := make([]string, visible)
	for i := 0; i < visible; i++ {
		cols[i] = g.Top.Output[i].Name
	}
	numParams := g.NumParams
	explain.Params = numParams

	start := time.Now()
	info := PlanInfo{Strategy: cfg.strategy}
	var phys *plan.Plan
	switch cfg.strategy {
	case Original, EMST:
		res, err := core.Optimize(g, core.Options{
			SkipEMST:  cfg.strategy == Original,
			Snapshots: cfg.snapshots,
			Ctx:       ctx,
			Tracer:    cfg.tracer,
			Est:       core.EstimatorConfig{Hints: cfg.hints, NoHist: db.noHist.Load()},
			ForceEMST: cfg.forceEMST,
		})
		if res != nil {
			explain.addPipelinePhases(res)
		}
		if err != nil {
			return nil, err
		}
		g = res.Graph
		phys = res.Physical
		info.UsedEMST = res.UsedEMST
		info.CostBefore, info.CostAfter = res.CostBefore, res.CostAfter
		info.PlansConsidered = res.PlansConsidered
	case Correlated:
		res, err := db.prepareCorrelated(ctx, g, cfg, explain)
		if err != nil {
			return nil, err
		}
		info.CostAfter = res.Cost
		info.PlansConsidered = res.PlansConsidered
		if err := timed("lower", func() error {
			phys = plan.LowerWith(g, db.newEstimator(cfg))
			return nil
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown strategy %v", cfg.strategy)
	}
	info.OptimizeTime = time.Since(start)
	if err := g.Check(); err != nil {
		return nil, fmt.Errorf("engine: optimized graph invalid: %w", err)
	}

	explain.CostBefore, explain.CostAfter = info.CostBefore, info.CostAfter
	explain.UsedEMST = info.UsedEMST
	explain.PlansConsidered = info.PlansConsidered
	explain.JoinOrders = joinOrders(g)
	if phys != nil {
		explain.Physical = phys.String()
		explain.Operators = phys.Report(nil)
	}
	if cfg.snapshots {
		explain.PlanDOT = g.DumpDOT("executed plan")
	}
	ruleFires := map[string]int64{}
	for _, r := range explain.Rules {
		if r.Fires > 0 {
			ruleFires[r.Rule] = r.Fires
		}
	}
	return &Prepared{
		db:        db,
		graph:     g,
		phys:      phys,
		columns:   cols,
		numParams: numParams,
		strategy:  cfg.strategy,
		cfg:       cfg,
		info:      info,
		explain:   explain,
		ruleFires: ruleFires,
		// The feedback record inherits the hints this plan was optimized
		// with, so successive re-optimizations accumulate observations.
		fb: newFeedbackState(phys, cfg.hints),
	}, nil
}

// newEstimator builds an estimator under the call's feedback hints and the
// database's histogram mode.
func (db *Database) newEstimator(cfg queryConfig) *opt.Estimator {
	return opt.NewEstimatorWith(cfg.hints, db.noHist.Load())
}

// prepareCorrelated runs the Correlated strategy's pipeline (phase-1
// rewrite, plan optimization, view correlation, plan optimization) with the
// same span/timing instrumentation as the core pipeline.
func (db *Database) prepareCorrelated(ctx context.Context, g *qgm.Graph, cfg queryConfig, explain *ExplainInfo) (opt.Result, error) {
	var res opt.Result
	stats := &rewrite.Stats{}
	snap := func(name string) {
		if cfg.snapshots {
			explain.Phases = append(explain.Phases, PhaseInfo{
				Name:        name,
				HasSnapshot: true,
				Boxes:       g.Stats(),
				Dump:        g.Dump(),
				DOT:         g.DumpDOT(name),
			})
		}
	}
	stage := func(name string, f func() error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := obs.Start(cfg.tracer, name)
		start := time.Now()
		err := f()
		sp.End()
		explain.Phases = append(explain.Phases, PhaseInfo{Name: name, Duration: time.Since(start)})
		return err
	}
	snap("initial")
	if err := stage("phase1", func() error {
		engine := rewrite.NewEngine(core.Phase1Rules()...)
		return engine.Run(&rewrite.Context{G: g, Stats: stats})
	}); err != nil {
		return res, err
	}
	if err := stage("plan-opt1", func() error {
		opt.OptimizeEst(g, db.newEstimator(cfg))
		return nil
	}); err != nil {
		return res, err
	}
	if err := stage("correlate", func() error {
		rewrite.CorrelateViews(g)
		return nil
	}); err != nil {
		return res, err
	}
	err := stage("plan-opt2", func() error {
		res = opt.OptimizeEst(g, db.newEstimator(cfg))
		return nil
	})
	snap("correlated")
	explain.Rules = stats.Snapshot()
	return res, err
}

// ExecuteContext runs the prepared plan with a fresh evaluator under ctx.
// Counters in the returned Result are this run's alone (they reset between
// executions), so repeated runs are directly comparable. When the plan was
// lowered to a physical operator tree (the default) the streaming executor
// runs it and the result carries per-operator counters; WithMaterialized
// falls back to box-at-a-time evaluation. Optional args bind the query's
// `?` placeholders for this run only, overriding WithArgs values captured
// at prepare time; the cached plan itself is binding-invariant.
func (p *Prepared) ExecuteContext(ctx context.Context, args ...any) (*Result, error) {
	r, err := p.ExecuteRows(ctx, args...)
	if err != nil {
		return nil, err
	}
	var rows []datum.Row
	for r.Next() {
		rows = append(rows, r.Row())
	}
	if err := r.Err(); err != nil {
		_ = r.Close()
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &Result{Columns: p.columns, Rows: rows, Plan: *r.Plan()}, nil
}

// opSamples copies operator reports into the dependency-free obs form.
func opSamples(reports []plan.OpReport) []obs.OpSample {
	if len(reports) == 0 {
		return nil
	}
	out := make([]obs.OpSample, len(reports))
	for i, r := range reports {
		out[i] = obs.OpSample{
			Kind: r.Kind, Rows: r.Rows, Batches: r.Batches, Nanos: r.Nanos,
			Spills: r.Spills, SpillBytes: r.SpillBytes,
			Vectorized: r.Vectorized, RowsPerBatch: r.RowsPerBatch,
		}
	}
	return out
}

// Explain returns the structured optimization account captured when the
// plan was prepared (QGM snapshots included only when the plan was prepared
// with WithSnapshots or through ExplainContext).
func (p *Prepared) Explain() *ExplainInfo { return p.explain }

// Metrics returns a snapshot of database-wide activity: plan and query
// volume, EMST cost-comparison outcomes, cumulative executor counters,
// rewrite-rule fire counts, the engine-wide string-intern table, and — for
// durable databases — write-ahead-log, checkpoint, and recovery counters.
func (db *Database) Metrics() obs.Metrics {
	m := db.metrics.Snapshot()
	is := db.store.Intern().Stats()
	m.Intern = obs.InternStats{
		Strings: is.Strings, Bytes: is.Bytes, Hits: is.Hits, Misses: is.Misses,
	}
	m.WAL = db.walStats()
	return m
}

// ResetMetrics zeroes the database-wide metrics.
func (db *Database) ResetMetrics() { db.metrics.Reset() }

// execStats copies executor counters into the dependency-free obs form.
func execStats(c exec.Counters) obs.ExecStats {
	return obs.ExecStats{
		BaseRows:      c.BaseRows,
		BoxEvals:      c.BoxEvals,
		SubqueryEvals: c.SubqueryEvals,
		HashBuilds:    c.HashBuilds,
		HashProbes:    c.HashProbes,
		IndexLookups:  c.IndexLookups,
		OutputRows:    c.OutputRows,
	}
}
