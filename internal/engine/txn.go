// Transactions: snapshot-isolated MVCC over the versioned row store. A
// transaction captures a snapshot (the commit timestamp at Begin) and a
// storage view; its writes stage row versions stamped with the transaction
// id, visible only to itself until Commit rewrites them with the next
// commit timestamp under the engine's commit mutex. Conflict detection is
// first-updater-wins: claiming a version another transaction already
// deleted fails the statement immediately with ErrWriteConflict and rolls
// the transaction back — no lock waits, no deadlocks.
//
// DML outside an explicit transaction runs as a single-statement autocommit
// transaction through the same machinery, so autocommit and explicit
// transactions have identical visibility and conflict semantics.
package engine

import (
	"context"
	"fmt"

	"starmagic/internal/core"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

// vacuumThreshold is the number of reclaimable row versions that triggers a
// background vacuum pass after a commit or rollback.
const vacuumThreshold = 256

// txnWrite is one staged row version: an appended insert or a claimed
// delete, identified by its position in the relation's version arrays
// (stable while the marker is unresolved — vacuum skips such relations).
type txnWrite struct {
	rel    *storage.Relation
	pos    int
	insert bool
}

// Txn is an explicit transaction: a snapshot for reads plus a write set of
// staged versions. It is not safe for concurrent use (one session drives
// one transaction, like a MySQL connection). Reads through QueryRows see
// the snapshot plus the transaction's own writes; writes become visible to
// others atomically at Commit.
type Txn struct {
	db     *Database
	id     uint64
	snap   storage.Snap
	view   *storage.View
	writes []txnWrite
	done   bool
}

// Begin starts a transaction on the current committed state. Every Begin
// must be paired with exactly one Commit or Rollback (Rollback is
// idempotent and safe to defer).
func (db *Database) Begin() *Txn {
	id := storage.TxnIDBit | db.txnSeq.Add(1)
	ts := db.retainSnapshot()
	t := &Txn{db: db, id: id, snap: storage.Snap{TS: ts, Self: id}}
	t.view = db.store.NewView(t.snap)
	db.metrics.RecordTxnBegin()
	return t
}

// Commit publishes the transaction's writes: all staged versions are
// stamped with one fresh commit timestamp under the commit mutex, and the
// global clock advances only after every stamp is in place, so readers
// snapshotting mid-commit see either none of the writes (their snapshot
// predates the new timestamp) or, after the clock advances, all of them.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	db := t.db
	defer db.releaseSnapshot(t.snap.TS)
	if len(t.writes) == 0 {
		db.metrics.RecordTxnCommit()
		return nil
	}
	db.commitMu.Lock()
	ts := db.commitTS.Load() + 1
	var deletes int64
	for _, w := range t.writes {
		if w.insert {
			w.rel.FinishAppend(w.pos, ts)
		} else {
			w.rel.FinishDelete(w.pos, ts)
			deletes++
		}
	}
	// Log the commit while still holding the commit mutex: every stamp is
	// final, and the record lands in the write-ahead log in commit-timestamp
	// order. This only buffers — the fsync wait happens after the mutex is
	// released, so the disk is never inside the commit critical section and
	// concurrent committers share one group-commit fsync.
	var walSeq uint64
	var walErr error
	if db.wal != nil {
		walSeq, walErr = db.logCommitLocked(ts, t.writes)
	}
	db.commitTS.Store(ts)
	db.commitMu.Unlock()
	db.statsDirty.Store(true)
	db.metrics.RecordTxnCommit()
	if deletes > 0 {
		db.garbage.Add(deletes)
		db.maybeVacuum()
	}
	if db.wal != nil {
		if walErr == nil {
			walErr = db.wal.WaitDurable(walSeq)
		}
		db.maybeCheckpoint()
		if walErr != nil {
			// The commit is visible in memory but its durability is not
			// guaranteed; surface that so the caller can stop trusting acks.
			return fmt.Errorf("commit applied but not durable: %w", walErr)
		}
	}
	return nil
}

// Rollback discards the transaction's writes: staged inserts become
// invisible to every snapshot, claimed deletes are released. Rolling back
// a finished transaction is a no-op, so `defer t.Rollback()` pairs safely
// with a later Commit.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	db := t.db
	var aborted int64
	for _, w := range t.writes {
		if w.insert {
			w.rel.AbortAppend(w.pos)
			aborted++
		} else {
			w.rel.AbortDelete(w.pos)
		}
	}
	db.releaseSnapshot(t.snap.TS)
	db.metrics.RecordTxnRollback()
	if aborted > 0 {
		db.garbage.Add(aborted)
		db.maybeVacuum()
	}
	return nil
}

// Done reports whether the transaction has been committed or rolled back.
func (t *Txn) Done() bool { return t.done }

// ExecContext runs a script of DML statements (INSERT, UPDATE, DELETE)
// inside the transaction and returns the number of rows affected. DDL is
// rejected — schema changes are autocommit-only. A write-write conflict
// rolls the whole transaction back (MySQL 1213 semantics) and surfaces
// ErrWriteConflict.
func (t *Txn) ExecContext(ctx context.Context, script string) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, st := range stmts {
		if n := sql.CountParams(st); n > 0 {
			return affected, fmt.Errorf("statement uses %d parameter placeholder(s); parameters (?) are only supported in queries (use WithArgs)", n)
		}
		if err := ctx.Err(); err != nil {
			return affected, err
		}
		n, err := t.db.execDML(t, st)
		affected += n
		if err != nil {
			return affected, err
		}
		// Later statements (and queries) must see this statement's writes:
		// re-capture the view so Self-stamped versions appended after the
		// previous capture are in it.
		t.view.Refresh()
	}
	return affected, nil
}

// Exec is ExecContext with a background context.
func (t *Txn) Exec(script string) (int64, error) {
	return t.ExecContext(context.Background(), script)
}

// QueryRows prepares and executes a query inside the transaction: it reads
// the transaction's snapshot plus its own staged writes. Close the cursor
// before Commit/Rollback.
func (t *Txn) QueryRows(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	p, err := t.db.PrepareContext(ctx, query, opts...)
	if err != nil {
		return nil, err
	}
	return p.executeRowsIn(ctx, t)
}

// QueryContext runs a query inside the transaction and drains it into a
// Result.
func (t *Txn) QueryContext(ctx context.Context, query string, opts ...QueryOption) (*Result, error) {
	r, err := t.QueryRows(ctx, query, opts...)
	if err != nil {
		return nil, err
	}
	var rows []datum.Row
	for r.Next() {
		rows = append(rows, r.Row())
	}
	if err := r.Err(); err != nil {
		_ = r.Close()
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &Result{Columns: r.Columns(), Rows: rows, Plan: *r.Plan()}, nil
}

// Query is QueryContext with a background context.
func (t *Txn) Query(query string, opts ...QueryOption) (*Result, error) {
	return t.QueryContext(context.Background(), query, opts...)
}

// execDML dispatches one DML statement into the transaction's write set.
// It holds the database read lock for the statement so the catalog is
// stable against DDL; DML from other transactions proceeds concurrently.
func (db *Database) execDML(t *Txn, st sql.Statement) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	// INSERT ... SELECT optimizes its source query; freshen stale
	// statistics first, outside the read lock (analyze mutates catalog
	// stats under the write lock).
	if ins, ok := st.(*sql.Insert); ok && ins.Query != nil && db.statsDirty.Load() {
		db.mu.Lock()
		if db.statsDirty.Load() {
			db.analyzeLocked()
		}
		db.mu.Unlock()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	switch s := st.(type) {
	case *sql.Insert:
		return t.stageInsert(s)
	case *sql.Delete:
		return t.stageDelete(s)
	case *sql.Update:
		return t.stageUpdate(s)
	}
	return 0, fmt.Errorf("only INSERT, UPDATE and DELETE are allowed in a transaction, got %T", st)
}

// stageAppend validates and appends one row version stamped with the
// transaction id, recording it in the write set.
func (t *Txn) stageAppend(rel *storage.Relation, row datum.Row) error {
	pos, err := rel.Append(row, t.id)
	if err != nil {
		return err
	}
	t.writes = append(t.writes, txnWrite{rel: rel, pos: pos, insert: true})
	return nil
}

// conflict converts a storage conflict into the engine's typed error and
// rolls the transaction back (first-updater-wins losers do not linger).
func (t *Txn) conflict(table string) error {
	t.db.metrics.RecordTxnConflict()
	_ = t.Rollback()
	return fmt.Errorf("table %s: %w", table, ErrWriteConflict)
}

func (t *Txn) stageInsert(s *sql.Insert) (int64, error) {
	db := t.db
	rel, ok := db.store.Relation(s.Table)
	if !ok {
		return 0, fmt.Errorf("table %q not found", s.Table)
	}
	if s.Query != nil {
		return t.stageInsertSelect(rel, s)
	}
	var n int64
	for _, rowExprs := range s.Rows {
		row := make(datum.Row, len(rowExprs))
		for i, e := range rowExprs {
			v, err := evalConstExpr(e)
			if err != nil {
				return n, err
			}
			row[i] = v
		}
		if err := t.stageAppend(rel, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// stageInsertSelect executes INSERT INTO t SELECT ... — the source query
// runs under the full EMST pipeline against the transaction's view (it
// sees the transaction's earlier statements, and never its own output:
// the scan is captured before any append, so self-insertion cannot loop).
func (t *Txn) stageInsertSelect(rel *storage.Relation, s *sql.Insert) (int64, error) {
	db := t.db
	g, err := semant.NewBuilder(db.cat).Build(s.Query)
	if err != nil {
		return 0, err
	}
	tbl, _ := db.cat.Table(s.Table)
	if got, want := len(g.Top.Output)-g.HiddenCols, len(tbl.Columns); got != want {
		return 0, fmt.Errorf("INSERT INTO %s: query yields %d columns, table has %d", s.Table, got, want)
	}
	res, err := core.Optimize(g, core.Options{})
	if err != nil {
		return 0, err
	}
	ev := exec.New(db.store)
	ev.SetView(t.view)
	rows, err := ev.EvalGraph(res.Graph)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, row := range rows {
		if err := t.stageAppend(rel, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (t *Txn) stageDelete(s *sql.Delete) (int64, error) {
	db := t.db
	rel, ok := db.store.Relation(s.Table)
	if !ok {
		return 0, fmt.Errorf("table %q not found", s.Table)
	}
	pred, err := t.compileBoolPred(rel, s.Where)
	if err != nil {
		return 0, err
	}
	n, err := rel.DeleteWhere(t.snap, t.id, pred, func(pos int, _ datum.Row) {
		t.writes = append(t.writes, txnWrite{rel: rel, pos: pos})
	})
	if err == storage.ErrConflict {
		return n, t.conflict(s.Table)
	}
	return n, err
}

func (t *Txn) stageUpdate(s *sql.Update) (int64, error) {
	db := t.db
	rel, ok := db.store.Relation(s.Table)
	if !ok {
		return 0, fmt.Errorf("table %q not found", s.Table)
	}
	meta := rel.Meta
	type setter struct {
		ord int
		fn  func(datum.Row) (datum.D, error)
	}
	var setters []setter
	for _, a := range s.Set {
		ord := meta.ColumnIndex(a.Column)
		if ord < 0 {
			return 0, fmt.Errorf("table %s: unknown column %q", s.Table, a.Column)
		}
		fn, err := db.compileRowExpr(meta, a.Expr)
		if err != nil {
			return 0, err
		}
		setters = append(setters, setter{ord: ord, fn: fn})
	}
	pred, err := t.compileBoolPred(rel, s.Where)
	if err != nil {
		return 0, err
	}
	// Phase 1: claim the matching versions for deletion, computing each
	// replacement row from the OLD row as it is matched. The next staged
	// row is built in the predicate (before the claim) and recorded at the
	// claim, keeping the two lists aligned even if a claim conflicts.
	var updated []datum.Row
	var next datum.Row
	wrapped := func(row datum.Row) (bool, error) {
		match, err := pred(row)
		if err != nil || !match {
			return match, err
		}
		next = row.Clone()
		for _, st := range setters {
			v, err := st.fn(row)
			if err != nil {
				return false, err
			}
			next[st.ord] = v
		}
		return true, nil
	}
	n, err := rel.DeleteWhere(t.snap, t.id, wrapped, func(pos int, _ datum.Row) {
		t.writes = append(t.writes, txnWrite{rel: rel, pos: pos})
		updated = append(updated, next)
	})
	if err == storage.ErrConflict {
		return 0, t.conflict(s.Table)
	}
	if err != nil {
		return 0, err
	}
	// Phase 2: append the replacement versions. The claims made in phase 1
	// hold the relation's positions stable (vacuum skips relations with
	// unresolved markers).
	for _, row := range updated {
		if err := t.stageAppend(rel, row); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// compileBoolPred compiles an optional WHERE expression into a boolean
// row predicate (nil WHERE matches every row).
func (t *Txn) compileBoolPred(rel *storage.Relation, where sql.Expr) (func(datum.Row) (bool, error), error) {
	if where == nil {
		return func(datum.Row) (bool, error) { return true, nil }, nil
	}
	fn, err := t.db.compileRowExpr(rel.Meta, where)
	if err != nil {
		return nil, err
	}
	return func(row datum.Row) (bool, error) {
		v, err := fn(row)
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.T == datum.TBool && v.B, nil
	}, nil
}

// autocommit runs one DML statement as its own transaction.
func (db *Database) autocommit(st sql.Statement) (int64, error) {
	t := db.Begin()
	n, err := db.execDML(t, st)
	if err != nil {
		_ = t.Rollback() // no-op if a conflict already rolled back
		return 0, err
	}
	if err := t.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// retainSnapshot registers a reader at the current commit timestamp and
// returns it; vacuum never reclaims versions a registered snapshot can see.
func (db *Database) retainSnapshot() uint64 {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	ts := db.commitTS.Load()
	if db.snaps == nil {
		db.snaps = make(map[uint64]int)
	}
	db.snaps[ts]++
	return ts
}

// releaseSnapshot drops one reference to a registered snapshot timestamp.
func (db *Database) releaseSnapshot(ts uint64) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if n := db.snaps[ts]; n > 1 {
		db.snaps[ts] = n - 1
	} else {
		delete(db.snaps, ts)
	}
}

// oldestSnapshot returns the vacuum horizon: the oldest registered snapshot
// timestamp, or the current commit timestamp when no reader is live.
func (db *Database) oldestSnapshot() uint64 {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	min := db.commitTS.Load()
	for ts := range db.snaps {
		if ts < min {
			min = ts
		}
	}
	return min
}

// maybeVacuum starts one background vacuum pass when enough reclaimable
// versions have accumulated. At most one pass runs at a time.
func (db *Database) maybeVacuum() {
	if db.garbage.Load() < vacuumThreshold {
		return
	}
	if !db.vacuumBusy.CompareAndSwap(false, true) {
		return
	}
	db.vacuumWG.Add(1)
	go func() {
		defer db.vacuumWG.Done()
		defer db.vacuumBusy.Store(false)
		db.Vacuum()
	}()
}

// Vacuum synchronously reclaims row versions invisible to every live and
// future snapshot (aborted inserts, and versions whose delete committed at
// or before the oldest live snapshot), then compacts the string intern
// table if most of it became garbage. Relations with in-flight transaction
// markers are skipped and picked up by a later pass. Returns the number of
// versions reclaimed. It runs automatically in the background as garbage
// accumulates; calling it explicitly is useful in tests and maintenance
// windows.
func (db *Database) Vacuum() int {
	horizon := db.oldestSnapshot()
	n := db.store.Vacuum(horizon)
	if n > 0 {
		db.garbage.Add(-int64(n))
	}
	db.store.MaybeCompactIntern()
	db.metrics.RecordVacuum(n)
	return n
}
