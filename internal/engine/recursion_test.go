package engine

import (
	"strings"
	"testing"
)

// graphDB builds a small directed graph for transitive-closure tests:
//
//	1 -> 2 -> 3 -> 4      5 -> 6      7 -> 7 (self loop)
//	      \-> 5
func graphDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE edge (src INT, dst INT, PRIMARY KEY (src, dst));
	CREATE INDEX edge_src ON edge (src);
	INSERT INTO edge VALUES (1, 2), (2, 3), (3, 4), (2, 5), (5, 6), (7, 7);
	CREATE VIEW tc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION
	  SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTransitiveClosure(t *testing.T) {
	db := graphDB(t)
	res, err := db.Query("SELECT dst FROM tc WHERE src = 1 ORDER BY dst")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rowsAsStrings(res), ",")
	if got != "2,3,4,5,6" {
		t.Errorf("tc(1) = %s; want 2,3,4,5,6", got)
	}
}

func TestTransitiveClosureAllStrategies(t *testing.T) {
	db := graphDB(t)
	queries := []string{
		"SELECT src, dst FROM tc",
		"SELECT COUNT(*) FROM tc",
		"SELECT src FROM tc WHERE dst = 6",
		"SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src AND t.src = 1",
	}
	for _, q := range queries {
		ref, err := db.QueryWith(q, Original)
		if err != nil {
			t.Fatalf("original %q: %v", q, err)
		}
		want := canonical(ref)
		for _, s := range []Strategy{Correlated, EMST} {
			res, err := db.QueryWith(q, s)
			if err != nil {
				t.Fatalf("%v %q: %v", s, q, err)
			}
			if got := canonical(res); got != want {
				t.Errorf("%v %q:\ngot  %s\nwant %s", s, q, got, want)
			}
		}
	}
}

func TestSelfLoopTerminates(t *testing.T) {
	db := graphDB(t)
	res, err := db.Query("SELECT dst FROM tc WHERE src = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Errorf("tc(7) = %v; want {7}", rowsAsStrings(res))
	}
}

func TestRecursionSetSemantics(t *testing.T) {
	db := graphDB(t)
	// Even with duplicate base edges the fixpoint stays a set.
	if _, err := db.Exec("CREATE TABLE edge2 (src INT, dst INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO edge2 VALUES (1, 2), (1, 2), (2, 3)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW tc2 (src, dst) AS
		SELECT src, dst FROM edge2
		UNION ALL
		SELECT t.src, e.dst FROM tc2 t, edge2 e WHERE t.dst = e.src`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT src, dst FROM tc2")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rowsAsStrings(res) {
		if seen[r] {
			t.Fatalf("duplicate row %q in fixpoint result", r)
		}
		seen[r] = true
	}
	if len(res.Rows) != 3 { // (1,2),(2,3),(1,3)
		t.Errorf("tc2 rows = %v", rowsAsStrings(res))
	}
}

func TestRecursiveViewUsedTwice(t *testing.T) {
	db := graphDB(t)
	res, err := db.Query(`SELECT a.src, b.dst FROM tc a, tc b
		WHERE a.dst = b.src AND a.src = 1 AND b.dst = 4`)
	if err != nil {
		t.Fatal(err)
	}
	// Paths 1 ->* x ->* 4: x in {2, 3}.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", rowsAsStrings(res))
	}
}

func TestMutuallyRecursiveViews(t *testing.T) {
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE step (a INT, b INT, PRIMARY KEY (a, b));
	INSERT INTO step VALUES (0, 1), (1, 2), (2, 3), (3, 4);
	-- even(x, y): y reachable from x in an even number of steps (incl. 0
	-- steps is omitted; base is two steps).
	CREATE VIEW oddr (a, b) AS
	  SELECT a, b FROM step
	  UNION
	  SELECT e.a, s.b FROM evenr e, step s WHERE e.b = s.a;
	CREATE VIEW evenr (a, b) AS
	  SELECT o.a, s.b FROM oddr o, step s WHERE o.b = s.a;
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT b FROM oddr WHERE a = 0 ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rowsAsStrings(res), ",")
	if got != "1,3" {
		t.Errorf("odd reach = %s; want 1,3", got)
	}
	res, err = db.Query("SELECT b FROM evenr WHERE a = 0 ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	got = strings.Join(rowsAsStrings(res), ",")
	if got != "2,4" {
		t.Errorf("even reach = %s; want 2,4", got)
	}
}

func TestAggregationAboveRecursionIsStratified(t *testing.T) {
	db := graphDB(t)
	// Aggregating the COMPLETED fixpoint is stratified and allowed.
	res, err := db.Query("SELECT src, COUNT(*) FROM tc GROUP BY src HAVING COUNT(*) > 2 ORDER BY src")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(rowsAsStrings(res), ";")
	if got != "1|5;2|4" { // tc(1) has 5 rows, tc(2) has 4 (3,4,5,6)
		t.Errorf("agg over tc = %s", got)
	}
}

func TestDivergentRecursionCapped(t *testing.T) {
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE seed (n INT, PRIMARY KEY (n));
	INSERT INTO seed VALUES (0);
	CREATE VIEW counter (n) AS
	  SELECT n FROM seed UNION SELECT n + 1 FROM counter;
	`); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query("SELECT COUNT(*) FROM counter")
	if err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Errorf("divergent recursion should hit the iteration cap, got %v", err)
	}
}
