package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/resource"
)

// spillDB is the random-query oracle schema (see random_test.go) with enough
// rows that a few-KB memory budget forces every stateful operator to spill.
func spillDB(t *testing.T) *Database {
	t.Helper()
	db := newDB(t)
	if _, err := db.Exec(`
	CREATE VIEW bigEarners (empno, workdept, salary) AS
	  SELECT empno, workdept, salary FROM employee WHERE salary >= 500;
	CREATE VIEW deptCounts (workdept, cnt, total) AS
	  SELECT workdept, COUNT(*), SUM(salary) FROM employee GROUPBY workdept;
	CREATE TABLE link (src INT, dst INT, PRIMARY KEY (src, dst));
	INSERT INTO link VALUES (1, 2), (2, 3), (3, 1), (2, 101), (101, 201), (201, 202);
	CREATE VIEW reach (src, dst) AS
	  SELECT src, dst FROM link
	  UNION SELECT r.src, l.dst FROM reach r, link l WHERE r.dst = l.src;
	`); err != nil {
		t.Fatal(err)
	}
	// Bulk rows so join builds, sorts, and group-by state dwarf a few-KB
	// budget: ~1.5k extra employees across the three departments.
	extra := make([]datum.Row, 1500)
	for i := range extra {
		extra[i] = datum.Row{
			datum.Int(int64(1000 + i)),
			datum.String(fmt.Sprintf("worker-%04d", i)),
			datum.Int(int64(i%3 + 1)),
			datum.Float(float64(200 + (i*37)%900)),
		}
	}
	if err := db.InsertRows("employee", extra); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSpillOracleMatchesMaterialized re-runs the streaming-vs-materialized
// random-query oracle with a memory budget small enough to force spilling:
// rows must still match in content AND order, no run may exceed its budget
// (the governor's accounting asserts it), and the workload as a whole must
// actually spill — otherwise the budget was too generous to test anything.
func TestSpillOracleMatchesMaterialized(t *testing.T) {
	db := spillDB(t)
	const limit = 64 << 10
	n := 200
	if testing.Short() {
		n = 50
	}
	gen := &queryGen{rng: rand.New(rand.NewSource(271828))}
	ctx := context.Background()
	var spills int64
	for i := 0; i < n; i++ {
		query := gen.query()
		ref, err := db.QueryContext(ctx, query, WithMaterialized())
		if err != nil {
			t.Fatalf("query %d %q: materialized unlimited: %v", i, query, err)
		}
		for _, mode := range []string{"streaming", "materialized"} {
			opts := []QueryOption{WithMemoryLimit(limit)}
			if mode == "materialized" {
				opts = append(opts, WithMaterialized())
			}
			res, err := db.QueryContext(ctx, query, opts...)
			if err != nil {
				t.Fatalf("query %d %q: %s under %d-byte budget: %v", i, query, mode, limit, err)
			}
			got := strings.Join(rowsAsStrings(res), ";")
			want := strings.Join(rowsAsStrings(ref), ";")
			if got != want {
				t.Fatalf("query %d %q: %s under budget disagrees with unlimited\ngot  %s\nwant %s",
					i, query, mode, got, want)
			}
			if peak := res.Plan.Mem.PeakBytes; peak > limit {
				t.Fatalf("query %d %q: %s peak %d exceeds budget %d", i, query, mode, peak, limit)
			}
			if res.Plan.Mem.LimitBytes != limit {
				t.Fatalf("query %d %q: Mem.LimitBytes = %d, want %d", i, query, res.Plan.Mem.LimitBytes, limit)
			}
			spills += res.Plan.Mem.Spills
		}
	}
	if spills == 0 {
		t.Fatalf("no query spilled under a %d-byte budget; the oracle exercised nothing", limit)
	}
	t.Logf("workload spilled %d times under a %d-byte budget", spills, limit)
}

// TestSpillCountersSurface checks the observability plumbing end to end: a
// budgeted run that spills reports it in PlanInfo.Mem, in the per-operator
// physical plan, and in the database-wide metrics.
func TestSpillCountersSurface(t *testing.T) {
	db := spillDB(t)
	db.ResetMetrics()
	res, err := db.QueryContext(context.Background(),
		`SELECT e.empno, d.deptname FROM employee e, department d
		 WHERE e.workdept = d.deptno ORDER BY e.empno`,
		WithMemoryLimit(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Mem.Spills == 0 || res.Plan.Mem.SpilledBytes == 0 {
		t.Fatalf("run under 2KB budget reports no spills: %+v", res.Plan.Mem)
	}
	if !strings.Contains(res.Plan.Physical, "spills=") {
		t.Fatalf("physical plan missing spill counters:\n%s", res.Plan.Physical)
	}
	var attributed int64
	for _, op := range res.Plan.Operators {
		attributed += op.Spills
	}
	if attributed == 0 {
		t.Fatal("no operator report carries spill counters")
	}
	m := db.Metrics()
	if m.Spills == 0 || m.BytesSpilled == 0 {
		t.Fatalf("metrics missing spill totals: spills=%d bytes=%d", m.Spills, m.BytesSpilled)
	}
	if m.MemPeakBytes == 0 || m.MemPeakBytes > 2<<10 {
		t.Fatalf("metrics MemPeakBytes = %d, want in (0, %d]", m.MemPeakBytes, 2<<10)
	}
}

// TestMemoryExceededTyped checks graceful failure: state that cannot spill
// below the budget (a single row larger than the whole budget) surfaces
// resource.ErrMemoryExceeded instead of OOM-ing, on both executors.
func TestMemoryExceededTyped(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE blob (id INT, body STRING);`); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 64<<10)
	rows := make([]datum.Row, 4)
	for i := range rows {
		rows[i] = datum.Row{datum.Int(int64(i)), datum.String(big + fmt.Sprint(i))}
	}
	if err := db.InsertRows("blob", rows); err != nil {
		t.Fatal(err)
	}
	const query = `SELECT DISTINCT body FROM blob ORDER BY body`
	for _, mode := range []string{"streaming", "materialized"} {
		opts := []QueryOption{WithMemoryLimit(4 << 10)}
		if mode == "materialized" {
			opts = append(opts, WithMaterialized())
		}
		_, err := db.QueryContext(context.Background(), query, opts...)
		if err == nil {
			t.Fatalf("%s: 64KB rows under a 4KB budget succeeded, want error", mode)
		}
		if !errors.Is(err, resource.ErrMemoryExceeded) {
			t.Fatalf("%s: got %v, want resource.ErrMemoryExceeded", mode, err)
		}
	}
	// The same query under no budget (or a sufficient one) succeeds.
	if _, err := db.Query(query); err != nil {
		t.Fatalf("unlimited run failed: %v", err)
	}
	if _, err := db.QueryContext(context.Background(), query, WithMemoryLimit(4<<20)); err != nil {
		t.Fatalf("4MB-budget run failed: %v", err)
	}
}

// TestEngineTotalLimit checks the engine-wide cap is enforced through each
// query's budget even when no per-query limit is set.
func TestEngineTotalLimit(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE blob (id INT, body STRING);`); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("y", 64<<10)
	if err := db.InsertRows("blob", []datum.Row{
		{datum.Int(1), datum.String(big + "a")},
		{datum.Int(2), datum.String(big + "b")},
	}); err != nil {
		t.Fatal(err)
	}
	db.SetMemoryLimit(0, 8<<10)
	_, err := db.Query(`SELECT DISTINCT body FROM blob`)
	if !errors.Is(err, resource.ErrMemoryExceeded) {
		t.Fatalf("got %v, want resource.ErrMemoryExceeded from engine total cap", err)
	}
	stats := db.ResourceStats()
	if stats.UsedBytes != 0 {
		t.Fatalf("governor leaks %d reserved bytes after failed query", stats.UsedBytes)
	}
	db.SetMemoryLimit(0, 0)
	if _, err := db.Query(`SELECT DISTINCT body FROM blob`); err != nil {
		t.Fatalf("uncapped run failed: %v", err)
	}
}

// TestAdmissionQueueStress hammers a 2-slot admission queue from 16
// goroutines under -race: every execution either succeeds or is rejected
// with the typed error, at most 2 run concurrently, and the governor's
// accounting balances when the dust settles.
func TestAdmissionQueueStress(t *testing.T) {
	db := spillDB(t)
	db.SetAdmission(2, 4)
	p, err := db.Prepare(`SELECT e.workdept, COUNT(*) FROM employee e GROUPBY e.workdept`, EMST)
	if err != nil {
		t.Fatal(err)
	}
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := p.Execute()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, resource.ErrAdmissionRejected):
					rejected.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := db.ResourceStats()
	if stats.PeakRunning > 2 {
		t.Fatalf("peak concurrency %d exceeds admission cap 2", stats.PeakRunning)
	}
	if stats.Running != 0 || stats.Waiting != 0 {
		t.Fatalf("governor not drained: running=%d waiting=%d", stats.Running, stats.Waiting)
	}
	if got := stats.Admitted; got != ok.Load() {
		t.Fatalf("admitted %d, but %d executions succeeded", got, ok.Load())
	}
	if got := stats.Rejected; got != rejected.Load() {
		t.Fatalf("governor counted %d rejections, callers saw %d", got, rejected.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no execution succeeded")
	}
	t.Logf("admission stress: %d ok, %d rejected, %d waited", ok.Load(), rejected.Load(), stats.Waited)
}

// TestAdmissionWaitMetrics checks a queued execution records its wait in the
// result and the database metrics, and that WithAdmission(false) bypasses
// the queue entirely.
func TestAdmissionWaitMetrics(t *testing.T) {
	db := spillDB(t)
	db.ResetMetrics()
	db.SetAdmission(1, 8)
	// Hold the only slot directly, then run a query that must queue.
	release, _, err := db.gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		res, err := db.Query(`SELECT e.empno FROM employee e WHERE e.empno = 10`)
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	release()
	res := <-done
	if res == nil {
		t.FailNow()
	}
	if res.Plan.AdmissionWait <= 0 {
		t.Fatalf("queued execution reports AdmissionWait = %v, want > 0", res.Plan.AdmissionWait)
	}
	m := db.Metrics()
	if m.AdmissionWaits == 0 || m.AdmissionWaitNanos == 0 {
		t.Fatalf("metrics missing admission waits: %+v", m)
	}

	// A bypassing query runs even while the slot is held.
	release2, _, err := db.gov.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := db.QueryContext(ctx, `SELECT e.empno FROM employee e WHERE e.empno = 10`,
		WithAdmission(false)); err != nil {
		t.Fatalf("WithAdmission(false) query failed: %v", err)
	}
}

// TestCloseDrainsAndRejects checks engine shutdown: Close blocks until
// running queries drain, subsequent executions fail with ErrClosed, and no
// goroutines are left behind.
func TestCloseDrainsAndRejects(t *testing.T) {
	db := spillDB(t)
	db.SetAdmission(2, 4)
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = db.Query(`SELECT e.workdept, COUNT(*) FROM employee e GROUPBY e.workdept`)
		}()
	}
	wg.Wait()
	db.Close()
	_, err := db.Query(`SELECT e.empno FROM employee e WHERE e.empno = 10`)
	if !errors.Is(err, resource.ErrClosed) {
		t.Fatalf("post-Close query: got %v, want resource.ErrClosed", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
