package engine

import (
	"strings"
	"testing"

	"starmagic/internal/datum"
)

// paperDDL sets up the paper's schema through SQL DDL.
const paperDDL = `
CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
CREATE INDEX emp_workdept ON employee (workdept);
CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
  SELECT e.empno, e.empname, e.workdept, e.salary
  FROM employee e, department d WHERE e.empno = d.mgrno;
CREATE VIEW avgMgrSal (workdept, avgsalary) AS
  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
`

const paperData = `
INSERT INTO department VALUES (1, 'Planning', 101), (2, 'Dev', 201), (3, 'Sales', NULL);
INSERT INTO employee VALUES
  (101, 'alice', 1, 1000), (102, 'bob', 1, 500),
  (201, 'carol', 2, 800), (202, 'dan', 2, 600), (203, 'eve', 2, 700),
  (301, 'frank', 3, 400), (302, 'grace', NULL, 300);
`

func newDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(paperDDL); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec(paperData)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("inserted %d rows; want 10", n)
	}
	return db
}

func rowsAsStrings(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, d := range r {
			parts[i] = d.Format()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestEndToEndQueryD(t *testing.T) {
	db := newDB(t)
	query := `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
	for _, strat := range []Strategy{Original, Correlated, EMST} {
		res, err := db.QueryWith(query, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		got := rowsAsStrings(res)
		if len(got) != 1 || got[0] != "Planning|1|1000" {
			t.Errorf("%v: rows = %v", strat, got)
		}
		if res.Plan.Strategy != strat {
			t.Errorf("strategy echo wrong: %v", res.Plan.Strategy)
		}
	}
}

func TestColumnsNamed(t *testing.T) {
	db := newDB(t)
	res, err := db.Query("SELECT empname AS who, salary FROM employee WHERE empno = 101")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "who" || res.Columns[1] != "salary" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestStrategiesAgreeOnCorpus(t *testing.T) {
	db := newDB(t)
	corpus := []string{
		"SELECT empname FROM mgrSal",
		"SELECT workdept, avgsalary FROM avgMgrSal",
		"SELECT d.deptname FROM department d WHERE EXISTS (SELECT 1 FROM employee e WHERE e.workdept = d.deptno AND e.salary > 700)",
		"SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)",
		"SELECT workdept, COUNT(*) FROM employee GROUP BY workdept HAVING COUNT(*) > 1",
		"SELECT deptno FROM department UNION SELECT workdept FROM employee",
		"SELECT m.empname, d.deptname FROM mgrSal m, department d WHERE m.workdept = d.deptno",
	}
	for _, q := range corpus {
		ref, err := db.QueryWith(q, Original)
		if err != nil {
			t.Fatalf("original %q: %v", q, err)
		}
		want := strings.Join(sortStrings(rowsAsStrings(ref)), ";")
		for _, strat := range []Strategy{Correlated, EMST} {
			res, err := db.QueryWith(q, strat)
			if err != nil {
				t.Fatalf("%v %q: %v", strat, q, err)
			}
			got := strings.Join(sortStrings(rowsAsStrings(res)), ";")
			if got != want {
				t.Errorf("%v %q:\ngot  %s\nwant %s", strat, q, got, want)
			}
		}
	}
}

func sortStrings(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestOrderByThroughEngine(t *testing.T) {
	db := newDB(t)
	res, err := db.Query("SELECT empname FROM employee ORDER BY salary DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(res)
	if len(got) != 2 || got[0] != "alice" || got[1] != "carol" {
		t.Errorf("rows = %v", got)
	}
}

func TestPreparedReexecution(t *testing.T) {
	db := newDB(t)
	p, err := db.Prepare("SELECT COUNT(*) FROM employee", EMST)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].I != 7 || r2.Rows[0][0].I != 7 {
		t.Errorf("counts = %v, %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}

func TestInsertAfterPrepareSeesNewData(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("INSERT INTO employee VALUES (401, 'henry', 1, 950)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 8 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestExplainShowsPhases(t *testing.T) {
	db := newDB(t)
	out, err := db.Explain(`SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`, EMST)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"initial", "phase1", "phase2", "phase3", "cost before EMST", "magic"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	out, err = db.Explain("SELECT empname FROM mgrSal", Correlated)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "correlated") {
		t.Errorf("correlated explain:\n%s", out)
	}
}

func TestDDLErrors(t *testing.T) {
	db := New()
	cases := []string{
		"CREATE TABLE t (a INT, PRIMARY KEY (zzz))",
		"CREATE INDEX i ON missing (a)",
		"INSERT INTO missing VALUES (1)",
		"DROP VIEW missing",
	}
	for _, q := range cases {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q succeeded; want error", q)
		}
	}
}

func TestViewValidationAtCreate(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("CREATE VIEW bad AS SELECT nonexistent FROM employee"); err == nil {
		t.Error("invalid view accepted")
	}
	if _, ok := db.Catalog().View("bad"); ok {
		t.Error("rejected view left registered")
	}
	// Forward references are deferred to first use (mutual recursion).
	if _, err := db.Exec("CREATE VIEW fwd AS SELECT a FROM definedlater"); err != nil {
		t.Errorf("forward reference rejected at create: %v", err)
	}
	if _, err := db.Query("SELECT a FROM fwd"); err == nil {
		t.Error("unresolved forward reference did not error at use")
	}
}

func TestInsertTypeErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("INSERT INTO employee VALUES ('text', 'x', 1, 1)"); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO employee VALUES (1)"); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestInsertConstExpressions(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("INSERT INTO employee VALUES (-500, 'neg', 1 + 1, 2 * 300.5)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT workdept, salary FROM employee WHERE empno = -500")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsAsStrings(res); len(got) != 1 || got[0] != "2|601" {
		t.Errorf("rows = %v", got)
	}
}

func TestCreateIndexRebuildsExistingRows(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("CREATE INDEX emp_sal ON employee (salary)"); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Store().Relation("employee")
	rows, used := rel.Lookup([]int{3}, datum.Row{datum.Float(700)})
	if !used || len(rows) != 1 {
		t.Errorf("index after rebuild: used=%v rows=%d", used, len(rows))
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"emst": EMST, "magic": EMST, "original": Original, "corr": Correlated,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestAutoAnalyzeOnQuery(t *testing.T) {
	db := newDB(t)
	// statsDirty set by the INSERTs; Prepare must trigger Analyze.
	if _, err := db.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	dept, _ := db.Catalog().Table("department")
	if dept.RowCount != 3 {
		t.Errorf("RowCount = %d; want 3 (auto-analyze)", dept.RowCount)
	}
}

func TestPlanInfoPopulated(t *testing.T) {
	db := newDB(t)
	res, err := db.QueryWith("SELECT e.empname FROM employee e, department d WHERE e.workdept = d.deptno", EMST)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.PlansConsidered == 0 {
		t.Error("PlansConsidered not recorded")
	}
	if res.Plan.Counters.BoxEvals == 0 {
		t.Error("Counters not recorded")
	}
}

func TestInsertSelect(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`CREATE TABLE wellpaid (empno INT, salary FLOAT, PRIMARY KEY (empno))`); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec("INSERT INTO wellpaid SELECT empno, salary FROM employee WHERE salary >= 700")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("inserted %d; want 3", n)
	}
	res, err := db.Query("SELECT COUNT(*) FROM wellpaid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	// Arity mismatch rejected.
	if _, err := db.Exec("INSERT INTO wellpaid SELECT empno FROM employee"); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Sourcing from a view through the magic pipeline.
	if _, err := db.Exec("INSERT INTO wellpaid SELECT workdept * 1000, avgsalary FROM avgMgrSal WHERE workdept = 2"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("SELECT salary FROM wellpaid WHERE empno = 2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 800 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestConcurrentQueries hammers the database from several goroutines while
// a writer inserts; run with -race to validate the locking discipline.
func TestConcurrentQueries(t *testing.T) {
	db := newDB(t)
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 30; i++ {
				if _, err := db.Query("SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 2; w++ {
		base := (w + 5) * 1000
		go func() {
			for i := 0; i < 20; i++ {
				if err := db.InsertRows("employee", []datum.Row{
					{datum.Int(int64(base + i)), datum.String("x"), datum.Int(1), datum.Float(1)},
				}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteRows(t *testing.T) {
	db := newDB(t)
	n, err := db.Exec("DELETE FROM employee WHERE salary < 500")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // frank(400) and grace(300)
		t.Fatalf("deleted %d; want 2", n)
	}
	res, err := db.Query("SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 5 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	// Index still consistent after rebuild.
	rel, _ := db.Store().Relation("employee")
	if rows, used := rel.Lookup([]int{0}, []datum.D{datum.Int(101)}); !used || len(rows) != 1 {
		t.Error("pk index broken after delete")
	}
	// DELETE without WHERE empties the table.
	if _, err := db.Exec("DELETE FROM employee"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT COUNT(*) FROM employee")
	if res.Rows[0][0].I != 0 {
		t.Errorf("count after full delete = %v", res.Rows[0][0])
	}
}

func TestDeleteNullPredicateRows(t *testing.T) {
	db := newDB(t)
	// UNKNOWN predicate must not delete (grace has NULL workdept).
	n, err := db.Exec("DELETE FROM employee WHERE workdept > 0")
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("deleted %d; want 6 (grace survives on UNKNOWN)", n)
	}
}

func TestUpdateRows(t *testing.T) {
	db := newDB(t)
	n, err := db.Exec("UPDATE employee SET salary = salary * 2, empname = UPPER(empname) WHERE workdept = 1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("updated %d; want 2", n)
	}
	res, err := db.Query("SELECT empname, salary FROM employee WHERE empno = 101")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsAsStrings(res); got[0] != "ALICE|2000" {
		t.Errorf("row = %v", got)
	}
	// SET expressions see the OLD row: swap-style update is consistent.
	if _, err := db.Exec("UPDATE employee SET workdept = empno, empno = workdept WHERE empno = 201"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT workdept FROM employee WHERE empno = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 201 {
		t.Errorf("swap update: %v", res.Rows)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec("UPDATE employee SET nosuch = 1"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec("UPDATE employee SET salary = 'text'"); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := db.Exec("UPDATE nosuch SET a = 1"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.Exec("DELETE FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)"); err == nil {
		t.Error("subquery in DELETE accepted")
	}
	// Failed UPDATE must not corrupt the table.
	res, _ := db.Query("SELECT COUNT(*) FROM employee")
	if res.Rows[0][0].I != 7 {
		t.Errorf("table corrupted after failed DML: %v", res.Rows[0][0])
	}
}

func TestUpdateInvalidatesStatistics(t *testing.T) {
	db := newDB(t)
	if _, err := db.Query("SELECT 1"); err != nil { // trigger analyze
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM employee WHERE workdept = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT 1"); err != nil { // re-analyze
		t.Fatal(err)
	}
	emp, _ := db.Catalog().Table("employee")
	if emp.RowCount != 4 {
		t.Errorf("stats not refreshed: RowCount = %d", emp.RowCount)
	}
}

func TestOrderByOverUnion(t *testing.T) {
	db := newDB(t)
	res, err := db.Query("SELECT deptno FROM department UNION SELECT workdept FROM employee WHERE workdept IS NOT NULL ORDER BY deptno DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(res)
	if len(got) != 2 || got[0] != "3" || got[1] != "2" {
		t.Errorf("rows = %v", got)
	}
	// Ordinal form.
	res, err = db.Query("SELECT deptno FROM department UNION SELECT workdept FROM employee WHERE workdept IS NOT NULL ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsAsStrings(res); got[0] != "1" {
		t.Errorf("rows = %v", got)
	}
}

func TestDistinctOrderByHiddenColumnRejected(t *testing.T) {
	db := newDB(t)
	_, err := db.Query("SELECT DISTINCT empname FROM employee ORDER BY salary")
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Errorf("want DISTINCT/ORDER BY error, got %v", err)
	}
	// Ordering by a selected column stays fine.
	if _, err := db.Query("SELECT DISTINCT empname FROM employee ORDER BY empname"); err != nil {
		t.Errorf("selected-column order rejected: %v", err)
	}
}

// TestEmptyTables: every strategy must handle empty relations (empty magic
// sets, empty fixpoints, aggregates over nothing).
func TestEmptyTables(t *testing.T) {
	db := New()
	if _, err := db.Exec(paperDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE VIEW tc (a, b) AS
		SELECT empno, workdept FROM employee
		UNION SELECT t.a, e.workdept FROM tc t, employee e WHERE t.b = e.empno`); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s WHERE d.deptno = s.workdept",
		"SELECT COUNT(*), SUM(salary) FROM employee",
		"SELECT workdept, COUNT(*) FROM employee GROUP BY workdept",
		"SELECT a FROM tc WHERE a = 1",
		"SELECT empname FROM employee WHERE workdept IN (SELECT deptno FROM department)",
	}
	for _, q := range queries {
		for _, s := range []Strategy{Original, Correlated, EMST} {
			res, err := db.QueryWith(q, s)
			if err != nil {
				t.Fatalf("%v %q: %v", s, q, err)
			}
			_ = res
		}
	}
	// Scalar aggregate over empty input still yields one row.
	res, err := db.Query("SELECT COUNT(*), SUM(salary) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", rowsAsStrings(res))
	}
}

// TestDistinctAggregateThroughMagic: COUNT(DISTINCT x) inside a view that
// magic restricts.
func TestDistinctAggregateThroughMagic(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`CREATE VIEW salProfile (workdept, distinctSalaries) AS
		SELECT workdept, COUNT(DISTINCT salary) FROM employee GROUPBY workdept`); err != nil {
		t.Fatal(err)
	}
	q := "SELECT d.deptname, v.distinctSalaries FROM department d, salProfile v WHERE d.deptno = v.workdept AND d.deptname = 'Dev'"
	want := ""
	for i, s := range []Strategy{Original, Correlated, EMST} {
		res, err := db.QueryWith(q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got := canonical(res)
		if i == 0 {
			want = got
			if got != "Dev|3" {
				t.Fatalf("rows = %v", rowsAsStrings(res))
			}
		} else if got != want {
			t.Errorf("%v disagrees: %s vs %s", s, got, want)
		}
	}
}

func TestInnerJoinSyntaxEndToEnd(t *testing.T) {
	db := newDB(t)
	res, err := db.Query(`SELECT e.empname, d.deptname
		FROM employee e JOIN department d ON e.workdept = d.deptno
		WHERE d.deptname = 'Dev' ORDER BY e.empname`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(res)
	if len(got) != 3 || got[0] != "carol|Dev" {
		t.Errorf("rows = %v", got)
	}
	// JOIN over a view goes through the magic pipeline like comma joins.
	res, err = db.QueryWith(`SELECT d.deptname, s.avgsalary
		FROM department d JOIN avgMgrSal s ON d.deptno = s.workdept
		WHERE d.deptname = 'Planning'`, EMST)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].F != 1000 {
		t.Errorf("rows = %v", rowsAsStrings(res))
	}
}
