package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomQueryEquivalence generates a few hundred random queries over
// the paper schema and checks that Original, Correlated and EMST all return
// identical multisets. This is the repository's broadest correctness net:
// it routinely exercises view merging, pushdown, magic descent through
// group-by triplets, subquery quantifiers, set operations, NULL semantics
// and the cost-comparison fallback in combination.
func TestRandomQueryEquivalence(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`
	CREATE VIEW bigEarners (empno, workdept, salary) AS
	  SELECT empno, workdept, salary FROM employee WHERE salary >= 500;
	CREATE VIEW deptCounts (workdept, cnt, total) AS
	  SELECT workdept, COUNT(*), SUM(salary) FROM employee GROUPBY workdept;
	CREATE TABLE link (src INT, dst INT, PRIMARY KEY (src, dst));
	INSERT INTO link VALUES (1, 2), (2, 3), (3, 1), (2, 101), (101, 201), (201, 202);
	CREATE VIEW reach (src, dst) AS
	  SELECT src, dst FROM link
	  UNION SELECT r.src, l.dst FROM reach r, link l WHERE r.dst = l.src;
	`); err != nil {
		t.Fatal(err)
	}

	n := 250
	seeds := []int64{42, 1994, 7}
	if testing.Short() {
		n, seeds = 60, seeds[:1]
	}
	for _, seed := range seeds {
		gen := &queryGen{rng: rand.New(rand.NewSource(seed))}
		for i := 0; i < n; i++ {
			query := gen.query()
			ref, err := db.QueryWith(query, Original)
			if err != nil {
				t.Fatalf("query %d %q: original: %v", i, query, err)
			}
			want := canonical(ref)
			for _, s := range []Strategy{Correlated, EMST} {
				res, err := db.QueryWith(query, s)
				if err != nil {
					t.Fatalf("query %d %q: %v: %v", i, query, s, err)
				}
				if got := canonical(res); got != want {
					t.Fatalf("query %d %q: %v disagrees\ngot  %s\nwant %s", i, query, s, got, want)
				}
			}
		}
	}
}

func canonical(res *Result) string {
	rows := rowsAsStrings(res)
	return strings.Join(sortStrings(rows), ";")
}

// queryGen builds random (but always valid) queries over the test schema.
type queryGen struct {
	rng *rand.Rand
}

// tablesWithCols lists relations usable in FROM with their columns.
var genTables = []struct {
	name string
	cols []string
	num  []string // numeric columns usable in comparisons/aggregates
}{
	{"employee", []string{"empno", "empname", "workdept", "salary"}, []string{"empno", "workdept", "salary"}},
	{"department", []string{"deptno", "deptname", "mgrno"}, []string{"deptno", "mgrno"}},
	{"mgrSal", []string{"empno", "empname", "workdept", "salary"}, []string{"empno", "workdept", "salary"}},
	{"avgMgrSal", []string{"workdept", "avgsalary"}, []string{"workdept", "avgsalary"}},
	{"bigEarners", []string{"empno", "workdept", "salary"}, []string{"empno", "workdept", "salary"}},
	{"deptCounts", []string{"workdept", "cnt", "total"}, []string{"workdept", "cnt", "total"}},
}

func (g *queryGen) pick(n int) int { return g.rng.Intn(n) }

func (g *queryGen) query() string {
	switch g.pick(8) {
	case 0:
		return g.selectQuery1Col() + " UNION " + g.selectQuery1Col()
	case 1:
		return g.selectQuery1Col() + " EXCEPT SELECT deptno FROM department WHERE deptno > 1"
	case 2:
		return g.groupedQuery()
	case 3:
		return g.threeWayJoin()
	case 4:
		return g.recursiveQuery()
	case 5:
		return g.derivedTableQuery()
	default:
		return g.selectQuery()
	}
}

// derivedTableQuery wraps a random relation in a FROM subquery, possibly
// grouped, and filters above it.
func (g *queryGen) derivedTableQuery() string {
	t1 := genTables[g.pick(len(genTables))]
	num := t1.num[g.pick(len(t1.num))]
	if g.pick(2) == 0 {
		return fmt.Sprintf(
			"SELECT x.k, x.n FROM (SELECT t1.%s AS k, COUNT(*) AS n FROM %s t1 GROUP BY t1.%s) AS x WHERE x.n > %d",
			num, t1.name, num, g.pick(3))
	}
	return fmt.Sprintf(
		"SELECT x.a FROM (SELECT t1.%s AS a, t1.%s AS b FROM %s t1 WHERE t1.%s IS NOT NULL) AS x, department d WHERE x.a = d.deptno",
		num, num, t1.name, num)
}

// recursiveQuery exercises the fixpoint view under varying bindings.
func (g *queryGen) recursiveQuery() string {
	switch g.pick(4) {
	case 0:
		return fmt.Sprintf("SELECT dst FROM reach WHERE src = %d", g.pick(5))
	case 1:
		return fmt.Sprintf("SELECT src FROM reach WHERE dst = %d", []int{1, 2, 3, 101, 202}[g.pick(5)])
	case 2:
		return "SELECT r.src, e.empname FROM reach r, employee e WHERE r.dst = e.empno"
	default:
		return "SELECT src, COUNT(*) FROM reach GROUP BY src"
	}
}

// groupedQuery emits aggregation with HAVING over a random relation.
func (g *queryGen) groupedQuery() string {
	t1 := genTables[g.pick(len(genTables))]
	grp := t1.num[g.pick(len(t1.num))]
	agg := t1.num[g.pick(len(t1.num))]
	q := fmt.Sprintf("SELECT t1.%s, COUNT(*), SUM(t1.%s) FROM %s t1", grp, agg, t1.name)
	if g.pick(2) == 0 {
		q += " WHERE " + g.localPred("t1", t1.num)
	}
	q += fmt.Sprintf(" GROUP BY t1.%s", grp)
	if g.pick(2) == 0 {
		q += fmt.Sprintf(" HAVING COUNT(*) > %d", g.pick(3))
	}
	return q
}

// threeWayJoin chains three relations on numeric columns.
func (g *queryGen) threeWayJoin() string {
	t1 := genTables[g.pick(len(genTables))]
	t2 := genTables[g.pick(len(genTables))]
	t3 := genTables[g.pick(len(genTables))]
	q := fmt.Sprintf("SELECT t1.%s, t3.%s FROM %s t1, %s t2, %s t3 WHERE t1.%s = t2.%s AND t2.%s = t3.%s",
		t1.cols[g.pick(len(t1.cols))], t3.cols[g.pick(len(t3.cols))],
		t1.name, t2.name, t3.name,
		t1.num[g.pick(len(t1.num))], t2.num[g.pick(len(t2.num))],
		t2.num[g.pick(len(t2.num))], t3.num[g.pick(len(t3.num))])
	if g.pick(2) == 0 {
		q += " AND " + g.localPred("t1", t1.num)
	}
	return q
}

// selectQuery builds SELECT <cols> FROM <1-2 tables> WHERE <preds>.
func (g *queryGen) selectQuery() string {
	t1 := genTables[g.pick(len(genTables))]
	nFrom := 1 + g.pick(2)
	from := fmt.Sprintf("%s t1", t1.name)
	t2 := t1
	joinSyntax := false
	if nFrom == 2 {
		t2 = genTables[g.pick(len(genTables))]
		joinSyntax = g.pick(2) == 0
		if joinSyntax {
			from += fmt.Sprintf(" JOIN %s t2 ON t1.%s = t2.%s", t2.name,
				t1.num[g.pick(len(t1.num))], t2.num[g.pick(len(t2.num))])
		} else {
			from += fmt.Sprintf(", %s t2", t2.name)
		}
	}

	var preds []string
	if nFrom == 2 && !joinSyntax {
		preds = append(preds, fmt.Sprintf("t1.%s = t2.%s",
			t1.num[g.pick(len(t1.num))], t2.num[g.pick(len(t2.num))]))
	}
	for k := g.pick(3); k > 0; k-- {
		preds = append(preds, g.localPred("t1", t1.num))
	}
	if g.pick(4) == 0 {
		preds = append(preds, g.subqueryPred("t1", t1.num))
	}

	cols := fmt.Sprintf("t1.%s", t1.cols[g.pick(len(t1.cols))])
	switch g.pick(5) {
	case 0:
		cols += fmt.Sprintf(", t1.%s", t1.cols[g.pick(len(t1.cols))])
	case 1:
		num := t1.num[g.pick(len(t1.num))]
		cols += fmt.Sprintf(", CASE WHEN t1.%s > %d THEN 'hi' WHEN t1.%s IS NULL THEN 'null' ELSE 'lo' END",
			num, g.pick(500), num)
	case 2:
		num := t1.num[g.pick(len(t1.num))]
		cols += fmt.Sprintf(", COALESCE(t1.%s, -1) + ABS(t1.%s)", num, num)
	case 3:
		num := t1.num[g.pick(len(t1.num))]
		cols += fmt.Sprintf(", (SELECT MAX(e9.salary) FROM employee e9 WHERE e9.workdept = t1.%s)", num)
	}
	distinct := ""
	if g.pick(4) == 0 {
		distinct = "DISTINCT "
	}
	q := fmt.Sprintf("SELECT %s%s FROM %s", distinct, cols, from)
	if len(preds) > 0 {
		q += " WHERE " + strings.Join(preds, " AND ")
	}
	return q
}

// selectQuery1Col yields a single-INT-column query for set operations.
func (g *queryGen) selectQuery1Col() string {
	t1 := genTables[g.pick(len(genTables))]
	col := t1.num[g.pick(len(t1.num))]
	q := fmt.Sprintf("SELECT t1.%s FROM %s t1", col, t1.name)
	if g.pick(2) == 0 {
		q += " WHERE " + g.localPred("t1", t1.num)
	}
	return q
}

func (g *queryGen) localPred(alias string, numCols []string) string {
	col := numCols[g.pick(len(numCols))]
	switch g.pick(6) {
	case 0:
		return fmt.Sprintf("%s.%s IS NOT NULL", alias, col)
	case 1:
		return fmt.Sprintf("%s.%s IN (1, 2, 101, 201)", alias, col)
	case 2:
		return fmt.Sprintf("%s.%s BETWEEN %d AND %d", alias, col, g.pick(3), 100+g.pick(1000))
	case 3:
		return fmt.Sprintf("NOT (%s.%s = %d)", alias, col, g.pick(5))
	default:
		ops := []string{"=", "<", ">", "<=", ">=", "<>"}
		return fmt.Sprintf("%s.%s %s %d", alias, col, ops[g.pick(len(ops))], g.pick(1200))
	}
}

func (g *queryGen) subqueryPred(alias string, numCols []string) string {
	col := numCols[g.pick(len(numCols))]
	switch g.pick(4) {
	case 0:
		return fmt.Sprintf("%s.%s IN (SELECT workdept FROM employee WHERE workdept IS NOT NULL)", alias, col)
	case 1:
		return fmt.Sprintf("%s.%s NOT IN (SELECT deptno FROM department WHERE deptno > 1)", alias, col)
	case 2:
		return fmt.Sprintf("EXISTS (SELECT 1 FROM department d WHERE d.deptno = %s.%s)", alias, col)
	default:
		return fmt.Sprintf("%s.%s > (SELECT AVG(salary) FROM employee e2 WHERE e2.workdept = %s.%s)",
			alias, col, alias, col)
	}
}
