package engine

import (
	"context"
	"strings"
	"testing"
)

// TestGovernedMemoization checks that the evaluator's memoization caches —
// closed-box memo, correlated subquery caches, recursive fixpoint sets —
// run under the memory budget: queries whose caches outgrow the budget
// still succeed (insertion is skipped, work is recomputed), results match
// the unlimited run exactly, the budget's high-water mark stays under the
// cap, and the governor drains fully afterwards.
func TestGovernedMemoization(t *testing.T) {
	db := spillDB(t)
	ctx := context.Background()
	queries := []string{
		// The shared view subtree materializes ~1.5k rows — far beyond the
		// budget — and is referenced twice, so an ungoverned memo would hold
		// it resident while a governed one must skip or evict.
		`SELECT b1.empno FROM bigEarners b1, bigEarners b2
		 WHERE b1.empno = b2.empno AND b1.salary > 900`,
		// Correlated scalar subquery: one cache entry per distinct
		// correlation value of a 1.5k-row outer.
		`SELECT e.empno FROM employee e
		 WHERE e.salary > (SELECT AVG(salary) FROM employee e2 WHERE e2.workdept = e.workdept)
		 AND e.empno < 1100`,
		// Recursive fixpoint: the accumulated set must stay resident, and a
		// few-KB budget comfortably holds this closure.
		`SELECT r.src, e.empname FROM reach r, employee e WHERE r.dst = e.empno`,
	}
	for _, limit := range []int64{8 << 10, 64 << 10} {
		for _, query := range queries {
			ref, err := db.QueryContext(ctx, query)
			if err != nil {
				t.Fatalf("%q unlimited: %v", query, err)
			}
			want := strings.Join(rowsAsStrings(ref), ";")
			for _, mode := range []string{"streaming", "materialized"} {
				opts := []QueryOption{WithMemoryLimit(limit)}
				if mode == "materialized" {
					opts = append(opts, WithMaterialized())
				}
				res, err := db.QueryContext(ctx, query, opts...)
				if err != nil {
					t.Fatalf("%q %s under %d: %v", query, mode, limit, err)
				}
				if got := strings.Join(rowsAsStrings(res), ";"); got != want {
					t.Fatalf("%q %s under %d disagrees with unlimited\ngot  %s\nwant %s",
						query, mode, limit, got, want)
				}
				if peak := res.Plan.Mem.PeakBytes; peak > limit {
					t.Fatalf("%q %s: peak %d exceeds budget %d", query, mode, peak, limit)
				}
			}
		}
	}
	if used := db.ResourceStats().UsedBytes; used != 0 {
		t.Fatalf("governor leaks %d bytes after governed-memoization workload", used)
	}
}
