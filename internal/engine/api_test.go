package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/obs"
)

// denseGraphDB builds a strongly connected graph whose transitive closure
// has n^2 pairs — a recursive query big enough to be cancelled mid-flight.
func denseGraphDB(t *testing.T, n int) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE edge (src INT, dst INT, PRIMARY KEY (src, dst));
	CREATE INDEX edge_src ON edge (src);
	CREATE VIEW tc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION
	  SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
	`); err != nil {
		t.Fatal(err)
	}
	rows := make([]datum.Row, 0, 2*n)
	for i := 0; i < n; i++ {
		rows = append(rows,
			datum.Row{datum.Int(int64(i)), datum.Int(int64((i + 1) % n))},
			datum.Row{datum.Int(int64(i)), datum.Int(int64((i + 3) % n))},
		)
	}
	if err := db.InsertRows("edge", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryContextCancelRecursive is the issue's acceptance scenario: a
// cancelled context must abort a running recursive query, returning
// context.Canceled promptly and leaking no goroutines.
func TestQueryContextCancelRecursive(t *testing.T) {
	db := denseGraphDB(t, 600)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM tc")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (after %v); want context.Canceled", err, elapsed)
	}
	// "Promptly": far sooner than the seconds the full closure takes.
	if elapsed > 2*time.Second {
		t.Errorf("query took %v to notice cancellation", elapsed)
	}
	// No goroutine leak: any executor workers must wind down.
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Errorf("goroutines: %d before, %d after cancellation", before, got)
	}
}

// TestQueryContextCancelParallel cancels a recursive query running with
// intra-query parallelism, exercising context inheritance in child
// evaluators.
func TestQueryContextCancelParallel(t *testing.T) {
	db := denseGraphDB(t, 600)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM tc", WithParallelism(-1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}

func TestQueryContextPreCancelled(t *testing.T) {
	db := newDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT empno FROM employee"); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v; want context.Canceled", err)
	}
}

func TestQueryContextDeadline(t *testing.T) {
	db := denseGraphDB(t, 600)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM tc")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v; want context.DeadlineExceeded", err)
	}
}

// TestTracerPhaseCoverage asserts the issue's span contract: with tracing
// enabled every Figure 2/3 phase emits exactly one span.
func TestTracerPhaseCoverage(t *testing.T) {
	cases := []struct {
		strategy Strategy
		phases   []string
	}{
		{EMST, []string{"parse", "bind", "phase1", "plan-opt1", "phase2", "phase3", "plan-opt2", "lower", "execute"}},
		{Original, []string{"parse", "bind", "phase1", "plan-opt1", "lower", "execute"}},
		{Correlated, []string{"parse", "bind", "phase1", "plan-opt1", "correlate", "plan-opt2", "lower", "execute"}},
	}
	query := `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
	for _, tc := range cases {
		t.Run(tc.strategy.String(), func(t *testing.T) {
			db := newDB(t)
			rec := obs.NewRecorder()
			if _, err := db.QueryContext(context.Background(), query,
				WithStrategy(tc.strategy), WithTracer(rec)); err != nil {
				t.Fatal(err)
			}
			var names []string
			for _, s := range rec.Spans() {
				names = append(names, s.Name)
			}
			if got, want := strings.Join(names, " "), strings.Join(tc.phases, " "); got != want {
				t.Errorf("spans:\ngot  %s\nwant %s", got, want)
			}
			for _, s := range rec.Spans() {
				if s.Duration < 0 {
					t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
				}
			}
		})
	}
}

// TestExplainContextStructured checks the structured explain output: phase
// timings, QGM snapshots, rule-fire counts, and the cost comparison.
func TestExplainContextStructured(t *testing.T) {
	db := newDB(t)
	query := `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
	info, err := db.ExplainContext(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parse", "bind", "phase1", "plan-opt1", "phase2", "phase3", "plan-opt2"} {
		if _, ok := info.Phase(name); !ok {
			t.Errorf("phase %q missing from ExplainInfo", name)
		}
	}
	for _, name := range []string{"initial", "phase1", "phase2", "phase3"} {
		p, ok := info.Phase(name)
		if !ok || !p.HasSnapshot {
			t.Errorf("phase %q has no QGM snapshot", name)
			continue
		}
		if p.Dump == "" || p.DOT == "" || p.Boxes.Boxes == 0 {
			t.Errorf("phase %q snapshot incomplete: dump=%d dot=%d boxes=%d",
				name, len(p.Dump), len(p.DOT), p.Boxes.Boxes)
		}
	}
	// Query D fires magic (phase 2) and merge (phase 1) at minimum.
	if info.RuleFires("emst") == 0 {
		t.Errorf("emst rule fires = 0; rules = %+v", info.Rules)
	}
	if info.RuleFires("merge") == 0 {
		t.Errorf("merge rule fires = 0; rules = %+v", info.Rules)
	}
	if info.RuleFires("no-such-rule") != 0 {
		t.Error("unknown rule reports fires")
	}
	if info.CostBefore <= 0 || info.CostAfter <= 0 {
		t.Errorf("costs %v/%v; want positive", info.CostBefore, info.CostAfter)
	}
	if !info.UsedEMST {
		t.Error("query D should choose the EMST plan")
	}
	if info.PlanDOT == "" {
		t.Error("PlanDOT missing")
	}
	if len(info.JoinOrders) == 0 {
		t.Error("no join orders reported")
	}
	// The rendered text keeps the legacy markers.
	text := info.String()
	for _, want := range []string{"initial", "phase1", "phase2", "phase3", "cost before EMST", "magic", "rules:", "phases:"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

// TestPreparedCountersReset verifies each execution reports its own
// counters: N identical runs each see the same work, not a running total.
func TestPreparedCountersReset(t *testing.T) {
	db := newDB(t)
	p, err := db.PrepareContext(context.Background(),
		"SELECT workdept, AVG(salary) FROM employee GROUPBY workdept")
	if err != nil {
		t.Fatal(err)
	}
	var first exec.Counters
	for i := 0; i < 3; i++ {
		res, err := p.ExecuteContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Plan.Counters
			if first.BaseRows == 0 {
				t.Fatal("first run scanned no base rows")
			}
			continue
		}
		if res.Plan.Counters != first {
			t.Errorf("run %d counters %+v; want %+v (per-run, not cumulative)",
				i, res.Plan.Counters, first)
		}
	}
}

func TestParseStrategyErrors(t *testing.T) {
	good := map[string]Strategy{
		"emst": EMST, "EMST": EMST, "magic": EMST,
		"original": Original, "orig": Original,
		"correlated": Correlated, "corr": Correlated,
	}
	for name, want := range good {
		s, err := ParseStrategy(name)
		if err != nil || s != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, nil", name, s, err, want)
		}
	}
	for _, name := range []string{"", "emst ", "semi-naive", "Original!", "c"} {
		if s, err := ParseStrategy(name); err == nil {
			t.Errorf("ParseStrategy(%q) = %v; want error", name, s)
		} else if !strings.Contains(err.Error(), "strategy") {
			t.Errorf("ParseStrategy(%q) error %q does not name the problem", name, err)
		}
	}
}

func TestWithRowLimit(t *testing.T) {
	db := denseGraphDB(t, 80) // closure has 6400 pairs
	_, err := db.QueryContext(context.Background(), "SELECT src, dst FROM tc", WithRowLimit(100))
	if err == nil || !strings.Contains(err.Error(), "row budget") {
		t.Errorf("err = %v; want row-limit error", err)
	}
	res, err := db.QueryContext(context.Background(),
		"SELECT dst FROM tc WHERE src = 0 AND dst = 1", WithRowLimit(1_000_000))
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("generous limit: res=%v err=%v", res, err)
	}
}

// TestConcurrentQueryContext hammers one database from many goroutines with
// mixed strategies, tracers, and per-call parallelism under -race.
func TestConcurrentQueryContext(t *testing.T) {
	db := newDB(t)
	query := `SELECT d.deptname, s.avgsalary FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND s.avgsalary > 100`
	want := func() string {
		res, err := db.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		return canonical(res)
	}()

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	strategies := []Strategy{EMST, Original, Correlated}
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				opts := []QueryOption{WithStrategy(strategies[(i+j)%len(strategies)])}
				if j%2 == 0 {
					opts = append(opts, WithTracer(obs.NewRecorder()))
				}
				if j%3 == 0 {
					opts = append(opts, WithParallelism(2))
				}
				res, err := db.QueryContext(context.Background(), query, opts...)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d: %v", i, err)
					return
				}
				if got := canonical(res); got != want {
					errCh <- fmt.Errorf("goroutine %d: got %s want %s", i, got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	m := db.Metrics()
	if m.Queries != goroutines*8+1 {
		t.Errorf("metrics queries = %d; want %d", m.Queries, goroutines*8+1)
	}
	if m.Errors != 0 {
		t.Errorf("metrics errors = %d", m.Errors)
	}
}

// TestMetricsLifecycle walks the sink through successes, a parse error, and
// a reset via the public API.
func TestMetricsLifecycle(t *testing.T) {
	db := newDB(t)
	ctx := context.Background()
	if _, err := db.QueryContext(ctx, "SELECT empno FROM employee"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(ctx, "SELECT FROM nonsense ("); err == nil {
		t.Fatal("bad query succeeded")
	}
	p, err := db.PrepareContext(ctx, "SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.ExecuteContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	// 2 successful plans + 1 failed; 1 + 2 executions.
	if m.Plans != 3 || m.Queries != 3 || m.Errors != 1 {
		t.Errorf("plans=%d queries=%d errors=%d; want 3, 3, 1", m.Plans, m.Queries, m.Errors)
	}
	if m.ByStrategy["emst"] != 3 {
		t.Errorf("by strategy = %v", m.ByStrategy)
	}
	if m.Exec.BaseRows == 0 || m.Exec.OutputRows == 0 {
		t.Errorf("exec stats empty: %+v", m.Exec)
	}
	db.ResetMetrics()
	if m2 := db.Metrics(); m2.Plans != 0 || m2.Queries != 0 {
		t.Errorf("after reset: %+v", m2)
	}
}
