package engine

import (
	"fmt"
	"strings"
	"time"

	"starmagic/internal/core"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/rewrite"
)

// ExplainInfo is the structured account of one query's trip through the
// paper's Figure 2/3 pipeline: a timed entry per phase (parse, bind, the
// three rewrite phases, both plan-optimization passes, and — after
// execution — the run itself), per-rule attempt/fire counts, the §3.2 cost
// comparison and its winner, and the plan optimizer's join orders. QGM
// snapshots (the Figure 4 panels) are attached to the rewrite phases when
// captured (ExplainContext always captures them; WithSnapshots opts a
// QueryContext call in). String renders the whole thing as text.
type ExplainInfo struct {
	Query    string
	Strategy Strategy
	// Phases in pipeline order. Entries with HasSnapshot carry the QGM
	// graph as it stood after that phase.
	Phases []PhaseInfo
	// Rules tallies rewrite-rule activity across all rewrite phases.
	Rules []rewrite.RuleStat
	// CostBefore/CostAfter are the §3.2 plan-cost estimates around EMST,
	// and UsedEMST is the comparison's winner. For strategies that skip the
	// comparison both costs describe the only plan produced.
	CostBefore, CostAfter float64
	UsedEMST              bool
	// PlansConsidered sums join orders examined across plan optimizations.
	PlansConsidered int
	// JoinOrders lists the chosen quantifier order per multi-quantifier
	// select box of the executed plan.
	JoinOrders []JoinOrder
	// Physical renders the lowered physical operator tree (cardinality
	// estimates only — per-operator execution counters appear on
	// Result.Plan.Physical after a run); Operators is the structured form.
	Physical  string
	Operators []plan.OpReport
	// PlanDOT is the Graphviz rendering of the executed plan (captured with
	// the snapshots).
	PlanDOT string
	// Params is the number of `?` placeholders the query declares. Their
	// values are unknown at plan time, so predicates over them use the
	// optimizer's default selectivities.
	Params int
	// CacheStatus reports how the plan cache served this prepare: "hit",
	// "miss" (optimized cold and stored), "reopt" (execution feedback
	// re-optimized a cached plan with observed cardinalities injected), or
	// "bypass" (cache disabled or a tracer was attached). CacheEpoch is the
	// catalog epoch the plan is valid for.
	CacheStatus string
	CacheEpoch  uint64
}

// PhaseInfo is one pipeline phase: its wall-clock and, for rewrite phases
// with snapshots captured, the QGM graph after it.
type PhaseInfo struct {
	Name     string
	Duration time.Duration
	// HasSnapshot marks phases whose Boxes/Dump/DOT fields are populated.
	HasSnapshot bool
	Boxes       qgm.Stats
	Dump        string
	DOT         string
}

// JoinOrder is the plan optimizer's chosen quantifier order in one box.
type JoinOrder struct {
	Box   string
	Order []string
}

// Phase returns the first phase with the given name, if any.
func (e *ExplainInfo) Phase(name string) (PhaseInfo, bool) {
	for _, p := range e.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseInfo{}, false
}

// RuleFires returns the fire count of one rewrite rule (0 if it never ran).
func (e *ExplainInfo) RuleFires(rule string) int64 {
	for _, r := range e.Rules {
		if r.Rule == rule {
			return r.Fires
		}
	}
	return 0
}

// String renders the explain output: the QGM graph after each captured
// phase (the paper's Figure 4 panels), per-phase timings, rule-fire counts,
// the cost comparison, and the executed plan's join orders.
func (e *ExplainInfo) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy: %s\n", e.Strategy)
	if e.CacheStatus != "" {
		fmt.Fprintf(&sb, "cache: %s (epoch %d)\n", e.CacheStatus, e.CacheEpoch)
	}
	if e.Params > 0 {
		fmt.Fprintf(&sb, "parameters: %d (planned with default selectivities)\n", e.Params)
	}
	for _, p := range e.Phases {
		if !p.HasSnapshot {
			continue
		}
		fmt.Fprintf(&sb, "-- %s -- (%s)\n%s\n", p.Name, p.Boxes, p.Dump)
	}
	if len(e.Phases) > 0 {
		sb.WriteString("phases:\n")
		for _, p := range e.Phases {
			if p.Name == "initial" {
				continue // a snapshot, not work
			}
			fmt.Fprintf(&sb, "  %-10s %v\n", p.Name, p.Duration)
		}
	}
	if len(e.Rules) > 0 {
		sb.WriteString("rules:\n")
		for _, r := range e.Rules {
			fmt.Fprintf(&sb, "  %-22s fires=%-4d attempts=%d\n", r.Rule, r.Fires, r.Attempts)
		}
	}
	if e.Strategy != Correlated {
		fmt.Fprintf(&sb, "cost before EMST: %.1f\ncost after EMST:  %.1f\nexecuting: ", e.CostBefore, e.CostAfter)
		if e.UsedEMST {
			sb.WriteString("EMST plan\n")
		} else {
			sb.WriteString("pre-EMST plan\n")
		}
	}
	if len(e.JoinOrders) > 0 {
		sb.WriteString("join orders:\n")
		for _, jo := range e.JoinOrders {
			fmt.Fprintf(&sb, "  %s: %s\n", jo.Box, strings.Join(jo.Order, " "))
		}
	}
	if e.Physical != "" {
		sb.WriteString("physical plan:\n")
		for _, line := range strings.Split(strings.TrimRight(e.Physical, "\n"), "\n") {
			sb.WriteString("  " + line + "\n")
		}
	}
	return sb.String()
}

// addPipelinePhases merges a pipeline result's stage timings and snapshots
// into phase entries, appended after any already present (parse, bind).
func (e *ExplainInfo) addPipelinePhases(res *core.Result) {
	snaps := map[string]core.Snapshot{}
	for _, s := range res.Snapshots {
		snaps[s.Name] = s
	}
	attach := func(p PhaseInfo) PhaseInfo {
		if s, ok := snaps[p.Name]; ok {
			p.HasSnapshot = true
			p.Boxes = s.Stats
			p.Dump = s.Dump
			p.DOT = s.DOT
		}
		return p
	}
	if _, ok := snaps["initial"]; ok {
		e.Phases = append(e.Phases, attach(PhaseInfo{Name: "initial"}))
	}
	for _, t := range res.Phases {
		e.Phases = append(e.Phases, attach(PhaseInfo{Name: t.Name, Duration: t.Duration}))
	}
	e.Rules = res.RuleStats
}

// joinOrders extracts the plan optimizer's chosen quantifier order per
// multi-quantifier select box.
func joinOrders(g *qgm.Graph) []JoinOrder {
	var out []JoinOrder
	for _, b := range g.Reachable() {
		if b.Kind != qgm.KindSelect || len(b.Quantifiers) < 2 {
			continue
		}
		jo := JoinOrder{Box: b.Name}
		for _, q := range b.OrderedQuantifiers() {
			jo.Order = append(jo.Order, q.Name)
		}
		out = append(out, jo)
	}
	return out
}
