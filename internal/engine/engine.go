// Package engine glues the layers into a database: SQL in, rows out. It
// owns the catalog and storage, executes DDL and INSERT statements, and
// runs queries under one of the three strategies the paper's Table 1
// compares — Original (phase-1 rewrite only), Correlated (views evaluated
// per outer row), and EMST (the full three-phase magic pipeline with the
// cost-comparison guarantee). It is the executable form of the paper's
// Figure 2 architecture.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/obs"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/resource"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
	"starmagic/internal/wal"
)

// Strategy selects how a query is optimized and executed.
type Strategy int

// Strategies (the three columns of the paper's Table 1).
const (
	// EMST runs the full three-phase pipeline; the cheaper of the pre- and
	// post-transformation plans executes (§3.2). This is the default.
	EMST Strategy = iota
	// Original runs only phase-1 rewrite: views materialize in full.
	Original
	// Correlated pushes join predicates into private view copies as
	// correlation and re-evaluates them per outer row without caching.
	Correlated
)

func (s Strategy) String() string {
	switch s {
	case EMST:
		return "emst"
	case Original:
		return "original"
	case Correlated:
		return "correlated"
	}
	return "?"
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "emst", "magic":
		return EMST, nil
	case "original", "orig":
		return Original, nil
	case "correlated", "corr":
		return Correlated, nil
	}
	return EMST, fmt.Errorf("unknown strategy %q (want emst, original, or correlated)", name)
}

// Database is an embedded starmagic instance. It is safe for concurrent
// use: DDL and data loading serialize behind a write lock; queries share a
// read lock (each execution uses its own evaluator state).
type Database struct {
	mu    sync.RWMutex
	cat   *catalog.Catalog
	store *storage.Store
	// statsDirty triggers re-ANALYZE before the next optimization. It is
	// atomic so the prepare hot path can check it without taking the write
	// lock (double-checked: the lock is acquired only when it reads true).
	statsDirty atomic.Bool
	// epoch is the catalog epoch: it advances on schema changes and
	// explicit ANALYZE — the events that can invalidate a cached plan's
	// shape — and plan-cache entries prepared under earlier epochs are not
	// reused. DML does not advance it: under MVCC, data changes only dirty
	// statistics (plans stay structurally valid and visibility is the
	// snapshot's job, not the cache's).
	epoch atomic.Uint64
	// commitTS is the global commit clock: transactions snapshot it at
	// Begin and Commit advances it after stamping the write set.
	commitTS atomic.Uint64
	// txnSeq allocates transaction ids (storage.TxnIDBit | seq).
	txnSeq atomic.Uint64
	// commitMu serializes commit stamping against the clock advance.
	commitMu sync.Mutex
	// snapMu guards snaps, the refcounts of live snapshot timestamps; the
	// minimum key is the vacuum horizon.
	snapMu sync.Mutex
	snaps  map[uint64]int
	// garbage estimates reclaimable row versions; crossing vacuumThreshold
	// triggers a background vacuum (vacuumBusy keeps passes from stacking,
	// vacuumWG lets Close wait one out).
	garbage    atomic.Int64
	vacuumBusy atomic.Bool
	vacuumWG   sync.WaitGroup
	// wal is the write-ahead log of a durable database (nil when opened
	// in-memory with New; see OpenDir in durable.go). ckptMu serializes
	// checkpoints; ckptBusy/ckptWG schedule the background size-triggered
	// checkpoint the same way vacuumBusy/vacuumWG schedule vacuum;
	// ckptThreshold is the segment size that arms the trigger.
	wal           *wal.Log
	ckptMu        sync.Mutex
	ckptBusy      atomic.Bool
	ckptWG        sync.WaitGroup
	ckptThreshold atomic.Int64
	// recoveryNanos/recoveryRecords describe what OpenDir replayed (fixed
	// after open; surfaced via Metrics and RecoveryStats).
	recoveryNanos   int64
	recoveryRecords int64
	// plans caches prepared plans by normalized SQL + strategy (see cache.go).
	plans *planCache
	// parallelism is handed to each query's evaluator (see SetParallelism).
	parallelism int
	// metrics accumulates plan and execution samples (see Metrics).
	metrics obs.MetricsSink
	// gov enforces the engine-wide memory cap and admission control across
	// all executions (see SetMemoryLimit, SetAdmission).
	gov *resource.Governor
	// memLimit is the default per-query memory budget (see SetMemoryLimit);
	// WithMemoryLimit overrides it per call.
	memLimit atomic.Int64
	// noVec disables the vectorized select operator (see SetVectorized).
	// The zero value means vectorized execution is on.
	noVec atomic.Bool
	// noFeedback disables the execution-feedback loop (see SetFeedback);
	// the zero value means feedback is on.
	noFeedback atomic.Bool
	// noHist makes estimators ignore column histograms (see SetHistograms);
	// the zero value means histograms are used.
	noHist atomic.Bool
}

// New returns an empty database. The plan cache starts enabled; no memory or
// admission limits are set.
func New() *Database {
	return &Database{
		cat:   catalog.New(),
		store: storage.NewStore(),
		plans: newPlanCache(0),
		gov:   resource.NewGovernor(),
	}
}

// Epoch returns the current catalog epoch (see ExplainInfo.CacheEpoch).
func (db *Database) Epoch() uint64 { return db.epoch.Load() }

// Catalog exposes the schema directory (read-mostly; use Exec for DDL).
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Store exposes the storage layer for bulk loading.
func (db *Database) Store() *storage.Store { return db.store }

// SetParallelism configures intra-query parallelism for subsequent
// executions: concurrent materialization of independent closed view subtrees
// and parallel hash-join builds. 0 or 1 executes serially (the default);
// negative means GOMAXPROCS workers. Results are identical to serial
// execution regardless of the setting.
func (db *Database) SetParallelism(n int) {
	db.mu.Lock()
	db.parallelism = n
	db.mu.Unlock()
}

// SetMemoryLimit configures memory governance: perQuery caps each
// execution's resident operator state (hash tables, sort buffers, distinct
// and group-by state, recursive seen-sets) and total caps the sum across all
// concurrent executions. 0 disables the respective cap. Under a cap,
// spill-capable operators move state to temporary files instead of failing;
// state that cannot spill surfaces resource.ErrMemoryExceeded (detect with
// errors.Is) rather than exhausting process memory. WithMemoryLimit
// overrides the per-query cap for one call.
func (db *Database) SetMemoryLimit(perQuery, total int64) {
	if perQuery < 0 {
		perQuery = 0
	}
	db.memLimit.Store(perQuery)
	db.gov.SetTotalLimit(total)
}

// SetAdmission configures admission control: at most maxConcurrent query
// executions run at once, and at most maxQueue more wait (FIFO) for a slot.
// Executions beyond both caps — and executions whose context is already done
// when they reach the queue — fail with resource.ErrAdmissionRejected or the
// context's error instead of piling up. maxConcurrent <= 0 disables
// admission control. Admission applies to execution only: preparing a plan
// (and plan-cache interaction, including single-flight misses) never queues.
func (db *Database) SetAdmission(maxConcurrent, maxQueue int) {
	db.gov.SetAdmission(maxConcurrent, maxQueue)
}

// SetVectorized toggles the vectorized select operator for subsequent
// executions. It is on by default: eligible select plans (see the
// [vectorizable] marker in EXPLAIN) run over typed column batches with
// interned string keys instead of row-at-a-time streaming. Turning it off
// forces every plan onto the row pipeline; results are identical either
// way, so the switch exists for A/B benchmarking and as an escape hatch.
func (db *Database) SetVectorized(on bool) {
	db.noVec.Store(!on)
}

// SetFeedback toggles the execution-feedback loop (on by default): after
// each fully-drained execution of a cached plan, per-operator actual
// cardinalities are EMA-folded into the plan-cache entry, and an entry whose
// worst estimate-vs-actual q-error exceeds 8x is re-optimized — with the
// observed cardinalities injected as estimates — at its next prepare.
// Turning feedback off stops both the observation and any pending
// re-optimizations; learned state on live entries is kept.
func (db *Database) SetFeedback(on bool) { db.noFeedback.Store(!on) }

// FeedbackEnabled reports whether the execution-feedback loop is active.
func (db *Database) FeedbackEnabled() bool { return !db.noFeedback.Load() }

// SetHistograms toggles histogram-backed selectivity estimation (on by
// default). Off, the optimizer reverts to flat defaults — the pre-adaptive
// cost model — which exists for A/B comparisons of plan choices on skewed
// data. The plan cache is purged so the change takes effect immediately.
func (db *Database) SetHistograms(on bool) {
	db.noHist.Store(!on)
	db.plans.purge()
}

// HistogramsEnabled reports whether estimators consult column histograms.
func (db *Database) HistogramsEnabled() bool { return !db.noHist.Load() }

// ResourceStats returns a snapshot of the memory governor and admission
// queue: bytes reserved and spilled, high-water marks, and admission
// wait/reject counters.
func (db *Database) ResourceStats() resource.GovernorStats { return db.gov.Stats() }

// Close shuts the database down: queued executions are rejected, new
// executions fail with resource.ErrClosed, and Close blocks until admitted
// executions drain (only executions that went through admission control are
// tracked, so that part is a no-op unless SetAdmission configured a cap)
// and until any in-flight background vacuum or checkpoint pass finishes.
// On a durable database (OpenDir) the write-ahead log is then flushed,
// fsynced, and closed, so a clean shutdown loses nothing under any
// durability policy; further commits fail with wal.ErrClosed. The in-memory
// catalog and storage remain readable.
func (db *Database) Close() error {
	db.gov.Close()
	db.vacuumWG.Wait()
	db.ckptWG.Wait()
	if db.wal == nil {
		return nil
	}
	// Durable databases also flush and fsync the write-ahead log before the
	// segment file closes, so even under SyncNever nothing buffered is lost
	// to a clean shutdown.
	return db.wal.Close()
}

// Exec runs a script of DDL/DML statements separated by semicolons and
// returns the number of rows affected. Each DML statement runs as its own
// autocommit transaction (use Begin for multi-statement transactions); DDL
// statements serialize behind the database write lock as before.
func (db *Database) Exec(script string) (int64, error) {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, st := range stmts {
		n, err := db.execStmt(st)
		affected += n
		if err != nil {
			return affected, err
		}
	}
	return affected, nil
}

func (db *Database) execStmt(st sql.Statement) (int64, error) {
	if n := sql.CountParams(st); n > 0 {
		return 0, fmt.Errorf("statement uses %d parameter placeholder(s); parameters (?) are only supported in queries (use WithArgs)", n)
	}
	switch st.(type) {
	case *sql.Insert, *sql.Delete, *sql.Update:
		return db.autocommit(st)
	case *sql.SelectStatement:
		return 0, fmt.Errorf("use Query for SELECT statements")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	n, err := db.execDDL(st)
	if err == nil {
		// Schema changes are logged as SQL text and made durable before the
		// statement returns, whatever the commit fsync policy: DDL is rare
		// and losing one desynchronizes every later record on its table.
		err = db.logDDL(st)
	}
	return n, err
}

// execDDL handles schema statements under the database write lock.
func (db *Database) execDDL(st sql.Statement) (int64, error) {
	switch s := st.(type) {
	case *sql.CreateTable:
		return 0, db.createTable(s)
	case *sql.CreateView:
		// Register first so the body may reference the view itself
		// (recursive views), then validate. Unresolved table references are
		// tolerated — they may be forward references to views defined later
		// (mutual recursion); every other error rejects the definition.
		if err := db.cat.AddView(&catalog.View{Name: s.Name, Columns: s.Cols, SQL: s.SQL}); err != nil {
			return 0, err
		}
		if _, err := semant.NewBuilder(db.cat).Build(s.Query); err != nil {
			var nf *semant.NotFoundError
			if errors.As(err, &nf) && nf.Kind == "table" {
				db.epoch.Add(1)
				return 0, nil // deferred: resolved at first use
			}
			_ = db.cat.DropView(s.Name)
			return 0, fmt.Errorf("view %s: %w", s.Name, err)
		}
		db.epoch.Add(1)
		return 0, nil
	case *sql.CreateIndex:
		return 0, db.createIndex(s)
	case *sql.DropView:
		if err := db.cat.DropView(s.Name); err != nil {
			return 0, err
		}
		db.epoch.Add(1)
		return 0, nil
	case *sql.DropTable:
		if err := db.cat.DropTable(s.Name); err != nil {
			return 0, err
		}
		db.store.Drop(s.Name)
		db.statsDirty.Store(true)
		db.epoch.Add(1)
		db.store.MaybeCompactIntern()
		return 0, nil
	}
	return 0, fmt.Errorf("unsupported statement %T", st)
}

func (db *Database) createTable(s *sql.CreateTable) error {
	t := &catalog.Table{Name: s.Name}
	for _, c := range s.Cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c.Name, Type: c.Type})
	}
	resolve := func(names []string) ([]int, error) {
		out := make([]int, len(names))
		for i, n := range names {
			ord := t.ColumnIndex(n)
			if ord < 0 {
				return nil, fmt.Errorf("table %s: unknown key column %q", s.Name, n)
			}
			out[i] = ord
		}
		return out, nil
	}
	if len(s.PrimaryKey) > 0 {
		pk, err := resolve(s.PrimaryKey)
		if err != nil {
			return err
		}
		t.Keys = append(t.Keys, pk)
		t.Indexes = append(t.Indexes, pk)
	}
	for _, u := range s.Uniques {
		cols, err := resolve(u)
		if err != nil {
			return err
		}
		t.Keys = append(t.Keys, cols)
		t.Indexes = append(t.Indexes, cols)
	}
	if err := db.cat.AddTable(t); err != nil {
		return err
	}
	db.store.Create(t)
	db.epoch.Add(1)
	return nil
}

func (db *Database) createIndex(s *sql.CreateIndex) error {
	t, ok := db.cat.Table(s.Table)
	if !ok {
		return fmt.Errorf("table %q not found", s.Table)
	}
	cols := make([]int, len(s.Cols))
	for i, n := range s.Cols {
		ord := t.ColumnIndex(n)
		if ord < 0 {
			return fmt.Errorf("table %s: unknown column %q", s.Table, n)
		}
		cols[i] = ord
	}
	if t.HasIndex(cols) {
		return nil
	}
	t.Indexes = append(t.Indexes, cols)
	if s.Unique {
		t.Keys = append(t.Keys, cols)
	}
	// Build the index in place over the existing versions (dead ones are
	// filtered by visibility at lookup). No storage rebuild: positions held
	// by in-flight transactions stay valid.
	rel, _ := db.store.Relation(s.Table)
	rel.AddIndex(cols)
	db.epoch.Add(1)
	return nil
}

// compileRowExpr binds an expression against a single table's columns and
// returns an evaluator over stored rows. Subqueries are rejected (DML
// predicates are row-local).
func (db *Database) compileRowExpr(table *catalog.Table, e sql.Expr) (func(datum.Row) (datum.D, error), error) {
	// Build a throwaway single-table graph to reuse name resolution.
	sel := &sql.Select{
		Items: []sql.SelectItem{{Expr: e, Alias: "x"}},
		From:  []sql.TableRef{{Table: table.Name}},
		Limit: -1,
	}
	g, err := semant.NewBuilder(db.cat).Build(sel)
	if err != nil {
		return nil, err
	}
	top := g.Top
	if len(top.Quantifiers) != 1 || top.Quantifiers[0].Type != qgm.ForEach {
		return nil, fmt.Errorf("subqueries are not supported in DELETE/UPDATE expressions")
	}
	q := top.Quantifiers[0]
	if q.Ranges.Kind != qgm.KindBaseTable {
		return nil, fmt.Errorf("DELETE/UPDATE require a base table, not a view")
	}
	expr := top.Output[0].Expr
	return func(row datum.Row) (datum.D, error) {
		return exec.EvalExpr(expr, exec.Env{q: row})
	}, nil
}

// evalConstExpr evaluates a constant INSERT expression (literals, unary
// minus, arithmetic).
func evalConstExpr(e sql.Expr) (datum.D, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return x.Value, nil
	case *sql.Unary:
		if x.Op == sql.OpNeg {
			v, err := evalConstExpr(x.X)
			if err != nil {
				return datum.Null(), err
			}
			return datum.Neg(v)
		}
	case *sql.Bin:
		l, err := evalConstExpr(x.L)
		if err != nil {
			return datum.Null(), err
		}
		r, err := evalConstExpr(x.R)
		if err != nil {
			return datum.Null(), err
		}
		switch x.Op {
		case sql.OpAdd:
			return datum.Arith(datum.Add, l, r)
		case sql.OpSub:
			return datum.Arith(datum.Sub, l, r)
		case sql.OpMul:
			return datum.Arith(datum.Mul, l, r)
		case sql.OpDiv:
			return datum.Arith(datum.Div, l, r)
		}
	}
	return datum.Null(), fmt.Errorf("INSERT values must be constant expressions, got %T", e)
}

// InsertRows bulk-loads rows through the Go API (faster than INSERT text).
// The load is one transaction: on error nothing is visible.
func (db *Database) InsertRows(table string, rows []datum.Row) error {
	t := db.Begin()
	db.mu.RLock()
	rel, ok := db.store.Relation(table)
	if !ok {
		db.mu.RUnlock()
		_ = t.Rollback()
		return fmt.Errorf("table %q not found", table)
	}
	var err error
	for _, r := range rows {
		if err = t.stageAppend(rel, r); err != nil {
			break
		}
	}
	db.mu.RUnlock()
	if err != nil {
		_ = t.Rollback()
		return err
	}
	return t.Commit()
}

// Analyze recomputes optimizer statistics for every table. An explicit
// ANALYZE advances the catalog epoch (fresh statistics can change plan
// choices); the implicit analyze on the prepare path does not — the
// mutation that dirtied the stats already advanced it.
func (db *Database) Analyze() {
	db.mu.Lock()
	db.analyzeLocked()
	db.mu.Unlock()
	db.epoch.Add(1)
}

func (db *Database) analyzeLocked() {
	for _, t := range db.cat.Tables() {
		if rel, ok := db.store.Relation(t.Name); ok {
			catalog.AnalyzeTable(t, rel.Rows())
		}
	}
	db.statsDirty.Store(false)
}

// Result is a query result.
type Result struct {
	Columns []string
	Rows    []datum.Row
	Plan    PlanInfo
}

// PlanInfo reports how the query was optimized and executed.
type PlanInfo struct {
	Strategy        Strategy
	UsedEMST        bool
	CostBefore      float64
	CostAfter       float64
	PlansConsidered int
	Counters        exec.Counters
	OptimizeTime    time.Duration
	ExecTime        time.Duration
	// Physical renders the physical operator tree with this run's
	// per-operator rows/batches/time; Operators is the structured form
	// (depth-first). Both are empty for materialized (box-at-a-time) runs.
	Physical  string
	Operators []plan.OpReport
	// Mem is the run's memory-governance footprint; the zero value means
	// the run executed without a budget.
	Mem MemInfo
	// AdmissionWait is the time the run spent queued for an admission slot
	// (0 when admission control is off or a slot was free).
	AdmissionWait time.Duration
	// MaxQError is the run's worst per-operator estimate-vs-actual q-error
	// (max(est/actual, actual/est); 1.0 = perfect, 0 = not measured). The
	// feedback loop re-optimizes cached plans whose smoothed value exceeds
	// 8x.
	MaxQError float64
}

// MemInfo is one budgeted execution's memory footprint.
type MemInfo struct {
	// LimitBytes is the per-query budget the run executed under.
	LimitBytes int64
	// PeakBytes is the reservation high-water mark; the governor guarantees
	// it never exceeds LimitBytes.
	PeakBytes int64
	// SpilledBytes and Spills count spill-to-disk traffic: bytes written
	// and discrete spill events (hash-partition page-outs, sort-run
	// flushes, row-buffer flushes).
	SpilledBytes int64
	Spills       int64
}

// Query optimizes and executes a SELECT under the default EMST strategy.
func (db *Database) Query(query string) (*Result, error) {
	return db.QueryContext(context.Background(), query)
}

// QueryWith optimizes and executes a SELECT under the given strategy.
func (db *Database) QueryWith(query string, strategy Strategy) (*Result, error) {
	return db.QueryContext(context.Background(), query, WithStrategy(strategy))
}

// Prepared is an optimized, re-executable query. It is safe for concurrent
// ExecuteContext/Execute calls: each run uses a fresh evaluator whose
// counters reset between runs.
type Prepared struct {
	db      *Database
	graph   *qgm.Graph
	phys    *plan.Plan
	columns []string
	// numParams is the number of `?` placeholders; every execution must
	// bind exactly this many values (WithArgs or Execute/ExecuteContext args).
	numParams int

	strategy Strategy
	cfg      queryConfig
	info     PlanInfo
	explain  *ExplainInfo
	// ruleFires feeds the metrics sink (fires-only subset of explain.Rules).
	ruleFires map[string]int64
	// fb is the execution-feedback record, shared across the per-call
	// shallow copies withConfig makes of a cached plan (nil for
	// materialized-only plans with no physical tree).
	fb *feedbackState
}

// Prepare parses, binds and optimizes a query for repeated execution.
func (db *Database) Prepare(query string, strategy Strategy) (*Prepared, error) {
	return db.PrepareContext(context.Background(), query, WithStrategy(strategy))
}

// Execute runs the prepared plan with a fresh evaluator. Optional args bind
// the query's `?` placeholders for this run, overriding any WithArgs values
// captured at prepare time.
func (p *Prepared) Execute(args ...any) (*Result, error) {
	return p.ExecuteContext(context.Background(), args...)
}

// Graph exposes the optimized graph (qgmviz and tests inspect it).
func (p *Prepared) Graph() *qgm.Graph { return p.graph }

// Columns returns the result column names, known at prepare time — a wire
// server needs them to describe a statement before its first execution.
func (p *Prepared) Columns() []string { return p.columns }

// NumParams returns the number of `?` placeholders each execution must bind.
func (p *Prepared) NumParams() int { return p.numParams }

// Explain returns a human-readable account of the optimization: the QGM
// graph after each rewrite phase, per-phase timings, rule-fire counts, the
// costs, and the chosen plan — the textual equivalent of the paper's
// Figure 4 panels. Structured access is ExplainContext.
func (db *Database) Explain(query string, strategy Strategy) (string, error) {
	info, err := db.ExplainContext(context.Background(), query, WithStrategy(strategy))
	if err != nil {
		return "", err
	}
	return info.String(), nil
}
