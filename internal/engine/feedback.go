package engine

// Execution feedback: after each fully-drained execution of a cached plan,
// the per-operator actual row counts are folded into an EMA attached to the
// plan-cache entry. When the worst estimate-vs-actual q-error crosses
// qErrorThreshold, the entry is marked and the next prepare of the same
// statement re-optimizes it with the observed cardinalities injected as
// estimates (opt.Estimator.Hints, keyed by QGM box name — deterministic
// across re-plans of the same SQL). This is the adaptive half of the paper's
// §3.2 cost comparison: the magic-vs-no-magic choice hinges on selectivities,
// and where histograms still mis-estimate (cross-column correlation,
// parameter-dependent skew) the observed cardinalities correct the model.

import (
	"sync"

	"starmagic/internal/plan"
)

const (
	// emaKeep/emaObserve smooth observed cardinalities:
	// new = 0.7*old + 0.3*observed. One outlier run (a mid-load execution)
	// cannot swing the learned value; a real shift converges in a few runs.
	emaKeep    = 0.7
	emaObserve = 0.3
	// qErrorThreshold marks a plan for re-optimization when any operator's
	// smoothed actual diverges from its estimate by more than 8x in either
	// direction.
	qErrorThreshold = 8.0
)

// feedbackState is the execution-feedback record shared by every per-call
// copy of one cached Prepared (withConfig copies the pointer).
type feedbackState struct {
	mu sync.Mutex
	// ema holds the smoothed actual output rows per plan node ID; NaN-free,
	// <0 means no observation yet.
	ema []float64
	// inherited carries box-name hints from the plan this one re-optimized
	// away from, so successive re-optimizations accumulate knowledge instead
	// of forgetting it.
	inherited map[string]float64
	// execs counts observed (fully drained) executions; maxQ is the worst
	// smoothed q-error as of the last observation.
	execs int64
	maxQ  float64
	// reopt marks the entry for re-optimization at its next prepare.
	reopt bool
}

func newFeedbackState(p *plan.Plan, inherited map[string]float64) *feedbackState {
	if p == nil {
		return nil
	}
	fb := &feedbackState{ema: make([]float64, len(p.Nodes)), inherited: inherited}
	for i := range fb.ema {
		fb.ema[i] = -1
	}
	return fb
}

// observe folds one fully-drained execution's per-operator actuals into the
// EMA and recomputes the worst smoothed q-error, marking the plan for
// re-optimization when it crosses the threshold. It returns that q-error and
// whether this call newly marked the plan.
func (fb *feedbackState) observe(p *plan.Plan, stats []plan.OpStats) (maxQ float64, marked bool) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.execs++
	for _, n := range p.Nodes {
		if n.ID >= len(stats) || n.ID >= len(fb.ema) || stats[n.ID].Opens == 0 {
			continue
		}
		observed := float64(stats[n.ID].Rows)
		if fb.ema[n.ID] < 0 {
			fb.ema[n.ID] = observed
		} else {
			fb.ema[n.ID] = emaKeep*fb.ema[n.ID] + emaObserve*observed
		}
		if n.EstRows <= 0 {
			continue
		}
		if q := qError(n.EstRows, fb.ema[n.ID]); q > maxQ {
			maxQ = q
		}
	}
	fb.maxQ = maxQ
	if maxQ > qErrorThreshold && !fb.reopt {
		fb.reopt = true
		marked = true
	}
	return maxQ, marked
}

// qError is max(est/actual, actual/est) with both sides floored at one row.
func qError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// takeReopt consumes the re-optimization mark: exactly one caller observes
// true and becomes the re-prepare leader.
func (fb *feedbackState) takeReopt() bool {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if !fb.reopt {
		return false
	}
	fb.reopt = false
	return true
}

// hints renders the learned cardinalities as box-name → rows for estimator
// injection: the smoothed actual of each named box's root operator, layered
// over the hints inherited from earlier re-optimizations (fresh observations
// win). Box names are assigned deterministically during binding and rewrite,
// so they address the same logical boxes in the re-built graph; names that
// do not reappear (a different EMST outcome) are simply unused there.
func (fb *feedbackState) hints(p *plan.Plan) map[string]float64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	out := make(map[string]float64, len(fb.inherited)+8)
	for name, v := range fb.inherited {
		out[name] = v
	}
	for _, n := range p.Nodes {
		if !n.BoxRoot || n.Box == nil || n.Box.Name == "" {
			continue
		}
		if n.ID < len(fb.ema) && fb.ema[n.ID] >= 0 {
			out[n.Box.Name] = fb.ema[n.ID]
		}
	}
	return out
}

// snapshot returns the state for tooling (`.feedback stats`).
func (fb *feedbackState) snapshot() (execs int64, maxQ float64, pending bool) {
	if fb == nil {
		return 0, 0, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.execs, fb.maxQ, fb.reopt
}
