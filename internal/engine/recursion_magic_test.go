package engine

import (
	"fmt"
	"strings"
	"testing"
)

// chainDB builds a long chain graph 1→2→…→n plus many disjoint chains, so
// the full transitive closure is large while tc restricted to one source is
// tiny — the classic magic-sets demonstration.
func chainDB(t *testing.T, chains, length int) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
	CREATE TABLE edge (src INT, dst INT, PRIMARY KEY (src, dst));
	CREATE INDEX edge_src ON edge (src);
	CREATE VIEW tc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION
	  SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;
	`); err != nil {
		t.Fatal(err)
	}
	var script strings.Builder
	script.WriteString("INSERT INTO edge VALUES ")
	first := true
	for c := 0; c < chains; c++ {
		for i := 0; i < length-1; i++ {
			if !first {
				script.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&script, "(%d, %d)", c*1000+i, c*1000+i+1)
		}
	}
	if _, err := db.Exec(script.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMagicOnRecursion: the headline deductive-database application of
// magic sets — transitive closure restricted to one source. The magic plan
// must compute only that source's closure, not the whole relation's.
func TestMagicOnRecursion(t *testing.T) {
	db := chainDB(t, 20, 12)
	query := "SELECT t.dst FROM tc t WHERE t.src = 3000"

	orig, err := db.QueryWith(query, Original)
	if err != nil {
		t.Fatal(err)
	}
	magic, err := db.QueryWith(query, EMST)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(orig) != canonical(magic) {
		t.Fatalf("results differ:\norig  %v\nmagic %v", rowsAsStrings(orig), rowsAsStrings(magic))
	}
	if len(magic.Rows) != 11 { // 3001..3011
		t.Fatalf("rows = %d; want 11", len(magic.Rows))
	}
	if !magic.Plan.UsedEMST {
		t.Fatalf("magic plan not chosen (%v vs %v)", magic.Plan.CostBefore, magic.Plan.CostAfter)
	}
	// Original computes the full closure: 20 chains × C(12,2) = 1320 pairs
	// plus intermediates; magic computes one source's 11 pairs. OutputRows
	// is the tell.
	if magic.Plan.Counters.OutputRows*5 > orig.Plan.Counters.OutputRows {
		t.Errorf("magic did not restrict the fixpoint: %d vs %d output rows",
			magic.Plan.Counters.OutputRows, orig.Plan.Counters.OutputRows)
	}
}

// TestMagicOnRecursionJoinDriven: the magic set comes from a join, not a
// constant — sources listed in a driver table.
func TestMagicOnRecursionJoinDriven(t *testing.T) {
	db := chainDB(t, 10, 8)
	if _, err := db.Exec(`
	CREATE TABLE wanted (src INT, PRIMARY KEY (src));
	INSERT INTO wanted VALUES (0), (5000);
	`); err != nil {
		t.Fatal(err)
	}
	query := "SELECT w.src, t.dst FROM wanted w, tc t WHERE w.src = t.src"
	orig, err := db.QueryWith(query, Original)
	if err != nil {
		t.Fatal(err)
	}
	magic, err := db.QueryWith(query, EMST)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(orig) != canonical(magic) {
		t.Fatalf("results differ")
	}
	if len(magic.Rows) != 14 { // two sources × 7 reachable each
		t.Fatalf("rows = %d; want 14", len(magic.Rows))
	}
	if magic.Plan.UsedEMST && magic.Plan.Counters.OutputRows*3 > orig.Plan.Counters.OutputRows {
		t.Errorf("magic did not restrict: %d vs %d", magic.Plan.Counters.OutputRows, orig.Plan.Counters.OutputRows)
	}
}

// TestMagicSkipsNonInvariantRecursion: in right-linear TC the bound column
// changes through the recursion (tc(x,y) ⇐ edge(x,z), tc(z,y)); filtering
// the fixpoint root on src would be unsound, so EMST must not attach magic
// — and results must stay correct.
func TestMagicSkipsNonInvariantRecursion(t *testing.T) {
	db := chainDB(t, 5, 6)
	if _, err := db.Exec(`
	CREATE VIEW rtc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION
	  SELECT e.src, t.dst FROM edge e, rtc t WHERE e.dst = t.src;
	`); err != nil {
		t.Fatal(err)
	}
	query := "SELECT dst FROM rtc WHERE src = 1000"
	orig, err := db.QueryWith(query, Original)
	if err != nil {
		t.Fatal(err)
	}
	magic, err := db.QueryWith(query, EMST)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(orig) != canonical(magic) {
		t.Fatalf("results differ:\norig  %v\nmagic %v", rowsAsStrings(orig), rowsAsStrings(magic))
	}
	if len(magic.Rows) != 5 { // 1001..1005
		t.Errorf("rows = %d; want 5", len(magic.Rows))
	}
	// The second (dst) column IS invariant in right-linear TC, so a dst
	// binding may still be pushed; check that too.
	q2 := "SELECT src FROM rtc WHERE dst = 1005"
	o2, err := db.QueryWith(q2, Original)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := db.QueryWith(q2, EMST)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(o2) != canonical(m2) {
		t.Fatalf("dst-bound results differ")
	}
}

// TestRecursionMagicAllStrategiesAgree is the equivalence net over mixed
// recursive queries.
func TestRecursionMagicAllStrategiesAgree(t *testing.T) {
	db := chainDB(t, 6, 7)
	queries := []string{
		"SELECT dst FROM tc WHERE src = 0",
		"SELECT src FROM tc WHERE dst = 2006",
		"SELECT COUNT(*) FROM tc WHERE src = 1002",
		"SELECT t.src, t.dst FROM tc t, edge e WHERE t.dst = e.src AND t.src = 4000",
	}
	for _, q := range queries {
		ref, err := db.QueryWith(q, Original)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want := canonical(ref)
		for _, s := range []Strategy{Correlated, EMST} {
			res, err := db.QueryWith(q, s)
			if err != nil {
				t.Fatalf("%q %v: %v", q, s, err)
			}
			if canonical(res) != want {
				t.Errorf("%q %v: results differ", q, s)
			}
		}
	}
}
