package engine

import "fmt"

// ParamCountError reports a mismatch between a query's `?` placeholders and
// the values bound for an execution (WithArgs at prepare time or args on
// Execute/ExecuteContext/RowsContext). It is typed so API consumers and the
// wire server can map it onto a precise error class instead of matching the
// message.
type ParamCountError struct {
	Want, Got int
}

func (e *ParamCountError) Error() string {
	return fmt.Sprintf("query expects %d parameter(s), got %d", e.Want, e.Got)
}
