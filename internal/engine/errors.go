package engine

import (
	"errors"
	"fmt"
)

// ErrWriteConflict reports a first-updater-wins write-write conflict: a
// DELETE or UPDATE tried to claim a row version already deleted (or claimed)
// by another transaction since this transaction's snapshot. The losing
// transaction is rolled back; retrying it on a fresh snapshot usually
// succeeds. The wire server maps it to MySQL errno 1213 / SQLSTATE 40001.
var ErrWriteConflict = errors.New("write-write conflict: row modified by a concurrent transaction (transaction rolled back, retry it)")

// ErrTxnDone reports a Commit or statement on a transaction that was already
// committed or rolled back.
var ErrTxnDone = errors.New("transaction has already been committed or rolled back")

// ParamCountError reports a mismatch between a query's `?` placeholders and
// the values bound for an execution (WithArgs at prepare time or args on
// Execute/ExecuteContext/RowsContext). It is typed so API consumers and the
// wire server can map it onto a precise error class instead of matching the
// message.
type ParamCountError struct {
	Want, Got int
}

func (e *ParamCountError) Error() string {
	return fmt.Sprintf("query expects %d parameter(s), got %d", e.Want, e.Got)
}
