package engine

// Oracle tests for adaptive statistics: (1) on a skewed (Zipf-like) Table-1
// instance, equi-depth histograms flip the §3.2 magic/no-magic choice that a
// flat uniform-assumption baseline gets wrong — confirmed at runtime by
// executing both plans and comparing the work they do; (2) execution
// feedback detects a correlated-predicate misestimate (q-error > 8x) and
// re-optimizes the cached plan within one subsequent execution, with
// identical results.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"starmagic/internal/exec"
)

// skewDDL is the paper's department/employee/avgMgrSal schema.
const skewDDL = `
CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
CREATE INDEX emp_workdept ON employee (workdept);
CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
  SELECT e.empno, e.empname, e.workdept, e.salary
  FROM employee e, department d WHERE e.empno = d.mgrno;
CREATE VIEW avgMgrSal (workdept, avgsalary) AS
  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
`

const (
	skewDepts    = 400 // department rows
	skewHeavy    = 380 // of which deptname = 'HQ' (95%: the Zipf head)
	skewEmpPerDp = 8   // employees per department
)

// newSkewDB builds a Table-1 instance whose deptname distribution is heavily
// skewed: 95% of departments share the name 'HQ', the rest are distinct (a
// two-point Zipf). Uniform statistics see NDV=21 and estimate deptname='HQ'
// at ~5% selectivity; the histogram sees the heavy value at 95%.
func newSkewDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if _, err := db.Exec(skewDDL); err != nil {
		t.Fatal(err)
	}
	var dept, emp strings.Builder
	dept.WriteString("INSERT INTO department VALUES ")
	emp.WriteString("INSERT INTO employee VALUES ")
	empno := 0
	for d := 1; d <= skewDepts; d++ {
		name := "HQ"
		if d > skewHeavy {
			name = fmt.Sprintf("D%03d", d)
		}
		if d > 1 {
			dept.WriteString(", ")
		}
		// The first employee of each department is its manager.
		fmt.Fprintf(&dept, "(%d, '%s', %d)", d, name, empno+1)
		for e := 0; e < skewEmpPerDp; e++ {
			empno++
			if empno > 1 {
				emp.WriteString(", ")
			}
			fmt.Fprintf(&emp, "(%d, 'e%d', %d, %d)", empno, empno, d, 100*(1+empno%9))
		}
	}
	for _, stmt := range []string{dept.String(), emp.String()} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// execWork sums the executor counters that measure how much a run computed.
func execWork(c exec.Counters) int64 {
	return c.BaseRows + c.BoxEvals + c.HashBuilds + c.HashProbes + c.IndexLookups
}

// TestHistogramsFlipMagicChoice is the skew oracle: on the heavy value the
// flat baseline underestimates the binding set ~20x and picks the magic
// plan; the histogram sees 95% selectivity and keeps the untransformed plan.
// Executing both confirms the histogram choice does strictly less work for
// identical results — i.e. the flat baseline provably picks the slower plan.
func TestHistogramsFlipMagicChoice(t *testing.T) {
	const query = `SELECT d.deptno, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'HQ'`
	ctx := context.Background()

	db := newSkewDB(t)
	withHist, err := db.PrepareContext(ctx, query, WithStrategy(EMST))
	if err != nil {
		t.Fatal(err)
	}
	if withHist.Explain().UsedEMST {
		t.Fatalf("histogram estimates picked the magic plan for a 95%% binding set (cost %0.f -> %0.f)",
			withHist.Explain().CostBefore, withHist.Explain().CostAfter)
	}

	flat := newSkewDB(t)
	flat.SetHistograms(false)
	withFlat, err := flat.PrepareContext(ctx, query, WithStrategy(EMST))
	if err != nil {
		t.Fatal(err)
	}
	if !withFlat.Explain().UsedEMST {
		t.Fatalf("flat estimates kept the untransformed plan (cost %0.f -> %0.f): skew not misestimated",
			withFlat.Explain().CostBefore, withFlat.Explain().CostAfter)
	}

	// Runtime confirmation on one database: the plan the histogram picked
	// versus the plan the flat baseline would have run (forced magic).
	histRes, err := withHist.ExecuteContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	forcedRes, err := db.QueryContext(ctx, query, WithStrategy(EMST), WithForceEMST())
	if err != nil {
		t.Fatal(err)
	}
	histRows, forcedRows := rowsAsStrings(histRes), rowsAsStrings(forcedRes)
	sort.Strings(histRows)
	sort.Strings(forcedRows)
	if len(histRows) != skewHeavy {
		t.Fatalf("got %d rows, want %d", len(histRows), skewHeavy)
	}
	if strings.Join(histRows, "\n") != strings.Join(forcedRows, "\n") {
		t.Fatal("magic and untransformed plans disagree on results")
	}
	histWork, forcedWork := execWork(histRes.Plan.Counters), execWork(forcedRes.Plan.Counters)
	if histWork >= forcedWork {
		t.Errorf("histogram pick did %d work units, forced magic %d: choice not confirmed faster",
			histWork, forcedWork)
	}
}

// TestFeedbackReoptimization is the feedback oracle: a conjunction over two
// perfectly correlated columns is underestimated ~20x by independence (even
// with exact histograms), the first fully-drained execution observes the
// q-error > 8x and marks the cached plan, and the next prepare serves a
// re-optimized plan (CacheStatus "reopt") with the observed cardinality
// injected — returning identical rows and an accurate estimate.
func TestFeedbackReoptimization(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (id INT, a INT, b INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	var ins strings.Builder
	ins.WriteString("INSERT INTO t VALUES ")
	const rows, groups = 2000, 20
	for i := 0; i < rows; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d, %d)", i, i%groups, i%groups) // a = b always
	}
	if _, err := db.Exec(ins.String()); err != nil {
		t.Fatal(err)
	}

	const query = "SELECT t.id FROM t WHERE t.a = 5 AND t.b = 5"
	ctx := context.Background()

	p1, err := db.PrepareContext(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Explain().CacheStatus; got != "miss" {
		t.Fatalf("first prepare = %q, want miss", got)
	}
	res1, err := p1.ExecuteContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != rows/groups {
		t.Fatalf("got %d rows, want %d", len(res1.Rows), rows/groups)
	}
	// Independence multiplies two ~5% selectivities: ~5 rows estimated
	// against 100 actual, q-error ~20x — past the 8x re-optimization bar.
	if res1.Plan.MaxQError <= 8 {
		t.Fatalf("first run MaxQError = %.1f, want > 8 (misestimate not observed)", res1.Plan.MaxQError)
	}

	// Within one subsequent execution: the very next prepare re-optimizes.
	p2, err := db.PrepareContext(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Explain().CacheStatus; got != "reopt" {
		t.Fatalf("second prepare = %q, want reopt", got)
	}
	res2, err := p2.ExecuteContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rowsAsStrings(res1), rowsAsStrings(res2)
	sort.Strings(r1)
	sort.Strings(r2)
	if strings.Join(r1, "\n") != strings.Join(r2, "\n") {
		t.Fatal("re-optimized plan changed the result")
	}
	// The injected observed cardinality makes the estimate accurate.
	if res2.Plan.MaxQError > 2 {
		t.Errorf("re-optimized MaxQError = %.1f, want <= 2", res2.Plan.MaxQError)
	}
	if m := db.Metrics(); m.FeedbackReopts != 1 || m.FeedbackUpdates < 1 {
		t.Errorf("metrics = reopts %d updates %d, want 1 and >=1", m.FeedbackReopts, m.FeedbackUpdates)
	}

	// The replacement entry serves plain hits afterwards.
	p3, err := db.PrepareContext(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if got := p3.Explain().CacheStatus; got != "hit" {
		t.Fatalf("third prepare = %q, want hit", got)
	}

	// With feedback off, a misestimated plan is never marked.
	db2 := New()
	if _, err := db2.Exec("CREATE TABLE t (id INT, a INT, b INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec(ins.String()); err != nil {
		t.Fatal(err)
	}
	db2.SetFeedback(false)
	for i := 0; i < 3; i++ {
		if _, err := db2.QueryContext(ctx, query); err != nil {
			t.Fatal(err)
		}
	}
	p4, err := db2.PrepareContext(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if got := p4.Explain().CacheStatus; got != "hit" {
		t.Fatalf("feedback-off prepare = %q, want hit", got)
	}
}
