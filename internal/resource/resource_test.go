package resource

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

func TestBudgetGrowShrinkLimit(t *testing.T) {
	b := NewBudget(nil, 1000, "")
	if err := b.Grow(600); err != nil {
		t.Fatal(err)
	}
	if err := b.Grow(500); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("over-limit Grow: got %v, want ErrMemoryExceeded", err)
	}
	if got := b.Used(); got != 600 {
		t.Fatalf("failed Grow changed Used to %d, want 600", got)
	}
	b.Shrink(200)
	if err := b.Grow(500); err != nil {
		t.Fatalf("Grow after Shrink: %v", err)
	}
	if got, want := b.Used(), int64(900); got != want {
		t.Fatalf("Used = %d, want %d", got, want)
	}
	if got := b.Peak(); got != 900 {
		t.Fatalf("Peak = %d, want 900", got)
	}
	b.Close()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after Close = %d, want 0", got)
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	if err := b.Grow(1 << 40); err != nil {
		t.Fatalf("nil budget Grow: %v", err)
	}
	b.Shrink(5)
	b.NoteSpill(5)
	b.Close()
	if b.Limit() != 0 || b.Used() != 0 || b.Quantum() == 0 {
		t.Fatal("nil budget accessors broken")
	}
	var a *Account
	if err := a.Grow(1 << 40); err != nil {
		t.Fatalf("nil account Grow: %v", err)
	}
	a.Shrink(1)
	a.Clear()
	a.Close()
}

func TestGovernorTotalCapAcrossBudgets(t *testing.T) {
	g := NewGovernor()
	g.SetTotalLimit(1000)
	b1 := NewBudget(g, 0, "")
	b2 := NewBudget(g, 0, "")
	defer b1.Close()
	defer b2.Close()
	if err := b1.Grow(700); err != nil {
		t.Fatal(err)
	}
	if err := b2.Grow(400); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("total-cap Grow: got %v, want ErrMemoryExceeded", err)
	}
	if got := b2.Used(); got != 0 {
		t.Fatalf("failed governor reservation left %d on the budget", got)
	}
	b1.Close()
	if err := b2.Grow(400); err != nil {
		t.Fatalf("Grow after peer Close: %v", err)
	}
	if got := g.Stats().UsedBytes; got != 400 {
		t.Fatalf("governor used %d, want 400", got)
	}
}

func TestAccountQuantum(t *testing.T) {
	b := NewBudget(nil, 1<<20, "")
	defer b.Close()
	a := b.OpenAccount()
	q := b.Quantum()
	if err := a.Grow(1); err != nil {
		t.Fatal(err)
	}
	// One byte charged, one quantum reserved: the budget sees the chunk.
	if got := b.Used(); got != q {
		t.Fatalf("budget used %d after 1-byte Grow, want quantum %d", got, q)
	}
	// Growing within the chunk does not touch the budget.
	if err := a.Grow(q - 1); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != q {
		t.Fatalf("budget used %d, want still %d", got, q)
	}
	a.Shrink(q)
	if got := a.Used(); got != 0 {
		t.Fatalf("account used %d, want 0", got)
	}
	if freed := a.ReleaseIdle(); freed != q {
		t.Fatalf("ReleaseIdle freed %d, want %d", freed, q)
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("budget used %d after ReleaseIdle, want 0", got)
	}
	a.Close()
}

func TestAccountGrowFailureLeavesStateForRetry(t *testing.T) {
	b := NewBudget(nil, 1024, "")
	defer b.Close()
	a := b.OpenAccount()
	if err := a.Grow(900); err != nil {
		t.Fatal(err)
	}
	before := a.Used()
	if err := a.Grow(500); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("got %v, want ErrMemoryExceeded", err)
	}
	if a.Used() != before {
		t.Fatalf("failed Grow mutated account: %d -> %d", before, a.Used())
	}
	// The spill path: clear and retry.
	a.Clear()
	if err := a.Grow(500); err != nil {
		t.Fatalf("Grow after Clear: %v", err)
	}
}

func TestSpillFileLifecycle(t *testing.T) {
	b := NewBudget(nil, 0, t.TempDir())
	sf, err := b.TempFile("test")
	if err != nil {
		t.Fatal(err)
	}
	path := sf.File().Name()
	if _, err := sf.File().WriteString("hello"); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file survives Close: %v", err)
	}
	// Files still registered at Budget.Close are removed with it.
	sf2, err := b.TempFile("leak")
	if err != nil {
		t.Fatal(err)
	}
	path2 := sf2.File().Name()
	b.Close()
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatalf("spill file survives Budget.Close: %v", err)
	}
	if _, err := b.TempFile("late"); err == nil {
		t.Fatal("TempFile on closed budget succeeded")
	}
}

func TestAdmitFIFOAndRejection(t *testing.T) {
	g := NewGovernor()
	g.SetAdmission(1, 1)
	release, waited, err := g.Admit(context.Background())
	if err != nil || waited != 0 {
		t.Fatalf("first Admit: err=%v waited=%v", err, waited)
	}
	// Queue the one allowed waiter.
	got := make(chan error, 1)
	go func() {
		r, w, err := g.Admit(context.Background())
		if err == nil {
			if w <= 0 {
				err = errors.New("queued admit reports zero wait")
			}
			r()
		}
		got <- err
	}()
	// Wait until it is actually queued, then overflow the queue.
	for i := 0; g.Stats().Waiting == 0; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := g.Admit(context.Background()); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("overflow Admit: got %v, want ErrAdmissionRejected", err)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued Admit: %v", err)
	}
	s := g.Stats()
	if s.Admitted != 2 || s.Rejected != 1 || s.Waited != 1 {
		t.Fatalf("stats = %+v, want admitted 2, rejected 1, waited 1", s)
	}
}

func TestAdmitContextCancel(t *testing.T) {
	g := NewGovernor()
	g.SetAdmission(1, 4)
	release, _, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := g.Admit(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	// An already-done context is bounced without queuing.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, _, err := g.Admit(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
	s := g.Stats()
	if s.Waiting != 0 {
		t.Fatalf("cancelled waiters still queued: %d", s.Waiting)
	}
}

func TestGovernorCloseDrains(t *testing.T) {
	g := NewGovernor()
	g.SetAdmission(2, 8)
	var releases []func()
	for i := 0; i < 2; i++ {
		r, _, err := g.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, r)
	}
	// A queued waiter sees ErrClosed when Close runs.
	queued := make(chan error, 1)
	go func() {
		_, _, err := g.Admit(context.Background())
		queued <- err
	}()
	for i := 0; g.Stats().Waiting == 0; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		g.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned before running queries drained")
	case <-time.After(30 * time.Millisecond):
	}
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter got %v, want ErrClosed", err)
	}
	for _, r := range releases {
		r()
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after drain")
	}
	if _, _, err := g.Admit(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Admit: got %v, want ErrClosed", err)
	}
	g.Close() // idempotent
}

func TestBudgetConcurrentGrow(t *testing.T) {
	g := NewGovernor()
	g.SetTotalLimit(1 << 20)
	b := NewBudget(g, 1<<20, "")
	defer b.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := b.Grow(64); err == nil {
					b.Shrink(64)
				}
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("budget used %d after balanced grow/shrink, want 0", got)
	}
	if got := g.Stats().UsedBytes; got != 0 {
		t.Fatalf("governor used %d, want 0", got)
	}
}
