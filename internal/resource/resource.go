// Package resource provides memory governance and admission control for
// query execution.
//
// Three layers form a hierarchy:
//
//	Governor — engine-wide. Caps total reserved memory across all running
//	          queries and how many queries run at once (bounded wait queue,
//	          deadline-aware rejection).
//	Budget   — per-query. Atomic reservation against an optional per-query
//	          limit and against the Governor's total cap; owns the query's
//	          spill files and tears them down on Close.
//	Account  — per-operator. A single-goroutine child of a Budget that
//	          reserves in quanta to keep the atomic hot path off the
//	          per-row path.
//
// Operators that can spill call Account.Grow before buffering a row; on
// ErrMemoryExceeded they move state to disk (freeing their reservation) and
// retry. Operators that cannot spill propagate the typed error, which the
// engine surfaces instead of letting the process OOM.
package resource

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrMemoryExceeded is the sentinel wrapped by every memory-budget failure.
// Callers detect it with errors.Is.
var ErrMemoryExceeded = errors.New("memory budget exceeded")

// ErrAdmissionRejected is returned by Governor.Admit when the concurrency
// cap is reached and the bounded wait queue is full.
var ErrAdmissionRejected = errors.New("admission queue full")

// ErrClosed is returned by Governor.Admit after Close.
var ErrClosed = errors.New("resource governor closed")

// GovernorStats is a point-in-time snapshot of a Governor's counters.
type GovernorStats struct {
	// UsedBytes is memory currently reserved across all running queries.
	UsedBytes int64
	// PeakBytes is the high-water mark of UsedBytes.
	PeakBytes int64
	// TotalLimitBytes is the engine-wide cap (0 = unlimited).
	TotalLimitBytes int64
	// SpilledBytes and Spills accumulate over all completed budgets.
	SpilledBytes int64
	Spills       int64
	// Running and Waiting are the current admission occupancy.
	Running int
	Waiting int
	// PeakRunning is the most queries ever running at once.
	PeakRunning int
	// Admitted counts successful Admit calls, Waited those that queued
	// first, Rejected those bounced on a full queue, and WaitNanos the
	// total time spent queued.
	Admitted  int64
	Waited    int64
	Rejected  int64
	WaitNanos int64
}

type waiter struct {
	ch      chan struct{}
	granted bool
}

// Governor enforces engine-wide memory and concurrency caps. The zero value
// is not usable; call NewGovernor. All methods are safe for concurrent use.
type Governor struct {
	totalLimit atomic.Int64
	used       atomic.Int64
	peak       atomic.Int64

	// admissionOn mirrors maxConcurrent > 0 so the engine's per-query fast
	// path can skip Admit (and its mutex) without locking.
	admissionOn atomic.Bool

	spilledBytes atomic.Int64
	spills       atomic.Int64

	mu            sync.Mutex
	maxConcurrent int
	maxQueue      int
	running       int
	queue         list.List // of *waiter, FIFO
	closed        bool
	drained       chan struct{} // closed when running hits 0 after Close

	peakRunning int
	admitted    int64
	waited      int64
	rejected    int64
	waitNanos   int64
}

// NewGovernor returns a Governor with no limits set.
func NewGovernor() *Governor {
	return &Governor{}
}

// SetTotalLimit caps total reserved memory across all queries; 0 removes
// the cap.
func (g *Governor) SetTotalLimit(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	g.totalLimit.Store(bytes)
}

// TotalLimit reports the engine-wide memory cap (0 = unlimited).
func (g *Governor) TotalLimit() int64 { return g.totalLimit.Load() }

// SetAdmission configures admission control: at most maxConcurrent queries
// execute at once and at most maxQueue more wait for a slot. maxConcurrent
// <= 0 disables admission control entirely; maxQueue < 0 is treated as 0
// (immediate rejection when saturated).
func (g *Governor) SetAdmission(maxConcurrent, maxQueue int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if maxQueue < 0 {
		maxQueue = 0
	}
	g.maxConcurrent = maxConcurrent
	g.maxQueue = maxQueue
	g.admissionOn.Store(maxConcurrent > 0)
	// A raised cap frees queued waiters immediately.
	g.dispatchLocked()
}

// AdmissionEnabled reports whether a concurrency cap is configured. It is a
// lock-free hint for callers that want to skip Admit entirely when admission
// control is off.
func (g *Governor) AdmissionEnabled() bool { return g.admissionOn.Load() }

// Admit blocks until the query may run, the context is done, or the wait
// queue overflows. On success it returns a release func that MUST be called
// exactly once when the query finishes, plus the time spent queued (0 when a
// slot was free immediately).
func (g *Governor) Admit(ctx context.Context) (func(), time.Duration, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, 0, ErrClosed
	}
	g.admitted++
	if g.maxConcurrent <= 0 || g.running < g.maxConcurrent {
		g.startLocked()
		g.mu.Unlock()
		return g.releaseFunc(), 0, nil
	}
	// Deadline-aware rejection: a context that is already done never gets
	// a slot, so bounce it without consuming queue capacity.
	if err := ctx.Err(); err != nil {
		g.admitted--
		g.rejected++
		g.mu.Unlock()
		return nil, 0, err
	}
	if g.queue.Len() >= g.maxQueue {
		g.admitted--
		g.rejected++
		g.mu.Unlock()
		return nil, 0, fmt.Errorf("%w (running %d, queued %d)", ErrAdmissionRejected, g.running, g.maxQueue)
	}
	w := &waiter{ch: make(chan struct{})}
	elem := g.queue.PushBack(w)
	g.waited++
	g.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ch:
		waited := time.Since(start)
		g.mu.Lock()
		g.waitNanos += waited.Nanoseconds()
		if !w.granted { // woken by Close
			g.mu.Unlock()
			return nil, waited, ErrClosed
		}
		g.mu.Unlock()
		return g.releaseFunc(), waited, nil
	case <-ctx.Done():
		waited := time.Since(start)
		g.mu.Lock()
		g.waitNanos += waited.Nanoseconds()
		select {
		case <-w.ch:
			// Raced with a grant: the slot is ours, give it back.
			if w.granted {
				g.finishLocked()
			}
		default:
			g.queue.Remove(elem)
			g.admitted--
			g.rejected++
		}
		g.mu.Unlock()
		return nil, waited, ctx.Err()
	}
}

func (g *Governor) startLocked() {
	g.running++
	if g.running > g.peakRunning {
		g.peakRunning = g.running
	}
}

func (g *Governor) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.finishLocked()
			g.mu.Unlock()
		})
	}
}

func (g *Governor) finishLocked() {
	g.running--
	g.dispatchLocked()
	if g.closed && g.running == 0 && g.drained != nil {
		close(g.drained)
		g.drained = nil
	}
}

// dispatchLocked hands free slots to queued waiters in FIFO order.
func (g *Governor) dispatchLocked() {
	for g.queue.Len() > 0 && (g.maxConcurrent <= 0 || g.running < g.maxConcurrent) {
		w := g.queue.Remove(g.queue.Front()).(*waiter)
		w.granted = true
		g.startLocked()
		close(w.ch)
	}
}

// Close rejects all queued waiters, causes future Admit calls to fail with
// ErrClosed, and blocks until running queries drain.
func (g *Governor) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for g.queue.Len() > 0 {
		w := g.queue.Remove(g.queue.Front()).(*waiter)
		close(w.ch) // granted stays false → waiter sees ErrClosed
	}
	var drained chan struct{}
	if g.running > 0 {
		drained = make(chan struct{})
		g.drained = drained
	}
	g.mu.Unlock()
	if drained != nil {
		<-drained
	}
}

// Stats returns a snapshot of the governor's counters.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	s := GovernorStats{
		Running:     g.running,
		Waiting:     g.queue.Len(),
		PeakRunning: g.peakRunning,
		Admitted:    g.admitted,
		Waited:      g.waited,
		Rejected:    g.rejected,
		WaitNanos:   g.waitNanos,
	}
	g.mu.Unlock()
	s.UsedBytes = g.used.Load()
	s.PeakBytes = g.peak.Load()
	s.TotalLimitBytes = g.totalLimit.Load()
	s.SpilledBytes = g.spilledBytes.Load()
	s.Spills = g.spills.Load()
	return s
}

func (g *Governor) reserve(n int64) error {
	limit := g.totalLimit.Load()
	for {
		cur := g.used.Load()
		if limit > 0 && cur+n > limit {
			return fmt.Errorf("%w: engine total %d + %d > limit %d", ErrMemoryExceeded, cur, n, limit)
		}
		if g.used.CompareAndSwap(cur, cur+n) {
			updatePeak(&g.peak, cur+n)
			return nil
		}
	}
}

func (g *Governor) release(n int64) { g.used.Add(-n) }

func (g *Governor) noteSpill(bytes int64) {
	g.spills.Add(1)
	g.spilledBytes.Add(bytes)
}

func updatePeak(peak *atomic.Int64, v int64) {
	for {
		p := peak.Load()
		if v <= p || peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Budget tracks one query's memory. Grow/Shrink are safe for concurrent use
// (parallel subtree prefetch shares the budget across worker evaluators).
// A nil *Budget is valid and unlimited.
type Budget struct {
	gov   *Governor // optional engine-wide cap
	limit int64     // per-query cap; 0 = unlimited

	used atomic.Int64
	peak atomic.Int64

	spilledBytes atomic.Int64
	spills       atomic.Int64

	quantum int64

	mu     sync.Mutex
	files  map[*SpillFile]struct{}
	dir    string
	closed bool
}

// NewBudget creates a per-query budget. gov may be nil (no engine-wide
// cap); limit 0 means no per-query cap; dir "" spills to os.TempDir().
func NewBudget(gov *Governor, limit int64, dir string) *Budget {
	if limit < 0 {
		limit = 0
	}
	q := int64(32 << 10)
	if limit > 0 && limit/16 < q {
		q = limit / 16
		if q < 256 {
			q = 256
		}
	}
	return &Budget{gov: gov, limit: limit, quantum: q, dir: dir}
}

// Limit reports the per-query cap (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Grow reserves n more bytes, failing with ErrMemoryExceeded if either the
// per-query limit or the governor's total cap would be exceeded.
func (b *Budget) Grow(n int64) error {
	if b == nil || n == 0 {
		return nil
	}
	for {
		cur := b.used.Load()
		if b.limit > 0 && cur+n > b.limit {
			return fmt.Errorf("%w: query %d + %d > limit %d", ErrMemoryExceeded, cur, n, b.limit)
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if b.gov != nil {
		if err := b.gov.reserve(n); err != nil {
			b.used.Add(-n)
			return err
		}
	}
	updatePeak(&b.peak, b.used.Load())
	return nil
}

// Shrink returns n bytes to the budget (and the governor).
func (b *Budget) Shrink(n int64) {
	if b == nil || n == 0 {
		return
	}
	b.used.Add(-n)
	if b.gov != nil {
		b.gov.release(n)
	}
}

// NoteSpill records that bytes were written to disk in one spill event.
func (b *Budget) NoteSpill(bytes int64) {
	if b == nil {
		return
	}
	b.spills.Add(1)
	b.spilledBytes.Add(bytes)
	if b.gov != nil {
		b.gov.noteSpill(bytes)
	}
}

// Used reports currently reserved bytes.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak reports the reservation high-water mark.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// SpilledBytes reports total bytes written to spill files.
func (b *Budget) SpilledBytes() int64 {
	if b == nil {
		return 0
	}
	return b.spilledBytes.Load()
}

// Spills reports the number of spill events.
func (b *Budget) Spills() int64 {
	if b == nil {
		return 0
	}
	return b.spills.Load()
}

// Quantum is the suggested per-operator reservation chunk, scaled down for
// small budgets so a quantum can never dwarf the whole limit.
func (b *Budget) Quantum() int64 {
	if b == nil {
		return 32 << 10
	}
	return b.quantum
}

// Close releases all outstanding reservations and deletes any spill files
// still registered. Idempotent.
func (b *Budget) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	files := b.files
	b.files = nil
	b.mu.Unlock()
	for f := range files {
		f.remove()
	}
	if n := b.used.Swap(0); n != 0 && b.gov != nil {
		b.gov.release(n)
	}
}

// TempFile creates a spill file owned by this budget. The file is deleted
// on SpillFile.Close or, at the latest, on Budget.Close.
func (b *Budget) TempFile(pattern string) (*SpillFile, error) {
	if b == nil {
		return nil, errors.New("resource: TempFile on nil budget")
	}
	dir := b.dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "starmagic-"+pattern+"-*.spill")
	if err != nil {
		return nil, fmt.Errorf("resource: create spill file: %w", err)
	}
	sf := &SpillFile{f: f, path: f.Name(), b: b}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		sf.remove()
		return nil, errors.New("resource: TempFile on closed budget")
	}
	if b.files == nil {
		b.files = make(map[*SpillFile]struct{})
	}
	b.files[sf] = struct{}{}
	b.mu.Unlock()
	return sf, nil
}

// SpillFile is a temp file registered with a Budget for cleanup.
type SpillFile struct {
	f    *os.File
	path string
	b    *Budget
	done bool
}

// File exposes the underlying *os.File for reads, writes, and seeks.
func (s *SpillFile) File() *os.File { return s.f }

// Close closes and deletes the file and unregisters it from the budget.
func (s *SpillFile) Close() {
	if s == nil || s.done {
		return
	}
	s.b.mu.Lock()
	delete(s.b.files, s)
	s.b.mu.Unlock()
	s.remove()
}

func (s *SpillFile) remove() {
	if s.done {
		return
	}
	s.done = true
	s.f.Close()
	os.Remove(s.path)
}

// Account is a per-operator child of a Budget. It reserves from the budget
// in quantum-sized chunks so per-row Grow calls stay cheap, and returns its
// whole reservation on Close. Not safe for concurrent use: each operator
// owns its own Account. A nil *Account is valid and unlimited.
type Account struct {
	b        *Budget
	used     int64
	reserved int64
}

// OpenAccount creates an operator-level account. Returns nil (a no-op
// account) when b is nil.
func (b *Budget) OpenAccount() *Account {
	if b == nil {
		return nil
	}
	return &Account{b: b}
}

// Grow charges n bytes to the account, reserving more from the budget when
// the chunk runs out. On failure the account is left unchanged so the
// caller can spill and retry.
func (a *Account) Grow(n int64) error {
	if a == nil || a.b == nil {
		return nil
	}
	if a.used+n <= a.reserved {
		a.used += n
		return nil
	}
	q := a.b.quantum
	need := a.used + n - a.reserved
	need = (need + q - 1) / q * q
	if err := a.b.Grow(need); err != nil {
		return err
	}
	a.reserved += need
	a.used += n
	return nil
}

// Shrink uncharges n bytes. When the idle chunk grows past two quanta the
// excess is returned to the budget so other operators can use it.
func (a *Account) Shrink(n int64) {
	if a == nil || a.b == nil {
		return
	}
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
	if idle := a.reserved - a.used; idle > 2*a.b.quantum {
		give := idle - a.b.quantum
		a.reserved -= give
		a.b.Shrink(give)
	}
}

// ReleaseIdle returns the account's entire idle reservation (reserved minus
// used) to the budget, reporting how many bytes were released. The next Grow
// re-reserves a fresh quantum chunk. Used when another operator is under
// memory pressure and this account's owner has just paged state out.
func (a *Account) ReleaseIdle() int64 {
	if a == nil || a.b == nil {
		return 0
	}
	idle := a.reserved - a.used
	if idle <= 0 {
		return 0
	}
	a.reserved = a.used
	a.b.Shrink(idle)
	return idle
}

// Clear uncharges everything and returns the full reservation to the
// budget (used when an operator spills its whole state).
func (a *Account) Clear() {
	if a == nil || a.b == nil {
		return
	}
	a.used = 0
	if a.reserved > 0 {
		a.b.Shrink(a.reserved)
		a.reserved = 0
	}
}

// Used reports bytes currently charged to the account.
func (a *Account) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used
}

// Close returns the account's reservation to the budget.
func (a *Account) Close() { a.Clear() }
