package exec

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

func TestUnknownBoxKindErrors(t *testing.T) {
	_, store := testDB(t)
	g := qgm.NewGraph()
	b := g.NewBox(qgm.BoxKind(99), "mystery")
	b.Output = []qgm.OutputCol{{Name: "x", Type: datum.TInt}}
	g.Top = b
	if _, err := New(store).EvalGraph(g); err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Errorf("want no-handler error, got %v", err)
	}
}

func TestRegisterKindHandler(t *testing.T) {
	_, store := testDB(t)
	kind := qgm.KindExtensionStart + 7
	RegisterKind(kind, func(ev *Evaluator, b *qgm.Box, env Env) ([]datum.Row, error) {
		return []datum.Row{{datum.Int(42)}}, nil
	})
	g := qgm.NewGraph()
	b := g.NewBox(kind, "answer")
	b.Output = []qgm.OutputCol{{Name: "x", Type: datum.TInt}}
	g.Top = b
	rows, err := New(store).EvalGraph(g)
	if err != nil || len(rows) != 1 || rows[0][0].I != 42 {
		t.Errorf("extension handler: %v %v", rows, err)
	}
}

func TestResetCaches(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(store)
	r1, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Insert another row; without reset the memoized materialization hides
	// it, after reset it is visible.
	rel, _ := store.Relation("employee")
	if err := rel.Insert(datum.Row{datum.Int(999), datum.String("zed"), datum.Int(1), datum.Float(1)}); err != nil {
		t.Fatal(err)
	}
	r2, _ := ev.EvalGraph(g)
	if r2[0][0].I != r1[0][0].I {
		t.Fatal("memoization should have hidden the insert")
	}
	ev.ResetCaches()
	r3, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if r3[0][0].I != r1[0][0].I+1 {
		t.Errorf("after reset count = %v; want %v", r3[0][0].I, r1[0][0].I+1)
	}
}

func TestNAryUnion(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT deptno FROM department")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Top.Quantifiers[0].Ranges
	u := g.NewBox(qgm.KindUnion, "U3")
	for i := 0; i < 3; i++ {
		g.AddQuantifier(u, qgm.ForEach, "b", base)
	}
	u.Distinct = qgm.DistinctPreserve
	for _, c := range base.Output {
		u.Output = append(u.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
	}
	g.Top = u
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	rows, err := New(store).EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 departments × 3 branches, ALL semantics
		t.Errorf("rows = %d; want 9", len(rows))
	}
	u.Distinct = qgm.DistinctEnforce
	rows, err = New(store).EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("distinct rows = %d; want 3", len(rows))
	}
}

// TestMagicWithNullBindings: a magic table never carries a match for NULL
// join values — consistent with SQL equality, which the original join
// predicate also applies. Rows with NULL join columns must appear in
// neither plan.
func TestMagicWithNullBindings(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery(
		"SELECT e.empname, v.avgsalary FROM employee e, avgMgrSal v WHERE e.workdept = v.workdept")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := New(store).EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].S == "grace" {
			t.Error("NULL workdept row joined")
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	// Unbound quantifier reference.
	g := qgm.NewGraph()
	b := g.NewBox(qgm.KindBaseTable, "t")
	b.Table = &catalog.Table{Name: "t", Columns: []catalog.Column{{Name: "a", Type: datum.TInt}}}
	b.Output = []qgm.OutputCol{{Name: "a", Type: datum.TInt}}
	sel := g.NewBox(qgm.KindSelect, "s")
	qq := g.AddQuantifier(sel, qgm.ForEach, "q", b)
	if _, err := EvalExpr(qq.Col(0), Env{}); err == nil {
		t.Error("unbound ref should error")
	}
	if _, err := EvalExpr(&qgm.Like{X: &qgm.Const{Val: datum.Int(3)}, Pattern: "x"}, Env{}); err == nil {
		t.Error("LIKE on int should error")
	}
	// Non-boolean predicate.
	if _, err := EvalPred(&qgm.Const{Val: datum.Int(3)}, Env{}); err == nil {
		t.Error("integer predicate should error")
	}
}

func TestScalarQuantifierTypedNullRow(t *testing.T) {
	cat, store := testDB(t)
	// Scalar subquery over empty result must produce typed NULLs that flow
	// through COALESCE.
	got := runQuery(t, cat, store,
		"SELECT COALESCE((SELECT salary FROM employee WHERE empno = 9999), -1)")
	expect(t, got, []string{"-1"})
}

func TestCountersAccumulate(t *testing.T) {
	var a, b Counters
	a.BaseRows, a.HashProbes = 5, 2
	b.BaseRows, b.OutputRows = 7, 3
	a.Add(b)
	if a.BaseRows != 12 || a.HashProbes != 2 || a.OutputRows != 3 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestStorageMissingRelation(t *testing.T) {
	g := qgm.NewGraph()
	b := g.NewBox(qgm.KindBaseTable, "ghost")
	b.Table = &catalog.Table{Name: "ghost", Columns: []catalog.Column{{Name: "a", Type: datum.TInt}}}
	b.Output = []qgm.OutputCol{{Name: "a", Type: datum.TInt}}
	g.Top = b
	if _, err := New(storage.NewStore()).EvalGraph(g); err == nil {
		t.Error("missing relation should error")
	}
}

// TestFixpointDirect drives the recursive evaluator at the exec level:
// the same fixpoint root consumed twice must be computed once (memoized),
// and ResetCaches must force recomputation.
func TestFixpointDirect(t *testing.T) {
	cat, store := testDB(t)
	if err := cat.AddView(&catalog.View{
		Name:    "boss",
		Columns: []string{"top", "sub"},
		SQL: "SELECT d.mgrno, e.empno FROM department d, employee e " +
			"WHERE e.workdept = d.deptno UNION " +
			"SELECT b.top, e2.empno FROM boss b, department d2, employee e2 " +
			"WHERE b.sub = d2.mgrno AND e2.workdept = d2.deptno",
	}); err != nil {
		t.Fatal(err)
	}
	q, err := sql.ParseQuery("SELECT a.top, b.sub FROM boss a, boss b WHERE a.sub = b.top")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(store)
	rows1, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	evals1 := ev.Counters.BoxEvals
	// Second evaluation on the same evaluator: fully memoized.
	if _, err := ev.EvalGraph(g); err != nil {
		t.Fatal(err)
	}
	if ev.Counters.BoxEvals != evals1 {
		t.Errorf("fixpoint recomputed on memoized evaluator: %d -> %d", evals1, ev.Counters.BoxEvals)
	}
	ev.ResetCaches()
	rows2, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != len(rows2) {
		t.Errorf("rows differ after reset: %d vs %d", len(rows1), len(rows2))
	}
}
