package exec

import (
	"strings"
	"testing"
	"testing/quick"
)

// likeReference is an obviously-correct recursive LIKE matcher used as the
// oracle for the iterative implementation.
func likeReference(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeReference(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeReference(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeReference(s[1:], p[1:])
	}
}

// TestLikeMatchesReference cross-checks the two matchers over random
// inputs drawn from a small alphabet (small alphabets maximize pattern
// collisions).
func TestLikeMatchesReference(t *testing.T) {
	alphabet := []byte("ab%_")
	fromBits := func(bits uint32, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[(bits>>(2*uint(i)))&3])
		}
		return sb.String()
	}
	f := func(sBits, pBits uint32, sLen, pLen uint8) bool {
		s := strings.ReplaceAll(strings.ReplaceAll(fromBits(sBits, int(sLen%8)), "%", "a"), "_", "b")
		p := fromBits(pBits, int(pLen%8))
		return likeMatch(s, p) == likeReference(s, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// FuzzLikeMatch asserts agreement with the reference for arbitrary inputs.
// Run with: go test -fuzz FuzzLikeMatch ./internal/exec
func FuzzLikeMatch(f *testing.F) {
	f.Add("mississippi", "%iss%ppi")
	f.Add("", "%")
	f.Add("abc", "_b_")
	f.Fuzz(func(t *testing.T, s, p string) {
		if len(s) > 64 || len(p) > 16 {
			return // keep the exponential reference tractable
		}
		if likeMatch(s, p) != likeReference(s, p) {
			t.Fatalf("likeMatch(%q, %q) = %v, reference disagrees", s, p, likeMatch(s, p))
		}
	})
}
