// Streaming (Volcano-style) execution of physical plans: every operator
// implements an open/next/close iterator protocol over small row batches, so
// a consumer that stops pulling (LIMIT, a satisfied EXISTS) stops the whole
// spine, and memory is bounded by pipeline-breaker state (hash tables,
// group-by state, sort buffers, fixpoint deltas) rather than by
// intermediate-result size.
//
// The operators reuse the classic evaluator's machinery — expression
// evaluation, subquery memoization, partitioned parallel hash build, closed
// -subtree prefetch, the shared box memo — so a plan mixing streamed
// operators with box-eval bridges (correlated or shared subtrees, extension
// kinds, recursive fixpoints) stays consistent with box-at-a-time results.
package exec

import (
	"fmt"
	"sort"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/storage"
	"starmagic/internal/vec"
)

// streamBatch is the row-batch granularity of the iterator protocol: big
// enough to amortize per-batch bookkeeping, small enough that early exit
// wastes little work.
const streamBatch = 64

// operator is the iterator protocol. next returns an empty batch at end of
// stream; returned batches are only valid until the following next call.
type operator interface {
	open() error
	next() ([]datum.Row, error)
	close() error
}

// EvalPlan executes a physical plan and returns the result rows plus
// per-operator statistics indexed by plan node ID. It is the materializing
// form of OpenPlan: the whole result is drained into one slice. Counters
// accounting matches the box-at-a-time evaluator's shape (BoxEvals and
// OutputRows once per box, BaseRows for rows actually read — which streaming
// makes smaller under early exit), and MaxRows/context cancellation are
// enforced at batch granularity.
func (ev *Evaluator) EvalPlan(p *plan.Plan) ([]datum.Row, []plan.OpStats, error) {
	it, err := ev.OpenPlan(p)
	if err != nil {
		if it != nil {
			return nil, it.Stats(), err
		}
		return nil, nil, err
	}
	var out []datum.Row
	for {
		batch, err := it.Next()
		if err != nil {
			_ = it.Close()
			return nil, it.Stats(), err
		}
		if len(batch) == 0 {
			break
		}
		out = append(out, batch...)
	}
	if err := it.Close(); err != nil {
		return nil, it.Stats(), err
	}
	return out, it.Stats(), nil
}

// PlanIter is one streaming execution of a physical plan: a pull cursor over
// the root operator's batches. It is the executor's half of the engine's Rows
// API — batches flow from here into result cursors and wire-protocol packets
// without the full result ever materializing.
//
// A PlanIter must be Closed exactly once (Close is idempotent); closing
// before the stream is drained stops the whole operator spine early, which is
// what client-side early exit (a dropped connection, a cursor closed after
// the first page) relies on to not pay for rows never read.
type PlanIter struct {
	run    *planRun
	root   operator
	done   bool
	closed bool
}

// OpenPlan builds the plan's operator tree and opens it. On an open failure
// the partially opened tree is closed and the returned iterator is nil except
// for its statistics, which the caller may still inspect via a non-nil it.
func (ev *Evaluator) OpenPlan(p *plan.Plan) (*PlanIter, error) {
	if err := ev.ctxErr(); err != nil {
		return nil, err
	}
	run := &planRun{ev: ev, stats: make([]plan.OpStats, len(p.Nodes))}
	it := &PlanIter{run: run, root: run.build(p.Root)}
	if err := it.root.open(); err != nil {
		_ = it.Close()
		return it, err
	}
	return it, nil
}

// Next returns the next batch of result rows, or an empty batch at end of
// stream. The returned slice is only valid until the following Next call; the
// rows it holds are stable. After an error or end of stream every further
// call returns the same terminal state.
func (it *PlanIter) Next() ([]datum.Row, error) {
	if it.done || it.closed {
		return nil, nil
	}
	batch, err := it.root.next()
	if err != nil {
		it.done = true
		return nil, err
	}
	if len(batch) == 0 {
		it.done = true
	}
	return batch, nil
}

// Close releases the operator tree (hash tables, spill files, bridged box
// state). It is idempotent and safe to call mid-stream.
func (it *PlanIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.done = true
	return it.root.close()
}

// Stats returns the per-node operator statistics accumulated so far, indexed
// by plan node ID. The slice is live until Close; callers wanting a final
// snapshot read it after Close.
func (it *PlanIter) Stats() []plan.OpStats { return it.run.stats }

// addOutput accounts rows produced by a box-root operator and enforces the
// row budget, mirroring evalBoxNow's accounting.
func (ev *Evaluator) addOutput(n int) error {
	ev.Counters.OutputRows += int64(n)
	if ev.MaxRows > 0 && ev.Counters.OutputRows > ev.MaxRows {
		return errRowBudget(ev.Counters.OutputRows)
	}
	return nil
}

// planRun is one execution of a plan: the operator instances and their
// per-node statistics (plans are shared across concurrent executions; all
// mutable state lives here and in the evaluator).
type planRun struct {
	ev    *Evaluator
	stats []plan.OpStats
}

// spillNote returns the spill-event callback for node n, attributing spill
// counts and bytes to its OpStats (surfaced in EXPLAIN and obs OpSamples).
func (r *planRun) spillNote(n *plan.Node) func(int64) {
	st := &r.stats[n.ID]
	return func(b int64) {
		st.Spills++
		st.SpillBytes += b
	}
}

// build constructs the operator for a node, wrapped with instrumentation.
func (r *planRun) build(n *plan.Node) operator {
	var op operator
	switch n.Kind {
	case plan.OpScan:
		op = &scanOp{r: r, n: n}
	case plan.OpSelect:
		if v := r.tryVecSelect(n); v != nil {
			op = v
		} else {
			op = &selectPipeOp{r: r, n: n}
		}
	case plan.OpGroupBy:
		op = &groupByOp{r: r, n: n}
	case plan.OpUnion:
		op = &unionOp{r: r, n: n}
	case plan.OpIntersect, plan.OpExcept:
		op = &setOpOp{r: r, n: n}
	case plan.OpDistinct:
		op = &distinctOp{r: r, n: n, child: r.build(n.Children[0])}
	case plan.OpSort:
		op = &sortOp{r: r, n: n, child: r.build(n.Children[0])}
	case plan.OpLimit:
		op = &limitOp{r: r, n: n, child: r.build(n.Children[0])}
	case plan.OpTrim:
		op = &trimOp{r: r, n: n, child: r.build(n.Children[0])}
	case plan.OpBoxEval, plan.OpFixpoint:
		op = &boxEvalOp{r: r, n: n}
	default:
		op = &boxEvalOp{r: r, n: n}
	}
	return &instrumented{op: op, st: &r.stats[n.ID]}
}

// materialize fully evaluates a subtree (for hash build sides, nested-loop
// inners, and set-operation right inputs). Closed box-rooted subtrees go
// through — and populate — the evaluator's box memo, so shared work between
// streamed and bridged parts of a plan is still done once.
func (r *planRun) materialize(n *plan.Node) ([]datum.Row, error) {
	ev := r.ev
	if n.Kind == plan.OpBoxEval || n.Kind == plan.OpFixpoint {
		rows, err := ev.EvalBox(n.Box, ev.rootEnv())
		if err != nil {
			return nil, err
		}
		st := &r.stats[n.ID]
		st.Opens++
		st.Batches++
		st.Rows += int64(len(rows))
		return rows, nil
	}
	if n.Box != nil && !ev.NoSubqueryCache {
		if rows, ok := ev.memo[n.Box]; ok {
			return rows, nil
		}
	}
	// A bare scan materializes to the stored rows themselves — callers
	// treat the result as read-only, so skip the batch-append copy and
	// charge the same counters the streamed scan would.
	if n.Kind == plan.OpScan {
		rel, ok := ev.view.Relation(n.Box.Table.Name)
		if !ok {
			return nil, fmt.Errorf("exec: no storage for table %q", n.Box.Table.Name)
		}
		rows := rel.Rows()
		ev.Counters.BoxEvals++
		ev.Counters.BaseRows += int64(len(rows))
		if err := ev.addOutput(len(rows)); err != nil {
			return nil, err
		}
		st := &r.stats[n.ID]
		st.Opens++
		if len(rows) > 0 {
			st.Batches++
			st.Rows += int64(len(rows))
		}
		return rows, nil
	}
	op := r.build(n)
	var rows []datum.Row
	err := func() error {
		if err := op.open(); err != nil {
			return err
		}
		for {
			batch, err := op.next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			rows = append(rows, batch...)
		}
	}()
	if cerr := op.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	// Streamed subtrees are closed by construction (lowering bridges
	// correlated boxes), so the result is safe to memoize.
	if n.Box != nil && !ev.NoSubqueryCache {
		ev.memoInsert(n.Box, rows)
	}
	return rows, nil
}

// instrumented wraps an operator with per-node counters: opens, batches,
// rows, and inclusive wall-clock time. It also makes close idempotent, so
// early closes (LIMIT) compose with the final tree close.
type instrumented struct {
	op     operator
	st     *plan.OpStats
	closed bool
}

func (w *instrumented) open() error {
	t := time.Now()
	err := w.op.open()
	w.st.Opens++
	w.st.Nanos += time.Since(t).Nanoseconds()
	return err
}

func (w *instrumented) next() ([]datum.Row, error) {
	t := time.Now()
	batch, err := w.op.next()
	w.st.Nanos += time.Since(t).Nanoseconds()
	if len(batch) > 0 {
		w.st.Batches++
		w.st.Rows += int64(len(batch))
	}
	return batch, err
}

func (w *instrumented) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	t := time.Now()
	err := w.op.close()
	w.st.Nanos += time.Since(t).Nanoseconds()
	return err
}

// scanOp streams a base table in batches. BaseRows counts rows actually
// pulled, so early exit is visible in the counters.
type scanOp struct {
	r    *planRun
	n    *plan.Node
	rows []datum.Row
	pos  int
}

func (s *scanOp) open() error {
	ev := s.r.ev
	rel, ok := ev.view.Relation(s.n.Box.Table.Name)
	if !ok {
		return fmt.Errorf("exec: no storage for table %q", s.n.Box.Table.Name)
	}
	s.rows = rel.Rows()
	s.pos = 0
	ev.Counters.BoxEvals++
	return nil
}

func (s *scanOp) next() ([]datum.Row, error) {
	ev := s.r.ev
	if err := ev.ctxErr(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + streamBatch
	if end > len(s.rows) {
		end = len(s.rows)
	}
	batch := s.rows[s.pos:end]
	s.pos = end
	ev.Counters.BaseRows += int64(len(batch))
	if err := ev.addOutput(len(batch)); err != nil {
		return nil, err
	}
	return batch, nil
}

func (s *scanOp) close() error {
	s.rows = nil
	return nil
}

// boxEvalOp bridges to the classic evaluator: OpBoxEval (correlated, shared,
// extension) and OpFixpoint (recursive) nodes materialize through EvalBox —
// which handles memoization and semi-naive fixpoint iteration — and stream
// the result out in batches. All Counters accounting happens inside EvalBox.
type boxEvalOp struct {
	r    *planRun
	n    *plan.Node
	rows []datum.Row
	pos  int
}

func (o *boxEvalOp) open() error {
	rows, err := o.r.ev.EvalBox(o.n.Box, o.r.ev.rootEnv())
	if err != nil {
		return err
	}
	o.rows = rows
	o.pos = 0
	return nil
}

func (o *boxEvalOp) next() ([]datum.Row, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	end := o.pos + streamBatch
	if end > len(o.rows) {
		end = len(o.rows)
	}
	batch := o.rows[o.pos:end]
	o.pos = end
	return batch, nil
}

func (o *boxEvalOp) close() error {
	o.rows = nil
	return nil
}

// stageState is the runtime state of one join-pipeline stage.
type stageState struct {
	st     *plan.Stage
	access plan.AccessKind // may be downgraded at runtime (missing index)
	// filters are the predicates applied with the stage quantifier bound
	// (residual; plus reconstructed key equalities after an index or
	// nested-loop downgrade).
	filters []qgm.Expr

	child     operator         // AccessStream
	rel       *storage.RelView // AccessIndex: snapshot-filtered probes
	probe     datum.Row        // AccessIndex probe buffer
	childRows []datum.Row      // materialized child (hash/scan)
	built     bool
	ht        map[string][]datum.Row

	// Budget-mode variants: sht replaces ht (spillable partitioned hash
	// table), buf replaces childRows (spillable nested-loop inner, replayed
	// through cur once per outer binding).
	sht *spillJoin
	buf *rowBuffer
	cur *rowCursor

	rows []datum.Row // current candidate rows for the outer binding
	idx  int
}

// subqState caches a first-match subquery verdict for the pipe's lifetime
// (the check is provably constant across outer bindings).
type subqState struct {
	valid bool
	val   bool
}

// selectPipeOp executes a select box's join pipeline: an odometer over the
// stages, binding each stage's quantifier to qualifying rows, then scalar
// subqueries, post-predicates, semi/anti-join checks, and projection.
type selectPipeOp struct {
	r *planRun
	n *plan.Node

	env    Env
	stages []stageState
	subqs  []subqState
	depth  int
	done   bool
	// oneShot handles a stage-less box (no ForEach quantifiers): exactly one
	// candidate binding is finished.
	oneShot bool
	// grace, when set, replaces the odometer: the pipeline switched to a
	// partition-wise grace join (see grace.go) and next() emits its merge.
	grace *graceJoin
}

func (p *selectPipeOp) open() error {
	ev := p.r.ev
	if p.n.BoxRoot {
		ev.Counters.BoxEvals++
	}
	p.env = ev.rootEnv()
	p.done = false
	p.grace = nil
	p.oneShot = len(p.n.Stages) == 0

	// Constant predicates: any non-TRUE empties the box.
	for _, pred := range p.n.ConstPreds {
		tv, err := EvalPred(pred, p.env)
		if err != nil {
			return err
		}
		if tv != datum.True {
			p.done = true
			return nil
		}
	}

	// Under parallelism, prefetch the closed subtrees the stages will
	// materialize anyway (hash build sides and nested-loop inners) — never
	// the streamed driving stage, which must stay pull-driven for early
	// exit. Skipped under a memory budget: prefetch materializes whole
	// subtrees into the (ungoverned) memo, defeating the bound; budget mode
	// streams build sides into governed spillable state instead.
	if ev.Mem == nil {
		var pre []*qgm.Box
		for i := range p.n.Stages {
			st := &p.n.Stages[i]
			if st.Access == plan.AccessHash || st.Access == plan.AccessScan {
				pre = append(pre, st.Quant.Ranges)
			}
		}
		if err := ev.prefetchBoxes(pre); err != nil {
			return err
		}
	}

	p.stages = make([]stageState, len(p.n.Stages))
	for i := range p.n.Stages {
		st := &p.n.Stages[i]
		ss := &p.stages[i]
		ss.st = st
		ss.access = st.Access
		ss.filters = st.Residual
		switch st.Access {
		case plan.AccessStream:
			ss.child = p.r.build(st.Child)
			if err := ss.child.open(); err != nil {
				return err
			}
		case plan.AccessIndex:
			rel, ok := ev.view.Relation(st.Quant.Ranges.Table.Name)
			if !ok {
				return fmt.Errorf("exec: no storage for table %q", st.Quant.Ranges.Table.Name)
			}
			ss.rel = rel
			ss.probe = make(datum.Row, len(st.KeyOther))
		}
	}
	p.subqs = make([]subqState, len(p.n.Subqs))
	p.depth = 0
	if len(p.stages) > 0 {
		return p.resetStage(0)
	}
	return nil
}

// buildSpillStage streams a hash stage's build side into a spillable
// partitioned hash table, charging the stage's rows to the query budget
// instead of materializing them unaccounted. Counter accounting matches the
// materializing build: the child subtree charges its own counters as it
// streams, and the build itself charges one HashBuilds.
func (p *selectPipeOp) buildSpillStage(ss *stageState) error {
	ev := p.r.ev
	ev.Counters.HashBuilds++
	sht := ev.newSpillJoin(p.r.spillNote(p.n))
	child := p.r.build(ss.st.Child)
	if err := child.open(); err != nil {
		child.close()
		sht.close()
		return err
	}
	q := ss.st.Quant
	buf := make([]byte, 0, 64)
	err := func() error {
		for {
			batch, err := child.next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			for _, row := range batch {
				p.env[q] = row
				buf = buf[:0]
				null := false
				for _, e := range ss.st.KeyMine {
					v, err := EvalExpr(e, p.env)
					if err != nil {
						return err
					}
					if v.IsNull() {
						null = true
						break
					}
					buf = v.AppendKey(buf)
				}
				if null {
					continue // equality never matches NULL
				}
				if err := sht.add(buf, row); err != nil {
					return err
				}
			}
		}
	}()
	delete(p.env, q)
	if cerr := child.close(); err == nil {
		err = cerr
	}
	if err != nil {
		sht.close()
		return err
	}
	ss.sht = sht
	return nil
}

// buildSpillScan streams a nested-loop inner into a spillable replayable
// row buffer.
func (p *selectPipeOp) buildSpillScan(ss *stageState) error {
	rb := p.r.ev.newRowBuffer("nl-inner", p.r.spillNote(p.n))
	child := p.r.build(ss.st.Child)
	if err := child.open(); err != nil {
		child.close()
		rb.close()
		return err
	}
	err := func() error {
		for {
			batch, err := child.next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			for _, row := range batch {
				if err := rb.add(row); err != nil {
					return err
				}
			}
		}
	}()
	if cerr := child.close(); err == nil {
		err = cerr
	}
	if err != nil {
		rb.close()
		return err
	}
	ss.buf = rb
	return nil
}

// downgrade switches a stage whose index probe found no usable index to a
// hash join (build side big enough) or a nested loop with the key
// equalities as filters. The choice depends only on the store, so plans
// stay deterministic.
func (p *selectPipeOp) downgrade(ss *stageState) error {
	ev := p.r.ev
	if ev.Mem != nil {
		return p.downgradeSpill(ss)
	}
	rows, err := p.r.materialize(ss.st.Child)
	if err != nil {
		return err
	}
	if len(rows) > 4 {
		ss.access = plan.AccessHash
		ss.childRows = rows
		ev.Counters.HashBuilds++
		ss.ht, err = ev.buildHashTable(ss.st.Quant, ss.st.KeyMine, rows, p.env)
		if err != nil {
			return err
		}
		ss.built = true
		return nil
	}
	ss.access = plan.AccessScan
	ss.childRows = rows
	ss.built = true
	ss.filters = p.downgradeFilters(ss)
	return nil
}

// downgradeFilters reconstructs the key equalities as residual filters for
// a nested-loop downgrade.
func (p *selectPipeOp) downgradeFilters(ss *stageState) []qgm.Expr {
	filters := make([]qgm.Expr, 0, len(ss.st.Residual)+len(ss.st.KeyMine))
	filters = append(filters, ss.st.Residual...)
	for j := range ss.st.KeyMine {
		filters = append(filters, &qgm.Cmp{Op: datum.EQ, L: ss.st.KeyMine[j], R: ss.st.KeyOther[j]})
	}
	return filters
}

// downgradeSpill is downgrade under a memory budget: the child streams into
// a governed row buffer to learn its cardinality (never into the ungoverned
// memo), then either replays into a spillable hash table or stays a nested
// loop over the buffer.
func (p *selectPipeOp) downgradeSpill(ss *stageState) error {
	ev := p.r.ev
	if err := p.buildSpillScan(ss); err != nil {
		return err
	}
	if ss.buf.count <= 4 {
		ss.access = plan.AccessScan
		cur, err := ss.buf.cursor()
		if err != nil {
			return err
		}
		rows, err := cur.nextBatch(8)
		if err != nil {
			return err
		}
		ss.buf.close()
		ss.buf = nil
		ss.childRows = rows
		ss.built = true
		ss.filters = p.downgradeFilters(ss)
		return nil
	}
	ss.access = plan.AccessHash
	ev.Counters.HashBuilds++
	// Free the buffer's reservation before the build: the replay streams
	// from disk, so the hash table gets the whole remaining budget instead
	// of competing with the buffer's resident suffix.
	if err := ss.buf.freeze(); err != nil {
		return err
	}
	sht := ev.newSpillJoin(p.r.spillNote(p.n))
	cur, err := ss.buf.cursor()
	if err != nil {
		sht.close()
		return err
	}
	q := ss.st.Quant
	buf := make([]byte, 0, 64)
	err = func() error {
		for {
			batch, err := cur.nextBatch(streamBatch)
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			for _, row := range batch {
				p.env[q] = row
				buf = buf[:0]
				null := false
				for _, e := range ss.st.KeyMine {
					v, err := EvalExpr(e, p.env)
					if err != nil {
						return err
					}
					if v.IsNull() {
						null = true
						break
					}
					buf = v.AppendKey(buf)
				}
				if null {
					continue // equality never matches NULL
				}
				if err := sht.add(buf, row); err != nil {
					return err
				}
			}
		}
	}()
	delete(p.env, q)
	ss.buf.close()
	ss.buf = nil
	if err != nil {
		sht.close()
		return err
	}
	ss.sht = sht
	ss.built = true
	return nil
}

// resetStage prepares stage i's candidate rows for the current outer
// binding.
func (p *selectPipeOp) resetStage(i int) error {
	ev := p.r.ev
	ss := &p.stages[i]
	ss.idx = 0
	switch ss.access {
	case plan.AccessStream:
		// advanceStage pulls batches from the child.
		ss.rows = nil
	case plan.AccessIndex:
		for j, e := range ss.st.KeyOther {
			v, err := EvalExpr(e, p.env)
			if err != nil {
				return err
			}
			ss.probe[j] = v
		}
		if rows, used := ss.rel.Lookup(ss.st.IndexCols, ss.probe); used {
			ev.Counters.IndexLookups++
			ss.rows = rows
			return nil
		}
		if err := p.downgrade(ss); err != nil {
			return err
		}
		return p.resetStage(i)
	case plan.AccessHash:
		if !ss.built {
			if ev.Mem != nil {
				if err := p.buildSpillStage(ss); err != nil {
					return err
				}
				ss.built = true
				if p.graceShape(i) && ss.sht.spilled() {
					// The build spilled: per-probe lookups would fault
					// partitions in and out once per outer row. Switch to
					// the partition-wise grace join; next() notices p.grace
					// and emits its merge.
					return p.graceRun(ss)
				}
			} else {
				rows, err := p.r.materialize(ss.st.Child)
				if err != nil {
					return err
				}
				ss.childRows = rows
				ev.Counters.HashBuilds++
				ss.ht, err = ev.buildHashTable(ss.st.Quant, ss.st.KeyMine, rows, p.env)
				if err != nil {
					return err
				}
				ss.built = true
			}
		}
		ev.keyBuf = ev.keyBuf[:0]
		for _, e := range ss.st.KeyOther {
			v, err := EvalExpr(e, p.env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				ss.rows = nil // equality never matches NULL
				return nil
			}
			ev.keyBuf = v.AppendKey(ev.keyBuf)
		}
		ev.Counters.HashProbes++
		if ss.sht != nil {
			rows, err := ss.sht.probe(ev.keyBuf)
			if err != nil {
				return err
			}
			ss.rows = rows
		} else {
			ss.rows = ss.ht[string(ev.keyBuf)]
		}
	case plan.AccessScan:
		if !ss.built {
			if ev.Mem != nil {
				if err := p.buildSpillScan(ss); err != nil {
					return err
				}
			} else {
				rows, err := p.r.materialize(ss.st.Child)
				if err != nil {
					return err
				}
				ss.childRows = rows
			}
			ss.built = true
		}
		if ss.buf != nil {
			cur, err := ss.buf.cursor()
			if err != nil {
				return err
			}
			ss.cur = cur
			ss.rows = nil
		} else {
			ss.rows = ss.childRows
		}
	case plan.AccessCorr:
		rows, err := ev.EvalBox(ss.st.Quant.Ranges, p.env)
		if err != nil {
			return err
		}
		ss.rows = rows
		st := &p.r.stats[ss.st.Child.ID]
		st.Opens++
		st.Rows += int64(len(rows))
	}
	return nil
}

// advanceStage moves stage i to its next qualifying row, binding the stage
// quantifier. Returns false when the stage is exhausted for the current
// outer binding.
func (p *selectPipeOp) advanceStage(i int) (bool, error) {
	ev := p.r.ev
	ss := &p.stages[i]
	q := ss.st.Quant
	for {
		if ss.idx >= len(ss.rows) {
			if ss.access == plan.AccessStream {
				batch, err := ss.child.next()
				if err != nil {
					return false, err
				}
				if len(batch) > 0 {
					ss.rows = batch
					ss.idx = 0
					continue
				}
			}
			if ss.cur != nil {
				batch, err := ss.cur.nextBatch(streamBatch)
				if err != nil {
					return false, err
				}
				if len(batch) > 0 {
					ss.rows = batch
					ss.idx = 0
					continue
				}
			}
			delete(p.env, q)
			return false, nil
		}
		row := ss.rows[ss.idx]
		ss.idx++
		if err := ev.tick(); err != nil {
			return false, err
		}
		p.env[q] = row
		pass := true
		for _, pred := range ss.filters {
			tv, err := EvalPred(pred, p.env)
			if err != nil {
				return false, err
			}
			if tv != datum.True {
				pass = false
				break
			}
		}
		if pass {
			return true, nil
		}
	}
}

// finishRow completes the current full binding: scalar subqueries,
// post-predicates, and semi/anti-join checks. Scalar bindings stay live for
// the projection; the caller clears them.
func (p *selectPipeOp) finishRow() (bool, error) {
	ev := p.r.ev
	for _, q := range p.n.Scalars {
		rows, err := ev.evalSubquery(q, p.env)
		if err != nil {
			return false, err
		}
		switch {
		case len(rows) == 0:
			null := make(datum.Row, len(q.Ranges.Output))
			for i := range null {
				null[i] = datum.NullOf(q.Ranges.Output[i].Type)
			}
			p.env[q] = null
		case len(rows) == 1:
			p.env[q] = rows[0]
		default:
			return false, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
		}
	}
	for _, pred := range p.n.PostPreds {
		tv, err := EvalPred(pred, p.env)
		if err != nil {
			return false, err
		}
		if tv != datum.True {
			return false, nil
		}
	}
	for i := range p.n.Subqs {
		pass, err := p.checkSubq(i)
		if err != nil {
			return false, err
		}
		if !pass {
			return false, nil
		}
	}
	return true, nil
}

func (p *selectPipeOp) checkSubq(i int) (bool, error) {
	ev := p.r.ev
	sq := &p.n.Subqs[i]
	if sq.Mode == plan.SubqBridge {
		rows, err := ev.evalSubquery(sq.Quant, p.env)
		if err != nil {
			return false, err
		}
		return ev.checkQuantifier(sq.Quant, sq.Match, rows, p.env)
	}
	// First-match: the verdict is independent of the outer bindings, so it
	// is computed once per open — except in tuple-at-a-time mode, which
	// re-streams per outer row (still early-exiting).
	c := &p.subqs[i]
	if c.valid && !ev.NoSubqueryCache {
		return c.val, nil
	}
	ev.Counters.SubqueryEvals++
	val, err := p.firstMatch(sq)
	if err != nil {
		return false, err
	}
	c.valid, c.val = true, val
	return val, nil
}

// firstMatch streams the subquery tree and stops pulling at the first
// decisive row: a witness for Exists (semi-join), a violation for ForAll
// (anti-join). This is the true early exit the materializing evaluator
// cannot do — the build side stops producing as soon as the verdict is
// known.
func (p *selectPipeOp) firstMatch(sq *plan.Subquery) (bool, error) {
	ev := p.r.ev
	q := sq.Quant
	child := p.r.build(sq.Child)
	if err := child.open(); err != nil {
		child.close()
		return false, err
	}
	defer child.close()
	for {
		batch, err := child.next()
		if err != nil {
			return false, err
		}
		if len(batch) == 0 {
			// Exhausted without a decisive row: no witness / no violation.
			return q.Type == qgm.ForAll, nil
		}
		for _, row := range batch {
			if err := ev.tick(); err != nil {
				return false, err
			}
			p.env[q] = row
			all := true
			for _, m := range sq.Match {
				tv, err := EvalPred(m, p.env)
				if err != nil {
					delete(p.env, q)
					return false, err
				}
				if tv != datum.True {
					all = false
					break
				}
			}
			delete(p.env, q)
			if q.Type == qgm.Exists && all {
				return true, nil
			}
			if q.Type == qgm.ForAll && !all {
				return false, nil
			}
		}
	}
}

func (p *selectPipeOp) next() ([]datum.Row, error) {
	ev := p.r.ev
	if p.done {
		return nil, nil
	}
	if p.grace != nil {
		return p.graceNext()
	}
	if p.oneShot {
		p.done = true
		pass, err := p.finishRow()
		if err != nil {
			return nil, err
		}
		var out []datum.Row
		if pass {
			row, err := ev.projectRow(p.n.Box, p.env)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
		for _, q := range p.n.Scalars {
			delete(p.env, q)
		}
		if p.n.BoxRoot && len(out) > 0 {
			if err := ev.addOutput(len(out)); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	var out []datum.Row
	i := p.depth
	last := len(p.stages) - 1
	for {
		if i < 0 {
			p.done = true
			break
		}
		ok, err := p.advanceStage(i)
		if err != nil {
			return nil, err
		}
		if !ok {
			i--
			continue
		}
		if i < last {
			i++
			if err := p.resetStage(i); err != nil {
				return nil, err
			}
			if p.grace != nil {
				// The stage's spilled build switched the pipeline to grace
				// mode; no binding has completed yet, so nothing is lost.
				return p.graceNext()
			}
			continue
		}
		pass, err := p.finishRow()
		if err != nil {
			return nil, err
		}
		var row datum.Row
		if pass {
			row, err = ev.projectRow(p.n.Box, p.env)
		}
		for _, q := range p.n.Scalars {
			delete(p.env, q)
		}
		if err != nil {
			return nil, err
		}
		if pass {
			out = append(out, row)
			if len(out) >= streamBatch {
				break
			}
		}
	}
	p.depth = i
	if p.n.BoxRoot && len(out) > 0 {
		if err := ev.addOutput(len(out)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *selectPipeOp) close() error {
	var err error
	for i := range p.stages {
		ss := &p.stages[i]
		if ss.child != nil {
			if e := ss.child.close(); e != nil && err == nil {
				err = e
			}
		}
		if ss.sht != nil {
			ss.sht.close()
		}
		if ss.buf != nil {
			ss.buf.close()
		}
	}
	if p.grace != nil {
		p.grace.close()
		p.grace = nil
	}
	p.stages = nil
	p.env = nil
	return err
}

// groupByOp is a pipeline breaker: open drains the input into grouped
// aggregate state (insertion order preserved), next streams the groups.
type groupByOp struct {
	r   *planRun
	n   *plan.Node
	out []datum.Row
	pos int
}

func (g *groupByOp) open() error {
	ev := g.r.ev
	b := g.n.Box
	if g.n.BoxRoot {
		ev.Counters.BoxEvals++
	}
	inQ := b.Quantifiers[0]
	child := g.r.build(g.n.Children[0])
	if err := child.open(); err != nil {
		child.close()
		return err
	}

	gt := ev.newGroupTable("group-by", g.r.spillNote(g.n))
	defer gt.close()
	env := ev.rootEnv()
	var gkBuf []byte
	// Without a budget the table is map-backed and entry pointers are
	// stable, so a fixed-width RowKey cache can front the byte-keyed map.
	var keyer *vec.RowKeyer
	var fast map[vec.RowKey]*groupEntry
	if ev.Mem == nil && !ev.NoVec {
		keyer = vec.NewRowKeyer()
		fast = map[vec.RowKey]*groupEntry{}
	}

	err := func() error {
		for {
			batch, err := child.next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			for _, row := range batch {
				if err := ev.tick(); err != nil {
					return err
				}
				env[inQ] = row
				if keyer != nil {
					gkBuf, err = ev.accumulateGroupFast(gt, b, env, keyer, fast, gkBuf)
				} else {
					gkBuf, err = ev.accumulateGroup(gt, b, env, gkBuf)
				}
				if err != nil {
					return err
				}
			}
		}
	}()
	if cerr := child.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	g.out, err = emitGroups(gt, b)
	return err
}

func (g *groupByOp) next() ([]datum.Row, error) {
	if g.pos >= len(g.out) {
		return nil, nil
	}
	end := g.pos + streamBatch
	if end > len(g.out) {
		end = len(g.out)
	}
	batch := g.out[g.pos:end]
	g.pos = end
	if g.n.BoxRoot {
		if err := g.r.ev.addOutput(len(batch)); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

func (g *groupByOp) close() error {
	g.out = nil
	return nil
}

// unionOp streams its inputs in order, opening each child only when
// reached and closing it as soon as it is exhausted.
type unionOp struct {
	r        *planRun
	n        *plan.Node
	children []operator
	cur      int
}

func (u *unionOp) open() error {
	if u.n.BoxRoot {
		u.r.ev.Counters.BoxEvals++
	}
	u.children = make([]operator, len(u.n.Children))
	for i, c := range u.n.Children {
		u.children[i] = u.r.build(c)
	}
	u.cur = 0
	if len(u.children) > 0 {
		return u.children[0].open()
	}
	return nil
}

func (u *unionOp) next() ([]datum.Row, error) {
	for u.cur < len(u.children) {
		batch, err := u.children[u.cur].next()
		if err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			if u.n.BoxRoot {
				if err := u.r.ev.addOutput(len(batch)); err != nil {
					return nil, err
				}
			}
			return batch, nil
		}
		if err := u.children[u.cur].close(); err != nil {
			return nil, err
		}
		u.cur++
		if u.cur < len(u.children) {
			if err := u.children[u.cur].open(); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

func (u *unionOp) close() error {
	var err error
	for _, c := range u.children {
		if c == nil {
			continue
		}
		if e := c.close(); e != nil && err == nil {
			err = e
		}
	}
	u.children = nil
	return err
}

// setOpOp implements INTERSECT/EXCEPT (ALL and DISTINCT): the right input
// is materialized into multiplicity counts, the left input streams through
// the multiset filter.
type setOpOp struct {
	r      *planRun
	n      *plan.Node
	left   operator
	counts *countTable
	seen   *seenSet
	out    []datum.Row
}

func (s *setOpOp) open() error {
	ev := s.r.ev
	if s.n.BoxRoot {
		ev.Counters.BoxEvals++
	}
	s.counts = ev.newCountTable("setop", s.r.spillNote(s.n))
	if ev.Mem != nil {
		// Budget mode streams the right input straight into the governed
		// count table instead of materializing it into the memo.
		right := s.r.build(s.n.Children[1])
		if err := right.open(); err != nil {
			right.close()
			return err
		}
		err := func() error {
			for {
				batch, err := right.next()
				if err != nil {
					return err
				}
				if len(batch) == 0 {
					return nil
				}
				for _, row := range batch {
					ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
					if err := s.counts.inc(ev.keyBuf); err != nil {
						return err
					}
				}
			}
		}()
		if cerr := right.close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	} else {
		right, err := s.r.materialize(s.n.Children[1])
		if err != nil {
			return err
		}
		for _, row := range right {
			ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
			if err := s.counts.inc(ev.keyBuf); err != nil {
				return err
			}
		}
	}
	s.seen = ev.newSeenSet("setop-seen", s.r.spillNote(s.n))
	s.left = s.r.build(s.n.Children[0])
	return s.left.open()
}

func (s *setOpOp) next() ([]datum.Row, error) {
	ev := s.r.ev
	distinct := s.n.Box.Distinct != qgm.DistinctPreserve
	for {
		batch, err := s.left.next()
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			return nil, nil
		}
		s.out = s.out[:0]
		for _, row := range batch {
			if err := ev.tick(); err != nil {
				return nil, err
			}
			ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
			c, err := s.counts.count(ev.keyBuf)
			if err != nil {
				return nil, err
			}
			inRight := c > 0
			switch s.n.Box.Kind {
			case qgm.KindIntersect:
				if !inRight {
					continue
				}
				if distinct {
					dup, err := s.seen.checkAndAdd(ev.keyBuf)
					if err != nil {
						return nil, err
					}
					if dup {
						continue
					}
				} else {
					// INTERSECT ALL: min of multiplicities.
					if err := s.counts.dec(ev.keyBuf); err != nil {
						return nil, err
					}
				}
				s.out = append(s.out, row)
			case qgm.KindExcept:
				if distinct {
					if inRight {
						continue
					}
					dup, err := s.seen.checkAndAdd(ev.keyBuf)
					if err != nil {
						return nil, err
					}
					if dup {
						continue
					}
					s.out = append(s.out, row)
				} else {
					if inRight {
						// EXCEPT ALL: subtract multiplicities.
						if err := s.counts.dec(ev.keyBuf); err != nil {
							return nil, err
						}
						continue
					}
					s.out = append(s.out, row)
				}
			}
		}
		if len(s.out) == 0 {
			continue
		}
		if s.n.BoxRoot {
			if err := ev.addOutput(len(s.out)); err != nil {
				return nil, err
			}
		}
		return s.out, nil
	}
}

func (s *setOpOp) close() error {
	var err error
	if s.left != nil {
		err = s.left.close()
	}
	if s.counts != nil {
		s.counts.close()
	}
	if s.seen != nil {
		s.seen.close()
	}
	s.counts, s.seen, s.out = nil, nil, nil
	return err
}

// distinctOp filters duplicates with a streaming seen-set, keeping the
// first occurrence — matching the materializing evaluator's dedupe order.
type distinctOp struct {
	r     *planRun
	n     *plan.Node
	child operator
	seen  *seenSet
	keyer *vec.RowKeyer
	fast  map[vec.RowKey]struct{}
	out   []datum.Row
}

func (d *distinctOp) open() error {
	ev := d.r.ev
	if d.n.BoxRoot {
		ev.Counters.BoxEvals++
	}
	d.seen = ev.newSeenSet("distinct", d.r.spillNote(d.n))
	// Keyable rows dedupe through a fixed-width RowKey set instead of
	// byte-encoded keys; wide or non-encodable rows keep the byte path.
	// Equal rows always classify the same way, so the two sets agree.
	if ev.Mem == nil && !ev.NoVec {
		d.keyer = vec.NewRowKeyer()
		d.fast = map[vec.RowKey]struct{}{}
	}
	return d.child.open()
}

func (d *distinctOp) next() ([]datum.Row, error) {
	ev := d.r.ev
	for {
		batch, err := d.child.next()
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			return nil, nil
		}
		d.out = d.out[:0]
		for _, row := range batch {
			if d.keyer != nil {
				if rk, ok := d.keyer.Key(row); ok {
					if _, dup := d.fast[rk]; dup {
						continue
					}
					d.fast[rk] = struct{}{}
					d.out = append(d.out, row)
					continue
				}
			}
			ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
			dup, err := d.seen.checkAndAdd(ev.keyBuf)
			if err != nil {
				return nil, err
			}
			if dup {
				continue
			}
			d.out = append(d.out, row)
		}
		if len(d.out) == 0 {
			continue
		}
		if d.n.BoxRoot {
			if err := ev.addOutput(len(d.out)); err != nil {
				return nil, err
			}
		}
		return d.out, nil
	}
}

func (d *distinctOp) close() error {
	err := d.child.close()
	if d.seen != nil {
		d.seen.close()
	}
	d.seen, d.out = nil, nil
	return err
}

// sortOp is a pipeline breaker implementing top-level ORDER BY with the
// same stable comparator as the materializing evaluator. Under a memory
// budget it runs as an external merge sort (extSorter): when Lower's EstMem
// estimate already exceeds the budget, run flushing is eager (bounded-size
// runs) rather than waiting for the first denial.
type sortOp struct {
	r      *planRun
	n      *plan.Node
	child  operator
	rows   []datum.Row
	pos    int
	sorter *extSorter
}

func (s *sortOp) open() error {
	ev := s.r.ev
	if ev.Mem != nil {
		s.sorter = ev.newExtSorter(s.n.OrderBy, s.r.spillNote(s.n))
		if lim := ev.Mem.Limit(); lim > 0 && s.n.EstMem > float64(lim) {
			eager := lim / 4
			if q := ev.Mem.Quantum(); eager < q {
				eager = q
			}
			s.sorter.eager = eager
		}
	}
	if err := s.child.open(); err != nil {
		s.child.close()
		return err
	}
	err := func() error {
		for {
			batch, err := s.child.next()
			if err != nil {
				return err
			}
			if len(batch) == 0 {
				return nil
			}
			if s.sorter != nil {
				for _, row := range batch {
					if err := s.sorter.add(row); err != nil {
						return err
					}
				}
				continue
			}
			s.rows = append(s.rows, batch...)
		}
	}()
	if cerr := s.child.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if s.sorter != nil {
		return s.sorter.finish()
	}
	specs := s.n.OrderBy
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, spec := range specs {
			c := datum.SortCompare(s.rows[i][spec.Ord], s.rows[j][spec.Ord])
			if spec.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

func (s *sortOp) next() ([]datum.Row, error) {
	if s.sorter != nil {
		return s.sorter.next(streamBatch)
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + streamBatch
	if end > len(s.rows) {
		end = len(s.rows)
	}
	batch := s.rows[s.pos:end]
	s.pos = end
	return batch, nil
}

func (s *sortOp) close() error {
	if s.sorter != nil {
		s.sorter.close()
		s.sorter = nil
	}
	s.rows = nil
	return nil
}

// limitOp delivers at most N rows, then stops pulling and eagerly closes
// its child — the stop signal that makes LIMIT a true early exit.
type limitOp struct {
	r         *planRun
	n         *plan.Node
	child     operator
	remaining int64
	done      bool
}

func (l *limitOp) open() error {
	l.remaining = l.n.N
	l.done = l.remaining <= 0
	if l.done {
		return nil
	}
	return l.child.open()
}

func (l *limitOp) next() ([]datum.Row, error) {
	if l.done {
		return nil, nil
	}
	batch, err := l.child.next()
	if err != nil {
		return nil, err
	}
	if len(batch) == 0 {
		l.done = true
		return nil, nil
	}
	if int64(len(batch)) > l.remaining {
		batch = batch[:l.remaining]
	}
	l.remaining -= int64(len(batch))
	if l.remaining <= 0 {
		l.done = true
		if err := l.child.close(); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

func (l *limitOp) close() error {
	return l.child.close()
}

// trimOp drops trailing hidden ORDER BY support columns.
type trimOp struct {
	r     *planRun
	n     *plan.Node
	child operator
	out   []datum.Row
}

func (t *trimOp) open() error { return t.child.open() }

func (t *trimOp) next() ([]datum.Row, error) {
	batch, err := t.child.next()
	if err != nil || len(batch) == 0 {
		return nil, err
	}
	t.out = t.out[:0]
	for _, r := range batch {
		t.out = append(t.out, r[:len(r)-t.n.Hidden])
	}
	return t.out, nil
}

func (t *trimOp) close() error {
	err := t.child.close()
	t.out = nil
	return err
}
