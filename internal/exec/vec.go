// Vectorized execution of select pipelines: when lowering marked a node
// Vec (driving base-table scan with kernel-compilable filters, hash stages
// keyed on plain columns/constants), the executor compiles the filters to
// typed column kernels over the storage layer's zero-copy columnar
// snapshot and keys the hash joins on fixed-width normalized words instead
// of AppendKey byte strings. String columns carry intern ids, so string
// equality, hashing, and join keys are integer compares.
//
// The compiled operator is a drop-in replacement for selectPipeOp with
// identical semantics and counter accounting (BaseRows, BoxEvals,
// HashBuilds/HashProbes, OutputRows, MaxRows, cancellation): any
// expression or type the compiler cannot prove kernel-safe fails the
// compile and the node silently falls back to the row pipeline. Div/Mod
// stay row-at-a-time on purpose — their data-dependent divide-by-zero
// errors must surface exactly when the row is reached, which chunked
// evaluation cannot reproduce.
package exec

import (
	"fmt"

	"starmagic/internal/datum"
	"starmagic/internal/plan"
	"starmagic/internal/qgm"
	"starmagic/internal/storage"
	"starmagic/internal/vec"
)

// vecBatch is the vectorized chunk size: large enough to amortize kernel
// dispatch, small enough that a LIMIT consumer over-reads at most one
// chunk beyond the row pipeline's 64-row batches.
const vecBatch = 512

// tickN is the bulk form of tick for chunked loops: it advances the
// amortized cancellation counter by n rows and polls if a poll boundary
// was crossed, so a vectorized scan keeps the row pipeline's cancellation
// latency without a per-row call.
func (ev *Evaluator) tickN(n int) error {
	if ev.ctxDone == nil {
		return nil
	}
	before := ev.ticks / ctxPollInterval
	ev.ticks += n
	if ev.ticks/ctxPollInterval == before {
		return nil
	}
	return ev.ctxErr()
}

// vecClass partitions types into key-comparability classes: 1 numeric,
// 2 string, 3 boolean, 0 unknown/unsupported. Only same-class operands
// compile — it is what keeps NormNum float bits and intern ids from ever
// meeting in one hash-key position.
func vecClass(t datum.Type) int {
	switch t {
	case datum.TInt, datum.TFloat:
		return 1
	case datum.TString:
		return 2
	case datum.TBool:
		return 3
	}
	return 0
}

// vecPred is one compiled driving-stage predicate: eval fills tvs[k] with
// the three-valued verdict for scan row sel[k]. Compiled predicates cannot
// fail at runtime — anything that could (unbound params, type errors,
// Div/Mod) fails the compile instead.
type vecPred interface {
	eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV)
}

// constTVPred is a predicate folded to a constant at compile time.
type constTVPred struct{ tv datum.TV }

func (p *constTVPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	for k := range sel {
		tvs[k] = p.tv
	}
}

// isNullPred is IS [NOT] NULL over a scan column.
type isNullPred struct {
	col    int
	negate bool
}

func (p *isNullPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	vec.IsNullTV(o.tbl.Cols[p.col].Nulls, p.negate, sel, tvs)
}

// notPred is NOT over a compiled predicate.
type notPred struct{ x vecPred }

func (p *notPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	p.x.eval(o, sel, tvs)
	vec.NotTV(tvs[:len(sel)])
}

// boolColPred treats a BOOLEAN column as a predicate (WHERE flag).
type boolColPred struct{ col int }

func (p *boolColPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	c := &o.tbl.Cols[p.col]
	vec.CmpBoolConst(c.Bs, c.Nulls, datum.EQ, true, sel, tvs)
}

// logicPred is n-ary AND/OR. Later arguments are evaluated only over the
// sub-selection where the accumulator is not yet decisive, reproducing the
// row pipeline's short-circuit exactly — including which rows never see
// later arguments at all.
type logicPred struct {
	and  bool
	args []vecPred

	subSel vec.Sel
	idx    []int32
	subTVs []datum.TV
}

func (p *logicPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	p.args[0].eval(o, sel, tvs)
	decisive := datum.True
	if p.and {
		decisive = datum.False
	}
	for _, a := range p.args[1:] {
		sub := p.subSel[:0]
		idx := p.idx[:0]
		for k, i := range sel {
			if tvs[k] != decisive {
				sub = append(sub, i)
				idx = append(idx, int32(k))
			}
		}
		if len(sub) == 0 {
			break
		}
		subTVs := p.subTVs[:len(sub)]
		a.eval(o, sub, subTVs)
		if p.and {
			for j, k := range idx {
				tvs[k] = tvs[k].And(subTVs[j])
			}
		} else {
			for j, k := range idx {
				tvs[k] = tvs[k].Or(subTVs[j])
			}
		}
	}
}

// Numeric comparison predicates over plain columns and constants dispatch
// straight to the typed kernels.

type cmpNumColConstPred struct {
	col int
	op  datum.CmpOp
	ci  int64
	cf  float64
	// rhsInt: the constant is integral and the column is INT, so the
	// compare runs on int64 (exact for values beyond 2^53).
	rhsInt bool
}

func (p *cmpNumColConstPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	c := &o.tbl.Cols[p.col]
	switch {
	case p.rhsInt:
		vec.CmpI64Const(c.I64, c.Nulls, p.op, p.ci, sel, tvs)
	case c.T == datum.TInt:
		vec.CmpI64ConstF(c.I64, c.Nulls, p.op, p.cf, sel, tvs)
	default:
		vec.CmpF64Const(c.F64, c.Nulls, p.op, p.cf, sel, tvs)
	}
}

type cmpNumColColPred struct {
	a, b int
	op   datum.CmpOp
}

func (p *cmpNumColColPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	ca, cb := &o.tbl.Cols[p.a], &o.tbl.Cols[p.b]
	vec.CmpNumNum(ca.I64, ca.F64, ca.Nulls, p.op, cb.I64, cb.F64, cb.Nulls, sel, tvs)
}

// cmpStrColConstPred compares a string column against a constant. Equality
// runs purely on intern ids; ordering resolves through the shared string
// snapshot. The constant's id is resolved lazily through Lookup — a miss
// proves no stored string equals it.
type cmpStrColConstPred struct {
	col      int
	op       datum.CmpOp
	rhs      string
	resolved bool
	rhsID    uint32
	present  bool
}

func (p *cmpStrColConstPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	if !p.resolved {
		p.rhsID, p.present = o.tab.Lookup(p.rhs)
		p.resolved = true
	}
	c := &o.tbl.Cols[p.col]
	switch p.op {
	case datum.EQ, datum.NE:
		vec.CmpIDConstEQ(c.IDs, c.Nulls, p.rhsID, p.present, p.op == datum.NE, sel, tvs)
	default:
		vec.CmpStrConstOrd(c.IDs, c.Nulls, o.strs, p.op, p.rhs, p.rhsID, p.present, sel, tvs)
	}
}

type cmpStrColColPred struct {
	a, b int
	op   datum.CmpOp
}

func (p *cmpStrColColPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	ca, cb := &o.tbl.Cols[p.a], &o.tbl.Cols[p.b]
	switch p.op {
	case datum.EQ, datum.NE:
		vec.CmpIDIDEQ(ca.IDs, ca.Nulls, cb.IDs, cb.Nulls, p.op == datum.NE, sel, tvs)
	default:
		vec.CmpStrStrOrd(ca.IDs, ca.Nulls, cb.IDs, cb.Nulls, o.strs, p.op, sel, tvs)
	}
}

type cmpBoolColConstPred struct {
	col int
	op  datum.CmpOp
	rhs bool
}

func (p *cmpBoolColConstPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	c := &o.tbl.Cols[p.col]
	vec.CmpBoolConst(c.Bs, c.Nulls, p.op, p.rhs, sel, tvs)
}

type cmpBoolColColPred struct {
	a, b int
	op   datum.CmpOp
}

func (p *cmpBoolColColPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	ca, cb := &o.tbl.Cols[p.a], &o.tbl.Cols[p.b]
	vec.CmpBoolBool(ca.Bs, ca.Nulls, cb.Bs, cb.Nulls, p.op, sel, tvs)
}

// numExpr is one node of the compiled arithmetic VM (Add/Sub/Mul/Neg over
// columns, constants, and resolved parameters). isInt tracks the static
// result type with datum.Arith's promotion rule: int-int stays int64
// (wrapping like the row path), anything else runs in float64.
type numExpr struct {
	kind  int // numCol, numConst, numArith, numNeg
	isInt bool
	col   int
	null  bool // constant NULL
	ci    int64
	cf    float64
	aop   datum.ArithOp
	l, r  *numExpr

	bi  []int64
	bf  []float64
	bln []bool
}

// withBufs gives a VM node the scratch its parent evaluates it into.
func (n *numExpr) withBufs() *numExpr {
	n.bi = make([]int64, vecBatch)
	n.bf = make([]float64, vecBatch)
	n.bln = make([]bool, vecBatch)
	return n
}

const (
	numCol = iota
	numConst
	numArith
	numNeg
)

func (n *numExpr) evalI(o *vecSelectOp, sel vec.Sel, out []int64, nulls []bool) {
	switch n.kind {
	case numCol:
		c := &o.tbl.Cols[n.col]
		for k, i := range sel {
			out[k] = c.I64[i]
			nulls[k] = c.Nulls[i]
		}
	case numConst:
		for k := range sel {
			out[k] = n.ci
			nulls[k] = n.null
		}
	case numNeg:
		n.l.evalI(o, sel, out, nulls)
		for k := range sel {
			out[k] = -out[k]
		}
	case numArith:
		lb, rb := n.l.bi[:len(sel)], n.r.bi[:len(sel)]
		ln, rn := n.l.bln[:len(sel)], n.r.bln[:len(sel)]
		n.l.evalI(o, sel, lb, ln)
		n.r.evalI(o, sel, rb, rn)
		switch n.aop {
		case datum.Add:
			for k := range sel {
				out[k] = lb[k] + rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		case datum.Sub:
			for k := range sel {
				out[k] = lb[k] - rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		case datum.Mul:
			for k := range sel {
				out[k] = lb[k] * rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		}
	}
}

func (n *numExpr) evalF(o *vecSelectOp, sel vec.Sel, out []float64, nulls []bool) {
	switch n.kind {
	case numCol:
		c := &o.tbl.Cols[n.col]
		if c.T == datum.TInt {
			for k, i := range sel {
				out[k] = float64(c.I64[i])
				nulls[k] = c.Nulls[i]
			}
		} else {
			for k, i := range sel {
				out[k] = c.F64[i]
				nulls[k] = c.Nulls[i]
			}
		}
	case numConst:
		for k := range sel {
			out[k] = n.cf
			nulls[k] = n.null
		}
	case numNeg:
		n.l.evalF(o, sel, out, nulls)
		for k := range sel {
			out[k] = -out[k]
		}
	case numArith:
		if n.isInt {
			// Int-int arithmetic truncates in int64 before any float use.
			ib := n.bi[:len(sel)]
			n.evalI(o, sel, ib, nulls)
			for k := range sel {
				out[k] = float64(ib[k])
			}
			return
		}
		lb, rb := n.l.bf[:len(sel)], n.r.bf[:len(sel)]
		ln, rn := n.l.bln[:len(sel)], n.r.bln[:len(sel)]
		n.l.evalF(o, sel, lb, ln)
		n.r.evalF(o, sel, rb, rn)
		switch n.aop {
		case datum.Add:
			for k := range sel {
				out[k] = lb[k] + rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		case datum.Sub:
			for k := range sel {
				out[k] = lb[k] - rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		case datum.Mul:
			for k := range sel {
				out[k] = lb[k] * rb[k]
				nulls[k] = ln[k] || rn[k]
			}
		}
	}
}

// numCmpPred compares two compiled arithmetic expressions: int64 compare
// when both sides are statically int (exact), float64 otherwise (matching
// datum.Compare's mixed-numeric promotion).
type numCmpPred struct {
	l, r *numExpr
	op   datum.CmpOp
}

func (p *numCmpPred) eval(o *vecSelectOp, sel vec.Sel, tvs []datum.TV) {
	ltv, eqv, gtv := vec.SignTVs(p.op)
	n := len(sel)
	if p.l.isInt && p.r.isInt {
		lb, rb := p.l.bi[:n], p.r.bi[:n]
		ln, rn := p.l.bln[:n], p.r.bln[:n]
		p.l.evalI(o, sel, lb, ln)
		p.r.evalI(o, sel, rb, rn)
		for k := 0; k < n; k++ {
			switch {
			case ln[k] || rn[k]:
				tvs[k] = datum.Unknown
			case lb[k] < rb[k]:
				tvs[k] = ltv
			case lb[k] > rb[k]:
				tvs[k] = gtv
			default:
				tvs[k] = eqv
			}
		}
		return
	}
	lb, rb := p.l.bf[:n], p.r.bf[:n]
	ln, rn := p.l.bln[:n], p.r.bln[:n]
	p.l.evalF(o, sel, lb, ln)
	p.r.evalF(o, sel, rb, rn)
	for k := 0; k < n; k++ {
		switch {
		case ln[k] || rn[k]:
			tvs[k] = datum.Unknown
		case lb[k] < rb[k]:
			tvs[k] = ltv
		case lb[k] > rb[k]:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// Probe-source kinds for hash-stage key positions.
const (
	probeDrive = iota // column of the driving scan, read from the columnar snapshot
	probeStage        // column of an earlier hash stage's current row
	probeConst        // literal or resolved parameter
)

// probeSrc produces one 64-bit key word of a hash-stage probe.
type probeSrc struct {
	kind  int
	ord   int
	stage int // probeStage: index into o.hashStages
	class int

	d        datum.D // probeConst raw value
	resolved bool
	word     uint64
	null     bool
	missing  bool // string constant not interned: probes, never matches
}

// vecStage is one compiled hash-join stage: build rows keyed by normalized
// fixed-width words (single-word map for one key column, vec.Key for up to
// four).
type vecStage struct {
	st      *plan.Stage
	quant   *qgm.Quantifier
	keyOrds []int
	probes  []probeSrc
	filters []qgm.Expr

	built bool
	rows  []datum.Row
	ht1   map[uint64][]int32
	htN   map[vec.Key][]int32

	bucket []int32
	bi     int
	cur    datum.Row
}

// vecProjSrc is one output column of the gather fast path: a plain column
// of the driving scan (stage -1) or of a hash stage's current row.
type vecProjSrc struct {
	stage int
	ord   int
}

// vecSelectOp is the vectorized replacement for selectPipeOp: a chunked
// kernel-filtered scan drives an odometer over fixed-width-keyed hash
// stages. Compiled by tryVecSelect; any structural or type obstacle falls
// back to the row pipeline before the operator is ever constructed.
type vecSelectOp struct {
	r  *planRun
	n  *plan.Node
	ev *Evaluator

	q0       *qgm.Quantifier
	scanNode *plan.Node
	preds    []vecPred
	stages   []*vecStage
	projSrcs []vecProjSrc // nil: project through env + projectRow

	// alwaysBind keeps env bindings live on every advance (needed when any
	// hash stage has residual filters); otherwise bindings happen only at
	// emit time for env-based projection.
	alwaysBind bool

	rel  *storage.RelView
	tbl  vec.Table
	rows []datum.Row
	vis  []int32 // visibility selection; nil when every stored version is visible
	tab  *vec.Intern
	strs []string

	env        Env
	chunkStart int
	visPos     int
	sel        vec.Sel
	selPos     int
	selA, selB vec.Sel
	tvs        []datum.TV
	cur        int
	depth      int
	done       bool
	out        []datum.Row
}

// tryVecSelect compiles a Vec-marked select node, returning nil when the
// node must run on the row pipeline (memory budget, NoVec, or a compile
// obstacle the lowering's structural check could not see, like unknown
// column classes or Div/Mod in a filter).
func (r *planRun) tryVecSelect(n *plan.Node) operator {
	ev := r.ev
	if !n.Vec || ev.Mem != nil || ev.NoVec {
		return nil
	}
	if len(n.Stages) == 0 || len(n.Scalars) > 0 || len(n.Subqs) > 0 || len(n.PostPreds) > 0 {
		return nil
	}
	st0 := &n.Stages[0]
	if st0.Access != plan.AccessStream || st0.Child.Kind != plan.OpScan || st0.Child.Box.Table == nil {
		return nil
	}
	o := &vecSelectOp{r: r, n: n, ev: ev, q0: st0.Quant, scanNode: st0.Child}
	colTypes := make([]datum.Type, len(st0.Child.Box.Table.Columns))
	for i, c := range st0.Child.Box.Table.Columns {
		colTypes[i] = c.Type
	}
	for _, e := range st0.Residual {
		p, ok := o.compilePred(e, colTypes)
		if !ok {
			return nil
		}
		o.preds = append(o.preds, p)
	}
	for i := 1; i < len(n.Stages); i++ {
		vs, ok := o.compileStage(&n.Stages[i], colTypes)
		if !ok {
			return nil
		}
		if len(vs.filters) > 0 {
			o.alwaysBind = true
		}
		o.stages = append(o.stages, vs)
	}
	o.compileProj()
	if o.projSrcs == nil {
		o.alwaysBind = true
	}
	o.selA = make(vec.Sel, 0, vecBatch)
	o.selB = make(vec.Sel, 0, vecBatch)
	o.tvs = make([]datum.TV, vecBatch)
	o.out = make([]datum.Row, 0, streamBatch)
	return o
}

// compileProj compiles the projection to a plain column gather when every
// output expression is a ColRef of a bound quantifier; otherwise emission
// binds env and uses projectRow.
func (o *vecSelectOp) compileProj() {
	srcs := make([]vecProjSrc, len(o.n.Box.Output))
	for i, oc := range o.n.Box.Output {
		cr, ok := oc.Expr.(*qgm.ColRef)
		if !ok {
			return
		}
		if cr.Q == o.q0 {
			srcs[i] = vecProjSrc{stage: -1, ord: cr.Ord}
			continue
		}
		found := false
		for s, vs := range o.stages {
			if vs.quant == cr.Q {
				srcs[i] = vecProjSrc{stage: s, ord: cr.Ord}
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
	o.projSrcs = srcs
}

// compileStage compiles one hash stage: key classes must pair up statically
// (numeric/string/boolean) so normalized words can never collide across
// classes, and every probe source must be a driving column, an earlier
// stage's column, or a constant.
func (o *vecSelectOp) compileStage(st *plan.Stage, colTypes []datum.Type) (*vecStage, bool) {
	if st.Access != plan.AccessHash || len(st.KeyMine) == 0 || len(st.KeyMine) > vec.MaxKeyCols {
		return nil, false
	}
	vs := &vecStage{st: st, quant: st.Quant, filters: st.Residual}
	for j := range st.KeyMine {
		cr, ok := st.KeyMine[j].(*qgm.ColRef)
		if !ok || cr.Q != st.Quant {
			return nil, false
		}
		mc := vecClass(qgm.TypeOf(cr))
		if mc == 0 {
			return nil, false
		}
		ps, ok := o.compileProbe(st.KeyOther[j], colTypes)
		if !ok || ps.class != mc {
			return nil, false
		}
		vs.keyOrds = append(vs.keyOrds, cr.Ord)
		vs.probes = append(vs.probes, ps)
	}
	return vs, true
}

func (o *vecSelectOp) compileProbe(e qgm.Expr, colTypes []datum.Type) (probeSrc, bool) {
	switch x := e.(type) {
	case *qgm.ColRef:
		if x.Q == o.q0 {
			if x.Ord >= len(colTypes) {
				return probeSrc{}, false
			}
			c := vecClass(colTypes[x.Ord])
			if c == 0 {
				return probeSrc{}, false
			}
			return probeSrc{kind: probeDrive, ord: x.Ord, class: c}, true
		}
		for s := range o.stages {
			if o.stages[s].quant == x.Q {
				c := vecClass(qgm.TypeOf(x))
				if c == 0 {
					return probeSrc{}, false
				}
				return probeSrc{kind: probeStage, stage: s, ord: x.Ord, class: c}, true
			}
		}
		return probeSrc{}, false
	case *qgm.Const:
		return o.compileConstProbe(x.Val)
	case *qgm.Param:
		if x.Ord >= len(o.ev.Params) {
			return probeSrc{}, false
		}
		return o.compileConstProbe(o.ev.Params[x.Ord])
	}
	return probeSrc{}, false
}

func (o *vecSelectOp) compileConstProbe(d datum.D) (probeSrc, bool) {
	if d.IsNull() {
		// A NULL key component never matches; class is irrelevant but must
		// pair with the build side, so take it from the declared type.
		c := vecClass(d.T)
		if c == 0 {
			// Untyped NULL: probes always come up empty whatever the class.
			c = -1
		}
		return probeSrc{kind: probeConst, class: c, d: d, null: true, resolved: true}, true
	}
	c := vecClass(d.T)
	if c == 0 {
		return probeSrc{}, false
	}
	return probeSrc{kind: probeConst, class: c, d: d}, true
}

// compileVal classifies a comparison operand: a plain column (col >= 0), a
// constant (isConst), or a compiled arithmetic tree (num != nil).
type compiledVal struct {
	class   int
	col     int
	isConst bool
	d       datum.D
	num     *numExpr
}

func (o *vecSelectOp) compileVal(e qgm.Expr, colTypes []datum.Type) (compiledVal, bool) {
	switch x := e.(type) {
	case *qgm.ColRef:
		if x.Q != o.q0 || x.Ord >= len(colTypes) {
			return compiledVal{}, false
		}
		c := vecClass(colTypes[x.Ord])
		if c == 0 {
			return compiledVal{}, false
		}
		return compiledVal{class: c, col: x.Ord}, true
	case *qgm.Const:
		return compiledVal{class: vecClass(x.Val.T), col: -1, isConst: true, d: x.Val}, true
	case *qgm.Param:
		if x.Ord >= len(o.ev.Params) {
			return compiledVal{}, false
		}
		d := o.ev.Params[x.Ord]
		return compiledVal{class: vecClass(d.T), col: -1, isConst: true, d: d}, true
	case *qgm.Arith, *qgm.Neg:
		num, ok := o.compileNum(e, colTypes)
		if !ok {
			return compiledVal{}, false
		}
		return compiledVal{class: 1, col: -1, num: num}, true
	}
	return compiledVal{}, false
}

// compileNum compiles an arithmetic tree to the numeric VM. Div and Mod
// are rejected: their divide-by-zero errors are data-dependent and must
// fire lazily in row order, which the row pipeline provides.
func (o *vecSelectOp) compileNum(e qgm.Expr, colTypes []datum.Type) (*numExpr, bool) {
	switch x := e.(type) {
	case *qgm.ColRef:
		if x.Q != o.q0 || x.Ord >= len(colTypes) {
			return nil, false
		}
		t := colTypes[x.Ord]
		if t != datum.TInt && t != datum.TFloat {
			return nil, false
		}
		return (&numExpr{kind: numCol, col: x.Ord, isInt: t == datum.TInt}).withBufs(), true
	case *qgm.Const:
		n, ok := o.compileNumConst(x.Val)
		if !ok {
			return nil, false
		}
		return n.withBufs(), true
	case *qgm.Param:
		if x.Ord >= len(o.ev.Params) {
			return nil, false
		}
		n, ok := o.compileNumConst(o.ev.Params[x.Ord])
		if !ok {
			return nil, false
		}
		return n.withBufs(), true
	case *qgm.Neg:
		l, ok := o.compileNum(x.X, colTypes)
		if !ok {
			return nil, false
		}
		return (&numExpr{kind: numNeg, l: l, isInt: l.isInt}).withBufs(), true
	case *qgm.Arith:
		if x.Op != datum.Add && x.Op != datum.Sub && x.Op != datum.Mul {
			return nil, false
		}
		l, ok := o.compileNum(x.L, colTypes)
		if !ok {
			return nil, false
		}
		r, ok := o.compileNum(x.R, colTypes)
		if !ok {
			return nil, false
		}
		return (&numExpr{kind: numArith, aop: x.Op, l: l, r: r, isInt: l.isInt && r.isInt}).withBufs(), true
	}
	return nil, false
}

func (o *vecSelectOp) compileNumConst(d datum.D) (*numExpr, bool) {
	switch {
	case d.IsNull():
		// NULL arithmetic propagates NULL whatever the other side; the
		// comparison then yields Unknown, so typing does not matter.
		return &numExpr{kind: numConst, null: true, isInt: d.T != datum.TFloat}, true
	case d.T == datum.TInt:
		return &numExpr{kind: numConst, ci: d.I, cf: float64(d.I), isInt: true}, true
	case d.T == datum.TFloat:
		return &numExpr{kind: numConst, cf: d.F}, true
	}
	return nil, false
}

func (o *vecSelectOp) compilePred(e qgm.Expr, colTypes []datum.Type) (vecPred, bool) {
	switch x := e.(type) {
	case *qgm.Cmp:
		return o.compileCmp(x, colTypes)
	case *qgm.Logic:
		if len(x.Args) == 0 {
			return nil, false
		}
		p := &logicPred{
			and:    x.Op == qgm.And,
			subSel: make(vec.Sel, 0, vecBatch),
			idx:    make([]int32, 0, vecBatch),
			subTVs: make([]datum.TV, vecBatch),
		}
		for _, a := range x.Args {
			ap, ok := o.compilePred(a, colTypes)
			if !ok {
				return nil, false
			}
			p.args = append(p.args, ap)
		}
		return p, true
	case *qgm.Not:
		xp, ok := o.compilePred(x.X, colTypes)
		if !ok {
			return nil, false
		}
		return &notPred{x: xp}, true
	case *qgm.IsNull:
		cr, ok := x.X.(*qgm.ColRef)
		if !ok || cr.Q != o.q0 || cr.Ord >= len(colTypes) {
			return nil, false
		}
		return &isNullPred{col: cr.Ord, negate: x.Negate}, true
	case *qgm.ColRef:
		if x.Q != o.q0 || x.Ord >= len(colTypes) || colTypes[x.Ord] != datum.TBool {
			return nil, false
		}
		return &boolColPred{col: x.Ord}, true
	case *qgm.Const:
		return o.compileConstPred(x.Val)
	case *qgm.Param:
		if x.Ord >= len(o.ev.Params) {
			return nil, false
		}
		return o.compileConstPred(o.ev.Params[x.Ord])
	}
	return nil, false
}

func (o *vecSelectOp) compileConstPred(d datum.D) (vecPred, bool) {
	if d.IsNull() {
		return &constTVPred{tv: datum.Unknown}, true
	}
	if d.T != datum.TBool {
		return nil, false // row pipeline reports the type error
	}
	return &constTVPred{tv: datum.FromBool(d.B)}, true
}

func (o *vecSelectOp) compileCmp(x *qgm.Cmp, colTypes []datum.Type) (vecPred, bool) {
	l, ok := o.compileVal(x.L, colTypes)
	if !ok {
		return nil, false
	}
	r, ok := o.compileVal(x.R, colTypes)
	if !ok {
		return nil, false
	}
	// NULL literal on either side: the comparison is Unknown for every row
	// (the compiled subset's other side cannot error).
	if l.isConst && l.d.IsNull() || r.isConst && r.d.IsNull() {
		return &constTVPred{tv: datum.Unknown}, true
	}
	if l.isConst && r.isConst {
		if l.class != r.class {
			return nil, false
		}
		return &constTVPred{tv: datum.CompareTV(x.Op, l.d, r.d)}, true
	}
	if l.class != r.class || l.class == 0 {
		return nil, false
	}
	// Arithmetic on either side routes through the VM (no flip needed: it
	// evaluates both sides symmetrically).
	if l.num != nil || r.num != nil {
		ln, ok := o.asNum(l, colTypes)
		if !ok {
			return nil, false
		}
		rn, ok := o.asNum(r, colTypes)
		if !ok {
			return nil, false
		}
		return &numCmpPred{l: ln, r: rn, op: x.Op}, true
	}
	op := x.Op
	// Normalize const-vs-col to col-vs-const by flipping the operator.
	if l.isConst {
		l, r = r, l
		op = op.Flip()
	}
	switch l.class {
	case 1:
		if r.isConst {
			p := &cmpNumColConstPred{col: l.col, op: op}
			if r.d.T == datum.TInt {
				if colTypes[l.col] == datum.TInt {
					p.rhsInt, p.ci = true, r.d.I
				} else {
					p.cf = float64(r.d.I)
				}
			} else {
				p.cf = r.d.F
			}
			return p, true
		}
		return &cmpNumColColPred{a: l.col, b: r.col, op: op}, true
	case 2:
		if r.isConst {
			return &cmpStrColConstPred{col: l.col, op: op, rhs: r.d.S}, true
		}
		return &cmpStrColColPred{a: l.col, b: r.col, op: op}, true
	case 3:
		if r.isConst {
			return &cmpBoolColConstPred{col: l.col, op: op, rhs: r.d.B}, true
		}
		return &cmpBoolColColPred{a: l.col, b: r.col, op: op}, true
	}
	return nil, false
}

// asNum lifts a compiled numeric value into the VM (plain columns and
// constants become leaf nodes with scratch buffers).
func (o *vecSelectOp) asNum(v compiledVal, colTypes []datum.Type) (*numExpr, bool) {
	if v.num != nil {
		return v.num, true
	}
	var n *numExpr
	if v.isConst {
		c, ok := o.compileNumConst(v.d)
		if !ok {
			return nil, false
		}
		n = c
	} else {
		n = &numExpr{kind: numCol, col: v.col, isInt: colTypes[v.col] == datum.TInt}
	}
	return n.withBufs(), true
}

func (o *vecSelectOp) open() error {
	ev := o.ev
	if o.n.BoxRoot {
		ev.Counters.BoxEvals++
	}
	o.env = ev.rootEnv()
	o.done = false
	for _, pred := range o.n.ConstPreds {
		tv, err := EvalPred(pred, o.env)
		if err != nil {
			return err
		}
		if tv != datum.True {
			o.done = true
			return nil
		}
	}
	// Same closed-subtree prefetch as the row pipeline (vec only runs with
	// Mem == nil), so parallel counter totals stay identical across paths.
	var pre []*qgm.Box
	for _, vs := range o.stages {
		pre = append(pre, vs.st.Quant.Ranges)
	}
	if err := ev.prefetchBoxes(pre); err != nil {
		return err
	}
	rel, ok := ev.view.Relation(o.scanNode.Box.Table.Name)
	if !ok {
		return fmt.Errorf("exec: no storage for table %q", o.scanNode.Box.Table.Name)
	}
	o.rel = rel
	// Vec hands back the raw columnar arrays (all versions, zero-copy) plus a
	// visibility selection; kernels stay oblivious to MVCC and the pred loop
	// simply starts from o.vis slices instead of Iota ranges.
	o.tbl, o.rows, o.vis, o.tab = rel.Vec()
	// The string snapshot is taken after the table snapshot, so it resolves
	// every id the columns can hold.
	o.strs = o.tab.Strs()
	ev.Counters.BoxEvals++ // driving scan box, same as scanOp.open
	scanStats := &o.r.stats[o.scanNode.ID]
	scanStats.Opens++
	scanStats.Vectorized = true
	o.r.stats[o.n.ID].Vectorized = true
	o.chunkStart = 0
	o.visPos = 0
	o.sel = nil
	o.selPos = 0
	o.depth = 0
	return nil
}

// advanceDrive moves the driving scan to its next filter-surviving row,
// refilling the selection from the next vecBatch chunk when exhausted.
// Counter accounting per chunk matches scanOp per batch: BaseRows and the
// scan box's output budget for every row read, stats batches/rows on the
// scan node.
func (o *vecSelectOp) advanceDrive() (bool, error) {
	ev := o.ev
	for {
		if o.selPos < len(o.sel) {
			o.cur = int(o.sel[o.selPos])
			o.selPos++
			if o.alwaysBind {
				o.env[o.q0] = o.rows[o.cur]
			}
			return true, nil
		}
		// Refill: chunk either the full table (everything visible) or the
		// snapshot's visibility selection. Counters charge visible rows only,
		// matching the row pipeline, which never sees invisible versions.
		var sel vec.Sel
		var n int
		if o.vis != nil {
			if o.visPos >= len(o.vis) {
				if o.alwaysBind {
					delete(o.env, o.q0)
				}
				return false, nil
			}
			lo := o.visPos
			hi := lo + vecBatch
			if hi > len(o.vis) {
				hi = len(o.vis)
			}
			o.visPos = hi
			n = hi - lo
			sel = o.vis[lo:hi]
		} else {
			if o.chunkStart >= o.tbl.N {
				if o.alwaysBind {
					delete(o.env, o.q0)
				}
				return false, nil
			}
			lo := o.chunkStart
			hi := lo + vecBatch
			if hi > o.tbl.N {
				hi = o.tbl.N
			}
			o.chunkStart = hi
			n = hi - lo
			sel = vec.Iota(o.selA[:0], int32(lo), int32(hi))
		}
		ev.Counters.BaseRows += int64(n)
		if err := ev.addOutput(n); err != nil {
			return false, err
		}
		st := &o.r.stats[o.scanNode.ID]
		st.Batches++
		st.Rows += int64(n)
		if err := ev.tickN(n); err != nil {
			return false, err
		}
		for _, p := range o.preds {
			if len(sel) == 0 {
				break
			}
			tvs := o.tvs[:len(sel)]
			p.eval(o, sel, tvs)
			sel = vec.FilterTrue(sel, tvs, o.selB[:0])
			o.selA, o.selB = o.selB, o.selA
		}
		o.sel = sel
		o.selPos = 0
	}
}

// buildStage materializes and keys a hash stage's build side. The child
// materializes through planRun.materialize for exact counter/memo parity
// with the row pipeline; string key values are interned through the shared
// engine table, so any probe-side Lookup miss proves no build key matches.
func (o *vecSelectOp) buildStage(vs *vecStage) error {
	rows, err := o.r.materialize(vs.st.Child)
	if err != nil {
		return err
	}
	o.ev.Counters.HashBuilds++
	vs.rows = rows
	single := len(vs.keyOrds) == 1
	if single {
		vs.ht1 = make(map[uint64][]int32, len(rows))
	} else {
		vs.htN = make(map[vec.Key][]int32, len(rows))
	}
	for j, row := range rows {
		var key vec.Key
		null := false
		for p, ord := range vs.keyOrds {
			d := row[ord]
			if d.IsNull() {
				null = true
				break
			}
			key.V[p] = o.buildWord(d)
		}
		if null {
			continue // equality never matches NULL
		}
		if single {
			vs.ht1[key.V[0]] = append(vs.ht1[key.V[0]], int32(j))
		} else {
			vs.htN[key] = append(vs.htN[key], int32(j))
		}
	}
	vs.built = true
	return nil
}

// buildWord normalizes one non-NULL build-side key datum.
func (o *vecSelectOp) buildWord(d datum.D) uint64 {
	switch d.T {
	case datum.TString:
		return uint64(o.tab.Intern(d.S))
	case datum.TBool:
		return vec.NormBool(d.B)
	default:
		return vec.NormNum(d.AsFloat())
	}
}

// probeWord produces one key word of a probe. null reports a NULL
// component (no probe at all); missing reports a string with no interned
// id (probes, never matches).
func (o *vecSelectOp) probeWord(ps *probeSrc) (word uint64, null, missing bool) {
	switch ps.kind {
	case probeDrive:
		c := &o.tbl.Cols[ps.ord]
		i := o.cur
		if c.Nulls[i] {
			return 0, true, false
		}
		switch c.T {
		case datum.TInt:
			return vec.NormNum(float64(c.I64[i])), false, false
		case datum.TFloat:
			return vec.NormNum(c.F64[i]), false, false
		case datum.TBool:
			return vec.NormBool(c.Bs[i]), false, false
		default:
			return uint64(c.IDs[i]), false, false
		}
	case probeStage:
		d := o.stages[ps.stage].cur[ps.ord]
		if d.IsNull() {
			return 0, true, false
		}
		if d.T == datum.TString {
			id, ok := o.tab.Lookup(d.S)
			return uint64(id), false, !ok
		}
		return o.buildWord(d), false, false
	default:
		if !ps.resolved {
			// Constants resolve after the stage build, so every interned
			// build key is visible to the Lookup.
			if ps.d.T == datum.TString {
				id, ok := o.tab.Lookup(ps.d.S)
				ps.word, ps.missing = uint64(id), !ok
			} else {
				ps.word = o.buildWord(ps.d)
			}
			ps.resolved = true
		}
		return ps.word, ps.null, ps.missing
	}
}

// resetHash prepares hash stage si's bucket for the current outer binding,
// with the row pipeline's exact accounting: a NULL key component skips the
// probe entirely; a missing interned string still probes (and misses).
func (o *vecSelectOp) resetHash(si int) error {
	ev := o.ev
	vs := o.stages[si]
	vs.bi = 0
	if !vs.built {
		if err := o.buildStage(vs); err != nil {
			return err
		}
	}
	var key vec.Key
	missing := false
	for p := range vs.probes {
		w, null, miss := o.probeWord(&vs.probes[p])
		if null {
			vs.bucket = nil
			return nil
		}
		if miss {
			missing = true
		}
		key.V[p] = w
	}
	ev.Counters.HashProbes++
	if missing {
		vs.bucket = nil
		return nil
	}
	if vs.ht1 != nil {
		vs.bucket = vs.ht1[key.V[0]]
	} else {
		vs.bucket = vs.htN[key]
	}
	return nil
}

// advanceHash moves hash stage si to its next qualifying build row.
func (o *vecSelectOp) advanceHash(si int) (bool, error) {
	ev := o.ev
	vs := o.stages[si]
	for vs.bi < len(vs.bucket) {
		row := vs.rows[vs.bucket[vs.bi]]
		vs.bi++
		if err := ev.tick(); err != nil {
			return false, err
		}
		vs.cur = row
		if o.alwaysBind {
			o.env[vs.quant] = row
		}
		pass := true
		for _, pred := range vs.filters {
			tv, err := EvalPred(pred, o.env)
			if err != nil {
				return false, err
			}
			if tv != datum.True {
				pass = false
				break
			}
		}
		if pass {
			return true, nil
		}
	}
	if o.alwaysBind {
		delete(o.env, vs.quant)
	}
	return false, nil
}

// emit projects the current full binding into a fresh row.
func (o *vecSelectOp) emit() (datum.Row, error) {
	if o.projSrcs != nil {
		row := make(datum.Row, len(o.projSrcs))
		for j, ps := range o.projSrcs {
			if ps.stage < 0 {
				row[j] = o.rows[o.cur][ps.ord]
			} else {
				row[j] = o.stages[ps.stage].cur[ps.ord]
			}
		}
		return row, nil
	}
	// Env-based projection: alwaysBind keeps all bindings live.
	return o.ev.projectRow(o.n.Box, o.env)
}

func (o *vecSelectOp) next() ([]datum.Row, error) {
	ev := o.ev
	if o.done {
		return nil, nil
	}
	o.out = o.out[:0]
	i := o.depth
	last := len(o.stages)
	for {
		if i < 0 {
			o.done = true
			break
		}
		var ok bool
		var err error
		if i == 0 {
			ok, err = o.advanceDrive()
		} else {
			ok, err = o.advanceHash(i - 1)
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			i--
			continue
		}
		if i < last {
			i++
			if err := o.resetHash(i - 1); err != nil {
				return nil, err
			}
			continue
		}
		row, err := o.emit()
		if err != nil {
			return nil, err
		}
		o.out = append(o.out, row)
		if len(o.out) >= streamBatch {
			break
		}
	}
	o.depth = i
	if o.n.BoxRoot && len(o.out) > 0 {
		if err := ev.addOutput(len(o.out)); err != nil {
			return nil, err
		}
	}
	return o.out, nil
}

func (o *vecSelectOp) close() error {
	o.rows = nil
	o.sel = nil
	o.out = nil
	o.env = nil
	for _, vs := range o.stages {
		vs.rows, vs.ht1, vs.htN, vs.bucket, vs.cur = nil, nil, nil, nil, nil
	}
	return nil
}
