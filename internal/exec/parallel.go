// Intra-query parallelism: bounded worker pools that (a) materialize
// independent closed quantifier subtrees of a box concurrently and (b) build
// transient join hash tables over row ranges. Both are behind
// Evaluator.Parallelism and preserve serial semantics exactly — workers use
// private caches, buffers, and Counters merged deterministically at join
// points, and hash buckets keep the serial row order.
package exec

import (
	"runtime"
	"sync"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// parallelBuildMinRows is the minimum build side for a parallel hash build;
// below it the partition/merge overhead dominates.
const parallelBuildMinRows = 2048

// workerCount resolves Parallelism: 0/1 serial, negative = GOMAXPROCS.
func (ev *Evaluator) workerCount() int {
	switch {
	case ev.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case ev.Parallelism == 0:
		return 1
	}
	return ev.Parallelism
}

// child returns a worker evaluator sharing the store and the snapshot view
// but nothing else; its caches and Counters are private until merged by the
// spawner. Children run serially so the pool size bounds total goroutines.
func (ev *Evaluator) child() *Evaluator {
	c := New(ev.store)
	c.view = ev.view // same snapshot: workers must agree on visibility
	c.MaxRows = ev.MaxRows
	c.MaxRecursion = ev.MaxRecursion
	c.Parallelism = 1
	c.Params = ev.Params
	// Children charge the same per-query budget; reservation is atomic, so
	// concurrent workers compose safely (their private Accounts do not).
	c.Mem = ev.Mem
	// Children poll the same context (with private tick counters), so a
	// cancelled query aborts its prefetch workers too.
	c.ctx, c.ctxDone = ev.ctx, ev.ctxDone
	return c
}

// prefetchClosed materializes the distinct closed, non-recursive quantifier
// subtrees of b concurrently, one child evaluator per subtree, and merges the
// children's memo tables and Counters into ev in subtree order. After it
// returns, the serial join machinery finds every prefetched box memoized, so
// row order and results are identical to serial evaluation. Each subtree gets
// its own child (rather than sharing one per worker) so the work done — and
// therefore the merged counter totals — do not depend on goroutine
// scheduling.
func (ev *Evaluator) prefetchClosed(b *qgm.Box) error {
	boxes := make([]*qgm.Box, 0, len(b.Quantifiers))
	for _, q := range b.Quantifiers {
		boxes = append(boxes, q.Ranges)
	}
	return ev.prefetchBoxes(boxes)
}

// prefetchBoxes materializes the prefetchable members of boxes concurrently:
// distinct, closed, non-recursive, non-base, not already memoized. The
// streaming executor passes the subtrees its join stages will materialize
// anyway (hash build sides, nested-loop inners) — never the streamed driving
// stage, which would defeat early exit.
func (ev *Evaluator) prefetchBoxes(boxes []*qgm.Box) error {
	workers := ev.workerCount()
	if workers <= 1 || ev.NoSubqueryCache || len(ev.recActive) > 0 {
		return nil
	}
	var cands []*qgm.Box
	seen := map[*qgm.Box]bool{}
	for _, box := range boxes {
		if box == nil || seen[box] {
			continue
		}
		seen[box] = true
		if box.Recursive || box.Kind == qgm.KindBaseTable {
			continue
		}
		if _, ok := ev.memo[box]; ok {
			continue
		}
		if ev.inProgress[box] {
			continue // up-stack; the serial path will report the cycle
		}
		if len(ev.freeRefs(box)) != 0 {
			continue // correlated: must evaluate per binding
		}
		cands = append(cands, box)
	}
	if len(cands) < 2 {
		return nil // nothing to overlap
	}

	children := make([]*Evaluator, len(cands))
	errs := make([]error, len(cands))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, box := range cands {
		children[i] = ev.child()
		wg.Add(1)
		go func(i int, box *qgm.Box) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = children[i].EvalBox(box, children[i].rootEnv())
		}(i, box)
	}
	wg.Wait()

	for i, c := range children {
		if errs[i] != nil {
			return errs[i]
		}
		ev.Counters.Add(c.Counters)
		// Adopt everything the child materialized, nested shared boxes
		// included. Closedness is a static graph property, so any box the
		// child memoized is closed for ev too; first writer wins (identical
		// content either way, since evaluation is deterministic).
		for bx, rows := range c.memo {
			if _, ok := ev.memo[bx]; !ok {
				ev.memoInsert(bx, rows)
			}
		}
		// The parent now owns (and has re-charged) the adopted entries;
		// release the worker's reservations.
		c.clearCacheCharges()
	}
	if ev.MaxRows > 0 && ev.Counters.OutputRows > ev.MaxRows {
		return errRowBudget(ev.Counters.OutputRows)
	}
	return nil
}

// hashBuilder accumulates join hash buckets with interned key strings: bucket
// lookup is allocation-free (map index with string(buf)); a key string is
// allocated once per distinct key, not per row.
type hashBuilder struct {
	idx     map[string]int
	buckets [][]datum.Row
}

func newHashBuilder(hint int) *hashBuilder {
	return &hashBuilder{idx: make(map[string]int, hint)}
}

func (hb *hashBuilder) add(key []byte, row datum.Row) {
	if i, ok := hb.idx[string(key)]; ok {
		hb.buckets[i] = append(hb.buckets[i], row)
		return
	}
	hb.idx[string(key)] = len(hb.buckets)
	hb.buckets = append(hb.buckets, []datum.Row{row})
}

// mergeInto appends the builder's buckets into dst. Called per builder in
// partition order, it reproduces exactly the bucket row order of a serial
// build.
func (hb *hashBuilder) mergeInto(dst map[string][]datum.Row) {
	for k, i := range hb.idx {
		dst[k] = append(dst[k], hb.buckets[i]...)
	}
}

// buildHashRange fills hb with the rows of one partition, keyed by keyExprs
// evaluated with q bound to each row. env must be private to the caller.
func buildHashRange(hb *hashBuilder, q *qgm.Quantifier, keyExprs []qgm.Expr, rows []datum.Row, env Env) error {
	buf := make([]byte, 0, 64)
	for _, row := range rows {
		env[q] = row
		buf = buf[:0]
		null := false
		for _, e := range keyExprs {
			v, err := EvalExpr(e, env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = v.AppendKey(buf)
		}
		if null {
			continue // equality never matches NULL
		}
		hb.add(buf, row)
	}
	return nil
}

// buildHashTable builds the transient join hash table for quantifier q over
// rows. Large builds are partitioned into contiguous row ranges built by
// concurrent workers and merged in range order, so the result is
// byte-identical to a serial build.
func (ev *Evaluator) buildHashTable(q *qgm.Quantifier, keyExprs []qgm.Expr, rows []datum.Row, cur Env) (map[string][]datum.Row, error) {
	workers := ev.workerCount()
	if n := len(rows) / parallelBuildMinRows; workers > n {
		workers = n // at least parallelBuildMinRows rows per worker
	}
	ht := make(map[string][]datum.Row, len(rows))
	if workers <= 1 {
		hb := newHashBuilder(len(rows))
		if err := buildHashRange(hb, q, keyExprs, rows, cur.clone()); err != nil {
			return nil, err
		}
		hb.mergeInto(ht)
		return ht, nil
	}

	parts := make([]*hashBuilder, workers)
	errs := make([]error, workers)
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[w] = newHashBuilder(hi - lo)
		wg.Add(1)
		go func(w int, rows []datum.Row) {
			defer wg.Done()
			errs[w] = buildHashRange(parts[w], q, keyExprs, rows, cur.clone())
		}(w, rows[lo:hi])
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		parts[w].mergeInto(ht)
	}
	return ht, nil
}
