package exec

import (
	"fmt"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
)

// Env binds quantifiers to their current rows during evaluation. Outer
// bindings (correlation) and local bindings share one map; bindings are
// rows of the box each quantifier ranges over.
type Env map[*qgm.Quantifier]datum.Row

// paramsQ is the sentinel quantifier binding the run's parameter values in
// every environment: env[paramsQ][i] is the value of placeholder ordinal i.
// It belongs to no box, so it never collides with a real quantifier, and
// Env.clone propagates it into derived environments for free.
var paramsQ = &qgm.Quantifier{Name: "?params"}

// BindParams returns an environment carrying only parameter bindings.
// Evaluators seed their root environments with it via rootEnv; it is
// exported for callers evaluating expressions outside a box evaluation.
func BindParams(params datum.Row) Env {
	if params == nil {
		return Env{}
	}
	return Env{paramsQ: params}
}

// rootEnv is the environment every top-level box evaluation starts from:
// empty except for the run's parameter bindings.
func (ev *Evaluator) rootEnv() Env {
	return BindParams(ev.Params)
}

// clone returns a copy of the environment.
func (e Env) clone() Env {
	c := make(Env, len(e)+4)
	for k, v := range e {
		c[k] = v
	}
	return c
}

// EvalExpr evaluates a scalar expression under env. Boolean results use
// datum.TBool with Null representing UNKNOWN.
func EvalExpr(e qgm.Expr, env Env) (datum.D, error) {
	switch x := e.(type) {
	case *qgm.ColRef:
		row, ok := env[x.Q]
		if !ok {
			return datum.Null(), fmt.Errorf("exec: unbound quantifier %q", x.Q.Name)
		}
		if x.Ord >= len(row) {
			return datum.Null(), fmt.Errorf("exec: ordinal %d out of range for %q", x.Ord, x.Q.Name)
		}
		return row[x.Ord], nil
	case *qgm.Const:
		return x.Val, nil
	case *qgm.Param:
		params, ok := env[paramsQ]
		if !ok || x.Ord >= len(params) {
			return datum.Null(), fmt.Errorf("exec: unbound parameter ?%d (got %d bindings)", x.Ord+1, len(params))
		}
		return params[x.Ord], nil
	case *qgm.Cmp:
		l, err := EvalExpr(x.L, env)
		if err != nil {
			return datum.Null(), err
		}
		r, err := EvalExpr(x.R, env)
		if err != nil {
			return datum.Null(), err
		}
		return tvDatum(datum.CompareTV(x.Op, l, r)), nil
	case *qgm.Logic:
		acc := datum.True
		if x.Op == qgm.Or {
			acc = datum.False
		}
		for _, a := range x.Args {
			v, err := EvalPred(a, env)
			if err != nil {
				return datum.Null(), err
			}
			if x.Op == qgm.And {
				acc = acc.And(v)
				if acc == datum.False {
					break
				}
			} else {
				acc = acc.Or(v)
				if acc == datum.True {
					break
				}
			}
		}
		return tvDatum(acc), nil
	case *qgm.Not:
		v, err := EvalPred(x.X, env)
		if err != nil {
			return datum.Null(), err
		}
		return tvDatum(v.Not()), nil
	case *qgm.Arith:
		l, err := EvalExpr(x.L, env)
		if err != nil {
			return datum.Null(), err
		}
		r, err := EvalExpr(x.R, env)
		if err != nil {
			return datum.Null(), err
		}
		return datum.Arith(x.Op, l, r)
	case *qgm.Neg:
		v, err := EvalExpr(x.X, env)
		if err != nil {
			return datum.Null(), err
		}
		return datum.Neg(v)
	case *qgm.IsNull:
		v, err := EvalExpr(x.X, env)
		if err != nil {
			return datum.Null(), err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return datum.Bool(res), nil
	case *qgm.Like:
		v, err := EvalExpr(x.X, env)
		if err != nil {
			return datum.Null(), err
		}
		if v.IsNull() {
			return datum.NullOf(datum.TBool), nil
		}
		if v.T != datum.TString {
			return datum.Null(), fmt.Errorf("exec: LIKE on %s", v.T)
		}
		res := likeMatch(v.S, x.Pattern)
		if x.Negate {
			res = !res
		}
		return datum.Bool(res), nil
	case *qgm.Concat:
		l, err := EvalExpr(x.L, env)
		if err != nil {
			return datum.Null(), err
		}
		r, err := EvalExpr(x.R, env)
		if err != nil {
			return datum.Null(), err
		}
		if l.IsNull() || r.IsNull() {
			return datum.NullOf(datum.TString), nil
		}
		return datum.String(l.Format() + r.Format()), nil
	case *qgm.Match:
		return datum.Bool(x.Truth), nil
	case *qgm.Case:
		for _, w := range x.Whens {
			tv, err := EvalPred(w.When, env)
			if err != nil {
				return datum.Null(), err
			}
			if tv == datum.True {
				return EvalExpr(w.Then, env)
			}
		}
		if x.Else != nil {
			return EvalExpr(x.Else, env)
		}
		return datum.Null(), nil
	case *qgm.Func:
		return evalFunc(x, env)
	}
	return datum.Null(), fmt.Errorf("exec: unsupported expression %T", e)
}

// EvalPred evaluates a predicate expression to a three-valued truth value.
func EvalPred(e qgm.Expr, env Env) (datum.TV, error) {
	v, err := EvalExpr(e, env)
	if err != nil {
		return datum.Unknown, err
	}
	return datumTV(v)
}

func tvDatum(v datum.TV) datum.D {
	switch v {
	case datum.True:
		return datum.Bool(true)
	case datum.False:
		return datum.Bool(false)
	}
	return datum.NullOf(datum.TBool)
}

func datumTV(v datum.D) (datum.TV, error) {
	if v.IsNull() {
		return datum.Unknown, nil
	}
	if v.T != datum.TBool {
		return datum.Unknown, fmt.Errorf("exec: predicate evaluated to %s, not boolean", v.T)
	}
	return datum.FromBool(v.B), nil
}

// evalFunc evaluates the supported scalar functions. NULL arguments yield
// NULL except for COALESCE (skips them) and NULLIF.
func evalFunc(x *qgm.Func, env Env) (datum.D, error) {
	switch x.Name {
	case "COALESCE":
		for _, a := range x.Args {
			v, err := EvalExpr(a, env)
			if err != nil {
				return datum.Null(), err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return datum.Null(), nil
	case "NULLIF":
		a, err := EvalExpr(x.Args[0], env)
		if err != nil {
			return datum.Null(), err
		}
		b, err := EvalExpr(x.Args[1], env)
		if err != nil {
			return datum.Null(), err
		}
		if datum.CompareTV(datum.EQ, a, b) == datum.True {
			return datum.NullOf(a.T), nil
		}
		return a, nil
	}
	args := make([]datum.D, len(x.Args))
	for i, a := range x.Args {
		v, err := EvalExpr(a, env)
		if err != nil {
			return datum.Null(), err
		}
		if v.IsNull() {
			return datum.NullOf(v.T), nil
		}
		args[i] = v
	}
	switch x.Name {
	case "ABS":
		switch args[0].T {
		case datum.TInt:
			if args[0].I < 0 {
				return datum.Int(-args[0].I), nil
			}
			return args[0], nil
		case datum.TFloat:
			if args[0].F < 0 {
				return datum.Float(-args[0].F), nil
			}
			return args[0], nil
		}
		return datum.Null(), fmt.Errorf("exec: ABS on %s", args[0].T)
	case "UPPER":
		return datum.String(asciiMap(args[0].S, 'a', 'z', -32)), nil
	case "LOWER":
		return datum.String(asciiMap(args[0].S, 'A', 'Z', 32)), nil
	case "LENGTH":
		return datum.Int(int64(len(args[0].S))), nil
	}
	return datum.Null(), fmt.Errorf("exec: unknown function %q", x.Name)
}

func asciiMap(s string, lo, hi byte, delta int) string {
	b := []byte(s)
	for i, c := range b {
		if c >= lo && c <= hi {
			b[i] = byte(int(c) + delta)
		}
	}
	return string(b)
}

// likeMatch implements SQL LIKE: '%' matches any sequence, '_' any single
// character. Matching is byte-wise (ASCII data in this engine).
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
