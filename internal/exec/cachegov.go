// Governed memoization: the evaluator's caches — the closed-box memo,
// correlated subquery caches, cached join hash tables, and recursive
// fixpoint sets — charge the query's memory budget like any other resident
// state. Insertion is opportunistic: a denied charge (after cross-operator
// reclaim) skips caching and the evaluator recomputes on the next
// reference. The one exception is fixpoint sets, which the recursion body
// re-enters through the memo every round and therefore must stay resident;
// when even reclaim cannot make room for one, the query fails with
// resource.ErrMemoryExceeded rather than exceeding the budget. Under
// pressure from other operators the governor is itself a spillable:
// reclaimOne drops the largest droppable cached entry.
package exec

import (
	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/resource"
)

// cacheGov tracks the budget bytes charged for each cached entry. Sizes are
// approximations (rows shared between a memo entry and a hash table built
// over it are counted in both), which errs on the safe side of the cap.
type cacheGov struct {
	ev   *Evaluator
	acct *resource.Account
	memo map[*qgm.Box]int64        // charged bytes per memo entry
	sub  map[*qgm.Quantifier]int64 // charged bytes per subquery cache
	hash map[*qgm.Quantifier]int64 // charged bytes per hash-table cache
}

// cg returns the evaluator's cache governor, nil when no budget is
// attached (ungoverned caching). The governor registers as a spillable so
// operators under pressure can evict cached entries.
func (ev *Evaluator) cg() *cacheGov {
	if ev.Mem == nil {
		return nil
	}
	if ev.cgov == nil {
		ev.cgov = &cacheGov{
			ev:   ev,
			acct: ev.Mem.OpenAccount(),
			memo: map[*qgm.Box]int64{},
			sub:  map[*qgm.Quantifier]int64{},
			hash: map[*qgm.Quantifier]int64{},
		}
		ev.spillables = append(ev.spillables, ev.cgov)
	}
	return ev.cgov
}

// charge reserves n bytes for cached state, paging out other operators'
// state — and, through its own reclaimOne, older cached entries — when the
// first attempt is denied. A non-nil return means the bytes are simply not
// available; callers either skip caching or propagate.
func (cg *cacheGov) charge(n int64) error {
	for {
		err := cg.acct.Grow(n)
		if err == nil {
			return nil
		}
		freed, rerr := cg.ev.reclaimSpace(nil)
		if rerr != nil {
			return rerr
		}
		if !freed {
			return err
		}
	}
}

// reclaimOne implements spillable: drop the largest droppable cached entry.
// Memo entries of boxes currently evaluating (inProgress) or mid-fixpoint
// (recActive) are pinned — the evaluation re-enters them.
func (cg *cacheGov) reclaimOne() (int64, error) {
	var best int64
	var drop func()
	for b, n := range cg.memo {
		if cg.ev.recActive[b] || cg.ev.inProgress[b] {
			continue
		}
		if n > best {
			b := b
			best, drop = n, func() { cg.ev.memoDelete(b) }
		}
	}
	for q, n := range cg.sub {
		if n > best {
			q := q
			best, drop = n, func() {
				delete(cg.ev.subCache, q)
				cg.acct.Shrink(n)
				delete(cg.sub, q)
			}
		}
	}
	for q, n := range cg.hash {
		if n > best {
			q := q
			best, drop = n, func() {
				delete(cg.ev.hashCache, q)
				cg.acct.Shrink(n)
				delete(cg.hash, q)
			}
		}
	}
	if drop == nil {
		return cg.acct.ReleaseIdle(), nil
	}
	drop()
	return best + cg.acct.ReleaseIdle(), nil
}

// rowsMemBytes approximates the resident footprint of a materialized row
// set: slice spine plus per-row datum payloads.
func rowsMemBytes(rows []datum.Row) int64 {
	n := int64(24 + 8*len(rows))
	for _, r := range rows {
		n += datum.RowMemBytes(r)
	}
	return n
}

// htMemBytes approximates a cached join hash table's footprint.
func htMemBytes(ht map[string][]datum.Row) int64 {
	n := int64(48)
	for k, rows := range ht {
		n += keyMemBytes(len(k)) + rowsMemBytes(rows)
	}
	return n
}

// memoInsert records a closed box's materialization, charging the rows to
// the budget when one is attached. A denied charge skips caching — the box
// recomputes on its next reference — and never fails the query.
func (ev *Evaluator) memoInsert(b *qgm.Box, rows []datum.Row) {
	cg := ev.cg()
	if cg == nil {
		ev.memo[b] = rows
		return
	}
	if old, ok := cg.memo[b]; ok {
		cg.acct.Shrink(old)
		delete(cg.memo, b)
		delete(ev.memo, b)
	}
	n := rowsMemBytes(rows)
	if cg.charge(n) != nil {
		return
	}
	ev.memo[b] = rows
	cg.memo[b] = n
}

// memoResident pins rows as b's memo entry, charging only the growth since
// the last round. Unlike memoInsert it cannot skip: recursive fixpoint sets
// are re-entered through the memo every round, so when even reclaim cannot
// make room the query surfaces resource.ErrMemoryExceeded.
func (ev *Evaluator) memoResident(b *qgm.Box, rows []datum.Row) error {
	cg := ev.cg()
	if cg == nil {
		ev.memo[b] = rows
		return nil
	}
	n := rowsMemBytes(rows)
	old := cg.memo[b]
	if n > old {
		if err := cg.charge(n - old); err != nil {
			return err
		}
	} else if old > n {
		cg.acct.Shrink(old - n)
	}
	cg.memo[b] = n
	ev.memo[b] = rows
	return nil
}

// memoDelete removes b's memo entry and uncharges it.
func (ev *Evaluator) memoDelete(b *qgm.Box) {
	delete(ev.memo, b)
	if cg := ev.cgov; cg != nil {
		if n, ok := cg.memo[b]; ok {
			cg.acct.Shrink(n)
			delete(cg.memo, b)
		}
	}
}

// subInsert records one correlation key's subquery result in q's cache,
// skipping on a denied charge.
func (ev *Evaluator) subInsert(q *qgm.Quantifier, cache map[string][]datum.Row, key string, rows []datum.Row) {
	cg := ev.cg()
	if cg != nil {
		n := keyMemBytes(len(key)) + rowsMemBytes(rows)
		if cg.charge(n) != nil {
			return
		}
		cg.sub[q] += n
	}
	cache[key] = rows
}

// hashInsert records a reusable join hash table for q under keySig,
// skipping on a denied charge.
func (ev *Evaluator) hashInsert(q *qgm.Quantifier, keySig string, ht map[string][]datum.Row) {
	cg := ev.cg()
	if cg != nil {
		n := keyMemBytes(len(keySig)) + htMemBytes(ht)
		if cg.charge(n) != nil {
			return
		}
		cg.hash[q] += n
	}
	byKey := ev.hashCache[q]
	if byKey == nil {
		byKey = map[string]map[string][]datum.Row{}
		ev.hashCache[q] = byKey
	}
	byKey[keySig] = ht
}

// cacheDeleteQuant drops q's subquery and hash-table caches and uncharges
// them (fixpoint SCC invalidation between rounds).
func (ev *Evaluator) cacheDeleteQuant(q *qgm.Quantifier) {
	delete(ev.hashCache, q)
	delete(ev.subCache, q)
	if cg := ev.cgov; cg != nil {
		if n := cg.sub[q]; n > 0 {
			cg.acct.Shrink(n)
		}
		delete(cg.sub, q)
		if n := cg.hash[q]; n > 0 {
			cg.acct.Shrink(n)
		}
		delete(cg.hash, q)
	}
}

// clearCacheCharges returns every cached-state reservation to the budget
// without touching the caches themselves. Used for prefetch workers whose
// memo entries the parent adopts (and re-charges) after the merge.
func (ev *Evaluator) clearCacheCharges() {
	if cg := ev.cgov; cg != nil {
		cg.acct.Clear()
		cg.memo = map[*qgm.Box]int64{}
		cg.sub = map[*qgm.Quantifier]int64{}
		cg.hash = map[*qgm.Quantifier]int64{}
	}
}
