// Partition-wise grace-hash probing. When a hash stage's build side spills
// (spillJoin pages partitions to disk during the build), per-probe lookups
// thrash: each outer row may fault a different 1/64th partition back in,
// evicting the one the previous row just loaded — O(probe rows) partition
// reloads in the worst case. The grace probe instead mirrors the build's
// partitioning on the probe side: the outer rows are drained once into
// sequence-tagged partition files (same FNV hash over the same AppendKey
// encoding), then each (probe partition, build partition) pair is joined
// with the build partition paged in exactly once, and the per-partition
// output runs are merged back by sequence number. Every build partition is
// read from disk at most once, and the merge reproduces the exact output
// row order of per-probe lookups: sequence numbers are assigned in probe
// order, all outputs of one probe row land consecutively in a single run
// (one key → one partition), and runs never share a sequence number.
//
// The mode engages only for the shape that dominates spilled joins — a
// two-stage pipeline with a streamed driving stage and one hash stage, no
// scalar subqueries, semi/anti-join checks, or post-predicates — and only
// when the build actually spilled; in-memory builds keep the direct probe.
package exec

import (
	"encoding/binary"
	"fmt"
	"io"

	"starmagic/internal/datum"
	"starmagic/internal/plan"
	"starmagic/internal/resource"
)

// graceShape reports whether stage i is eligible for a partition-wise grace
// probe: the hash stage is the inner of a two-stage pipeline driven by a
// stream, and completing a binding needs nothing beyond the stage residual
// filters and projection (those re-evaluate cleanly from a decoded probe
// row; scalar subqueries and semi/anti checks would not).
func (p *selectPipeOp) graceShape(i int) bool {
	return i == 1 && len(p.stages) == 2 &&
		p.stages[0].access == plan.AccessStream &&
		len(p.n.Scalars) == 0 && len(p.n.Subqs) == 0 && len(p.n.PostPreds) == 0
}

// graceHead is one merge input: the next (sequence, row) of a run.
type graceHead struct {
	seq uint64
	row datum.Row
	ok  bool
}

// graceJoin is the merge-emission state left after the partition pairs have
// been joined: one reader per non-empty output run, merged by sequence.
type graceJoin struct {
	files   []*resource.SpillFile
	readers []*recordReader
	heads   []graceHead
}

func (g *graceJoin) advance(i int) error {
	rec, err := g.readers[i].next()
	if err == io.EOF {
		g.heads[i].ok = false
		return nil
	}
	if err != nil {
		return err
	}
	seq, m := binary.Uvarint(rec)
	if m <= 0 {
		return fmt.Errorf("exec: corrupt grace run record")
	}
	row, _, err := datum.DecodeRow(rec[m:])
	if err != nil {
		return err
	}
	g.heads[i] = graceHead{seq: seq, row: row, ok: true}
	return nil
}

func (g *graceJoin) close() {
	for _, sf := range g.files {
		sf.Close()
	}
	g.files, g.readers, g.heads = nil, nil, nil
}

// graceRun executes the partition-wise join for stage ss (the hash stage of
// a graceShape pipeline) whose build just spilled. On entry the driving
// stage's current row is bound in p.env; graceRun consumes it and the rest
// of the driving stage, joins partition pairs, and installs p.grace for
// next() to emit from. Counter accounting matches the per-probe path: one
// HashProbes per non-NULL-key outer row, ticks per candidate build row.
func (p *selectPipeOp) graceRun(ss *stageState) error {
	ev := p.r.ev
	ev.Counters.GraceJoins++
	note := p.r.spillNote(p.n)
	q0 := p.stages[0].st.Quant
	q1 := ss.st.Quant

	var parts [spillParts]*recordWriter
	var runs []*recordWriter
	done := false
	defer func() {
		if done {
			return
		}
		for _, rw := range parts {
			if rw != nil {
				rw.sf.Close()
			}
		}
		for _, rw := range runs {
			rw.sf.Close()
		}
	}()

	// Phase 1: drain the probe side into sequence-tagged partition files,
	// starting with the binding already live in p.env.
	var seq uint64
	var rec []byte
	writeProbe := func() error {
		ev.keyBuf = ev.keyBuf[:0]
		for _, e := range ss.st.KeyOther {
			v, err := EvalExpr(e, p.env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // equality never matches NULL: no probe
			}
			ev.keyBuf = v.AppendKey(ev.keyBuf)
		}
		ev.Counters.HashProbes++
		pi := partOf(ev.keyBuf)
		rw := parts[pi]
		if rw == nil {
			var err error
			rw, err = newRecordWriter(ev.Mem, "grace-probe")
			if err != nil {
				return err
			}
			parts[pi] = rw
		}
		rec = binary.AppendUvarint(rec[:0], seq)
		seq++
		rec = binary.AppendUvarint(rec, uint64(len(ev.keyBuf)))
		rec = append(rec, ev.keyBuf...)
		rec = datum.AppendEncodedRow(rec, p.env[q0])
		return rw.write(rec)
	}
	if err := writeProbe(); err != nil {
		return err
	}
	for {
		ok, err := p.advanceStage(0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := writeProbe(); err != nil {
			return err
		}
	}

	// Phase 2: join each probe partition against its build partition, paged
	// in once. Matches stream to per-partition output runs; nothing from the
	// join accumulates in memory, so the resident build partition is never
	// evicted mid-pair.
	for pi := 0; pi < spillParts; pi++ {
		rw := parts[pi]
		if rw == nil {
			continue
		}
		if err := rw.flush(); err != nil {
			return err
		}
		ev.Mem.NoteSpill(rw.bytes)
		note(rw.bytes)
		bmap, err := ss.sht.partition(pi)
		if err != nil {
			return err
		}
		rr, err := newRecordReader(rw.sf)
		if err != nil {
			return err
		}
		var out *recordWriter
		for {
			prec, err := rr.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			s, m := binary.Uvarint(prec)
			if m <= 0 {
				return fmt.Errorf("exec: corrupt grace probe record")
			}
			prec = prec[m:]
			klen, m := binary.Uvarint(prec)
			if m <= 0 || uint64(len(prec)-m) < klen {
				return fmt.Errorf("exec: corrupt grace probe record")
			}
			key := prec[m : m+int(klen)]
			bucket := bmap[string(key)]
			if bucket == nil {
				continue
			}
			row, _, err := datum.DecodeRow(prec[m+int(klen):])
			if err != nil {
				return err
			}
			p.env[q0] = row
			for _, brow := range bucket.rows {
				if err := ev.tick(); err != nil {
					return err
				}
				p.env[q1] = brow
				pass := true
				for _, pred := range ss.filters {
					tv, err := EvalPred(pred, p.env)
					if err != nil {
						return err
					}
					if tv != datum.True {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				outRow, err := ev.projectRow(p.n.Box, p.env)
				if err != nil {
					return err
				}
				if out == nil {
					out, err = newRecordWriter(ev.Mem, "grace-out")
					if err != nil {
						return err
					}
				}
				rec = binary.AppendUvarint(rec[:0], s)
				rec = datum.AppendEncodedRow(rec, outRow)
				if err := out.write(rec); err != nil {
					return err
				}
			}
		}
		rw.sf.Close()
		parts[pi] = nil
		if out != nil {
			if err := out.flush(); err != nil {
				return err
			}
			ev.Mem.NoteSpill(out.bytes)
			note(out.bytes)
			runs = append(runs, out)
		}
	}
	delete(p.env, q0)
	delete(p.env, q1)
	// The build table is fully consumed: release its partitions (and their
	// reservation) before emission hands rows to parent operators.
	ss.sht.close()
	ss.sht = nil

	// Phase 3: prime the sequence merge.
	g := &graceJoin{}
	for _, rw := range runs {
		rr, err := newRecordReader(rw.sf)
		if err != nil {
			return err
		}
		g.files = append(g.files, rw.sf)
		g.readers = append(g.readers, rr)
		g.heads = append(g.heads, graceHead{})
	}
	for i := range g.readers {
		if err := g.advance(i); err != nil {
			return err
		}
	}
	done = true
	p.grace = g
	return nil
}

// graceNext emits the next batch of merged output rows in probe order. Runs
// never share a sequence number (one key hashes to one partition), so the
// minimum-sequence head is unique and the merge is a stable reconstruction
// of the per-probe output order.
func (p *selectPipeOp) graceNext() ([]datum.Row, error) {
	if p.done {
		return nil, nil
	}
	g := p.grace
	var out []datum.Row
	for len(out) < streamBatch {
		best := -1
		for i := range g.heads {
			if !g.heads[i].ok {
				continue
			}
			if best < 0 || g.heads[i].seq < g.heads[best].seq {
				best = i
			}
		}
		if best < 0 {
			p.done = true
			break
		}
		out = append(out, g.heads[best].row)
		if err := g.advance(best); err != nil {
			return nil, err
		}
	}
	if p.n.BoxRoot && len(out) > 0 {
		if err := p.r.ev.addOutput(len(out)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
