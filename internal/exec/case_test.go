package exec

import "testing"

func TestSearchedCase(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, `SELECT empname,
		CASE WHEN salary >= 800 THEN 'high' WHEN salary >= 500 THEN 'mid' ELSE 'low' END
		FROM employee`)
	expect(t, got, []string{
		"alice|high", "bob|mid", "carol|high", "dan|mid", "eve|mid", "frank|low", "grace|low",
	})
}

func TestSimpleCase(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, `SELECT empname,
		CASE workdept WHEN 1 THEN 'plan' WHEN 2 THEN 'dev' END
		FROM employee WHERE workdept IS NOT NULL AND workdept < 3`)
	expect(t, got, []string{
		"alice|plan", "bob|plan", "carol|dev", "dan|dev", "eve|dev",
	})
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT CASE WHEN salary > 900 THEN 'top' END FROM employee WHERE empno = 102")
	expect(t, got, []string{"NULL"})
}

func TestCaseInPredicate(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, `SELECT empname FROM employee
		WHERE CASE WHEN workdept IS NULL THEN 0 ELSE workdept END = 0`)
	expect(t, got, []string{"grace"})
}

func TestCaseInGroupedSelect(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, `SELECT
		CASE WHEN workdept IS NULL THEN -1 ELSE workdept END, COUNT(*)
		FROM employee GROUP BY workdept`)
	expect(t, got, []string{"-1|1", "1|2", "2|3", "3|1"})
}

func TestScalarFunctions(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT UPPER(empname), LOWER('ABC'), LENGTH(empname), ABS(0 - salary) FROM employee WHERE empno = 101")
	expect(t, got, []string{"ALICE|abc|5|1000"})
}

func TestCoalesceAndNullif(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname, COALESCE(workdept, -1) FROM employee WHERE workdept IS NULL")
	expect(t, got, []string{"grace|-1"})
	got = runQuery(t, cat, store,
		"SELECT NULLIF(workdept, 1), COALESCE(NULLIF(workdept, 1), 99) FROM employee WHERE empno = 101")
	expect(t, got, []string{"NULL|99"})
}

func TestFunctionsInWhere(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE LENGTH(empname) = 3")
	expect(t, got, []string{"bob", "dan", "eve"})
	got = runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE UPPER(empname) = 'ALICE'")
	expect(t, got, []string{"alice"})
}

func TestFunctionNullPropagation(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT ABS(workdept), UPPER(NULL || 'x') FROM employee WHERE empno = 302")
	expect(t, got, []string{"NULL|NULL"})
}

func TestCaseFirstMatchWins(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT CASE WHEN 1 = 1 THEN 'a' WHEN 1 = 1 THEN 'b' END")
	expect(t, got, []string{"a"})
}

func TestAggregateOverCase(t *testing.T) {
	cat, store := testDB(t)
	// Pivot-style conditional aggregation: SUM(CASE ...).
	got := runQuery(t, cat, store, `SELECT
		SUM(CASE WHEN workdept = 1 THEN salary ELSE 0 END),
		SUM(CASE WHEN workdept = 2 THEN salary ELSE 0 END)
		FROM employee`)
	expect(t, got, []string{"1500|2100"})
}
