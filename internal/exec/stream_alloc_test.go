package exec

import (
	"testing"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/storage"
)

// TestHashProbeAllocs pins the transient hash-join probe to zero
// allocations per probe: the key is encoded into the evaluator's reused
// buffer and the bucket is read with the map-index string(buf) pattern,
// which Go compiles without materializing a string.
func TestHashProbeAllocs(t *testing.T) {
	ev := New(storage.NewStore())
	inner := &qgm.Quantifier{Name: "i"}
	outer := &qgm.Quantifier{Name: "o"}
	rows := make([]datum.Row, 256)
	for i := range rows {
		rows[i] = datum.Row{datum.Int(int64(i % 32)), datum.Int(int64(i))}
	}
	ht, err := ev.buildHashTable(inner, []qgm.Expr{&qgm.ColRef{Q: inner, Ord: 0}}, rows, Env{})
	if err != nil {
		t.Fatal(err)
	}
	probeKey := []qgm.Expr{&qgm.ColRef{Q: outer, Ord: 0}}
	env := Env{outer: datum.Row{datum.Int(7), datum.Int(0)}}

	var matched int
	if avg := testing.AllocsPerRun(500, func() {
		ev.keyBuf = ev.keyBuf[:0]
		for _, e := range probeKey {
			v, err := EvalExpr(e, env)
			if err != nil {
				t.Fatal(err)
			}
			ev.keyBuf = v.AppendKey(ev.keyBuf)
		}
		matched = len(ht[string(ev.keyBuf)])
	}); avg > 0 {
		t.Errorf("hash probe allocates %.1f times per run, want 0", avg)
	}
	if matched != 8 {
		t.Fatalf("probe matched %d rows, want 8", matched)
	}
}
