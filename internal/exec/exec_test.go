package exec

import (
	"sort"
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

// testDB wires up the paper's schema with small deterministic data:
//
//	department(deptno, deptname, mgrno): 3 departments; Planning=1 (mgr 101),
//	  Dev=2 (mgr 201), Sales=3 (mgr NULL)
//	employee(empno, empname, workdept, salary)
func testDB(t *testing.T) (*catalog.Catalog, *storage.Store) {
	t.Helper()
	cat := catalog.New()
	dept := &catalog.Table{
		Name: "department",
		Columns: []catalog.Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}},
	}
	emp := &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "empname", Type: datum.TString},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {2}},
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "mgrSal",
		Columns: []string{"empno", "empname", "workdept", "salary"},
		SQL: "SELECT e.empno, e.empname, e.workdept, e.salary " +
			"FROM employee e, department d WHERE e.empno = d.mgrno",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddView(&catalog.View{
		Name:    "avgMgrSal",
		Columns: []string{"workdept", "avgsalary"},
		SQL:     "SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept",
	}); err != nil {
		t.Fatal(err)
	}

	store := storage.NewStore()
	dr := store.Create(dept)
	for _, row := range []datum.Row{
		{datum.Int(1), datum.String("Planning"), datum.Int(101)},
		{datum.Int(2), datum.String("Dev"), datum.Int(201)},
		{datum.Int(3), datum.String("Sales"), datum.Null()},
	} {
		if err := dr.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	er := store.Create(emp)
	for _, row := range []datum.Row{
		{datum.Int(101), datum.String("alice"), datum.Int(1), datum.Float(1000)},
		{datum.Int(102), datum.String("bob"), datum.Int(1), datum.Float(500)},
		{datum.Int(201), datum.String("carol"), datum.Int(2), datum.Float(800)},
		{datum.Int(202), datum.String("dan"), datum.Int(2), datum.Float(600)},
		{datum.Int(203), datum.String("eve"), datum.Int(2), datum.Float(700)},
		{datum.Int(301), datum.String("frank"), datum.Int(3), datum.Float(400)},
		{datum.Int(302), datum.String("grace"), datum.Null(), datum.Float(300)},
	} {
		if err := er.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return cat, store
}

// runQuery builds and evaluates query, returning rows rendered as strings
// sorted for order-insensitive comparison.
func runQuery(t *testing.T, cat *catalog.Catalog, store *storage.Store, query string) []string {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build %q: %v", query, err)
	}
	ev := New(store)
	rows, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	return renderRows(rows)
}

func renderRows(rows []datum.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.Format()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// runOrdered is runQuery without sorting (for ORDER BY tests).
func runOrdered(t *testing.T, cat *catalog.Catalog, store *storage.Store, query string) []string {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rows, err := New(store).EvalGraph(g)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.Format()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expect(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v; want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q; want %q\nall: %v", i, got[i], want[i], got)
		}
	}
}

func TestScanAndFilter(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT deptname FROM department WHERE deptno > 1")
	expect(t, got, []string{"Dev", "Sales"})
}

func TestJoin(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT e.empname, d.deptname FROM employee e, department d WHERE e.workdept = d.deptno AND d.deptname = 'Dev'")
	expect(t, got, []string{"carol|Dev", "dan|Dev", "eve|Dev"})
}

func TestJoinNullNeverMatches(t *testing.T) {
	cat, store := testDB(t)
	// grace has NULL workdept; Sales has NULL mgrno — NULLs must not join.
	got := runQuery(t, cat, store,
		"SELECT e.empname FROM employee e, department d WHERE e.workdept = d.deptno")
	expect(t, got, []string{"alice", "bob", "carol", "dan", "eve", "frank"})
}

func TestThreeWayJoinOrderIndependence(t *testing.T) {
	cat, store := testDB(t)
	q1 := runQuery(t, cat, store,
		"SELECT e.empname FROM employee e, department d, employee m WHERE e.workdept = d.deptno AND d.mgrno = m.empno")
	q2 := runQuery(t, cat, store,
		"SELECT e.empname FROM department d, employee m, employee e WHERE e.workdept = d.deptno AND d.mgrno = m.empno")
	expect(t, q1, q2)
	expect(t, q1, []string{"alice", "bob", "carol", "dan", "eve"})
}

func TestProjectionArithmetic(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname, salary * 2 FROM employee WHERE empno = 101")
	expect(t, got, []string{"alice|2000"})
}

func TestDistinct(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT DISTINCT workdept FROM employee")
	expect(t, got, []string{"1", "2", "3", "NULL"})
}

func TestGroupByAggregates(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT workdept, COUNT(*), AVG(salary), MIN(salary), MAX(salary) FROM employee GROUP BY workdept")
	expect(t, got, []string{
		"1|2|750|500|1000",
		"2|3|700|600|800",
		"3|1|400|400|400",
		"NULL|1|300|300|300",
	})
}

func TestGroupByHaving(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT workdept FROM employee GROUP BY workdept HAVING COUNT(*) > 1")
	expect(t, got, []string{"1", "2"})
}

func TestScalarAggregateOverEmpty(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT COUNT(*), SUM(salary) FROM employee WHERE empno = 99999")
	expect(t, got, []string{"0|NULL"})
}

func TestCountDistinct(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT COUNT(DISTINCT workdept), COUNT(workdept), COUNT(*) FROM employee")
	expect(t, got, []string{"3|6|7"})
}

func TestViewEvaluation(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT empname, salary FROM mgrSal")
	expect(t, got, []string{"alice|1000", "carol|800"})
}

func TestPaperQueryD(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`)
	expect(t, got, []string{"Planning|1|1000"})
}

func TestExists(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT deptname FROM department d WHERE EXISTS (SELECT 1 FROM employee e WHERE e.workdept = d.deptno AND e.salary > 700)")
	expect(t, got, []string{"Dev", "Planning"})
}

func TestNotExists(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT deptname FROM department d WHERE NOT EXISTS (SELECT 1 FROM employee e WHERE e.workdept = d.deptno AND e.salary > 700)")
	expect(t, got, []string{"Sales"})
}

func TestInSubquery(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE workdept IN (SELECT deptno FROM department WHERE deptname = 'Dev')")
	expect(t, got, []string{"carol", "dan", "eve"})
}

func TestNotInWithNulls(t *testing.T) {
	cat, store := testDB(t)
	// Subquery has no NULLs here: mgrno NULL excluded by IS NOT NULL.
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE empno NOT IN (SELECT mgrno FROM department WHERE mgrno IS NOT NULL)")
	expect(t, got, []string{"bob", "dan", "eve", "frank", "grace"})
	// With NULL in the subquery, NOT IN yields UNKNOWN for every row: empty.
	got = runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE empno NOT IN (SELECT mgrno FROM department)")
	expect(t, got, []string{})
	// x IN S where x matches is still TRUE despite NULLs in S.
	got = runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE empno IN (SELECT mgrno FROM department)")
	expect(t, got, []string{"alice", "carol"})
}

func TestNullLhsNotIn(t *testing.T) {
	cat, store := testDB(t)
	// grace has NULL workdept: NULL NOT IN (non-empty set) is UNKNOWN.
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE workdept NOT IN (SELECT deptno FROM department WHERE deptno = 1)")
	expect(t, got, []string{"carol", "dan", "eve", "frank"})
}

func TestAllQuantifier(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE salary > ALL (SELECT salary FROM employee WHERE workdept = 2)")
	expect(t, got, []string{"alice"})
	// ALL over empty set is vacuously true.
	got = runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE salary > ALL (SELECT salary FROM employee WHERE workdept = 99)")
	if len(got) != 7 {
		t.Errorf("ALL over empty set: got %d rows; want 7", len(got))
	}
}

func TestAnyQuantifier(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE salary < ANY (SELECT salary FROM employee WHERE workdept = 3)")
	expect(t, got, []string{"grace"})
}

func TestScalarSubquery(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)")
	// AVG = (1000+500+800+600+700+400+300)/7 = 614.28...
	expect(t, got, []string{"alice", "carol", "eve"})
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		`SELECT e.empname FROM employee e WHERE e.salary >
		   (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)`)
	expect(t, got, []string{"alice", "carol"})
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT empname FROM employee WHERE salary > (SELECT salary FROM employee WHERE empno = 9999)")
	expect(t, got, []string{})
}

func TestScalarSubqueryMultiRowErrors(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT empname FROM employee WHERE salary > (SELECT salary FROM employee WHERE workdept = 2)")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(store).EvalGraph(g); err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Errorf("want scalar subquery error, got %v", err)
	}
}

func TestUnionAndSetOps(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT deptno FROM department UNION SELECT workdept FROM employee")
	expect(t, got, []string{"1", "2", "3", "NULL"})
	got = runQuery(t, cat, store,
		"SELECT workdept FROM employee WHERE workdept = 1 UNION ALL SELECT deptno FROM department WHERE deptno = 1")
	expect(t, got, []string{"1", "1", "1"})
	got = runQuery(t, cat, store,
		"SELECT deptno FROM department EXCEPT SELECT workdept FROM employee WHERE workdept IS NOT NULL")
	expect(t, got, []string{})
	got = runQuery(t, cat, store,
		"SELECT deptno FROM department WHERE deptno < 3 INTERSECT SELECT workdept FROM employee")
	expect(t, got, []string{"1", "2"})
}

func TestExceptAllMultiplicity(t *testing.T) {
	cat, store := testDB(t)
	// workdept=2 appears 3 times; EXCEPT ALL with one 2 removes one copy.
	got := runQuery(t, cat, store,
		"SELECT workdept FROM employee WHERE workdept = 2 EXCEPT ALL SELECT deptno FROM department WHERE deptno = 2")
	expect(t, got, []string{"2", "2"})
}

func TestIntersectAllMultiplicity(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT workdept FROM employee WHERE workdept = 2 INTERSECT ALL SELECT deptno FROM department WHERE deptno = 2")
	expect(t, got, []string{"2"})
}

func TestOrderByLimit(t *testing.T) {
	cat, store := testDB(t)
	got := runOrdered(t, cat, store,
		"SELECT empname, salary FROM employee ORDER BY salary DESC LIMIT 3")
	expect(t, got, []string{"alice|1000", "carol|800", "eve|700"})
	got = runOrdered(t, cat, store,
		"SELECT empname FROM employee WHERE workdept IS NULL OR workdept = 3 ORDER BY empname")
	expect(t, got, []string{"frank", "grace"})
}

func TestOrderByNullsFirst(t *testing.T) {
	cat, store := testDB(t)
	got := runOrdered(t, cat, store,
		"SELECT workdept FROM employee GROUP BY workdept ORDER BY workdept")
	expect(t, got, []string{"NULL", "1", "2", "3"})
}

func TestLikeAndBetween(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT empname FROM employee WHERE empname LIKE '%a%e'")
	expect(t, got, []string{"alice", "grace"})
	got = runQuery(t, cat, store, "SELECT empname FROM employee WHERE salary BETWEEN 500 AND 700")
	expect(t, got, []string{"bob", "dan", "eve"})
	got = runQuery(t, cat, store, "SELECT empname FROM employee WHERE salary NOT BETWEEN 400 AND 900")
	expect(t, got, []string{"alice", "grace"})
}

func TestInList(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT empname FROM employee WHERE workdept IN (1, 3)")
	expect(t, got, []string{"alice", "bob", "frank"})
	got = runQuery(t, cat, store, "SELECT empname FROM employee WHERE workdept NOT IN (1, 3)")
	expect(t, got, []string{"carol", "dan", "eve"})
}

func TestIsNull(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT empname FROM employee WHERE workdept IS NULL")
	expect(t, got, []string{"grace"})
	got = runQuery(t, cat, store, "SELECT deptname FROM department WHERE mgrno IS NOT NULL")
	expect(t, got, []string{"Dev", "Planning"})
}

func TestDerivedTable(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT x.workdept, x.c FROM (SELECT workdept, COUNT(*) AS c FROM employee GROUP BY workdept) AS x WHERE x.c > 1")
	expect(t, got, []string{"1|2", "2|3"})
}

func TestSelectWithoutFrom(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store, "SELECT 1 + 2, 'x' || 'y'")
	expect(t, got, []string{"3|xy"})
}

func TestDivisionByZeroErrors(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT 1 / 0")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(store).EvalGraph(g); err == nil {
		t.Error("division by zero should error at runtime")
	}
}

func TestSharedViewMaterializedOnce(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT a.workdept FROM avgMgrSal a, avgMgrSal b WHERE a.workdept = b.workdept")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(store)
	if _, err := ev.EvalGraph(g); err != nil {
		t.Fatal(err)
	}
	// employee is scanned exactly once: the shared view blob is memoized.
	if ev.Counters.BaseRows > 7+3 {
		t.Errorf("BaseRows = %d; shared view must be materialized once", ev.Counters.BaseRows)
	}
}

func TestNoSubqueryCacheReevaluates(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery(
		"SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(e2.salary) FROM employee e2 WHERE e2.workdept = e.workdept)")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cached := New(store)
	if _, err := cached.EvalGraph(g); err != nil {
		t.Fatal(err)
	}
	uncached := New(store)
	uncached.NoSubqueryCache = true
	if _, err := uncached.EvalGraph(g); err != nil {
		t.Fatal(err)
	}
	// 7 employees, 4 distinct workdept values (incl NULL): cached mode runs
	// the subquery once per distinct binding, uncached once per row.
	if uncached.Counters.SubqueryEvals <= cached.Counters.SubqueryEvals {
		t.Errorf("uncached %d evals vs cached %d; want more when uncached",
			uncached.Counters.SubqueryEvals, cached.Counters.SubqueryEvals)
	}
	if cached.Counters.SubqueryEvals != 4 {
		t.Errorf("cached subquery evals = %d; want 4 (distinct bindings)", cached.Counters.SubqueryEvals)
	}
	if uncached.Counters.SubqueryEvals != 7 {
		t.Errorf("uncached subquery evals = %d; want 7 (per row)", uncached.Counters.SubqueryEvals)
	}
}

func TestIndexLookupUsed(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery(
		"SELECT e.empname FROM department d, employee e WHERE d.deptno = 2 AND e.workdept = d.deptno")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// Force join order department then employee so the index on workdept
	// is probeable.
	top := g.Top
	if top.Quantifiers[0].Name != "d" {
		t.Fatal("unexpected quantifier order")
	}
	ev := New(store)
	rows, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if ev.Counters.IndexLookups == 0 {
		t.Error("index lookup not used for equality join on indexed column")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "_b_", true},
		{"abc", "_b", false},
		{"abc", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "a_c", true},
		{"aXbc", "a%bc", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ppx", false},
		{"abc", "ABC", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v; want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMaxRowsBudget(t *testing.T) {
	cat, store := testDB(t)
	q, err := sql.ParseQuery("SELECT e1.empno FROM employee e1, employee e2, employee e3")
	if err != nil {
		t.Fatal(err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(store)
	ev.MaxRows = 10
	if _, err := ev.EvalGraph(g); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("want budget error, got %v", err)
	}
}

func TestGroupByExpression(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT workdept * 10, COUNT(*) FROM employee GROUP BY workdept * 10")
	expect(t, got, []string{"10|2", "20|3", "30|1", "NULL|1"})
}

func TestHavingOnAggregate(t *testing.T) {
	cat, store := testDB(t)
	got := runQuery(t, cat, store,
		"SELECT workdept, SUM(salary) FROM employee GROUP BY workdept HAVING SUM(salary) >= 1500")
	expect(t, got, []string{"1|1500", "2|2100"})
}
