// Package exec evaluates QGM graphs: a box-at-a-time interpreter with
// pipelined nested-loop/hash joins inside select boxes, memoized
// materialization of shared (common-subexpression) boxes, index lookups on
// base tables, and the E/A/S quantifier semantics of subqueries.
//
// The executor is deliberately strategy-agnostic: the three execution
// strategies compared in the paper's Table 1 (Original, Correlated, EMST)
// are different QGM graphs produced by the rewrite layers, evaluated by this
// same engine. The only strategy knob here is NoSubqueryCache, which models
// tuple-at-a-time correlated re-execution (the "Correlated" column).
package exec

import (
	"context"
	"fmt"
	"sort"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/resource"
	"starmagic/internal/storage"
	"starmagic/internal/vec"
)

// Counters records work done during evaluation; benchmarks and tests use
// them to validate cost shapes deterministically.
type Counters struct {
	BaseRows      int64 // rows read from base relations
	BoxEvals      int64 // box materializations (excluding memo hits)
	SubqueryEvals int64 // subquery evaluations for E/A/S quantifiers
	HashBuilds    int64 // transient join hash tables built
	HashProbes    int64 // probes into transient join hash tables
	IndexLookups  int64 // base-table index probes
	GraceJoins    int64 // hash stages that switched to partition-wise grace probing
	OutputRows    int64 // rows produced by box evaluations
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.BaseRows += other.BaseRows
	c.BoxEvals += other.BoxEvals
	c.SubqueryEvals += other.SubqueryEvals
	c.HashBuilds += other.HashBuilds
	c.HashProbes += other.HashProbes
	c.IndexLookups += other.IndexLookups
	c.GraceJoins += other.GraceJoins
	c.OutputRows += other.OutputRows
}

// Evaluator executes QGM graphs against a store.
type Evaluator struct {
	store *storage.Store
	// view is the snapshot the evaluation reads: every base-table access
	// (scan, columnar capture, index probe) resolves through it. New
	// installs a lazy ReadAll live view (every committed row); the engine
	// overrides it per execution with the query's or transaction's MVCC
	// snapshot via SetView.
	view *storage.View

	// NoSubqueryCache disables memoization of correlated evaluations,
	// modeling tuple-at-a-time correlated execution (Table 1's "Correlated"
	// strategy). Box-level materialization of closed boxes is also
	// disabled so every use re-evaluates.
	NoSubqueryCache bool

	// MaxRows aborts runaway evaluations (0 = unlimited).
	MaxRows int64

	// NoVec disables the vectorized select operator, forcing every plan
	// onto the row-at-a-time pipeline. The engine sets it from
	// Database.SetVectorized; the paired-benchmark harness and the
	// vectorized-vs-row oracle tests rely on it.
	NoVec bool

	// MaxRecursion bounds fixpoint iterations for recursive views
	// (0 = default 1000).
	MaxRecursion int

	// Parallelism bounds the worker pool for intra-query parallelism:
	// concurrent materialization of independent closed quantifier subtrees
	// and parallel hash-join build over row ranges. 0 or 1 runs serially;
	// negative values mean GOMAXPROCS. Workers evaluate with private caches
	// and Counters that are merged into this evaluator at join points, so
	// counter totals stay deterministic for a given Parallelism setting.
	Parallelism int

	// Params binds the query's positional `?` placeholders for this run,
	// slot i holding the value of parameter ordinal i. Bindings are constant
	// for the whole evaluation, so box memoization and subquery caches stay
	// valid; they enter expression evaluation through the paramsQ sentinel
	// binding every root environment carries (see rootEnv).
	Params datum.Row

	// Mem, when non-nil, is the query's memory budget. Pipeline-breaker
	// state — join hash tables, sort buffers, DISTINCT/GROUP-BY tables,
	// set-operation counts, fixpoint seen-sets, nested-loop inners — is
	// charged against it through per-operator accounts and spills to disk
	// when a reservation is denied (see spill.go). Budget mode also changes
	// how build sides are gathered: the streaming executor skips closed-
	// subtree prefetch and streams hash-build inputs instead of
	// materializing them, so peak memory stays bounded. Memoization caches
	// (box memo, subquery/hash caches, fixpoint sets) are governed too: see
	// cachegov.go — denied inserts skip caching and recompute, cached
	// entries are evicted under pressure, and only resident fixpoint sets
	// can fail the query. Final result rows remain exempt. Set by the
	// engine; nil means unbounded in-memory execution.
	Mem *resource.Budget

	// cgov charges memoization state to Mem; nil until the first governed
	// cache insert (see cg).
	cgov *cacheGov

	// spillables are the live paged containers of this evaluator, in
	// creation order. When one container's own evictions cannot satisfy a
	// reservation, Evaluator.reclaimSpace pages out resident state of the
	// others (e.g. a finished hash build yields to the operator currently
	// growing). Maintained by newPagedTable/pagedTable.close.
	spillables []spillable

	Counters Counters

	// ctx/ctxDone arm cooperative cancellation (see SetContext). ctxDone is
	// cached so the amortized poll sites pay one nil check when no
	// cancellable context is installed.
	ctx     context.Context
	ctxDone <-chan struct{}
	// ticks amortizes the cancellation poll: only every ctxPollInterval-th
	// per-row checkpoint actually reads the done channel, keeping the
	// scan/join hot loops within benchmark noise.
	ticks int

	memo       map[*qgm.Box][]datum.Row
	subCache   map[*qgm.Quantifier]map[string][]datum.Row
	free       map[*qgm.Box][]corrRef
	hashCache  map[*qgm.Quantifier]map[string]map[string][]datum.Row
	inProgress map[*qgm.Box]bool
	recActive  map[*qgm.Box]bool

	// keyBuf is the evaluator's reusable row-key buffer. Every hash-keyed
	// path (joins, grouping, dedupe, set ops, memo keys, recursion deltas)
	// encodes into it with datum.AppendKey and indexes maps with
	// string(keyBuf), which Go compiles to an allocation-free lookup; a key
	// string is materialized only when it must be stored.
	keyBuf []byte
}

// corrRef is a free (outer) column reference of a box subtree.
type corrRef struct {
	q   *qgm.Quantifier
	ord int
}

// New returns an evaluator over the store, reading every committed row
// (a lazy ReadAll view). The engine swaps in a snapshot view with SetView.
func New(store *storage.Store) *Evaluator {
	return &Evaluator{
		store:     store,
		view:      store.LiveView(),
		memo:      map[*qgm.Box][]datum.Row{},
		subCache:  map[*qgm.Quantifier]map[string][]datum.Row{},
		free:      map[*qgm.Box][]corrRef{},
		hashCache: map[*qgm.Quantifier]map[string]map[string][]datum.Row{},
	}
}

// SetView installs the storage view (MVCC snapshot) the evaluation reads.
func (ev *Evaluator) SetView(v *storage.View) { ev.view = v }

// ctxPollInterval is the amortization window for cancellation checks: one
// done-channel read per this many per-row checkpoints.
const ctxPollInterval = 1024

// SetContext arms cooperative cancellation: the evaluator polls ctx in its
// per-row hot loops (amortized, every ctxPollInterval rows) and once per
// recursive fixpoint round, so a cancelled or expired context aborts the
// evaluation promptly with ctx.Err(). Contexts that can never be cancelled
// (nil, context.Background()) disable polling entirely.
func (ev *Evaluator) SetContext(ctx context.Context) {
	if ctx == nil {
		ev.ctx, ev.ctxDone = nil, nil
		return
	}
	ev.ctx = ctx
	ev.ctxDone = ctx.Done()
}

// tick is the amortized per-row cancellation checkpoint.
func (ev *Evaluator) tick() error {
	if ev.ctxDone == nil {
		return nil
	}
	ev.ticks++
	if ev.ticks%ctxPollInterval != 0 {
		return nil
	}
	return ev.ctxErr()
}

// ctxErr is the unamortized cancellation check (stage boundaries, fixpoint
// rounds).
func (ev *Evaluator) ctxErr() error {
	if ev.ctxDone == nil {
		return nil
	}
	select {
	case <-ev.ctxDone:
		return ev.ctx.Err()
	default:
		return nil
	}
}

// KindHandler evaluates an extension box kind.
type KindHandler func(ev *Evaluator, b *qgm.Box, env Env) ([]datum.Row, error)

var kindHandlers = map[qgm.BoxKind]KindHandler{}

// RegisterKind installs an executor for an extension box kind. It mirrors
// the paper's extensibility story (§5): a database customizer adding a new
// operation supplies its evaluation alongside its AMQ/NMQ declaration.
func RegisterKind(k qgm.BoxKind, h KindHandler) { kindHandlers[k] = h }

// EvalGraph evaluates the whole query: the top box plus top-level ORDER BY
// and LIMIT.
func (ev *Evaluator) EvalGraph(g *qgm.Graph) ([]datum.Row, error) {
	if err := ev.ctxErr(); err != nil {
		return nil, err
	}
	rows, err := ev.EvalBox(g.Top, ev.rootEnv())
	if err != nil {
		return nil, err
	}
	if len(g.OrderBy) > 0 {
		sorted := make([]datum.Row, len(rows))
		copy(sorted, rows)
		sort.SliceStable(sorted, func(i, j int) bool {
			for _, spec := range g.OrderBy {
				c := datum.SortCompare(sorted[i][spec.Ord], sorted[j][spec.Ord])
				if spec.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		rows = sorted
	}
	if g.Limit >= 0 && int64(len(rows)) > g.Limit {
		rows = rows[:g.Limit]
	}
	if g.HiddenCols > 0 {
		trimmed := make([]datum.Row, len(rows))
		for i, r := range rows {
			trimmed[i] = r[:len(r)-g.HiddenCols]
		}
		rows = trimmed
	}
	return rows, nil
}

// EvalBox evaluates one box under the environment. Closed boxes (no free
// references) are materialized once and memoized, implementing QGM common
// subexpressions; correlated boxes evaluate per call.
func (ev *Evaluator) EvalBox(b *qgm.Box, env Env) ([]datum.Row, error) {
	if b.Recursive {
		return ev.evalRecursive(b, env)
	}
	closed := len(ev.freeRefs(b)) == 0
	if closed && !ev.NoSubqueryCache {
		if rows, ok := ev.memo[b]; ok {
			return rows, nil
		}
	}
	// A closed box re-entered during its own evaluation means the graph is
	// cyclic (recursive); this engine evaluates only nonrecursive graphs.
	if closed {
		if ev.inProgress == nil {
			ev.inProgress = map[*qgm.Box]bool{}
		}
		if ev.inProgress[b] {
			return nil, fmt.Errorf("exec: cyclic (recursive) query graph at box %q", b.Name)
		}
		ev.inProgress[b] = true
		defer delete(ev.inProgress, b)
	}
	rows, err := ev.evalBoxNow(b, env)
	if err != nil {
		return nil, err
	}
	if closed && !ev.NoSubqueryCache {
		ev.memoInsert(b, rows)
	}
	return rows, nil
}

// evalRecursive iterates a recursive view's fixpoint root to a fixpoint:
// each round re-evaluates the body with the previous round's accumulated
// set visible through the root's memo entry, accumulating new rows under
// set semantics until no round adds one.
func (ev *Evaluator) evalRecursive(b *qgm.Box, env Env) ([]datum.Row, error) {
	if ev.recActive == nil {
		ev.recActive = map[*qgm.Box]bool{}
	}
	if ev.recActive[b] {
		// Re-entry from within the body: the previous round's set.
		return ev.memo[b], nil
	}
	if rows, ok := ev.memo[b]; ok {
		return rows, nil
	}
	ev.recActive[b] = true
	defer delete(ev.recActive, b)

	scc := ev.sccMembers(b)
	maxIter := ev.MaxRecursion
	if maxIter <= 0 {
		maxIter = 1000
	}
	var cur []datum.Row
	// The delta-membership keyset is spillable under a memory budget; the
	// accumulated set itself must stay resident because the body re-enters
	// it through the memo every round.
	seen := ev.newSeenSet("fixpoint", nil)
	defer seen.close()
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("exec: recursive view %q did not reach a fixpoint in %d iterations", b.Name, maxIter)
		}
		// A cancelled query must not keep iterating toward a distant (or
		// unreachable) fixpoint; check every round, unamortized.
		if err := ev.ctxErr(); err != nil {
			return nil, err
		}
		if err := ev.memoResident(b, cur); err != nil {
			return nil, err
		}
		ev.invalidateSCC(b, scc)
		rows, err := ev.evalBoxNow(b, env)
		if err != nil {
			return nil, err
		}
		// Semi-naive delta: only rows not yet in the accumulated set extend
		// the next round. The delta membership test is allocation-free; a
		// key string materializes only for genuinely new rows.
		grew := false
		for _, r := range rows {
			ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], r)
			dup, serr := seen.checkAndAdd(ev.keyBuf)
			if serr != nil {
				return nil, serr
			}
			if !dup {
				cur = append(cur, r)
				grew = true
			}
		}
		if !grew {
			break
		}
		// The row budget bounds the accumulated fixpoint itself, aborting
		// between rounds — a runaway recursion must not iterate on just
		// because each individual round stayed under budget.
		if ev.MaxRows > 0 && int64(len(cur)) > ev.MaxRows {
			return nil, errRowBudget(int64(len(cur)))
		}
	}
	if err := ev.memoResident(b, cur); err != nil {
		return nil, err
	}
	return cur, nil
}

// sccMembers returns the boxes of b's recursive component: reachable from b
// and able to reach b.
func (ev *Evaluator) sccMembers(b *qgm.Box) []*qgm.Box {
	var reach func(from, to *qgm.Box, seen map[*qgm.Box]bool) bool
	reach = func(from, to *qgm.Box, seen map[*qgm.Box]bool) bool {
		if from == to {
			return true
		}
		if from == nil || seen[from] {
			return false
		}
		seen[from] = true
		for _, q := range from.Quantifiers {
			if reach(q.Ranges, to, seen) {
				return true
			}
		}
		return reach(from.MagicBox, to, seen)
	}
	var members []*qgm.Box
	visited := map[*qgm.Box]bool{}
	var collect func(x *qgm.Box)
	collect = func(x *qgm.Box) {
		if x == nil || visited[x] {
			return
		}
		visited[x] = true
		if x != b {
			back := false
			for _, q := range x.Quantifiers {
				if q.Ranges == b || reach(q.Ranges, b, map[*qgm.Box]bool{}) {
					back = true
					break
				}
			}
			if back {
				members = append(members, x)
			}
		}
		for _, q := range x.Quantifiers {
			collect(q.Ranges)
		}
		collect(x.MagicBox)
	}
	collect(b)
	return members
}

// invalidateSCC clears per-round caches of the recursive component so each
// fixpoint round re-evaluates against the updated set.
func (ev *Evaluator) invalidateSCC(b *qgm.Box, scc []*qgm.Box) {
	inSCC := map[*qgm.Box]bool{b: true}
	for _, x := range scc {
		inSCC[x] = true
	}
	for _, x := range scc {
		ev.memoDelete(x)
	}
	clearQuants := func(box *qgm.Box) {
		for _, q := range box.Quantifiers {
			if inSCC[q.Ranges] {
				ev.cacheDeleteQuant(q)
			}
		}
	}
	clearQuants(b)
	for _, x := range scc {
		clearQuants(x)
	}
}

func (ev *Evaluator) evalBoxNow(b *qgm.Box, env Env) ([]datum.Row, error) {
	// Correlated (tuple-at-a-time) plans re-enter here once per outer row,
	// so this checkpoint also bounds cancellation latency for plans whose
	// inner loops are many small box evaluations.
	if err := ev.tick(); err != nil {
		return nil, err
	}
	ev.Counters.BoxEvals++
	var rows []datum.Row
	var err error
	switch b.Kind {
	case qgm.KindBaseTable:
		rows, err = ev.evalBase(b)
	case qgm.KindSelect:
		rows, err = ev.evalSelect(b, env)
	case qgm.KindGroupBy:
		rows, err = ev.evalGroupBy(b, env)
	case qgm.KindUnion:
		rows, err = ev.evalUnion(b, env)
	case qgm.KindIntersect, qgm.KindExcept:
		rows, err = ev.evalIntersectExcept(b, env)
	default:
		h, ok := kindHandlers[b.Kind]
		if !ok {
			return nil, fmt.Errorf("exec: no handler for box kind %s", b.Kind)
		}
		rows, err = h(ev, b, env)
	}
	if err != nil {
		return nil, err
	}
	ev.Counters.OutputRows += int64(len(rows))
	if ev.MaxRows > 0 && ev.Counters.OutputRows > ev.MaxRows {
		return nil, errRowBudget(ev.Counters.OutputRows)
	}
	return rows, nil
}

func errRowBudget(n int64) error {
	return fmt.Errorf("exec: row budget exceeded (%d rows)", n)
}

func (ev *Evaluator) evalBase(b *qgm.Box) ([]datum.Row, error) {
	rel, ok := ev.view.Relation(b.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %q", b.Table.Name)
	}
	rows := rel.Rows()
	ev.Counters.BaseRows += int64(len(rows))
	return rows, nil
}

// selectPlan is the per-box execution plan computed once per evaluation:
// which predicates run at which join stage, and which subquery quantifiers
// are checked at the end.
type selectPlan struct {
	fQuants []*qgm.Quantifier
	sQuants []*qgm.Quantifier // Scalar
	qQuants []*qgm.Quantifier // Exists / ForAll
	// stagePreds[i] holds predicates evaluable once fQuants[:i] are bound.
	stagePreds [][]qgm.Expr
	// postPreds are evaluated after scalar quantifiers are bound.
	postPreds []qgm.Expr
	// matchPreds[q] are the match predicates of subquery quantifier q.
	matchPreds map[*qgm.Quantifier][]qgm.Expr
}

func buildSelectPlan(b *qgm.Box, outer Env) *selectPlan {
	p := &selectPlan{matchPreds: map[*qgm.Quantifier][]qgm.Expr{}}
	for _, q := range b.OrderedQuantifiers() {
		switch q.Type {
		case qgm.ForEach:
			p.fQuants = append(p.fQuants, q)
		case qgm.Scalar:
			p.sQuants = append(p.sQuants, q)
		default:
			p.qQuants = append(p.qQuants, q)
		}
	}
	p.stagePreds = make([][]qgm.Expr, len(p.fQuants)+1)

	local := map[*qgm.Quantifier]int{} // F quantifier -> position+1
	for i, q := range p.fQuants {
		local[q] = i + 1
	}
	subq := map[*qgm.Quantifier]bool{}
	for _, q := range p.sQuants {
		subq[q] = true
	}
	eaq := map[*qgm.Quantifier]bool{}
	for _, q := range p.qQuants {
		eaq[q] = true
	}

	for _, pred := range b.Preds {
		var ea *qgm.Quantifier
		stage := 0
		needsScalar := false
		unbound := false
		qgm.VisitRefs(pred, func(c *qgm.ColRef) {
			switch {
			case eaq[c.Q]:
				ea = c.Q
			case subq[c.Q]:
				needsScalar = true
			case local[c.Q] > 0:
				if local[c.Q] > stage {
					stage = local[c.Q]
				}
			default:
				if _, ok := outer[c.Q]; !ok {
					unbound = true
				}
			}
		})
		switch {
		case unbound:
			// Reference to an outer quantifier not bound in this call:
			// schedule last; evaluation will error with a clear message.
			p.postPreds = append(p.postPreds, pred)
		case ea != nil:
			p.matchPreds[ea] = append(p.matchPreds[ea], pred)
		case needsScalar:
			p.postPreds = append(p.postPreds, pred)
		default:
			p.stagePreds[stage] = append(p.stagePreds[stage], pred)
		}
	}
	return p
}

func (ev *Evaluator) evalSelect(b *qgm.Box, env Env) ([]datum.Row, error) {
	if err := ev.prefetchClosed(b); err != nil {
		return nil, err
	}
	plan := buildSelectPlan(b, env)
	var out []datum.Row

	// Stage-0 predicates (constants and outer-only): if any is not TRUE the
	// box is empty.
	for _, pred := range plan.stagePreds[0] {
		tv, err := EvalPred(pred, env)
		if err != nil {
			return nil, err
		}
		if tv != datum.True {
			return nil, nil
		}
	}

	cur := env.clone()
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(plan.fQuants) {
			ok, err := ev.finishRow(b, plan, cur)
			if err == nil && ok {
				// Scalar-quantifier bindings stay live for the projection.
				var row datum.Row
				row, err = ev.projectRow(b, cur)
				if err == nil {
					out = append(out, row)
				}
			}
			for _, sq := range plan.sQuants {
				delete(cur, sq)
			}
			return err
		}
		q := plan.fQuants[i]
		return ev.joinStage(b, plan, q, i, cur, func() error { return rec(i + 1) })
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	if b.Distinct != qgm.DistinctPreserve {
		var err error
		out, err = ev.dedupe(out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// joinStage binds quantifier q (stage i) to each qualifying row and calls
// next. It picks an access path: base-table index lookup, transient hash
// join, or nested-loop scan with filters.
func (ev *Evaluator) joinStage(b *qgm.Box, plan *selectPlan, q *qgm.Quantifier, i int, cur Env, next func() error) error {
	preds := plan.stagePreds[i+1]

	// Split stage predicates into equality keys usable for hashing/index
	// and residual filters.
	type eqKey struct {
		mine  qgm.Expr // references only q (+ outer constants)
		other qgm.Expr // references already-bound quantifiers
	}
	var keys []eqKey
	var residual []qgm.Expr
	isMine := func(e qgm.Expr) bool {
		found, onlyQ := false, true
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			if c.Q == q {
				found = true
			} else if _, bound := cur[c.Q]; !bound {
				onlyQ = false
			}
		})
		return found && onlyQ
	}
	isBound := func(e qgm.Expr) bool {
		ok := true
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			if c.Q == q {
				ok = false
			} else if _, bound := cur[c.Q]; !bound {
				ok = false
			}
		})
		return ok
	}
	for _, pred := range preds {
		if cmp, okc := pred.(*qgm.Cmp); okc && cmp.Op == datum.EQ {
			switch {
			case isMine(cmp.L) && isBound(cmp.R):
				keys = append(keys, eqKey{mine: cmp.L, other: cmp.R})
				continue
			case isMine(cmp.R) && isBound(cmp.L):
				keys = append(keys, eqKey{mine: cmp.R, other: cmp.L})
				continue
			}
		}
		residual = append(residual, pred)
	}

	emit := func(row datum.Row) (bool, error) {
		if err := ev.tick(); err != nil {
			return false, err
		}
		cur[q] = row
		for _, pred := range residual {
			tv, err := EvalPred(pred, cur)
			if err != nil {
				return false, err
			}
			if tv != datum.True {
				return false, nil
			}
		}
		return true, nil
	}

	// Access path 1: base-table index lookup when every key is a plain
	// column of an indexed column set.
	if q.Ranges.Kind == qgm.KindBaseTable && len(keys) > 0 {
		cols := make([]int, 0, len(keys))
		plain := true
		for _, k := range keys {
			cr, okc := k.mine.(*qgm.ColRef)
			if !okc || cr.Q != q {
				plain = false
				break
			}
			cols = append(cols, cr.Ord)
		}
		if plain {
			rel, okr := ev.view.Relation(q.Ranges.Table.Name)
			if okr {
				probe := make(datum.Row, len(keys))
				for j, k := range keys {
					v, err := EvalExpr(k.other, cur)
					if err != nil {
						return err
					}
					probe[j] = v
				}
				if rows, used := rel.Lookup(cols, probe); used {
					ev.Counters.IndexLookups++
					for _, row := range rows {
						ok, err := emit(row)
						if err != nil {
							return err
						}
						if ok {
							if err := next(); err != nil {
								return err
							}
						}
					}
					delete(cur, q)
					return nil
				}
			}
		}
	}

	// Materialize the child rows.
	rows, err := ev.EvalBox(q.Ranges, cur)
	if err != nil {
		return err
	}

	// Access path 2: transient hash join on the equality keys. When the
	// child is closed (materialized once) and the key expressions reference
	// only q, the hash table itself is reusable across outer bindings and
	// cached per (quantifier, key set).
	if len(keys) > 0 && len(rows) > 4 {
		cacheable := !ev.NoSubqueryCache && len(ev.freeRefs(q.Ranges)) == 0
		keySig := ""
		for _, k := range keys {
			strict := true
			qgm.VisitRefs(k.mine, func(c *qgm.ColRef) {
				if c.Q != q {
					strict = false
				}
			})
			if !strict {
				cacheable = false
			}
			keySig += k.mine.String() + "|"
		}
		var ht map[string][]datum.Row
		if cacheable {
			if byKey := ev.hashCache[q]; byKey != nil {
				ht = byKey[keySig]
			}
		}
		if ht == nil {
			ev.Counters.HashBuilds++
			mines := make([]qgm.Expr, len(keys))
			for j, k := range keys {
				mines[j] = k.mine
			}
			var err error
			ht, err = ev.buildHashTable(q, mines, rows, cur)
			if err != nil {
				return err
			}
			if cacheable {
				ev.hashInsert(q, keySig, ht)
			}
		}
		delete(cur, q)

		ev.keyBuf = ev.keyBuf[:0]
		for _, k := range keys {
			v, err := EvalExpr(k.other, cur)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // equality never matches NULL
			}
			ev.keyBuf = v.AppendKey(ev.keyBuf)
		}
		ev.Counters.HashProbes++
		for _, row := range ht[string(ev.keyBuf)] {
			ok, err := emit(row)
			if err != nil {
				return err
			}
			if ok {
				if err := next(); err != nil {
					return err
				}
			}
		}
		delete(cur, q)
		return nil
	}

	// Access path 3: nested-loop scan with all predicates as filters.
	for _, k := range keys {
		residual = append(residual, &qgm.Cmp{Op: datum.EQ, L: k.mine, R: k.other})
	}
	for _, row := range rows {
		ok, err := emit(row)
		if err != nil {
			return err
		}
		if ok {
			if err := next(); err != nil {
				return err
			}
		}
	}
	delete(cur, q)
	return nil
}

// finishRow binds scalar quantifiers, evaluates post-predicates, and checks
// E/A quantifiers. It reports whether the current binding qualifies.
func (ev *Evaluator) finishRow(b *qgm.Box, plan *selectPlan, cur Env) (bool, error) {
	for _, q := range plan.sQuants {
		rows, err := ev.evalSubquery(q, cur)
		if err != nil {
			return false, err
		}
		switch {
		case len(rows) == 0:
			null := make(datum.Row, len(q.Ranges.Output))
			for i := range null {
				null[i] = datum.NullOf(q.Ranges.Output[i].Type)
			}
			cur[q] = null
		case len(rows) == 1:
			cur[q] = rows[0]
		default:
			return false, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
		}
	}
	for _, pred := range plan.postPreds {
		tv, err := EvalPred(pred, cur)
		if err != nil {
			return false, err
		}
		if tv != datum.True {
			return false, nil
		}
	}

	for _, q := range plan.qQuants {
		rows, err := ev.evalSubquery(q, cur)
		if err != nil {
			return false, err
		}
		match := plan.matchPreds[q]
		pass, err := ev.checkQuantifier(q, match, rows, cur)
		if err != nil {
			return false, err
		}
		if !pass {
			return false, nil
		}
	}
	return true, nil
}

// checkQuantifier applies E/A semantics: Exists passes iff some subquery row
// satisfies every match predicate; ForAll passes iff every subquery row does
// (vacuously true on empty input). UNKNOWN does not satisfy.
func (ev *Evaluator) checkQuantifier(q *qgm.Quantifier, match []qgm.Expr, rows []datum.Row, cur Env) (bool, error) {
	rowOK := func(row datum.Row) (bool, error) {
		cur[q] = row
		defer delete(cur, q)
		for _, pred := range match {
			tv, err := EvalPred(pred, cur)
			if err != nil {
				return false, err
			}
			if tv != datum.True {
				return false, nil
			}
		}
		return true, nil
	}
	if q.Type == qgm.Exists {
		for _, row := range rows {
			ok, err := rowOK(row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	// ForAll.
	for _, row := range rows {
		ok, err := rowOK(row)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// evalSubquery evaluates the subquery of quantifier q under the current
// bindings, memoizing per distinct correlation values unless disabled.
func (ev *Evaluator) evalSubquery(q *qgm.Quantifier, cur Env) ([]datum.Row, error) {
	refs := ev.freeRefs(q.Ranges)
	if ev.NoSubqueryCache {
		ev.Counters.SubqueryEvals++
		return ev.EvalBox(q.Ranges, cur)
	}
	if len(refs) == 0 {
		return ev.EvalBox(q.Ranges, cur) // memoized at box level
	}
	if err := ev.corrKeyBuf(refs, cur); err != nil {
		return nil, err
	}
	cache := ev.subCache[q]
	if cache == nil {
		cache = map[string][]datum.Row{}
		ev.subCache[q] = cache
	}
	// Memo hit: string(keyBuf) indexes without allocating.
	if rows, ok := cache[string(ev.keyBuf)]; ok {
		return rows, nil
	}
	// Miss: materialize the key string before EvalBox, which reuses keyBuf.
	key := string(ev.keyBuf)
	ev.Counters.SubqueryEvals++
	rows, err := ev.EvalBox(q.Ranges, cur)
	if err != nil {
		return nil, err
	}
	ev.subInsert(q, cache, key, rows)
	return rows, nil
}

// corrKeyBuf encodes the correlation values of refs into ev.keyBuf.
func (ev *Evaluator) corrKeyBuf(refs []corrRef, env Env) error {
	ev.keyBuf = ev.keyBuf[:0]
	for _, r := range refs {
		row, ok := env[r.q]
		if !ok {
			return fmt.Errorf("exec: unbound correlation quantifier %q", r.q.Name)
		}
		ev.keyBuf = row[r.ord].AppendKey(ev.keyBuf)
	}
	return nil
}

func (ev *Evaluator) projectRow(b *qgm.Box, cur Env) (datum.Row, error) {
	row := make(datum.Row, len(b.Output))
	for i, oc := range b.Output {
		v, err := EvalExpr(oc.Expr, cur)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func (ev *Evaluator) evalGroupBy(b *qgm.Box, env Env) ([]datum.Row, error) {
	inQ := b.Quantifiers[0]
	rows, err := ev.EvalBox(inQ.Ranges, env)
	if err != nil {
		return nil, err
	}
	gt := ev.newGroupTable("group-by", nil)
	defer gt.close()

	cur := env.clone()
	var gkBuf []byte
	for _, row := range rows {
		if err := ev.tick(); err != nil {
			return nil, err
		}
		cur[inQ] = row
		gkBuf, err = ev.accumulateGroup(gt, b, cur, gkBuf)
		if err != nil {
			return nil, err
		}
	}
	delete(cur, inQ)
	return emitGroups(gt, b)
}

// accumulateGroup folds one input row (already bound in env) into gt: group
// key, entry lookup/insert, aggregate update, DISTINCT-argument filtering.
// Shared by both evaluators so grouped results agree exactly. gkBuf is a
// reusable scratch copy of the group key (ev.keyBuf gets reused for the
// distinct-argument keys); the returned slice is passed back in.
func (ev *Evaluator) accumulateGroup(gt *groupTable, b *qgm.Box, env Env, gkBuf []byte) ([]byte, error) {
	key := make(datum.Row, len(b.GroupBy))
	for i, ge := range b.GroupBy {
		v, err := EvalExpr(ge, env)
		if err != nil {
			return gkBuf, err
		}
		key[i] = v
	}
	return ev.accumulateGroupKeyed(gt, b, env, key, gkBuf)
}

// accumulateGroupKeyed is accumulateGroup after the group key row has been
// evaluated: byte-encode it, find or create the entry, update aggregates.
func (ev *Evaluator) accumulateGroupKeyed(gt *groupTable, b *qgm.Box, env Env, key datum.Row, gkBuf []byte) ([]byte, error) {
	ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], key)
	gkBuf = append(gkBuf[:0], ev.keyBuf...)
	grp, ok, err := gt.lookup(gkBuf)
	if err != nil {
		return gkBuf, err
	}
	if !ok {
		grp = newGroupEntry(key, b.Aggs)
		if err := gt.insert(gkBuf, grp); err != nil {
			return gkBuf, err
		}
	}
	return gkBuf, ev.updateGroup(gt, b, grp, gkBuf, env)
}

// accumulateGroupFast is accumulateGroup with a fixed-width key cache in
// front of the byte-keyed table: keyable group keys (at most vec.MaxKeyCols
// encodable columns) hit a map[vec.RowKey]*groupEntry and skip byte-key
// encoding after a group's first row. Only valid without a memory budget —
// it caches entry pointers, which stay stable only in the map-backed table.
// Non-keyable keys fall through to the byte path; equal keys always
// classify the same way, so the two maps never split a group.
func (ev *Evaluator) accumulateGroupFast(gt *groupTable, b *qgm.Box, env Env, keyer *vec.RowKeyer, fast map[vec.RowKey]*groupEntry, gkBuf []byte) ([]byte, error) {
	key := make(datum.Row, len(b.GroupBy))
	for i, ge := range b.GroupBy {
		v, err := EvalExpr(ge, env)
		if err != nil {
			return gkBuf, err
		}
		key[i] = v
	}
	rk, ok := keyer.Key(key)
	if !ok {
		return ev.accumulateGroupKeyed(gt, b, env, key, gkBuf)
	}
	grp := fast[rk]
	if grp == nil {
		ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], key)
		gkBuf = append(gkBuf[:0], ev.keyBuf...)
		var present bool
		var err error
		grp, present, err = gt.lookup(gkBuf)
		if err != nil {
			return gkBuf, err
		}
		if !present {
			grp = newGroupEntry(key, b.Aggs)
			if err := gt.insert(gkBuf, grp); err != nil {
				return gkBuf, err
			}
		}
		fast[rk] = grp
	}
	return gkBuf, ev.updateGroup(gt, b, grp, gkBuf, env)
}

// updateGroup folds the current row's aggregate arguments into grp:
// DISTINCT-argument filtering, state updates, and distinct-set growth
// accounting against the spill table (gkBuf is the entry's byte key for
// recharging; unused for in-memory tables).
func (ev *Evaluator) updateGroup(gt *groupTable, b *qgm.Box, grp *groupEntry, gkBuf []byte, env Env) error {
	var delta int64
	for i, a := range b.Aggs {
		var v datum.D
		if a.Arg != nil {
			var err error
			v, err = EvalExpr(a.Arg, env)
			if err != nil {
				return err
			}
		}
		if a.Distinct {
			if v.IsNull() {
				continue
			}
			ev.keyBuf = v.AppendKey(ev.keyBuf[:0])
			if grp.distinct[i][string(ev.keyBuf)] {
				continue
			}
			grp.distinct[i][string(ev.keyBuf)] = true
			delta += 24 + int64(len(ev.keyBuf))
		}
		if err := grp.states[i].Add(v); err != nil {
			return err
		}
	}
	if delta > 0 {
		grp.memSize += delta
		if err := gt.recharge(gkBuf, delta); err != nil {
			return err
		}
	}
	return nil
}

// emitGroups renders gt's groups in first-seen order (insertion sequence),
// matching the in-memory map+order emission even after partitions spilled
// and paged back in hash order.
func emitGroups(gt *groupTable, b *qgm.Box) ([]datum.Row, error) {
	// Scalar aggregation (no GROUP BY) over empty input yields one row.
	if gt.len() == 0 && len(b.GroupBy) == 0 {
		row := make(datum.Row, len(b.Output))
		for i, a := range b.Aggs {
			row[i] = datum.NewAggState(a.Kind).Result()
		}
		return []datum.Row{row}, nil
	}
	type seqRow struct {
		seq uint64
		row datum.Row
	}
	srows := make([]seqRow, 0, gt.len())
	err := gt.each(func(e *groupEntry) error {
		row := make(datum.Row, 0, len(b.Output))
		row = append(row, e.key...)
		for _, st := range e.states {
			row = append(row, st.Result())
		}
		srows = append(srows, seqRow{seq: e.seq, row: row})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(srows, func(i, j int) bool { return srows[i].seq < srows[j].seq })
	out := make([]datum.Row, len(srows))
	for i, sr := range srows {
		out[i] = sr.row
	}
	return out, nil
}

func (ev *Evaluator) evalUnion(b *qgm.Box, env Env) ([]datum.Row, error) {
	if err := ev.prefetchClosed(b); err != nil {
		return nil, err
	}
	var out []datum.Row
	for _, q := range b.Quantifiers {
		rows, err := ev.EvalBox(q.Ranges, env)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	if b.Distinct != qgm.DistinctPreserve {
		var err error
		out, err = ev.dedupe(out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ev *Evaluator) evalIntersectExcept(b *qgm.Box, env Env) ([]datum.Row, error) {
	if err := ev.prefetchClosed(b); err != nil {
		return nil, err
	}
	left, err := ev.EvalBox(b.Quantifiers[0].Ranges, env)
	if err != nil {
		return nil, err
	}
	right, err := ev.EvalBox(b.Quantifiers[1].Ranges, env)
	if err != nil {
		return nil, err
	}
	counts := ev.newCountTable("setop", nil)
	defer counts.close()
	for _, row := range right {
		ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
		if err := counts.inc(ev.keyBuf); err != nil {
			return nil, err
		}
	}
	distinct := b.Distinct != qgm.DistinctPreserve
	var out []datum.Row
	seen := ev.newSeenSet("setop-seen", nil)
	defer seen.close()
	for _, row := range left {
		ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
		c, err := counts.count(ev.keyBuf)
		if err != nil {
			return nil, err
		}
		inRight := c > 0
		switch b.Kind {
		case qgm.KindIntersect:
			if !inRight {
				continue
			}
			if distinct {
				dup, err := seen.checkAndAdd(ev.keyBuf)
				if err != nil {
					return nil, err
				}
				if dup {
					continue
				}
			} else {
				// INTERSECT ALL: min of multiplicities.
				if err := counts.dec(ev.keyBuf); err != nil {
					return nil, err
				}
			}
			out = append(out, row)
		case qgm.KindExcept:
			if distinct {
				if inRight {
					continue
				}
				dup, err := seen.checkAndAdd(ev.keyBuf)
				if err != nil {
					return nil, err
				}
				if dup {
					continue
				}
				out = append(out, row)
			} else {
				if inRight {
					// EXCEPT ALL: subtract multiplicities.
					if err := counts.dec(ev.keyBuf); err != nil {
						return nil, err
					}
					continue
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

func (ev *Evaluator) dedupe(rows []datum.Row) ([]datum.Row, error) {
	seen := ev.newSeenSet("dedupe", nil)
	defer seen.close()
	out := rows[:0:0]
	for _, row := range rows {
		ev.keyBuf = datum.AppendKey(ev.keyBuf[:0], row)
		dup, err := seen.checkAndAdd(ev.keyBuf)
		if err != nil {
			return nil, err
		}
		if dup {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

// freeRefs computes (and caches) the free column references of a box
// subtree: references to quantifiers declared outside it. A box with no
// free references is closed and can be materialized once.
func (ev *Evaluator) freeRefs(b *qgm.Box) []corrRef {
	if refs, ok := ev.free[b]; ok {
		return refs
	}
	owned := map[*qgm.Quantifier]bool{}
	var collect func(box *qgm.Box)
	seen := map[*qgm.Box]bool{}
	collect = func(box *qgm.Box) {
		if seen[box] {
			return
		}
		seen[box] = true
		for _, q := range box.Quantifiers {
			owned[q] = true
			collect(q.Ranges)
		}
		if box.MagicBox != nil {
			collect(box.MagicBox)
		}
	}
	collect(b)

	dedup := map[corrRef]bool{}
	var refs []corrRef
	addFrom := func(e qgm.Expr) {
		if e == nil {
			return
		}
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			if !owned[c.Q] {
				r := corrRef{q: c.Q, ord: c.Ord}
				if !dedup[r] {
					dedup[r] = true
					refs = append(refs, r)
				}
			}
		})
	}
	for box := range seen {
		for _, e := range box.Preds {
			addFrom(e)
		}
		for _, oc := range box.Output {
			addFrom(oc.Expr)
		}
		for _, e := range box.GroupBy {
			addFrom(e)
		}
		for _, a := range box.Aggs {
			addFrom(a.Arg)
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].q.ID != refs[j].q.ID {
			return refs[i].q.ID < refs[j].q.ID
		}
		return refs[i].ord < refs[j].ord
	})
	ev.free[b] = refs
	return refs
}

// ResetCaches clears memoized materializations and re-captures the snapshot
// view; callers re-executing after data changes must reset. For a live
// (ReadAll) view this picks up new rows; for a fixed snapshot it re-captures
// at the same timestamp, which yields identical visibility.
func (ev *Evaluator) ResetCaches() {
	ev.view.Refresh()
	ev.memo = map[*qgm.Box][]datum.Row{}
	ev.subCache = map[*qgm.Quantifier]map[string][]datum.Row{}
	ev.free = map[*qgm.Box][]corrRef{}
	ev.hashCache = map[*qgm.Quantifier]map[string]map[string][]datum.Row{}
	ev.clearCacheCharges()
}
