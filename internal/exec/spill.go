// Spill-to-disk state for budget-governed execution. When an Evaluator has a
// memory Budget (ev.Mem != nil), every pipeline-breaker structure — join hash
// tables, DISTINCT/GROUP-BY state, set-operation counts, sort buffers,
// fixpoint seen-sets, nested-loop inners — is backed by one of the containers
// here instead of a plain map or slice:
//
//	pagedTable  — a 64-way partitioned hash table. Inserts charge the
//	              operator's Account; when a charge is denied the largest
//	              resident partition is snapshotted to a spill file (grace-
//	              hash style) and its reservation released. Probing a paged-
//	              out partition pages it back in, evicting others as needed.
//	extSorter   — external merge sort: the input buffer is charged per row;
//	              on denial the buffer is stably sorted and written as a run,
//	              and finished runs are k-way merged with ties broken by run
//	              index, reproducing sort.SliceStable's order exactly.
//	rowBuffer   — an append-only replayable row list (nested-loop inners):
//	              on denial the resident rows are appended to a spill file,
//	              so iteration order is file prefix + resident suffix.
//
// Spill files hold rows in the lossless datum codec (AppendEncodedRow), not
// the lossy AppendKey form, so paged-in values round-trip exactly. All
// containers degrade to plain in-memory maps with zero extra allocation when
// the evaluator has no budget.
package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"starmagic/internal/datum"
	"starmagic/internal/qgm"
	"starmagic/internal/resource"
)

// spillParts is the partition fan-out of pagedTable. The irreducible
// resident working set of a paged operation is one partition, so a finer
// fan-out lets the table squeeze into smaller budgets (1/64th of the table
// per partition) while the per-partition header overhead stays negligible.
const spillParts = 64

// keyMemBytes estimates the resident cost of one interned map key.
func keyMemBytes(n int) int64 { return 16 + int64(n) }

// spillable is a container that can surrender resident state under another
// operator's memory pressure.
type spillable interface {
	// reclaimOne pages out the container's largest resident partition and
	// surrenders idle reservation, returning roughly how many budget bytes
	// were freed (0 when there is nothing left to give).
	reclaimOne() (int64, error)
}

// reclaimSpace is the cross-operator graceful-degradation path: when one
// container's own evictions cannot satisfy a reservation, resident state of
// the evaluator's other containers is paged out, largest-first one container
// at a time. Returns true when any budget bytes were freed (the caller
// retries its reservation).
func (ev *Evaluator) reclaimSpace(except spillable) (bool, error) {
	for _, s := range ev.spillables {
		if s == except {
			continue
		}
		freed, err := s.reclaimOne()
		if err != nil {
			return false, err
		}
		if freed > 0 {
			return true, nil
		}
	}
	return false, nil
}

// partOf hashes a key to its partition (FNV-1a).
func partOf(key []byte) int {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h & (spillParts - 1))
}

// recordWriter frames length-prefixed records into a budget-owned spill file.
type recordWriter struct {
	sf    *resource.SpillFile
	w     *bufio.Writer
	bytes int64
}

func newRecordWriter(bud *resource.Budget, label string) (*recordWriter, error) {
	sf, err := bud.TempFile(label)
	if err != nil {
		return nil, err
	}
	return &recordWriter{sf: sf, w: bufio.NewWriter(sf.File())}, nil
}

func (rw *recordWriter) write(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := rw.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := rw.w.Write(rec); err != nil {
		return err
	}
	rw.bytes += int64(n + len(rec))
	return nil
}

func (rw *recordWriter) flush() error { return rw.w.Flush() }

// recordReader iterates a spill file's records from the start. The returned
// slice is reused across calls.
type recordReader struct {
	r   *bufio.Reader
	buf []byte
}

func newRecordReader(sf *resource.SpillFile) (*recordReader, error) {
	if _, err := sf.File().Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &recordReader{r: bufio.NewReader(sf.File())}, nil
}

// next returns the next record or io.EOF.
func (rr *recordReader) next() ([]byte, error) {
	n, err := binary.ReadUvarint(rr.r)
	if err != nil {
		return nil, err
	}
	if uint64(cap(rr.buf)) < n {
		rr.buf = make([]byte, n)
	}
	rr.buf = rr.buf[:n]
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		return nil, fmt.Errorf("exec: truncated spill record: %w", err)
	}
	return rr.buf, nil
}

// valCodec serializes a pagedTable's values into spill records.
type valCodec[V any] struct {
	encode func(buf []byte, v V) []byte
	decode func(buf []byte) (V, []byte, error)
	size   func(v V) int64
}

type tablePart[V any] struct {
	mem    map[string]V
	bytes  int64
	file   *resource.SpillFile
	onDisk bool // file holds the authoritative snapshot; mem is nil
}

// pagedTable is the partitioned, spillable hash table described in the
// package comment. Keys are the AppendKey encodings the in-memory paths
// already use (values carry the lossless payload). Not safe for concurrent
// use; each operator owns its own.
type pagedTable[V any] struct {
	ev      *Evaluator
	bud     *resource.Budget
	acct    *resource.Account
	cod     valCodec[V]
	parts   [spillParts]tablePart[V]
	onSpill func(int64)
	label   string
}

func newPagedTable[V any](ev *Evaluator, label string, cod valCodec[V], onSpill func(int64)) *pagedTable[V] {
	pt := &pagedTable[V]{ev: ev, bud: ev.Mem, acct: ev.Mem.OpenAccount(), cod: cod, onSpill: onSpill, label: label}
	for i := range pt.parts {
		pt.parts[i].mem = map[string]V{}
	}
	ev.spillables = append(ev.spillables, pt)
	return pt
}

// reclaimOne implements spillable: surrender the largest resident partition
// and any idle reservation to relieve another operator's pressure.
func (pt *pagedTable[V]) reclaimOne() (int64, error) {
	var freed int64
	if victim := pt.largestResident(nil); victim != nil {
		freed += victim.bytes
		if err := pt.pageOut(victim); err != nil {
			return 0, err
		}
	}
	freed += pt.acct.ReleaseIdle()
	return freed, nil
}

func (pt *pagedTable[V]) get(key []byte) (V, bool, error) {
	p := &pt.parts[partOf(key)]
	if err := pt.ensureResident(p); err != nil {
		var zero V
		return zero, false, err
	}
	v, ok := p.mem[string(key)]
	return v, ok, nil
}

// put inserts or replaces key's value, charging the size delta.
func (pt *pagedTable[V]) put(key []byte, v V) error {
	p := &pt.parts[partOf(key)]
	if err := pt.ensureResident(p); err != nil {
		return err
	}
	delta := pt.cod.size(v)
	if old, ok := p.mem[string(key)]; ok {
		delta -= pt.cod.size(old)
	} else {
		delta += keyMemBytes(len(key))
	}
	switch {
	case delta > 0:
		if err := pt.grow(p, delta); err != nil {
			return err
		}
	case delta < 0:
		pt.acct.Shrink(-delta)
	}
	p.mem[string(key)] = v
	p.bytes += delta
	return nil
}

// recharge adjusts the charged size of key's partition after an in-place
// mutation of a pointer-valued entry (the generic put cannot see the delta:
// old and new are the same pointer). The partition must be resident — the
// caller just fetched the entry.
func (pt *pagedTable[V]) recharge(key []byte, delta int64) error {
	p := &pt.parts[partOf(key)]
	switch {
	case delta > 0:
		if err := pt.grow(p, delta); err != nil {
			return err
		}
	case delta < 0:
		pt.acct.Shrink(-delta)
	}
	p.bytes += delta
	return nil
}

// grow charges n to the account, paging other resident partitions out to
// disk until the charge fits — the graceful-degradation path. When the
// table's own evictions are exhausted, other containers' resident state is
// reclaimed (reclaimSpace); only when nothing anywhere can be freed does
// ErrMemoryExceeded surface: the query's irreducible working set (one
// partition per live operator) does not fit the budget.
func (pt *pagedTable[V]) grow(keep *tablePart[V], n int64) error {
	for {
		err := pt.acct.Grow(n)
		if err == nil {
			return nil
		}
		if victim := pt.largestResident(keep); victim != nil {
			if e := pt.pageOut(victim); e != nil {
				return e
			}
			continue
		}
		freed, rerr := pt.ev.reclaimSpace(pt)
		if rerr != nil {
			return rerr
		}
		if !freed {
			return fmt.Errorf("%s state: %w", pt.label, err)
		}
	}
}

func (pt *pagedTable[V]) largestResident(keep *tablePart[V]) *tablePart[V] {
	var best *tablePart[V]
	for i := range pt.parts {
		p := &pt.parts[i]
		if p == keep || p.onDisk || len(p.mem) == 0 {
			continue
		}
		if best == nil || p.bytes > best.bytes {
			best = p
		}
	}
	return best
}

// pageOut snapshots a partition to a fresh spill file and releases its
// reservation. Rewriting the full snapshot (rather than appending deltas)
// uniformly handles mutated entries — set-op count decrements, join buckets
// that grew since the last spill.
func (pt *pagedTable[V]) pageOut(p *tablePart[V]) error {
	rw, err := newRecordWriter(pt.bud, pt.label)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for k, v := range p.mem {
		buf = binary.AppendUvarint(buf[:0], uint64(len(k)))
		buf = append(buf, k...)
		buf = pt.cod.encode(buf, v)
		if err := rw.write(buf); err != nil {
			rw.sf.Close()
			return err
		}
	}
	if err := rw.flush(); err != nil {
		rw.sf.Close()
		return err
	}
	if p.file != nil {
		p.file.Close()
	}
	p.file = rw.sf
	p.onDisk = true
	p.mem = nil
	pt.acct.Shrink(p.bytes)
	p.bytes = 0
	pt.bud.NoteSpill(rw.bytes)
	if pt.onSpill != nil {
		pt.onSpill(rw.bytes)
	}
	return nil
}

// ensureResident pages a spilled partition back in, charging (and possibly
// evicting others) entry by entry.
func (pt *pagedTable[V]) ensureResident(p *tablePart[V]) error {
	if !p.onDisk {
		return nil
	}
	rr, err := newRecordReader(p.file)
	if err != nil {
		return err
	}
	p.mem = map[string]V{}
	p.bytes = 0
	p.onDisk = false
	for {
		rec, err := rr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		klen, m := binary.Uvarint(rec)
		if m <= 0 || uint64(len(rec)-m) < klen {
			return fmt.Errorf("exec: corrupt spill partition %q", pt.label)
		}
		key := string(rec[m : m+int(klen)])
		v, _, err := pt.cod.decode(rec[m+int(klen):])
		if err != nil {
			return err
		}
		delta := keyMemBytes(len(key)) + pt.cod.size(v)
		if err := pt.grow(p, delta); err != nil {
			return err
		}
		p.mem[key] = v
		p.bytes += delta
	}
	p.file.Close()
	p.file = nil
	return nil
}

// spilled reports whether any partition currently lives on disk.
func (pt *pagedTable[V]) spilled() bool {
	for i := range pt.parts {
		if pt.parts[i].onDisk {
			return true
		}
	}
	return false
}

// residentPart pages partition i in and returns its entry map. The map stays
// resident as long as the caller charges nothing against the budget; any
// charge may evict it (pageOut nils the partition's map, so the returned
// reference keeps working but its reservation is gone — callers must not
// rely on that).
func (pt *pagedTable[V]) residentPart(i int) (map[string]V, error) {
	p := &pt.parts[i]
	if err := pt.ensureResident(p); err != nil {
		return nil, err
	}
	return p.mem, nil
}

// each visits every entry, paging partitions in one at a time. Order is
// unspecified; callers needing an order carry a sequence number in V.
func (pt *pagedTable[V]) each(f func(key string, v V) error) error {
	for i := range pt.parts {
		p := &pt.parts[i]
		if err := pt.ensureResident(p); err != nil {
			return err
		}
		for k, v := range p.mem {
			if err := f(k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func (pt *pagedTable[V]) close() {
	for i := range pt.parts {
		p := &pt.parts[i]
		if p.file != nil {
			p.file.Close()
			p.file = nil
		}
		p.mem = nil
	}
	pt.acct.Close()
	for i, s := range pt.ev.spillables {
		if s == spillable(pt) {
			pt.ev.spillables = append(pt.ev.spillables[:i], pt.ev.spillables[i+1:]...)
			break
		}
	}
}

func unitCodec() valCodec[struct{}] {
	return valCodec[struct{}]{
		encode: func(buf []byte, _ struct{}) []byte { return buf },
		decode: func(buf []byte) (struct{}, []byte, error) { return struct{}{}, buf, nil },
		size:   func(struct{}) int64 { return 0 },
	}
}

func countCodec() valCodec[int64] {
	return valCodec[int64]{
		encode: func(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) },
		decode: func(buf []byte) (int64, []byte, error) {
			v, n := binary.Varint(buf)
			if n <= 0 {
				return 0, nil, fmt.Errorf("exec: corrupt spill count")
			}
			return v, buf[n:], nil
		},
		size: func(int64) int64 { return 8 },
	}
}

// seenSet is a membership set: a plain map without a budget, a
// pagedTable[struct{}] under one. Used by DISTINCT, dedupe, set-operation
// seen state, and the fixpoint delta test.
type seenSet struct {
	m  map[string]bool
	pt *pagedTable[struct{}]
}

func (ev *Evaluator) newSeenSet(label string, onSpill func(int64)) *seenSet {
	if ev.Mem == nil {
		return &seenSet{m: map[string]bool{}}
	}
	return &seenSet{pt: newPagedTable(ev, label, unitCodec(), onSpill)}
}

// checkAndAdd reports whether key was already present, inserting it if not.
func (s *seenSet) checkAndAdd(key []byte) (bool, error) {
	if s.pt == nil {
		if s.m[string(key)] {
			return true, nil
		}
		s.m[string(key)] = true
		return false, nil
	}
	_, ok, err := s.pt.get(key)
	if err != nil || ok {
		return ok, err
	}
	return false, s.pt.put(key, struct{}{})
}

func (s *seenSet) close() {
	if s.pt != nil {
		s.pt.close()
	}
	s.m = nil
}

// countTable is a multiset: row-key → multiplicity (INTERSECT/EXCEPT right
// inputs).
type countTable struct {
	m  map[string]int
	pt *pagedTable[int64]
}

func (ev *Evaluator) newCountTable(label string, onSpill func(int64)) *countTable {
	if ev.Mem == nil {
		return &countTable{m: map[string]int{}}
	}
	return &countTable{pt: newPagedTable(ev, label, countCodec(), onSpill)}
}

func (c *countTable) inc(key []byte) error {
	if c.pt == nil {
		c.m[string(key)]++
		return nil
	}
	v, _, err := c.pt.get(key)
	if err != nil {
		return err
	}
	return c.pt.put(key, v+1)
}

func (c *countTable) count(key []byte) (int, error) {
	if c.pt == nil {
		return c.m[string(key)], nil
	}
	v, _, err := c.pt.get(key)
	return int(v), err
}

func (c *countTable) dec(key []byte) error {
	if c.pt == nil {
		c.m[string(key)]--
		return nil
	}
	v, _, err := c.pt.get(key)
	if err != nil {
		return err
	}
	return c.pt.put(key, v-1)
}

func (c *countTable) close() {
	if c.pt != nil {
		c.pt.close()
	}
	c.m = nil
}

// rowBucket is one join hash bucket. Build-side rows append in arrival
// order and the codec preserves slice order, so probe results — and
// therefore join output order — are identical with and without spilling.
type rowBucket struct {
	rows    []datum.Row
	memSize int64
}

func bucketCodec() valCodec[*rowBucket] {
	return valCodec[*rowBucket]{
		encode: func(buf []byte, b *rowBucket) []byte {
			buf = binary.AppendUvarint(buf, uint64(len(b.rows)))
			for _, r := range b.rows {
				buf = datum.AppendEncodedRow(buf, r)
			}
			return buf
		},
		decode: func(buf []byte) (*rowBucket, []byte, error) {
			n, m := binary.Uvarint(buf)
			if m <= 0 {
				return nil, nil, fmt.Errorf("exec: corrupt spill bucket")
			}
			buf = buf[m:]
			b := &rowBucket{rows: make([]datum.Row, n), memSize: 48}
			for i := range b.rows {
				var err error
				b.rows[i], buf, err = datum.DecodeRow(buf)
				if err != nil {
					return nil, nil, err
				}
				b.memSize += datum.RowMemBytes(b.rows[i])
			}
			return b, buf, nil
		},
		size: func(b *rowBucket) int64 { return b.memSize },
	}
}

// spillJoin is the grace-style spillable join hash table.
type spillJoin struct {
	pt *pagedTable[*rowBucket]
}

func (ev *Evaluator) newSpillJoin(onSpill func(int64)) *spillJoin {
	return &spillJoin{pt: newPagedTable(ev, "hashjoin", bucketCodec(), onSpill)}
}

func (sj *spillJoin) add(key []byte, row datum.Row) error {
	b, ok, err := sj.pt.get(key)
	if err != nil {
		return err
	}
	if !ok {
		b = &rowBucket{rows: []datum.Row{row}, memSize: 48 + datum.RowMemBytes(row)}
		return sj.pt.put(key, b)
	}
	b.rows = append(b.rows, row)
	d := datum.RowMemBytes(row)
	b.memSize += d
	return sj.pt.recharge(key, d)
}

func (sj *spillJoin) probe(key []byte) ([]datum.Row, error) {
	b, ok, err := sj.pt.get(key)
	if err != nil || !ok {
		return nil, err
	}
	return b.rows, nil
}

func (sj *spillJoin) close() { sj.pt.close() }

// spilled reports whether the build left any partition on disk (the trigger
// for a partition-wise grace probe, see grace.go).
func (sj *spillJoin) spilled() bool { return sj.pt.spilled() }

// partition pages build partition i in and returns its buckets.
func (sj *spillJoin) partition(i int) (map[string]*rowBucket, error) {
	return sj.pt.residentPart(i)
}

// groupEntry is one group's aggregate state. memSize caches the charged
// resident size; callers adjust it (and recharge) when distinct-sets grow.
type groupEntry struct {
	seq      uint64
	key      datum.Row
	states   []*datum.AggState
	distinct []map[string]bool
	memSize  int64
}

func newGroupEntry(key datum.Row, aggs []qgm.AggSpec) *groupEntry {
	e := &groupEntry{key: key}
	for _, a := range aggs {
		e.states = append(e.states, datum.NewAggState(a.Kind))
		if a.Distinct {
			e.distinct = append(e.distinct, map[string]bool{})
		} else {
			e.distinct = append(e.distinct, nil)
		}
	}
	e.memSize = 96 + datum.RowMemBytes(key) + 64*int64(len(e.states))
	return e
}

func groupCodec() valCodec[*groupEntry] {
	return valCodec[*groupEntry]{
		encode: func(buf []byte, e *groupEntry) []byte {
			buf = binary.AppendUvarint(buf, e.seq)
			buf = datum.AppendEncodedRow(buf, e.key)
			buf = binary.AppendUvarint(buf, uint64(len(e.states)))
			for _, st := range e.states {
				buf = st.AppendEncoded(buf)
			}
			for _, set := range e.distinct {
				if set == nil {
					buf = append(buf, 0)
					continue
				}
				buf = append(buf, 1)
				buf = binary.AppendUvarint(buf, uint64(len(set)))
				for k := range set {
					buf = binary.AppendUvarint(buf, uint64(len(k)))
					buf = append(buf, k...)
				}
			}
			return buf
		},
		decode: func(buf []byte) (*groupEntry, []byte, error) {
			e := &groupEntry{}
			var m int
			e.seq, m = binary.Uvarint(buf)
			if m <= 0 {
				return nil, nil, fmt.Errorf("exec: corrupt spill group")
			}
			buf = buf[m:]
			var err error
			e.key, buf, err = datum.DecodeRow(buf)
			if err != nil {
				return nil, nil, err
			}
			n, m := binary.Uvarint(buf)
			if m <= 0 {
				return nil, nil, fmt.Errorf("exec: corrupt spill group")
			}
			buf = buf[m:]
			e.states = make([]*datum.AggState, n)
			for i := range e.states {
				e.states[i], buf, err = datum.DecodeAggState(buf)
				if err != nil {
					return nil, nil, err
				}
			}
			e.distinct = make([]map[string]bool, n)
			e.memSize = 96 + datum.RowMemBytes(e.key) + 64*int64(n)
			for i := range e.distinct {
				if len(buf) == 0 {
					return nil, nil, fmt.Errorf("exec: corrupt spill group")
				}
				present := buf[0] != 0
				buf = buf[1:]
				if !present {
					continue
				}
				cnt, m := binary.Uvarint(buf)
				if m <= 0 {
					return nil, nil, fmt.Errorf("exec: corrupt spill group")
				}
				buf = buf[m:]
				set := make(map[string]bool, cnt)
				for j := uint64(0); j < cnt; j++ {
					klen, m := binary.Uvarint(buf)
					if m <= 0 || uint64(len(buf)-m) < klen {
						return nil, nil, fmt.Errorf("exec: corrupt spill group")
					}
					k := string(buf[m : m+int(klen)])
					buf = buf[m+int(klen):]
					set[k] = true
					e.memSize += 24 + int64(len(k))
				}
				e.distinct[i] = set
			}
			return e, buf, nil
		},
		size: func(e *groupEntry) int64 { return e.memSize },
	}
}

// groupTable holds GROUP-BY state. Entries carry an insertion sequence
// number; emission sorts by it, reproducing the in-memory first-seen group
// order even after partitions spilled and paged back in hash order.
type groupTable struct {
	m     map[string]*groupEntry
	order []string
	pt    *pagedTable[*groupEntry]
	next  uint64
	count int
}

func (ev *Evaluator) newGroupTable(label string, onSpill func(int64)) *groupTable {
	if ev.Mem == nil {
		return &groupTable{m: map[string]*groupEntry{}}
	}
	return &groupTable{pt: newPagedTable(ev, label, groupCodec(), onSpill)}
}

func (g *groupTable) lookup(key []byte) (*groupEntry, bool, error) {
	if g.pt == nil {
		e, ok := g.m[string(key)]
		return e, ok, nil
	}
	return g.pt.get(key)
}

func (g *groupTable) insert(key []byte, e *groupEntry) error {
	e.seq = g.next
	g.next++
	g.count++
	if g.pt == nil {
		ks := string(key)
		g.m[ks] = e
		g.order = append(g.order, ks)
		return nil
	}
	return g.pt.put(key, e)
}

// recharge records delta bytes of in-place entry growth (distinct-set adds).
func (g *groupTable) recharge(key []byte, delta int64) error {
	if g.pt == nil {
		return nil
	}
	return g.pt.recharge(key, delta)
}

func (g *groupTable) len() int { return g.count }

// each visits all groups in unspecified order (callers sort by seq).
func (g *groupTable) each(f func(e *groupEntry) error) error {
	if g.pt == nil {
		for _, ks := range g.order {
			if err := f(g.m[ks]); err != nil {
				return err
			}
		}
		return nil
	}
	return g.pt.each(func(_ string, e *groupEntry) error { return f(e) })
}

func (g *groupTable) close() {
	if g.pt != nil {
		g.pt.close()
	}
	g.m, g.order = nil, nil
}

// rowBuffer is an append-only row list that spills its resident suffix when
// the budget denies growth; replay order is spill-file prefix + resident
// suffix, i.e. exactly arrival order. Used for nested-loop inner sides that
// are rescanned once per outer binding.
type rowBuffer struct {
	ev      *Evaluator
	acct    *resource.Account
	onSpill func(int64)
	label   string
	rows    []datum.Row
	rw      *recordWriter
	count   int
	encBuf  []byte
}

func (ev *Evaluator) newRowBuffer(label string, onSpill func(int64)) *rowBuffer {
	return &rowBuffer{ev: ev, acct: ev.Mem.OpenAccount(), onSpill: onSpill, label: label}
}

func (rb *rowBuffer) add(row datum.Row) error {
	n := datum.RowMemBytes(row)
	for {
		err := rb.acct.Grow(n)
		if err == nil {
			break
		}
		if len(rb.rows) > 0 {
			if err := rb.spillResident(); err != nil {
				return err
			}
			continue
		}
		freed, rerr := rb.ev.reclaimSpace(nil)
		if rerr != nil {
			return rerr
		}
		if !freed {
			// A single row exceeds what remains of the whole budget.
			return fmt.Errorf("%s row: %w", rb.label, err)
		}
	}
	rb.rows = append(rb.rows, row)
	rb.count++
	return nil
}

func (rb *rowBuffer) spillResident() error {
	if rb.rw == nil {
		rw, err := newRecordWriter(rb.ev.Mem, rb.label)
		if err != nil {
			return err
		}
		rb.rw = rw
	}
	start := rb.rw.bytes
	for _, r := range rb.rows {
		rb.encBuf = datum.AppendEncodedRow(rb.encBuf[:0], r)
		if err := rb.rw.write(rb.encBuf); err != nil {
			return err
		}
	}
	rb.rows = rb.rows[:0]
	rb.acct.Clear()
	rb.ev.Mem.NoteSpill(rb.rw.bytes - start)
	if rb.onSpill != nil {
		rb.onSpill(rb.rw.bytes - start)
	}
	return nil
}

// freeze moves any resident suffix to the spill file and releases the whole
// reservation: subsequent cursors replay purely from disk. Called before
// building derived state (a hash table) from the buffer so the buffer's
// memory does not compete with the state being built.
func (rb *rowBuffer) freeze() error {
	if len(rb.rows) > 0 {
		if err := rb.spillResident(); err != nil {
			return err
		}
	}
	rb.acct.Clear()
	return nil
}

// cursor starts a replay of the buffer from the beginning. Only valid after
// all adds are done; multiple sequential cursors are allowed.
func (rb *rowBuffer) cursor() (*rowCursor, error) {
	c := &rowCursor{rb: rb}
	if rb.rw != nil {
		if err := rb.rw.flush(); err != nil {
			return nil, err
		}
		rr, err := newRecordReader(rb.rw.sf)
		if err != nil {
			return nil, err
		}
		c.rr = rr
	}
	return c, nil
}

type rowCursor struct {
	rb  *rowBuffer
	rr  *recordReader // nil once the file part is exhausted (or never spilled)
	idx int           // position in the resident suffix
}

// nextBatch returns up to max rows, nil at end. Decoded rows are fresh
// allocations; resident rows are returned as-is.
func (c *rowCursor) nextBatch(max int) ([]datum.Row, error) {
	var out []datum.Row
	for c.rr != nil && len(out) < max {
		rec, err := c.rr.next()
		if err == io.EOF {
			c.rr = nil
			break
		}
		if err != nil {
			return nil, err
		}
		row, _, err := datum.DecodeRow(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	for c.idx < len(c.rb.rows) && len(out) < max {
		out = append(out, c.rb.rows[c.idx])
		c.idx++
	}
	return out, nil
}

func (rb *rowBuffer) close() {
	if rb.rw != nil {
		rb.rw.sf.Close()
		rb.rw = nil
	}
	rb.rows = nil
	rb.acct.Close()
}

// extSorter is the external merge sort. Rows accumulate in a charged buffer;
// when the budget denies growth (or the buffer passes the eager threshold,
// set when Lower's EstMem estimate already exceeds the budget) the buffer is
// stably sorted and flushed as a run. finish() merges the runs plus the
// final buffer k-way, breaking comparator ties by run index — earlier runs
// hold earlier arrivals, so the merged order equals sort.SliceStable over
// the full input.
type extSorter struct {
	ev      *Evaluator
	acct    *resource.Account
	specs   []qgm.OrderSpec
	onSpill func(int64)

	// eager caps resident bytes before a proactive run flush (0 = flush
	// only on budget denial).
	eager    int64
	resBytes int64

	rows   []datum.Row
	runs   []*resource.SpillFile
	encBuf []byte

	// merge state
	readers []*recordReader
	heads   []datum.Row // heads[i] is the next row of run i; nil = exhausted
	memIdx  int         // position in the final in-memory run (index len(runs))
	merged  bool
	pos     int // in-memory-only emission position
}

func (ev *Evaluator) newExtSorter(specs []qgm.OrderSpec, onSpill func(int64)) *extSorter {
	return &extSorter{ev: ev, acct: ev.Mem.OpenAccount(), specs: specs, onSpill: onSpill}
}

func (s *extSorter) less(a, b datum.Row) bool {
	for _, spec := range s.specs {
		c := datum.SortCompare(a[spec.Ord], b[spec.Ord])
		if spec.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

func (s *extSorter) add(row datum.Row) error {
	n := datum.RowMemBytes(row)
	for {
		err := s.acct.Grow(n)
		if err == nil {
			break
		}
		if len(s.rows) > 0 {
			if err := s.flushRun(); err != nil {
				return err
			}
			continue
		}
		freed, rerr := s.ev.reclaimSpace(nil)
		if rerr != nil {
			return rerr
		}
		if !freed {
			// A single row exceeds what remains of the whole budget.
			return fmt.Errorf("sort row: %w", err)
		}
	}
	s.rows = append(s.rows, row)
	s.resBytes += n
	if s.eager > 0 && s.resBytes >= s.eager {
		return s.flushRun()
	}
	return nil
}

func (s *extSorter) flushRun() error {
	sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
	rw, err := newRecordWriter(s.ev.Mem, "sort-run")
	if err != nil {
		return err
	}
	for _, r := range s.rows {
		s.encBuf = datum.AppendEncodedRow(s.encBuf[:0], r)
		if err := rw.write(s.encBuf); err != nil {
			rw.sf.Close()
			return err
		}
	}
	if err := rw.flush(); err != nil {
		rw.sf.Close()
		return err
	}
	s.runs = append(s.runs, rw.sf)
	s.rows = s.rows[:0]
	s.resBytes = 0
	s.acct.Clear()
	s.ev.Mem.NoteSpill(rw.bytes)
	if s.onSpill != nil {
		s.onSpill(rw.bytes)
	}
	return nil
}

// finish seals the input and prepares emission.
func (s *extSorter) finish() error {
	sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
	if len(s.runs) == 0 {
		return nil // pure in-memory sort; next() walks s.rows
	}
	s.readers = make([]*recordReader, len(s.runs))
	s.heads = make([]datum.Row, len(s.runs)+1)
	for i, sf := range s.runs {
		rr, err := newRecordReader(sf)
		if err != nil {
			return err
		}
		s.readers[i] = rr
		if err := s.advanceRun(i); err != nil {
			return err
		}
	}
	s.advanceMem()
	s.merged = true
	return nil
}

func (s *extSorter) advanceRun(i int) error {
	rec, err := s.readers[i].next()
	if err == io.EOF {
		s.heads[i] = nil
		return nil
	}
	if err != nil {
		return err
	}
	row, _, err := datum.DecodeRow(rec)
	if err != nil {
		return err
	}
	s.heads[i] = row
	return nil
}

func (s *extSorter) advanceMem() {
	last := len(s.heads) - 1
	if s.memIdx < len(s.rows) {
		s.heads[last] = s.rows[s.memIdx]
		s.memIdx++
	} else {
		s.heads[last] = nil
	}
}

// next emits up to max merged rows, nil at end.
func (s *extSorter) next(max int) ([]datum.Row, error) {
	if !s.merged {
		if s.pos >= len(s.rows) {
			return nil, nil
		}
		end := s.pos + max
		if end > len(s.rows) {
			end = len(s.rows)
		}
		batch := s.rows[s.pos:end]
		s.pos = end
		return batch, nil
	}
	var out []datum.Row
	for len(out) < max {
		best := -1
		for i, h := range s.heads {
			if h == nil {
				continue
			}
			// Strict less keeps the lowest run index on ties — earlier runs
			// hold earlier arrivals, which is exactly stability.
			if best < 0 || s.less(h, s.heads[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, s.heads[best])
		if best == len(s.heads)-1 {
			s.advanceMem()
		} else if err := s.advanceRun(best); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *extSorter) close() {
	for _, sf := range s.runs {
		sf.Close()
	}
	s.runs, s.rows, s.readers, s.heads = nil, nil, nil, nil
	s.acct.Close()
}
