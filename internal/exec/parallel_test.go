package exec

import (
	"fmt"
	"reflect"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

// evalWith builds query and evaluates it with the given parallelism,
// returning ordered rendered rows and the evaluator for counter inspection.
func evalWith(t *testing.T, cat *catalog.Catalog, store *storage.Store, query string, parallelism int) ([]string, *Evaluator) {
	t.Helper()
	q, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	g, err := semant.NewBuilder(cat).Build(q)
	if err != nil {
		t.Fatalf("build %q: %v", query, err)
	}
	ev := New(store)
	ev.Parallelism = parallelism
	rows, err := ev.EvalGraph(g)
	if err != nil {
		t.Fatalf("eval %q (parallelism %d): %v", query, parallelism, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%#v", r)
	}
	return out, ev
}

// Parallel evaluation must produce exactly the serial rows, in the serial
// order, for shapes that exercise closed-subtree prefetch: shared views,
// group-by over a view, subqueries, and set operations.
func TestParallelMatchesSerial(t *testing.T) {
	cat, store := testDB(t)
	queries := []string{
		// Two closed view subtrees joined (prefetch candidates).
		"SELECT m.empno, a.avgsalary FROM mgrSal m, avgMgrSal a WHERE m.workdept = a.workdept",
		// Closed subquery quantifiers.
		"SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(salary) FROM employee) " +
			"AND EXISTS (SELECT 1 FROM department d WHERE d.mgrno = e.empno)",
		// Set operation over two closed branches.
		"SELECT empno FROM mgrSal UNION SELECT mgrno FROM department WHERE mgrno IS NOT NULL",
		"SELECT workdept FROM employee EXCEPT SELECT workdept FROM mgrSal",
		// Aggregation over a view of a view.
		"SELECT workdept, avgsalary FROM avgMgrSal ORDER BY workdept",
	}
	for _, query := range queries {
		serial, _ := evalWith(t, cat, store, query, 1)
		for _, p := range []int{2, 4, -1} {
			par, _ := evalWith(t, cat, store, query, p)
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("parallelism %d changed results for %q:\nserial: %v\npar:    %v", p, query, serial, par)
			}
		}
	}
}

// Merged per-worker counters must not depend on goroutine scheduling: two
// runs at the same parallelism see identical totals.
func TestParallelCountersDeterministic(t *testing.T) {
	cat, store := testDB(t)
	query := "SELECT m.empno, a.avgsalary FROM mgrSal m, avgMgrSal a WHERE m.workdept = a.workdept"
	_, ev1 := evalWith(t, cat, store, query, 4)
	for i := 0; i < 5; i++ {
		_, ev2 := evalWith(t, cat, store, query, 4)
		if ev1.Counters != ev2.Counters {
			t.Fatalf("counters vary across runs at parallelism 4:\n%+v\n%+v", ev1.Counters, ev2.Counters)
		}
	}
}

// bigJoinDB builds two unindexed tables large enough to cross the parallel
// hash-build threshold.
func bigJoinDB(t *testing.T) (*catalog.Catalog, *storage.Store, int) {
	t.Helper()
	cat := catalog.New()
	const n = 3 * parallelBuildMinRows
	mk := func(name string) *catalog.Table {
		tb := &catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a", Type: datum.TInt},
				{Name: "b", Type: datum.TInt},
			},
		}
		if err := cat.AddTable(tb); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	left, right := mk("lhs"), mk("rhs")
	store := storage.NewStore()
	lr, rr := store.Create(left), store.Create(right)
	for i := 0; i < n; i++ {
		if err := lr.Insert(datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 97))}); err != nil {
			t.Fatal(err)
		}
		if err := rr.Insert(datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 89))}); err != nil {
			t.Fatal(err)
		}
	}
	return cat, store, n
}

// A hash join whose build side crosses parallelBuildMinRows must partition
// across workers and still produce byte-identical buckets (same rows, same
// order) as the serial build.
func TestParallelHashJoinBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("large join in -short mode")
	}
	cat, store, _ := bigJoinDB(t)
	query := "SELECT l.a FROM lhs l, rhs r WHERE l.b = r.b AND l.a < 300 AND r.a < 300"
	serial, evS := evalWith(t, cat, store, query, 1)
	par, evP := evalWith(t, cat, store, query, 4)
	if len(serial) == 0 {
		t.Fatal("query returned no rows; test is vacuous")
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel hash build changed results: %d vs %d rows", len(serial), len(par))
	}
	if evS.Counters.HashBuilds == 0 || evS.Counters != evP.Counters {
		t.Errorf("counters diverged: serial %+v parallel %+v", evS.Counters, evP.Counters)
	}
}

// Correlated (NoSubqueryCache) evaluation must bypass prefetch but still
// honor Parallelism without changing results.
func TestParallelWithNoSubqueryCache(t *testing.T) {
	cat, store := testDB(t)
	query := "SELECT e.empname FROM employee e WHERE e.salary > (SELECT AVG(salary) FROM employee x WHERE x.workdept = e.workdept)"
	run := func(parallelism int) []string {
		q, err := sql.ParseQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		g, err := semant.NewBuilder(cat).Build(q)
		if err != nil {
			t.Fatal(err)
		}
		ev := New(store)
		ev.NoSubqueryCache = true
		ev.Parallelism = parallelism
		rows, err := ev.EvalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%#v", r)
		}
		return out
	}
	if got, want := run(4), run(1); !reflect.DeepEqual(got, want) {
		t.Errorf("NoSubqueryCache results differ under parallelism: %v vs %v", got, want)
	}
}
