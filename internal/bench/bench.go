// Package bench is the performance-experiment harness reproducing the
// paper's Table 1: eight decision-support queries, each executed under the
// three strategies Original / Correlated / EMST, with elapsed times
// normalized to Original = 100.
//
// The paper's experiments came from [MFPR90a] over DB2 benchmark data and
// are not specified beyond their measured ratios, so the workloads here are
// reconstructions driven by the two knobs the paper identifies: how many
// bindings reach the view (outer width, with or without duplicate
// bindings), and how expensive one view evaluation is (index availability
// on the correlation column, joins and aggregation inside the view). Each
// experiment's comment states the regime it reconstructs.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"starmagic/internal/datum"
	"starmagic/internal/engine"
	"starmagic/internal/exec"
)

// Config sizes the synthetic database. Scale 1 is the default benchmark
// size; Table 1 shapes hold across scales.
type Config struct {
	// Departments is the department count (default 150).
	Departments int
	// EmpsPerDept is employees per department (default 40).
	EmpsPerDept int
	// SalesPerDept is rows per department in the indexed fact table
	// (default 150).
	SalesPerDept int
	// OrdersPerDept is rows per department in the UNindexed fact table
	// (default 150).
	OrdersPerDept int
	// Seed drives the deterministic data generator.
	Seed int64
}

// DefaultConfig returns the standard benchmark size.
func DefaultConfig() Config {
	return Config{Departments: 150, EmpsPerDept: 40, SalesPerDept: 150, OrdersPerDept: 150, Seed: 1994}
}

// WithScale multiplies all table sizes by scale.
func (c Config) WithScale(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	c.EmpsPerDept *= scale
	c.SalesPerDept *= scale
	c.OrdersPerDept *= scale
	return c
}

// Schema is the benchmark DDL: a department dimension, an employee table,
// an indexed fact table (sales) and an unindexed one (orders), plus the
// views the experiments query. deptOrders/deptOrdersJ deliberately
// aggregate the fact table with no index on the correlation column — the
// regime in which correlated execution collapses (Table 1 rows C and D).
const Schema = `
CREATE TABLE department (
  deptno INT, deptname VARCHAR(30), mgrno INT, region VARCHAR(10),
  PRIMARY KEY (deptno));
CREATE TABLE employee (
  empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, jobcode INT,
  PRIMARY KEY (empno));
CREATE INDEX emp_dept ON employee (workdept);
CREATE TABLE sales (
  saleid INT, deptno INT, amount FLOAT, yr INT,
  PRIMARY KEY (saleid));
CREATE INDEX sales_dept ON sales (deptno);
CREATE TABLE orders (
  orderid INT, deptno INT, amount FLOAT,
  PRIMARY KEY (orderid));

CREATE VIEW avgSalary (workdept, avgsal, headcount) AS
  SELECT workdept, AVG(salary), COUNT(*) FROM employee GROUPBY workdept;
CREATE VIEW deptSales (deptno, total, cnt) AS
  SELECT deptno, SUM(amount), COUNT(*) FROM sales GROUPBY deptno;
CREATE VIEW deptAvgSales (deptno, avgamount) AS
  SELECT deptno, AVG(amount) FROM sales GROUPBY deptno;
CREATE VIEW deptOrders (deptno, total) AS
  SELECT deptno, SUM(amount) FROM orders GROUPBY deptno;
CREATE VIEW deptOrdersJ (deptno, total) AS
  SELECT o.deptno, SUM(o.amount)
  FROM orders o, department d WHERE o.deptno = d.deptno
  GROUPBY o.deptno;
CREATE VIEW regionSales (region, total) AS
  SELECT d.region, SUM(v.total)
  FROM department d, deptSales v WHERE d.deptno = v.deptno
  GROUPBY d.region;
CREATE VIEW regionPay (region, totalsal) AS
  SELECT d.region, SUM(v.avgsal)
  FROM department d, employee e, avgSalary v
  WHERE e.workdept = d.deptno AND e.jobcode < 2 AND e.workdept = v.workdept
  GROUPBY d.region;
`

// NewDB builds and loads the benchmark database.
func NewDB(cfg Config) (*engine.Database, error) {
	db := engine.New()
	if _, err := db.Exec(Schema); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	depts := make([]datum.Row, 0, cfg.Departments)
	for d := 1; d <= cfg.Departments; d++ {
		name := fmt.Sprintf("Dept-%03d", d)
		if d == 7 {
			name = "Planning"
		}
		region := fmt.Sprintf("R%02d", (d-1)%10)
		depts = append(depts, datum.Row{
			datum.Int(int64(d)),
			datum.String(name),
			datum.Int(int64(d*1000 + 1)),
			datum.String(region),
		})
	}
	if err := db.InsertRows("department", depts); err != nil {
		return nil, err
	}

	emps := make([]datum.Row, 0, cfg.Departments*cfg.EmpsPerDept)
	for d := 1; d <= cfg.Departments; d++ {
		for i := 1; i <= cfg.EmpsPerDept; i++ {
			empno := int64(d*1000 + i)
			emps = append(emps, datum.Row{
				datum.Int(empno),
				datum.String(fmt.Sprintf("emp%07d", empno)),
				datum.Int(int64(d)),
				datum.Float(20000 + float64(rng.Intn(80000))),
				datum.Int(int64(rng.Intn(20))),
			})
		}
	}
	if err := db.InsertRows("employee", emps); err != nil {
		return nil, err
	}

	sales := make([]datum.Row, 0, cfg.Departments*cfg.SalesPerDept)
	id := int64(0)
	for d := 1; d <= cfg.Departments; d++ {
		for i := 0; i < cfg.SalesPerDept; i++ {
			id++
			sales = append(sales, datum.Row{
				datum.Int(id),
				datum.Int(int64(d)),
				datum.Float(float64(rng.Intn(10000)) / 10),
				datum.Int(int64(1990 + rng.Intn(5))),
			})
		}
	}
	if err := db.InsertRows("sales", sales); err != nil {
		return nil, err
	}

	orders := make([]datum.Row, 0, cfg.Departments*cfg.OrdersPerDept)
	id = 0
	for d := 1; d <= cfg.Departments; d++ {
		for i := 0; i < cfg.OrdersPerDept; i++ {
			id++
			orders = append(orders, datum.Row{
				datum.Int(id),
				datum.Int(int64(d)),
				datum.Float(float64(rng.Intn(10000)) / 10),
			})
		}
	}
	if err := db.InsertRows("orders", orders); err != nil {
		return nil, err
	}
	db.Analyze()
	return db, nil
}

// Experiment is one Table 1 row.
type Experiment struct {
	ID    string
	Name  string
	Query string
	// Regime explains which of the paper's regimes the workload
	// reconstructs and the expected shape.
	Regime string
}

// Experiments returns the eight Table 1 experiments A–H.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:   "A",
			Name: "single-department lookup, indexed view",
			Query: `SELECT d.deptname, v.avgsal FROM department d, avgSalary v
			        WHERE d.deptno = v.workdept AND d.deptname = 'Planning'`,
			Regime: "one outer row, cheap indexed per-invocation: both rewrites " +
				"beat Original by orders of magnitude; Correlated edges out EMST " +
				"(paper: 0.40 vs 0.47)",
		},
		{
			ID:   "B",
			Name: "few bindings with repeats, indexed fact view",
			Query: `SELECT e.empname, v.total FROM employee e, deptSales v
			        WHERE e.workdept = v.deptno AND e.empno < 1030`,
			Regime: "a handful of outer rows sharing FEW distinct bindings: EMST " +
				"evaluates once per binding, Correlated once per row " +
				"(paper: 2.12 vs 0.28)",
		},
		{
			ID:   "C",
			Name: "several bindings over an UNindexed fact view",
			Query: `SELECT d.deptname, v.total FROM department d, deptOrders v
			        WHERE d.deptno = v.deptno AND d.deptno < 7`,
			Regime: "per-invocation cost is a full fact-table scan (no index on " +
				"orders.deptno): Correlated is several times WORSE than Original " +
				"while EMST still wins (paper: 513 vs 50)",
		},
		{
			ID:   "D",
			Name: "wide outer over an UNindexed joining view",
			Query: `SELECT d.deptname, v.total FROM department d, deptOrdersJ v
			        WHERE d.deptno = v.deptno AND d.deptno <= 120`,
			Regime: "most departments qualify, so magic barely restricts (EMST ~ " +
				"Original) while Correlated re-scans orders per row " +
				"(paper: 5136 vs 109)",
		},
		{
			ID:   "E",
			Name: "medium outer with duplicate bindings, indexed view",
			Query: `SELECT e.empname, v.total FROM employee e, deptSales v
			        WHERE e.workdept = v.deptno AND (e.empno < 1013 OR e.empno > 149000)`,
			Regime: "tens of outer rows over ~a dozen distinct bindings, indexed: " +
				"Correlated beats Original but repeats work per duplicate; EMST " +
				"shares it (paper: 52.6 vs 7.6)",
		},
		{
			ID:   "F",
			Name: "single-row outer, very cheap view",
			Query: `SELECT d.deptname, v.headcount FROM department d, avgSalary v
			        WHERE d.deptno = v.workdept AND d.deptno = 3`,
			Regime: "one binding over a small view: rewrite overheads dominate and " +
				"Correlated's leaner machinery edges out EMST (paper: 0.54 vs 0.84)",
		},
		{
			ID:   "G",
			Name: "the paper's query D shape (Example 1.1)",
			Query: `SELECT d.deptname, v.deptno, v.avgamount FROM department d, deptAvgSales v
			        WHERE d.deptno = v.deptno AND d.deptname = 'Planning'`,
			Regime: "a query isomorphic to the paper's D: selective department " +
				"filter over an aggregate view; EMST ~2.5 orders of magnitude " +
				"better than Original (paper: 2.41 vs 0.49)",
		},
		{
			ID:   "H",
			Name: "two-level view nesting with duplicate inner bindings",
			Query: `SELECT v.region, v.totalsal FROM regionPay v
			        WHERE v.region = 'R03'`,
			Regime: "magic descends two view levels (region -> employees -> " +
				"avgSalary); Correlated re-evaluates the inner aggregate once per " +
				"employee, EMST once per distinct department (paper: 19.9 vs 4.5)",
		},
	}
}

// Measurement is one (experiment, strategy) timing.
type Measurement struct {
	Strategy engine.Strategy
	Elapsed  time.Duration
	Rows     int
	Counters exec.Counters
	UsedEMST bool
}

// Run prepares the experiment once under the strategy and reports the
// fastest of reps executions (minimum is the standard noise filter for
// microbenchmarks).
func Run(db *engine.Database, e Experiment, strategy engine.Strategy, reps int) (Measurement, error) {
	p, err := db.Prepare(e.Query, strategy)
	if err != nil {
		return Measurement{}, fmt.Errorf("experiment %s (%v): %w", e.ID, strategy, err)
	}
	if reps < 1 {
		reps = 1
	}
	best := Measurement{Strategy: strategy, Elapsed: 1<<62 - 1}
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := p.Execute()
		elapsed := time.Since(start)
		if err != nil {
			return Measurement{}, fmt.Errorf("experiment %s (%v): %w", e.ID, strategy, err)
		}
		if elapsed < best.Elapsed {
			best.Elapsed = elapsed
			best.Rows = len(res.Rows)
			best.Counters = res.Plan.Counters
			best.UsedEMST = res.Plan.UsedEMST
		}
	}
	return best, nil
}

// Row1 is one normalized Table 1 row.
type Row1 struct {
	Experiment Experiment
	// Original, Correlated, EMST are elapsed times normalized to
	// Original = 100 (the paper's presentation).
	Original, Correlated, EMST float64
	// Raw holds the underlying measurements keyed by strategy.
	Raw map[engine.Strategy]Measurement
}

// Table1 runs all experiments under all three strategies and normalizes.
func Table1(db *engine.Database, reps int) ([]Row1, error) {
	var out []Row1
	for _, e := range Experiments() {
		row := Row1{Experiment: e, Raw: map[engine.Strategy]Measurement{}}
		for _, s := range []engine.Strategy{engine.Original, engine.Correlated, engine.EMST} {
			m, err := Run(db, e, s, reps)
			if err != nil {
				return nil, err
			}
			row.Raw[s] = m
		}
		base := row.Raw[engine.Original].Elapsed.Seconds()
		if base <= 0 {
			base = 1e-9
		}
		row.Original = 100
		row.Correlated = 100 * row.Raw[engine.Correlated].Elapsed.Seconds() / base
		row.EMST = 100 * row.Raw[engine.EMST].Elapsed.Seconds() / base
		out = append(out, row)
	}
	return out, nil
}

// FormatTable renders rows in the paper's Table 1 layout.
func FormatTable(rows []Row1) string {
	s := fmt.Sprintf("%-6s %12s %12s %12s\n", "Query", "Original", "Correlated", "EMST")
	for _, r := range rows {
		s += fmt.Sprintf("Exp %-2s %12.2f %12.2f %12.2f\n",
			r.Experiment.ID, r.Original, r.Correlated, r.EMST)
	}
	return s
}
