package bench

import (
	"fmt"
	"time"

	"starmagic/internal/core"
	"starmagic/internal/engine"
	"starmagic/internal/exec"
	"starmagic/internal/qgm"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
)

// Ablation study: measure the contribution of the individual design
// decisions the paper argues for by turning them off one at a time on the
// experiments where they matter:
//
//   - supplementary-magic-boxes (step 4a) factor the join-order prefix so
//     the magic table does not recompute it;
//   - distinct pull-up lets phase 3 merge the magic boxes away;
//   - phase-3 simplification itself ("deductive database implementations
//     of magic-sets do not optimize the graph any further", §1);
//   - cost-based join orders for adornment (§2/§3.2: deductive systems
//     "don't do any cost-based optimization to determine the join orders
//     needed for magic-sets").
type AblationVariant struct {
	Name      string
	Ablations core.Ablations
}

// AblationVariants lists the measured configurations.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full EMST"},
		{Name: "no supplementary", Ablations: core.Ablations{NoSupplementary: true}},
		{Name: "no distinct pull-up", Ablations: core.Ablations{NoDistinctPullup: true}},
		{Name: "no phase-3 cleanup", Ablations: core.Ablations{NoPhase3: true}},
		{Name: "declaration-order sips", Ablations: core.Ablations{DeclarationOrderSIPS: true}},
	}
}

// AblationRow reports one (experiment, variant) measurement. The variant
// plan is always executed (no cost-comparison fallback) so the ablated
// transformation itself is what is measured.
type AblationRow struct {
	Experiment string
	Variant    string
	Elapsed    time.Duration
	Boxes      int
	Joins      int
	Counters   exec.Counters
}

// ablationExperiments adds "S" to the Table 1 set: the query-D shape with
// the VIEW declared first in FROM. With cost-based sips the optimizer still
// orders department before the view and magic applies; with declaration-
// order sips nothing precedes the view, no bindings exist, and the
// transformation degenerates to the original plan — the paper's §2 argument
// for cost-based join orders ("the choice of the join-order is very
// important for an efficient transformation, and is one of the weak points
// of all implementations of magic in deductive databases").
func ablationExperiments() []Experiment {
	return append(Experiments(), Experiment{
		ID:   "S",
		Name: "bad declaration order (sips sensitivity)",
		Query: `SELECT d.deptname, v.avgamount
		        FROM employee e, deptAvgSales v, department d
		        WHERE e.workdept = v.deptno AND v.deptno = d.deptno
		          AND d.deptname = 'Planning' AND e.jobcode = 3`,
		Regime: "the selective department filter is declared AFTER the view: " +
			"declaration-order sips can only feed the magic table from the " +
			"unselective employee side (every department), while cost-based " +
			"sips order department first and magic restricts to one department",
	})
}

// RunAblations measures every variant on the given experiments.
func RunAblations(db *engine.Database, experimentIDs []string, reps int) ([]AblationRow, error) {
	wanted := map[string]bool{}
	for _, id := range experimentIDs {
		wanted[id] = true
	}
	var out []AblationRow
	for _, e := range ablationExperiments() {
		if !wanted[e.ID] {
			continue
		}
		for _, v := range AblationVariants() {
			row, err := runAblation(db, e, v, reps)
			if err != nil {
				return nil, fmt.Errorf("exp %s / %s: %w", e.ID, v.Name, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func runAblation(db *engine.Database, e Experiment, v AblationVariant, reps int) (AblationRow, error) {
	q, err := sql.ParseQuery(e.Query)
	if err != nil {
		return AblationRow{}, err
	}
	g, err := semant.NewBuilder(db.Catalog()).Build(q)
	if err != nil {
		return AblationRow{}, err
	}
	res, err := core.Optimize(g, core.Options{Ablations: v.Ablations})
	if err != nil {
		return AblationRow{}, err
	}
	// Execute the transformed graph itself (g), not the fallback, so the
	// ablated transformation is what is measured.
	plan := g
	if err := plan.Check(); err != nil {
		return AblationRow{}, err
	}
	_ = res
	stats := plan.Stats()
	row := AblationRow{
		Experiment: e.ID,
		Variant:    v.Name,
		Boxes:      stats.Boxes,
		Joins:      stats.Joins,
		Elapsed:    1<<62 - 1,
	}
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < reps; i++ {
		ev := exec.New(db.Store())
		start := time.Now()
		if _, err := ev.EvalGraph(plan); err != nil {
			return AblationRow{}, err
		}
		if d := time.Since(start); d < row.Elapsed {
			row.Elapsed = d
			row.Counters = ev.Counters
		}
	}
	return row, nil
}

// FormatAblations renders the study, normalizing elapsed times to the full
// EMST variant of each experiment (= 100).
func FormatAblations(rows []AblationRow) string {
	base := map[string]float64{}
	for _, r := range rows {
		if r.Variant == "full EMST" {
			base[r.Experiment] = r.Elapsed.Seconds()
		}
	}
	s := fmt.Sprintf("%-6s %-24s %10s %7s %7s %12s %12s\n",
		"Query", "variant", "time", "boxes", "joins", "base-rows", "output-rows")
	for _, r := range rows {
		norm := 100.0
		if b := base[r.Experiment]; b > 0 {
			norm = 100 * r.Elapsed.Seconds() / b
		}
		s += fmt.Sprintf("Exp %-2s %-24s %10.2f %7d %7d %12d %12d\n",
			r.Experiment, r.Variant, norm, r.Boxes, r.Joins, r.Counters.BaseRows, r.Counters.OutputRows)
	}
	return s
}

// Helpers for ablation tests.

func buildFor(db *engine.Database, query string) (*qgm.Graph, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return semant.NewBuilder(db.Catalog()).Build(q)
}

func optimizeWith(g *qgm.Graph, v AblationVariant) (*core.Result, error) {
	return core.Optimize(g, core.Options{Ablations: v.Ablations})
}

func newEval(db *engine.Database) *exec.Evaluator { return exec.New(db.Store()) }
