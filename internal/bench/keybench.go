package bench

import (
	"math"
	"strings"

	"starmagic/internal/datum"
)

// LegacyRowKey is the seed's string row-key encoder, preserved verbatim as
// the baseline for BenchmarkRowKey and BENCH_1.json: a strings.Builder pass
// with NUL-terminated, NUL-escaped fields. It allocates per row and — the
// bug fixed by datum.AppendKey — can collide when an escaped NUL is followed
// by bytes that mimic a numeric record (see datum.TestRowKeyCollisionRegression).
func LegacyRowKey(r datum.Row) string {
	var sb strings.Builder
	for _, d := range r {
		legacyKeyDatum(&sb, d)
	}
	return sb.String()
}

func legacyKeyDatum(sb *strings.Builder, d datum.D) {
	if d.IsNull() {
		sb.WriteByte(0xff)
		sb.WriteByte(0)
		return
	}
	switch d.T {
	case datum.TInt, datum.TFloat:
		f := d.AsFloat()
		bits := math.Float64bits(f + 0)
		sb.WriteByte(1)
		for i := 0; i < 8; i++ {
			sb.WriteByte(byte(bits >> (8 * i)))
		}
	case datum.TString:
		sb.WriteByte(2)
		s := d.S
		for i := 0; i < len(s); i++ {
			if s[i] == 0 {
				sb.WriteByte(0)
				sb.WriteByte(1)
			} else {
				sb.WriteByte(s[i])
			}
		}
	case datum.TBool:
		sb.WriteByte(3)
		if d.B {
			sb.WriteByte(1)
		} else {
			sb.WriteByte(2)
		}
	}
	sb.WriteByte(0)
}

// KeyRows returns n deterministic rows mixing the shapes the executor hashes
// in practice: ints, floats, short and longer strings, bools, and NULLs.
func KeyRows(n int) []datum.Row {
	names := []string{"alice", "bob", "carol", "a longer employee name", ""}
	rows := make([]datum.Row, n)
	for i := range rows {
		rows[i] = datum.Row{
			datum.Int(int64(i)),
			datum.String(names[i%len(names)]),
			datum.Float(float64(i%97) / 3),
			datum.Bool(i%2 == 0),
		}
		if i%11 == 0 {
			rows[i][2] = datum.NullOf(datum.TFloat)
		}
	}
	return rows
}
