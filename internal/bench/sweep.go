package bench

import (
	"fmt"
	"time"

	"starmagic/internal/engine"
)

// Sweep traces the regime boundary the paper's Table 1 samples pointwise:
// the experiment-C query with the outer width (number of departments whose
// rows reach the view) varied from one department to most of them. As the
// width grows, Correlated crosses from beating Original to collapsing,
// while EMST degrades gracefully toward Original — the crossover the
// paper's stability argument is about.
type SweepPoint struct {
	// Width is the number of departments bound into the view.
	Width int
	// Original, Correlated, EMST are normalized elapsed times
	// (Original = 100).
	Original, Correlated, EMST float64
	// UsedEMST reports whether the cost comparison committed to the magic
	// plan at this width.
	UsedEMST bool
}

// Sweep measures the normalized times at each width over the unindexed
// orders fact table.
func Sweep(db *engine.Database, widths []int, reps int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, w := range widths {
		e := Experiment{
			ID:   fmt.Sprintf("W%d", w),
			Name: "sweep",
			Query: fmt.Sprintf(`SELECT d.deptname, v.total FROM department d, deptOrders v
				WHERE d.deptno = v.deptno AND d.deptno <= %d`, w),
		}
		pt := SweepPoint{Width: w}
		var base time.Duration
		for _, s := range []engine.Strategy{engine.Original, engine.Correlated, engine.EMST} {
			m, err := Run(db, e, s, reps)
			if err != nil {
				return nil, fmt.Errorf("width %d %v: %w", w, s, err)
			}
			switch s {
			case engine.Original:
				base = m.Elapsed
				pt.Original = 100
			case engine.Correlated:
				pt.Correlated = 100 * m.Elapsed.Seconds() / base.Seconds()
			case engine.EMST:
				pt.EMST = 100 * m.Elapsed.Seconds() / base.Seconds()
				pt.UsedEMST = m.UsedEMST
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatSweep renders the sweep as an aligned table.
func FormatSweep(points []SweepPoint) string {
	s := fmt.Sprintf("%-7s %10s %12s %10s %10s\n", "width", "Original", "Correlated", "EMST", "emst-plan")
	for _, p := range points {
		s += fmt.Sprintf("%-7d %10.2f %12.2f %10.2f %10v\n",
			p.Width, p.Original, p.Correlated, p.EMST, p.UsedEMST)
	}
	return s
}
