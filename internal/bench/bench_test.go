package bench

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"starmagic/internal/engine"
)

// testConfig is a reduced size that keeps tests fast while preserving the
// regime ratios.
func testConfig() Config {
	return Config{Departments: 60, EmpsPerDept: 12, SalesPerDept: 50, OrdersPerDept: 50, Seed: 1994}
}

func benchDB(t *testing.T) *engine.Database {
	t.Helper()
	db, err := NewDB(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// work is the deterministic cost proxy used to validate Table 1 shapes
// without depending on wall-clock noise.
func work(m Measurement) int64 {
	c := m.Counters
	return c.BaseRows + c.OutputRows + c.HashProbes + c.IndexLookups
}

func measureAll(t *testing.T, db *engine.Database, e Experiment) map[engine.Strategy]Measurement {
	t.Helper()
	out := map[engine.Strategy]Measurement{}
	for _, s := range []engine.Strategy{engine.Original, engine.Correlated, engine.EMST} {
		m, err := Run(db, e, s, 1)
		if err != nil {
			t.Fatalf("exp %s %v: %v", e.ID, s, err)
		}
		out[s] = m
	}
	return out
}

func resultRows(t *testing.T, db *engine.Database, e Experiment, s engine.Strategy) []string {
	t.Helper()
	p, err := db.Prepare(e.Query, s)
	if err != nil {
		t.Fatalf("exp %s %v: %v", e.ID, s, err)
	}
	res, err := p.Execute()
	if err != nil {
		t.Fatalf("exp %s %v: %v", e.ID, s, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.Format()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

// TestExperimentsAgreeAcrossStrategies: Table 1 is only meaningful if all
// three strategies compute identical answers.
func TestExperimentsAgreeAcrossStrategies(t *testing.T) {
	db := benchDB(t)
	for _, e := range Experiments() {
		want := resultRows(t, db, e, engine.Original)
		if len(want) == 0 {
			t.Errorf("exp %s returns no rows; weak experiment", e.ID)
		}
		for _, s := range []engine.Strategy{engine.Correlated, engine.EMST} {
			got := resultRows(t, db, e, s)
			if strings.Join(got, ";") != strings.Join(want, ";") {
				t.Errorf("exp %s: %v disagrees with Original\ngot  %v\nwant %v", e.ID, s, got, want)
			}
		}
	}
}

// TestTable1Shapes validates the paper's qualitative shape for every row
// using the deterministic work metric.
func TestTable1Shapes(t *testing.T) {
	db := benchDB(t)
	byID := map[string]map[engine.Strategy]Measurement{}
	for _, e := range Experiments() {
		byID[e.ID] = measureAll(t, db, e)
	}
	orig := func(id string) int64 { return work(byID[id][engine.Original]) }
	corr := func(id string) int64 { return work(byID[id][engine.Correlated]) }
	emst := func(id string) int64 { return work(byID[id][engine.EMST]) }

	// A and F: one-row outer — both rewrites crush Original.
	for _, id := range []string{"A", "F"} {
		if corr(id)*5 > orig(id) {
			t.Errorf("exp %s: correlated should be >5x better: %d vs %d", id, corr(id), orig(id))
		}
		if emst(id)*5 > orig(id) {
			t.Errorf("exp %s: EMST should be >5x better: %d vs %d", id, emst(id), orig(id))
		}
	}
	// B and E: EMST < Correlated < Original (duplicate bindings).
	for _, id := range []string{"B", "E"} {
		if !(emst(id) < corr(id) && corr(id) < orig(id)) {
			t.Errorf("exp %s: want EMST < Correlated < Original, got %d / %d / %d",
				id, emst(id), corr(id), orig(id))
		}
	}
	// C: correlation collapses (worse than Original); EMST still wins.
	if corr("C") < 2*orig("C") {
		t.Errorf("exp C: correlated should collapse: %d vs %d", corr("C"), orig("C"))
	}
	if emst("C") >= orig("C") {
		t.Errorf("exp C: EMST should beat original: %d vs %d", emst("C"), orig("C"))
	}
	// D: correlation far worse; EMST roughly at par (within 2x).
	if corr("D") < 5*orig("D") {
		t.Errorf("exp D: correlated should collapse hard: %d vs %d", corr("D"), orig("D"))
	}
	if emst("D") > 2*orig("D") {
		t.Errorf("exp D: EMST should stay near par: %d vs %d", emst("D"), orig("D"))
	}
	// G: the paper's headline — EMST orders of magnitude better.
	if emst("G")*10 > orig("G") {
		t.Errorf("exp G: EMST should be >10x better: %d vs %d", emst("G"), orig("G"))
	}
	// H: both rewrites beat Original; EMST beats Correlated.
	if !(emst("H") < corr("H") && corr("H") < orig("H")) {
		t.Errorf("exp H: want EMST < Correlated < Original, got %d / %d / %d",
			emst("H"), corr("H"), orig("H"))
	}
}

// TestCorrelatedIsUnstable pins the paper's headline claim: across the
// suite, correlation swings from far better to far worse than Original,
// while EMST never collapses.
func TestCorrelatedIsUnstable(t *testing.T) {
	db := benchDB(t)
	var corrRatios, emstRatios []float64
	for _, e := range Experiments() {
		ms := measureAll(t, db, e)
		o := float64(work(ms[engine.Original]))
		corrRatios = append(corrRatios, float64(work(ms[engine.Correlated]))/o)
		emstRatios = append(emstRatios, float64(work(ms[engine.EMST]))/o)
	}
	minMax := func(v []float64) (float64, float64) {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return lo, hi
	}
	cLo, cHi := minMax(corrRatios)
	_, eHi := minMax(emstRatios)
	if cHi/cLo < 20 {
		t.Errorf("correlated should be unstable: ratios span only %.1fx (%.3f..%.3f)", cHi/cLo, cLo, cHi)
	}
	if eHi > 2.0 {
		t.Errorf("EMST should never collapse: worst ratio %.2f", eHi)
	}
}

func TestTable1Runs(t *testing.T) {
	db := benchDB(t)
	rows, err := Table1(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Original != 100 {
			t.Errorf("exp %s: original not normalized to 100", r.Experiment.ID)
		}
		if r.Correlated <= 0 || r.EMST <= 0 {
			t.Errorf("exp %s: non-positive normalized times", r.Experiment.ID)
		}
	}
	text := FormatTable(rows)
	if !strings.Contains(text, "Exp A") || !strings.Contains(text, "Exp H") {
		t.Errorf("table format:\n%s", text)
	}
}

func TestConfigScaling(t *testing.T) {
	c := DefaultConfig().WithScale(2)
	if c.EmpsPerDept != 80 || c.SalesPerDept != 300 {
		t.Errorf("scaling wrong: %+v", c)
	}
	if c2 := DefaultConfig().WithScale(0); c2.EmpsPerDept != 40 {
		t.Errorf("scale 0 should clamp to 1")
	}
}

// TestAblations verifies every ablated variant still computes the correct
// answer and exhibits the structural effect it disables: no-phase-3 leaves
// more boxes; no distinct pull-up leaves enforced DISTINCT magic boxes.
func TestAblations(t *testing.T) {
	db := benchDB(t)
	rows, err := RunAblations(db, []string{"G", "H"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	boxes := map[string]map[string]int{}
	for _, r := range rows {
		if boxes[r.Experiment] == nil {
			boxes[r.Experiment] = map[string]int{}
		}
		boxes[r.Experiment][r.Variant] = r.Boxes
	}
	for exp, byVariant := range boxes {
		if byVariant["no phase-3 cleanup"] <= byVariant["full EMST"] {
			t.Errorf("exp %s: phase-3 cleanup should reduce boxes (%d vs %d raw)",
				exp, byVariant["full EMST"], byVariant["no phase-3 cleanup"])
		}
	}
	// Results must agree with the Original strategy for every variant.
	for _, e := range Experiments() {
		if e.ID != "G" {
			continue
		}
		want := strings.Join(resultRows(t, db, e, engine.Original), ";")
		for _, v := range AblationVariants() {
			g, err := buildFor(db, e.Query)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := optimizeWith(g, v); err != nil {
				t.Fatal(err)
			}
			ev := newEval(db)
			got, err := ev.EvalGraph(g)
			if err != nil {
				t.Fatalf("%s: %v", v.Name, err)
			}
			rendered := make([]string, len(got))
			for i, r := range got {
				parts := make([]string, len(r))
				for j, d := range r {
					parts[j] = d.Format()
				}
				rendered[i] = strings.Join(parts, "|")
			}
			sort.Strings(rendered)
			gotS := strings.Join(rendered, ";")
			if gotS != want {
				t.Errorf("exp G variant %q: results differ\ngot  %s\nwant %s", v.Name, gotS, want)
			}
		}
	}
}

// TestSipsAblation pins the §2 claim that cost-based join orders are what
// make magic effective: with declaration-order sips and the view first in
// FROM, no bindings exist and the transformation does not restrict; with
// cost-based sips the outer table is ordered first and magic applies.
func TestSipsAblation(t *testing.T) {
	db := benchDB(t)
	rows, err := RunAblations(db, []string{"S"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var full, decl AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "full EMST":
			full = r
		case "declaration-order sips":
			decl = r
		}
	}
	if full.Counters.OutputRows*2 > decl.Counters.OutputRows {
		t.Errorf("cost-based sips should restrict far more: %d vs %d output rows",
			full.Counters.OutputRows, decl.Counters.OutputRows)
	}
}

// TestSweepCrossover: correlated execution must cross from sub-par at
// width 1 to a multiple of Original at wide widths, while EMST stays at or
// below roughly par everywhere. The assertions use the deterministic work
// metric; wall-clock sweeps are for cmd/table1 -sweep.
func TestSweepCrossover(t *testing.T) {
	db := benchDB(t)
	type ratios struct{ corr, emst float64 }
	var pts []ratios
	for _, w := range []int{1, 20, 55} {
		e := Experiment{
			ID:   "W",
			Name: "sweep",
			Query: fmt.Sprintf(`SELECT d.deptname, v.total FROM department d, deptOrders v
				WHERE d.deptno = v.deptno AND d.deptno <= %d`, w),
		}
		ms := measureAll(t, db, e)
		o := float64(work(ms[engine.Original]))
		pts = append(pts, ratios{
			corr: float64(work(ms[engine.Correlated])) / o,
			emst: float64(work(ms[engine.EMST])) / o,
		})
	}
	if pts[0].corr > pts[2].corr {
		t.Errorf("correlated should degrade with width: %.2f -> %.2f", pts[0].corr, pts[2].corr)
	}
	if pts[2].corr < 1.5 {
		t.Errorf("correlated should collapse at wide width: %.2f", pts[2].corr)
	}
	for i, p := range pts {
		if p.emst > 1.6 {
			t.Errorf("EMST collapsed at point %d: %.2f", i, p.emst)
		}
	}
	// Exercise the wall-clock sweep path once for coverage.
	sw, err := Sweep(db, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatSweep(sw), "width") {
		t.Error("format missing header")
	}
}
