package qgm

import (
	"fmt"
	"strings"
)

// DumpDOT renders the graph in Graphviz DOT format, drawing the paper's
// figures: boxes as nodes (select/group-by/union/base shapes, magic roles
// shaded), quantifier edges labeled with the quantifier name and type, and
// dashed edges for magic links.
func (g *Graph) DumpDOT(title string) string {
	var sb strings.Builder
	sb.WriteString("digraph qgm {\n")
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n")
	if title != "" {
		fmt.Fprintf(&sb, "  label=%q; labelloc=t;\n", title)
	}
	seen := map[*Box]bool{}
	var emit func(b *Box)
	emit = func(b *Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		fmt.Fprintf(&sb, "  b%d [label=%q%s];\n", b.ID, dotLabel(b), dotStyle(b))
		for _, q := range b.OrderedQuantifiers() {
			emit(q.Ranges)
			fmt.Fprintf(&sb, "  b%d -> b%d [label=\"%s:%s\"];\n", b.ID, q.Ranges.ID, q.Name, q.Type)
		}
		if b.MagicBox != nil {
			emit(b.MagicBox)
			fmt.Fprintf(&sb, "  b%d -> b%d [style=dashed, label=\"magic\"];\n", b.ID, b.MagicBox.ID)
		}
	}
	emit(g.Top)
	sb.WriteString("}\n")
	return sb.String()
}

func dotLabel(b *Box) string {
	label := b.Name
	if label == "" {
		label = b.Kind.String()
	}
	if b.Adornment != "" {
		label += "^" + b.Adornment
	}
	var extra []string
	if b.Kind == KindGroupBy {
		extra = append(extra, "GROUP BY")
	}
	if b.Distinct == DistinctEnforce {
		extra = append(extra, "DISTINCT")
	}
	if r := b.Role.String(); r != "" {
		extra = append(extra, r)
	}
	if len(extra) > 0 {
		label += "\\n" + strings.Join(extra, " ")
	}
	return label
}

func dotStyle(b *Box) string {
	switch {
	case b.Kind == KindBaseTable:
		return ", shape=cylinder"
	case b.Role == RoleMagic || b.Role == RoleCondMagic:
		return ", shape=box, style=filled, fillcolor=lightyellow"
	case b.Role == RoleSuppMagic:
		return ", shape=box, style=filled, fillcolor=lightblue"
	case b.Kind == KindGroupBy:
		return ", shape=box, style=rounded"
	default:
		return ", shape=box"
	}
}
