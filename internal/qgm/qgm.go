// Package qgm implements the Query Graph Model of Pirahesh, Hellerstein and
// Hasan [PHH92], as described in §2 of the paper. A query is a graph of
// boxes; each box is a unit of evaluation (select, group-by, union,
// intersect, except, or base table) containing quantifiers that range over
// other boxes. Predicates and output columns are expressions over quantifier
// columns; correlation is an expression in one box referencing a quantifier
// of an ancestor box.
//
// The magic-sets transformation (internal/core) annotates boxes with
// adornments and magic roles; the rewrite rules (internal/rewrite), plan
// optimizer (internal/opt) and executor (internal/exec) all operate on this
// representation.
package qgm

import (
	"fmt"

	"starmagic/internal/catalog"
)

// BoxKind enumerates box operation types. New kinds may be registered by
// extensions; see the AMQ/NMQ registry in internal/core.
type BoxKind uint8

// Built-in box kinds.
const (
	KindBaseTable BoxKind = iota
	KindSelect
	KindGroupBy
	KindUnion
	KindIntersect
	KindExcept
	// KindExtensionStart is the first kind value available to extensions.
	KindExtensionStart BoxKind = 64
)

func (k BoxKind) String() string {
	switch k {
	case KindBaseTable:
		return "base"
	case KindSelect:
		return "select"
	case KindGroupBy:
		return "groupby"
	case KindUnion:
		return "union"
	case KindIntersect:
		return "intersect"
	case KindExcept:
		return "except"
	}
	return fmt.Sprintf("ext(%d)", uint8(k))
}

// MagicRole classifies the special box types introduced by the EMST rule
// (§4.1). Regular boxes have RoleNone.
type MagicRole uint8

// Magic roles.
const (
	RoleNone MagicRole = iota
	// RoleMagic marks a magic-box: it feeds the magic table of an adorned
	// box and is never itself processed by the EMST rule.
	RoleMagic
	// RoleCondMagic marks a condition-magic-box, created when the adornment
	// contains a 'c'; unlike a magic-box it IS processed by EMST and may be
	// grounded later.
	RoleCondMagic
	// RoleSuppMagic marks a supplementary-magic-box, a common subexpression
	// holding the prefix of a join order.
	RoleSuppMagic
)

func (r MagicRole) String() string {
	switch r {
	case RoleNone:
		return ""
	case RoleMagic:
		return "magic"
	case RoleCondMagic:
		return "cond-magic"
	case RoleSuppMagic:
		return "supp-magic"
	}
	return "?"
}

// DistinctMode is the duplicate-handling property of a box output.
type DistinctMode uint8

// Distinct modes. The distinction between Enforce and Permit is what lets
// the distinct pull-up rule drop the DISTINCT from magic tables when
// duplicates provably cannot occur (paper, Example 4.1 phase 3).
const (
	// DistinctPreserve: duplicates in equal measure must be preserved
	// (SQL bag semantics; the default).
	DistinctPreserve DistinctMode = iota
	// DistinctEnforce: the box must eliminate duplicates.
	DistinctEnforce
	// DistinctPermit: duplicates may be eliminated or kept freely — the
	// consumer is insensitive (e.g. a magic table).
	DistinctPermit
)

func (m DistinctMode) String() string {
	switch m {
	case DistinctPreserve:
		return "preserve"
	case DistinctEnforce:
		return "enforce"
	case DistinctPermit:
		return "permit"
	}
	return "?"
}

// QType is a quantifier type: F (for-each, i.e. join), E (existential — the
// box row qualifies if some subquery row satisfies the quantifier's match
// predicates), A (universal — the row qualifies if every subquery row
// satisfies them), and S (scalar — the subquery must yield at most one row,
// whose columns are read like a table's).
type QType uint8

// Quantifier types.
const (
	ForEach QType = iota
	Exists
	ForAll
	Scalar
)

func (t QType) String() string {
	switch t {
	case ForEach:
		return "F"
	case Exists:
		return "E"
	case ForAll:
		return "A"
	case Scalar:
		return "S"
	}
	return "?"
}

// Quantifier is a table reference inside a box (§2): a vertex of the box's
// mini-graph, ranging over another box.
type Quantifier struct {
	ID     int
	Name   string // display name (SQL alias)
	Type   QType
	Ranges *Box
	Parent *Box
}

// Col returns a column-reference expression over output ordinal ord of the
// quantifier's ranged box.
func (q *Quantifier) Col(ord int) *ColRef { return &ColRef{Q: q, Ord: ord} }

// OutputCol is one output column of a box. Expr defines the column for
// select boxes; base-table, group-by, and set-operation boxes compute
// outputs positionally (Expr nil) and carry only the Type. For group-by
// boxes the convention is: outputs 0..len(GroupBy)-1 are the grouping
// expressions, followed by one output per AggSpec.
type OutputCol struct {
	Name string
	Expr Expr
	Type typeAlias
}

// AggSpec is one aggregate computed by a group-by box.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

// AggKind re-exports the datum aggregate kinds to keep qgm's surface
// self-contained.
type AggKind = aggKindAlias

// Box is one QGM box: a unit of evaluation.
type Box struct {
	ID   int
	Kind BoxKind
	Name string

	// Quantifiers are the table references of this box, in FROM-clause
	// order. The plan optimizer's join order for the box is stored
	// separately (JoinOrder).
	Quantifiers []*Quantifier

	// Preds is the conjunctive predicate set (WHERE clause for select
	// boxes). Group-by boxes carry no predicates (the paper's group-by
	// triplet keeps selections out of the grouping box).
	Preds []Expr

	// Output is the projection. For base tables: the table columns. For
	// set-operation boxes: positional columns typed from the first input.
	Output []OutputCol

	Distinct DistinctMode

	// GroupBy and Aggs are set for group-by boxes; Output of a group-by box
	// must be exactly the grouping columns followed by the aggregates.
	GroupBy []Expr
	Aggs    []AggSpec

	// Table is set for base-table boxes.
	Table *catalog.Table

	// JoinOrder, when non-nil, is the quantifier order chosen by the plan
	// optimizer (indexes into Quantifiers). The EMST rule consumes it
	// (§3.2); the executor uses it for pipelined joins.
	JoinOrder []int

	// Magic-sets metadata (§4.1):
	Role      MagicRole
	Adornment string
	// MagicBox links an NMQ box to its magic box so descendants can pull
	// the restriction down (§4.4 step 4c). For AMQ boxes the magic
	// quantifier is inserted directly instead.
	MagicBox *Box
	// MagicCols maps each bound ('b' or 'c') position of the adornment to
	// the output ordinal of MagicBox (or of the magic quantifier's box)
	// that carries it.
	MagicCols []MagicCol

	// Recursive marks the fixpoint root of a recursive view: the box's
	// subtree references the box itself, and the executor evaluates it by
	// naive iteration to a fixpoint (set semantics). Rewrite rules that
	// would detach or duplicate the fixpoint root skip recursive boxes.
	Recursive bool

	// Origin points to the box this one was copied from when EMST created
	// an adorned copy; the copy cache uses it to share copies (and union
	// their magic tables) across consumers with the same adornment.
	Origin *Box
}

// MagicCol says: output column BoxOrd of the adorned box is restricted by
// output column MagicOrd of the magic table, with the given comparison
// (always EQ for 'b' adornments; 'c' adornments carry conditions).
type MagicCol struct {
	BoxOrd   int
	MagicOrd int
}

// IsMagic reports whether the box is one of the three special EMST box
// types.
func (b *Box) IsMagic() bool { return b.Role != RoleNone }

// QuantifierByName finds a quantifier by display name.
func (b *Box) QuantifierByName(name string) *Quantifier {
	for _, q := range b.Quantifiers {
		if q.Name == name {
			return q
		}
	}
	return nil
}

// OutputIndex returns the ordinal of the named output column, or -1.
func (b *Box) OutputIndex(name string) int {
	for i, c := range b.Output {
		if equalFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// OrderedQuantifiers returns the quantifiers in optimizer join order when
// one is recorded, else declaration order.
func (b *Box) OrderedQuantifiers() []*Quantifier {
	if b.JoinOrder == nil {
		return b.Quantifiers
	}
	out := make([]*Quantifier, 0, len(b.Quantifiers))
	for _, i := range b.JoinOrder {
		out = append(out, b.Quantifiers[i])
	}
	return out
}

// Graph is a whole query: a set of boxes with a designated top box plus the
// top-level ordering spec.
type Graph struct {
	Boxes []*Box
	Top   *Box

	// OrderBy holds top-level ordering over the Top box's output ordinals.
	OrderBy []OrderSpec
	Limit   int64 // -1 = none
	// HiddenCols counts trailing Top outputs that exist only to support
	// ORDER BY on non-projected expressions; the executor trims them after
	// sorting.
	HiddenCols int
	// NumParams is the number of `?` placeholder slots expressions of this
	// graph reference; executions must bind exactly this many values.
	NumParams int

	nextBoxID int
	nextQID   int
}

// OrderSpec orders by an output ordinal of the top box.
type OrderSpec struct {
	Ord  int
	Desc bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{Limit: -1} }

// NewBox allocates a box registered in the graph.
func (g *Graph) NewBox(kind BoxKind, name string) *Box {
	b := &Box{ID: g.nextBoxID, Kind: kind, Name: name}
	g.nextBoxID++
	g.Boxes = append(g.Boxes, b)
	return b
}

// AddQuantifier creates a quantifier of type t named name in box parent,
// ranging over box over.
func (g *Graph) AddQuantifier(parent *Box, t QType, name string, over *Box) *Quantifier {
	q := &Quantifier{ID: g.nextQID, Name: name, Type: t, Ranges: over, Parent: parent}
	g.nextQID++
	parent.Quantifiers = append(parent.Quantifiers, q)
	return q
}

// RemoveQuantifier deletes q from its parent box. The caller is responsible
// for having removed all references to q first.
func RemoveQuantifier(q *Quantifier) {
	b := q.Parent
	for i, qq := range b.Quantifiers {
		if qq == q {
			b.Quantifiers = append(b.Quantifiers[:i], b.Quantifiers[i+1:]...)
			return
		}
	}
}

// GC removes boxes unreachable from Top. Rewrite rules and EMST orphan
// boxes (e.g. un-adorned originals after all users switch to adorned
// copies); the paper's phase 3 relies on cleaning these up.
func (g *Graph) GC() {
	live := map[*Box]bool{}
	var mark func(b *Box)
	mark = func(b *Box) {
		if b == nil || live[b] {
			return
		}
		live[b] = true
		for _, q := range b.Quantifiers {
			mark(q.Ranges)
		}
		mark(b.MagicBox)
	}
	mark(g.Top)
	var kept []*Box
	for _, b := range g.Boxes {
		if live[b] {
			kept = append(kept, b)
		}
	}
	g.Boxes = kept
}

// Uses returns, for every box, the list of quantifiers ranging over it.
func (g *Graph) Uses() map[*Box][]*Quantifier {
	uses := make(map[*Box][]*Quantifier)
	for _, b := range g.Boxes {
		for _, q := range b.Quantifiers {
			uses[q.Ranges] = append(uses[q.Ranges], q)
		}
	}
	return uses
}

// UseCount returns the number of quantifiers ranging over box b, plus one
// if b is the top box (the query consumes it) and one for each MagicBox
// link pointing at it.
func (g *Graph) UseCount(b *Box) int {
	n := 0
	for _, bb := range g.Boxes {
		for _, q := range bb.Quantifiers {
			if q.Ranges == b {
				n++
			}
		}
		if bb.MagicBox == b {
			n++
		}
	}
	if g.Top == b {
		n++
	}
	return n
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
