package qgm

// CopyBox copies box b into the graph, returning the copy and the
// quantifier remap table it populated.
//
// Sharing rules (§4, Example 4.9): the copy's ForEach quantifiers range over
// the SAME child boxes as the original — views and base tables are shared
// common subexpressions, and the EMST rule replaces them with adorned copies
// box-at-a-time as it descends. Subquery quantifiers (Exists/ForAll/Scalar)
// deep-copy their child boxes instead, because subquery boxes are private to
// their parent and may contain correlated references to the parent's
// quantifiers, which must be remapped to the copy's quantifiers.
//
// Expressions referencing quantifiers outside the copied region (outer
// correlation) keep referencing the original outer quantifiers.
func (g *Graph) CopyBox(b *Box) (*Box, map[*Quantifier]*Quantifier) {
	remap := make(map[*Quantifier]*Quantifier)
	nb := g.copyRec(b, remap, func(q *Quantifier) bool { return q.Type != ForEach })
	return nb, remap
}

// CopyTree deep-copies b and every box reachable through its quantifiers,
// sharing only base-table boxes. The correlate transform uses it to
// privatize an entire view blob before sinking join predicates into it as
// correlation (re-computing a nested view per use is precisely what
// correlated execution does).
func (g *Graph) CopyTree(b *Box) (*Box, map[*Quantifier]*Quantifier) {
	remap := make(map[*Quantifier]*Quantifier)
	nb := g.copyRec(b, remap, func(q *Quantifier) bool { return q.Ranges.Kind != KindBaseTable })
	return nb, remap
}

// CloneGraph deep-copies the whole graph into an independent Graph —
// every box including base tables is copied, so mutating one graph never
// affects the other. The three-phase pipeline clones the pre-EMST graph so
// it can fall back to it when the EMST plan does not win the cost
// comparison (§3.2 step 5).
func (g *Graph) CloneGraph() *Graph {
	ng := NewGraph()
	ng.OrderBy = append([]OrderSpec(nil), g.OrderBy...)
	ng.Limit = g.Limit
	ng.HiddenCols = g.HiddenCols
	ng.NumParams = g.NumParams
	remap := make(map[*Quantifier]*Quantifier)
	shared := map[*Box]*Box{}
	ng.Top = ng.cloneShared(g.Top, remap, shared)
	return ng
}

// cloneShared copies boxes preserving sharing (a box referenced twice in g
// is copied once).
func (g *Graph) cloneShared(b *Box, remap map[*Quantifier]*Quantifier, shared map[*Box]*Box) *Box {
	if nb, ok := shared[b]; ok {
		return nb
	}
	nb := g.NewBox(b.Kind, b.Name)
	shared[b] = nb
	nb.Distinct = b.Distinct
	nb.Table = b.Table
	nb.Role = b.Role
	nb.Adornment = b.Adornment
	nb.MagicCols = append([]MagicCol(nil), b.MagicCols...)
	nb.JoinOrder = append([]int(nil), b.JoinOrder...)
	nb.Origin = b.Origin
	nb.Recursive = b.Recursive
	for _, q := range b.Quantifiers {
		nq := g.AddQuantifier(nb, q.Type, q.Name, nil)
		remap[q] = nq
	}
	for i, q := range b.Quantifiers {
		nb.Quantifiers[i].Ranges = g.cloneShared(q.Ranges, remap, shared)
	}
	if b.MagicBox != nil {
		nb.MagicBox = g.cloneShared(b.MagicBox, remap, shared)
	}
	for _, e := range b.Preds {
		nb.Preds = append(nb.Preds, CopyExpr(e, remap))
	}
	for _, oc := range b.Output {
		noc := OutputCol{Name: oc.Name, Type: oc.Type}
		if oc.Expr != nil {
			noc.Expr = CopyExpr(oc.Expr, remap)
		}
		nb.Output = append(nb.Output, noc)
	}
	for _, e := range b.GroupBy {
		nb.GroupBy = append(nb.GroupBy, CopyExpr(e, remap))
	}
	for _, a := range b.Aggs {
		na := AggSpec{Kind: a.Kind, Distinct: a.Distinct}
		if a.Arg != nil {
			na.Arg = CopyExpr(a.Arg, remap)
		}
		nb.Aggs = append(nb.Aggs, na)
	}
	return nb
}

// CopySCC copies an entire recursive component rooted at a fixpoint box:
// every box of the component (reachable from root and reaching root) is
// copied exactly once with internal references rewired to the copies, so
// the copy is an independent cycle. ForEach children outside the component
// stay shared; subquery children outside it are deep-copied (they are
// private to their boxes). The EMST rule uses this to build adorned copies
// of recursive views.
func (g *Graph) CopySCC(root *Box) (*Box, map[*Quantifier]*Quantifier) {
	scc := sccOfBox(root)
	remap := map[*Quantifier]*Quantifier{}
	copies := map[*Box]*Box{}

	// Pass 1: shells + quantifiers for every member.
	for _, x := range scc {
		nb := g.NewBox(x.Kind, x.Name)
		nb.Distinct = x.Distinct
		nb.Table = x.Table
		nb.Role = x.Role
		nb.Adornment = x.Adornment
		nb.MagicCols = append([]MagicCol(nil), x.MagicCols...)
		nb.JoinOrder = append([]int(nil), x.JoinOrder...)
		nb.Recursive = x.Recursive
		copies[x] = nb
	}
	for _, x := range scc {
		nb := copies[x]
		for _, q := range x.Quantifiers {
			nq := g.AddQuantifier(nb, q.Type, q.Name, q.Ranges)
			remap[q] = nq
		}
	}
	// Pass 2: rewire children.
	for _, x := range scc {
		for i, q := range x.Quantifiers {
			nq := copies[x].Quantifiers[i]
			switch {
			case copies[q.Ranges] != nil:
				nq.Ranges = copies[q.Ranges]
			case q.Type != ForEach:
				nq.Ranges = g.copyRec(q.Ranges, remap, func(qq *Quantifier) bool { return qq.Type != ForEach })
			}
		}
	}
	// Pass 3: expressions.
	for _, x := range scc {
		nb := copies[x]
		for _, e := range x.Preds {
			nb.Preds = append(nb.Preds, CopyExpr(e, remap))
		}
		for _, oc := range x.Output {
			noc := OutputCol{Name: oc.Name, Type: oc.Type}
			if oc.Expr != nil {
				noc.Expr = CopyExpr(oc.Expr, remap)
			}
			nb.Output = append(nb.Output, noc)
		}
		for _, e := range x.GroupBy {
			nb.GroupBy = append(nb.GroupBy, CopyExpr(e, remap))
		}
		for _, a := range x.Aggs {
			na := AggSpec{Kind: a.Kind, Distinct: a.Distinct}
			if a.Arg != nil {
				na.Arg = CopyExpr(a.Arg, remap)
			}
			nb.Aggs = append(nb.Aggs, na)
		}
	}
	return copies[root], remap
}

// SCCBoxes returns root plus every box reachable from root that can reach
// root (the recursive component), in a deterministic order.
func SCCBoxes(root *Box) []*Box { return sccOfBox(root) }

func sccOfBox(root *Box) []*Box {
	var reach func(from, to *Box, seen map[*Box]bool) bool
	reach = func(from, to *Box, seen map[*Box]bool) bool {
		if from == to {
			return true
		}
		if from == nil || seen[from] {
			return false
		}
		seen[from] = true
		for _, q := range from.Quantifiers {
			if reach(q.Ranges, to, seen) {
				return true
			}
		}
		return reach(from.MagicBox, to, seen)
	}
	members := []*Box{root}
	visited := map[*Box]bool{root: true}
	var collect func(x *Box)
	collect = func(x *Box) {
		for _, q := range x.Quantifiers {
			c := q.Ranges
			if c == nil || visited[c] {
				continue
			}
			if reach(c, root, map[*Box]bool{}) {
				visited[c] = true
				members = append(members, c)
				collect(c)
			}
		}
	}
	collect(root)
	return members
}

func (g *Graph) copyRec(b *Box, remap map[*Quantifier]*Quantifier, deep func(*Quantifier) bool) *Box {
	nb := g.NewBox(b.Kind, b.Name)
	nb.Distinct = b.Distinct
	nb.Table = b.Table
	nb.Role = b.Role
	nb.Adornment = b.Adornment
	nb.MagicBox = b.MagicBox
	nb.MagicCols = append([]MagicCol(nil), b.MagicCols...)
	nb.JoinOrder = append([]int(nil), b.JoinOrder...)
	nb.Recursive = b.Recursive

	// Pass 1: create all quantifiers, sharing the original child boxes, so
	// the remap table is complete before any expression is copied. A
	// subquery correlated to ANY quantifier of this box then remaps
	// correctly regardless of declaration order.
	for _, q := range b.Quantifiers {
		nq := g.AddQuantifier(nb, q.Type, q.Name, q.Ranges)
		remap[q] = nq
	}
	// Pass 2: deep-copy children selected by the policy (subquery boxes for
	// CopyBox; everything but base tables for CopyTree).
	for _, nq := range nb.Quantifiers {
		if deep(nq) {
			nq.Ranges = g.copyRec(nq.Ranges, remap, deep)
		}
	}
	// Pass 3: copy expressions with the complete remap table.
	for _, e := range b.Preds {
		nb.Preds = append(nb.Preds, CopyExpr(e, remap))
	}
	for _, oc := range b.Output {
		noc := OutputCol{Name: oc.Name, Type: oc.Type}
		if oc.Expr != nil {
			noc.Expr = CopyExpr(oc.Expr, remap)
		}
		nb.Output = append(nb.Output, noc)
	}
	for _, e := range b.GroupBy {
		nb.GroupBy = append(nb.GroupBy, CopyExpr(e, remap))
	}
	for _, a := range b.Aggs {
		na := AggSpec{Kind: a.Kind, Distinct: a.Distinct}
		if a.Arg != nil {
			na.Arg = CopyExpr(a.Arg, remap)
		}
		nb.Aggs = append(nb.Aggs, na)
	}
	return nb
}
