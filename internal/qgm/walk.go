package qgm

// VisitBoxExprs calls fn for every expression stored directly in box.
func VisitBoxExprs(box *Box, fn func(Expr)) {
	for _, e := range box.Preds {
		fn(e)
	}
	for _, oc := range box.Output {
		if oc.Expr != nil {
			fn(oc.Expr)
		}
	}
	for _, e := range box.GroupBy {
		fn(e)
	}
	for _, a := range box.Aggs {
		if a.Arg != nil {
			fn(a.Arg)
		}
	}
}

// RewriteBoxExprs replaces every expression stored directly in box with
// fn(expr).
func RewriteBoxExprs(box *Box, fn func(Expr) Expr) {
	for i, e := range box.Preds {
		box.Preds[i] = fn(e)
	}
	for i := range box.Output {
		if box.Output[i].Expr != nil {
			box.Output[i].Expr = fn(box.Output[i].Expr)
		}
	}
	for i, e := range box.GroupBy {
		box.GroupBy[i] = fn(e)
	}
	for i := range box.Aggs {
		if box.Aggs[i].Arg != nil {
			box.Aggs[i].Arg = fn(box.Aggs[i].Arg)
		}
	}
}

// InCycle reports whether box b can reach itself through quantifiers or
// magic links — i.e. it belongs to a recursive component.
func InCycle(b *Box) bool {
	seen := map[*Box]bool{}
	var walk func(box *Box) bool
	walk = func(box *Box) bool {
		if box == b {
			return true
		}
		if box == nil || seen[box] {
			return false
		}
		seen[box] = true
		for _, q := range box.Quantifiers {
			if walk(q.Ranges) {
				return true
			}
		}
		return walk(box.MagicBox)
	}
	for _, q := range b.Quantifiers {
		if walk(q.Ranges) {
			return true
		}
	}
	return walk(b.MagicBox)
}

// RewriteTree applies fn to every expression in b and every box reachable
// from b (subquery boxes may hold correlated references to b's quantifiers;
// shared blobs are visited harmlessly since they cannot reference them).
func RewriteTree(b *Box, fn func(Expr) Expr) {
	seen := map[*Box]bool{}
	var walk func(box *Box)
	walk = func(box *Box) {
		if box == nil || seen[box] {
			return
		}
		seen[box] = true
		RewriteBoxExprs(box, fn)
		for _, q := range box.Quantifiers {
			walk(q.Ranges)
		}
		walk(box.MagicBox)
	}
	walk(b)
}
