package qgm

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

// buildRecursiveTC constructs the QGM of a recursive transitive closure by
// hand: root (fixpoint, select) -> union -> {base branch, recursive branch
// referencing root}.
func buildRecursiveTC() (*Graph, *Box) {
	g := NewGraph()
	edge := g.NewBox(KindBaseTable, "EDGE")
	edge.Table = &catalog.Table{Name: "edge", Columns: []catalog.Column{
		{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}}
	edge.Output = []OutputCol{{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}

	root := g.NewBox(KindSelect, "TC")
	root.Recursive = true
	root.Distinct = DistinctEnforce
	root.Output = []OutputCol{{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}

	baseBr := g.NewBox(KindSelect, "BASE")
	bq := g.AddQuantifier(baseBr, ForEach, "e", edge)
	baseBr.Output = []OutputCol{
		{Name: "src", Expr: bq.Col(0), Type: datum.TInt},
		{Name: "dst", Expr: bq.Col(1), Type: datum.TInt},
	}

	recBr := g.NewBox(KindSelect, "STEP")
	tq := g.AddQuantifier(recBr, ForEach, "t", root)
	eq := g.AddQuantifier(recBr, ForEach, "e", edge)
	recBr.Preds = []Expr{&Cmp{Op: datum.EQ, L: tq.Col(1), R: eq.Col(0)}}
	recBr.Output = []OutputCol{
		{Name: "src", Expr: tq.Col(0), Type: datum.TInt},
		{Name: "dst", Expr: eq.Col(1), Type: datum.TInt},
	}

	u := g.NewBox(KindUnion, "U")
	g.AddQuantifier(u, ForEach, "b", baseBr)
	g.AddQuantifier(u, ForEach, "r", recBr)
	u.Distinct = DistinctEnforce
	u.Output = []OutputCol{{Name: "src", Type: datum.TInt}, {Name: "dst", Type: datum.TInt}}

	rq := g.AddQuantifier(root, ForEach, "u", u)
	root.Output[0].Expr = rq.Col(0)
	root.Output[1].Expr = rq.Col(1)

	top := g.NewBox(KindSelect, "Q")
	cq := g.AddQuantifier(top, ForEach, "t", root)
	top.Preds = []Expr{&Cmp{Op: datum.EQ, L: cq.Col(0), R: &Const{Val: datum.Int(1)}}}
	top.Output = []OutputCol{{Name: "dst", Expr: cq.Col(1), Type: datum.TInt}}
	g.Top = top
	return g, root
}

func TestSCCBoxes(t *testing.T) {
	g, root := buildRecursiveTC()
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	members := SCCBoxes(root)
	names := map[string]bool{}
	for _, m := range members {
		names[m.Name] = true
	}
	for _, want := range []string{"TC", "U", "STEP"} {
		if !names[want] {
			t.Errorf("SCC missing %s: %v", want, names)
		}
	}
	if names["BASE"] || names["EDGE"] {
		t.Errorf("SCC includes non-members: %v", names)
	}
	if !InCycle(root) {
		t.Error("root not in cycle")
	}
	if InCycle(g.Top) {
		t.Error("top wrongly in cycle")
	}
}

func TestCopySCC(t *testing.T) {
	g, root := buildRecursiveTC()
	cp, _ := g.CopySCC(root)
	if cp == root {
		t.Fatal("no copy")
	}
	if !cp.Recursive {
		t.Error("copy lost Recursive flag")
	}
	// The copy must form its own cycle, disjoint from the original's.
	if !InCycle(cp) {
		t.Fatal("copy is not cyclic")
	}
	copyMembers := SCCBoxes(cp)
	origMembers := map[*Box]bool{}
	for _, m := range SCCBoxes(root) {
		origMembers[m] = true
	}
	for _, m := range copyMembers {
		if origMembers[m] {
			t.Errorf("copy shares cycle member %s with original", m.Name)
		}
	}
	// Base tables stay shared; the base branch (non-member select) too.
	var step *Box
	for _, m := range copyMembers {
		if m.Name == "STEP" {
			step = m
		}
	}
	if step == nil {
		t.Fatal("copied STEP missing")
	}
	if step.Quantifiers[1].Ranges.Name != "EDGE" {
		t.Error("edge not shared")
	}
	// Re-point the consumer and validate the whole graph.
	g.Top.Quantifiers[0].Ranges = cp
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatalf("after CopySCC rewire: %v\n%s", err, g.Dump())
	}
}

func TestReachableAndStatsString(t *testing.T) {
	g, _ := buildRecursiveTC()
	boxes := g.Reachable()
	if len(boxes) < 5 {
		t.Errorf("reachable = %d boxes", len(boxes))
	}
	if s := g.Stats().String(); !strings.Contains(s, "boxes=") {
		t.Errorf("stats string: %s", s)
	}
}

func TestEnumStrings(t *testing.T) {
	if KindBaseTable.String() != "base" || KindExtensionStart.String() == "" {
		t.Error("BoxKind strings")
	}
	for _, r := range []MagicRole{RoleNone, RoleMagic, RoleCondMagic, RoleSuppMagic} {
		_ = r.String()
	}
	for _, m := range []DistinctMode{DistinctPreserve, DistinctEnforce, DistinctPermit} {
		if m.String() == "?" {
			t.Error("distinct mode string")
		}
	}
	for _, q := range []QType{ForEach, Exists, ForAll, Scalar} {
		if q.String() == "?" {
			t.Error("qtype string")
		}
	}
}
