package qgm

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the graph as indented text, top box first, each box once.
// cmd/qgmviz uses it to reproduce the paper's Figures 1 and 4; tests pin
// structural facts against it.
func (g *Graph) Dump() string {
	var sb strings.Builder
	seen := map[*Box]bool{}
	var dump func(b *Box, depth int)
	dump = func(b *Box, depth int) {
		ind := strings.Repeat("  ", depth)
		if seen[b] {
			fmt.Fprintf(&sb, "%s-> %s (shared)\n", ind, boxTitle(b, g))
			return
		}
		seen[b] = true
		fmt.Fprintf(&sb, "%s%s\n", ind, boxTitle(b, g))
		if b.Kind == KindBaseTable {
			return
		}
		for _, oc := range b.Output {
			if oc.Expr != nil {
				fmt.Fprintf(&sb, "%s  out %s = %s\n", ind, oc.Name, oc.Expr)
			} else {
				fmt.Fprintf(&sb, "%s  out %s\n", ind, oc.Name)
			}
		}
		for i, e := range b.GroupBy {
			fmt.Fprintf(&sb, "%s  group[%d] = %s\n", ind, i, e)
		}
		for i, a := range b.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.String()
			}
			distinct := ""
			if a.Distinct {
				distinct = "DISTINCT "
			}
			fmt.Fprintf(&sb, "%s  agg[%d] = %s(%s%s)\n", ind, i, a.Kind, distinct, arg)
		}
		for _, e := range b.Preds {
			fmt.Fprintf(&sb, "%s  pred %s\n", ind, e)
		}
		if b.MagicBox != nil {
			fmt.Fprintf(&sb, "%s  linked-magic -> %s\n", ind, boxTitle(b.MagicBox, g))
		}
		for _, q := range b.OrderedQuantifiers() {
			fmt.Fprintf(&sb, "%s  quant %s:%s over:\n", ind, q.Name, q.Type)
			dump(q.Ranges, depth+2)
		}
		if b.MagicBox != nil && !seen[b.MagicBox] {
			fmt.Fprintf(&sb, "%s  magic-box:\n", ind)
			dump(b.MagicBox, depth+2)
		}
	}
	dump(g.Top, 0)
	return sb.String()
}

func boxTitle(b *Box, g *Graph) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("[%s#%d]", b.Kind, b.ID))
	if b.Name != "" {
		parts = append(parts, b.Name)
	}
	if b.Adornment != "" {
		parts = append(parts, "^"+b.Adornment)
	}
	if b.Role != RoleNone {
		parts = append(parts, "<"+b.Role.String()+">")
	}
	if b.Distinct == DistinctEnforce {
		parts = append(parts, "DISTINCT")
	}
	return strings.Join(parts, " ")
}

// Stats summarizes graph complexity: the paper's measure of query
// complexity is the number of boxes and joins (§2, Example 1.1). Joins
// counts quantifier pairs joined within select boxes, i.e. per select box
// with n ForEach quantifiers, n-1 joins.
type Stats struct {
	Boxes       int
	SelectBoxes int
	GroupBys    int
	MagicBoxes  int
	Quantifiers int
	Joins       int
}

// Stats computes graph complexity counters over boxes reachable from Top.
func (g *Graph) Stats() Stats {
	var s Stats
	seen := map[*Box]bool{}
	var visit func(b *Box)
	visit = func(b *Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		s.Boxes++
		switch {
		case b.IsMagic():
			s.MagicBoxes++
		case b.Kind == KindSelect:
			s.SelectBoxes++
		case b.Kind == KindGroupBy:
			s.GroupBys++
		}
		if b.Kind != KindBaseTable {
			nF := 0
			for _, q := range b.Quantifiers {
				s.Quantifiers++
				if q.Type == ForEach {
					nF++
				}
				visit(q.Ranges)
			}
			if b.Kind == KindSelect && nF > 1 {
				s.Joins += nF - 1
			}
		}
		visit(b.MagicBox)
	}
	visit(g.Top)
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("boxes=%d (select=%d groupby=%d magic=%d) quantifiers=%d joins=%d",
		s.Boxes, s.SelectBoxes, s.GroupBys, s.MagicBoxes, s.Quantifiers, s.Joins)
}

// BoxesByName returns reachable boxes whose name matches, sorted by ID;
// tests use it to pin down specific boxes.
func (g *Graph) BoxesByName(name string) []*Box {
	var out []*Box
	seen := map[*Box]bool{}
	var visit func(b *Box)
	visit = func(b *Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		if equalFold(b.Name, name) {
			out = append(out, b)
		}
		for _, q := range b.Quantifiers {
			visit(q.Ranges)
		}
		visit(b.MagicBox)
	}
	visit(g.Top)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reachable returns all boxes reachable from Top in depth-first order.
func (g *Graph) Reachable() []*Box {
	var out []*Box
	seen := map[*Box]bool{}
	var visit func(b *Box)
	visit = func(b *Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		out = append(out, b)
		for _, q := range b.Quantifiers {
			visit(q.Ranges)
		}
		visit(b.MagicBox)
	}
	visit(g.Top)
	return out
}
