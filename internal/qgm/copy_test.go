package qgm

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

func TestCloneGraphIsIndependent(t *testing.T) {
	g, q := buildEmpDept()
	g.OrderBy = []OrderSpec{{Ord: 0, Desc: true}}
	g.Limit = 5
	g.HiddenCols = 0
	clone := g.CloneGraph()
	if err := clone.Check(); err != nil {
		t.Fatal(err)
	}
	if clone.Limit != 5 || len(clone.OrderBy) != 1 || !clone.OrderBy[0].Desc {
		t.Errorf("order/limit not cloned: %+v", clone)
	}
	// Mutating the original must not affect the clone.
	q.Preds = nil
	q.Name = "MUTATED"
	if len(clone.Top.Preds) != 2 || clone.Top.Name == "MUTATED" {
		t.Error("clone shares state with original")
	}
	// Quantifier identities differ.
	if clone.Top.Quantifiers[0] == q.Quantifiers[0] {
		t.Error("clone shares quantifier objects")
	}
}

func TestCloneGraphPreservesSharing(t *testing.T) {
	g, q := buildEmpDept()
	// Second quantifier over the same department box.
	g.AddQuantifier(q, ForEach, "d2", q.Quantifiers[1].Ranges)
	clone := g.CloneGraph()
	ctop := clone.Top
	if ctop.Quantifiers[1].Ranges != ctop.Quantifiers[2].Ranges {
		t.Error("shared box duplicated by clone")
	}
}

func TestCloneGraphPreservesMagicMetadata(t *testing.T) {
	g, q := buildEmpDept()
	magic := g.NewBox(KindSelect, "m")
	magic.Role = RoleMagic
	magic.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	q.MagicBox = magic
	q.MagicCols = []MagicCol{{BoxOrd: 0, MagicOrd: 0}}
	q.Adornment = "bf"
	clone := g.CloneGraph()
	ct := clone.Top
	if ct.MagicBox == nil || ct.MagicBox == magic {
		t.Error("magic link not deep-cloned")
	}
	if ct.Adornment != "bf" || len(ct.MagicCols) != 1 {
		t.Error("magic metadata lost")
	}
	if ct.MagicBox.Role != RoleMagic {
		t.Error("role lost")
	}
}

func TestCopyTreePrivatizesEverythingButBases(t *testing.T) {
	g, q := buildEmpDept()
	// Wrap: top -> mid select -> q's box.
	mid := g.NewBox(KindSelect, "MID")
	mq := g.AddQuantifier(mid, ForEach, "m", q)
	mid.Output = []OutputCol{{Name: "empno", Expr: mq.Col(0), Type: datum.TInt}}
	g.Top = mid

	cp, _ := g.CopyTree(mid)
	if cp == mid {
		t.Fatal("no copy")
	}
	if cp.Quantifiers[0].Ranges == q {
		t.Error("inner select box shared; CopyTree must privatize")
	}
	// Base tables stay shared.
	inner := cp.Quantifiers[0].Ranges
	if inner.Quantifiers[0].Ranges != q.Quantifiers[0].Ranges {
		t.Error("base table should stay shared")
	}
	g.Top = cp
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphStatsCountsMagic(t *testing.T) {
	g, q := buildEmpDept()
	m := g.NewBox(KindSelect, "m")
	m.Role = RoleMagic
	m.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	g.AddQuantifier(q, ForEach, "mq", m)
	s := g.Stats()
	if s.MagicBoxes != 1 {
		t.Errorf("magic boxes = %d", s.MagicBoxes)
	}
	if s.Joins != 2 { // three F quantifiers in one select box
		t.Errorf("joins = %d", s.Joins)
	}
}

func TestDumpShowsAdornmentAndRole(t *testing.T) {
	g, q := buildEmpDept()
	q.Adornment = "bf"
	m := g.NewBox(KindSelect, "m_test")
	m.Role = RoleSuppMagic
	m.Distinct = DistinctEnforce
	m.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	q.MagicBox = m
	d := g.Dump()
	for _, want := range []string{"^bf", "supp-magic", "DISTINCT", "linked-magic"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestBoxesByName(t *testing.T) {
	g, _ := buildEmpDept()
	if got := g.BoxesByName("employee"); len(got) != 1 {
		t.Errorf("BoxesByName(employee) = %d", len(got))
	}
	if got := g.BoxesByName("ghost"); len(got) != 0 {
		t.Errorf("BoxesByName(ghost) = %d", len(got))
	}
}

func TestCheckRejectsSetOpArityMismatch(t *testing.T) {
	g := NewGraph()
	mk := func(name string, cols int) *Box {
		b := g.NewBox(KindBaseTable, name)
		b.Table = &catalog.Table{Name: name}
		for i := 0; i < cols; i++ {
			b.Table.Columns = append(b.Table.Columns, catalog.Column{Name: "c", Type: datum.TInt})
			b.Output = append(b.Output, OutputCol{Name: "c", Type: datum.TInt})
		}
		return b
	}
	u := g.NewBox(KindUnion, "U")
	g.AddQuantifier(u, ForEach, "a", mk("t1", 2))
	g.AddQuantifier(u, ForEach, "b", mk("t2", 3))
	u.Output = []OutputCol{{Name: "c", Type: datum.TInt}, {Name: "d", Type: datum.TInt}}
	g.Top = u
	if err := g.Check(); err == nil {
		t.Error("arity mismatch not caught")
	}
}

func TestCheckRejectsBinaryOpWithThreeInputs(t *testing.T) {
	g, q := buildEmpDept()
	ex := g.NewBox(KindExcept, "E")
	for i := 0; i < 3; i++ {
		g.AddQuantifier(ex, ForEach, "x", q.Quantifiers[0].Ranges)
	}
	ex.Output = []OutputCol{{Name: "empno", Type: datum.TInt}, {Name: "workdept", Type: datum.TInt}}
	g.Top = ex
	if err := g.Check(); err == nil {
		t.Error("ternary except not caught")
	}
}

func TestExprStringRendering(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	e := q.Quantifiers[0]
	cases := []struct {
		expr Expr
		want string
	}{
		{&Cmp{Op: datum.LT, L: e.Col(0), R: &Const{Val: datum.Int(5)}}, "e.empno < 5"},
		{&IsNull{X: e.Col(0)}, "e.empno IS NULL"},
		{&IsNull{X: e.Col(0), Negate: true}, "e.empno IS NOT NULL"},
		{&Like{X: e.Col(0), Pattern: "a%"}, "e.empno LIKE 'a%'"},
		{&Not{X: &Const{Val: datum.Bool(true)}}, "NOT (TRUE)"},
		{&Neg{X: e.Col(0)}, "-(e.empno)"},
		{&Concat{L: &Const{Val: datum.String("a")}, R: &Const{Val: datum.String("b")}}, "('a' || 'b')"},
		{&Func{Name: "ABS", Args: []Expr{e.Col(0)}}, "ABS(e.empno)"},
		{&Case{Whens: []CaseWhen{{When: &Const{Val: datum.Bool(true)}, Then: &Const{Val: datum.Int(1)}}}},
			"CASE WHEN TRUE THEN 1 END"},
	}
	for _, c := range cases {
		if got := c.expr.String(); got != c.want {
			t.Errorf("String() = %q; want %q", got, c.want)
		}
	}
}

func TestRewriteRefsOnCaseAndFunc(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	e, d := q.Quantifiers[0], q.Quantifiers[1]
	expr := &Case{
		Whens: []CaseWhen{{When: &Cmp{Op: datum.EQ, L: e.Col(0), R: d.Col(0)}, Then: &Func{Name: "ABS", Args: []Expr{e.Col(1)}}}},
		Else:  e.Col(0),
	}
	remap := map[*Quantifier]*Quantifier{e: d}
	out := CopyExpr(expr, remap)
	refs := RefsQuantifiers(out)
	if refs[e] {
		t.Error("remap did not reach CASE/Func children")
	}
	if !EqualExpr(expr, expr) {
		t.Error("Case must equal itself")
	}
	if EqualExpr(expr, out) {
		t.Error("remapped Case should differ structurally")
	}
}

func TestDumpDOT(t *testing.T) {
	g, q := buildEmpDept()
	m := g.NewBox(KindSelect, "m_q")
	m.Role = RoleMagic
	m.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	q.MagicBox = m
	q.Adornment = "bf"
	out := g.DumpDOT("test")
	for _, want := range []string{"digraph qgm", "QUERY^bf", "cylinder", "style=dashed", "lightyellow", "label=\"test\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
