package qgm

import (
	"fmt"
	"strings"

	"starmagic/internal/datum"
)

// aggKindAlias and typeAlias let qgm re-export datum's kinds without an
// import cycle in qgm.go's declarations.
type (
	aggKindAlias = datum.AggKind
	typeAlias    = datum.Type
)

// Expr is a resolved expression over quantifier columns. Unlike sql.Expr,
// all names are bound: a ColRef points at a quantifier object and an output
// ordinal of the box it ranges over. References to quantifiers of ancestor
// boxes represent correlation.
type Expr interface {
	expr()
	// String renders the expression for dumps and tests.
	String() string
}

// ColRef is column Ord of the box quantifier Q ranges over.
type ColRef struct {
	Q   *Quantifier
	Ord int
}

// Const is a literal.
type Const struct {
	Val datum.D
}

// Param is a positional query parameter (`?`), bound to a value only at
// execution time. To the rewrite rules, the plan optimizer and the EMST
// transformation it is an opaque constant: it references no quantifiers, so
// plan shape and magic-seed structure are invariant under the binding —
// which is what lets one cached plan serve any argument values. Type is the
// declared slot type when known (TNull otherwise).
type Param struct {
	Ord  int
	Type datum.Type
}

// Cmp is a comparison L op R.
type Cmp struct {
	Op   datum.CmpOp
	L, R Expr
}

// LogicOp is AND or OR.
type LogicOp uint8

// Logic operators.
const (
	And LogicOp = iota
	Or
)

// Logic is an n-ary AND/OR.
type Logic struct {
	Op   LogicOp
	Args []Expr
}

// Not is logical negation.
type Not struct {
	X Expr
}

// Arith is an arithmetic expression.
type Arith struct {
	Op   datum.ArithOp
	L, R Expr
}

// Neg is unary minus.
type Neg struct {
	X Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// Like is x [NOT] LIKE pattern.
type Like struct {
	X       Expr
	Pattern string
	Negate  bool
}

// Concat is string concatenation.
type Concat struct {
	L, R Expr
}

// CaseWhen is one arm of a Case.
type CaseWhen struct {
	When Expr // predicate
	Then Expr
}

// Case is a searched CASE expression (simple CASE is normalized to
// equality predicates during semantic analysis). Else nil means NULL.
type Case struct {
	Whens []CaseWhen
	Else  Expr
}

// Func is a scalar (non-aggregate) function application; the supported set
// is in internal/exec (ABS, UPPER, LOWER, LENGTH, COALESCE, NULLIF).
type Func struct {
	Name string
	Args []Expr
}

// Match is the match predicate of an Exists/ForAll quantifier that carries
// no real comparison: it references the quantifier (so rules and the
// executor associate it) and evaluates to the constant Truth for every
// subquery row. EXISTS uses an Exists quantifier with Match{Truth: true}
// (pass iff the subquery is non-empty); NOT EXISTS uses a ForAll quantifier
// with Match{Truth: false} (pass iff the subquery is empty).
type Match struct {
	Q     *Quantifier
	Truth bool
}

func (*ColRef) expr() {}
func (*Const) expr()  {}
func (*Param) expr()  {}
func (*Cmp) expr()    {}
func (*Logic) expr()  {}
func (*Not) expr()    {}
func (*Arith) expr()  {}
func (*Neg) expr()    {}
func (*IsNull) expr() {}
func (*Like) expr()   {}
func (*Concat) expr() {}
func (*Match) expr()  {}
func (*Case) expr()   {}
func (*Func) expr()   {}

func (e *ColRef) String() string {
	name := "?"
	if e.Q != nil {
		if b := e.Q.Ranges; b != nil && e.Ord < len(b.Output) && b.Output[e.Ord].Name != "" {
			name = b.Output[e.Ord].Name
		} else {
			name = fmt.Sprintf("c%d", e.Ord)
		}
		return e.Q.Name + "." + name
	}
	return fmt.Sprintf("?.c%d", e.Ord)
}

func (e *Const) String() string {
	if e.Val.T == datum.TString && !e.Val.IsNull() {
		return "'" + e.Val.S + "'"
	}
	return e.Val.Format()
}

func (e *Param) String() string {
	return fmt.Sprintf("?%d", e.Ord+1)
}

func (e *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}

func (e *Logic) String() string {
	op := " AND "
	if e.Op == Or {
		op = " OR "
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}

func (e *Not) String() string { return "NOT (" + e.X.String() + ")" }

func (e *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *Neg) String() string { return "-(" + e.X.String() + ")" }

func (e *IsNull) String() string {
	if e.Negate {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

func (e *Like) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sLIKE '%s'", e.X, not, e.Pattern)
}

func (e *Concat) String() string {
	return fmt.Sprintf("(%s || %s)", e.L, e.R)
}

func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.When, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

func (e *Func) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (e *Match) String() string {
	t := "FALSE"
	if e.Truth {
		t = "TRUE"
	}
	return fmt.Sprintf("match(%s)=%s", e.Q.Name, t)
}

// VisitRefs calls fn for every ColRef in e.
func VisitRefs(e Expr, fn func(*ColRef)) {
	switch x := e.(type) {
	case *ColRef:
		fn(x)
	case *Const:
	case *Param:
	case *Cmp:
		VisitRefs(x.L, fn)
		VisitRefs(x.R, fn)
	case *Logic:
		for _, a := range x.Args {
			VisitRefs(a, fn)
		}
	case *Not:
		VisitRefs(x.X, fn)
	case *Arith:
		VisitRefs(x.L, fn)
		VisitRefs(x.R, fn)
	case *Neg:
		VisitRefs(x.X, fn)
	case *IsNull:
		VisitRefs(x.X, fn)
	case *Like:
		VisitRefs(x.X, fn)
	case *Concat:
		VisitRefs(x.L, fn)
		VisitRefs(x.R, fn)
	case *Match:
		// Surface the quantifier association as a reference to its first
		// output column (every box has at least one output).
		fn(&ColRef{Q: x.Q, Ord: 0})
	case *Case:
		for _, w := range x.Whens {
			VisitRefs(w.When, fn)
			VisitRefs(w.Then, fn)
		}
		if x.Else != nil {
			VisitRefs(x.Else, fn)
		}
	case *Func:
		for _, a := range x.Args {
			VisitRefs(a, fn)
		}
	}
}

// RefsQuantifiers returns the set of quantifiers referenced by e.
func RefsQuantifiers(e Expr) map[*Quantifier]bool {
	out := map[*Quantifier]bool{}
	VisitRefs(e, func(c *ColRef) { out[c.Q] = true })
	return out
}

// OnlyRefs reports whether every column reference in e targets a quantifier
// in allowed.
func OnlyRefs(e Expr, allowed map[*Quantifier]bool) bool {
	ok := true
	VisitRefs(e, func(c *ColRef) {
		if !allowed[c.Q] {
			ok = false
		}
	})
	return ok
}

// RewriteRefs returns a copy of e with every ColRef replaced by
// fn(ref); fn returning nil keeps the original reference (shared — ColRefs
// are immutable in practice, but callers mutating them must copy first).
func RewriteRefs(e Expr, fn func(*ColRef) Expr) Expr {
	switch x := e.(type) {
	case *ColRef:
		if r := fn(x); r != nil {
			return r
		}
		return &ColRef{Q: x.Q, Ord: x.Ord}
	case *Const:
		return &Const{Val: x.Val}
	case *Param:
		return &Param{Ord: x.Ord, Type: x.Type}
	case *Cmp:
		return &Cmp{Op: x.Op, L: RewriteRefs(x.L, fn), R: RewriteRefs(x.R, fn)}
	case *Logic:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteRefs(a, fn)
		}
		return &Logic{Op: x.Op, Args: args}
	case *Not:
		return &Not{X: RewriteRefs(x.X, fn)}
	case *Arith:
		return &Arith{Op: x.Op, L: RewriteRefs(x.L, fn), R: RewriteRefs(x.R, fn)}
	case *Neg:
		return &Neg{X: RewriteRefs(x.X, fn)}
	case *IsNull:
		return &IsNull{X: RewriteRefs(x.X, fn), Negate: x.Negate}
	case *Like:
		return &Like{X: RewriteRefs(x.X, fn), Pattern: x.Pattern, Negate: x.Negate}
	case *Concat:
		return &Concat{L: RewriteRefs(x.L, fn), R: RewriteRefs(x.R, fn)}
	case *Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{When: RewriteRefs(w.When, fn), Then: RewriteRefs(w.Then, fn)}
		}
		var els Expr
		if x.Else != nil {
			els = RewriteRefs(x.Else, fn)
		}
		return &Case{Whens: whens, Else: els}
	case *Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteRefs(a, fn)
		}
		return &Func{Name: x.Name, Args: args}
	case *Match:
		r := fn(&ColRef{Q: x.Q, Ord: 0})
		if r == nil {
			return &Match{Q: x.Q, Truth: x.Truth}
		}
		cr, ok := r.(*ColRef)
		if !ok {
			panic("qgm: Match quantifier rewritten to a non-reference")
		}
		return &Match{Q: cr.Q, Truth: x.Truth}
	}
	panic(fmt.Sprintf("qgm: RewriteRefs on unknown expr %T", e))
}

// CopyExpr deep-copies e, remapping quantifier references through remap;
// quantifiers absent from remap are kept (outer correlation).
func CopyExpr(e Expr, remap map[*Quantifier]*Quantifier) Expr {
	return RewriteRefs(e, func(c *ColRef) Expr {
		if nq, ok := remap[c.Q]; ok {
			return &ColRef{Q: nq, Ord: c.Ord}
		}
		return &ColRef{Q: c.Q, Ord: c.Ord}
	})
}

// EqualExpr reports structural equality of two expressions (same quantifier
// objects, same ordinals, same operators and constants).
func EqualExpr(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Q == y.Q && x.Ord == y.Ord
	case *Const:
		y, ok := b.(*Const)
		if !ok {
			return false
		}
		if x.Val.IsNull() || y.Val.IsNull() {
			return x.Val.IsNull() && y.Val.IsNull()
		}
		return x.Val.T == y.Val.T && datum.DistinctEqual(x.Val, y.Val)
	case *Param:
		y, ok := b.(*Param)
		return ok && x.Ord == y.Ord
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Logic:
		y, ok := b.(*Logic)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Not:
		y, ok := b.(*Not)
		return ok && EqualExpr(x.X, y.X)
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Neg:
		y, ok := b.(*Neg)
		return ok && EqualExpr(x.X, y.X)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.Negate == y.Negate && EqualExpr(x.X, y.X)
	case *Like:
		y, ok := b.(*Like)
		return ok && x.Negate == y.Negate && x.Pattern == y.Pattern && EqualExpr(x.X, y.X)
	case *Concat:
		y, ok := b.(*Concat)
		return ok && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Match:
		y, ok := b.(*Match)
		return ok && x.Q == y.Q && x.Truth == y.Truth
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		for i := range x.Whens {
			if !EqualExpr(x.Whens[i].When, y.Whens[i].When) || !EqualExpr(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		if (x.Else == nil) != (y.Else == nil) {
			return false
		}
		return x.Else == nil || EqualExpr(x.Else, y.Else)
	case *Func:
		y, ok := b.(*Func)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Conjuncts flattens an expression into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if l, ok := e.(*Logic); ok && l.Op == And {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	return []Expr{e}
}

// AndAll combines conjuncts into a single expression (nil for empty input).
func AndAll(conjuncts []Expr) Expr {
	switch len(conjuncts) {
	case 0:
		return nil
	case 1:
		return conjuncts[0]
	}
	return &Logic{Op: And, Args: conjuncts}
}

// TypeOf infers the result type of an expression. Untypeable expressions
// (e.g. comparisons used as values) report datum.TBool; unknown NULLs report
// datum.TNull.
func TypeOf(e Expr) datum.Type {
	switch x := e.(type) {
	case *ColRef:
		if x.Q != nil && x.Q.Ranges != nil && x.Ord < len(x.Q.Ranges.Output) {
			return x.Q.Ranges.Output[x.Ord].Type
		}
		return datum.TNull
	case *Const:
		return x.Val.T
	case *Param:
		return x.Type
	case *Cmp, *Logic, *Not, *IsNull, *Like, *Match:
		return datum.TBool
	case *Arith:
		lt, rt := TypeOf(x.L), TypeOf(x.R)
		if x.Op == datum.Div || lt == datum.TFloat || rt == datum.TFloat {
			if x.Op == datum.Div && lt == datum.TInt && rt == datum.TInt {
				return datum.TInt
			}
			return datum.TFloat
		}
		if lt == datum.TInt && rt == datum.TInt {
			return datum.TInt
		}
		return datum.TFloat
	case *Neg:
		return TypeOf(x.X)
	case *Concat:
		return datum.TString
	case *Case:
		t := datum.TNull
		for _, w := range x.Whens {
			if wt := TypeOf(w.Then); wt != datum.TNull {
				if t == datum.TNull {
					t = wt
				} else if t != wt {
					if numericType(t) && numericType(wt) {
						t = datum.TFloat
					}
				}
			}
		}
		if x.Else != nil {
			if et := TypeOf(x.Else); et != datum.TNull && t == datum.TNull {
				t = et
			}
		}
		return t
	case *Func:
		switch x.Name {
		case "ABS":
			if len(x.Args) == 1 {
				return TypeOf(x.Args[0])
			}
			return datum.TFloat
		case "LENGTH":
			return datum.TInt
		case "UPPER", "LOWER":
			return datum.TString
		case "COALESCE", "NULLIF":
			for _, a := range x.Args {
				if t := TypeOf(a); t != datum.TNull {
					return t
				}
			}
			return datum.TNull
		}
		return datum.TNull
	}
	return datum.TNull
}

func numericType(t datum.Type) bool { return t == datum.TInt || t == datum.TFloat }
