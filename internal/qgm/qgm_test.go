package qgm

import (
	"strings"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

// buildEmpDept constructs by hand the QGM for
//
//	SELECT e.empno FROM employee e, department d
//	WHERE e.workdept = d.deptno AND d.deptname = 'Planning'
//
// over base tables employee(empno, workdept) and department(deptno,
// deptname).
func buildEmpDept() (*Graph, *Box) {
	g := NewGraph()
	emp := g.NewBox(KindBaseTable, "EMPLOYEE")
	emp.Table = &catalog.Table{Name: "employee", Columns: []catalog.Column{
		{Name: "empno", Type: datum.TInt}, {Name: "workdept", Type: datum.TInt},
	}}
	emp.Output = []OutputCol{
		{Name: "empno", Type: datum.TInt},
		{Name: "workdept", Type: datum.TInt},
	}
	dept := g.NewBox(KindBaseTable, "DEPARTMENT")
	dept.Table = &catalog.Table{Name: "department", Columns: []catalog.Column{
		{Name: "deptno", Type: datum.TInt}, {Name: "deptname", Type: datum.TString},
	}}
	dept.Output = []OutputCol{
		{Name: "deptno", Type: datum.TInt},
		{Name: "deptname", Type: datum.TString},
	}
	q := g.NewBox(KindSelect, "QUERY")
	e := g.AddQuantifier(q, ForEach, "e", emp)
	d := g.AddQuantifier(q, ForEach, "d", dept)
	q.Preds = []Expr{
		&Cmp{Op: datum.EQ, L: e.Col(1), R: d.Col(0)},
		&Cmp{Op: datum.EQ, L: d.Col(1), R: &Const{Val: datum.String("Planning")}},
	}
	q.Output = []OutputCol{{Name: "empno", Expr: e.Col(0), Type: datum.TInt}}
	g.Top = q
	return g, q
}

func TestCheckValidGraph(t *testing.T) {
	g, _ := buildEmpDept()
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesBadOrdinal(t *testing.T) {
	g, q := buildEmpDept()
	q.Preds = append(q.Preds, &Cmp{Op: datum.EQ, L: q.Quantifiers[0].Col(99), R: &Const{Val: datum.Int(1)}})
	if err := g.Check(); err == nil {
		t.Fatal("bad ordinal not caught")
	}
}

func TestCheckCatchesForeignQuantifier(t *testing.T) {
	g, q := buildEmpDept()
	g2, q2 := buildEmpDept()
	_ = g2
	q.Preds = append(q.Preds, &Cmp{Op: datum.EQ, L: q2.Quantifiers[0].Col(0), R: &Const{Val: datum.Int(1)}})
	if err := g.Check(); err == nil {
		t.Fatal("out-of-scope quantifier not caught")
	}
}

func TestCheckCatchesMissingTop(t *testing.T) {
	g := NewGraph()
	if err := g.Check(); err == nil {
		t.Fatal("missing top not caught")
	}
}

func TestCheckGroupByShape(t *testing.T) {
	g, q := buildEmpDept()
	gb := g.NewBox(KindGroupBy, "G")
	in := g.AddQuantifier(gb, ForEach, "i", q.Quantifiers[0].Ranges)
	gb.GroupBy = []Expr{in.Col(1)}
	gb.Aggs = []AggSpec{{Kind: datum.AggCount, Arg: in.Col(0)}}
	gb.Output = []OutputCol{
		{Name: "workdept", Type: datum.TInt},
		{Name: "cnt", Type: datum.TInt},
	}
	top := g.NewBox(KindSelect, "TOP")
	t1 := g.AddQuantifier(top, ForEach, "t", gb)
	top.Output = []OutputCol{{Name: "workdept", Expr: t1.Col(0), Type: datum.TInt}}
	g.Top = top
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// Break it: add a predicate to the group-by box.
	gb.Preds = append(gb.Preds, &Const{Val: datum.Bool(true)})
	if err := g.Check(); err == nil {
		t.Fatal("predicate on group-by box not caught")
	}
}

func TestCorrelatedSubqueryScope(t *testing.T) {
	// SELECT e.empno FROM employee e WHERE EXISTS
	//   (SELECT 1 FROM department d WHERE d.deptno = e.workdept)
	g := NewGraph()
	emp := g.NewBox(KindBaseTable, "EMPLOYEE")
	emp.Table = &catalog.Table{Name: "employee", Columns: []catalog.Column{
		{Name: "empno", Type: datum.TInt}, {Name: "workdept", Type: datum.TInt}}}
	emp.Output = []OutputCol{{Name: "empno", Type: datum.TInt}, {Name: "workdept", Type: datum.TInt}}
	dept := g.NewBox(KindBaseTable, "DEPARTMENT")
	dept.Table = &catalog.Table{Name: "department", Columns: []catalog.Column{{Name: "deptno", Type: datum.TInt}}}
	dept.Output = []OutputCol{{Name: "deptno", Type: datum.TInt}}

	top := g.NewBox(KindSelect, "QUERY")
	e := g.AddQuantifier(top, ForEach, "e", emp)

	sub := g.NewBox(KindSelect, "SUB")
	d := g.AddQuantifier(sub, ForEach, "d", dept)
	// Correlated predicate inside the subquery box.
	sub.Preds = []Expr{&Cmp{Op: datum.EQ, L: d.Col(0), R: e.Col(1)}}
	sub.Output = []OutputCol{{Name: "one", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}

	g.AddQuantifier(top, Exists, "sq", sub)
	top.Output = []OutputCol{{Name: "empno", Expr: e.Col(0), Type: datum.TInt}}
	g.Top = top
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBoxSharesBaseTables(t *testing.T) {
	g, q := buildEmpDept()
	cp, remap := g.CopyBox(q)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if cp.Quantifiers[0].Ranges != q.Quantifiers[0].Ranges {
		t.Error("ForEach child should be shared")
	}
	if remap[q.Quantifiers[0]] != cp.Quantifiers[0] {
		t.Error("remap table wrong")
	}
	// Copied predicates must reference the copy's quantifiers.
	refs := RefsQuantifiers(cp.Preds[0])
	if refs[q.Quantifiers[0]] {
		t.Error("copied predicate still references original quantifier")
	}
	if !refs[cp.Quantifiers[0]] {
		t.Error("copied predicate does not reference copied quantifier")
	}
	// Mutating the copy's predicates must not touch the original.
	if len(q.Preds) != 2 {
		t.Error("original predicates changed")
	}
}

func TestCopyBoxDeepCopiesSubqueries(t *testing.T) {
	g := NewGraph()
	base := g.NewBox(KindBaseTable, "T")
	base.Table = &catalog.Table{Name: "t", Columns: []catalog.Column{{Name: "a", Type: datum.TInt}}}
	base.Output = []OutputCol{{Name: "a", Type: datum.TInt}}

	top := g.NewBox(KindSelect, "TOP")
	tq := g.AddQuantifier(top, ForEach, "t", base)

	sub := g.NewBox(KindSelect, "SUB")
	sq := g.AddQuantifier(sub, ForEach, "u", base)
	sub.Preds = []Expr{&Cmp{Op: datum.EQ, L: sq.Col(0), R: tq.Col(0)}} // correlated
	sub.Output = []OutputCol{{Name: "a", Expr: sq.Col(0), Type: datum.TInt}}

	g.AddQuantifier(top, Exists, "ex", sub)
	top.Output = []OutputCol{{Name: "a", Expr: tq.Col(0), Type: datum.TInt}}
	g.Top = top
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}

	cp, _ := g.CopyBox(top)
	g.Top = cp
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatalf("after copy+GC: %v", err)
	}
	// The subquery box must be a fresh copy whose correlated ref targets the
	// copy's own quantifier.
	var exQ *Quantifier
	for _, q := range cp.Quantifiers {
		if q.Type == Exists {
			exQ = q
		}
	}
	if exQ == nil {
		t.Fatal("no Exists quantifier on copy")
	}
	if exQ.Ranges == sub {
		t.Fatal("subquery box was shared, must be copied")
	}
	refs := RefsQuantifiers(exQ.Ranges.Preds[0])
	if refs[tq] {
		t.Error("copied subquery still correlated to original outer quantifier")
	}
	if !refs[cp.Quantifiers[0]] {
		t.Error("copied subquery not correlated to copied outer quantifier")
	}
}

func TestGC(t *testing.T) {
	g, q := buildEmpDept()
	orphan := g.NewBox(KindSelect, "ORPHAN")
	orphan.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	if len(g.Boxes) != 4 {
		t.Fatalf("expected 4 boxes, got %d", len(g.Boxes))
	}
	g.GC()
	if len(g.Boxes) != 3 {
		t.Errorf("GC kept %d boxes; want 3", len(g.Boxes))
	}
	for _, b := range g.Boxes {
		if b == orphan {
			t.Error("orphan survived GC")
		}
	}
	_ = q
}

func TestGCKeepsMagicBoxLinks(t *testing.T) {
	g, q := buildEmpDept()
	magic := g.NewBox(KindSelect, "m_QUERY")
	magic.Role = RoleMagic
	magic.Output = []OutputCol{{Name: "x", Expr: &Const{Val: datum.Int(1)}, Type: datum.TInt}}
	q.MagicBox = magic
	g.GC()
	found := false
	for _, b := range g.Boxes {
		if b == magic {
			found = true
		}
	}
	if !found {
		t.Error("linked magic box collected")
	}
}

func TestUseCount(t *testing.T) {
	g, q := buildEmpDept()
	dept := q.Quantifiers[1].Ranges
	if got := g.UseCount(dept); got != 1 {
		t.Errorf("UseCount(dept) = %d; want 1", got)
	}
	if got := g.UseCount(q); got != 1 { // top counts as a use
		t.Errorf("UseCount(top) = %d; want 1", got)
	}
	g.AddQuantifier(q, ForEach, "d2", dept)
	if got := g.UseCount(dept); got != 2 {
		t.Errorf("UseCount(dept) after 2nd quantifier = %d; want 2", got)
	}
}

func TestStats(t *testing.T) {
	g, _ := buildEmpDept()
	s := g.Stats()
	if s.Boxes != 3 || s.SelectBoxes != 1 || s.Joins != 1 || s.Quantifiers != 2 {
		t.Errorf("stats = %s", s)
	}
}

func TestDumpMentionsEverything(t *testing.T) {
	g, _ := buildEmpDept()
	d := g.Dump()
	for _, want := range []string{"QUERY", "EMPLOYEE", "DEPARTMENT", "Planning", "quant e:F", "quant d:F"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestDumpMarksSharedBoxes(t *testing.T) {
	g, q := buildEmpDept()
	g.AddQuantifier(q, ForEach, "d2", q.Quantifiers[1].Ranges)
	if !strings.Contains(g.Dump(), "(shared)") {
		t.Error("shared box not marked in dump")
	}
}

func TestConjunctsAndAll(t *testing.T) {
	a := &Const{Val: datum.Bool(true)}
	b := &Const{Val: datum.Bool(false)}
	c := &Const{Val: datum.Bool(true)}
	e := &Logic{Op: And, Args: []Expr{a, &Logic{Op: And, Args: []Expr{b, c}}}}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	if AndAll(cs[:1]) != cs[0] {
		t.Error("AndAll of one should be identity")
	}
	if _, ok := AndAll(cs).(*Logic); !ok {
		t.Error("AndAll of many should be Logic")
	}
	// OR does not flatten.
	or := &Logic{Op: Or, Args: []Expr{a, b}}
	if len(Conjuncts(or)) != 1 {
		t.Error("OR flattened as conjuncts")
	}
}

func TestEqualExpr(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	e1 := q.Preds[0]
	e2 := CopyExpr(e1, nil)
	if !EqualExpr(e1, e2) {
		t.Error("copy not equal to original")
	}
	if EqualExpr(q.Preds[0], q.Preds[1]) {
		t.Error("different predicates compare equal")
	}
	if !EqualExpr(&Const{Val: datum.Int(3)}, &Const{Val: datum.Int(3)}) {
		t.Error("equal constants differ")
	}
	if EqualExpr(&Const{Val: datum.Int(3)}, &Const{Val: datum.Float(3)}) {
		t.Error("INT 3 and FLOAT 3.0 constants should differ structurally")
	}
}

func TestTypeOf(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	e := q.Quantifiers[0]
	if TypeOf(e.Col(0)) != datum.TInt {
		t.Error("colref type")
	}
	if TypeOf(&Cmp{Op: datum.EQ, L: e.Col(0), R: &Const{Val: datum.Int(1)}}) != datum.TBool {
		t.Error("cmp type")
	}
	if TypeOf(&Arith{Op: datum.Add, L: e.Col(0), R: &Const{Val: datum.Float(1)}}) != datum.TFloat {
		t.Error("mixed arith type")
	}
	if TypeOf(&Arith{Op: datum.Add, L: e.Col(0), R: &Const{Val: datum.Int(1)}}) != datum.TInt {
		t.Error("int arith type")
	}
	if TypeOf(&Concat{L: &Const{Val: datum.String("a")}, R: &Const{Val: datum.String("b")}}) != datum.TString {
		t.Error("concat type")
	}
}

func TestOnlyRefs(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	e, d := q.Quantifiers[0], q.Quantifiers[1]
	join := q.Preds[0]
	if !OnlyRefs(join, map[*Quantifier]bool{e: true, d: true}) {
		t.Error("join refs within {e,d}")
	}
	if OnlyRefs(join, map[*Quantifier]bool{e: true}) {
		t.Error("join should not be within {e}")
	}
	local := q.Preds[1]
	if !OnlyRefs(local, map[*Quantifier]bool{d: true}) {
		t.Error("local pred should be within {d}")
	}
}

func TestOrderedQuantifiers(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	ordered := q.OrderedQuantifiers()
	if ordered[0].Name != "e" {
		t.Error("default order should be declaration order")
	}
	q.JoinOrder = []int{1, 0}
	ordered = q.OrderedQuantifiers()
	if ordered[0].Name != "d" || ordered[1].Name != "e" {
		t.Error("JoinOrder not respected")
	}
}

func TestRemoveQuantifier(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	d := q.Quantifiers[1]
	RemoveQuantifier(d)
	if len(q.Quantifiers) != 1 || q.Quantifiers[0].Name != "e" {
		t.Errorf("quantifiers after removal: %v", q.Quantifiers)
	}
}

func TestOutputIndex(t *testing.T) {
	g, q := buildEmpDept()
	_ = g
	if q.OutputIndex("EMPNO") != 0 {
		t.Error("case-insensitive output lookup failed")
	}
	if q.OutputIndex("none") != -1 {
		t.Error("missing output should be -1")
	}
}
