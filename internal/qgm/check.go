package qgm

import (
	"fmt"
)

// Check validates graph invariants. The rewrite engine runs it after every
// rule application in tests; a violation indicates a rule bug.
//
// Invariants:
//   - Top is set and registered.
//   - Every quantifier's Ranges box is registered, and its Parent pointer is
//     correct.
//   - Every ColRef resolves to a quantifier of the containing box or of an
//     ancestor box (correlation), with a valid output ordinal.
//   - Base-table boxes have no quantifiers or predicates.
//   - Group-by boxes have exactly one ForEach quantifier, no predicates, and
//     Output = GroupBy columns followed by Aggs.
//   - Set-operation boxes have ≥2 ForEach quantifiers with equal-arity
//     outputs (except/intersect exactly 2).
//   - Select-box outputs have defining expressions.
func (g *Graph) Check() error {
	if g.Top == nil {
		return fmt.Errorf("qgm: graph has no top box")
	}
	registered := make(map[*Box]bool, len(g.Boxes))
	for _, b := range g.Boxes {
		registered[b] = true
	}
	if !registered[g.Top] {
		return fmt.Errorf("qgm: top box %s is not registered", boxLabel(g.Top))
	}

	// visible computes, for each box, the quantifiers in scope: its own
	// plus those of every ancestor chain through which it is reachable.
	// Build reachability from Top downward.
	type frame struct {
		box   *Box
		scope map[*Quantifier]bool
	}
	seen := map[*Box]bool{}
	var errs []error
	var visit func(f frame)
	visit = func(f frame) {
		b := f.box
		// A box may be visited through several parents (common
		// subexpression); validate it once, with the first scope. Shared
		// boxes must not be correlated, which this also effectively checks
		// (their refs must resolve within their own quantifiers).
		if seen[b] {
			return
		}
		seen[b] = true
		scope := map[*Quantifier]bool{}
		for q := range f.scope {
			scope[q] = true
		}
		for _, q := range b.Quantifiers {
			if q.Parent != b {
				errs = append(errs, fmt.Errorf("box %s: quantifier %s has wrong parent", boxLabel(b), q.Name))
			}
			if q.Ranges == nil || !registered[q.Ranges] {
				errs = append(errs, fmt.Errorf("box %s: quantifier %s ranges over unregistered box", boxLabel(b), q.Name))
				continue
			}
			scope[q] = true
		}
		checkRefs := func(what string, e Expr) {
			if e == nil {
				return
			}
			VisitRefs(e, func(c *ColRef) {
				if c.Q == nil {
					errs = append(errs, fmt.Errorf("box %s: %s has nil quantifier ref", boxLabel(b), what))
					return
				}
				if !scope[c.Q] {
					errs = append(errs, fmt.Errorf("box %s: %s references out-of-scope quantifier %s", boxLabel(b), what, c.Q.Name))
					return
				}
				if c.Q.Ranges == nil || c.Ord < 0 || c.Ord >= len(c.Q.Ranges.Output) {
					errs = append(errs, fmt.Errorf("box %s: %s references invalid ordinal %d of %s", boxLabel(b), what, c.Ord, c.Q.Name))
				}
			})
		}
		for _, e := range b.Preds {
			checkRefs("predicate", e)
		}
		for _, oc := range b.Output {
			checkRefs("output "+oc.Name, oc.Expr)
		}
		for _, e := range b.GroupBy {
			checkRefs("group-by", e)
		}
		for _, a := range b.Aggs {
			checkRefs("aggregate", a.Arg)
		}

		switch b.Kind {
		case KindBaseTable:
			if len(b.Quantifiers) != 0 || len(b.Preds) != 0 {
				errs = append(errs, fmt.Errorf("base box %s has quantifiers or predicates", boxLabel(b)))
			}
			if b.Table == nil {
				errs = append(errs, fmt.Errorf("base box %s has no table", boxLabel(b)))
			}
		case KindSelect:
			for _, oc := range b.Output {
				if oc.Expr == nil {
					errs = append(errs, fmt.Errorf("select box %s: output %s has no expression", boxLabel(b), oc.Name))
				}
			}
		case KindGroupBy:
			if len(b.Quantifiers) != 1 || b.Quantifiers[0].Type != ForEach {
				errs = append(errs, fmt.Errorf("group-by box %s must have exactly one F quantifier", boxLabel(b)))
			}
			if len(b.Preds) != 0 {
				errs = append(errs, fmt.Errorf("group-by box %s has predicates", boxLabel(b)))
			}
			if len(b.Output) != len(b.GroupBy)+len(b.Aggs) {
				errs = append(errs, fmt.Errorf("group-by box %s: %d outputs != %d grouping + %d aggs",
					boxLabel(b), len(b.Output), len(b.GroupBy), len(b.Aggs)))
			}
		case KindUnion, KindIntersect, KindExcept:
			if len(b.Quantifiers) < 2 {
				errs = append(errs, fmt.Errorf("%s box %s has %d inputs", b.Kind, boxLabel(b), len(b.Quantifiers)))
			}
			if b.Kind != KindUnion && len(b.Quantifiers) != 2 {
				errs = append(errs, fmt.Errorf("%s box %s must have exactly 2 inputs", b.Kind, boxLabel(b)))
			}
			for _, q := range b.Quantifiers {
				if q.Type != ForEach {
					errs = append(errs, fmt.Errorf("%s box %s has non-F quantifier", b.Kind, boxLabel(b)))
				}
				if q.Ranges != nil && len(q.Ranges.Output) != len(b.Output) {
					errs = append(errs, fmt.Errorf("%s box %s: input %s arity %d != output arity %d",
						b.Kind, boxLabel(b), q.Name, len(q.Ranges.Output), len(b.Output)))
				}
			}
		}

		for _, q := range b.Quantifiers {
			if q.Ranges != nil && registered[q.Ranges] {
				visit(frame{box: q.Ranges, scope: scope})
			}
		}
		if b.MagicBox != nil && registered[b.MagicBox] {
			visit(frame{box: b.MagicBox, scope: scope})
		}
	}
	visit(frame{box: g.Top, scope: map[*Quantifier]bool{}})

	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func boxLabel(b *Box) string {
	if b.Name != "" {
		return fmt.Sprintf("%s#%d", b.Name, b.ID)
	}
	return fmt.Sprintf("%s#%d", b.Kind, b.ID)
}
