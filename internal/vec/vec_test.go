package vec

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"starmagic/internal/datum"
)

// TestInternConcurrent hammers one table from many goroutines over an
// overlapping working set: every goroutine must observe the same id for the
// same string (run under -race to catch locking bugs), ids must be dense,
// and the distinct count must come out exact.
func TestInternConcurrent(t *testing.T) {
	tab := NewIntern()
	const workers = 8
	const distinct = 200
	ids := make([]map[string]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ids[w] = make(map[string]uint32, distinct)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				s := fmt.Sprintf("str-%03d", rng.Intn(distinct))
				id := tab.Intern(s)
				if prev, ok := ids[w][s]; ok && prev != id {
					t.Errorf("worker %d: %q interned as %d then %d", w, s, prev, id)
					return
				}
				ids[w][s] = id
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for s, id := range ids[w] {
			if other, ok := ids[0][s]; ok && other != id {
				t.Fatalf("%q: worker 0 saw id %d, worker %d saw %d", s, other, w, id)
			}
		}
	}
	st := tab.Stats()
	if st.Strings != distinct {
		t.Fatalf("Strings = %d, want %d", st.Strings, distinct)
	}
	for s, id := range ids[0] {
		if got := tab.Str(id); got != s {
			t.Fatalf("Str(%d) = %q, want %q", id, got, s)
		}
	}
}

// TestInternLookupAndStability checks that ids are dense in insertion order,
// that Lookup never inserts, and that hit/miss counters move the right way.
func TestInternLookupAndStability(t *testing.T) {
	tab := NewIntern()
	words := []string{"carol", "", "alice", "bob"}
	for i, s := range words {
		if id := tab.Intern(s); id != uint32(i) {
			t.Fatalf("Intern(%q) = %d, want dense id %d", s, id, i)
		}
	}
	for i, s := range words {
		if id := tab.Intern(s); id != uint32(i) {
			t.Fatalf("re-Intern(%q) = %d, want stable id %d", s, id, i)
		}
	}
	if _, ok := tab.Lookup("absent"); ok {
		t.Fatal("Lookup found a string that was never interned")
	}
	st := tab.Stats()
	if st.Strings != int64(len(words)) {
		t.Fatalf("Lookup miss grew the table: %d strings, want %d", st.Strings, len(words))
	}
	if id, ok := tab.Lookup("alice"); !ok || id != 2 {
		t.Fatalf("Lookup(alice) = %d,%v, want 2,true", id, ok)
	}
	if st.Misses < int64(len(words))+1 || st.Hits < int64(len(words)) {
		t.Fatalf("counters off: %+v", st)
	}
}

// TestColNullVsEmptyString: NULL travels in the null mask, never through the
// intern table, so a NULL string cell and an interned empty string stay
// distinct — in the mask, in the table's contents, and in row keys.
func TestColNullVsEmptyString(t *testing.T) {
	tab := NewIntern()
	c := NewCol(datum.TString)
	c.Append(datum.NullOf(datum.TString), tab)
	c.Append(datum.String(""), tab)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Nulls[0] || c.Nulls[1] {
		t.Fatalf("null mask %v, want [true false]", c.Nulls)
	}
	if st := tab.Stats(); st.Strings != 1 {
		t.Fatalf("NULL must not intern: table holds %d strings, want 1 (empty string)", st.Strings)
	}
	k := NewRowKeyer()
	kn, ok := k.Key(datum.Row{datum.NullOf(datum.TString)})
	if !ok {
		t.Fatal("keyer rejected NULL row")
	}
	ke, ok := k.Key(datum.Row{datum.String("")})
	if !ok {
		t.Fatal("keyer rejected empty string row")
	}
	if kn == ke {
		t.Fatal("RowKey of NULL equals RowKey of empty string")
	}
}

// randDatum draws from a small pool so comparisons hit every sign and keys
// collide: ints and floats share numeric values (3 vs 3.0 must key alike),
// plus -0.0, NULLs, and repeated strings.
func randDatum(rng *rand.Rand, t datum.Type) datum.D {
	if rng.Intn(6) == 0 {
		return datum.NullOf(t)
	}
	switch t {
	case datum.TInt:
		return datum.Int(int64(rng.Intn(7) - 3))
	case datum.TFloat:
		vals := []float64{-3, -0.5, 0, -0.0, 0.5, 3, 2.25}
		return datum.Float(vals[rng.Intn(len(vals))])
	case datum.TString:
		vals := []string{"", "alice", "bob", "carol", "bo"}
		return datum.String(vals[rng.Intn(len(vals))])
	case datum.TBool:
		return datum.Bool(rng.Intn(2) == 0)
	}
	return datum.NullOf(t)
}

var cmpOps = []datum.CmpOp{datum.EQ, datum.NE, datum.LT, datum.LE, datum.GT, datum.GE}

// TestKernelsMatchCompareTV is the kernel oracle: every comparison kernel
// must produce exactly datum.CompareTV's verdict for every row of random
// typed columns under every operator, NULLs included.
func TestKernelsMatchCompareTV(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 256
	tab := NewIntern()
	cols := map[datum.Type]*Col{}
	rows := map[datum.Type][]datum.D{}
	for _, ty := range []datum.Type{datum.TInt, datum.TFloat, datum.TString, datum.TBool} {
		c := NewCol(ty)
		for i := 0; i < n; i++ {
			d := randDatum(rng, ty)
			c.Append(d, tab)
			rows[ty] = append(rows[ty], d)
		}
		cols[ty] = &c
	}
	// Second set of columns for column-column kernels.
	bcols := map[datum.Type]*Col{}
	brows := map[datum.Type][]datum.D{}
	for _, ty := range []datum.Type{datum.TInt, datum.TFloat, datum.TString, datum.TBool} {
		c := NewCol(ty)
		for i := 0; i < n; i++ {
			d := randDatum(rng, ty)
			c.Append(d, tab)
			brows[ty] = append(brows[ty], d)
		}
		bcols[ty] = &c
	}
	sel := Iota(nil, 0, n)
	tvs := make([]datum.TV, n)
	strs := tab.Strs()

	check := func(name string, op datum.CmpOp, lhs []datum.D, rhsAt func(i int) datum.D) {
		t.Helper()
		for k, i := range sel {
			want := datum.CompareTV(op, lhs[i], rhsAt(int(i)))
			if tvs[k] != want {
				t.Fatalf("%s op=%v row %d: kernel %v, CompareTV %v (lhs=%v rhs=%v)",
					name, op, i, tvs[k], want, lhs[i], rhsAt(int(i)))
			}
		}
	}

	for _, op := range cmpOps {
		ic, fc := cols[datum.TInt], cols[datum.TFloat]
		CmpI64Const(ic.I64, ic.Nulls, op, 1, sel, tvs)
		check("CmpI64Const", op, rows[datum.TInt], func(int) datum.D { return datum.Int(1) })

		CmpI64ConstF(ic.I64, ic.Nulls, op, 0.5, sel, tvs)
		check("CmpI64ConstF", op, rows[datum.TInt], func(int) datum.D { return datum.Float(0.5) })

		CmpF64Const(fc.F64, fc.Nulls, op, 0, sel, tvs)
		check("CmpF64Const", op, rows[datum.TFloat], func(int) datum.D { return datum.Float(0) })

		// int column vs int column, int vs float, float vs float
		bi, bf := bcols[datum.TInt], bcols[datum.TFloat]
		CmpNumNum(ic.I64, nil, ic.Nulls, op, bi.I64, nil, bi.Nulls, sel, tvs)
		check("CmpNumNum(ii)", op, rows[datum.TInt], func(i int) datum.D { return brows[datum.TInt][i] })
		CmpNumNum(ic.I64, nil, ic.Nulls, op, nil, bf.F64, bf.Nulls, sel, tvs)
		check("CmpNumNum(if)", op, rows[datum.TInt], func(i int) datum.D { return brows[datum.TFloat][i] })
		CmpNumNum(nil, fc.F64, fc.Nulls, op, nil, bf.F64, bf.Nulls, sel, tvs)
		check("CmpNumNum(ff)", op, rows[datum.TFloat], func(i int) datum.D { return brows[datum.TFloat][i] })

		sc, bs := cols[datum.TString], bcols[datum.TString]
		CmpStrConstOrd(sc.IDs, sc.Nulls, strs, op, "bob", 0, false, sel, tvs)
		check("CmpStrConstOrd", op, rows[datum.TString], func(int) datum.D { return datum.String("bob") })
		CmpStrStrOrd(sc.IDs, sc.Nulls, bs.IDs, bs.Nulls, strs, op, sel, tvs)
		check("CmpStrStrOrd", op, rows[datum.TString], func(i int) datum.D { return brows[datum.TString][i] })

		bc, bb := cols[datum.TBool], bcols[datum.TBool]
		CmpBoolConst(bc.Bs, bc.Nulls, op, true, sel, tvs)
		check("CmpBoolConst", op, rows[datum.TBool], func(int) datum.D { return datum.Bool(true) })
		CmpBoolBool(bc.Bs, bc.Nulls, bb.Bs, bb.Nulls, op, sel, tvs)
		check("CmpBoolBool", op, rows[datum.TBool], func(i int) datum.D { return brows[datum.TBool][i] })
	}

	// Id-equality kernels: constant present, constant absent, and <>.
	sc := cols[datum.TString]
	for _, neg := range []bool{false, true} {
		op := datum.EQ
		if neg {
			op = datum.NE
		}
		rhsID, present := tab.Lookup("carol")
		CmpIDConstEQ(sc.IDs, sc.Nulls, rhsID, present, neg, sel, tvs)
		check("CmpIDConstEQ", op, rows[datum.TString], func(int) datum.D { return datum.String("carol") })

		_, present = tab.Lookup("nobody")
		CmpIDConstEQ(sc.IDs, sc.Nulls, 0, present, neg, sel, tvs)
		check("CmpIDConstEQ(absent)", op, rows[datum.TString], func(int) datum.D { return datum.String("nobody") })

		bs := bcols[datum.TString]
		CmpIDIDEQ(sc.IDs, sc.Nulls, bs.IDs, bs.Nulls, neg, sel, tvs)
		check("CmpIDIDEQ", op, rows[datum.TString], func(i int) datum.D { return brows[datum.TString][i] })
	}

	// IS NULL / IS NOT NULL against the datum-level definition.
	for _, negate := range []bool{false, true} {
		IsNullTV(sc.Nulls, negate, sel, tvs)
		for k, i := range sel {
			want := rows[datum.TString][i].IsNull() != negate
			if (tvs[k] == datum.True) != want || tvs[k] == datum.Unknown {
				t.Fatalf("IsNullTV(negate=%v) row %d: %v, want %v", negate, i, tvs[k], want)
			}
		}
	}
}

// TestRowKeyerMatchesAppendKey: two rows key equal under RowKeyer exactly
// when their datum.AppendKey byte encodings are equal — the fixed-width key
// is a drop-in for the byte key in grouping/distinct maps.
func TestRowKeyerMatchesAppendKey(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	keyer := NewRowKeyer()
	types := []datum.Type{datum.TInt, datum.TFloat, datum.TString, datum.TBool}
	var rowsList []datum.Row
	var byteKeys [][]byte
	var fixedKeys []RowKey
	for i := 0; i < 400; i++ {
		width := 1 + rng.Intn(MaxKeyCols)
		row := make(datum.Row, width)
		for j := range row {
			row[j] = randDatum(rng, types[rng.Intn(len(types))])
		}
		var bk []byte
		for _, d := range row {
			bk = d.AppendKey(bk)
		}
		fk, ok := keyer.Key(row)
		if !ok {
			t.Fatalf("keyer rejected %v", row)
		}
		rowsList = append(rowsList, row)
		byteKeys = append(byteKeys, bk)
		fixedKeys = append(fixedKeys, fk)
	}
	for i := range rowsList {
		for j := i + 1; j < len(rowsList); j++ {
			if len(rowsList[i]) != len(rowsList[j]) {
				continue
			}
			be := bytes.Equal(byteKeys[i], byteKeys[j])
			fe := fixedKeys[i] == fixedKeys[j]
			if be != fe {
				t.Fatalf("rows %v and %v: byte keys equal=%v but RowKeys equal=%v",
					rowsList[i], rowsList[j], be, fe)
			}
		}
	}
	// Wider than MaxKeyCols must fall back, not truncate.
	wide := make(datum.Row, MaxKeyCols+1)
	for j := range wide {
		wide[j] = datum.Int(int64(j))
	}
	if _, ok := keyer.Key(wide); ok {
		t.Fatal("keyer accepted a row wider than MaxKeyCols")
	}
}

// TestFilterTrue pins the selection-compaction contract: only True survives
// (False and Unknown drop — SQL WHERE semantics), order preserved, and
// NotTV keeps Unknown as Unknown.
func TestFilterTrue(t *testing.T) {
	sel := Sel{2, 5, 7, 9}
	tvs := []datum.TV{datum.True, datum.Unknown, datum.False, datum.True}
	out := FilterTrue(sel, tvs, nil)
	if fmt.Sprint(out) != "[2 9]" {
		t.Fatalf("FilterTrue = %v, want [2 9]", out)
	}
	NotTV(tvs)
	want := []datum.TV{datum.False, datum.Unknown, datum.True, datum.False}
	for i := range tvs {
		if tvs[i] != want[i] {
			t.Fatalf("NotTV[%d] = %v, want %v", i, tvs[i], want[i])
		}
	}
}

// TestKernelAllocs pins the hot loops at zero allocations per batch: the
// whole point of the columnar path is that filtering a batch touches no
// heap. AllocsPerRun would mask a regression to per-row boxing.
func TestKernelAllocs(t *testing.T) {
	const n = 512
	vals := make([]int64, n)
	nulls := make([]bool, n)
	ids := make([]uint32, n)
	for i := range vals {
		vals[i] = int64(i % 97)
		ids[i] = uint32(i % 13)
	}
	sel := Iota(make(Sel, 0, n), 0, n)
	tvs := make([]datum.TV, n)
	out := make(Sel, 0, n)

	if a := testing.AllocsPerRun(50, func() {
		CmpI64Const(vals, nulls, datum.LT, 50, sel, tvs)
		out = FilterTrue(sel[:0], tvs, out[:0])
		_ = out
	}); a != 0 {
		t.Errorf("CmpI64Const+FilterTrue allocates %v per batch, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		CmpIDConstEQ(ids, nulls, 7, true, false, sel, tvs)
	}); a != 0 {
		t.Errorf("CmpIDConstEQ allocates %v per batch, want 0", a)
	}
	keyer := NewRowKeyer()
	row := datum.Row{datum.Int(7), datum.String("alice"), datum.Float(1.5)}
	keyer.Key(row) // warm the private intern table
	if a := testing.AllocsPerRun(50, func() {
		if _, ok := keyer.Key(row); !ok {
			t.Fatal("keyer rejected row")
		}
	}); a != 0 {
		t.Errorf("RowKeyer.Key allocates %v per row, want 0", a)
	}
}
